// Semantics preservation across the whole stack: every TPC-H query compiled
// under every stack configuration (2..5 levels, TPC-H compliant, LegoBase
// baseline) must produce exactly the rows the Volcano oracle produces.
#include <gtest/gtest.h>

#include "compiler/compiler.h"
#include "exec/interp.h"
#include "ir/printer.h"
#include "tpch/datagen.h"
#include "tpch/queries.h"
#include "volcano/volcano.h"

namespace qc {
namespace {

using compiler::QueryCompiler;
using compiler::StackConfig;

std::vector<StackConfig> AllConfigs() {
  return {StackConfig::Level(2), StackConfig::Level(3), StackConfig::Level(4),
          StackConfig::Level(5), StackConfig::Compliant(),
          StackConfig::LegoBase()};
}

class StackEquivalenceTest : public ::testing::TestWithParam<int> {
 protected:
  static storage::Database* db() {
    static storage::Database* db =
        new storage::Database(tpch::MakeTpchDatabase(0.002, 7));
    return db;
  }
};

TEST_P(StackEquivalenceTest, AllConfigsMatchOracle) {
  int q = GetParam();
  qplan::PlanPtr plan = tpch::MakeQuery(q);
  qplan::ResolvePlan(plan.get(), *db());
  storage::ResultTable oracle = volcano::Execute(*plan, *db());

  ir::TypeFactory types;
  QueryCompiler qc(db(), &types);
  for (const StackConfig& cfg : AllConfigs()) {
    compiler::CompileResult res =
        qc.Compile(*plan, cfg, "q" + std::to_string(q) + "_" + cfg.name);
    exec::Interpreter interp(db());
    storage::ResultTable got = interp.Run(*res.fn);
    std::string diff;
    EXPECT_TRUE(got.SameRows(oracle, &diff))
        << "Q" << q << " config " << cfg.name << ": " << diff;
  }
}

INSTANTIATE_TEST_SUITE_P(AllQueries, StackEquivalenceTest,
                         ::testing::Range(1, 23));

}  // namespace
}  // namespace qc
