// Unit tests for the common substrate: date arithmetic, LIKE matching,
// arenas, deterministic RNG, hashing.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <set>
#include <vector>

#include "common/arena.h"
#include "common/backoff.h"
#include "common/date.h"
#include "common/env.h"
#include "common/fault.h"
#include "common/hash.h"
#include "common/rng.h"
#include "common/str.h"

namespace qc {
namespace {

TEST(Date, PackAndExtract) {
  Date d = MakeDate(1995, 6, 17);
  EXPECT_EQ(DateYear(d), 1995);
  EXPECT_EQ(DateMonth(d), 6);
  EXPECT_EQ(DateDay(d), 17);
}

TEST(Date, ComparisonIsIntegerComparison) {
  EXPECT_LT(MakeDate(1994, 12, 31), MakeDate(1995, 1, 1));
  EXPECT_LT(MakeDate(1995, 1, 31), MakeDate(1995, 2, 1));
  EXPECT_LT(MakeDate(1995, 2, 1), MakeDate(1995, 2, 2));
}

TEST(Date, AddMonthsClampsDay) {
  EXPECT_EQ(DateAddMonths(MakeDate(1995, 1, 31), 1), MakeDate(1995, 2, 28));
  EXPECT_EQ(DateAddMonths(MakeDate(1995, 11, 30), 3), MakeDate(1996, 2, 28));
  EXPECT_EQ(DateAddMonths(MakeDate(1995, 6, 15), 12), MakeDate(1996, 6, 15));
  EXPECT_EQ(DateAddMonths(MakeDate(1995, 6, 15), -6), MakeDate(1994, 12, 15));
}

TEST(Date, AddDaysWalksBoundaries) {
  EXPECT_EQ(DateAddDays(MakeDate(1995, 1, 31), 1), MakeDate(1995, 2, 1));
  EXPECT_EQ(DateAddDays(MakeDate(1995, 12, 31), 1), MakeDate(1996, 1, 1));
  EXPECT_EQ(DateAddDays(MakeDate(1995, 1, 1), -1), MakeDate(1994, 12, 31));
}

TEST(Date, ParseFormatRoundtrip) {
  EXPECT_EQ(ParseDate("1998-09-02"), MakeDate(1998, 9, 2));
  EXPECT_EQ(FormatDate(MakeDate(1998, 9, 2)), "1998-09-02");
  EXPECT_EQ(ParseDate("bogus"), 0);
}

class DateOrdinalTest : public ::testing::TestWithParam<int> {};

TEST_P(DateOrdinalTest, OrdinalRoundtrip) {
  int ordinal = GetParam();
  Date d = OrdinalToDate(ordinal);
  EXPECT_EQ(DateToOrdinal(d), ordinal);
  // Consecutive ordinals are consecutive dates.
  EXPECT_EQ(OrdinalToDate(ordinal + 1), DateAddDays(d, 1));
}

INSTANTIATE_TEST_SUITE_P(Sweep, DateOrdinalTest,
                         ::testing::Values(0, 1, 27, 58, 364, 365, 1000, 2000,
                                           2399));

struct LikeCase {
  const char* text;
  const char* pattern;
  bool match;
};

class StrLikeTest : public ::testing::TestWithParam<LikeCase> {};

TEST_P(StrLikeTest, MatchesSqlSemantics) {
  const LikeCase& c = GetParam();
  EXPECT_EQ(StrLike(c.text, c.pattern), c.match)
      << "'" << c.text << "' LIKE '" << c.pattern << "'";
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, StrLikeTest,
    ::testing::Values(
        LikeCase{"hello", "hello", true}, LikeCase{"hello", "hell", false},
        LikeCase{"hello world", "hello%", true},
        LikeCase{"hello world", "%world", true},
        LikeCase{"hello world", "%lo wo%", true},
        LikeCase{"hello world", "hello%world", true},
        LikeCase{"hello world", "%o%o%", true},
        LikeCase{"hello world", "%x%", false},
        LikeCase{"special packages requests", "%special%requests%", true},
        LikeCase{"requests then special", "%special%requests%", false},
        LikeCase{"", "%", true}, LikeCase{"", "", true},
        LikeCase{"abc", "%", true}, LikeCase{"abc", "%%", true},
        LikeCase{"MEDIUM POLISHED TIN", "MEDIUM POLISHED%", true},
        LikeCase{"PROMO BRUSHED TIN", "PROMO%", true},
        LikeCase{"Customer complains Complaints", "%Customer%Complaints%",
                 true}));

TEST(StrHelpers, PrefixSuffixInfix) {
  EXPECT_TRUE(StrStartsWith("forest green", "forest"));
  EXPECT_FALSE(StrStartsWith("fo", "forest"));
  EXPECT_TRUE(StrEndsWith("ECONOMY ANODIZED BRASS", "BRASS"));
  EXPECT_FALSE(StrEndsWith("BRASS", "ECONOMY ANODIZED BRASS"));
  EXPECT_TRUE(StrContains("dark green ivory", "green"));
  EXPECT_FALSE(StrContains("dark grey ivory", "green"));
}

TEST(Arena, AllocatesAlignedAndTracks) {
  Arena a(128);
  void* p1 = a.Allocate(10);
  void* p2 = a.Allocate(10);
  EXPECT_NE(p1, p2);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(p1) % alignof(std::max_align_t), 0u);
  EXPECT_EQ(a.bytes_used(), 20u);
  // Oversized allocations get their own block.
  void* big = a.Allocate(1000);
  EXPECT_NE(big, nullptr);
  EXPECT_GE(a.bytes_reserved(), 1000u);
}

TEST(Arena, NewConstructsObjects) {
  Arena a;
  struct Pt { int x, y; };
  Pt* p = a.New<Pt>(Pt{3, 4});
  EXPECT_EQ(p->x, 3);
  EXPECT_EQ(p->y, 4);
}

TEST(Rng, DeterministicAcrossInstances) {
  Rng a(123), b(123), c(124);
  bool all_equal = true, any_diff = false;
  for (int i = 0; i < 100; ++i) {
    uint64_t va = a.Next(), vb = b.Next(), vc = c.Next();
    all_equal &= (va == vb);
    any_diff |= (va != vc);
  }
  EXPECT_TRUE(all_equal);
  EXPECT_TRUE(any_diff);
}

TEST(Rng, UniformStaysInRange) {
  Rng r(7);
  for (int i = 0; i < 1000; ++i) {
    int64_t v = r.Uniform(5, 17);
    EXPECT_GE(v, 5);
    EXPECT_LE(v, 17);
    double d = r.UniformDouble(0.0, 1.0);
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Hash, DistributesAndIsStable) {
  EXPECT_EQ(HashMix(42), HashMix(42));
  EXPECT_NE(HashMix(42), HashMix(43));
  EXPECT_EQ(HashString("abc"), HashString("abc"));
  EXPECT_NE(HashString("abc"), HashString("abd"));
  std::set<uint64_t> seen;
  for (uint64_t i = 0; i < 1000; ++i) seen.insert(HashMix(i));
  EXPECT_EQ(seen.size(), 1000u);
}

// Environment-knob hardening (common/env.h): every QC_* integer knob must
// survive garbage, zero, and negative values without wrapping, crashing,
// or — for divisor knobs — dividing by zero. One test per knob, each
// exercised through the exact parse call its call site uses.
class EnvKnobTest : public ::testing::Test {
 protected:
  void SetKnob(const char* name, const char* v) {
    ::setenv(name, v, 1);
    set_.push_back(name);
  }
  void TearDown() override {
    for (const char* name : set_) ::unsetenv(name);
  }
  std::vector<const char*> set_;
};

TEST_F(EnvKnobTest, ParTailDivNeverReachesZero) {
  // exec/parallel.cc divides the morsel size by this knob.
  auto read = [] { return EnvIntClamped("QC_PAR_TAIL_DIV", 2, 1, 1 << 20); };
  EXPECT_EQ(read(), 2);  // unset: default
  SetKnob("QC_PAR_TAIL_DIV", "0");
  EXPECT_EQ(read(), 1);  // zero clamps, never divides by zero
  SetKnob("QC_PAR_TAIL_DIV", "-7");
  EXPECT_EQ(read(), 1);
  SetKnob("QC_PAR_TAIL_DIV", "garbage");
  EXPECT_EQ(read(), 2);
  SetKnob("QC_PAR_TAIL_DIV", "4x");  // trailing garbage: rejected whole
  EXPECT_EQ(read(), 2);
  SetKnob("QC_PAR_TAIL_DIV", "4");
  EXPECT_EQ(read(), 4);
  SetKnob("QC_PAR_TAIL_DIV", "99999999999999999999");  // overflow: clamped
  EXPECT_EQ(read(), 1 << 20);
}

TEST_F(EnvKnobTest, ParSortMinStaysPositive) {
  // Exactly the parse exec/parallel.cc ParallelSortMinChunk() performs.
  auto read = [] {
    return EnvIntClamped("QC_PAR_SORT_MIN", 2048, 2, 1ll << 40);
  };
  EXPECT_EQ(read(), 2048);
  SetKnob("QC_PAR_SORT_MIN", "0");
  EXPECT_EQ(read(), 2);  // a chunk must hold at least two rows
  SetKnob("QC_PAR_SORT_MIN", "-1");
  EXPECT_EQ(read(), 2);
  SetKnob("QC_PAR_SORT_MIN", "none");
  EXPECT_EQ(read(), 2048);
  SetKnob("QC_PAR_SORT_MIN", "512");
  EXPECT_EQ(read(), 512);
}

TEST_F(EnvKnobTest, BenchThreadsRejectsNegativeAndGarbage) {
  // bench_util.h BenchThreadCounts: comma list, tokens validated in [1, 1024].
  auto read = [] { return EnvIntList("QC_BENCH_THREADS", 1, 1, 1024); };
  EXPECT_EQ(read(), std::vector<long long>({1}));  // unset: sequential
  SetKnob("QC_BENCH_THREADS", "-1");
  EXPECT_EQ(read(), std::vector<long long>({1}));  // no wrap to huge count
  SetKnob("QC_BENCH_THREADS", "zzz");
  EXPECT_EQ(read(), std::vector<long long>({1}));
  SetKnob("QC_BENCH_THREADS", "1,2,4");
  EXPECT_EQ(read(), std::vector<long long>({1, 2, 4}));
  SetKnob("QC_BENCH_THREADS", "2x,3");  // bad token dropped, good one kept
  EXPECT_EQ(read(), std::vector<long long>({3}));
  SetKnob("QC_BENCH_THREADS", "0,8,1000000");  // out-of-range tokens dropped
  EXPECT_EQ(read(), std::vector<long long>({8}));
  SetKnob("QC_BENCH_THREADS", ",,");
  EXPECT_EQ(read(), std::vector<long long>({1}));
}

TEST_F(EnvKnobTest, JitStatsLevelNeverNegative) {
  auto read = [] { return EnvLevel("QC_JIT_STATS"); };
  EXPECT_EQ(read(), 0);
  SetKnob("QC_JIT_STATS", "2");
  EXPECT_EQ(read(), 2);
  SetKnob("QC_JIT_STATS", "-3");
  EXPECT_EQ(read(), 0);  // clamped: a negative level is "off"
  SetKnob("QC_JIT_STATS", "true");
  EXPECT_EQ(read(), 1);  // flag-style value follows the flag rule
  SetKnob("QC_JIT_STATS", "0");
  EXPECT_EQ(read(), 0);
}

TEST_F(EnvKnobTest, EnvIntRejectsTrailingGarbage) {
  auto read = [] { return EnvInt("QC_TEST_INT_KNOB", 7); };
  EXPECT_EQ(read(), 7);
  SetKnob("QC_TEST_INT_KNOB", "12abc");
  EXPECT_EQ(read(), 7);  // partial parses are whole-value rejections
  SetKnob("QC_TEST_INT_KNOB", "12");
  EXPECT_EQ(read(), 12);
  SetKnob("QC_TEST_INT_KNOB", "");
  EXPECT_EQ(read(), 7);
  // Stray whitespace (YAML env blocks, command substitutions with a
  // trailing newline) must not silently revert a valid value.
  SetKnob("QC_TEST_INT_KNOB", " 42 \n");
  EXPECT_EQ(read(), 42);
  SetKnob("QC_JIT_STATS", "2\n");
  EXPECT_EQ(EnvLevel("QC_JIT_STATS"), 2);
  ::unsetenv("QC_JIT_STATS");
  SetKnob("QC_BENCH_THREADS", "1, 2 ,4\n");
  EXPECT_EQ(EnvIntList("QC_BENCH_THREADS", 1, 1, 1024),
            std::vector<long long>({1, 2, 4}));
}

// Fault-injection spec parsing (common/fault.h): QC_FAULT arms a
// comma-separated list of <site>:<nth> pairs, each with its own occurrence
// counter. The fixture re-arms around every mutation so counters never
// leak across tests (or into other suites in this binary).
class FaultSpecTest : public ::testing::Test {
 protected:
  void Arm(const char* spec) {
    ::setenv("QC_FAULT", spec, 1);
    FaultReArm();
  }
  void TearDown() override {
    ::unsetenv("QC_FAULT");
    FaultReArm();
  }
};

TEST_F(FaultSpecTest, SingleSiteFiresExactlyOnNth) {
  Arm("site_a:3");
  EXPECT_FALSE(FaultPoint("site_a"));  // occurrence 1
  EXPECT_FALSE(FaultPoint("site_a"));  // occurrence 2
  EXPECT_TRUE(FaultPoint("site_a"));   // occurrence 3: fires
  EXPECT_FALSE(FaultPoint("site_a"));  // fires exactly once
  EXPECT_FALSE(FaultPoint("site_b"));  // unarmed site never fires
}

TEST_F(FaultSpecTest, MultiSiteCountersAreIndependent) {
  Arm("site_a:2,site_b:1");
  // site_b's counter must not advance on site_a occurrences (and vice
  // versa): interleave the calls.
  EXPECT_FALSE(FaultPoint("site_a"));  // a: 1 of 2
  EXPECT_TRUE(FaultPoint("site_b"));   // b: 1 of 1 — fires
  EXPECT_TRUE(FaultPoint("site_a"));   // a: 2 of 2 — fires
  EXPECT_FALSE(FaultPoint("site_a"));
  EXPECT_FALSE(FaultPoint("site_b"));
}

TEST_F(FaultSpecTest, ReArmResetsCounters) {
  Arm("site_a:2");
  EXPECT_FALSE(FaultPoint("site_a"));
  Arm("site_a:2");                     // re-arm: counting restarts
  EXPECT_FALSE(FaultPoint("site_a"));  // 1 of 2 again
  EXPECT_TRUE(FaultPoint("site_a"));
}

TEST_F(FaultSpecTest, MalformedEntriesNeverArm) {
  // Garbage entries must not arm anything — and must not disturb a valid
  // entry sharing the list.
  Arm("nonsense");
  EXPECT_FALSE(FaultPoint("nonsense"));
  Arm("site_a");  // missing :nth
  EXPECT_FALSE(FaultPoint("site_a"));
  Arm("site_a:abc");
  EXPECT_FALSE(FaultPoint("site_a"));
  Arm("site_a:0,site_b:1,:(");  // zero nth can never fire (1-based)
  EXPECT_FALSE(FaultPoint("site_a"));
  EXPECT_TRUE(FaultPoint("site_b"));  // the valid entry still works
  Arm("");
  EXPECT_FALSE(FaultPoint("site_a"));
}

// Retry backoff (common/backoff.h): full jitter, deterministic per seed,
// hard-bounded by min(max_ms, base_ms << attempt) and never below 1ms.
TEST(Backoff, DeterministicPerSeed) {
  Backoff a(7, 10, 1000), b(7, 10, 1000), c(8, 10, 1000);
  bool any_diff = false;
  for (int i = 0; i < 8; ++i) {
    int64_t da = a.NextDelayMs(i);
    EXPECT_EQ(da, b.NextDelayMs(i));  // same seed: same sequence
    any_diff |= da != c.NextDelayMs(i);
  }
  EXPECT_TRUE(any_diff);  // different seed: decorrelated
}

TEST(Backoff, BoundedByExponentialCapAndMax) {
  Backoff b(42, 4, 100);
  for (int trial = 0; trial < 200; ++trial) {
    for (int attempt = 0; attempt < 10; ++attempt) {
      int64_t cap = std::min<int64_t>(100, 4ll << attempt);
      int64_t d = b.NextDelayMs(attempt);
      EXPECT_GE(d, 1);
      EXPECT_LE(d, cap);
    }
  }
  // Huge attempt numbers must saturate at max, not shift into oblivion.
  EXPECT_LE(b.NextDelayMs(1000), 100);
}

TEST(Backoff, ZeroConfigNeverBusySpins) {
  Backoff b(1, 0, 0);  // both knobs misconfigured to zero
  for (int i = 0; i < 50; ++i) EXPECT_GE(b.NextDelayMs(i), 1);
}

}  // namespace
}  // namespace qc
