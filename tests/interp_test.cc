// Direct tests of the IR interpreter on hand-built programs: control flow,
// mutable variables, arrays, lists, generic maps, pools, sorting — each
// executable DSL level runs on the same machinery ("each DSL is executable").
#include <gtest/gtest.h>

#include "exec/interp.h"
#include "ir/builder.h"
#include "storage/database.h"

namespace qc {
namespace {

using ir::Builder;
using ir::Function;
using ir::Stmt;
using ir::TypeFactory;

storage::Database EmptyDb() { return storage::Database(); }

TEST(Interp, ArithmeticAndEmit) {
  storage::Database db = EmptyDb();
  TypeFactory types;
  Function fn("f", &types);
  Builder b(&fn);
  Stmt* x = b.Add(b.I64(2), b.I64(3));
  Stmt* y = b.Mul(b.Cast(x, types.F64()), b.F64(1.5));
  Stmt* z = b.Div(b.I64(7), b.I64(2));
  b.EmitRow({x, y, z, b.Mod(b.I64(7), b.I64(3))});
  exec::Interpreter in(&db);
  storage::ResultTable r = in.Run(fn);
  ASSERT_EQ(r.size(), 1u);
  EXPECT_EQ(r.row(0)[0].i, 5);
  EXPECT_DOUBLE_EQ(r.row(0)[1].d, 7.5);
  EXPECT_EQ(r.row(0)[2].i, 3);
  EXPECT_EQ(r.row(0)[3].i, 1);
}

TEST(Interp, LoopsAndVars) {
  storage::Database db = EmptyDb();
  TypeFactory types;
  Function fn("f", &types);
  Builder b(&fn);
  Stmt* sum = b.VarNew(b.I64(0));
  b.ForRange(b.I64(1), b.I64(11), [&](Stmt* i) {
    b.VarAssign(sum, b.Add(b.VarRead(sum), i));
  });
  b.EmitRow({b.VarRead(sum)});
  exec::Interpreter in(&db);
  storage::ResultTable r = in.Run(fn);
  EXPECT_EQ(r.row(0)[0].i, 55);
}

TEST(Interp, WhileLoop) {
  storage::Database db = EmptyDb();
  TypeFactory types;
  Function fn("f", &types);
  Builder b(&fn);
  // Collatz steps from 27.
  Stmt* n = b.VarNew(b.I64(27));
  Stmt* steps = b.VarNew(b.I64(0));
  b.While(
      [&] { return b.Gt(b.VarRead(n), b.I64(1)); },
      [&] {
        Stmt* cur = b.VarRead(n);
        Stmt* even = b.Eq(b.Mod(cur, b.I64(2)), b.I64(0));
        b.If(
            even, [&] { b.VarAssign(n, b.Div(cur, b.I64(2))); },
            [&] {
              b.VarAssign(n, b.Add(b.Mul(cur, b.I64(3)), b.I64(1)));
            });
        b.VarAssign(steps, b.Add(b.VarRead(steps), b.I64(1)));
      });
  b.EmitRow({b.VarRead(steps)});
  exec::Interpreter in(&db);
  EXPECT_EQ(in.Run(fn).row(0)[0].i, 111);
}

TEST(Interp, ArraysAndSort) {
  storage::Database db = EmptyDb();
  TypeFactory types;
  Function fn("f", &types);
  Builder b(&fn);
  Stmt* arr = b.ArrNew(types.I64(), b.I64(5));
  int64_t vals[] = {42, 7, 19, 3, 23};
  for (int i = 0; i < 5; ++i) {
    b.ArrSet(arr, b.I64(i), b.I64(vals[i]));
  }
  b.ArrSortBy(arr, b.I64(5), [&](Stmt* x, Stmt* y) { return b.Lt(x, y); });
  b.ForRange(b.I64(0), b.I64(5),
             [&](Stmt* i) { b.EmitRow({b.ArrGet(arr, i)}); });
  exec::Interpreter in(&db);
  storage::ResultTable r = in.Run(fn);
  int64_t expected[] = {3, 7, 19, 23, 42};
  for (int i = 0; i < 5; ++i) EXPECT_EQ(r.row(i)[0].i, expected[i]);
}

TEST(Interp, GenericMapGroupCount) {
  storage::Database db = EmptyDb();
  TypeFactory types;
  Function fn("f", &types);
  Builder b(&fn);
  const ir::Type* rec = types.Record("G", {{"k", types.I64()},
                                           {"n", types.I64()}});
  Stmt* map = b.MapNew(types.I64(), rec);
  b.ForRange(b.I64(0), b.I64(10), [&](Stmt* i) {
    Stmt* key = b.Mod(i, b.I64(3));
    Stmt* r = b.MapGetOrElseUpdate(
        map, key, [&] { return b.RecNew(rec, {key, b.I64(0)}); });
    b.RecSet(r, 1, b.Add(b.RecGet(r, 1), b.I64(1)));
  });
  b.MapForeach(map, [&](Stmt* k, Stmt* r) {
    b.EmitRow({k, b.RecGet(r, 1)});
  });
  exec::Interpreter in(&db);
  storage::ResultTable r = in.Run(fn);
  ASSERT_EQ(r.size(), 3u);
  int64_t total = 0;
  for (size_t i = 0; i < 3; ++i) total += r.row(i)[1].i;
  EXPECT_EQ(total, 10);
}

TEST(Interp, MultiMapBuckets) {
  storage::Database db = EmptyDb();
  TypeFactory types;
  Function fn("f", &types);
  Builder b(&fn);
  const ir::Type* rec = types.Record("V", {{"v", types.I64()}});
  Stmt* mm = b.MMapNew(types.I64(), rec);
  b.ForRange(b.I64(0), b.I64(6), [&](Stmt* i) {
    b.MMapAdd(mm, b.Mod(i, b.I64(2)), b.RecNew(rec, {i}));
  });
  Stmt* lst = b.MMapGetOrNull(mm, b.I64(0));
  b.If(b.Not(b.IsNull(lst)), [&] {
    b.ListForeach(lst, [&](Stmt* e) { b.EmitRow({b.RecGet(e, 0)}); });
  });
  Stmt* missing = b.MMapGetOrNull(mm, b.I64(7));
  b.If(b.IsNull(missing), [&] { b.EmitRow({b.I64(-1)}); });
  exec::Interpreter in(&db);
  storage::ResultTable r = in.Run(fn);
  ASSERT_EQ(r.size(), 4u);  // 0, 2, 4 and the -1 marker
}

TEST(Interp, PoolsTrackBytesSeparately) {
  storage::Database db = EmptyDb();
  TypeFactory types;
  Function fn("f", &types);
  Builder b(&fn);
  const ir::Type* rec = types.Record("P", {{"a", types.I64()}});
  Stmt* pool = b.PoolNew(rec, b.I64(100));
  Stmt* acc = b.VarNew(b.I64(0));
  b.ForRange(b.I64(0), b.I64(50), [&](Stmt* i) {
    Stmt* r = b.Emit(ir::Op::kPoolRecNew, rec, {pool, i});
    b.VarAssign(acc, b.Add(b.VarRead(acc), b.RecGet(r, 0)));
  });
  b.EmitRow({b.VarRead(acc)});
  exec::Interpreter in(&db);
  storage::ResultTable r = in.Run(fn);
  EXPECT_EQ(r.row(0)[0].i, 49 * 50 / 2);
  EXPECT_GT(in.stats().pool_bytes, 0u);
  EXPECT_EQ(in.stats().heap_allocs, 0u);  // everything pooled
}

TEST(Interp, StringOps) {
  storage::Database db = EmptyDb();
  TypeFactory types;
  Function fn("f", &types);
  Builder b(&fn);
  Stmt* s = b.StrC("hello world");
  b.EmitRow({b.StrEq(s, b.StrC("hello world")),
             b.StrStartsWith(s, b.StrC("hello")),
             b.StrEndsWith(s, b.StrC("world")),
             b.StrContains(s, b.StrC("lo wo")), b.StrLike(s, "%o w%"),
             b.StrLen(s), b.StrSubstr(s, 6, 5)});
  exec::Interpreter in(&db);
  storage::ResultTable r = in.Run(fn);
  for (int i = 0; i < 5; ++i) EXPECT_EQ(r.row(0)[i].i, 1);
  EXPECT_EQ(r.row(0)[5].i, 11);
  EXPECT_STREQ(r.row(0)[6].s, "world");
}

}  // namespace
}  // namespace qc
