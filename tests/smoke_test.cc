// End-to-end smoke tests on a tiny hand-built database: QPlan plans are
// executed by the Volcano oracle and by the pipelining lowering + IR
// interpreter, and the results must agree. The example query is the paper's
// running example (Fig. 4).
#include <gtest/gtest.h>

#include "exec/interp.h"
#include "ir/printer.h"
#include "ir/verify.h"
#include "lower/pipeline.h"
#include "qplan/plan.h"
#include "storage/database.h"
#include "volcano/volcano.h"

namespace qc {
namespace {

using namespace qc::qplan;  // NOLINT

storage::Database MakeDb() {
  storage::Database db;
  storage::TableDef r;
  r.name = "R";
  r.columns = {{"id", storage::ColType::kI64},
               {"name", storage::ColType::kStr},
               {"sid", storage::ColType::kI64}};
  r.primary_key = 0;
  storage::Table* rt = db.AddTable(r);

  storage::TableDef s;
  s.name = "S";
  s.columns = {{"rid", storage::ColType::kI64},
               {"val", storage::ColType::kF64}};
  storage::Table* st = db.AddTable(s);

  const char* names[] = {"R1", "R2", "R1", "R3", "R1"};
  for (int i = 0; i < 5; ++i) {
    rt->column(0).data.push_back(SlotI(i + 1));
    rt->column(1).data.push_back(SlotS(rt->InternString(names[i])));
    rt->column(2).data.push_back(SlotI(i % 3));
  }
  for (int i = 0; i < 12; ++i) {
    st->column(0).data.push_back(SlotI(i % 4));
    st->column(1).data.push_back(SlotD(i * 1.5));
  }
  return db;
}

void CheckAgainstOracle(PlanPtr plan, storage::Database& db) {
  ResolvePlan(plan.get(), db);
  storage::ResultTable oracle = volcano::Execute(*plan, db);

  ir::TypeFactory types;
  auto fn = lower::LowerPlanPipelined(*plan, db, &types, "q");
  ir::CheckFunction(*fn);
  ir::CheckLevel(*fn, ir::Level::kMapList);

  exec::Interpreter interp(&db);
  storage::ResultTable got = interp.Run(*fn);

  std::string diff;
  EXPECT_TRUE(got.SameRows(oracle, &diff))
      << diff << "\nIR:\n"
      << ir::PrintFunction(*fn);
}

TEST(Smoke, PaperExampleCountJoin) {
  storage::Database db = MakeDb();
  // SELECT COUNT(*) FROM R, S WHERE R.name = 'R1' AND R.sid = S.rid
  PlanPtr plan = AggOp(
      JoinOp(JoinKind::kInner,
             SelectOp(ScanOp("R"), Eq(Col("name"), S("R1"))), ScanOp("S"),
             {Col("sid")}, {Col("rid")}),
      {}, {Count("cnt")});
  CheckAgainstOracle(std::move(plan), db);
}

TEST(Smoke, GroupBySum) {
  storage::Database db = MakeDb();
  PlanPtr plan =
      AggOp(ScanOp("S"), {{"rid", Col("rid")}},
            {Sum(Col("val"), "total"), Count("cnt"), Avg(Col("val"), "a"),
             Min(Col("val"), "mn"), Max(Col("val"), "mx")});
  CheckAgainstOracle(std::move(plan), db);
}

TEST(Smoke, SortLimitProject) {
  storage::Database db = MakeDb();
  PlanPtr plan = LimitOp(
      SortOp(ProjectOp(ScanOp("S"),
                       {{"rid", Col("rid")}, {"v2", Mul(Col("val"), F(2.0))}}),
             {Desc(Col("v2")), Asc(Col("rid"))}),
      5);
  CheckAgainstOracle(std::move(plan), db);
}

TEST(Smoke, SemiAntiOuterJoins) {
  storage::Database db = MakeDb();
  for (JoinKind kind : {JoinKind::kSemi, JoinKind::kAnti}) {
    PlanPtr plan = JoinOp(kind, ScanOp("R"),
                          SelectOp(ScanOp("S"), Gt(Col("val"), F(3.0))),
                          {Col("sid")}, {Col("rid")});
    CheckAgainstOracle(std::move(plan), db);
  }
  // Left outer with aggregation over the matched flag (the Q13 pattern).
  PlanPtr outer =
      AggOp(JoinOp(JoinKind::kLeftOuter, ScanOp("R"), ScanOp("S"),
                   {Col("sid")}, {Col("rid")}),
            {{"id", Col("id")}},
            {Sum(Case(Col("matched"), I(1), I(0)), "norders")});
  CheckAgainstOracle(std::move(outer), db);
}

TEST(Smoke, CompositeKeyJoinAndGroup) {
  storage::Database db = MakeDb();
  // Composite (string+int) group key exercises the generic record-key path.
  PlanPtr plan = AggOp(
      JoinOp(JoinKind::kInner, ScanOp("R"), ScanOp("S"), {Col("sid")},
             {Col("rid")}),
      {{"name", Col("name")}, {"rid", Col("rid")}}, {Count("cnt")});
  CheckAgainstOracle(std::move(plan), db);
}

TEST(Smoke, JoinResidualPredicate) {
  storage::Database db = MakeDb();
  PlanPtr plan = JoinOp(JoinKind::kInner, ScanOp("R"), ScanOp("S"),
                        {Col("sid")}, {Col("rid")},
                        Gt(Col("val"), Mul(Col("id"), F(1.0))));
  CheckAgainstOracle(std::move(plan), db);
}

}  // namespace
}  // namespace qc
