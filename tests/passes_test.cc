// Unit tests for individual transformation passes: pool hoisting, scalar
// replacement, condition flattening, string dictionaries, value-range
// analysis, hash specialization and index inference — each checked on small
// hand-built IR or via golden substrings, independent of the TPC-H
// integration tests.
#include <gtest/gtest.h>

#include "ir/builder.h"
#include "ir/printer.h"
#include "ir/verify.h"
#include "opt/cond_flatten.h"
#include "opt/dce.h"
#include "opt/hash_spec.h"
#include "opt/index_infer.h"
#include "opt/pool_hoist.h"
#include "opt/range.h"
#include "opt/scalar_repl.h"
#include "opt/string_dict.h"

namespace qc {
namespace {

using ir::Builder;
using ir::Function;
using ir::Op;
using ir::Stmt;
using ir::TypeFactory;

// A small database: T(k i64 in [1,50] pk, grp i64 in [0,9] fk->G, name str,
// val f64) and G(gk i64 pk).
storage::Database MakeDb() {
  storage::Database db;
  storage::TableDef g;
  g.name = "G";
  g.columns = {{"gk", storage::ColType::kI64}};
  g.primary_key = 0;
  storage::Table* gt = db.AddTable(g);
  for (int i = 0; i < 10; ++i) gt->column(0).data.push_back(SlotI(i));

  storage::TableDef t;
  t.name = "T";
  t.columns = {{"k", storage::ColType::kI64},
               {"grp", storage::ColType::kI64},
               {"name", storage::ColType::kStr},
               {"val", storage::ColType::kF64}};
  t.primary_key = 0;
  t.foreign_keys = {storage::ForeignKey{1, "G", 0}};
  storage::Table* tt = db.AddTable(t);
  const char* names[] = {"alpha", "beta", "gamma", "delta"};
  for (int i = 1; i <= 50; ++i) {
    tt->column(0).data.push_back(SlotI(i));
    tt->column(1).data.push_back(SlotI(i % 10));
    tt->column(2).data.push_back(SlotS(tt->InternString(names[i % 4])));
    tt->column(3).data.push_back(SlotD(i * 1.5));
  }
  return db;
}

bool Contains(const std::string& text, const std::string& needle) {
  return text.find(needle) != std::string::npos;
}

TEST(PoolHoist, RecordsMoveToPools) {
  storage::Database db = MakeDb();
  TypeFactory types;
  Function fn("f", &types);
  Builder b(&fn);
  const ir::Type* rec = types.Record("R", {{"a", types.I64()}});
  b.ForRange(b.I64(0), b.I64(10), [&](Stmt* i) {
    Stmt* r = b.RecNew(rec, {i});
    b.EmitRow({b.RecGet(r, 0)});
  });
  auto out = opt::HoistMemoryAllocations(fn, db);
  std::string text = ir::PrintFunction(*out);
  EXPECT_TRUE(Contains(text, "pool_new")) << text;
  EXPECT_TRUE(Contains(text, "pool_rec_new")) << text;
  EXPECT_FALSE(Contains(text, " rec_new")) << text;
  // The pool is hoisted to the top, before the loop.
  EXPECT_LT(text.find("pool_new"), text.find("for(")) << text;
  ir::CheckFunction(*out);
}

TEST(ScalarRepl, NonEscapingRecordDisappears) {
  TypeFactory types;
  Function fn("f", &types);
  Builder b(&fn);
  const ir::Type* rec =
      types.Record("P", {{"a", types.I64()}, {"b", types.I64()}});
  Stmt* r = b.RecNew(rec, {b.I64(3), b.I64(4)});
  b.EmitRow({b.Add(b.RecGet(r, 0), b.RecGet(r, 1))});
  auto out = opt::ScalarReplacement(fn);
  opt::DeadCodeElimination(out.get());
  std::string text = ir::PrintFunction(*out);
  EXPECT_FALSE(Contains(text, "rec_new")) << text;
  EXPECT_FALSE(Contains(text, "rec_get")) << text;
}

TEST(ScalarRepl, EscapingRecordStays) {
  TypeFactory types;
  Function fn("f", &types);
  Builder b(&fn);
  const ir::Type* rec = types.Record("Q", {{"a", types.I64()}});
  Stmt* lst = b.ListNew(rec);
  Stmt* r = b.RecNew(rec, {b.I64(3)});
  b.ListAppend(lst, r);  // escapes into a collection
  b.ListForeach(lst, [&](Stmt* e) { b.EmitRow({b.RecGet(e, 0)}); });
  auto out = opt::ScalarReplacement(fn);
  opt::DeadCodeElimination(out.get());
  EXPECT_TRUE(Contains(ir::PrintFunction(*out), "rec_new"));
}

TEST(ScalarRepl, MutatedRecordStays) {
  TypeFactory types;
  Function fn("f", &types);
  Builder b(&fn);
  const ir::Type* rec = types.Record("M", {{"a", types.I64()}});
  Stmt* r = b.RecNew(rec, {b.I64(3)});
  b.RecSet(r, 0, b.I64(4));
  b.EmitRow({b.RecGet(r, 0)});
  auto out = opt::ScalarReplacement(fn);
  opt::DeadCodeElimination(out.get());
  EXPECT_TRUE(Contains(ir::PrintFunction(*out), "rec_new"));
}

TEST(CondFlatten, AndBecomesBitAnd) {
  TypeFactory types;
  Function fn("f", &types);
  Builder b(&fn);
  Stmt* c = b.And(b.BoolC(true), b.BoolC(false));
  b.If(c, [&] { b.EmitRow({b.I64(1)}); });
  auto out = opt::FlattenConditions(fn);
  std::string text = ir::PrintFunction(*out);
  EXPECT_TRUE(Contains(text, "bitand")) << text;
  EXPECT_FALSE(Contains(text, "= and(")) << text;
}

TEST(RangeAnalysis, PropagatesCatalogAndArithmetic) {
  storage::Database db = MakeDb();
  TypeFactory types;
  Function fn("f", &types);
  Builder b(&fn);
  Stmt* captured_col = nullptr;
  Stmt* captured_expr = nullptr;
  Stmt* captured_f64 = nullptr;
  b.ForRange(b.I64(0), b.TableRows(1), [&](Stmt* i) {
    captured_col = b.ColGet(1, 0, i, types.I64());  // T.k in [1,50]
    captured_expr = b.Add(b.Mul(captured_col, b.I64(2)), b.I64(5));
    captured_f64 = b.ColGet(1, 3, i, types.F64());
    b.EmitRow({captured_expr});
  });
  opt::RangeAnalysis ra(fn, &db);
  opt::ValueRange r1 = ra.Of(captured_col);
  ASSERT_TRUE(r1.known);
  EXPECT_EQ(r1.lo, 1);
  EXPECT_EQ(r1.hi, 50);
  opt::ValueRange r2 = ra.Of(captured_expr);
  ASSERT_TRUE(r2.known);
  EXPECT_EQ(r2.lo, 7);
  EXPECT_EQ(r2.hi, 105);
  EXPECT_FALSE(ra.Of(captured_f64).known);
}

TEST(RangeAnalysis, RecordFieldsUnionConstructionSites) {
  storage::Database db = MakeDb();
  TypeFactory types;
  Function fn("f", &types);
  Builder b(&fn);
  const ir::Type* rec = types.Record("RR", {{"a", types.I64()}});
  Stmt* r1 = b.RecNew(rec, {b.I64(10)});
  Stmt* r2 = b.RecNew(rec, {b.I64(90)});
  Stmt* g = b.RecGet(r1, 0);
  b.EmitRow({g, b.RecGet(r2, 0)});
  opt::RangeAnalysis ra(fn, &db);
  opt::ValueRange r = ra.Of(g);
  ASSERT_TRUE(r.known);
  EXPECT_EQ(r.lo, 10);
  EXPECT_EQ(r.hi, 90);
}

TEST(StringDict, EqualityBecomesCodeCompare) {
  storage::Database db = MakeDb();
  TypeFactory types;
  Function fn("f", &types);
  Builder b(&fn);
  b.ForRange(b.I64(0), b.TableRows(1), [&](Stmt* i) {
    Stmt* name = b.ColGet(1, 2, i, types.Str());
    b.If(b.StrEq(name, b.StrC("beta")), [&] { b.EmitRow({i}); });
  });
  auto out = opt::ApplyStringDictionaries(fn, &db);
  opt::DeadCodeElimination(out.get());
  std::string text = ir::PrintFunction(*out);
  EXPECT_TRUE(Contains(text, "col_dict")) << text;
  EXPECT_FALSE(Contains(text, "str_eq")) << text;
}

TEST(StringDict, AbsentConstantIsStaticallyDecided) {
  storage::Database db = MakeDb();
  TypeFactory types;
  Function fn("f", &types);
  Builder b(&fn);
  b.ForRange(b.I64(0), b.TableRows(1), [&](Stmt* i) {
    Stmt* name = b.ColGet(1, 2, i, types.Str());
    b.If(b.StrEq(name, b.StrC("no-such-value")), [&] { b.EmitRow({i}); });
  });
  auto out = opt::ApplyStringDictionaries(fn, &db);
  opt::DeadCodeElimination(out.get());
  std::string text = ir::PrintFunction(*out);
  // The branch can never fire: no dictionary read is even needed.
  EXPECT_FALSE(Contains(text, "col_dict")) << text;
  EXPECT_FALSE(Contains(text, "str_eq")) << text;
}

TEST(StringDict, PrefixBecomesOrderedRange) {
  storage::Database db = MakeDb();
  TypeFactory types;
  Function fn("f", &types);
  Builder b(&fn);
  b.ForRange(b.I64(0), b.TableRows(1), [&](Stmt* i) {
    Stmt* name = b.ColGet(1, 2, i, types.Str());
    b.If(b.StrStartsWith(name, b.StrC("g")), [&] { b.EmitRow({i}); });
  });
  auto out = opt::ApplyStringDictionaries(fn, &db);
  std::string text = ir::PrintFunction(*out);
  EXPECT_TRUE(Contains(text, "col_dict")) << text;
  EXPECT_TRUE(Contains(text, "ge(")) << text;
  EXPECT_TRUE(Contains(text, "le(")) << text;
}

// Aggregation over a small-range key must become a direct-addressed array.
TEST(HashSpec, SmallRangeAggBecomesArray) {
  storage::Database db = MakeDb();
  TypeFactory types;
  Function fn("f", &types);
  Builder b(&fn);
  const ir::Type* agg = types.Record(
      "A", {{"g", types.I64()}, {"sum", types.F64()}, {"n", types.I64()}});
  Stmt* map = b.MapNew(types.I64(), agg);
  b.ForRange(b.I64(0), b.TableRows(1), [&](Stmt* i) {
    Stmt* grp = b.ColGet(1, 1, i, types.I64());  // [0,9]
    Stmt* val = b.ColGet(1, 3, i, types.F64());
    Stmt* rec = b.MapGetOrElseUpdate(map, grp, [&] {
      return b.RecNew(agg, {grp, b.F64(0), b.I64(0)});
    });
    b.RecSet(rec, 1, b.Add(b.RecGet(rec, 1), val));
    b.RecSet(rec, 2, b.Add(b.RecGet(rec, 2), b.I64(1)));
  });
  b.MapForeach(map, [&](Stmt* /*k*/, Stmt* rec) {
    b.EmitRow({b.RecGet(rec, 0), b.RecGet(rec, 1)});
  });
  auto out = opt::SpecializeHashStructures(fn, &db);
  opt::DeadCodeElimination(out.get());
  std::string text = ir::PrintFunction(*out);
  EXPECT_TRUE(Contains(text, "arr_new")) << text;
  EXPECT_FALSE(Contains(text, "map_new")) << text;
  EXPECT_FALSE(Contains(text, "map_get_or_else_update")) << text;
  ir::CheckLevel(*out, ir::Level::kList);
}

TEST(HashSpec, UnboundedKeyStaysGeneric) {
  storage::Database db = MakeDb();
  TypeFactory types;
  Function fn("f", &types);
  Builder b(&fn);
  const ir::Type* agg = types.Record(
      "B", {{"g", types.F64()}, {"n", types.I64()}});
  // f64 keys have no usable range: must stay a generic hash table.
  Stmt* map = b.MapNew(types.F64(), agg);
  b.ForRange(b.I64(0), b.TableRows(1), [&](Stmt* i) {
    Stmt* v = b.ColGet(1, 3, i, types.F64());
    Stmt* rec = b.MapGetOrElseUpdate(
        map, v, [&] { return b.RecNew(agg, {v, b.I64(0)}); });
    b.RecSet(rec, 1, b.Add(b.RecGet(rec, 1), b.I64(1)));
  });
  b.MapForeach(map, [&](Stmt* /*k*/, Stmt* rec) {
    b.EmitRow({b.RecGet(rec, 0)});
  });
  auto out = opt::SpecializeHashStructures(fn, &db);
  EXPECT_TRUE(Contains(ir::PrintFunction(*out), "map_new"));
}

// Build a join-shaped function: build side scans table T keyed on column c.
std::unique_ptr<Function> JoinShape(TypeFactory* types, int key_col) {
  auto fn = std::make_unique<Function>("f", types);
  Builder b(fn.get());
  const ir::Type* tup =
      types->Record("JT" + std::to_string(key_col),
                    {{"k", types->I64()}, {"val", types->F64()}});
  Stmt* mm = b.MMapNew(types->I64(), tup);
  b.ForRange(b.I64(0), b.TableRows(1), [&](Stmt* i) {
    Stmt* key = b.ColGet(1, key_col, i, types->I64());
    Stmt* val = b.ColGet(1, 3, i, types->F64());
    b.If(b.Gt(val, b.F64(10.0)), [&] {
      Stmt* rec = b.RecNew(tup, {key, val});
      b.MMapAdd(mm, key, rec);
    });
  });
  // Probe with G.gk.
  b.ForRange(b.I64(0), b.TableRows(0), [&](Stmt* g) {
    Stmt* gk = b.ColGet(0, 0, g, types->I64());
    Stmt* lst = b.MMapGetOrNull(mm, gk);
    b.If(b.Not(b.IsNull(lst)), [&] {
      b.ListForeach(lst, [&](Stmt* rec) {
        b.EmitRow({gk, b.RecGet(rec, 1)});
      });
    });
  });
  return fn;
}

TEST(IndexInference, FkBuildScanBecomesPartitionedIndex) {
  storage::Database db = MakeDb();
  TypeFactory types;
  auto fn = JoinShape(&types, /*key_col=*/1);  // T.grp is a FK
  auto out = opt::InferIndexes(*fn, &db);
  opt::DeadCodeElimination(out.get());
  std::string text = ir::PrintFunction(*out);
  EXPECT_TRUE(Contains(text, "idx_bucket_len")) << text;
  EXPECT_TRUE(Contains(text, "idx_bucket_row")) << text;
  EXPECT_FALSE(Contains(text, "mmap_new")) << text;
  // The build-side filter survives inside the probe loop (Fig. 7c).
  EXPECT_TRUE(Contains(text, "gt(")) << text;
  ir::CheckFunction(*out);
}

TEST(IndexInference, PkBuildScanBecomesRowLookup) {
  storage::Database db = MakeDb();
  TypeFactory types;
  auto fn = JoinShape(&types, /*key_col=*/0);  // T.k is the PK
  auto out = opt::InferIndexes(*fn, &db);
  opt::DeadCodeElimination(out.get());
  std::string text = ir::PrintFunction(*out);
  EXPECT_TRUE(Contains(text, "idx_pk_row")) << text;
  EXPECT_FALSE(Contains(text, "idx_bucket_len")) << text;
  EXPECT_FALSE(Contains(text, "mmap_new")) << text;
}

TEST(IndexInference, NonKeyColumnIsLeftAlone) {
  storage::Database db = MakeDb();
  TypeFactory types;
  // Key column 3 is val (f64, not annotated): not eligible... use col 2
  // (name, str) is not integral either; use a non-annotated i64: none in T,
  // so re-use grp but drop the FK annotation.
  storage::Database db2;
  storage::TableDef g = db.table(0).def();
  storage::TableDef t = db.table(1).def();
  t.foreign_keys.clear();
  t.primary_key = -1;
  storage::Table* gt = db2.AddTable(g);
  storage::Table* tt = db2.AddTable(t);
  for (int64_t r = 0; r < db.table(0).rows(); ++r) {
    gt->column(0).data.push_back(db.table(0).column(0).data[r]);
  }
  for (int64_t r = 0; r < db.table(1).rows(); ++r) {
    for (size_t c = 0; c < 4; ++c) {
      Slot v = db.table(1).column(static_cast<int>(c)).data[r];
      if (c == 2) v = SlotS(tt->InternString(v.s));
      tt->column(static_cast<int>(c)).data.push_back(v);
    }
  }
  auto fn = JoinShape(&types, 1);
  auto out = opt::InferIndexes(*fn, &db2);
  EXPECT_TRUE(Contains(ir::PrintFunction(*out), "mmap_new"));
}

}  // namespace
}  // namespace qc
