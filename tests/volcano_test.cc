// Direct semantics tests for the Volcano oracle itself on hand-computed
// minis — since every compiled configuration is checked against the oracle,
// the oracle's own operator semantics need independent coverage.
#include <gtest/gtest.h>

#include "qplan/plan.h"
#include "storage/database.h"
#include "volcano/volcano.h"

namespace qc {
namespace {

using namespace qc::qplan;  // NOLINT

storage::Database MakeDb() {
  storage::Database db;
  storage::TableDef l;
  l.name = "L";
  l.columns = {{"id", storage::ColType::kI64},
               {"grp", storage::ColType::kI64},
               {"v", storage::ColType::kF64}};
  storage::Table* lt = db.AddTable(l);
  // id: 1..6, grp: 0,1,0,1,0,1 v: 10,20,30,40,50,60
  for (int i = 0; i < 6; ++i) {
    lt->column(0).data.push_back(SlotI(i + 1));
    lt->column(1).data.push_back(SlotI(i % 2));
    lt->column(2).data.push_back(SlotD((i + 1) * 10.0));
  }
  storage::TableDef r;
  r.name = "R";
  r.columns = {{"key", storage::ColType::kI64},
               {"tag", storage::ColType::kStr}};
  storage::Table* rt = db.AddTable(r);
  // keys 1,2,2,9
  int64_t keys[] = {1, 2, 2, 9};
  const char* tags[] = {"one", "two", "two2", "nine"};
  for (int i = 0; i < 4; ++i) {
    rt->column(0).data.push_back(SlotI(keys[i]));
    rt->column(1).data.push_back(SlotS(rt->InternString(tags[i])));
  }
  return db;
}

TEST(Volcano, SelectProject) {
  storage::Database db = MakeDb();
  PlanPtr p = ProjectOp(SelectOp(ScanOp("L"), Gt(Col("v"), F(25.0))),
                        {{"double_v", Mul(Col("v"), F(2.0))}});
  ResolvePlan(p.get(), db);
  storage::ResultTable r = volcano::Execute(*p, db);
  ASSERT_EQ(r.size(), 4u);  // v in {30,40,50,60}
  EXPECT_EQ(r.row(0)[0].d, 60.0);
}

TEST(Volcano, InnerJoinMultiplicity) {
  storage::Database db = MakeDb();
  // L.id joins R.key: id=1 -> 1 match, id=2 -> 2 matches, others 0 (except 9
  // not present in L). Expect 3 rows.
  PlanPtr p = JoinOp(JoinKind::kInner, ScanOp("L"), ScanOp("R"), {Col("id")},
                     {Col("key")});
  ResolvePlan(p.get(), db);
  EXPECT_EQ(volcano::Execute(*p, db).size(), 3u);
}

TEST(Volcano, SemiAntiPartitionTheInput) {
  storage::Database db = MakeDb();
  PlanPtr semi = JoinOp(JoinKind::kSemi, ScanOp("L"), ScanOp("R"),
                        {Col("id")}, {Col("key")});
  PlanPtr anti = JoinOp(JoinKind::kAnti, ScanOp("L"), ScanOp("R"),
                        {Col("id")}, {Col("key")});
  ResolvePlan(semi.get(), db);
  ResolvePlan(anti.get(), db);
  size_t ns = volcano::Execute(*semi, db).size();
  size_t na = volcano::Execute(*anti, db).size();
  EXPECT_EQ(ns, 2u);  // ids 1 and 2 (semi emits each left row once)
  EXPECT_EQ(na, 4u);
  EXPECT_EQ(ns + na, 6u);  // partition of L
}

TEST(Volcano, OuterJoinPadsAndFlags) {
  storage::Database db = MakeDb();
  PlanPtr p = JoinOp(JoinKind::kLeftOuter, ScanOp("L"), ScanOp("R"),
                     {Col("id")}, {Col("key")});
  ResolvePlan(p.get(), db);
  storage::ResultTable r = volcano::Execute(*p, db);
  // 3 matched rows + 4 unmatched left rows.
  ASSERT_EQ(r.size(), 7u);
  int matched = 0;
  for (size_t i = 0; i < r.size(); ++i) {
    // Last column is the generated `matched` flag.
    matched += static_cast<int>(r.row(i).back().i);
  }
  EXPECT_EQ(matched, 3);
}

TEST(Volcano, ResidualPredicateFiltersPairs) {
  storage::Database db = MakeDb();
  PlanPtr p = JoinOp(JoinKind::kInner, ScanOp("L"), ScanOp("R"), {Col("id")},
                     {Col("key")}, Ne(Col("tag"), S("two")));
  ResolvePlan(p.get(), db);
  EXPECT_EQ(volcano::Execute(*p, db).size(), 2u);  // drops the "two" pair
}

TEST(Volcano, GroupedAggregates) {
  storage::Database db = MakeDb();
  PlanPtr p = AggOp(ScanOp("L"), {{"grp", Col("grp")}},
                    {Sum(Col("v"), "s"), Count("n"), Min(Col("v"), "mn"),
                     Max(Col("v"), "mx"), Avg(Col("v"), "a")});
  ResolvePlan(p.get(), db);
  storage::ResultTable r = volcano::Execute(*p, db);
  ASSERT_EQ(r.size(), 2u);
  for (size_t i = 0; i < 2; ++i) {
    int64_t grp = r.row(i)[0].i;
    double sum = r.row(i)[1].d;
    int64_t n = r.row(i)[2].i;
    EXPECT_EQ(n, 3);
    if (grp == 0) {
      EXPECT_DOUBLE_EQ(sum, 10 + 30 + 50);
      EXPECT_DOUBLE_EQ(r.row(i)[3].d, 10.0);   // min
      EXPECT_DOUBLE_EQ(r.row(i)[4].d, 50.0);   // max
      EXPECT_DOUBLE_EQ(r.row(i)[5].d, 30.0);   // avg
    } else {
      EXPECT_DOUBLE_EQ(sum, 20 + 40 + 60);
    }
  }
}

TEST(Volcano, GlobalAggOnEmptyInputYieldsZeroRow) {
  storage::Database db = MakeDb();
  PlanPtr p = AggOp(SelectOp(ScanOp("L"), Gt(Col("v"), F(1e9))), {},
                    {Sum(Col("v"), "s"), Count("n")});
  ResolvePlan(p.get(), db);
  storage::ResultTable r = volcano::Execute(*p, db);
  ASSERT_EQ(r.size(), 1u);
  EXPECT_DOUBLE_EQ(r.row(0)[0].d, 0.0);
  EXPECT_EQ(r.row(0)[1].i, 0);
}

TEST(Volcano, SortStableAndDirectional) {
  storage::Database db = MakeDb();
  PlanPtr p = SortOp(ScanOp("L"), {Asc(Col("grp")), Desc(Col("v"))});
  ResolvePlan(p.get(), db);
  storage::ResultTable r = volcano::Execute(*p, db);
  ASSERT_EQ(r.size(), 6u);
  // grp 0 first with v descending 50,30,10 then grp 1 with 60,40,20.
  EXPECT_DOUBLE_EQ(r.row(0)[2].d, 50.0);
  EXPECT_DOUBLE_EQ(r.row(1)[2].d, 30.0);
  EXPECT_DOUBLE_EQ(r.row(2)[2].d, 10.0);
  EXPECT_DOUBLE_EQ(r.row(3)[2].d, 60.0);
}

TEST(Volcano, LimitTruncates) {
  storage::Database db = MakeDb();
  PlanPtr p = LimitOp(SortOp(ScanOp("L"), {Desc(Col("v"))}), 2);
  ResolvePlan(p.get(), db);
  storage::ResultTable r = volcano::Execute(*p, db);
  ASSERT_EQ(r.size(), 2u);
  EXPECT_DOUBLE_EQ(r.row(0)[2].d, 60.0);
  EXPECT_DOUBLE_EQ(r.row(1)[2].d, 50.0);
}

TEST(Volcano, CaseAndStringPredicates) {
  storage::Database db = MakeDb();
  PlanPtr p = ProjectOp(
      SelectOp(ScanOp("R"), StartsWith(Col("tag"), "two")),
      {{"flag", Case(Eq(Col("tag"), S("two")), I(1), I(0))}});
  ResolvePlan(p.get(), db);
  storage::ResultTable r = volcano::Execute(*p, db);
  ASSERT_EQ(r.size(), 2u);
  EXPECT_EQ(r.row(0)[0].i + r.row(1)[0].i, 1);  // exactly one exact match
}

TEST(Volcano, KeylessJoinIsCrossProductWithResidual) {
  storage::Database db = MakeDb();
  PlanPtr avg = AggOp(ScanOp("L"), {}, {Avg(Col("v"), "av")});
  PlanPtr p = JoinOp(JoinKind::kInner, ScanOp("L"), std::move(avg), {}, {},
                     Gt(Col("v"), Col("av")));
  ResolvePlan(p.get(), db);
  // avg = 35; rows with v > 35: 40, 50, 60.
  EXPECT_EQ(volcano::Execute(*p, db).size(), 3u);
}

}  // namespace
}  // namespace qc
