// C backend end-to-end: generated programs must compile with the system C
// compiler and print exactly the rows the Volcano oracle computes, for a
// sample of TPC-H queries across stack configurations.
#include <gtest/gtest.h>

#include <sys/stat.h>

#include <cstdlib>
#include <string>

#include "cgen/cc_driver.h"
#include "common/fault.h"
#include "cgen/emit.h"
#include "compiler/compiler.h"
#include "storage/result.h"
#include "tpch/datagen.h"
#include "tpch/queries.h"
#include "volcano/volcano.h"

namespace qc {
namespace {

using compiler::QueryCompiler;
using compiler::StackConfig;

class CgenTest : public ::testing::TestWithParam<int> {
 protected:
  static storage::Database* db() {
    static storage::Database* db = [] {
      auto* d = new storage::Database(tpch::MakeTpchDatabase(0.002, 11));
      system(("mkdir -p " + WorkDir()).c_str());
      d->ExportBinary(WorkDir());
      return d;
    }();
    return db;
  }

  static std::string WorkDir() {
    const char* t = getenv("TMPDIR");
    return std::string(t != nullptr ? t : "/tmp") + "/qcstack_cgen_test";
  }
};

TEST_P(CgenTest, GeneratedCMatchesOracle) {
  int q = GetParam();
  qplan::PlanPtr plan = tpch::MakeQuery(q);
  qplan::ResolvePlan(plan.get(), *db());
  storage::ResultTable oracle = volcano::Execute(*plan, *db());
  std::vector<std::string> expected;
  for (size_t i = 0; i < oracle.size(); ++i) {
    expected.push_back(oracle.RowToString(i));
  }
  std::sort(expected.begin(), expected.end());

  // All queries compile and run natively at the full stack; a sample also
  // exercises the 2-level (generic-collection) code path to keep the suite
  // fast.
  std::vector<int> levels_to_test = {5};
  for (int sample : {1, 3, 5, 6, 9, 13, 14, 18, 22}) {
    if (q == sample) levels_to_test.push_back(2);
  }
  for (int levels : levels_to_test) {
    StackConfig cfg = StackConfig::Level(levels);
    ir::TypeFactory types;
    QueryCompiler qc(db(), &types);
    compiler::CompileResult res =
        qc.Compile(*plan, cfg, "q" + std::to_string(q));
    std::string src = cgen::EmitProgram(*res.fn, *db(), WorkDir());
    db()->ExportAux(WorkDir());  // dictionaries/indexes the program expects

    cgen::CcDriver driver(WorkDir());
    double compile_ms = 0;
    std::string error;
    std::string bin = driver.Compile(
        "q" + std::to_string(q) + "_l" + std::to_string(levels), src,
        &compile_ms, &error);
    ASSERT_FALSE(bin.empty()) << "Q" << q << " L" << levels
                              << " compile failed:\n"
                              << error;
    cgen::RunOutput out = driver.Run(bin);
    ASSERT_TRUE(out.ok) << "Q" << q << " L" << levels << ": " << out.error;

    std::vector<std::string> got = out.row_text;
    std::sort(got.begin(), got.end());
    EXPECT_EQ(got, expected) << "Q" << q << " L" << levels;
  }
}

INSTANTIATE_TEST_SUITE_P(AllQueries, CgenTest, ::testing::Range(1, 23));

// Binary-cache robustness: an injected failure of the cache-source write
// (QC_FAULT=cc_cache_write) must surface as a clean Compile error without
// installing a truncated .c for a later process to pick up — the atomic
// temp + rename(2) protocol. Disarmed, the identical Compile succeeds.
TEST(CgenCacheFaultTest, FailedSourceWriteLeavesNoPartialFile) {
  std::string dir = std::string(getenv("TMPDIR") != nullptr
                                    ? getenv("TMPDIR")
                                    : "/tmp") +
                    "/qcstack_cgen_fault_test";
  system(("rm -rf " + dir + " && mkdir -p " + dir).c_str());
  cgen::CcDriver driver(dir);
  const char* kSrc =
      "#include <stdio.h>\n"
      "int main(void) {\n"
      "  printf(\"ROWS=1 TIME_MS=0.0 MEM_BYTES=0\\n\");\n"
      "  return 0;\n"
      "}\n";

  ::setenv("QC_FAULT", "cc_cache_write:1", 1);
  FaultReArm();
  std::string error;
  std::string bin = driver.Compile("fault_probe", kSrc, nullptr, &error);
  ::unsetenv("QC_FAULT");
  FaultReArm();
  EXPECT_TRUE(bin.empty()) << "injected write failure must fail Compile";
  EXPECT_NE(error.find("cannot write"), std::string::npos) << error;
  // Neither the final source nor any temp may survive the failed write.
  struct stat st;
  EXPECT_NE(::stat((dir + "/fault_probe.c").c_str(), &st), 0)
      << "partial cache source left behind";

  // Same driver, same source, fault disarmed: the cache fill completes and
  // the binary runs.
  bin = driver.Compile("fault_probe", kSrc, nullptr, &error);
  ASSERT_FALSE(bin.empty()) << error;
  cgen::RunOutput out = driver.Run(bin);
  EXPECT_TRUE(out.ok) << out.error;
}

}  // namespace
}  // namespace qc
