// The sort subsystem's contract (exec/runtime.h StableSortSlots +
// exec/parallel.h ParallelStableSort + the src/jit/ native sort sites):
// every engine sorts through the same stable merge core, so the output —
// including the relative order of equal keys — is identical across
// {tree walk, bytecode VM, JIT} x threads {1, 2, 4} x any chunk
// decomposition, and bit-identical to the pre-subsystem std::stable_sort
// engines. Duplicate-key inputs are the interesting case: only stability
// pins their output order.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <string>
#include <utility>
#include <vector>

#include "compiler/compiler.h"
#include "exec/interp.h"
#include "ir/builder.h"
#include "jit/engine.h"
#include "lower/pipeline.h"
#include "tpch/datagen.h"
#include "tpch/queries.h"

namespace qc {
namespace {

using compiler::QueryCompiler;
using compiler::StackConfig;
using exec::InterpOptions;
using ir::Stmt;

InterpOptions Opts(InterpOptions::Engine e, int threads,
                   int64_t morsel_rows = 2048) {
  InterpOptions o;
  o.engine = e;
  o.num_threads = threads;
  o.morsel_rows = morsel_rows;
  return o;
}

const InterpOptions::Engine kEngines[] = {InterpOptions::Engine::kBytecode,
                                          InterpOptions::Engine::kTreeWalk,
                                          InterpOptions::Engine::kJit};
const char* kEngineNames[] = {"bytecode", "treewalk", "jit"};

void ExpectBitExact(const storage::ResultTable& got,
                    const storage::ResultTable& want,
                    const std::string& tag) {
  ASSERT_EQ(got.size(), want.size()) << tag << ": row count";
  ASSERT_EQ(got.types().size(), want.types().size()) << tag << ": arity";
  for (size_t r = 0; r < got.size(); ++r) {
    for (size_t c = 0; c < got.types().size(); ++c) {
      if (got.types()[c] == storage::ColType::kStr) {
        ASSERT_STREQ(got.row(r)[c].s, want.row(r)[c].s)
            << tag << ": row " << r << " col " << c;
      } else {
        ASSERT_EQ(got.row(r)[c].i, want.row(r)[c].i)
            << tag << ": row " << r << " col " << c;
      }
    }
  }
}

void ExpectStatsEqual(const exec::AllocStats& got,
                      const exec::AllocStats& want, const std::string& tag) {
  EXPECT_EQ(got.heap_bytes, want.heap_bytes) << tag << ": heap_bytes";
  EXPECT_EQ(got.heap_allocs, want.heap_allocs) << tag << ": heap_allocs";
  EXPECT_EQ(got.pool_bytes, want.pool_bytes) << tag << ": pool_bytes";
  EXPECT_EQ(got.vector_bytes, want.vector_bytes) << tag << ": vector_bytes";
}

// Forces the parallel sort to engage on small test inputs; restored so
// other suites in the same process see the default.
struct ScopedSortMin {
  explicit ScopedSortMin(const char* v) {
    ::setenv("QC_PAR_SORT_MIN", v, 1);
  }
  ~ScopedSortMin() { ::unsetenv("QC_PAR_SORT_MIN"); }
};

// Builds: a list of `rows` encoded (key, seq) values — key = (i * 7919) %
// `keys` so every key repeats many times, seq = i — appended by a scan
// loop (which itself qualifies for morsel parallelism), sorted by key
// ONLY, then emitted. Ties are broken by nothing: only stability fixes
// the output order (seq must stay ascending within each key).
std::unique_ptr<ir::Function> BuildDupKeySort(ir::TypeFactory* types,
                                              int64_t rows, int64_t keys,
                                              const std::string& name) {
  auto fn = std::make_unique<ir::Function>(name, types);
  ir::Builder b(fn.get());
  const ir::Type* i64 = types->I64();
  Stmt* enc = b.I64(1 << 20);  // value = key * 2^20 + seq
  Stmt* list = b.ListNew(i64);
  b.ForRange(b.I64(0), b.I64(rows), [&](Stmt* i) {
    Stmt* key = b.Mod(b.Mul(i, b.I64(7919)), b.I64(keys));
    b.ListAppend(list, b.Add(b.Mul(key, enc), i));
  });
  b.ListSortBy(list, [&](Stmt* x, Stmt* y) {
    return b.Lt(b.Div(x, enc), b.Div(y, enc));  // compares the key only
  });
  b.ListForeach(list, [&](Stmt* e) {
    b.EmitRow({b.Div(e, enc), b.Mod(e, enc)});
  });
  return fn;
}

TEST(SortStability, DuplicateKeysIdenticalAcrossEnginesAndThreads) {
  ScopedSortMin min_rows("256");  // well below rows/2: the sort parallelizes
  storage::Database db;
  ir::TypeFactory types;
  const int64_t kRows = 50000;
  const int64_t kKeys = 97;
  auto fn = BuildDupKeySort(&types, kRows, kKeys, "dup_key_sort");

  // Independent oracle: the stable sort of (key, seq) by key.
  std::vector<std::pair<int64_t, int64_t>> want;
  want.reserve(kRows);
  for (int64_t i = 0; i < kRows; ++i) {
    want.emplace_back((i * 7919) % kKeys, i);
  }
  std::stable_sort(want.begin(), want.end(),
                   [](const auto& a, const auto& b) {
                     return a.first < b.first;  // key only: ties untouched
                   });

  storage::ResultTable ref;
  bool have_ref = false;
  for (int e = 0; e < 3; ++e) {
    for (int threads : {1, 2, 4}) {
      exec::Interpreter interp(&db, Opts(kEngines[e], threads, 512));
      storage::ResultTable got = interp.Run(*fn);
      std::string tag = std::string("dup-key ") + kEngineNames[e] +
                        " threads=" + std::to_string(threads);
      ASSERT_EQ(got.size(), static_cast<size_t>(kRows)) << tag;
      for (size_t r = 0; r < got.size(); ++r) {
        ASSERT_EQ(got.row(r)[0].i, want[r].first) << tag << ": key row " << r;
        ASSERT_EQ(got.row(r)[1].i, want[r].second)
            << tag << ": tie order lost at row " << r;
      }
      if (!have_ref) {
        ref = std::move(got);
        have_ref = true;
      } else {
        ExpectBitExact(got, ref, tag);
      }
    }
  }
}

TEST(SortStability, EmptyAndSingleChunkEdges) {
  ScopedSortMin min_rows("256");
  storage::Database db;
  ir::TypeFactory types;
  // Empty input: the sort must be a no-op on every path.
  auto empty = BuildDupKeySort(&types, 0, 7, "empty_sort");
  // Below 2 * QC_PAR_SORT_MIN: exactly one chunk — the parallel path
  // declines and the sequential core runs, same bytes.
  auto single = BuildDupKeySort(&types, 300, 7, "single_chunk_sort");
  for (auto* fn : {empty.get(), single.get()}) {
    storage::ResultTable ref;
    bool have_ref = false;
    for (int e = 0; e < 3; ++e) {
      for (int threads : {1, 4}) {
        exec::Interpreter interp(&db, Opts(kEngines[e], threads, 64));
        storage::ResultTable got = interp.Run(*fn);
        std::string tag = fn->name() + " " + kEngineNames[e] + " threads=" +
                          std::to_string(threads);
        if (!have_ref) {
          ref = std::move(got);
          have_ref = true;
        } else {
          ExpectBitExact(got, ref, tag);
        }
      }
    }
    ASSERT_EQ(ref.size(),
              static_cast<size_t>(fn == empty.get() ? 0 : 300));
  }
}

// A sort of loop-local state inside a morsel-parallelized scan loop: the
// loop qualifies (ir/parallel.cc allows loop-local kListSortBy), so under
// threads > 1 the sort executes on worker threads while the pool's scan
// batch is in flight. The single-batch WorkerPool cannot nest, so these
// sorts must stay sequential on every engine — the compiler withholds the
// parallel flag inside morsel fragments (the JIT's sort helper sees only
// that flag), and the interpreters additionally gate on morsel context.
// QC_PAR_SORT_MIN=2 makes any missed gate redispatch immediately.
TEST(SortStability, InLoopSortsStaySequentialOnWorkers) {
  ScopedSortMin min_rows("2");
  storage::Database db;
  ir::TypeFactory types;
  ir::Function fn("in_loop_sort", &types);
  ir::Builder b(&fn);
  const ir::Type* i64 = types.I64();
  Stmt* sum = b.VarNew(b.I64(0));
  b.ForRange(b.I64(0), b.I64(20000), [&](Stmt* i) {
    Stmt* local = b.ListNew(i64);  // iteration-local: the loop qualifies
    // Six elements: past ParallelStableSort's floor of 2 * QC_PAR_SORT_MIN
    // (= 4 at the clamp minimum), so a missed gate would actually
    // redispatch onto the busy pool instead of passing vacuously.
    for (int64_t m : {7, 5, 3, 11, 13, 2}) {
      b.ListAppend(local, b.Mod(i, b.I64(m)));
    }
    b.ListSortBy(local, [&](Stmt* x, Stmt* y) { return b.Lt(x, y); });
    b.VarAssign(sum, b.Add(b.VarRead(sum), b.ListGet(local, b.I64(4))));
  });
  b.EmitRow({b.VarRead(sum)});

  ir::ParallelInfo info = ir::AnalyzeParallelism(fn);
  ASSERT_EQ(info.loops.size(), 1u) << "the in-loop-sort scan must qualify";

  // Structural half of the lock: the main-stream copy of the sort (the
  // sequential fallback, main-thread-only) keeps the pure-comparator
  // parallel flag, while the morsel-fragment copy must have it withheld —
  // the JIT's sort helper sees only that flag.
  {
    storage::Database cdb;
    exec::BytecodeProgram prog =
        exec::BytecodeCompiler(&cdb).Compile(fn, &info);
    ASSERT_EQ(prog.par_loops.size(), 1u);
    uint32_t frag_entry = prog.par_loops[0].entry;
    int main_sorts = 0, frag_sorts = 0;
    for (size_t pc = 0; pc < prog.code.size(); ++pc) {
      if (static_cast<exec::BcOp>(prog.code[pc].op) !=
          exec::BcOp::kListSort) {
        continue;
      }
      if (pc < frag_entry) {
        ++main_sorts;
        EXPECT_EQ(prog.code[pc].n, 1u) << "main-stream sort lost the flag";
      } else {
        ++frag_sorts;
        EXPECT_EQ(prog.code[pc].n, 0u)
            << "fragment sort at pc " << pc
            << " may redispatch onto the busy pool from a worker";
      }
    }
    EXPECT_EQ(main_sorts, 1);
    EXPECT_EQ(frag_sorts, 1);
  }

  storage::ResultTable ref;
  bool have_ref = false;
  for (int e = 0; e < 3; ++e) {
    for (int threads : {1, 4}) {
      exec::Interpreter interp(&db, Opts(kEngines[e], threads, 512));
      storage::ResultTable got = interp.Run(fn);
      std::string tag = std::string("in-loop sort ") + kEngineNames[e] +
                        " threads=" + std::to_string(threads);
      ASSERT_EQ(got.size(), 1u) << tag;
      if (!have_ref) {
        ref = std::move(got);
        have_ref = true;
      } else {
        ExpectBitExact(got, ref, tag);
      }
    }
  }
}

// The sort-heavy TPC-H queries (every ORDER BY shape the stack lowers:
// Q1/Q3/Q10/Q16/Q18), at both stack levels, all engines, threads {1,2,4},
// with the parallel sort forced on: bit-exact results and exact AllocStats
// vs the sequential bytecode VM.
class SortHeavyTpchTest : public ::testing::TestWithParam<int> {
 protected:
  static storage::Database* db() {
    static storage::Database* db =
        new storage::Database(tpch::MakeTpchDatabase(0.01));
    return db;
  }

  static void CheckAllConfigs(const ir::Function& fn,
                              const std::string& tag) {
    exec::Interpreter refi(db(), Opts(InterpOptions::Engine::kBytecode, 1));
    storage::ResultTable want = refi.Run(fn);
    for (int e = 0; e < 3; ++e) {
      exec::AllocStats seq_stats;
      for (int threads : {1, 2, 4}) {
        exec::Interpreter interp(db(), Opts(kEngines[e], threads, 777));
        storage::ResultTable got = interp.Run(fn);
        std::string t = tag + " " + kEngineNames[e] + " threads=" +
                        std::to_string(threads);
        ExpectBitExact(got, want, t);
        if (threads == 1) {
          seq_stats = interp.stats();
        } else {
          ExpectStatsEqual(interp.stats(), seq_stats, t);
        }
      }
    }
  }
};

TEST_P(SortHeavyTpchTest, BothStackLevelsBitExact) {
  ScopedSortMin min_rows("64");
  int q = GetParam();
  qplan::PlanPtr plan = tpch::MakeQuery(q);
  qplan::ResolvePlan(plan.get(), *db());
  {
    ir::TypeFactory types;
    auto fn = lower::LowerPlanPipelined(*plan, *db(), &types,
                                        "q" + std::to_string(q));
    CheckAllConfigs(*fn, "Q" + std::to_string(q) + " L3");
  }
  {
    ir::TypeFactory types;
    QueryCompiler qc(db(), &types);
    compiler::CompileResult res =
        qc.Compile(*plan, StackConfig::Level(5), "q" + std::to_string(q));
    CheckAllConfigs(*res.fn, "Q" + std::to_string(q) + " L5");
  }
}

INSTANTIATE_TEST_SUITE_P(OrderByQueries, SortHeavyTpchTest,
                         ::testing::Values(1, 3, 10, 16, 18));

// The tentpole's JIT claim, asserted structurally: on the sort-heavy
// queries every kArrSort/kListSort instruction — and every pc of its
// comparator subroutine — stitches natively, so sorts contribute zero
// deopt events (the comparator segment is driven by the native merge sort,
// never by the hybrid VM driver).
TEST(SortStability, JitSortSitesFullyNativeOnSortQueries) {
  if (!exec::jit::JitAvailable()) {
    GTEST_SKIP() << "JIT unavailable on this platform/configuration";
  }
  storage::Database db = tpch::MakeTpchDatabase(0.002);
  for (int q : {1, 3, 10, 16, 18}) {
    qplan::PlanPtr plan = tpch::MakeQuery(q);
    qplan::ResolvePlan(plan.get(), db);
    ir::TypeFactory types;
    QueryCompiler qc(&db, &types);
    compiler::CompileResult res =
        qc.Compile(*plan, StackConfig::Level(5), "q" + std::to_string(q));
    exec::BytecodeProgram prog = exec::BytecodeCompiler(&db).Compile(*res.fn);
    auto jp = exec::jit::JitProgram::Compile(prog);
    ASSERT_NE(jp, nullptr) << "Q" << q;
    size_t sort_insns = 0;
    for (size_t pc = 0; pc < prog.code.size(); ++pc) {
      exec::BcOp op = static_cast<exec::BcOp>(prog.code[pc].op);
      if (op != exec::BcOp::kArrSort && op != exec::BcOp::kListSort) continue;
      ++sort_insns;
      EXPECT_TRUE(jp->HasEntry(static_cast<uint32_t>(pc)))
          << "Q" << q << ": sort at pc " << pc << " deopts";
      for (uint32_t t = prog.code[pc].c; t < pc; ++t) {
        EXPECT_TRUE(jp->HasEntry(t))
            << "Q" << q << ": comparator pc " << t << " of sort at " << pc
            << " deopts";
      }
    }
    EXPECT_GT(sort_insns, 0u) << "Q" << q << " should contain a sort";
    EXPECT_EQ(jp->num_sort_sites(), sort_insns) << "Q" << q;
  }
}

}  // namespace
}  // namespace qc
