// Tests for the stack pass manager: configuration presets map to the
// paper's Table 3 rows, phases appear in the unique lowering order
// (transformation cohesion), every phase output verifies at its level, and
// compilation is deterministic.
#include <gtest/gtest.h>

#include "compiler/compiler.h"
#include "ir/printer.h"
#include "ir/verify.h"
#include "legobase/legobase.h"
#include "tpch/datagen.h"
#include "tpch/queries.h"

namespace qc {
namespace {

using compiler::QueryCompiler;
using compiler::StackConfig;

storage::Database* Db() {
  static storage::Database* db =
      new storage::Database(tpch::MakeTpchDatabase(0.002, 17));
  return db;
}

TEST(StackConfig, PresetsMatchPaperRows) {
  StackConfig l2 = StackConfig::Level(2);
  EXPECT_FALSE(l2.string_dict);
  EXPECT_FALSE(l2.index_inference);
  EXPECT_FALSE(l2.hash_spec);
  EXPECT_FALSE(l2.pool_hoist);

  StackConfig l3 = StackConfig::Level(3);
  EXPECT_TRUE(l3.pool_hoist);
  EXPECT_TRUE(l3.scalar_repl);
  EXPECT_FALSE(l3.hash_spec);  // needs the 4th level

  StackConfig l4 = StackConfig::Level(4);
  EXPECT_TRUE(l4.hash_spec);
  EXPECT_TRUE(l4.index_inference);
  EXPECT_FALSE(l4.intrusive_lists);  // needs the 5th level

  StackConfig l5 = StackConfig::Level(5);
  EXPECT_TRUE(l5.intrusive_lists);

  StackConfig compliant = StackConfig::Compliant();
  EXPECT_FALSE(compliant.string_dict);
  EXPECT_FALSE(compliant.index_inference);
  EXPECT_FALSE(compliant.hash_spec);
  EXPECT_TRUE(compliant.pool_hoist);

  StackConfig lego = StackConfig::LegoBase();
  EXPECT_TRUE(lego.hash_spec);
  EXPECT_FALSE(lego.index_inference);  // the DBLAB/LB-only optimization
}

TEST(Compiler, PhasesFollowTheLoweringPath) {
  qplan::PlanPtr plan = tpch::MakeQuery(3);
  qplan::ResolvePlan(plan.get(), *Db());
  ir::TypeFactory types;
  QueryCompiler qc(Db(), &types);
  compiler::CompileResult res =
      qc.Compile(*plan, StackConfig::Level(5), "q3");

  std::vector<std::string> names;
  for (const auto& [n, ms] : res.phase_ms) names.push_back(n);
  // Cohesion: pipelining first, finalize last, dictionaries before hash
  // specialization (they unlock partitioned keys), index inference before
  // hash specialization (it consumes MultiMap patterns).
  ASSERT_GE(names.size(), 4u);
  EXPECT_EQ(names.front(), "pipelining");
  EXPECT_EQ(names.back(), "finalize");
  auto pos = [&](const std::string& n) {
    for (size_t i = 0; i < names.size(); ++i) {
      if (names[i] == n) return static_cast<int>(i);
    }
    return -1;
  };
  EXPECT_LT(pos("string-dict"), pos("hash-specialization"));
  EXPECT_LT(pos("index-inference"), pos("hash-specialization"));
  EXPECT_LT(pos("hash-specialization"), pos("pool-hoisting"));
  EXPECT_GT(res.total_ms, 0.0);
}

TEST(Compiler, EveryConfigEndsAtCLite) {
  qplan::PlanPtr plan = tpch::MakeQuery(12);
  qplan::ResolvePlan(plan.get(), *Db());
  ir::TypeFactory types;
  QueryCompiler qc(Db(), &types);
  for (const StackConfig& cfg :
       {StackConfig::Level(2), StackConfig::Level(3), StackConfig::Level(4),
        StackConfig::Level(5), StackConfig::Compliant(),
        StackConfig::LegoBase()}) {
    compiler::CompileResult res = qc.Compile(*plan, cfg, "q12");
    EXPECT_TRUE(ir::VerifyLevel(*res.fn, ir::Level::kCLite, true).empty())
        << cfg.name;
  }
}

TEST(Compiler, DeterministicOutput) {
  qplan::PlanPtr plan = tpch::MakeQuery(6);
  qplan::ResolvePlan(plan.get(), *Db());
  ir::TypeFactory types;
  QueryCompiler qc(Db(), &types);
  compiler::CompileResult a = qc.Compile(*plan, StackConfig::Level(5), "q6");
  compiler::CompileResult b = qc.Compile(*plan, StackConfig::Level(5), "q6");
  EXPECT_EQ(ir::PrintFunction(*a.fn), ir::PrintFunction(*b.fn));
}

TEST(Compiler, HigherLevelsNeverAddGenericCollections) {
  // Moving up the stack can only *remove* generic library collections.
  qplan::PlanPtr plan = tpch::MakeQuery(4);
  qplan::ResolvePlan(plan.get(), *Db());
  ir::TypeFactory types;
  QueryCompiler qc(Db(), &types);
  auto count_lib = [&](int level) {
    compiler::CompileResult res =
        qc.Compile(*plan, StackConfig::Level(level), "q4");
    std::string text = ir::PrintFunction(*res.fn);
    int n = 0;
    size_t pos = 0;
    while ((pos = text.find("[lib]", pos)) != std::string::npos) {
      ++n;
      pos += 5;
    }
    return n;
  };
  int prev = count_lib(2);
  for (int level = 3; level <= 5; ++level) {
    int cur = count_lib(level);
    EXPECT_LE(cur, prev) << "level " << level;
    prev = cur;
  }
}

TEST(LegoBase, MonolithicFacadeCompilesAndRuns) {
  qplan::PlanPtr plan = tpch::MakeQuery(14);
  qplan::ResolvePlan(plan.get(), *Db());
  ir::TypeFactory types;
  legobase::LegoBaseResult res =
      legobase::CompileMonolithic(*plan, Db(), &types, "q14");
  ASSERT_NE(res.fn, nullptr);
  EXPECT_TRUE(ir::VerifyLevel(*res.fn, ir::Level::kCLite, true).empty());
  EXPECT_GT(res.compile_ms, 0.0);
}

}  // namespace
}  // namespace qc
