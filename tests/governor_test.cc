// Query governance (exec/governor.h) + fault injection (common/fault.h):
// a cancelled / over-deadline / over-budget query must unwind within one
// safepoint interval on every engine {tree walk, bytecode VM, JIT} at every
// thread count, surface a structured QueryStatus, and leave the Interpreter
// fully reusable — the same instance then executes a fresh query bit-exactly
// (pools, heaps, code buffers, program caches intact). The chaos sweep arms
// every QC_FAULT site across engines x threads and asserts each run either
// matches the reference bit-exactly or fails with a clean non-ok status.
#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "common/fault.h"
#include "common/timer.h"
#include "compiler/compiler.h"
#include "exec/governor.h"
#include "exec/interp.h"
#include "ir/builder.h"
#include "tpch/datagen.h"
#include "tpch/queries.h"

namespace qc {
namespace {

using compiler::QueryCompiler;
using compiler::StackConfig;
using exec::ExecControl;
using exec::InterpOptions;
using exec::QueryStatusCode;
using ir::Stmt;

const InterpOptions::Engine kEngines[] = {InterpOptions::Engine::kBytecode,
                                          InterpOptions::Engine::kTreeWalk,
                                          InterpOptions::Engine::kJit};
const char* kEngineNames[] = {"bytecode", "treewalk", "jit"};

InterpOptions Opts(InterpOptions::Engine e, int threads,
                   ExecControl* ctl = nullptr, int64_t morsel_rows = 2048) {
  InterpOptions o;
  o.engine = e;
  o.num_threads = threads;
  o.morsel_rows = morsel_rows;
  o.control = ctl;
  return o;
}

void ExpectBitExact(const storage::ResultTable& got,
                    const storage::ResultTable& want,
                    const std::string& tag) {
  ASSERT_EQ(got.size(), want.size()) << tag << ": row count";
  ASSERT_EQ(got.types().size(), want.types().size()) << tag << ": arity";
  for (size_t r = 0; r < got.size(); ++r) {
    for (size_t c = 0; c < got.types().size(); ++c) {
      if (got.types()[c] == storage::ColType::kStr) {
        ASSERT_STREQ(got.row(r)[c].s, want.row(r)[c].s)
            << tag << ": row " << r << " col " << c;
      } else {
        ASSERT_EQ(got.row(r)[c].i, want.row(r)[c].i)
            << tag << ": row " << r << " col " << c;
      }
    }
  }
}

// Sets one environment knob for the enclosing scope and re-arms the fault
// registry on both edges, so QC_FAULT / QC_GOV_INTERVAL changes take effect
// immediately and never leak into other tests in this process.
struct ScopedEnv {
  std::string name;
  ScopedEnv(const char* n, const std::string& v) : name(n) {
    ::setenv(n, v.c_str(), 1);
    FaultReArm();
  }
  ~ScopedEnv() {
    ::unsetenv(name.c_str());
    FaultReArm();
  }
};

// Engages the parallel sort on small inputs (same knob the sort-stability
// suite uses).
struct ScopedSortMin {
  explicit ScopedSortMin(const char* v) { ::setenv("QC_PAR_SORT_MIN", v, 1); }
  ~ScopedSortMin() { ::unsetenv("QC_PAR_SORT_MIN"); }
};

storage::Database* Db() {
  static storage::Database* db =
      new storage::Database(tpch::MakeTpchDatabase(0.01));
  return db;
}

// Q3 at the full stack: scan + bucket-array build + probe + sort + emit,
// with parallel-qualifying loops — the governance surface in one query.
struct CompiledQuery {
  ir::TypeFactory types;
  compiler::CompileResult res;
};
const ir::Function& Q3() {
  static CompiledQuery* c = [] {
    auto* h = new CompiledQuery();
    qplan::PlanPtr plan = tpch::MakeQuery(3);
    qplan::ResolvePlan(plan.get(), *Db());
    QueryCompiler qc(Db(), &h->types);
    h->res = qc.Compile(*plan, StackConfig::Level(5), "q3");
    return h;
  }();
  return *c->res.fn;
}
const storage::ResultTable& Q3Want() {
  static storage::ResultTable* want = [] {
    exec::Interpreter ref(Db(), Opts(InterpOptions::Engine::kBytecode, 1));
    return new storage::ResultTable(ref.Run(Q3()));
  }();
  return *want;
}

// A pure compute loop long enough that every engine is still inside it when
// a few-millisecond deadline expires (while-loop body so the VM/JIT path
// crosses kJmpSp back edges too).
struct BuiltFn {
  ir::TypeFactory types;
  std::unique_ptr<ir::Function> fn;
};
const ir::Function& LongLoop() {
  static BuiltFn* b = [] {
    auto* h = new BuiltFn();
    h->fn = std::make_unique<ir::Function>("long_loop", &h->types);
    ir::Builder bld(h->fn.get());
    Stmt* sum = bld.VarNew(bld.I64(0));
    Stmt* i = bld.VarNew(bld.I64(0));
    bld.While([&] { return bld.Lt(bld.VarRead(i), bld.I64(2000000000)); },
              [&] {
                bld.VarAssign(sum, bld.Add(bld.VarRead(sum), bld.VarRead(i)));
                bld.VarAssign(i, bld.Add(bld.VarRead(i), bld.I64(1)));
              });
    bld.EmitRow({bld.VarRead(sum)});
    return h;
  }();
  return *b->fn;
}

// Duplicate-key list sort (build loop + parallel stable sort + emit): the
// function the boundary sweep drives trips into morsel scans, the sort's
// comparator safepoints, the merge tree, and kEmit staging depending on
// where the armed occurrence lands.
const ir::Function& DupSort() {
  static BuiltFn* b = [] {
    auto* h = new BuiltFn();
    h->fn = std::make_unique<ir::Function>("dup_sort", &h->types);
    ir::Builder bld(h->fn.get());
    const ir::Type* i64 = h->types.I64();
    Stmt* enc = bld.I64(1 << 20);
    Stmt* list = bld.ListNew(i64);
    bld.ForRange(bld.I64(0), bld.I64(20000), [&](Stmt* i) {
      Stmt* key = bld.Mod(bld.Mul(i, bld.I64(7919)), bld.I64(97));
      bld.ListAppend(list, bld.Add(bld.Mul(key, enc), i));
    });
    bld.ListSortBy(list, [&](Stmt* x, Stmt* y) {
      return bld.Lt(bld.Div(x, enc), bld.Div(y, enc));
    });
    bld.ListForeach(list, [&](Stmt* e) {
      bld.EmitRow({bld.Div(e, enc), bld.Mod(e, enc)});
    });
    return h;
  }();
  return *b->fn;
}
const storage::ResultTable& DupSortWant() {
  static storage::ResultTable* want = [] {
    exec::Interpreter ref(Db(), Opts(InterpOptions::Engine::kBytecode, 1));
    return new storage::ResultTable(ref.Run(DupSort()));
  }();
  return *want;
}

// A big list build: ~1.6 MB of tracked vector growth, so a small budget
// trips mid-build on every engine.
const ir::Function& BigAlloc() {
  static BuiltFn* b = [] {
    auto* h = new BuiltFn();
    h->fn = std::make_unique<ir::Function>("big_alloc", &h->types);
    ir::Builder bld(h->fn.get());
    Stmt* list = bld.ListNew(h->types.I64());
    Stmt* sum = bld.VarNew(bld.I64(0));
    bld.ForRange(bld.I64(0), bld.I64(200000), [&](Stmt* i) {
      bld.ListAppend(list, i);
      bld.VarAssign(sum, bld.Add(bld.VarRead(sum), i));
    });
    bld.EmitRow({bld.VarRead(sum)});
    return h;
  }();
  return *b->fn;
}
const storage::ResultTable& BigAllocWant() {
  static storage::ResultTable* want = [] {
    exec::Interpreter ref(Db(), Opts(InterpOptions::Engine::kBytecode, 1));
    return new storage::ResultTable(ref.Run(BigAlloc()));
  }();
  return *want;
}

// ---------------------------------------------------------------------------
// Cancellation / deadline / budget on every engine, with post-abort reuse.
// ---------------------------------------------------------------------------

TEST(GovernorTest, CancelBeforeRunTripsAndInterpreterStaysReusable) {
  for (int e = 0; e < 3; ++e) {
    for (int threads : {1, 4}) {
      std::string tag = std::string(kEngineNames[e]) + " threads=" +
                        std::to_string(threads);
      ExecControl ctl;
      ctl.RequestCancel();
      exec::Interpreter interp(Db(), Opts(kEngines[e], threads, &ctl));
      storage::ResultTable r = interp.Run(Q3());
      EXPECT_EQ(r.size(), 0u) << tag;
      EXPECT_EQ(interp.last_status().code, QueryStatusCode::kCancelled) << tag;
      EXPECT_STREQ(interp.last_status().name(), "cancelled") << tag;

      // The same Interpreter must run the same query cleanly after Reset.
      ctl.Reset();
      storage::ResultTable again = interp.Run(Q3());
      EXPECT_TRUE(interp.last_status().ok()) << tag;
      ExpectBitExact(again, Q3Want(), tag + " post-cancel rerun");
    }
  }
}

TEST(GovernorTest, PastDeadlineTripsAtPreRunPoll) {
  for (int e = 0; e < 3; ++e) {
    for (int threads : {1, 4}) {
      std::string tag = std::string(kEngineNames[e]) + " threads=" +
                        std::to_string(threads);
      ExecControl ctl;
      ctl.deadline_ns.store(1);  // monotonic epoch + 1ns: long past
      exec::Interpreter interp(Db(), Opts(kEngines[e], threads, &ctl));
      storage::ResultTable r = interp.Run(Q3());
      EXPECT_EQ(r.size(), 0u) << tag;
      EXPECT_EQ(interp.last_status().code, QueryStatusCode::kDeadlineExceeded)
          << tag;
      ctl.Reset();
      ExpectBitExact(interp.Run(Q3()), Q3Want(), tag + " rerun");
    }
  }
}

TEST(GovernorTest, MidRunDeadlineUnwindsWithinSafepointInterval) {
  // 2e9 while-loop iterations would take seconds to minutes ungoverned;
  // a 3 ms deadline must stop each engine within a safepoint interval.
  // The generous wall-clock bound only catches a governance no-op.
  for (int e = 0; e < 3; ++e) {
    for (int threads : {1, 4}) {
      std::string tag = std::string(kEngineNames[e]) + " threads=" +
                        std::to_string(threads);
      ExecControl ctl;
      ctl.SetDeadlineAfterNs(3 * 1000 * 1000);
      exec::Interpreter interp(Db(), Opts(kEngines[e], threads, &ctl));
      Timer t;
      storage::ResultTable r = interp.Run(LongLoop());
      EXPECT_EQ(r.size(), 0u) << tag;
      EXPECT_EQ(interp.last_status().code, QueryStatusCode::kDeadlineExceeded)
          << tag;
      EXPECT_LT(t.ElapsedMs(), 5000.0) << tag << ": unwind took too long";
      ctl.Reset();
      ExpectBitExact(interp.Run(Q3()), Q3Want(), tag + " rerun");
    }
  }
}

TEST(GovernorTest, MemoryBudgetTripsOnTrackedGrowth) {
  ScopedEnv interval("QC_GOV_INTERVAL", "64");  // publish growth promptly
  for (int e = 0; e < 3; ++e) {
    for (int threads : {1, 4}) {
      std::string tag = std::string(kEngineNames[e]) + " threads=" +
                        std::to_string(threads);
      ExecControl ctl;
      ctl.memory_budget_bytes = 64 * 1024;  // far below ~1.6 MB of growth
      exec::Interpreter interp(Db(), Opts(kEngines[e], threads, &ctl));
      storage::ResultTable r = interp.Run(BigAlloc());
      EXPECT_EQ(r.size(), 0u) << tag;
      EXPECT_EQ(interp.last_status().code, QueryStatusCode::kMemoryBudget)
          << tag;
      ctl.Reset();
      ExpectBitExact(interp.Run(BigAlloc()), BigAllocWant(), tag + " rerun");
    }
  }
}

// ---------------------------------------------------------------------------
// Awkward-boundary cancellation: QC_GOV_INTERVAL=1 polls at every back edge
// and the armed gov_trip occurrence is swept across the run — morsel scans,
// the parallel sort's comparators and merge tree, emit staging. Every
// landing spot must produce either a clean kCancelled abort or (when the
// occurrence is never reached) the bit-exact result; afterwards the same
// Interpreter must run clean.
// ---------------------------------------------------------------------------

TEST(GovernorTest, CancelSweepAcrossAwkwardBoundaries) {
  ScopedSortMin sort_min("256");  // the 20k-row sort runs morsel-parallel
  ScopedEnv interval("QC_GOV_INTERVAL", "1");
  const long kNth[] = {1, 2, 3, 7, 50, 4000, 30000, 250000};
  for (long nth : kNth) {
    ScopedEnv fault("QC_FAULT", "gov_trip:" + std::to_string(nth));
    for (int e = 0; e < 3; ++e) {
      for (int threads : {1, 2, 4}) {
        std::string tag = std::string(kEngineNames[e]) + " threads=" +
                          std::to_string(threads) + " nth=" +
                          std::to_string(nth);
        ExecControl ctl;
        exec::Interpreter interp(Db(), Opts(kEngines[e], threads, &ctl));
        FaultReArm();  // fresh occurrence count per run
        storage::ResultTable r = interp.Run(DupSort());
        if (interp.last_status().ok()) {
          ExpectBitExact(r, DupSortWant(), tag + " (fault not reached)");
        } else {
          EXPECT_EQ(interp.last_status().code, QueryStatusCode::kCancelled)
              << tag;
          EXPECT_EQ(r.size(), 0u) << tag;
        }
        if (nth == 1) {
          // The first safepoint is always reached: this configuration must
          // actually trip, or the sweep is vacuous.
          EXPECT_FALSE(interp.last_status().ok()) << tag;
        }
        // Disarm and prove the pool/heaps survived the abort.
        ::unsetenv("QC_FAULT");
        FaultReArm();
        ctl.Reset();
        ExpectBitExact(interp.Run(DupSort()), DupSortWant(), tag + " rerun");
        ::setenv("QC_FAULT", ("gov_trip:" + std::to_string(nth)).c_str(), 1);
      }
    }
  }
}

TEST(GovernorTest, JitDeoptThenCancelIsClean) {
  // Force a genuine mid-query deopt out of a native segment, then cancel at
  // the first safepoint the VM reaches: the JIT/VM boundary crossing must
  // not lose the abort.
  ScopedEnv interval("QC_GOV_INTERVAL", "1");
  for (int threads : {1, 4}) {
    ScopedEnv fault("QC_FAULT", "jit_deopt:1,gov_trip:1");
    std::string tag = "jit threads=" + std::to_string(threads);
    ExecControl ctl;
    exec::Interpreter interp(Db(),
                             Opts(InterpOptions::Engine::kJit, threads, &ctl));
    storage::ResultTable r = interp.Run(Q3());
    EXPECT_EQ(r.size(), 0u) << tag;
    EXPECT_EQ(interp.last_status().code, QueryStatusCode::kCancelled) << tag;
    ::unsetenv("QC_FAULT");
    FaultReArm();
    ctl.Reset();
    ExpectBitExact(interp.Run(Q3()), Q3Want(), tag + " rerun");
  }
}

// ---------------------------------------------------------------------------
// Chaos sweep: every injection site x engines x threads. Each armed run
// must end in exactly one of two states — bit-exact success (the site was
// not on this configuration's path, or the failure was absorbed, e.g. JIT
// degradation and worker-spawn downgrade) or a clean non-ok QueryStatus
// with an empty result. Crashes, hangs, and sanitizer reports are the
// failure modes this hunts; the disarmed rerun proves nothing leaked into
// the Interpreter's reusable state.
// ---------------------------------------------------------------------------

TEST(GovernorChaosTest, EverySiteEveryEngineFailsCleanOrSucceedsExact) {
  const char* kSites[] = {"gov_trip",  "alloc_heap",   "alloc_pool",
                          "worker_spawn", "jit_deopt", "jit_mmap",
                          "jit_mprotect", "cc_cache_write"};
  for (const char* site : kSites) {
    for (long nth : {1L, 5L}) {
      for (int e = 0; e < 3; ++e) {
        for (int threads : {1, 4}) {
          std::string spec = std::string(site) + ":" + std::to_string(nth);
          std::string tag = spec + " " + kEngineNames[e] + " threads=" +
                            std::to_string(threads);
          ScopedEnv fault("QC_FAULT", spec);
          ExecControl ctl;
          exec::Interpreter interp(Db(), Opts(kEngines[e], threads, &ctl));
          FaultReArm();
          storage::ResultTable r = interp.Run(Q3());
          if (interp.last_status().ok()) {
            ExpectBitExact(r, Q3Want(), tag + " (absorbed/unreached)");
          } else {
            EXPECT_EQ(r.size(), 0u) << tag;
          }
          ::unsetenv("QC_FAULT");
          FaultReArm();
          ctl.Reset();
          ExpectBitExact(interp.Run(Q3()), Q3Want(), tag + " rerun");
        }
      }
    }
  }
}

TEST(GovernorChaosTest, InjectedAllocationFailureSurfacesResourceStatus) {
  // alloc_heap on a query that allocates records through the governed heap:
  // the run must finish with kResourceFailure (the "emergency reserve"
  // model: the allocation itself still succeeds, the query is killed at the
  // next safepoint).
  ScopedEnv interval("QC_GOV_INTERVAL", "1");
  for (int e = 0; e < 3; ++e) {
    ScopedEnv fault("QC_FAULT", "alloc_heap:1");
    std::string tag = std::string(kEngineNames[e]) + " alloc_heap";
    ExecControl ctl;
    exec::Interpreter interp(Db(), Opts(kEngines[e], 1, &ctl));
    storage::ResultTable r = interp.Run(Q3());
    if (!interp.last_status().ok()) {
      EXPECT_EQ(interp.last_status().code, QueryStatusCode::kResourceFailure)
          << tag;
      EXPECT_EQ(r.size(), 0u) << tag;
    } else {
      // Engine/stack configurations that never touch the heap site must
      // still be bit-exact.
      ExpectBitExact(r, Q3Want(), tag);
    }
  }
}

// ---------------------------------------------------------------------------
// JIT degradation visibility: every silent-fallback path must surface a
// structured reason in last_jit_stats() while producing bit-exact results
// on the VM.
// ---------------------------------------------------------------------------

TEST(GovernorJitFallbackTest, DisabledByEnvIsReportedAndExact) {
  ScopedEnv off("QC_JIT_DISABLE", "1");
  exec::Interpreter interp(Db(), Opts(InterpOptions::Engine::kJit, 1));
  storage::ResultTable r = interp.Run(Q3());
  ExpectBitExact(r, Q3Want(), "jit disabled");
  EXPECT_FALSE(interp.last_jit_stats().jitted);
  EXPECT_EQ(interp.last_jit_stats().fallback_reason,
            static_cast<int>(exec::jit::JitFallback::kDisabledByEnv));
}

TEST(GovernorJitFallbackTest, DeniedCodePagesAreReportedAndExact) {
  for (const char* site : {"jit_mmap:1", "jit_mprotect:1"}) {
    ScopedEnv fault("QC_FAULT", site);
    exec::Interpreter interp(Db(), Opts(InterpOptions::Engine::kJit, 1));
    storage::ResultTable r = interp.Run(Q3());
    ExpectBitExact(r, Q3Want(), site);
    EXPECT_FALSE(interp.last_jit_stats().jitted) << site;
    EXPECT_EQ(interp.last_jit_stats().fallback_reason,
              static_cast<int>(exec::jit::JitFallback::kInstallFailed))
        << site;
  }
}

TEST(GovernorJitFallbackTest, HealthyJitReportsNoFallback) {
  exec::Interpreter interp(Db(), Opts(InterpOptions::Engine::kJit, 1));
  storage::ResultTable r = interp.Run(Q3());
  ExpectBitExact(r, Q3Want(), "healthy jit");
  if (exec::jit::JitAvailable()) {
    EXPECT_TRUE(interp.last_jit_stats().jitted);
    EXPECT_EQ(interp.last_jit_stats().fallback_reason, 0);
  }
}

// Ten abort/recover cycles on one Interpreter: trip state must never
// accumulate across runs.
TEST(GovernorTest, RepeatedAbortsNeverPoisonTheInterpreter) {
  ExecControl ctl;
  exec::Interpreter interp(
      Db(), Opts(InterpOptions::Engine::kBytecode, 4, &ctl));
  for (int round = 0; round < 10; ++round) {
    ctl.RequestCancel();
    storage::ResultTable dead = interp.Run(Q3());
    ASSERT_EQ(dead.size(), 0u) << "round " << round;
    ASSERT_EQ(interp.last_status().code, QueryStatusCode::kCancelled)
        << "round " << round;
    ctl.Reset();
    storage::ResultTable alive = interp.Run(Q3());
    ASSERT_TRUE(interp.last_status().ok()) << "round " << round;
    ExpectBitExact(alive, Q3Want(), "round " + std::to_string(round));
  }
}

}  // namespace
}  // namespace qc
