// Unit tests for the ANF IR: type interning, scoped CSE (dominance-correct
// sharing), the level verifier (expressibility principle), and dead code
// elimination including store-through-reference aliasing.
#include <gtest/gtest.h>

#include "ir/builder.h"
#include "ir/printer.h"
#include "ir/rewrite.h"
#include "ir/verify.h"
#include "opt/dce.h"

namespace qc::ir {
namespace {

TEST(TypeFactory, InternsScalars) {
  TypeFactory t;
  EXPECT_EQ(t.I64(), t.I64());
  EXPECT_EQ(t.Array(t.I64()), t.Array(t.I64()));
  EXPECT_NE(t.Array(t.I64()), t.Array(t.F64()));
  EXPECT_EQ(t.Map(t.I64(), t.Str()), t.Map(t.I64(), t.Str()));
  EXPECT_NE(t.Map(t.I64(), t.Str()), t.MMap(t.I64(), t.Str()));
}

TEST(TypeFactory, RecordsByName) {
  TypeFactory t;
  const Type* r1 = t.Record("R", {{"a", t.I64()}, {"b", t.Str()}});
  const Type* r2 = t.Record("R", {{"a", t.I64()}, {"b", t.Str()}});
  EXPECT_EQ(r1, r2);
  EXPECT_EQ(r1->record->FieldIndex("b"), 1);
  EXPECT_EQ(r1->record->FieldIndex("zz"), -1);
  EXPECT_EQ(t.FindRecord("R"), r1);
  EXPECT_EQ(t.FindRecord("S"), nullptr);
}

TEST(TypeFactory, SelfReferentialRecord) {
  TypeFactory t;
  const Type* base = t.Record("Node", {{"v", t.I64()}});
  const Type* ext = t.ExtendRecordWithSelfPtr(base, "Node_il", "__next");
  ASSERT_EQ(ext->record->fields.size(), 2u);
  EXPECT_EQ(ext->record->fields[1].type->kind, TypeKind::kPtr);
  EXPECT_EQ(ext->record->fields[1].type->elem, ext);
  // Idempotent.
  EXPECT_EQ(t.ExtendRecordWithSelfPtr(base, "Node_il", "__next"), ext);
}

TEST(Builder, CseSharesPureExpressions) {
  TypeFactory types;
  Function fn("f", &types);
  Builder b(&fn);
  Stmt* x = b.I64(2);
  Stmt* a1 = b.Add(x, b.I64(3));
  Stmt* a2 = b.Add(x, b.I64(3));
  EXPECT_EQ(a1, a2);  // value-numbered
  EXPECT_NE(b.Add(x, b.I64(4)), a1);
}

TEST(Builder, CseRespectsScopes) {
  TypeFactory types;
  Function fn("f", &types);
  Builder b(&fn);
  Stmt* outer = b.Add(b.I64(1), b.I64(2));
  Stmt* inner_reuse = nullptr;
  Stmt* inner_new = nullptr;
  b.ForRange(b.I64(0), b.I64(10), [&](Stmt* i) {
    inner_reuse = b.Add(b.I64(1), b.I64(2));  // dominated by outer: shared
    inner_new = b.Add(i, b.I64(2));           // depends on loop var
  });
  // After the loop, the loop-local expression must NOT be reused.
  EXPECT_EQ(inner_reuse, outer);
  Stmt* after = b.Add(b.I64(1), b.I64(2));
  EXPECT_EQ(after, outer);
  CheckFunction(fn);
}

TEST(Builder, EffectfulOpsNeverShared) {
  TypeFactory types;
  Function fn("f", &types);
  Builder b(&fn);
  Stmt* v1 = b.VarNew(b.I64(0));
  Stmt* v2 = b.VarNew(b.I64(0));
  EXPECT_NE(v1, v2);
  Stmt* r1 = b.VarRead(v1);
  Stmt* r2 = b.VarRead(v1);
  EXPECT_NE(r1, r2);  // reads see state, never value-numbered
}

TEST(Verify, CatchesUseBeforeDef) {
  TypeFactory types;
  Function fn("f", &types);
  Builder b(&fn);
  Stmt* loop_local = nullptr;
  b.ForRange(b.I64(0), b.I64(3), [&](Stmt* i) { loop_local = b.Add(i, i); });
  // Manually smuggle a use of the loop-local symbol outside its scope.
  Stmt* bad = fn.NewStmt(Op::kNeg, types.I64());
  bad->args.push_back(loop_local);
  fn.body()->stmts.push_back(bad);
  EXPECT_FALSE(VerifyFunction(fn).empty());
}

TEST(Verify, LevelRangesEnforced) {
  TypeFactory types;
  Function fn("f", &types);
  Builder b(&fn);
  Stmt* m = b.MapNew(types.I64(), types.I64());
  (void)m;
  // Map ops belong to ScaLite[Map,List] only.
  EXPECT_TRUE(VerifyLevel(fn, Level::kMapList).empty());
  EXPECT_FALSE(VerifyLevel(fn, Level::kList, false).empty());
  EXPECT_FALSE(VerifyLevel(fn, Level::kScaLite, false).empty());
  EXPECT_FALSE(VerifyLevel(fn, Level::kCLite, false).empty());
  // ... unless marked as an external library call.
  m->lib_call = true;
  EXPECT_TRUE(VerifyLevel(fn, Level::kCLite, true).empty());
}

TEST(Verify, MallocOnlyAtBottom) {
  TypeFactory types;
  Function fn("f", &types);
  Builder b(&fn);
  b.Malloc(types.I64(), b.I64(16));
  EXPECT_TRUE(VerifyLevel(fn, Level::kCLite).empty());
  EXPECT_FALSE(VerifyLevel(fn, Level::kScaLite).empty());
  EXPECT_FALSE(VerifyLevel(fn, Level::kMapList).empty());
}

TEST(Dce, RemovesUnusedPureCode) {
  TypeFactory types;
  Function fn("f", &types);
  Builder b(&fn);
  Stmt* used = b.I64(7);
  b.Mul(b.Add(b.I64(1), b.I64(2)), b.I64(3));  // dead tree
  b.EmitRow({used});
  int removed = opt::DeadCodeElimination(&fn);
  EXPECT_GE(removed, 3);
  std::string text = PrintFunction(fn);
  EXPECT_EQ(text.find("mul"), std::string::npos) << text;
  EXPECT_NE(text.find("emit"), std::string::npos);
}

TEST(Dce, KeepsStoresThroughDerivedReferences) {
  // append into a list fetched from an array: the classic aliasing case.
  TypeFactory types;
  Function fn("f", &types);
  Builder b(&fn);
  Stmt* arr = b.ArrNew(types.List(types.I64()), b.I64(4));
  Stmt* lst = b.ListNew(types.I64());
  b.ArrSet(arr, b.I64(0), lst);
  Stmt* fetched = b.ArrGet(arr, b.I64(0));
  b.ListAppend(fetched, b.I64(42));
  // Observe the array through a foreach that emits.
  Stmt* fetched2 = b.ArrGet(arr, b.I64(0));
  b.ListForeach(fetched2, [&](Stmt* e) { b.EmitRow({e}); });
  opt::DeadCodeElimination(&fn);
  std::string text = PrintFunction(fn);
  EXPECT_NE(text.find("list_append"), std::string::npos) << text;
}

TEST(Dce, RemovesWhollyDeadDataStructures) {
  TypeFactory types;
  Function fn("f", &types);
  Builder b(&fn);
  Stmt* dead_list = b.ListNew(types.I64());
  b.ListAppend(dead_list, b.I64(1));  // stores to a never-read list
  b.EmitRow({b.I64(0)});
  opt::DeadCodeElimination(&fn);
  std::string text = PrintFunction(fn);
  EXPECT_EQ(text.find("list_new"), std::string::npos) << text;
  EXPECT_EQ(text.find("list_append"), std::string::npos) << text;
}

TEST(Dce, DropsEmptyControlFlow) {
  TypeFactory types;
  Function fn("f", &types);
  Builder b(&fn);
  b.ForRange(b.I64(0), b.I64(10), [&](Stmt* i) {
    b.Add(i, b.I64(1));  // pure, unused
  });
  b.EmitRow({b.I64(0)});
  opt::DeadCodeElimination(&fn);
  std::string text = PrintFunction(fn);
  EXPECT_EQ(text.find("for("), std::string::npos) << text;
}

TEST(Cloner, IdentityCloneIsEquivalent) {
  TypeFactory types;
  Function fn("f", &types);
  Builder b(&fn);
  Stmt* n = b.I64(10);
  Stmt* sum = b.VarNew(b.I64(0));
  b.ForRange(b.I64(0), n, [&](Stmt* i) {
    b.If(b.Gt(i, b.I64(4)),
         [&] { b.VarAssign(sum, b.Add(b.VarRead(sum), i)); });
  });
  b.EmitRow({b.VarRead(sum)});

  class Identity : public Cloner {};
  Identity id;
  auto clone = id.Run(fn);
  CheckFunction(*clone);
  EXPECT_EQ(PrintFunction(fn), PrintFunction(*clone));
}

TEST(Printer, ShowsAnfBindings) {
  TypeFactory types;
  Function fn("agg", &types);
  Builder b(&fn);
  // The paper's ANF example shape: shared subexpressions bound once.
  Stmt* ra = b.F64(1.5);
  Stmt* rb = b.F64(2.5);
  Stmt* x1 = b.Mul(ra, rb);
  Stmt* x2 = b.Sub(b.F64(1.0), b.F64(0.5));
  Stmt* x3 = b.Mul(x1, x2);
  b.EmitRow({x1, x3});
  std::string text = PrintFunction(fn);
  EXPECT_NE(text.find("val x2: f64 = mul(x0, x1)"), std::string::npos) << text;
}

}  // namespace
}  // namespace qc::ir
