// Morsel-driven parallel execution (exec/parallel.h): results must be
// BITWISE identical to the sequential engines — same row order, same f64
// bit patterns, same string contents — for every TPC-H query, at every
// tested thread count and morsel size, on both engines. The f64-addend
// replay makes this exact (not approximate) even for floating-point sums,
// so these tests compare bit patterns, not canonical text.
//
// Figure 8 accounting is asserted too: AllocStats of a parallel run must
// equal the sequential run's exactly (AllocStats::MergeFrom + the merge
// phase's credits for transient per-morsel storage).
#include <gtest/gtest.h>

#include <cstring>
#include <string>

#include "compiler/compiler.h"
#include "exec/interp.h"
#include "ir/builder.h"
#include "ir/parallel.h"
#include "lower/pipeline.h"
#include "tpch/datagen.h"
#include "tpch/queries.h"

namespace qc {
namespace {

using compiler::QueryCompiler;
using compiler::StackConfig;
using exec::InterpOptions;

InterpOptions Opts(InterpOptions::Engine e, int threads,
                   int64_t morsel_rows = 2048) {
  InterpOptions o;
  o.engine = e;
  o.num_threads = threads;
  o.morsel_rows = morsel_rows;
  return o;
}

// Bit-exact, position-exact equality (doubles compared on bit patterns).
void ExpectBitExact(const storage::ResultTable& got,
                    const storage::ResultTable& want,
                    const std::string& tag) {
  ASSERT_EQ(got.size(), want.size()) << tag << ": row count";
  ASSERT_EQ(got.types().size(), want.types().size()) << tag << ": arity";
  for (size_t r = 0; r < got.size(); ++r) {
    for (size_t c = 0; c < got.types().size(); ++c) {
      if (got.types()[c] == storage::ColType::kStr) {
        ASSERT_STREQ(got.row(r)[c].s, want.row(r)[c].s)
            << tag << ": row " << r << " col " << c;
      } else {
        ASSERT_EQ(got.row(r)[c].i, want.row(r)[c].i)
            << tag << ": row " << r << " col " << c;
      }
    }
  }
}

void ExpectStatsEqual(const exec::AllocStats& got,
                      const exec::AllocStats& want, const std::string& tag) {
  EXPECT_EQ(got.heap_bytes, want.heap_bytes) << tag << ": heap_bytes";
  EXPECT_EQ(got.heap_allocs, want.heap_allocs) << tag << ": heap_allocs";
  EXPECT_EQ(got.pool_bytes, want.pool_bytes) << tag << ": pool_bytes";
  EXPECT_EQ(got.vector_bytes, want.vector_bytes) << tag << ": vector_bytes";
}

class ParallelExecTpchTest : public ::testing::TestWithParam<int> {
 protected:
  static storage::Database* db() {
    static storage::Database* db =
        new storage::Database(tpch::MakeTpchDatabase(0.01));
    return db;
  }

  // Runs `fn` sequentially as the reference, then across engines x thread
  // counts x a second morsel size, asserting bitwise equality and exact
  // AllocStats agreement every time.
  static void CheckAllConfigs(const ir::Function& fn,
                              const std::string& tag) {
    exec::Interpreter ref(db(), Opts(InterpOptions::Engine::kBytecode, 1));
    storage::ResultTable want = ref.Run(fn);

    const InterpOptions::Engine engines[] = {
        InterpOptions::Engine::kBytecode, InterpOptions::Engine::kTreeWalk};
    const char* names[] = {"bytecode", "treewalk"};
    for (int e = 0; e < 2; ++e) {
      exec::AllocStats seq_stats;
      for (int threads : {1, 2, 4}) {
        exec::Interpreter interp(db(), Opts(engines[e], threads));
        storage::ResultTable got = interp.Run(fn);
        std::string t =
            tag + " " + names[e] + " threads=" + std::to_string(threads);
        ExpectBitExact(got, want, t);
        if (threads == 1) {
          seq_stats = interp.stats();
        } else {
          ExpectStatsEqual(interp.stats(), seq_stats, t);
        }
      }
      // An odd morsel size exercises boundary handling and many-morsel
      // merges; results must not depend on the decomposition.
      exec::Interpreter odd(db(), Opts(engines[e], 3, 777));
      storage::ResultTable got = odd.Run(fn);
      ExpectBitExact(got, want, tag + " " + names[e] + " morsel=777");
      ExpectStatsEqual(odd.stats(), seq_stats,
                       tag + " " + names[e] + " morsel=777");
    }
  }
};

// ScaLite[Map,List]: the pipelined lowering — generic hash maps,
// multimaps, and lists are the reduction state.
TEST_P(ParallelExecTpchTest, PipelinedBitExactAcrossThreads) {
  int q = GetParam();
  qplan::PlanPtr plan = tpch::MakeQuery(q);
  qplan::ResolvePlan(plan.get(), *db());
  ir::TypeFactory types;
  auto fn = lower::LowerPlanPipelined(*plan, *db(), &types,
                                      "q" + std::to_string(q));
  CheckAllConfigs(*fn, "Q" + std::to_string(q) + " L3");
}

// Full 5-level stack: direct-addressed group arrays, intrusive bucket
// arrays, pools — the specialized reduction shapes.
TEST_P(ParallelExecTpchTest, Level5BitExactAcrossThreads) {
  int q = GetParam();
  qplan::PlanPtr plan = tpch::MakeQuery(q);
  qplan::ResolvePlan(plan.get(), *db());
  ir::TypeFactory types;
  QueryCompiler qc(db(), &types);
  compiler::CompileResult res =
      qc.Compile(*plan, StackConfig::Level(5), "q" + std::to_string(q));
  CheckAllConfigs(*res.fn, "Q" + std::to_string(q) + " L5");
}

INSTANTIATE_TEST_SUITE_P(AllQueries, ParallelExecTpchTest,
                         ::testing::Range(1, 23));

// Hand-built global-aggregation shapes (sum / count / guarded min / max /
// f64 sum), exactly as lower/pipeline.cc lowers them: the scalar-reduction
// merges must fold the morsel accumulators correctly. Guards against the
// scalar paths regressing while the TPC-H suite happens not to exercise
// them (its scalar folds are shadowed by grouped shapes).
TEST(ParallelScalarReductionTest, SumCountMinMaxMatchSequential) {
  storage::Database db;
  ir::TypeFactory types;
  ir::Function fn("scalar_aggs", &types);
  ir::Builder b(&fn);
  ir::Stmt* sum = b.VarNew(b.I64(0));
  ir::Stmt* fsum = b.VarNew(b.F64(0.0));
  ir::Stmt* cnt = b.VarNew(b.I64(0));
  ir::Stmt* mn = b.VarNew(b.I64(0));
  ir::Stmt* mx = b.VarNew(b.I64(0));
  const int64_t kRows = 100000;
  b.ForRange(b.I64(0), b.I64(kRows), [&](ir::Stmt* i) {
    b.If(b.Eq(b.Mod(i, b.I64(7)), b.I64(3)), [&] {
      ir::Stmt* n0 = b.VarRead(cnt);
      ir::Stmt* v = b.Mul(b.Sub(b.I64(50000), i), b.I64(3));
      b.VarAssign(sum, b.Add(b.VarRead(sum), v));
      b.VarAssign(fsum, b.Add(b.VarRead(fsum), b.Cast(v, types.F64())));
      b.If(b.Or(b.Eq(n0, b.I64(0)), b.Lt(v, b.VarRead(mn))),
           [&] { b.VarAssign(mn, v); });
      b.If(b.Or(b.Eq(n0, b.I64(0)), b.Gt(v, b.VarRead(mx))),
           [&] { b.VarAssign(mx, v); });
      b.VarAssign(cnt, b.Add(n0, b.I64(1)));
    });
  });
  b.EmitRow({b.VarRead(sum), b.VarRead(fsum), b.VarRead(cnt), b.VarRead(mn),
             b.VarRead(mx)});

  // The loop must actually qualify, with all five scalar reductions.
  ir::ParallelInfo info = ir::AnalyzeParallelism(fn);
  ASSERT_EQ(info.loops.size(), 1u);
  ASSERT_EQ(info.loops[0].reductions.size(), 5u);

  int64_t want_sum = 0, want_cnt = 0, want_mn = 0, want_mx = 0;
  double want_fsum = 0.0;
  for (int64_t i = 0; i < kRows; ++i) {
    if (i % 7 != 3) continue;
    int64_t v = (50000 - i) * 3;
    want_sum += v;
    want_fsum += static_cast<double>(v);
    if (want_cnt == 0 || v < want_mn) want_mn = v;
    if (want_cnt == 0 || v > want_mx) want_mx = v;
    ++want_cnt;
  }

  for (auto engine : {InterpOptions::Engine::kBytecode,
                      InterpOptions::Engine::kTreeWalk}) {
    for (int threads : {1, 4}) {
      exec::Interpreter interp(&db, Opts(engine, threads, 512));
      storage::ResultTable r = interp.Run(fn);
      ASSERT_EQ(r.size(), 1u);
      EXPECT_EQ(r.row(0)[0].i, want_sum) << "sum, threads=" << threads;
      EXPECT_EQ(r.row(0)[1].d, want_fsum) << "fsum, threads=" << threads;
      EXPECT_EQ(r.row(0)[2].i, want_cnt) << "count, threads=" << threads;
      EXPECT_EQ(r.row(0)[3].i, want_mn) << "min, threads=" << threads;
      EXPECT_EQ(r.row(0)[4].i, want_mx) << "max, threads=" << threads;
    }
  }
}

// Skewed-key multimap build: a handful of hot keys whose value chains span
// every morsel. Locks the ordered merge's per-key bulk append (one probe
// per key per morsel, RtMultiMap::AddAll) — the values must recombine in
// exact sequential row order, with AllocStats to the byte, at every thread
// count and for a decomposition into many morsels.
TEST(ParallelSkewedKeyTest, HotKeyChainsMergeInRowOrder) {
  storage::Database db;
  ir::TypeFactory types;
  ir::Function fn("skewed_mmap", &types);
  ir::Builder b(&fn);
  const ir::Type* i64 = types.I64();
  const int64_t kRows = 60000;
  const int64_t kKeys = 3;  // three hot chains, ~20k values each
  ir::Stmt* mm = b.MMapNew(i64, i64);
  b.ForRange(b.I64(0), b.I64(kRows), [&](ir::Stmt* i) {
    b.MMapAdd(mm, b.Mod(i, b.I64(kKeys)), b.Mul(i, b.I64(3)));
  });
  for (int64_t k = 0; k < kKeys; ++k) {
    ir::Stmt* vals = b.MMapGetOrNull(mm, b.I64(k));
    b.If(b.Not(b.IsNull(vals)), [&] {
      b.ListForeach(vals, [&](ir::Stmt* v) { b.EmitRow({v}); });
    });
  }

  // The build loop must qualify with the multimap reduction.
  ir::ParallelInfo info = ir::AnalyzeParallelism(fn);
  ASSERT_EQ(info.loops.size(), 1u);
  ASSERT_EQ(info.loops[0].reductions.size(), 1u);
  EXPECT_EQ(info.loops[0].reductions[0].kind, ir::ParRedKind::kMMap);

  exec::Interpreter ref(&db, Opts(InterpOptions::Engine::kBytecode, 1));
  storage::ResultTable want = ref.Run(fn);
  ASSERT_EQ(want.size(), static_cast<size_t>(kRows));
  for (auto engine : {InterpOptions::Engine::kBytecode,
                      InterpOptions::Engine::kTreeWalk}) {
    exec::AllocStats seq_stats;
    const char* name =
        engine == InterpOptions::Engine::kBytecode ? "bytecode" : "treewalk";
    for (int threads : {1, 2, 4}) {
      // Morsel size 509: ~118 morsels, so every hot chain is stitched from
      // over a hundred per-morsel fragments.
      exec::Interpreter interp(&db, Opts(engine, threads, 509));
      storage::ResultTable got = interp.Run(fn);
      std::string t = std::string("skewed ") + name + " threads=" +
                      std::to_string(threads);
      ExpectBitExact(got, want, t);
      if (threads == 1) {
        seq_stats = interp.stats();
      } else {
        ExpectStatsEqual(interp.stats(), seq_stats, t);
      }
    }
  }
}

// Two 4-thread runs must produce identical bytes (scheduling independence).
TEST(ParallelDeterminismTest, FourThreadRunsIdentical) {
  storage::Database db = tpch::MakeTpchDatabase(0.01);
  for (int q : {1, 6, 3}) {
    qplan::PlanPtr plan = tpch::MakeQuery(q);
    qplan::ResolvePlan(plan.get(), db);
    ir::TypeFactory types;
    QueryCompiler qc(&db, &types);
    compiler::CompileResult res =
        qc.Compile(*plan, StackConfig::Level(5), "q" + std::to_string(q));
    exec::Interpreter a(&db, Opts(InterpOptions::Engine::kBytecode, 4, 1024));
    exec::Interpreter b(&db, Opts(InterpOptions::Engine::kBytecode, 4, 1024));
    storage::ResultTable ra = a.Run(*res.fn);
    storage::ResultTable rb = b.Run(*res.fn);
    ExpectBitExact(ra, rb, "determinism Q" + std::to_string(q));
    ExpectStatsEqual(a.stats(), b.stats(),
                     "determinism Q" + std::to_string(q));
  }
}

// Guard against the whole suite passing vacuously: the analysis must
// actually find parallelizable loops (with the expected reduction shapes)
// in the flagship queries, at both stack levels.
TEST(ParallelAnalysisTest, FlagshipLoopsQualify) {
  storage::Database db = tpch::MakeTpchDatabase(0.002);

  auto analyze = [&](int q, int level) {
    qplan::PlanPtr plan = tpch::MakeQuery(q);
    qplan::ResolvePlan(plan.get(), db);
    ir::TypeFactory types;
    if (level == 3) {
      auto fn = lower::LowerPlanPipelined(*plan, db, &types, "q");
      return ir::AnalyzeParallelism(*fn);
    }
    QueryCompiler qc(&db, &types);
    compiler::CompileResult res =
        qc.Compile(*plan, StackConfig::Level(level), "q");
    return ir::AnalyzeParallelism(*res.fn);
  };

  // Q6: global f64 sum — one loop, one kVarSumF reduction with a log.
  {
    ir::ParallelInfo info = analyze(6, 5);
    ASSERT_EQ(info.loops.size(), 1u) << "Q6 L5 scan loop must qualify";
    const ir::ParLoop& pl = info.loops[0];
    ASSERT_EQ(pl.reductions.size(), 1u);
    EXPECT_EQ(pl.reductions[0].kind, ir::ParRedKind::kVarSumF);
    ASSERT_EQ(pl.logs.size(), 1u);
    EXPECT_EQ(pl.logs[0].values.size(), 1u);
  }
  // Q1 L5: direct-addressed group array with f64-sum fields + count.
  {
    ir::ParallelInfo info = analyze(1, 5);
    bool found = false;
    for (const ir::ParLoop& pl : info.loops) {
      for (const ir::ParReduction& r : pl.reductions) {
        if (r.kind == ir::ParRedKind::kGroupArray) {
          found = true;
          int sum_f = 0, sum_i = 0;
          for (ir::ParFold f : r.fields) {
            sum_f += f == ir::ParFold::kSumF;
            sum_i += f == ir::ParFold::kSumI;
          }
          EXPECT_EQ(sum_f, 7) << "Q1 has 7 f64 accumulator fields";
          EXPECT_GE(sum_i, 1) << "shared count field";
          EXPECT_FALSE(pl.logs.empty());
        }
      }
    }
    EXPECT_TRUE(found) << "Q1 L5 aggregation scan must qualify";
  }
  // Q1 L3: generic hash-map grouping.
  {
    ir::ParallelInfo info = analyze(1, 3);
    bool found = false;
    for (const ir::ParLoop& pl : info.loops) {
      for (const ir::ParReduction& r : pl.reductions) {
        found |= r.kind == ir::ParRedKind::kMap;
      }
    }
    EXPECT_TRUE(found) << "Q1 L3 map aggregation must qualify";
  }
  // Q3 L5: intrusive bucket-array build + probe loop with map grouping.
  {
    ir::ParallelInfo info = analyze(3, 5);
    bool bucket = false, map = false;
    for (const ir::ParLoop& pl : info.loops) {
      for (const ir::ParReduction& r : pl.reductions) {
        bucket |= r.kind == ir::ParRedKind::kBucketArray;
        map |= r.kind == ir::ParRedKind::kMap;
      }
    }
    EXPECT_TRUE(bucket) << "Q3 L5 build loop must qualify";
    EXPECT_TRUE(map) << "Q3 L5 probe loop must qualify";
  }
  // Q3 L3: generic multimap build.
  {
    ir::ParallelInfo info = analyze(3, 3);
    bool mmap = false;
    for (const ir::ParLoop& pl : info.loops) {
      for (const ir::ParReduction& r : pl.reductions) {
        mmap |= r.kind == ir::ParRedKind::kMMap;
      }
    }
    EXPECT_TRUE(mmap) << "Q3 L3 multimap build must qualify";
  }
  // Q2 has a grouped min aggregate.
  {
    ir::ParallelInfo info = analyze(2, 5);
    bool min = false;
    for (const ir::ParLoop& pl : info.loops) {
      for (const ir::ParReduction& r : pl.reductions) {
        for (ir::ParFold f : r.fields) min |= f == ir::ParFold::kMin;
      }
    }
    EXPECT_TRUE(min) << "Q2 L5 min aggregation must qualify";
  }
}

}  // namespace
}  // namespace qc
