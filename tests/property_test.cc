// Randomized property testing: generates random (but type-correct) query
// plans over the TPC-H schema — filters with random predicates, FK joins of
// random shape, random grouped/global aggregations — and checks that every
// stack configuration produces exactly the Volcano oracle's rows. This
// sweeps plan shapes the hand-written TPC-H queries do not cover.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "compiler/compiler.h"
#include "exec/interp.h"
#include "tpch/datagen.h"
#include "volcano/volcano.h"

namespace qc {
namespace {

using namespace qc::qplan;  // NOLINT

storage::Database* Db() {
  static storage::Database* db =
      new storage::Database(tpch::MakeTpchDatabase(0.002, 21));
  return db;
}

struct TableInfo {
  const char* name;
  const char* int_col;   // low-cardinality integral column
  const char* f64_col;   // numeric measure
  double f64_hi;         // rough max for predicate constants
  const char* fk_col;    // FK column (nullptr if none)
  const char* fk_table;  // referenced table
  const char* fk_pk;     // referenced PK
};

const TableInfo kTables[] = {
    {"lineitem", "l_linenumber", "l_extendedprice", 90000.0, "l_orderkey",
     "orders", "o_orderkey"},
    {"orders", "o_shippriority", "o_totalprice", 300000.0, "o_custkey",
     "customer", "c_custkey"},
    {"customer", "c_nationkey", "c_acctbal", 9000.0, "c_nationkey", "nation",
     "n_nationkey"},
    {"partsupp", "ps_availqty", "ps_supplycost", 1000.0, "ps_partkey", "part",
     "p_partkey"},
    {"supplier", "s_nationkey", "s_acctbal", 9000.0, "s_nationkey", "nation",
     "n_nationkey"},
};

class RandomPlanTest : public ::testing::TestWithParam<int> {};

TEST_P(RandomPlanTest, AllConfigsMatchOracle) {
  Rng rng(GetParam());
  const TableInfo& t = kTables[rng.Uniform(0, std::size(kTables) - 1)];

  PlanPtr plan = ScanOp(t.name);
  // Random filter.
  if (rng.Uniform(0, 2) != 0) {
    double frac = rng.UniformDouble(0.2, 0.9);
    ExprPtr pred = Lt(Col(t.f64_col), F(t.f64_hi * frac));
    if (rng.Uniform(0, 1) == 0) {
      pred = And(pred, Gt(Col(t.f64_col), F(t.f64_hi * frac * 0.3)));
    }
    plan = SelectOp(std::move(plan), pred);
  }
  // Random FK join (inner / semi / anti).
  bool joined = false;
  if (t.fk_col != nullptr && rng.Uniform(0, 2) != 0) {
    JoinKind kinds[] = {JoinKind::kInner, JoinKind::kSemi, JoinKind::kAnti};
    JoinKind kind = kinds[rng.Uniform(0, 2)];
    plan = JoinOp(kind, std::move(plan), ScanOp(t.fk_table), {Col(t.fk_col)},
                  {Col(t.fk_pk)});
    joined = kind == JoinKind::kInner;
    (void)joined;
  }
  // Random aggregation: global or grouped by the low-cardinality column.
  if (rng.Uniform(0, 1) == 0) {
    plan = AggOp(std::move(plan), {},
                 {Sum(Col(t.f64_col), "s"), Count("n"),
                  Min(Col(t.f64_col), "mn"), Max(Col(t.f64_col), "mx")});
  } else {
    plan = AggOp(std::move(plan), {{"g", Col(t.int_col)}},
                 {Sum(Col(t.f64_col), "s"), Count("n"),
                  Avg(Col(t.f64_col), "a")});
  }

  ResolvePlan(plan.get(), *Db());
  storage::ResultTable oracle = volcano::Execute(*plan, *Db());

  ir::TypeFactory types;
  compiler::QueryCompiler qc(Db(), &types);
  for (int levels = 2; levels <= 5; ++levels) {
    compiler::CompileResult res = qc.Compile(
        *plan, compiler::StackConfig::Level(levels), "rand");
    exec::Interpreter interp(Db());
    storage::ResultTable got = interp.Run(*res.fn);
    std::string diff;
    EXPECT_TRUE(got.SameRows(oracle, &diff))
        << "seed " << GetParam() << " level " << levels << "\n"
        << plan->ToString() << diff;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomPlanTest, ::testing::Range(0, 40));

}  // namespace
}  // namespace qc
