// All 22 TPC-H queries: the pipelining lowering (ScaLite[Map,List] level)
// executed by the IR interpreter must agree with the Volcano oracle on a
// small generated database. This is the base correctness gate; the compiler
// configurations are tested on top of it in stack_equivalence_test.cc.
#include <gtest/gtest.h>

#include "exec/interp.h"
#include "ir/printer.h"
#include "ir/verify.h"
#include "lower/pipeline.h"
#include "tpch/datagen.h"
#include "tpch/queries.h"
#include "volcano/volcano.h"

namespace qc {
namespace {

class TpchOracleTest : public ::testing::TestWithParam<int> {
 protected:
  static storage::Database* db() {
    static storage::Database* db =
        new storage::Database(tpch::MakeTpchDatabase(0.002));
    return db;
  }
};

TEST_P(TpchOracleTest, PipelinedMatchesVolcano) {
  int q = GetParam();
  qplan::PlanPtr plan = tpch::MakeQuery(q);
  qplan::ResolvePlan(plan.get(), *db());

  storage::ResultTable oracle = volcano::Execute(*plan, *db());

  ir::TypeFactory types;
  auto fn = lower::LowerPlanPipelined(*plan, *db(), &types,
                                      "q" + std::to_string(q));
  ir::CheckFunction(*fn);
  ir::CheckLevel(*fn, ir::Level::kMapList);

  exec::Interpreter interp(db());
  storage::ResultTable got = interp.Run(*fn);

  std::string diff;
  EXPECT_TRUE(got.SameRows(oracle, &diff)) << "Q" << q << ": " << diff;
  // Queries should not come back trivially empty, except the handful whose
  // predicates are too selective for this tiny scale factor (they are
  // checked as non-empty at SF >= 0.01 in tpch_scale_test.cc).
  if (q != 2 && q != 18 && q != 20 && q != 21) {
    EXPECT_GT(oracle.size(), 0u) << "Q" << q << " oracle result is empty";
  }
}

INSTANTIATE_TEST_SUITE_P(AllQueries, TpchOracleTest, ::testing::Range(1, 23));

}  // namespace
}  // namespace qc
