// QMonad front-end: the shortcut-fusion lowering (Fig. 6) and the
// materializing lowering must agree with each other and with the equivalent
// QPlan Volcano execution; fusion must actually remove the intermediate
// collections (Fig. 5's effect: no list construction between operators).
#include <gtest/gtest.h>

#include "exec/interp.h"
#include "ir/printer.h"
#include "ir/verify.h"
#include "qmonad/qmonad.h"
#include "tpch/datagen.h"
#include "volcano/volcano.h"

namespace qc {
namespace {

using namespace qc::qplan;  // NOLINT
namespace qm = qc::qmonad;

storage::Database* Db() {
  static storage::Database* db =
      new storage::Database(tpch::MakeTpchDatabase(0.002, 3));
  return db;
}

// The paper's running example (Fig. 4c):
//   R.filter(r => r.name == "R1").hashJoin(S)(r => r.sid)(s => s.rid).count
qm::MonadPtr PaperExample() {
  auto filtered = qm::Filter(qm::Source("customer"),
                             Eq(Col("c_mktsegment"), S("BUILDING")));
  auto joined = qm::HashJoin(qm::Source("orders"), std::move(filtered),
                             Col("o_custkey"), Col("c_custkey"));
  return qm::Count(std::move(joined));
}

int CountOpOccurrences(const std::string& text, const std::string& needle) {
  int n = 0;
  size_t pos = 0;
  while ((pos = text.find(needle, pos)) != std::string::npos) {
    ++n;
    pos += needle.size();
  }
  return n;
}

TEST(QMonad, FusedMatchesUnfused) {
  auto run = [&](bool fused, const qm::MonadPtr& q) {
    ir::TypeFactory types;
    auto fn = fused ? qm::LowerFused(*q, *Db(), &types, "m")
                    : qm::LowerUnfused(*q, *Db(), &types, "m");
    ir::CheckFunction(*fn);
    ir::CheckLevel(*fn, ir::Level::kMapList);
    exec::Interpreter interp(Db());
    return interp.Run(*fn);
  };
  auto q1 = PaperExample();
  qm::ResolveMonad(q1.get(), *Db());
  auto q2 = PaperExample();
  qm::ResolveMonad(q2.get(), *Db());
  storage::ResultTable fused = run(true, q1);
  storage::ResultTable unfused = run(false, q2);
  std::string diff;
  EXPECT_TRUE(fused.SameRows(unfused, &diff)) << diff;
  ASSERT_EQ(fused.size(), 1u);
}

TEST(QMonad, FusionRemovesIntermediateLists) {
  auto q1 = PaperExample();
  qm::ResolveMonad(q1.get(), *Db());
  auto q2 = PaperExample();
  qm::ResolveMonad(q2.get(), *Db());
  ir::TypeFactory types;
  std::string fused =
      ir::PrintFunction(*qm::LowerFused(*q1, *Db(), &types, "m"));
  std::string unfused =
      ir::PrintFunction(*qm::LowerUnfused(*q2, *Db(), &types, "m"));
  // Fused: the only collection left is the join's hash table — no list_new
  // at all for this query. Unfused: one materialized list per operator.
  EXPECT_EQ(CountOpOccurrences(fused, "list_new"), 0) << fused;
  EXPECT_GE(CountOpOccurrences(unfused, "list_new"), 3) << unfused;
}

TEST(QMonad, GroupBySortTakePipeline) {
  // revenue per order status, top-2: exercises groupBy/sortBy/take.
  auto q = qm::Take(
      qm::SortBy(qm::GroupBy(qm::Source("orders"),
                             {{"status", Col("o_orderstatus")}},
                             {Sum(Col("o_totalprice"), "rev"), Count("n")}),
                 {Desc(Col("rev"))}),
      2);
  qm::ResolveMonad(q.get(), *Db());
  ir::TypeFactory types;
  auto fn = qm::LowerFused(*q, *Db(), &types, "m");
  exec::Interpreter interp(Db());
  storage::ResultTable fused = interp.Run(*fn);
  EXPECT_EQ(fused.size(), 2u);

  // Cross-check against the equivalent QPlan query through Volcano.
  PlanPtr plan = LimitOp(
      SortOp(AggOp(ScanOp("orders"), {{"status", Col("o_orderstatus")}},
                   {Sum(Col("o_totalprice"), "rev"), Count("n")}),
             {Desc(Col("rev"))}),
      2);
  ResolvePlan(plan.get(), *Db());
  storage::ResultTable oracle = volcano::Execute(*plan, *Db());
  std::string diff;
  EXPECT_TRUE(fused.SameRows(oracle, &diff)) << diff;
}

TEST(QMonad, FoldAndMap) {
  auto q = qm::Fold(
      qm::Map(qm::Filter(qm::Source("lineitem"),
                         Lt(Col("l_quantity"), F(10.0))),
              {{"v", Mul(Col("l_extendedprice"), Col("l_discount"))}}),
      {Sum(Col("v"), "total"), Min(Col("v"), "mn"), Max(Col("v"), "mx"),
       Avg(Col("v"), "avg")});
  qm::ResolveMonad(q.get(), *Db());
  ir::TypeFactory types;
  auto fn = qm::LowerFused(*q, *Db(), &types, "m");
  exec::Interpreter interp(Db());
  storage::ResultTable got = interp.Run(*fn);
  ASSERT_EQ(got.size(), 1u);

  PlanPtr plan =
      AggOp(ProjectOp(SelectOp(ScanOp("lineitem"),
                               Lt(Col("l_quantity"), F(10.0))),
                      {{"v", Mul(Col("l_extendedprice"), Col("l_discount"))}}),
            {}, {Sum(Col("v"), "total"), Min(Col("v"), "mn"),
                 Max(Col("v"), "mx"), Avg(Col("v"), "avg")});
  ResolvePlan(plan.get(), *Db());
  storage::ResultTable oracle = volcano::Execute(*plan, *Db());
  std::string diff;
  EXPECT_TRUE(got.SameRows(oracle, &diff)) << diff;
}

TEST(QMonad, RuleAccounting) {
  qm::FusionRuleAccounting acc = qm::CountFusionRules();
  EXPECT_EQ(acc.pairwise_rules, acc.constructs * acc.constructs);
  EXPECT_EQ(acc.shortcut_rules, acc.constructs);
  EXPECT_LT(acc.shortcut_rules, acc.pairwise_rules);
}

}  // namespace
}  // namespace qc
