// Telemetry subsystem (src/telemetry/): metrics registry (sharded counter
// correctness under concurrency, histogram bucketing, Prometheus exposition
// + escaping, JSON byte-format), structured logging (LogFormat quoting,
// QC_LOG threshold), and tracing (Chrome trace-event JSON schema validated
// with a real recursive-descent parser over a real TPC-H query at 1 and 4
// threads, per-thread ring wrap under QC_TRACE_BUF).
//
// Determinism guard: the same query run traced and untraced must produce
// bit-identical results — telemetry reads timing, never influences
// execution.
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "compiler/compiler.h"
#include "exec/interp.h"
#include "telemetry/log.h"
#include "telemetry/metrics.h"
#include "telemetry/trace.h"
#include "tpch/datagen.h"
#include "tpch/queries.h"

namespace qc {
namespace {

using compiler::QueryCompiler;
using compiler::StackConfig;
using exec::InterpOptions;

// ---------------------------------------------------------------------------
// Minimal recursive-descent JSON validator: enough of RFC 8259 to reject
// malformed output (unbalanced braces, bad escapes, trailing commas). The
// trace exporter must produce JSON that a real parser accepts, not JSON
// that happens to grep well.
// ---------------------------------------------------------------------------

struct JsonParser {
  const char* p;
  const char* end;
  bool ok = true;

  explicit JsonParser(const std::string& s)
      : p(s.data()), end(s.data() + s.size()) {}

  void Skip() {
    while (p < end && (*p == ' ' || *p == '\t' || *p == '\n' || *p == '\r'))
      ++p;
  }
  bool Eat(char c) {
    Skip();
    if (p < end && *p == c) {
      ++p;
      return true;
    }
    return false;
  }
  bool ParseString() {
    Skip();
    if (p >= end || *p != '"') return false;
    ++p;
    while (p < end && *p != '"') {
      if (*p == '\\') {
        ++p;
        if (p >= end) return false;
        if (*p == 'u') {
          for (int i = 0; i < 4; ++i) {
            ++p;
            if (p >= end || !isxdigit(static_cast<unsigned char>(*p)))
              return false;
          }
        } else if (std::string("\"\\/bfnrt").find(*p) == std::string::npos) {
          return false;
        }
      }
      ++p;
    }
    if (p >= end) return false;
    ++p;  // closing quote
    return true;
  }
  bool ParseNumber() {
    Skip();
    const char* start = p;
    if (p < end && *p == '-') ++p;
    while (p < end && isdigit(static_cast<unsigned char>(*p))) ++p;
    if (p < end && *p == '.') {
      ++p;
      while (p < end && isdigit(static_cast<unsigned char>(*p))) ++p;
    }
    if (p < end && (*p == 'e' || *p == 'E')) {
      ++p;
      if (p < end && (*p == '+' || *p == '-')) ++p;
      while (p < end && isdigit(static_cast<unsigned char>(*p))) ++p;
    }
    return p > start;
  }
  bool ParseValue() {
    Skip();
    if (p >= end) return false;
    switch (*p) {
      case '{': return ParseObject();
      case '[': return ParseArray();
      case '"': return ParseString();
      case 't': return Literal("true");
      case 'f': return Literal("false");
      case 'n': return Literal("null");
      default: return ParseNumber();
    }
  }
  bool Literal(const char* lit) {
    for (; *lit != '\0'; ++lit, ++p) {
      if (p >= end || *p != *lit) return false;
    }
    return true;
  }
  bool ParseObject() {
    if (!Eat('{')) return false;
    if (Eat('}')) return true;
    for (;;) {
      if (!ParseString() || !Eat(':') || !ParseValue()) return false;
      if (Eat('}')) return true;
      if (!Eat(',')) return false;
    }
  }
  bool ParseArray() {
    if (!Eat('[')) return false;
    if (Eat(']')) return true;
    for (;;) {
      if (!ParseValue()) return false;
      if (Eat(']')) return true;
      if (!Eat(',')) return false;
    }
  }
  bool ValidDocument() {
    bool v = ParseValue();
    Skip();
    return v && p == end;
  }
};

size_t CountOccurrences(const std::string& hay, const std::string& needle) {
  size_t n = 0;
  for (size_t at = hay.find(needle); at != std::string::npos;
       at = hay.find(needle, at + needle.size())) {
    ++n;
  }
  return n;
}

// ---------------------------------------------------------------------------
// Metrics registry.
// ---------------------------------------------------------------------------

TEST(Metrics, CounterConcurrentAdds) {
  telemetry::MetricsRegistry reg;
  telemetry::Counter* c = reg.AddCounter("t_total", "t", "t");
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([c] {
      for (int i = 0; i < kPerThread; ++i) c->Inc();
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(c->load(), static_cast<uint64_t>(kThreads) * kPerThread);
}

TEST(Metrics, JsonIsRegistrationOrderedAndByteStable) {
  telemetry::MetricsRegistry reg;
  telemetry::Counter* a = reg.AddCounter("qc_a_total", "a.", "a");
  telemetry::Gauge* g = reg.AddGauge("qc_g", "g.", "g");
  telemetry::Counter* b = reg.AddCounter("qc_b_total", "b.", "b");
  reg.AddCounter("qc_hidden_total", "not in json");  // no json_key
  a->Add(3);
  g->Set(-2);
  b->Inc();
  EXPECT_EQ(reg.Snapshot().ToJson(), "{\"a\":3,\"g\":-2,\"b\":1}");
}

TEST(Metrics, HistogramBucketsAndCumulativeRendering) {
  telemetry::MetricsRegistry reg;
  telemetry::Histogram* h = reg.AddHistogram("qc_ms", "h.", {1, 5, 25});
  h->Observe(0.5);
  h->Observe(3);
  h->Observe(10);
  h->Observe(100);
  h->Observe(1);  // boundary: le="1" is inclusive

  std::vector<uint64_t> buckets;
  uint64_t count = 0;
  double sum = 0;
  h->Read(&buckets, &count, &sum);
  ASSERT_EQ(buckets.size(), 4u);  // 3 bounds + infinity
  EXPECT_EQ(buckets[0], 2u);
  EXPECT_EQ(buckets[1], 1u);
  EXPECT_EQ(buckets[2], 1u);
  EXPECT_EQ(buckets[3], 1u);
  EXPECT_EQ(count, 5u);
  EXPECT_NEAR(sum, 114.5, 1e-6);

  std::string prom = reg.Snapshot().ToPrometheus();
  EXPECT_NE(prom.find("# TYPE qc_ms histogram"), std::string::npos);
  EXPECT_NE(prom.find("qc_ms_bucket{le=\"1\"} 2"), std::string::npos);
  EXPECT_NE(prom.find("qc_ms_bucket{le=\"5\"} 3"), std::string::npos);
  EXPECT_NE(prom.find("qc_ms_bucket{le=\"25\"} 4"), std::string::npos);
  EXPECT_NE(prom.find("qc_ms_bucket{le=\"+Inf\"} 5"), std::string::npos);
  EXPECT_NE(prom.find("qc_ms_count 5"), std::string::npos);
}

TEST(Metrics, HistogramConcurrentObserves) {
  telemetry::MetricsRegistry reg;
  telemetry::Histogram* h = reg.AddHistogram("qc_c_ms", "h.", {10});
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([h] {
      for (int i = 0; i < 1000; ++i) h->Observe(i % 2 == 0 ? 1.0 : 100.0);
    });
  }
  for (auto& t : threads) t.join();
  std::vector<uint64_t> buckets;
  uint64_t count = 0;
  double sum = 0;
  h->Read(&buckets, &count, &sum);
  EXPECT_EQ(count, 4000u);
  EXPECT_EQ(buckets[0], 2000u);
  EXPECT_EQ(buckets[1], 2000u);
}

TEST(Metrics, PrometheusTypesAndHelpEscaping) {
  telemetry::MetricsRegistry reg;
  telemetry::Counter* c =
      reg.AddCounter("qc_esc_total", "line1\nline2 with \\ backslash");
  telemetry::Gauge* g = reg.AddGauge("qc_esc_gauge", "g.");
  c->Add(7);
  g->Set(-3);
  std::string prom = reg.Snapshot().ToPrometheus();
  EXPECT_NE(
      prom.find("# HELP qc_esc_total line1\\nline2 with \\\\ backslash\n"),
      std::string::npos);
  EXPECT_NE(prom.find("# TYPE qc_esc_total counter"), std::string::npos);
  EXPECT_NE(prom.find("qc_esc_total 7\n"), std::string::npos);
  EXPECT_NE(prom.find("# TYPE qc_esc_gauge gauge"), std::string::npos);
  EXPECT_NE(prom.find("qc_esc_gauge -3\n"), std::string::npos);
}

TEST(Metrics, GlobalEngineCountersRegistered) {
  // Touching the accessors must register the families exactly once and
  // make them visible in the global exposition.
  telemetry::JitCompiles();
  telemetry::GovSafepointTrips();
  telemetry::PlanCacheHits();
  std::string prom = telemetry::MetricsRegistry::Global().Snapshot()
                         .ToPrometheus();
  EXPECT_EQ(CountOccurrences(prom, "# TYPE qc_jit_compiles_total counter"),
            1u);
  EXPECT_NE(prom.find("qc_gov_safepoint_trips_total"), std::string::npos);
  EXPECT_NE(prom.find("qc_plan_cache_hits_total"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Structured logging.
// ---------------------------------------------------------------------------

TEST(Log, FormatPlainAndTyped) {
  std::string line = telemetry::LogFormat(
      telemetry::LogLevel::kWarn, "jit_fallback",
      {{"reason", "exec_pages_denied"}, {"count", 3}, {"pct", 12.5}});
  EXPECT_EQ(line,
            "level=warn event=jit_fallback reason=exec_pages_denied "
            "count=3 pct=12.5");
}

TEST(Log, FormatQuotesAndEscapes) {
  std::string line = telemetry::LogFormat(
      telemetry::LogLevel::kInfo, "note",
      {{"msg", "has spaces"}, {"q", "a\"b"}, {"eq", "k=v"}, {"nl", "a\nb"}});
  EXPECT_EQ(line,
            "level=info event=note msg=\"has spaces\" q=\"a\\\"b\" "
            "eq=\"k=v\" nl=\"a\\nb\"");
}

TEST(Log, ThresholdFromEnv) {
  ::setenv("QC_LOG", "error", 1);
  EXPECT_EQ(telemetry::LogThreshold(), 0);
  EXPECT_TRUE(telemetry::LogEnabled(telemetry::LogLevel::kError));
  EXPECT_FALSE(telemetry::LogEnabled(telemetry::LogLevel::kInfo));
  ::setenv("QC_LOG", "3", 1);
  EXPECT_EQ(telemetry::LogThreshold(), 3);
  EXPECT_TRUE(telemetry::LogEnabled(telemetry::LogLevel::kDebug));
  ::setenv("QC_LOG", "bogus", 1);
  EXPECT_EQ(telemetry::LogThreshold(), 2);  // default info
  ::unsetenv("QC_LOG");
  EXPECT_EQ(telemetry::LogThreshold(), 2);
}

// ---------------------------------------------------------------------------
// Tracing.
// ---------------------------------------------------------------------------

TEST(Trace, NoSessionMeansNoRecording) {
  EXPECT_EQ(telemetry::CurrentTraceSession(), 0u);
  // Recording into session 0 is a no-op, and an unknown session yields a
  // valid empty trace.
  telemetry::TraceRecord(0, "ignored", "t", 0, 1);
  std::string json = telemetry::TraceEndSession(99999999);
  JsonParser parser(json);
  EXPECT_TRUE(parser.ValidDocument()) << json;
  EXPECT_NE(json.find("\"traceEvents\":[]"), std::string::npos);
}

TEST(Trace, ScopeBindsAndRestores) {
  uint64_t s = telemetry::TraceBeginSession();
  {
    telemetry::TraceScope scope(s);
    EXPECT_EQ(telemetry::CurrentTraceSession(), s);
    {
      telemetry::TraceScope inner(0);  // no-op binder
      EXPECT_EQ(telemetry::CurrentTraceSession(), s);
    }
    EXPECT_EQ(telemetry::CurrentTraceSession(), s);
  }
  EXPECT_EQ(telemetry::CurrentTraceSession(), 0u);
  telemetry::TraceEndSession(s);
}

TEST(Trace, EventsRoundTripWithArgs) {
  uint64_t s = telemetry::TraceBeginSession();
  telemetry::TraceRecord(s, "alpha", "test", 1000, 500, "rows", 42);
  telemetry::TraceRecord(s, "beta", "test", 2000, 250, "a", 1, "b", 2);
  std::string json = telemetry::TraceEndSession(s);
  JsonParser parser(json);
  ASSERT_TRUE(parser.ValidDocument()) << json;
  EXPECT_EQ(CountOccurrences(json, "\"name\":\"alpha\""), 1u);
  EXPECT_EQ(CountOccurrences(json, "\"name\":\"beta\""), 1u);
  EXPECT_NE(json.find("\"args\":{\"rows\":42}"), std::string::npos);
  EXPECT_NE(json.find("\"args\":{\"a\":1,\"b\":2}"), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  // Ending the session drained the events: a second drain is empty.
  std::string again = telemetry::TraceEndSession(s);
  EXPECT_NE(again.find("\"traceEvents\":[]"), std::string::npos);
}

TEST(Trace, RingWrapDropsOldest) {
  // A fresh thread allocates its ring under QC_TRACE_BUF=64, records 100
  // events into one session, and only the newest 64 survive the wrap.
  ::setenv("QC_TRACE_BUF", "64", 1);
  uint64_t s = telemetry::TraceBeginSession();
  std::thread recorder([s] {
    for (int i = 0; i < 100; ++i) {
      telemetry::TraceRecord(s, "wrap_ev", "test", 1000 + i, 1, "i", i);
    }
  });
  recorder.join();
  ::unsetenv("QC_TRACE_BUF");
  std::string json = telemetry::TraceEndSession(s);
  JsonParser parser(json);
  ASSERT_TRUE(parser.ValidDocument()) << json;
  EXPECT_EQ(CountOccurrences(json, "\"name\":\"wrap_ev\""), 64u);
  // Oldest dropped, newest kept.
  EXPECT_EQ(json.find("\"i\":35}"), std::string::npos);
  EXPECT_NE(json.find("\"i\":99}"), std::string::npos);
}

// ---------------------------------------------------------------------------
// End-to-end: a real TPC-H query through the JIT engine with tracing on.
// ---------------------------------------------------------------------------

storage::Database* Db() {
  static storage::Database* db =
      new storage::Database(tpch::MakeTpchDatabase(0.01));
  return db;
}

struct CompiledQuery {
  ir::TypeFactory types;
  compiler::CompileResult res;
};

const ir::Function& Q1() {
  static CompiledQuery* c = [] {
    auto* h = new CompiledQuery();
    qplan::PlanPtr plan = tpch::MakeQuery(1);
    qplan::ResolvePlan(plan.get(), *Db());
    QueryCompiler qc(Db(), &h->types);
    h->res = qc.Compile(*plan, StackConfig::Level(5), "q1");
    return h;
  }();
  return *c->res.fn;
}

std::string TraceQ1(int threads, storage::ResultTable* out) {
  InterpOptions o;
  o.engine = InterpOptions::Engine::kJit;
  o.num_threads = threads;
  o.morsel_rows = 256;  // SF 0.01 lineitem in enough morsels to slice
  exec::Interpreter interp(Db(), o);
  uint64_t s = telemetry::TraceBeginSession();
  {
    telemetry::TraceScope scope(s);
    *out = interp.Run(Q1());
  }
  return telemetry::TraceEndSession(s);
}

TEST(TraceEndToEnd, TpchQ1ProducesLoadableChromeTrace) {
  for (int threads : {1, 4}) {
    storage::ResultTable result;
    std::string json = TraceQ1(threads, &result);
    SCOPED_TRACE("threads=" + std::to_string(threads));
    JsonParser parser(json);
    ASSERT_TRUE(parser.ValidDocument()) << json.substr(0, 400);
    EXPECT_NE(json.find("\"displayTimeUnit\":\"ms\""), std::string::npos);
    // Compile-phase spans appear on the first (cold) run of each thread
    // count... but the program cache is per-Interpreter and each loop
    // iteration builds a fresh one, so both runs see bytecode_compile.
    EXPECT_GE(CountOccurrences(json, "\"name\":\"bytecode_compile\""), 1u);
    EXPECT_GE(CountOccurrences(json, "\"name\":\"exec\""), 1u);
    if (threads > 1) {
      // Morsel-level slices from the parallel scan loops.
      EXPECT_GE(CountOccurrences(json, "\"name\":\"morsel\""), 2u);
      EXPECT_GE(CountOccurrences(json, "\"name\":\"par_loop\""), 1u);
    }
    EXPECT_GT(result.size(), 0u);
  }
}

TEST(TraceEndToEnd, TracedRunIsBitExact) {
  InterpOptions o;
  o.engine = InterpOptions::Engine::kJit;
  o.num_threads = 4;
  o.morsel_rows = 256;
  exec::Interpreter plain(Db(), o);
  storage::ResultTable want = plain.Run(Q1());

  storage::ResultTable got;
  TraceQ1(4, &got);
  ASSERT_EQ(got.size(), want.size());
  for (size_t r = 0; r < got.size(); ++r) {
    EXPECT_EQ(got.RowToString(r), want.RowToString(r)) << "row " << r;
  }
}

}  // namespace
}  // namespace qc
