// The bytecode VM must be observationally identical to the tree-walking
// interpreter: bit-exact result equality (not just canonical-text equality)
// across all 22 TPC-H queries under every stack configuration, plus unit
// tests for the bytecode compiler itself — jump lowering, constant presets,
// and the fused super-instructions.
//
// The copy-and-patch JIT backend (src/jit/) is locked against the VM the
// same way: bit-exact agreement on all 22 queries at SF 0.01, both stack
// levels, threads {1, 4}, plus deopt-boundary and degraded-mode tests.
// (VM == tree-walk at the same scale is asserted by parallel_exec_test, so
// the three engines agree transitively.)
#include <gtest/gtest.h>

#include <cstdlib>
#include <cstring>
#include <string>

#include "compiler/compiler.h"
#include "exec/bytecode.h"
#include "exec/interp.h"
#include "ir/builder.h"
#include "jit/engine.h"
#include "lower/pipeline.h"
#include "storage/database.h"
#include "tpch/datagen.h"
#include "tpch/queries.h"

namespace qc {
namespace {

using compiler::QueryCompiler;
using compiler::StackConfig;
using exec::BcOp;
using exec::BytecodeCompiler;
using exec::BytecodeProgram;
using exec::InterpOptions;
using ir::Builder;
using ir::Function;
using ir::Stmt;
using ir::TypeFactory;

InterpOptions TreeWalk() {
  InterpOptions o;
  o.engine = InterpOptions::Engine::kTreeWalk;
  return o;
}

InterpOptions Bytecode() {
  InterpOptions o;
  o.engine = InterpOptions::Engine::kBytecode;
  return o;
}

// Bit-exact, position-exact equality. Doubles are compared on their bit
// patterns (via the .i view of the slot union), so even sign-of-zero or
// associativity differences would be caught.
void ExpectBitExact(const storage::ResultTable& bc,
                    const storage::ResultTable& tree, const std::string& tag) {
  ASSERT_EQ(bc.size(), tree.size()) << tag << ": row count";
  ASSERT_EQ(bc.types().size(), tree.types().size()) << tag << ": arity";
  for (size_t r = 0; r < bc.size(); ++r) {
    for (size_t c = 0; c < bc.types().size(); ++c) {
      if (bc.types()[c] == storage::ColType::kStr) {
        EXPECT_STREQ(bc.row(r)[c].s, tree.row(r)[c].s)
            << tag << ": row " << r << " col " << c;
      } else {
        EXPECT_EQ(bc.row(r)[c].i, tree.row(r)[c].i)
            << tag << ": row " << r << " col " << c;
      }
    }
  }
}

// Runs `fn` on both engines against `db` and checks bit-exact agreement.
void ExpectEnginesAgree(storage::Database* db, const Function& fn,
                        const std::string& tag) {
  exec::Interpreter tree(db, TreeWalk());
  exec::Interpreter bc(db, Bytecode());
  storage::ResultTable rt = tree.Run(fn);
  storage::ResultTable rb = bc.Run(fn);
  ExpectBitExact(rb, rt, tag);
}

int CountOp(const BytecodeProgram& prog, BcOp op) {
  int n = 0;
  for (const exec::Insn& insn : prog.code) {
    if (insn.op == static_cast<uint16_t>(op)) ++n;
  }
  return n;
}

bool IsJumpOp(BcOp op) {
  if (op == BcOp::kForNext || op == BcOp::kIncJmp) return true;
  const char* name = BcOpName(op);
  return name[0] == 'k' && name[1] == 'J';
}

// Every jump target must land inside the program; ArrSort/ListSort
// subroutine entries must too.
void ExpectJumpsInBounds(const BytecodeProgram& prog) {
  for (size_t pc = 0; pc < prog.code.size(); ++pc) {
    const exec::Insn& insn = prog.code[pc];
    BcOp op = static_cast<BcOp>(insn.op);
    if (IsJumpOp(op)) {
      ptrdiff_t target = static_cast<ptrdiff_t>(pc) + 1 + insn.d;
      EXPECT_GE(target, 0) << "pc " << pc << " " << BcOpName(op);
      EXPECT_LT(target, static_cast<ptrdiff_t>(prog.code.size()))
          << "pc " << pc << " " << BcOpName(op);
    }
    if (op == BcOp::kArrSort || op == BcOp::kListSort) {
      EXPECT_LT(insn.c, prog.code.size()) << "subroutine entry, pc " << pc;
    }
  }
}

// --------------------------------------------------------------------------
// All 22 TPC-H queries, every stack level: bit-exact engine agreement.
// --------------------------------------------------------------------------

class BytecodeVmTpchTest : public ::testing::TestWithParam<int> {
 protected:
  static storage::Database* db() {
    static storage::Database* db =
        new storage::Database(tpch::MakeTpchDatabase(0.002, 7));
    return db;
  }
};

TEST_P(BytecodeVmTpchTest, BitExactAcrossAllStackLevels) {
  int q = GetParam();
  qplan::PlanPtr plan = tpch::MakeQuery(q);
  qplan::ResolvePlan(plan.get(), *db());

  // The pipelining-only lowering (the oracle-test configuration).
  {
    ir::TypeFactory types;
    auto fn = lower::LowerPlanPipelined(*plan, *db(), &types,
                                        "q" + std::to_string(q));
    ExpectEnginesAgree(db(), *fn, "Q" + std::to_string(q) + " pipelined");
  }

  // Every compiler configuration.
  ir::TypeFactory types;
  QueryCompiler qc(db(), &types);
  for (const StackConfig& cfg :
       {StackConfig::Level(2), StackConfig::Level(3), StackConfig::Level(4),
        StackConfig::Level(5), StackConfig::Compliant(),
        StackConfig::LegoBase()}) {
    compiler::CompileResult res =
        qc.Compile(*plan, cfg, "q" + std::to_string(q) + "_" + cfg.name);
    ExpectEnginesAgree(db(), *res.fn,
                       "Q" + std::to_string(q) + " " + cfg.name);
    BytecodeProgram prog = BytecodeCompiler(db()).Compile(*res.fn);
    ExpectJumpsInBounds(prog);
  }
}

INSTANTIATE_TEST_SUITE_P(AllQueries, BytecodeVmTpchTest,
                         ::testing::Range(1, 23));

// --------------------------------------------------------------------------
// Jump lowering
// --------------------------------------------------------------------------

TEST(BytecodeJumps, IfElseLowersToForwardJumps) {
  storage::Database db;
  TypeFactory types;
  Function fn("f", &types);
  Builder b(&fn);
  Stmt* v = b.VarNew(b.I64(0));
  b.If(
      b.Gt(b.VarRead(v), b.I64(10)), [&] { b.VarAssign(v, b.I64(1)); },
      [&] { b.VarAssign(v, b.I64(2)); });
  b.EmitRow({b.VarRead(v)});

  BytecodeProgram prog = BytecodeCompiler(&db).Compile(fn);
  ExpectJumpsInBounds(prog);
  // The else-arm requires a then-exit jump.
  EXPECT_GE(CountOp(prog, BcOp::kJmp), 1);
  ExpectEnginesAgree(&db, fn, "if-else");
  exec::Interpreter interp(&db);
  EXPECT_EQ(interp.Run(fn).row(0)[0].i, 2);
}

TEST(BytecodeJumps, ForRangeUsesFusedBackEdge) {
  storage::Database db;
  TypeFactory types;
  Function fn("f", &types);
  Builder b(&fn);
  Stmt* sum = b.VarNew(b.I64(0));
  b.ForRange(b.I64(0), b.I64(100),
             [&](Stmt* i) { b.VarAssign(sum, b.Add(b.VarRead(sum), i)); });
  b.EmitRow({b.VarRead(sum)});

  BytecodeProgram prog = BytecodeCompiler(&db).Compile(fn);
  ExpectJumpsInBounds(prog);
  // Loop head guard + fused increment/bound-check/back-edge.
  EXPECT_EQ(CountOp(prog, BcOp::kJgeI), 1);
  EXPECT_EQ(CountOp(prog, BcOp::kForNext), 1);
  exec::Interpreter interp(&db);
  EXPECT_EQ(interp.Run(fn).row(0)[0].i, 4950);
}

TEST(BytecodeJumps, ZeroIterationLoopSkipsBody) {
  storage::Database db;
  TypeFactory types;
  Function fn("f", &types);
  Builder b(&fn);
  Stmt* n = b.VarNew(b.I64(7));
  b.ForRange(b.I64(5), b.I64(3),
             [&](Stmt* i) { b.VarAssign(n, b.Add(b.VarRead(n), i)); });
  b.EmitRow({b.VarRead(n)});
  exec::Interpreter interp(&db);
  EXPECT_EQ(interp.Run(fn).row(0)[0].i, 7);
}

TEST(BytecodeJumps, WhileLowersToBackwardJump) {
  storage::Database db;
  TypeFactory types;
  Function fn("f", &types);
  Builder b(&fn);
  Stmt* x = b.VarNew(b.I64(1));
  b.While([&] { return b.Lt(b.VarRead(x), b.I64(1000)); },
          [&] { b.VarAssign(x, b.Mul(b.VarRead(x), b.I64(2))); });
  b.EmitRow({b.VarRead(x)});

  BytecodeProgram prog = BytecodeCompiler(&db).Compile(fn);
  ExpectJumpsInBounds(prog);
  // While back edges lower to kJmpSp (a governance-safepoint jump).
  bool has_backward = false;
  for (const exec::Insn& insn : prog.code) {
    if (insn.op == static_cast<uint16_t>(BcOp::kJmpSp) && insn.d < 0) {
      has_backward = true;
    }
  }
  EXPECT_TRUE(has_backward);
  exec::Interpreter interp(&db);
  EXPECT_EQ(interp.Run(fn).row(0)[0].i, 1024);
}

// --------------------------------------------------------------------------
// Constant presets
// --------------------------------------------------------------------------

TEST(BytecodePresets, ConstantsCostNoInstructions) {
  storage::Database db;
  TypeFactory types;
  Function fn("f", &types);
  Builder b(&fn);
  // Several distinct constants; none may appear as loads in the loop.
  Stmt* sum = b.VarNew(b.I64(0));
  b.ForRange(b.I64(0), b.I64(10), [&](Stmt* i) {
    b.VarAssign(sum, b.Add(b.VarRead(sum), b.Mul(i, b.I64(3))));
  });
  b.EmitRow({b.VarRead(sum), b.F64(2.5), b.StrC("tag")});

  BytecodeProgram prog = BytecodeCompiler(&db).Compile(fn);
  EXPECT_GE(prog.presets.size(), 4u);  // 0, 10, 3, 2.5, "tag" (CSE may share)
  exec::Interpreter interp(&db);
  storage::ResultTable r = interp.Run(fn);
  EXPECT_EQ(r.row(0)[0].i, 135);
  EXPECT_DOUBLE_EQ(r.row(0)[1].d, 2.5);
  EXPECT_STREQ(r.row(0)[2].s, "tag");
}

// --------------------------------------------------------------------------
// Fused super-instructions
// --------------------------------------------------------------------------

storage::Database ScanDb() {
  storage::Database db;
  storage::TableDef t;
  t.name = "T";
  t.columns = {{"k", storage::ColType::kI64},
               {"v", storage::ColType::kF64}};
  storage::Table* tt = db.AddTable(t);
  for (int i = 0; i < 100; ++i) {
    tt->column(0).data.push_back(SlotI(i % 17));
    tt->column(1).data.push_back(SlotD(i * 0.25));
  }
  return db;
}

TEST(BytecodeFusion, ColumnScanFilterFusesToOneBranch) {
  storage::Database db = ScanDb();
  TypeFactory types;
  Function fn("f", &types);
  Builder b(&fn);
  Stmt* count = b.VarNew(b.I64(0));
  b.ForRange(b.I64(0), b.TableRows(0), [&](Stmt* row) {
    Stmt* k = b.ColGet(0, 0, row, types.I64());
    b.If(b.Lt(k, b.I64(5)),
         [&] { b.VarAssign(count, b.Add(b.VarRead(count), b.I64(1))); });
  });
  b.EmitRow({b.VarRead(count)});

  BytecodeProgram prog = BytecodeCompiler(&db).Compile(fn);
  // col_get + compare + branch collapse into one super-instruction: no
  // standalone kColGet, no materialized boolean.
  EXPECT_EQ(CountOp(prog, BcOp::kJnColLtI), 1);
  EXPECT_EQ(CountOp(prog, BcOp::kColGet), 0);
  EXPECT_EQ(CountOp(prog, BcOp::kLtI), 0);
  EXPECT_GE(prog.fused, 2);
  ExpectEnginesAgree(&db, fn, "fused scan filter");
  exec::Interpreter interp(&db);
  EXPECT_EQ(interp.Run(fn).row(0)[0].i, 30);  // k in {0..4}: 6*5 rows
}

TEST(BytecodeFusion, FlattenedConjunctionBecomesBranchCascade) {
  storage::Database db = ScanDb();
  TypeFactory types;
  Function fn("f", &types);
  Builder b(&fn);
  Stmt* count = b.VarNew(b.I64(0));
  b.ForRange(b.I64(0), b.TableRows(0), [&](Stmt* row) {
    Stmt* k = b.ColGet(0, 0, row, types.I64());
    Stmt* v = b.ColGet(0, 1, row, types.F64());
    // The cond_flatten idiom: predicates combined with BitAnd.
    Stmt* cond = b.BitAnd(b.Ge(k, b.I64(2)), b.Lt(v, b.F64(20.0)));
    b.If(cond,
         [&] { b.VarAssign(count, b.Add(b.VarRead(count), b.I64(1))); });
  });
  b.EmitRow({b.VarRead(count)});

  BytecodeProgram prog = BytecodeCompiler(&db).Compile(fn);
  // Both conjuncts become fused column-compare branches; the BitAnd and the
  // boolean registers disappear.
  EXPECT_EQ(CountOp(prog, BcOp::kJnColGeI) + CountOp(prog, BcOp::kJnColLtF),
            2);
  EXPECT_EQ(CountOp(prog, BcOp::kBitAnd), 0);
  ExpectEnginesAgree(&db, fn, "branch cascade");
}

TEST(BytecodeFusion, RecordAccumulateFuses) {
  storage::Database db;
  TypeFactory types;
  Function fn("f", &types);
  Builder b(&fn);
  const ir::Type* rec = types.Record("Acc", {{"sum", types.I64()}});
  Stmt* r = b.RecNew(rec, {b.I64(0)});
  b.ForRange(b.I64(1), b.I64(11), [&](Stmt* i) {
    b.RecSet(r, 0, b.Add(b.RecGet(r, 0), i));
  });
  b.EmitRow({b.RecGet(r, 0)});

  BytecodeProgram prog = BytecodeCompiler(&db).Compile(fn);
  EXPECT_EQ(CountOp(prog, BcOp::kRecAccAddI), 1);
  exec::Interpreter interp(&db);
  EXPECT_EQ(interp.Run(fn).row(0)[0].i, 55);
}

TEST(BytecodeFusion, ArrayAccumulateFuses) {
  storage::Database db;
  TypeFactory types;
  Function fn("f", &types);
  Builder b(&fn);
  Stmt* arr = b.ArrNew(types.F64(), b.I64(4));
  b.ForRange(b.I64(0), b.I64(20), [&](Stmt* i) {
    Stmt* slot = b.Mod(i, b.I64(4));
    b.ArrSet(arr, slot, b.Add(b.ArrGet(arr, slot), b.F64(0.5)));
  });
  b.ForRange(b.I64(0), b.I64(4),
             [&](Stmt* i) { b.EmitRow({b.ArrGet(arr, i)}); });

  BytecodeProgram prog = BytecodeCompiler(&db).Compile(fn);
  EXPECT_EQ(CountOp(prog, BcOp::kArrAccAddF), 1);
  exec::Interpreter interp(&db);
  storage::ResultTable res = interp.Run(fn);
  for (int i = 0; i < 4; ++i) EXPECT_DOUBLE_EQ(res.row(i)[0].d, 2.5);
}

// --------------------------------------------------------------------------
// Comparator subroutines and string interning
// --------------------------------------------------------------------------

TEST(BytecodeVm, SortComparatorRunsAsSubroutine) {
  storage::Database db;
  TypeFactory types;
  Function fn("f", &types);
  Builder b(&fn);
  Stmt* list = b.ListNew(types.I64());
  int64_t vals[] = {9, 1, 8, 2, 7, 3};
  for (int64_t v : vals) b.ListAppend(list, b.I64(v));
  b.ListSortBy(list, [&](Stmt* x, Stmt* y) { return b.Lt(x, y); });
  b.ListForeach(list, [&](Stmt* e) { b.EmitRow({e}); });

  BytecodeProgram prog = BytecodeCompiler(&db).Compile(fn);
  EXPECT_EQ(CountOp(prog, BcOp::kListSort), 1);
  EXPECT_GE(CountOp(prog, BcOp::kRet), 2);  // program end + subroutine
  ExpectEnginesAgree(&db, fn, "list sort");
  exec::Interpreter interp(&db);
  storage::ResultTable r = interp.Run(fn);
  int64_t expect[] = {1, 2, 3, 7, 8, 9};
  for (int i = 0; i < 6; ++i) EXPECT_EQ(r.row(i)[0].i, expect[i]);
}

TEST(BytecodeVm, EmittedStringsAreInterned) {
  storage::Database db;
  TypeFactory types;
  Function fn("f", &types);
  Builder b(&fn);
  Stmt* s = b.StrC("hello world");
  b.EmitRow({b.StrSubstr(s, 0, 5), b.StrLen(s)});
  ExpectEnginesAgree(&db, fn, "string interning");
  exec::Interpreter interp(&db);
  storage::ResultTable r = interp.Run(fn);
  EXPECT_STREQ(r.row(0)[0].s, "hello");
  EXPECT_EQ(r.row(0)[1].i, 11);
}

// While-condition branch fusion: the loop-exit test branches on the
// comparison directly — no materialized boolean, no generic kJz.
TEST(BytecodeFusion, WhileConditionFusesToBranch) {
  storage::Database db;
  TypeFactory types;
  Function fn("f", &types);
  Builder b(&fn);
  Stmt* x = b.VarNew(b.I64(1));
  b.While([&] { return b.Lt(b.VarRead(x), b.I64(1000)); },
          [&] { b.VarAssign(x, b.Mul(b.VarRead(x), b.I64(2))); });
  b.EmitRow({b.VarRead(x)});

  BytecodeProgram prog = BytecodeCompiler(&db).Compile(fn);
  ExpectJumpsInBounds(prog);
  EXPECT_EQ(CountOp(prog, BcOp::kLtI), 0);
  EXPECT_EQ(CountOp(prog, BcOp::kJz), 0);
  EXPECT_EQ(CountOp(prog, BcOp::kJnLtI), 1);
  ExpectEnginesAgree(&db, fn, "fused while condition");
  exec::Interpreter interp(&db);
  EXPECT_EQ(interp.Run(fn).row(0)[0].i, 1024);
}

// The hash-chain probe loop (`while (!is_null(cur))` over intrusive next
// pointers, Q3 at the 5-level stack) must fuse its null test into the exit
// branch: no kIsNull/kNot instructions survive anywhere in the program.
TEST(BytecodeFusion, HashChainProbeWhileFusesNullTest) {
  storage::Database db = tpch::MakeTpchDatabase(0.002, 7);
  qplan::PlanPtr plan = tpch::MakeQuery(3);
  qplan::ResolvePlan(plan.get(), db);
  TypeFactory types;
  compiler::QueryCompiler qc(&db, &types);
  compiler::CompileResult res = qc.Compile(*plan, StackConfig::Level(5), "q3");
  BytecodeProgram prog = BytecodeCompiler(&db).Compile(*res.fn);
  EXPECT_EQ(CountOp(prog, BcOp::kIsNull), 0);
  EXPECT_EQ(CountOp(prog, BcOp::kNot), 0);
}

// Repeated Run() calls on one Interpreter must reuse the cached program and
// still produce fresh, correct results.
TEST(BytecodeVm, RepeatedRunsReuseCachedProgram) {
  storage::Database db;
  TypeFactory types;
  Function fn("f", &types);
  Builder b(&fn);
  Stmt* sum = b.VarNew(b.I64(0));
  b.ForRange(b.I64(0), b.I64(5),
             [&](Stmt* i) { b.VarAssign(sum, b.Add(b.VarRead(sum), i)); });
  b.EmitRow({b.VarRead(sum)});
  exec::Interpreter interp(&db);
  for (int rep = 0; rep < 3; ++rep) {
    storage::ResultTable r = interp.Run(fn);
    ASSERT_EQ(r.size(), 1u);
    EXPECT_EQ(r.row(0)[0].i, 10) << "rep " << rep;
  }
}

// --------------------------------------------------------------------------
// JIT backend (src/jit/): bit-exact agreement with the bytecode VM.
// --------------------------------------------------------------------------

InterpOptions Jit(int threads = 1) {
  InterpOptions o;
  o.engine = InterpOptions::Engine::kJit;
  o.num_threads = threads;
  return o;
}

// All 22 TPC-H queries at SF 0.01, both stack levels (pipelined
// ScaLite[Map,List] and the full 5-level stack), threads {1, 4}: the JIT
// engine must agree with the sequential bytecode VM bit-for-bit, including
// the Figure 8 AllocStats.
class JitTpchTest : public ::testing::TestWithParam<int> {
 protected:
  static storage::Database* db() {
    static storage::Database* db =
        new storage::Database(tpch::MakeTpchDatabase(0.01));
    return db;
  }

  static void CheckJitAgrees(const Function& fn, const std::string& tag) {
    exec::Interpreter ref(db(), Bytecode());
    storage::ResultTable want = ref.Run(fn);
    exec::AllocStats want_stats = ref.stats();
    for (int threads : {1, 4}) {
      exec::Interpreter jit(db(), Jit(threads));
      storage::ResultTable got = jit.Run(fn);
      std::string t = tag + " jit threads=" + std::to_string(threads);
      ExpectBitExact(got, want, t);
      EXPECT_EQ(jit.stats().heap_bytes, want_stats.heap_bytes) << t;
      EXPECT_EQ(jit.stats().heap_allocs, want_stats.heap_allocs) << t;
      EXPECT_EQ(jit.stats().pool_bytes, want_stats.pool_bytes) << t;
      EXPECT_EQ(jit.stats().vector_bytes, want_stats.vector_bytes) << t;
    }
  }
};

TEST_P(JitTpchTest, BitExactBothStackLevels) {
  int q = GetParam();
  qplan::PlanPtr plan = tpch::MakeQuery(q);
  qplan::ResolvePlan(plan.get(), *db());
  {
    ir::TypeFactory types;
    auto fn = lower::LowerPlanPipelined(*plan, *db(), &types,
                                        "q" + std::to_string(q));
    CheckJitAgrees(*fn, "Q" + std::to_string(q) + " L3");
  }
  {
    ir::TypeFactory types;
    QueryCompiler qc(db(), &types);
    compiler::CompileResult res =
        qc.Compile(*plan, StackConfig::Level(5), "q" + std::to_string(q));
    CheckJitAgrees(*res.fn, "Q" + std::to_string(q) + " L5");
  }
}

INSTANTIATE_TEST_SUITE_P(AllQueries, JitTpchTest, ::testing::Range(1, 23));

// A template-less opcode (kStrLen) in the middle of an otherwise JIT'able
// loop forces a deopt boundary every iteration: native -> VM -> native.
// Results must stay identical, and the stitched program must show the hole.
TEST(JitDeopt, TemplateLessOpcodeMidFunction) {
  storage::Database db;
  TypeFactory types;
  Function fn("f", &types);
  Builder b(&fn);
  Stmt* s = b.StrC("deopt boundary");
  Stmt* sum = b.VarNew(b.I64(0));
  b.ForRange(b.I64(0), b.I64(100), [&](Stmt* i) {
    Stmt* len = b.StrLen(s);  // no template: re-enters the VM mid-loop
    b.VarAssign(sum, b.Add(b.VarRead(sum), b.Mul(i, len)));
  });
  b.EmitRow({b.VarRead(sum)});

  BytecodeProgram prog = BytecodeCompiler(&db).Compile(fn);
  if (exec::jit::JitAvailable()) {
    auto jp = exec::jit::JitProgram::Compile(prog);
    ASSERT_NE(jp, nullptr);
    EXPECT_GT(jp->num_native(), 0);
    bool strlen_deopts = false;
    bool neighbors_native = true;
    for (size_t pc = 0; pc < prog.code.size(); ++pc) {
      if (prog.code[pc].op == static_cast<uint16_t>(BcOp::kStrLen)) {
        strlen_deopts = !jp->HasEntry(static_cast<uint32_t>(pc));
        if (pc > 0) neighbors_native &= jp->HasEntry(pc - 1);
        neighbors_native &= jp->HasEntry(pc + 1);
      }
    }
    EXPECT_TRUE(strlen_deopts);
    EXPECT_TRUE(neighbors_native);
  }
  exec::Interpreter bc(&db, Bytecode());
  exec::Interpreter jit(&db, Jit());
  storage::ResultTable want = bc.Run(fn);
  storage::ResultTable got = jit.Run(fn);
  ExpectBitExact(got, want, "deopt boundary");
  EXPECT_EQ(want.row(0)[0].i, 4950 * 14);
}

// Sort comparators run as subroutines from a deopt'd sort instruction; the
// comparator body itself re-enters native code. Interleaves both directions.
TEST(JitDeopt, SortComparatorCrossesBoundary) {
  storage::Database db;
  TypeFactory types;
  Function fn("f", &types);
  Builder b(&fn);
  Stmt* list = b.ListNew(types.I64());
  int64_t vals[] = {5, 3, 9, 1, 12, 7, 2};
  for (int64_t v : vals) b.ListAppend(list, b.I64(v));
  b.ListSortBy(list, [&](Stmt* x, Stmt* y) { return b.Gt(x, y); });
  b.ListForeach(list, [&](Stmt* e) { b.EmitRow({e}); });
  exec::Interpreter bc(&db, Bytecode());
  exec::Interpreter jit(&db, Jit());
  ExpectBitExact(jit.Run(fn), bc.Run(fn), "jit sort comparator");
}

// --------------------------------------------------------------------------
// Native templates for the deopt-dominated families: hash probes, string
// comparisons, kLogRow, kEmit, and the allocating helper-call opcodes.
// --------------------------------------------------------------------------

std::vector<uint32_t> PcsOf(const BytecodeProgram& prog, BcOp op) {
  std::vector<uint32_t> pcs;
  for (size_t pc = 0; pc < prog.code.size(); ++pc) {
    if (prog.code[pc].op == static_cast<uint16_t>(op)) {
      pcs.push_back(static_cast<uint32_t>(pc));
    }
  }
  return pcs;
}

void ExpectOpNative(const BytecodeProgram& prog,
                    const exec::jit::JitProgram& jp, BcOp op) {
  std::vector<uint32_t> pcs = PcsOf(prog, op);
  EXPECT_FALSE(pcs.empty()) << BcOpName(op) << " absent from program";
  for (uint32_t pc : pcs) {
    EXPECT_TRUE(jp.HasEntry(pc)) << BcOpName(op) << " deopts at pc " << pc;
  }
}

// GOEU probe loop over i64 keys: 1000 distinct keys grow the map through
// several rehashes (16 -> 1024+ buckets) while the inline probe template
// keeps finding through the live bucket array — resize mid-loop needs no
// invalidation because the mask and bucket base are re-read per probe.
TEST(JitNative, I64MapProbeInlinesAndSurvivesRehash) {
  storage::Database db;
  TypeFactory types;
  Function fn("f", &types);
  Builder b(&fn);
  Stmt* map = b.MapNew(types.I64(), types.I64());
  Stmt* total = b.VarNew(b.I64(0));
  b.ForRange(b.I64(0), b.I64(5000), [&](Stmt* i) {
    Stmt* k = b.Mod(i, b.I64(1000));
    Stmt* v = b.MapGetOrElseUpdate(map, k, [&] { return b.Mul(k, b.I64(3)); });
    b.VarAssign(total, b.Add(b.VarRead(total), v));
  });
  b.EmitRow({b.VarRead(total), b.MapSize(map)});

  BytecodeProgram prog = BytecodeCompiler(&db).Compile(fn);
  for (uint32_t pc : PcsOf(prog, BcOp::kMapFind)) {
    EXPECT_EQ(prog.code[pc].d, exec::kMapKeyI64);
  }
  if (exec::jit::JitAvailable()) {
    auto jp = exec::jit::JitProgram::Compile(prog);
    ASSERT_NE(jp, nullptr);
    ExpectOpNative(prog, *jp, BcOp::kMapFind);
    ExpectOpNative(prog, *jp, BcOp::kMapInsert);
    ExpectOpNative(prog, *jp, BcOp::kMapNodeVal);
    ExpectOpNative(prog, *jp, BcOp::kMapSize);
  }
  exec::Interpreter bc(&db, Bytecode());
  exec::Interpreter jit(&db, Jit());
  ExpectBitExact(jit.Run(fn), bc.Run(fn), "i64 map probe");
}

storage::Database StrKeyDb() {
  storage::Database db;
  storage::TableDef t;
  t.name = "S";
  t.columns = {{"k", storage::ColType::kStr},
               {"v", storage::ColType::kI64}};
  storage::Table* tt = db.AddTable(t);
  static const char* kNames[] = {"alpha", "beta", "gamma", "delta", "beta"};
  for (int i = 0; i < 200; ++i) {
    tt->column(0).data.push_back(SlotS(kNames[i % 5]));
    tt->column(1).data.push_back(SlotI(i));
  }
  return db;
}

// String-keyed maps take the *generic* probe variant (typed SlotHasher via
// helper call): the probe pcs are still native — no deopt — but flagged
// kMapKeyOther by the compiler.
TEST(JitNative, StringKeyProbeUsesGenericVariant) {
  storage::Database db = StrKeyDb();
  TypeFactory types;
  Function fn("f", &types);
  Builder b(&fn);
  Stmt* map = b.MapNew(types.Str(), types.I64());
  b.ForRange(b.I64(0), b.TableRows(0), [&](Stmt* row) {
    Stmt* k = b.ColGet(0, 0, row, types.Str());
    Stmt* cnt = b.MapGetOrElseUpdate(map, k, [&] { return b.I64(0); });
    (void)cnt;
    Stmt* probe = b.MapGetOrNull(map, k);
    b.If(b.Not(b.IsNull(probe)), [&] {});
  });
  b.EmitRow({b.MapSize(map)});

  BytecodeProgram prog = BytecodeCompiler(&db).Compile(fn);
  for (uint32_t pc : PcsOf(prog, BcOp::kMapFind)) {
    EXPECT_EQ(prog.code[pc].d, exec::kMapKeyOther);
  }
  if (exec::jit::JitAvailable()) {
    auto jp = exec::jit::JitProgram::Compile(prog);
    ASSERT_NE(jp, nullptr);
    ExpectOpNative(prog, *jp, BcOp::kMapFind);
    ExpectOpNative(prog, *jp, BcOp::kMapGetOrNull);
  }
  exec::Interpreter bc(&db, Bytecode());
  exec::Interpreter jit(&db, Jit());
  ExpectBitExact(jit.Run(fn), bc.Run(fn), "string key generic probe");
}

// Non-dict string comparisons against constants (strcmp-helper path, with
// the pointer-equality fast path for interned operands), plus the
// pattern-precompiled kStrLike — all native, bit-exact with the VM.
TEST(JitNative, StringCompareTemplates) {
  storage::Database db = StrKeyDb();
  TypeFactory types;
  Function fn("f", &types);
  Builder b(&fn);
  Stmt* eq_n = b.VarNew(b.I64(0));
  Stmt* like_n = b.VarNew(b.I64(0));
  Stmt* ptr_n = b.VarNew(b.I64(0));
  b.ForRange(b.I64(0), b.TableRows(0), [&](Stmt* row) {
    Stmt* k = b.ColGet(0, 0, row, types.Str());
    // Non-dict path: content comparison against an unrelated constant.
    b.If(b.StrEq(k, b.StrC("beta")),
         [&] { b.VarAssign(eq_n, b.Add(b.VarRead(eq_n), b.I64(1))); });
    // Interned path: both operands are the same column read — the
    // template's pointer-equality fast path must still report equal.
    Stmt* k2 = b.ColGet(0, 0, row, types.Str());
    b.If(b.StrEq(k, k2),
         [&] { b.VarAssign(ptr_n, b.Add(b.VarRead(ptr_n), b.I64(1))); });
    b.If(b.StrLike(k, "%t%a%"),
         [&] { b.VarAssign(like_n, b.Add(b.VarRead(like_n), b.I64(1))); });
  });
  b.EmitRow({b.VarRead(eq_n), b.VarRead(ptr_n), b.VarRead(like_n)});

  BytecodeProgram prog = BytecodeCompiler(&db).Compile(fn);
  if (exec::jit::JitAvailable()) {
    auto jp = exec::jit::JitProgram::Compile(prog);
    ASSERT_NE(jp, nullptr);
    ExpectOpNative(prog, *jp, BcOp::kStrEq);
    ExpectOpNative(prog, *jp, BcOp::kStrLike);
  }
  exec::Interpreter bc(&db, Bytecode());
  exec::Interpreter jit(&db, Jit());
  storage::ResultTable want = bc.Run(fn);
  storage::ResultTable got = jit.Run(fn);
  ExpectBitExact(got, want, "string compares");
  EXPECT_EQ(want.row(0)[0].i, 80);   // "beta" at i%5 in {1,4}
  EXPECT_EQ(want.row(0)[1].i, 200);  // self-compare always true
  EXPECT_EQ(want.row(0)[2].i, 120);  // %t%a%: beta (x2 per cycle), delta
}

// The Q13/Q20 shapes that previously ping-ponged between native code and
// the VM: every probe, string, allocation, and emit pc must be native at
// the 5-level stack, and results stay bit-exact at threads {1, 4}.
TEST(JitNative, Q13Q20DeoptGapClosed) {
  storage::Database db = tpch::MakeTpchDatabase(0.01);
  for (int q : {13, 20}) {
    qplan::PlanPtr plan = tpch::MakeQuery(q);
    qplan::ResolvePlan(plan.get(), db);
    ir::TypeFactory types;
    QueryCompiler qc(&db, &types);
    compiler::CompileResult res =
        qc.Compile(*plan, StackConfig::Level(5), "q" + std::to_string(q));
    ir::ParallelInfo par = ir::AnalyzeParallelism(*res.fn);
    BytecodeProgram prog = BytecodeCompiler(&db).Compile(*res.fn, &par);
    if (exec::jit::JitAvailable()) {
      auto jp = exec::jit::JitProgram::Compile(prog);
      ASSERT_NE(jp, nullptr);
      for (BcOp op : {BcOp::kMapFind, BcOp::kMapGetOrNull,
                      BcOp::kMMapGetOrNull, BcOp::kStrLike, BcOp::kStrEq,
                      BcOp::kEmit, BcOp::kRecNew, BcOp::kPoolRecNew,
                      BcOp::kMapInsert, BcOp::kMMapAdd, BcOp::kListAppend,
                      BcOp::kMapEntryKV}) {
        for (uint32_t pc : PcsOf(prog, op)) {
          EXPECT_TRUE(jp->HasEntry(pc))
              << "Q" << q << ": " << BcOpName(op) << " deopts at pc " << pc;
        }
      }
    }
    exec::Interpreter bc(&db, Bytecode());
    storage::ResultTable want = bc.Run(*res.fn);
    for (int threads : {1, 4}) {
      exec::Interpreter jit(&db, Jit(threads));
      ExpectBitExact(jit.Run(*res.fn), want,
                     "Q" + std::to_string(q) + " t" + std::to_string(threads));
    }
  }
}

// Morsel-fragment scan loops must be deopt-free: with kLogRow (and the
// allocating ops) native, every pc of every fragment — entry through its
// kRet — has native code on Q1 and Q6 at the 5-level stack.
TEST(JitNative, MorselFragmentsDeoptFree) {
  if (!exec::jit::JitAvailable()) GTEST_SKIP();
  storage::Database db = tpch::MakeTpchDatabase(0.01);
  for (int q : {1, 6}) {
    qplan::PlanPtr plan = tpch::MakeQuery(q);
    qplan::ResolvePlan(plan.get(), db);
    ir::TypeFactory types;
    QueryCompiler qc(&db, &types);
    compiler::CompileResult res =
        qc.Compile(*plan, StackConfig::Level(5), "q" + std::to_string(q));
    ir::ParallelInfo par = ir::AnalyzeParallelism(*res.fn);
    BytecodeProgram prog = BytecodeCompiler(&db).Compile(*res.fn, &par);
    ASSERT_FALSE(prog.par_loops.empty()) << "Q" << q;
    auto jp = exec::jit::JitProgram::Compile(prog);
    ASSERT_NE(jp, nullptr);
    for (const exec::ParLoopCode& plc : prog.par_loops) {
      uint32_t pc = plc.entry;
      while (true) {
        EXPECT_TRUE(jp->HasEntry(pc))
            << "Q" << q << " fragment deopts at pc " << pc << " ("
            << BcOpName(static_cast<BcOp>(prog.code[pc].op)) << ")";
        if (prog.code[pc].op == static_cast<uint16_t>(BcOp::kRet)) break;
        ++pc;
      }
    }
  }
}

// kLogRow grow path: a channel appending from an inner loop logs more
// than one entry per row, overflowing the one-entry-per-row reserve — the
// native append's grow helper (not a deopt) must keep results and
// AllocStats bit-identical across engines and thread counts.
TEST(JitLogRow, InnerLoopChannelGrowsPastReserve) {
  storage::Database db = ScanDb();
  TypeFactory types;
  Function fn("f", &types);
  Builder b(&fn);
  Stmt* total = b.VarNew(b.F64(0.0));
  b.ForRange(b.I64(0), b.TableRows(0), [&](Stmt* row) {
    Stmt* v = b.ColGet(0, 1, row, types.F64());
    b.ForRange(b.I64(0), b.I64(3), [&](Stmt* j) {
      Stmt* w = b.Add(v, b.Cast(j, types.F64()));
      b.VarAssign(total, b.Add(b.VarRead(total), w));
    });
  });
  b.EmitRow({b.VarRead(total)});

  ir::ParallelInfo par = ir::AnalyzeParallelism(fn);
  BytecodeProgram prog = BytecodeCompiler(&db).Compile(fn, &par);
  ASSERT_GE(CountOp(prog, BcOp::kLogRow), 1)
      << "inner-loop f64 sum no longer forms a log channel; the grow-path "
         "coverage of this test is gone";

  exec::Interpreter ref(&db, Bytecode());
  storage::ResultTable want = ref.Run(fn);
  for (int threads : {1, 4}) {
    InterpOptions o = Jit(threads);
    o.morsel_rows = 8;  // tiny morsels: reserve = 8 entries, logged = 24
    exec::Interpreter jit(&db, o);
    ExpectBitExact(jit.Run(fn), want, "log grow t" + std::to_string(threads));
    EXPECT_EQ(jit.stats().heap_bytes, ref.stats().heap_bytes);
    EXPECT_EQ(jit.stats().vector_bytes, ref.stats().vector_bytes);
  }
}

// QC_JIT_DISABLE degrades kJit to the plain bytecode VM — selecting the
// engine must stay safe (and correct) with the JIT forced off.
TEST(JitDeopt, DisableKnobDegradesToBytecode) {
  ::setenv("QC_JIT_DISABLE", "1", 1);
  EXPECT_FALSE(exec::jit::JitAvailable());
  storage::Database db;
  TypeFactory types;
  Function fn("f", &types);
  Builder b(&fn);
  Stmt* sum = b.VarNew(b.I64(0));
  b.ForRange(b.I64(0), b.I64(50),
             [&](Stmt* i) { b.VarAssign(sum, b.Add(b.VarRead(sum), i)); });
  b.EmitRow({b.VarRead(sum)});
  exec::Interpreter jit(&db, Jit());
  EXPECT_EQ(jit.Run(fn).row(0)[0].i, 1225);
  ::unsetenv("QC_JIT_DISABLE");
}

}  // namespace
}  // namespace qc
