// Robustness suite for the serving daemon (src/server/): admission control,
// queue deadlines, kill-on-disconnect, retry/backoff, graceful degradation,
// drain, and a chaos sweep over the srv_* network fault sites. Every test
// runs a real Server on an ephemeral loopback port and talks to it over
// real sockets — the same bytes a production client would send.

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <functional>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "common/fault.h"
#include "compiler/compiler.h"
#include "exec/interp.h"
#include "qplan/plan.h"
#include "server/protocol.h"
#include "server/server.h"
#include "tpch/datagen.h"
#include "tpch/queries.h"

namespace qc::server {
namespace {

storage::Database* Db() {
  static storage::Database* db =
      new storage::Database(tpch::MakeTpchDatabase(0.01));
  return db;
}

// Canonical expected rows: compile at `level`, run on the ungoverned VM.
std::string RefRows(int q, int level) {
  ir::TypeFactory types;
  qplan::PlanPtr plan = tpch::MakeQuery(q);
  qplan::ResolvePlan(plan.get(), *Db());
  compiler::QueryCompiler qc(Db(), &types);
  compiler::CompileResult res =
      qc.Compile(*plan, compiler::StackConfig::Level(level), "ref");
  exec::Interpreter interp(Db());
  return RenderRows(interp.Run(*res.fn));
}

struct ScopedFault {
  explicit ScopedFault(const char* spec) {
    ::setenv("QC_FAULT", spec, 1);
    FaultReArm();
  }
  ~ScopedFault() {
    ::unsetenv("QC_FAULT");
    FaultReArm();
  }
};

ServerOptions TestOptions() {
  ServerOptions o;
  o.port = 0;
  o.workers = 1;
  o.queue_capacity = 8;
  o.debug_endpoints = true;
  o.default_jit = false;  // deterministic engine for byte-exact comparisons
  return o;
}

int64_t NowMs() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

bool WaitFor(const std::function<bool()>& pred, int timeout_ms = 10000) {
  int64_t deadline = NowMs() + timeout_ms;
  while (NowMs() < deadline) {
    if (pred()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  return pred();
}

// --- minimal socket client -------------------------------------------------

int ConnectTo(int port) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in a;
  std::memset(&a, 0, sizeof(a));
  a.sin_family = AF_INET;
  a.sin_port = htons(static_cast<uint16_t>(port));
  a.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&a), sizeof(a)), 0);
  return fd;
}

// Tolerates resets mid-send (chaos sweep tears connections down under us).
bool SendAll(int fd, const std::string& s) {
  const char* p = s.data();
  size_t left = s.size();
  while (left > 0) {
    ssize_t n = ::send(fd, p, left, MSG_NOSIGNAL);
    if (n <= 0) return false;
    p += n;
    left -= static_cast<size_t>(n);
  }
  return true;
}

// Reads until `done(buf)` or timeout/EOF; returns whatever arrived.
std::string RecvUntil(int fd, const std::function<bool(const std::string&)>& done,
                      int timeout_ms = 15000) {
  std::string buf;
  int64_t deadline = NowMs() + timeout_ms;
  while (!done(buf)) {
    int64_t remain = deadline - NowMs();
    if (remain <= 0) break;
    pollfd p{fd, POLLIN, 0};
    int rc = ::poll(&p, 1, static_cast<int>(remain));
    if (rc <= 0) continue;
    char tmp[8192];
    ssize_t n = ::recv(fd, tmp, sizeof(tmp), 0);
    if (n <= 0) break;  // EOF or error: return what we have
    buf.append(tmp, static_cast<size_t>(n));
  }
  return buf;
}

// One complete line-protocol response: an ERR/PONG line, or an OK header
// followed by rows and the lone-"." terminator line.
bool LineRespComplete(const std::string& b) {
  if (b.compare(0, 3, "ERR") == 0 || b.compare(0, 4, "PONG") == 0) {
    return b.find('\n') != std::string::npos;
  }
  return b.find("\n.\n") != std::string::npos;
}

std::string LineRequest(int fd, const std::string& line, int timeout_ms = 15000) {
  if (!SendAll(fd, line)) return "";
  return RecvUntil(fd, LineRespComplete, timeout_ms);
}

struct HttpResp {
  bool complete = false;
  int code = 0;
  std::map<std::string, std::string> headers;
  std::string body;
};

HttpResp HttpReq(int port, const std::string& method, const std::string& target,
                 const std::string& extra_headers, int timeout_ms = 15000) {
  HttpResp r;
  int fd = ConnectTo(port);
  if (!SendAll(fd, method + " " + target + " HTTP/1.1\r\nHost: t\r\n" +
                       extra_headers + "\r\n")) {
    ::close(fd);
    return r;
  }
  auto done = [](const std::string& b) {
    size_t he = b.find("\r\n\r\n");
    if (he == std::string::npos) return false;
    size_t cl = b.find("Content-Length: ");
    if (cl == std::string::npos || cl > he) return true;  // malformed: stop
    size_t clen = std::strtoul(b.c_str() + cl + 16, nullptr, 10);
    return b.size() >= he + 4 + clen;
  };
  std::string raw = RecvUntil(fd, done, timeout_ms);
  ::close(fd);
  size_t he = raw.find("\r\n\r\n");
  if (he == std::string::npos) return r;
  r.complete = true;
  r.body = raw.substr(he + 4);
  std::string head = raw.substr(0, he);
  size_t sp = head.find(' ');
  if (sp != std::string::npos) r.code = std::atoi(head.c_str() + sp + 1);
  size_t pos = head.find("\r\n");
  while (pos != std::string::npos) {
    size_t end = head.find("\r\n", pos + 2);
    std::string line = head.substr(pos + 2, end == std::string::npos
                                                ? std::string::npos
                                                : end - pos - 2);
    size_t colon = line.find(": ");
    if (colon != std::string::npos) {
      r.headers[line.substr(0, colon)] = line.substr(colon + 2);
    }
    pos = end;
  }
  return r;
}

HttpResp HttpGet(int port, const std::string& target, int timeout_ms = 15000) {
  return HttpReq(port, "GET", target, "", timeout_ms);
}

// ---------------------------------------------------------------------------

TEST(ServerTest, ServesQueriesBitExactOnBothProtocols) {
  ServerOptions opts = TestOptions();
  opts.workers = 2;
  Server server(Db(), opts);
  ASSERT_TRUE(server.Start());

  HttpResp h = HttpGet(server.port(), "/query?q=1");
  ASSERT_TRUE(h.complete);
  EXPECT_EQ(h.code, 200);
  EXPECT_EQ(h.headers["X-QC-Status"], "ok");
  EXPECT_EQ(h.headers["X-QC-Engine"], "vm");
  EXPECT_EQ(h.body, RefRows(1, 5));

  // JIT-engine request: may degrade, must stay byte-exact either way.
  HttpResp j = HttpGet(server.port(), "/query?q=3&engine=jit");
  ASSERT_TRUE(j.complete);
  EXPECT_EQ(j.code, 200);
  EXPECT_EQ(j.body, RefRows(3, 5));

  // Same query over the line protocol: identical rows, OK framing.
  int fd = ConnectTo(server.port());
  std::string resp = LineRequest(fd, "QUERY 1\n");
  ::close(fd);
  ASSERT_EQ(resp.compare(0, 3, "OK "), 0) << resp;
  size_t nl = resp.find('\n');
  EXPECT_EQ(resp.substr(nl + 1, resp.size() - nl - 3), RefRows(1, 5));

  // Health and stats answer inline even while workers are free-running.
  HttpResp hz = HttpGet(server.port(), "/healthz");
  EXPECT_EQ(hz.code, 200);
  EXPECT_EQ(hz.body, "ok\n");
  HttpResp st = HttpGet(server.port(), "/stats");
  EXPECT_EQ(st.code, 200);
  EXPECT_NE(st.body.find("\"requests\""), std::string::npos);
  server.Stop();
}

TEST(ServerTest, ShedsWithOverloadedWhenAdmissionQueueIsFull) {
  ServerOptions opts = TestOptions();
  opts.workers = 1;
  opts.queue_capacity = 1;
  Server server(Db(), opts);
  ASSERT_TRUE(server.Start());

  // Occupy the only worker, then fill the 1-slot queue, then overflow it.
  int c1 = ConnectTo(server.port());
  ASSERT_TRUE(SendAll(c1, "BLOCK 3000\n"));
  ASSERT_TRUE(WaitFor([&] {
    return server.stats().requests.load() >= 1 && server.stats().ok.load() == 0;
  }));
  std::this_thread::sleep_for(std::chrono::milliseconds(200));  // worker pops

  int c2 = ConnectTo(server.port());
  ASSERT_TRUE(SendAll(c2, "BLOCK 100\n"));  // sits in the queue
  ASSERT_TRUE(WaitFor([&] { return server.stats().requests.load() >= 2; }));

  int c3 = ConnectTo(server.port());
  std::string resp = LineRequest(c3, "QUERY 1\n");
  EXPECT_EQ(resp.compare(0, 14, "ERR overloaded"), 0) << resp;
  EXPECT_GE(server.stats().shed_queue_full.load(), 1u);

  // The shed was immediate: the blocked worker is still busy.
  EXPECT_EQ(server.stats().ok.load(), 0u);
  ::close(c1);
  ::close(c2);
  ::close(c3);
  server.Stop();
}

TEST(ServerTest, ShedsRequestsWhoseQueueDeadlineExpired) {
  ServerOptions opts = TestOptions();
  opts.workers = 1;
  opts.queue_deadline_ms = 50;
  Server server(Db(), opts);
  ASSERT_TRUE(server.Start());

  int c1 = ConnectTo(server.port());
  ASSERT_TRUE(SendAll(c1, "BLOCK 800\n"));
  std::this_thread::sleep_for(std::chrono::milliseconds(150));

  // Queued behind an 800ms block with a 50ms queue deadline: by the time
  // the worker frees up, running it would serve a client that gave up.
  int c2 = ConnectTo(server.port());
  std::string resp = LineRequest(c2, "QUERY 1 deadline_ms=5000\n");
  EXPECT_EQ(resp.compare(0, 18, "ERR queue_deadline"), 0) << resp;
  EXPECT_EQ(server.stats().shed_queue_deadline.load(), 1u);
  ::close(c1);
  ::close(c2);
  server.Stop();
}

TEST(ServerTest, DisconnectCancelsInflightAndFreesTheWorker) {
  ServerOptions opts = TestOptions();
  opts.workers = 1;
  Server server(Db(), opts);
  ASSERT_TRUE(server.Start());

  int c1 = ConnectTo(server.port());
  ASSERT_TRUE(SendAll(c1, "BLOCK 8000\n"));
  ASSERT_TRUE(WaitFor([&] { return server.stats().requests.load() >= 1; }));
  std::this_thread::sleep_for(std::chrono::milliseconds(200));
  ::close(c1);  // client walks away mid-query

  ASSERT_TRUE(
      WaitFor([&] { return server.stats().disconnect_cancels.load() >= 1; }));

  // The kill must free the only worker long before the 8s block finishes.
  int64_t t0 = NowMs();
  int c2 = ConnectTo(server.port());
  std::string resp = LineRequest(c2, "QUERY 1\n", 5000);
  ::close(c2);
  EXPECT_EQ(resp.compare(0, 3, "OK "), 0) << resp;
  EXPECT_LT(NowMs() - t0, 4000);
  EXPECT_GE(server.stats().failed_cancelled.load(), 1u);
  server.Stop();
}

TEST(ServerTest, RetriesTransientResourceFailureWithinDeadline) {
  ServerOptions opts = TestOptions();
  opts.max_retries = 2;
  opts.retry_base_ms = 1;
  opts.retry_max_ms = 4;
  Server server(Db(), opts);
  ASSERT_TRUE(server.Start());

  // Warm the (q=1, level=2) plan so the armed run measures execution only.
  HttpResp warm = HttpGet(server.port(), "/query?q=1&level=2");
  ASSERT_EQ(warm.code, 200);

  // One-shot allocation fault: attempt 1 trips kResourceFailure, the
  // retry runs clean — the client sees success plus a retry count.
  ScopedFault fault("alloc_heap:1");
  HttpResp h = HttpGet(server.port(), "/query?q=1&level=2");
  ASSERT_TRUE(h.complete);
  EXPECT_EQ(h.code, 200);
  EXPECT_EQ(h.headers["X-QC-Status"], "ok");
  EXPECT_EQ(h.headers["X-QC-Retries"], "1");
  EXPECT_EQ(h.body, RefRows(1, 2));
  EXPECT_EQ(server.stats().retries.load(), 1u);
  EXPECT_EQ(server.stats().failed_resource.load(), 0u);
  server.Stop();
}

TEST(ServerTest, ExhaustedRetriesDownshiftThenRecover) {
  ServerOptions opts = TestOptions();
  opts.max_retries = 0;  // no retry budget: the failure surfaces
  opts.recover_ok = 2;
  Server server(Db(), opts);
  ASSERT_TRUE(server.Start());

  HttpResp warm = HttpGet(server.port(), "/query?q=1&level=2");
  ASSERT_EQ(warm.code, 200);

  {
    ScopedFault fault("alloc_heap:1");
    HttpResp h = HttpGet(server.port(), "/query?q=1&level=2");
    ASSERT_TRUE(h.complete);
    EXPECT_EQ(h.code, 503);  // transient by contract: retryable
    EXPECT_EQ(h.headers["X-QC-Status"],
              exec::QueryStatusName(exec::QueryStatusCode::kResourceFailure));
    EXPECT_EQ(h.headers["Retry-After"], "1");
  }
  EXPECT_GE(server.stats().failed_resource.load(), 1u);
  EXPECT_EQ(server.downshift_level(), 1);  // degraded, serving continues

  // Degraded-mode responses advertise the downshift; after recover_ok
  // consecutive successes the server steps back to full service.
  HttpResp d1 = HttpGet(server.port(), "/query?q=1&level=2");
  EXPECT_EQ(d1.code, 200);
  EXPECT_EQ(d1.headers["X-QC-Downshift"], "1");
  HttpResp d2 = HttpGet(server.port(), "/query?q=1&level=2");
  EXPECT_EQ(d2.code, 200);
  EXPECT_EQ(server.downshift_level(), 0);
  HttpResp d3 = HttpGet(server.port(), "/query?q=1&level=2");
  EXPECT_EQ(d3.headers["X-QC-Downshift"], "0");
  server.Stop();
}

TEST(ServerTest, DrainShedsNewRequestsAndCancelsStragglers) {
  ServerOptions opts = TestOptions();
  opts.workers = 1;
  opts.drain_deadline_ms = 100;
  Server server(Db(), opts);
  ASSERT_TRUE(server.Start());

  int c1 = ConnectTo(server.port());
  int c2 = ConnectTo(server.port());  // connect before the listener closes
  ASSERT_TRUE(SendAll(c1, "BLOCK 8000\n"));
  ASSERT_TRUE(WaitFor([&] { return server.stats().requests.load() >= 1; }));
  std::this_thread::sleep_for(std::chrono::milliseconds(200));

  server.BeginDrain();
  EXPECT_TRUE(server.draining());
  std::string resp = LineRequest(c2, "QUERY 1\n");
  EXPECT_EQ(resp.compare(0, 12, "ERR draining"), 0) << resp;
  EXPECT_GE(server.stats().shed_draining.load(), 1u);

  // The 8s block cannot finish inside the 100ms drain deadline: Drain must
  // cancel it through its control and report the unclean drain.
  EXPECT_FALSE(server.Drain());
  EXPECT_GE(server.stats().drain_kills.load(), 1u);
  std::string straggler = RecvUntil(c1, LineRespComplete, 5000);
  EXPECT_EQ(straggler.compare(0, 13, "ERR cancelled"), 0) << straggler;
  ::close(c1);
  ::close(c2);
  server.Stop();
}

TEST(ServerTest, DrainWithNoInflightWorkIsClean) {
  Server server(Db(), TestOptions());
  ASSERT_TRUE(server.Start());
  EXPECT_TRUE(server.Drain());
  EXPECT_EQ(server.stats().drain_kills.load(), 0u);
  server.Stop();
}

// --- telemetry endpoints ---------------------------------------------------

// Strips line framing: "OK ...\n<body>.\n" -> body.
std::string LineBody(const std::string& resp) {
  size_t nl = resp.find('\n');
  if (nl == std::string::npos || resp.size() < nl + 3) return "";
  return resp.substr(nl + 1, resp.size() - nl - 3);
}

// First sample value of `family` in Prometheus text ("family 123\n").
bool PromValue(const std::string& text, const std::string& family,
               long long* out) {
  size_t pos = 0;
  while (pos < text.size()) {
    size_t end = text.find('\n', pos);
    if (end == std::string::npos) end = text.size();
    if (text.compare(pos, family.size(), family) == 0 &&
        pos + family.size() < end && text[pos + family.size()] == ' ') {
      *out = std::strtoll(text.c_str() + pos + family.size() + 1, nullptr, 10);
      return true;
    }
    pos = end + 1;
  }
  return false;
}

bool JsonValue(const std::string& json, const std::string& key,
               long long* out) {
  std::string needle = "\"" + key + "\":";
  size_t pos = json.find(needle);
  if (pos == std::string::npos) return false;
  *out = std::strtoll(json.c_str() + pos + needle.size(), nullptr, 10);
  return true;
}

// /metrics and /stats must be two renderings of the same registry snapshot:
// after a scripted mix of outcomes (successes, a retry, a bad request),
// every /stats counter must equal its qc_server_* Prometheus family. Both
// are fetched over ONE line-protocol connection so no counter moves between
// the two reads (metadata requests are not admitted queries).
TEST(ServerTest, MetricsEndpointAgreesWithStats) {
  ServerOptions opts = TestOptions();
  opts.workers = 2;
  opts.max_retries = 2;
  opts.retry_base_ms = 1;
  opts.retry_max_ms = 4;
  Server server(Db(), opts);
  ASSERT_TRUE(server.Start());

  // Traffic mix: two successes, one retried transient failure, one
  // unroutable request.
  ASSERT_EQ(HttpGet(server.port(), "/query?q=1").code, 200);
  ASSERT_EQ(HttpGet(server.port(), "/query?q=3&level=2").code, 200);
  {
    ScopedFault fault("alloc_heap:1");
    EXPECT_EQ(HttpGet(server.port(), "/query?q=3&level=2").code, 200);
  }
  EXPECT_EQ(server.stats().retries.load(), 1u);
  EXPECT_EQ(HttpGet(server.port(), "/no_such_endpoint").code, 404);

  // The HTTP rendering carries the exposition-format content type and the
  // histogram family the JSON view cannot express.
  HttpResp prom = HttpGet(server.port(), "/metrics");
  ASSERT_EQ(prom.code, 200);
  EXPECT_EQ(prom.headers["Content-Type"], "text/plain; version=0.0.4");
  EXPECT_NE(prom.body.find("# TYPE qc_server_requests_total counter"),
            std::string::npos);
  EXPECT_NE(prom.body.find("qc_server_request_ms_bucket{le=\"+Inf\"}"),
            std::string::npos);
  EXPECT_NE(prom.body.find("qc_server_request_ms_count"), std::string::npos);
  // Engine-level globals ride along in the same exposition.
  EXPECT_NE(prom.body.find("qc_plan_cache_misses_total"), std::string::npos);

  int fd = ConnectTo(server.port());
  std::string metrics = LineBody(LineRequest(fd, "METRICS\n"));
  std::string stats = LineBody(LineRequest(fd, "STATS\n"));
  ::close(fd);
  ASSERT_FALSE(metrics.empty());
  ASSERT_FALSE(stats.empty());

  const char* kCounters[] = {
      "connections",      "requests",        "ok",
      "bad_requests",     "shed_queue_full", "shed_queue_deadline",
      "shed_draining",    "failed_deadline", "failed_cancelled",
      "failed_memory",    "failed_resource", "retries",
      "downshifts",       "disconnect_cancels",
      "drain_kills",      "jit_fallbacks",   "net_faults",
      "shed_quota",       "shed_client_queue", "cancels_by_id",
      "evicted_idle",     "evicted_stalled", "pipeline_limited",
      "conn_evicted",     "conn_refused"};
  for (const char* key : kCounters) {
    SCOPED_TRACE(key);
    long long from_json = -1, from_prom = -1;
    ASSERT_TRUE(JsonValue(stats, key, &from_json));
    ASSERT_TRUE(
        PromValue(metrics, std::string("qc_server_") + key + "_total",
                  &from_prom));
    EXPECT_EQ(from_json, from_prom);
  }
  long long level_json = -1, level_prom = -1;
  ASSERT_TRUE(JsonValue(stats, "downshift_level", &level_json));
  ASSERT_TRUE(PromValue(metrics, "qc_server_downshift_level", &level_prom));
  EXPECT_EQ(level_json, level_prom);

  // Spot-check the mix actually landed in both views.
  long long oks = 0, retries = 0, bad = 0;
  ASSERT_TRUE(JsonValue(stats, "ok", &oks));
  ASSERT_TRUE(JsonValue(stats, "retries", &retries));
  ASSERT_TRUE(JsonValue(stats, "bad_requests", &bad));
  EXPECT_GE(oks, 3);
  EXPECT_EQ(retries, 1);
  EXPECT_GE(bad, 1);
  server.Stop();
}

// ?trace=1 records the request's execution as a Chrome trace, returns its
// id in-band (X-QC-Trace / trace= token), and serves the JSON at
// /debug/trace/<id>; untraced requests stay byte-identical and unknown ids
// 404.
TEST(ServerTest, PerRequestTraceRoundTrip) {
  ServerOptions opts = TestOptions();
  Server server(Db(), opts);
  ASSERT_TRUE(server.Start());

  // Untraced request: no trace header at all.
  HttpResp plain = HttpGet(server.port(), "/query?q=1");
  ASSERT_EQ(plain.code, 200);
  EXPECT_EQ(plain.headers.count("X-QC-Trace"), 0u);

  HttpResp traced = HttpGet(server.port(), "/query?q=1&trace=1");
  ASSERT_EQ(traced.code, 200);
  EXPECT_EQ(traced.body, RefRows(1, 5));  // tracing never changes the rows
  ASSERT_EQ(traced.headers.count("X-QC-Trace"), 1u);
  std::string id = traced.headers["X-QC-Trace"];
  ASSERT_FALSE(id.empty());

  HttpResp trace = HttpGet(server.port(), "/debug/trace/" + id);
  ASSERT_EQ(trace.code, 200);
  EXPECT_EQ(trace.headers["Content-Type"], "application/json");
  EXPECT_NE(trace.body.find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(trace.body.find("\"name\":\"exec\""), std::string::npos);
  EXPECT_NE(trace.body.find("\"ph\":\"X\""), std::string::npos);

  EXPECT_EQ(HttpGet(server.port(), "/debug/trace/999999999").code, 404);
  EXPECT_EQ(HttpGet(server.port(), "/debug/trace/bogus").code, 404);

  // Same round trip over the line protocol: OK header advertises the id,
  // TRACE <id> fetches the JSON.
  int fd = ConnectTo(server.port());
  std::string resp = LineRequest(fd, "QUERY 1 trace=1\n");
  ASSERT_EQ(resp.compare(0, 3, "OK "), 0) << resp;
  std::string header = resp.substr(0, resp.find('\n'));
  size_t tpos = header.find(" trace=");
  ASSERT_NE(tpos, std::string::npos) << header;
  std::string line_id = header.substr(tpos + 7);
  std::string trace_resp = LineRequest(fd, "TRACE " + line_id + "\n");
  ::close(fd);
  ASSERT_EQ(trace_resp.compare(0, 3, "OK "), 0) << trace_resp;
  EXPECT_NE(LineBody(trace_resp).find("\"traceEvents\":["),
            std::string::npos);
  server.Stop();
}

// --- client control plane: request ids, cancel-by-id, fairness -------------

// Reads one newline-terminated line (e.g. the "ID <n>" early ack).
std::string RecvLine(int fd, int timeout_ms = 5000) {
  return RecvUntil(
      fd,
      [](const std::string& b) { return b.find('\n') != std::string::npos; },
      timeout_ms);
}

// Prometheus sample with a client label: `family{client="name"} 123`.
bool PromClientValue(const std::string& text, const std::string& family,
                     const std::string& client, long long* out) {
  std::string needle = family + "{client=\"" + client + "\"} ";
  size_t pos = text.find(needle);
  if (pos == std::string::npos) return false;
  *out = std::strtoll(text.c_str() + pos + needle.size(), nullptr, 10);
  return true;
}

// ack=1 returns the server-assigned id before the result; POST /cancel/<id>
// from another connection trips the running request's control, which must
// unwind within safepoint granularity — far faster than the block itself —
// and answer the victim with the structured cancelled status.
TEST(ServerTest, CancelByIdUnwindsRunningRequestWithinSafepoints) {
  ServerOptions opts = TestOptions();
  Server server(Db(), opts);
  ASSERT_TRUE(server.Start());

  int a = ConnectTo(server.port());
  ASSERT_TRUE(SendAll(a, "BLOCK 8000 ack=1\n"));
  std::string ack = RecvLine(a);
  ASSERT_EQ(ack.compare(0, 3, "ID "), 0) << ack;
  std::string id = ack.substr(3, ack.find('\n') - 3);
  ASSERT_FALSE(id.empty());
  ASSERT_TRUE(WaitFor([&] { return server.stats().requests.load() >= 1; }));
  std::this_thread::sleep_for(std::chrono::milliseconds(150));  // worker pops

  int64_t t0 = NowMs();
  HttpResp c = HttpReq(server.port(), "POST", "/cancel/" + id, "");
  ASSERT_TRUE(c.complete);
  EXPECT_EQ(c.code, 200);
  EXPECT_EQ(c.headers["X-QC-Request-Id"], id);
  EXPECT_EQ(c.body, "cancelled\n");

  std::string victim = RecvUntil(a, LineRespComplete, 5000);
  EXPECT_EQ(victim.compare(0, 13, "ERR cancelled"), 0) << victim;
  EXPECT_NE(victim.find(" id=" + id), std::string::npos) << victim;
  // An 8s block unwound in safepoint time, not block time.
  EXPECT_LT(NowMs() - t0, 2000);
  EXPECT_GE(server.stats().cancels_by_id.load(), 1u);
  EXPECT_GE(server.stats().failed_cancelled.load(), 1u);
  ::close(a);

  // Unknown and already-finalized ids are an idempotent 404 on both
  // protocols.
  EXPECT_EQ(HttpReq(server.port(), "POST", "/cancel/" + id, "").code, 404);
  EXPECT_EQ(HttpReq(server.port(), "POST", "/cancel/999999", "").code, 404);
  int fd = ConnectTo(server.port());
  std::string nf = LineRequest(fd, "CANCEL 999999\n");
  EXPECT_EQ(nf.compare(0, 13, "ERR not_found"), 0) << nf;
  ::close(fd);
  server.Stop();
}

// Cancelling a request that is still queued sheds it immediately — the
// victim's answer cannot wait for a worker to pop it.
TEST(ServerTest, CancelByIdShedsQueuedRequestImmediately) {
  ServerOptions opts = TestOptions();
  opts.workers = 1;
  Server server(Db(), opts);
  ASSERT_TRUE(server.Start());

  int a = ConnectTo(server.port());
  ASSERT_TRUE(SendAll(a, "BLOCK 3000\n"));  // occupies the only worker
  ASSERT_TRUE(WaitFor([&] { return server.stats().requests.load() >= 1; }));
  std::this_thread::sleep_for(std::chrono::milliseconds(150));

  int b = ConnectTo(server.port());
  ASSERT_TRUE(SendAll(b, "BLOCK 2000 ack=1\n"));  // parks in the queue
  std::string ack = RecvLine(b);
  ASSERT_EQ(ack.compare(0, 3, "ID "), 0) << ack;
  std::string id = ack.substr(3, ack.find('\n') - 3);

  int c = ConnectTo(server.port());
  int64_t t0 = NowMs();
  std::string cresp = LineRequest(c, "CANCEL " + id + "\n");
  ASSERT_EQ(cresp.compare(0, 3, "OK "), 0) << cresp;
  EXPECT_NE(cresp.find("cancelled"), std::string::npos) << cresp;

  std::string victim = RecvUntil(b, LineRespComplete, 5000);
  EXPECT_EQ(victim.compare(0, 13, "ERR cancelled"), 0) << victim;
  // Shed straight out of the queue: long before the 3s blocker frees the
  // worker, let alone the 2s victim block running.
  EXPECT_LT(NowMs() - t0, 1500);
  EXPECT_GE(server.stats().cancels_by_id.load(), 1u);
  ::close(a);
  ::close(b);
  ::close(c);
  server.Stop();
}

// One heavy tenant floods 4 connections with 200ms blocks; a light tenant
// sends short probes. Round-robin admission bounds each probe's wait by
// roughly one heavy block; FIFO would park every probe behind the whole
// heavy backlog (>=600ms).
TEST(ServerTest, FairAdmissionBoundsLightClientUnderHeavyFlood) {
  ServerOptions opts = TestOptions();
  opts.workers = 1;
  opts.queue_capacity = 64;
  opts.queue_deadline_ms = 5000;
  Server server(Db(), opts);
  ASSERT_TRUE(server.Start());

  std::atomic<bool> stop{false};
  std::atomic<int> heavy_ok{0};
  std::vector<std::thread> heavy;
  for (int i = 0; i < 4; ++i) {
    heavy.emplace_back([&] {
      int fd = ConnectTo(server.port());
      while (!stop.load()) {
        std::string r = LineRequest(fd, "BLOCK 200 client=heavy\n", 8000);
        if (r.compare(0, 3, "OK ") != 0) break;
        heavy_ok.fetch_add(1);
      }
      ::close(fd);
    });
  }
  // Let the flood establish a standing backlog.
  ASSERT_TRUE(WaitFor([&] { return server.stats().requests.load() >= 4; }));
  std::this_thread::sleep_for(std::chrono::milliseconds(300));

  int64_t worst = 0;
  int light = ConnectTo(server.port());
  for (int i = 0; i < 5; ++i) {
    int64_t t0 = NowMs();
    std::string r = LineRequest(light, "BLOCK 10 client=light\n", 8000);
    ASSERT_EQ(r.compare(0, 3, "OK "), 0) << r;
    int64_t took = NowMs() - t0;
    if (took > worst) worst = took;
  }
  ::close(light);
  stop.store(true);
  for (auto& t : heavy) t.join();

  // RR bound: the in-progress heavy block (<=200ms) + own 10ms run +
  // slack. The FIFO baseline is >=600ms per probe (3 queued heavy blocks
  // plus the running one).
  EXPECT_LT(worst, 450) << "light client starved behind the heavy backlog";
  EXPECT_GE(heavy_ok.load(), 4);
  server.Stop();
}

// Per-client token bucket: a greedy tenant burns its burst and gets
// structured 429/"quota" sheds — distinct from 503 overload — while other
// tenants (including anonymous) keep being served.
TEST(ServerTest, PerClientQuotaShedsWith429OnBothProtocols) {
  ServerOptions opts = TestOptions();
  opts.client_qps = 1;
  Server server(Db(), opts);
  ASSERT_TRUE(server.Start());

  int okc = 0, shed = 0;
  int fd = ConnectTo(server.port());
  for (int i = 0; i < 6; ++i) {
    std::string r = LineRequest(fd, "BLOCK 1 client=greedy\n");
    if (r.compare(0, 3, "OK ") == 0) ++okc;
    if (r.compare(0, 9, "ERR quota") == 0) ++shed;
  }
  ::close(fd);
  EXPECT_GE(okc, 1);   // the burst admits
  EXPECT_GE(shed, 3);  // the flood hits the bucket
  EXPECT_GE(server.stats().shed_quota.load(), 3u);

  // Anonymous traffic is a different tenant: unaffected by greedy's debt.
  EXPECT_EQ(HttpGet(server.port(), "/query?q=1").code, 200);

  // HTTP identity via the X-QC-Client header sheds the same way.
  int ok_http = 0, shed_http = 0;
  for (int i = 0; i < 6; ++i) {
    HttpResp h = HttpReq(server.port(), "GET", "/debug/block?ms=1",
                         "X-QC-Client: gulp\r\n");
    if (h.code == 200) ++ok_http;
    if (h.code == 429) {
      ++shed_http;
      EXPECT_EQ(h.headers["X-QC-Status"], "quota");
    }
  }
  EXPECT_GE(ok_http, 1);
  EXPECT_GE(shed_http, 3);
  server.Stop();
}

// The per-client inflight cap defers (the queue holds the request until a
// slot frees) instead of shedding: the capped tenant's work serializes,
// other tenants use the idle workers meanwhile, nobody sees an error.
TEST(ServerTest, PerClientInflightCapDefersWithoutShedding) {
  ServerOptions opts = TestOptions();
  opts.workers = 2;
  opts.client_inflight = 1;
  Server server(Db(), opts);
  ASSERT_TRUE(server.Start());

  int64_t t0 = NowMs();
  int a = ConnectTo(server.port());
  ASSERT_TRUE(SendAll(a, "BLOCK 400 client=capped\n"));
  ASSERT_TRUE(WaitFor([&] { return server.stats().requests.load() >= 1; }));
  int b = ConnectTo(server.port());
  ASSERT_TRUE(SendAll(b, "BLOCK 400 client=capped\n"));
  ASSERT_TRUE(WaitFor([&] { return server.stats().requests.load() >= 2; }));

  // The second worker is idle (capped's 2nd block defers): other tenants
  // run immediately.
  int c = ConnectTo(server.port());
  std::string fast = LineRequest(c, "BLOCK 10 client=other\n", 5000);
  EXPECT_EQ(fast.compare(0, 3, "OK "), 0) << fast;
  EXPECT_LT(NowMs() - t0, 2000);
  ::close(c);

  std::string ra = RecvUntil(a, LineRespComplete, 5000);
  std::string rb = RecvUntil(b, LineRespComplete, 5000);
  EXPECT_EQ(ra.compare(0, 3, "OK "), 0) << ra;
  EXPECT_EQ(rb.compare(0, 3, "OK "), 0) << rb;
  // cap=1 serialized the two 400ms blocks; in parallel they'd finish ~400ms
  // after t0.
  EXPECT_GE(NowMs() - t0, 780);
  EXPECT_EQ(server.stats().shed_quota.load(), 0u);
  EXPECT_EQ(server.stats().shed_client_queue.load(), 0u);
  ::close(a);
  ::close(b);
  server.Stop();
}

// --- connection hardening --------------------------------------------------

// A socket dribbling an unfinished request (slow loris) and an idle
// keep-alive socket both age out on their timeouts; a connection with real
// in-flight work is never evicted.
TEST(ServerTest, SlowLorisAndIdleKeepAliveConnectionsAreEvicted) {
  ServerOptions opts = TestOptions();
  opts.io_idle_ms = 300;
  opts.idle_ms = 700;
  Server server(Db(), opts);
  ASSERT_TRUE(server.Start());

  // Busy control: outlives both timeouts because its work is in flight.
  int busy = ConnectTo(server.port());
  ASSERT_TRUE(SendAll(busy, "BLOCK 1500\n"));

  // Idle keep-alive: one successful round trip, then silence.
  int idle = ConnectTo(server.port());
  std::string pong = LineRequest(idle, "PING\n");
  ASSERT_EQ(pong.compare(0, 4, "PONG"), 0) << pong;

  // Slow loris: keeps the socket "active" by dribbling bytes, but the age
  // of its oldest unparsed byte keeps growing — liveness of the socket
  // must not defeat the stalled-request clock.
  int loris = ConnectTo(server.port());
  const char kDribble[] = "QUERY 1 x";  // never newline-terminated
  bool loris_dead = false;
  int64_t t0 = NowMs();
  size_t li = 0;
  while (NowMs() - t0 < 5000) {
    char byte = kDribble[li++ % (sizeof(kDribble) - 1)];
    if (::send(loris, &byte, 1, MSG_NOSIGNAL) < 0) {
      loris_dead = true;
      break;
    }
    char tmp[64];
    ssize_t n = ::recv(loris, tmp, sizeof(tmp), MSG_DONTWAIT);
    if (n == 0 || (n < 0 && errno != EAGAIN && errno != EWOULDBLOCK)) {
      loris_dead = true;
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(40));
  }
  EXPECT_TRUE(loris_dead) << "slow loris survived the io timeout";
  EXPECT_GE(server.stats().evicted_stalled.load(), 1u);
  ::close(loris);

  ASSERT_TRUE(
      WaitFor([&] { return server.stats().evicted_idle.load() >= 1; }, 5000));
  pollfd pe{idle, POLLIN, 0};
  ASSERT_GT(::poll(&pe, 1, 5000), 0);
  char tmp[8];
  EXPECT_EQ(::recv(idle, tmp, sizeof(tmp), 0), 0);  // clean EOF
  ::close(idle);

  // The busy connection delivered its result despite running far past
  // io_idle_ms.
  std::string r = RecvUntil(busy, LineRespComplete, 8000);
  EXPECT_EQ(r.compare(0, 3, "OK "), 0) << r;
  ::close(busy);
  server.Stop();
}

// At the global connection ceiling the newest idle keep-alive socket is
// recycled (LIFO) so the fresh client still gets served; established idle
// sockets observe a clean EOF, never a hang.
TEST(ServerTest, ConnectionCeilingEvictsNewestIdleSocket) {
  ServerOptions opts = TestOptions();
  opts.max_conns = 4;
  Server server(Db(), opts);
  ASSERT_TRUE(server.Start());

  std::vector<int> fds;
  for (int i = 0; i < 4; ++i) {
    int fd = ConnectTo(server.port());
    std::string pong = LineRequest(fd, "PING\n");
    ASSERT_EQ(pong.compare(0, 4, "PONG"), 0) << pong;
    fds.push_back(fd);
  }

  int fresh = ConnectTo(server.port());
  std::string resp = LineRequest(fresh, "QUERY 1\n");
  EXPECT_EQ(resp.compare(0, 3, "OK "), 0) << resp;
  EXPECT_GE(server.stats().conn_evicted.load(), 1u);

  // LIFO: the most recently accepted idle socket was the victim.
  pollfd pv{fds[3], POLLIN, 0};
  ASSERT_GT(::poll(&pv, 1, 5000), 0);
  char tmp[8];
  EXPECT_EQ(::recv(fds[3], tmp, sizeof(tmp), 0), 0);
  // The oldest socket still works.
  std::string pong = LineRequest(fds[0], "PING\n");
  EXPECT_EQ(pong.compare(0, 4, "PONG"), 0) << pong;
  for (int fd : fds) ::close(fd);
  ::close(fresh);
  server.Stop();
}

// --- input bounds ----------------------------------------------------------

// Parser-level bounds: each over-limit dimension maps to its own structured
// status with must_close set, and client identity is sanitized, not trusted.
TEST(ServerTest, OversizedRequestsAreRejectedStructurally) {
  ProtoLimits lim;

  // Request line over max_line: 414, framing unrecoverable.
  ParsedRequest p = ParseRequest(
      "GET /query?q=1&pad=" + std::string(5000, 'a') +
          " HTTP/1.1\r\nHost: t\r\n\r\n",
      lim);
  EXPECT_EQ(p.kind, ParsedRequest::Kind::kBad);
  EXPECT_EQ(p.http_code, 414);
  EXPECT_TRUE(p.must_close);

  // Header block over max_headers: 431.
  std::string hdrs;
  for (int i = 0; i < 600; ++i) {
    hdrs += "X-Pad-" + std::to_string(i) + ": aaaaaaaaaaaaaaaaaaaaaaaa\r\n";
  }
  p = ParseRequest("GET /healthz HTTP/1.1\r\n" + hdrs + "\r\n", lim);
  EXPECT_EQ(p.kind, ParsedRequest::Kind::kBad);
  EXPECT_EQ(p.http_code, 431);
  EXPECT_TRUE(p.must_close);

  // Declared POST body over max_body: 413 before a single body byte needs
  // to be buffered.
  p = ParseRequest("POST /cancel/7 HTTP/1.1\r\nContent-Length: 9999\r\n\r\n",
                   lim);
  EXPECT_EQ(p.kind, ParsedRequest::Kind::kBad);
  EXPECT_EQ(p.http_code, 413);
  EXPECT_TRUE(p.must_close);

  // In-bounds POST waits for its body, then routes.
  p = ParseRequest("POST /cancel/7 HTTP/1.1\r\nContent-Length: 3\r\n\r\nab",
                   lim);
  EXPECT_EQ(p.kind, ParsedRequest::Kind::kNeedMore);
  p = ParseRequest("POST /cancel/7 HTTP/1.1\r\nContent-Length: 0\r\n\r\n",
                   lim);
  EXPECT_EQ(p.kind, ParsedRequest::Kind::kCancel);
  EXPECT_EQ(p.cancel_id, 7u);
  // Cancel is POST-only.
  p = ParseRequest("GET /cancel/7 HTTP/1.1\r\n\r\n", lim);
  EXPECT_EQ(p.kind, ParsedRequest::Kind::kBad);
  EXPECT_EQ(p.http_code, 405);

  // Line-protocol line over max_line: 431 with line framing.
  p = ParseRequest("QUERY 1 " + std::string(5000, 'x') + "\n", lim);
  EXPECT_EQ(p.kind, ParsedRequest::Kind::kBad);
  EXPECT_FALSE(p.http);
  EXPECT_EQ(p.error, "request_too_large");
  EXPECT_TRUE(p.must_close);

  // CANCEL line command parses; ids are strict.
  p = ParseRequest("CANCEL 42\n", lim);
  EXPECT_EQ(p.kind, ParsedRequest::Kind::kCancel);
  EXPECT_EQ(p.cancel_id, 42u);

  // Client identity: strict alphabet, bounded length, header beats param.
  p = ParseRequest("QUERY 1 client=ok-id.1\n", lim);
  EXPECT_EQ(p.client, "ok-id.1");
  p = ParseRequest("QUERY 1 client=bad!id\n", lim);
  EXPECT_EQ(p.client, "");
  p = ParseRequest("QUERY 1 client=" + std::string(40, 'a') + "\n", lim);
  EXPECT_EQ(p.client, "");
  p = ParseRequest(
      "GET /query?q=1&client=urlid HTTP/1.1\r\nX-QC-Client: hdrid\r\n\r\n",
      lim);
  EXPECT_EQ(p.client, "hdrid");
}

// Socket-level bounds: a newline-less flood is answered with a structured
// error once it crosses the line bound — the server does not buffer it
// indefinitely — and the hard per-connection buffer cap closes a flooding
// connection even while a request is in flight (the parser idle).
TEST(ServerTest, OversizedSocketFloodsAreBounded) {
  ServerOptions opts = TestOptions();
  Server server(Db(), opts);
  ASSERT_TRUE(server.Start());

  int fd = ConnectTo(server.port());
  SendAll(fd, std::string(8192, 'Q'));  // no newline, no framing
  std::string resp = RecvUntil(
      fd,
      [](const std::string& b) {
        return b.find("request_too_large") != std::string::npos;
      },
      5000);
  EXPECT_NE(resp.find("request_too_large"), std::string::npos) << resp;
  ::close(fd);
  EXPECT_GE(server.stats().bad_requests.load(), 1u);

  // While a request is in flight, pipelined bytes wait unparsed — but only
  // up to the 64K hard cap, after which the connection is torn down.
  int b1 = ConnectTo(server.port());
  ASSERT_TRUE(SendAll(b1, "BLOCK 1500\n"));
  ASSERT_TRUE(WaitFor([&] { return server.stats().requests.load() >= 1; }));
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  SendAll(b1, std::string(100 * 1024, 'z'));  // may be cut short: fine
  std::string flood = RecvUntil(
      b1,
      [](const std::string& b) {
        return b.find("request_too_large") != std::string::npos;
      },
      5000);
  EXPECT_NE(flood.find("request_too_large"), std::string::npos) << flood;
  ::close(b1);
  ASSERT_TRUE(WaitFor([&] { return server.stats().bad_requests.load() >= 2; }));

  // The server is unharmed.
  EXPECT_EQ(HttpGet(server.port(), "/query?q=1").code, 200);
  server.Stop();
}

// Pipelining past the per-connection cap while a request is in flight is a
// structured 429 + close, and the server keeps serving everyone else.
TEST(ServerTest, PipelineFloodOverCapClosesConnection) {
  ServerOptions opts = TestOptions();
  opts.pipeline_cap = 4;
  Server server(Db(), opts);
  ASSERT_TRUE(server.Start());

  int fd = ConnectTo(server.port());
  ASSERT_TRUE(SendAll(fd, "BLOCK 800\n"));
  ASSERT_TRUE(WaitFor([&] { return server.stats().requests.load() >= 1; }));
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  std::string burst;
  for (int i = 0; i < 8; ++i) burst += "PING\n";
  ASSERT_TRUE(SendAll(fd, burst));
  std::string resp = RecvUntil(
      fd,
      [](const std::string& b) {
        return b.find("pipeline_limit") != std::string::npos;
      },
      5000);
  EXPECT_NE(resp.find("pipeline_limit"), std::string::npos) << resp;
  EXPECT_GE(server.stats().pipeline_limited.load(), 1u);
  ::close(fd);
  EXPECT_EQ(HttpGet(server.port(), "/query?q=1").code, 200);
  server.Stop();
}

// A slow reader dribbling a deep pipeline of real result sets: the event
// loop must ride EAGAIN through partial writes without dropping, reordering
// or duplicating a single byte. The client window is shrunk so back-pressure
// genuinely reaches the server's send path.
TEST(ServerTest, SlowReaderDrainsPipelinedResultsByteExact) {
  ServerOptions opts = TestOptions();
  opts.pipeline_cap = 512;
  Server server(Db(), opts);
  ASSERT_TRUE(server.Start());

  const std::string expect = RefRows(16, 5);
  ASSERT_FALSE(expect.empty());
  size_t n = 320 * 1024 / expect.size() + 4;
  if (n > 256) n = 256;

  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  int rcv = 4096;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVBUF, &rcv, sizeof(rcv));
  sockaddr_in a;
  std::memset(&a, 0, sizeof(a));
  a.sin_family = AF_INET;
  a.sin_port = htons(static_cast<uint16_t>(server.port()));
  a.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&a), sizeof(a)), 0);

  std::string burst;
  for (size_t i = 0; i < n; ++i) burst += "QUERY 16\n";
  ASSERT_TRUE(SendAll(fd, burst));

  // Dribble: small reads, deliberately slower than the workers render.
  std::string all;
  size_t terms = 0, scanned = 0;
  int64_t deadline = NowMs() + 120000;
  char tmp[1536];
  while (terms < n && NowMs() < deadline) {
    pollfd p{fd, POLLIN, 0};
    if (::poll(&p, 1, 1000) <= 0) continue;
    ssize_t got = ::recv(fd, tmp, sizeof(tmp), 0);
    ASSERT_GT(got, 0) << "connection died after " << all.size() << " bytes, "
                      << terms << "/" << n << " responses";
    all.append(tmp, static_cast<size_t>(got));
    for (;;) {  // count "\n.\n" frame terminators seen so far
      size_t hit = all.find("\n.\n", scanned);
      if (hit == std::string::npos) {
        scanned = all.size() < 2 ? 0 : all.size() - 2;
        break;
      }
      ++terms;
      scanned = hit + 2;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_EQ(terms, n) << "only " << terms << " of " << n << " responses";

  // Byte-exact reassembly of every frame.
  size_t pos = 0;
  for (size_t i = 0; i < n; ++i) {
    SCOPED_TRACE(i);
    ASSERT_EQ(all.compare(pos, 3, "OK "), 0) << all.substr(pos, 40);
    size_t he = all.find('\n', pos);
    ASSERT_NE(he, std::string::npos);
    ASSERT_TRUE(all.compare(he + 1, expect.size(), expect) == 0)
        << "rows of response " << i << " differ";
    pos = he + 1 + expect.size();
    ASSERT_EQ(all.compare(pos, 2, ".\n"), 0);
    pos += 2;
  }
  EXPECT_EQ(pos, all.size());
  ::close(fd);
  server.Stop();
}

// The per-client cells of /stats and the labeled qc_server_client_* families
// of /metrics are two renderings of one queue snapshot: every cell must
// agree, and the flat shed counter must equal the per-client sum.
TEST(ServerTest, PerClientCountersConsistentAcrossStatsAndMetrics) {
  ServerOptions opts = TestOptions();
  opts.client_qps = 1;  // force at least one quota shed
  Server server(Db(), opts);
  ASSERT_TRUE(server.Start());

  int fd = ConnectTo(server.port());
  long long okc = 0, shed = 0;
  for (int i = 0; i < 4; ++i) {
    std::string r = LineRequest(fd, "BLOCK 1 client=alice\n");
    if (r.compare(0, 3, "OK ") == 0) ++okc;
    if (r.compare(0, 9, "ERR quota") == 0) ++shed;
  }
  ASSERT_GE(okc, 1);
  ASSERT_GE(shed, 1);

  // Both views over one connection: no counter can move between reads.
  std::string metrics = LineBody(LineRequest(fd, "METRICS\n"));
  std::string stats = LineBody(LineRequest(fd, "STATS\n"));
  ::close(fd);

  size_t cpos = stats.find("\"clients\":{");
  ASSERT_NE(cpos, std::string::npos) << stats;
  std::string alice = stats.substr(cpos);
  ASSERT_NE(alice.find("\"alice\":{"), std::string::npos) << alice;

  const char* kCells[] = {"admitted", "done", "shed_quota", "inflight",
                          "queued"};
  const char* kFamilies[] = {
      "qc_server_client_admitted_total", "qc_server_client_done_total",
      "qc_server_client_shed_quota_total", "qc_server_client_inflight",
      "qc_server_client_queued"};
  for (int i = 0; i < 5; ++i) {
    SCOPED_TRACE(kCells[i]);
    long long from_json = -1, from_prom = -1;
    ASSERT_TRUE(JsonValue(alice, kCells[i], &from_json));
    ASSERT_TRUE(PromClientValue(metrics, kFamilies[i], "alice", &from_prom));
    EXPECT_EQ(from_json, from_prom);
  }
  long long admitted = -1, done = -1, q = -1, flat = -1;
  ASSERT_TRUE(JsonValue(alice, "admitted", &admitted));
  ASSERT_TRUE(JsonValue(alice, "done", &done));
  ASSERT_TRUE(JsonValue(alice, "shed_quota", &q));
  EXPECT_EQ(admitted, okc);
  EXPECT_EQ(done, okc);  // every admitted block finished before the reads
  EXPECT_EQ(q, shed);
  ASSERT_TRUE(PromValue(metrics, "qc_server_shed_quota_total", &flat));
  EXPECT_EQ(flat, shed);  // alice is the only shedding tenant
  server.Stop();
}

// Chaos sweep over the serving daemon's network fault sites (plus one
// compound network+execution spec): under every injected failure the
// server must neither crash nor hang, every affected client must observe
// either a structured error or a clean disconnect, and after disarming the
// server must serve perfectly again.
TEST(ServerChaosTest, NetworkFaultSitesFailCleanAndServerSurvives) {
  const char* kSpecs[] = {
      "srv_accept:1",  "srv_read:1",   "srv_read:3",
      "srv_write:1",   "srv_write:3",  "srv_queue:1",
      "srv_timeout:1", "srv_cancel:1", "srv_read:2,alloc_heap:1",
  };
  for (const char* spec : kSpecs) {
    SCOPED_TRACE(spec);
    ServerOptions opts = TestOptions();
    opts.workers = 2;
    Server server(Db(), opts);
    ASSERT_TRUE(server.Start());
    // Warm before arming so plan compilation is off the chaos path.
    ASSERT_EQ(HttpGet(server.port(), "/query?q=1").code, 200);
    {
      ScopedFault fault(spec);
      // Exercise the cancel control plane so srv_cancel has a path to fire;
      // under every other spec this is a harmless 404/torn connection.
      {
        int cfd = ConnectTo(server.port());
        std::string cresp = LineRequest(cfd, "CANCEL 999999\n", 5000);
        EXPECT_TRUE(cresp.empty() || cresp.compare(0, 3, "OK ") == 0 ||
                    cresp.compare(0, 3, "ERR") == 0)
            << cresp;
        ::close(cfd);
      }
      for (int i = 0; i < 4; ++i) {
        int fd = ConnectTo(server.port());
        std::string resp = LineRequest(fd, "QUERY 1\n", 5000);
        // Structured outcome or torn connection — both acceptable under
        // injected network failure; crashes and hangs are not.
        EXPECT_TRUE(resp.empty() || resp.compare(0, 3, "OK ") == 0 ||
                    resp.compare(0, 3, "ERR") == 0)
            << resp;
        ::close(fd);
      }
      EXPECT_GE(server.stats().net_faults.load(), 1u);
    }
    // Disarmed: full service, correct bytes.
    HttpResp clean = HttpGet(server.port(), "/query?q=1");
    EXPECT_EQ(clean.code, 200);
    EXPECT_EQ(clean.body, RefRows(1, 5));
    server.Stop();
  }
}

}  // namespace
}  // namespace qc::server
