// Robustness suite for the serving daemon (src/server/): admission control,
// queue deadlines, kill-on-disconnect, retry/backoff, graceful degradation,
// drain, and a chaos sweep over the srv_* network fault sites. Every test
// runs a real Server on an ephemeral loopback port and talks to it over
// real sockets — the same bytes a production client would send.

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstring>
#include <functional>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "common/fault.h"
#include "compiler/compiler.h"
#include "exec/interp.h"
#include "qplan/plan.h"
#include "server/protocol.h"
#include "server/server.h"
#include "tpch/datagen.h"
#include "tpch/queries.h"

namespace qc::server {
namespace {

storage::Database* Db() {
  static storage::Database* db =
      new storage::Database(tpch::MakeTpchDatabase(0.01));
  return db;
}

// Canonical expected rows: compile at `level`, run on the ungoverned VM.
std::string RefRows(int q, int level) {
  ir::TypeFactory types;
  qplan::PlanPtr plan = tpch::MakeQuery(q);
  qplan::ResolvePlan(plan.get(), *Db());
  compiler::QueryCompiler qc(Db(), &types);
  compiler::CompileResult res =
      qc.Compile(*plan, compiler::StackConfig::Level(level), "ref");
  exec::Interpreter interp(Db());
  return RenderRows(interp.Run(*res.fn));
}

struct ScopedFault {
  explicit ScopedFault(const char* spec) {
    ::setenv("QC_FAULT", spec, 1);
    FaultReArm();
  }
  ~ScopedFault() {
    ::unsetenv("QC_FAULT");
    FaultReArm();
  }
};

ServerOptions TestOptions() {
  ServerOptions o;
  o.port = 0;
  o.workers = 1;
  o.queue_capacity = 8;
  o.debug_endpoints = true;
  o.default_jit = false;  // deterministic engine for byte-exact comparisons
  return o;
}

int64_t NowMs() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

bool WaitFor(const std::function<bool()>& pred, int timeout_ms = 10000) {
  int64_t deadline = NowMs() + timeout_ms;
  while (NowMs() < deadline) {
    if (pred()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  return pred();
}

// --- minimal socket client -------------------------------------------------

int ConnectTo(int port) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in a;
  std::memset(&a, 0, sizeof(a));
  a.sin_family = AF_INET;
  a.sin_port = htons(static_cast<uint16_t>(port));
  a.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&a), sizeof(a)), 0);
  return fd;
}

// Tolerates resets mid-send (chaos sweep tears connections down under us).
bool SendAll(int fd, const std::string& s) {
  const char* p = s.data();
  size_t left = s.size();
  while (left > 0) {
    ssize_t n = ::send(fd, p, left, MSG_NOSIGNAL);
    if (n <= 0) return false;
    p += n;
    left -= static_cast<size_t>(n);
  }
  return true;
}

// Reads until `done(buf)` or timeout/EOF; returns whatever arrived.
std::string RecvUntil(int fd, const std::function<bool(const std::string&)>& done,
                      int timeout_ms = 15000) {
  std::string buf;
  int64_t deadline = NowMs() + timeout_ms;
  while (!done(buf)) {
    int64_t remain = deadline - NowMs();
    if (remain <= 0) break;
    pollfd p{fd, POLLIN, 0};
    int rc = ::poll(&p, 1, static_cast<int>(remain));
    if (rc <= 0) continue;
    char tmp[8192];
    ssize_t n = ::recv(fd, tmp, sizeof(tmp), 0);
    if (n <= 0) break;  // EOF or error: return what we have
    buf.append(tmp, static_cast<size_t>(n));
  }
  return buf;
}

// One complete line-protocol response: an ERR/PONG line, or an OK header
// followed by rows and the lone-"." terminator line.
bool LineRespComplete(const std::string& b) {
  if (b.compare(0, 3, "ERR") == 0 || b.compare(0, 4, "PONG") == 0) {
    return b.find('\n') != std::string::npos;
  }
  return b.find("\n.\n") != std::string::npos;
}

std::string LineRequest(int fd, const std::string& line, int timeout_ms = 15000) {
  if (!SendAll(fd, line)) return "";
  return RecvUntil(fd, LineRespComplete, timeout_ms);
}

struct HttpResp {
  bool complete = false;
  int code = 0;
  std::map<std::string, std::string> headers;
  std::string body;
};

HttpResp HttpGet(int port, const std::string& target, int timeout_ms = 15000) {
  HttpResp r;
  int fd = ConnectTo(port);
  if (!SendAll(fd, "GET " + target + " HTTP/1.1\r\nHost: t\r\n\r\n")) {
    ::close(fd);
    return r;
  }
  auto done = [](const std::string& b) {
    size_t he = b.find("\r\n\r\n");
    if (he == std::string::npos) return false;
    size_t cl = b.find("Content-Length: ");
    if (cl == std::string::npos || cl > he) return true;  // malformed: stop
    size_t clen = std::strtoul(b.c_str() + cl + 16, nullptr, 10);
    return b.size() >= he + 4 + clen;
  };
  std::string raw = RecvUntil(fd, done, timeout_ms);
  ::close(fd);
  size_t he = raw.find("\r\n\r\n");
  if (he == std::string::npos) return r;
  r.complete = true;
  r.body = raw.substr(he + 4);
  std::string head = raw.substr(0, he);
  size_t sp = head.find(' ');
  if (sp != std::string::npos) r.code = std::atoi(head.c_str() + sp + 1);
  size_t pos = head.find("\r\n");
  while (pos != std::string::npos) {
    size_t end = head.find("\r\n", pos + 2);
    std::string line = head.substr(pos + 2, end == std::string::npos
                                                ? std::string::npos
                                                : end - pos - 2);
    size_t colon = line.find(": ");
    if (colon != std::string::npos) {
      r.headers[line.substr(0, colon)] = line.substr(colon + 2);
    }
    pos = end;
  }
  return r;
}

// ---------------------------------------------------------------------------

TEST(ServerTest, ServesQueriesBitExactOnBothProtocols) {
  ServerOptions opts = TestOptions();
  opts.workers = 2;
  Server server(Db(), opts);
  ASSERT_TRUE(server.Start());

  HttpResp h = HttpGet(server.port(), "/query?q=1");
  ASSERT_TRUE(h.complete);
  EXPECT_EQ(h.code, 200);
  EXPECT_EQ(h.headers["X-QC-Status"], "ok");
  EXPECT_EQ(h.headers["X-QC-Engine"], "vm");
  EXPECT_EQ(h.body, RefRows(1, 5));

  // JIT-engine request: may degrade, must stay byte-exact either way.
  HttpResp j = HttpGet(server.port(), "/query?q=3&engine=jit");
  ASSERT_TRUE(j.complete);
  EXPECT_EQ(j.code, 200);
  EXPECT_EQ(j.body, RefRows(3, 5));

  // Same query over the line protocol: identical rows, OK framing.
  int fd = ConnectTo(server.port());
  std::string resp = LineRequest(fd, "QUERY 1\n");
  ::close(fd);
  ASSERT_EQ(resp.compare(0, 3, "OK "), 0) << resp;
  size_t nl = resp.find('\n');
  EXPECT_EQ(resp.substr(nl + 1, resp.size() - nl - 3), RefRows(1, 5));

  // Health and stats answer inline even while workers are free-running.
  HttpResp hz = HttpGet(server.port(), "/healthz");
  EXPECT_EQ(hz.code, 200);
  EXPECT_EQ(hz.body, "ok\n");
  HttpResp st = HttpGet(server.port(), "/stats");
  EXPECT_EQ(st.code, 200);
  EXPECT_NE(st.body.find("\"requests\""), std::string::npos);
  server.Stop();
}

TEST(ServerTest, ShedsWithOverloadedWhenAdmissionQueueIsFull) {
  ServerOptions opts = TestOptions();
  opts.workers = 1;
  opts.queue_capacity = 1;
  Server server(Db(), opts);
  ASSERT_TRUE(server.Start());

  // Occupy the only worker, then fill the 1-slot queue, then overflow it.
  int c1 = ConnectTo(server.port());
  ASSERT_TRUE(SendAll(c1, "BLOCK 3000\n"));
  ASSERT_TRUE(WaitFor([&] {
    return server.stats().requests.load() >= 1 && server.stats().ok.load() == 0;
  }));
  std::this_thread::sleep_for(std::chrono::milliseconds(200));  // worker pops

  int c2 = ConnectTo(server.port());
  ASSERT_TRUE(SendAll(c2, "BLOCK 100\n"));  // sits in the queue
  ASSERT_TRUE(WaitFor([&] { return server.stats().requests.load() >= 2; }));

  int c3 = ConnectTo(server.port());
  std::string resp = LineRequest(c3, "QUERY 1\n");
  EXPECT_EQ(resp.compare(0, 14, "ERR overloaded"), 0) << resp;
  EXPECT_GE(server.stats().shed_queue_full.load(), 1u);

  // The shed was immediate: the blocked worker is still busy.
  EXPECT_EQ(server.stats().ok.load(), 0u);
  ::close(c1);
  ::close(c2);
  ::close(c3);
  server.Stop();
}

TEST(ServerTest, ShedsRequestsWhoseQueueDeadlineExpired) {
  ServerOptions opts = TestOptions();
  opts.workers = 1;
  opts.queue_deadline_ms = 50;
  Server server(Db(), opts);
  ASSERT_TRUE(server.Start());

  int c1 = ConnectTo(server.port());
  ASSERT_TRUE(SendAll(c1, "BLOCK 800\n"));
  std::this_thread::sleep_for(std::chrono::milliseconds(150));

  // Queued behind an 800ms block with a 50ms queue deadline: by the time
  // the worker frees up, running it would serve a client that gave up.
  int c2 = ConnectTo(server.port());
  std::string resp = LineRequest(c2, "QUERY 1 deadline_ms=5000\n");
  EXPECT_EQ(resp.compare(0, 18, "ERR queue_deadline"), 0) << resp;
  EXPECT_EQ(server.stats().shed_queue_deadline.load(), 1u);
  ::close(c1);
  ::close(c2);
  server.Stop();
}

TEST(ServerTest, DisconnectCancelsInflightAndFreesTheWorker) {
  ServerOptions opts = TestOptions();
  opts.workers = 1;
  Server server(Db(), opts);
  ASSERT_TRUE(server.Start());

  int c1 = ConnectTo(server.port());
  ASSERT_TRUE(SendAll(c1, "BLOCK 8000\n"));
  ASSERT_TRUE(WaitFor([&] { return server.stats().requests.load() >= 1; }));
  std::this_thread::sleep_for(std::chrono::milliseconds(200));
  ::close(c1);  // client walks away mid-query

  ASSERT_TRUE(
      WaitFor([&] { return server.stats().disconnect_cancels.load() >= 1; }));

  // The kill must free the only worker long before the 8s block finishes.
  int64_t t0 = NowMs();
  int c2 = ConnectTo(server.port());
  std::string resp = LineRequest(c2, "QUERY 1\n", 5000);
  ::close(c2);
  EXPECT_EQ(resp.compare(0, 3, "OK "), 0) << resp;
  EXPECT_LT(NowMs() - t0, 4000);
  EXPECT_GE(server.stats().failed_cancelled.load(), 1u);
  server.Stop();
}

TEST(ServerTest, RetriesTransientResourceFailureWithinDeadline) {
  ServerOptions opts = TestOptions();
  opts.max_retries = 2;
  opts.retry_base_ms = 1;
  opts.retry_max_ms = 4;
  Server server(Db(), opts);
  ASSERT_TRUE(server.Start());

  // Warm the (q=1, level=2) plan so the armed run measures execution only.
  HttpResp warm = HttpGet(server.port(), "/query?q=1&level=2");
  ASSERT_EQ(warm.code, 200);

  // One-shot allocation fault: attempt 1 trips kResourceFailure, the
  // retry runs clean — the client sees success plus a retry count.
  ScopedFault fault("alloc_heap:1");
  HttpResp h = HttpGet(server.port(), "/query?q=1&level=2");
  ASSERT_TRUE(h.complete);
  EXPECT_EQ(h.code, 200);
  EXPECT_EQ(h.headers["X-QC-Status"], "ok");
  EXPECT_EQ(h.headers["X-QC-Retries"], "1");
  EXPECT_EQ(h.body, RefRows(1, 2));
  EXPECT_EQ(server.stats().retries.load(), 1u);
  EXPECT_EQ(server.stats().failed_resource.load(), 0u);
  server.Stop();
}

TEST(ServerTest, ExhaustedRetriesDownshiftThenRecover) {
  ServerOptions opts = TestOptions();
  opts.max_retries = 0;  // no retry budget: the failure surfaces
  opts.recover_ok = 2;
  Server server(Db(), opts);
  ASSERT_TRUE(server.Start());

  HttpResp warm = HttpGet(server.port(), "/query?q=1&level=2");
  ASSERT_EQ(warm.code, 200);

  {
    ScopedFault fault("alloc_heap:1");
    HttpResp h = HttpGet(server.port(), "/query?q=1&level=2");
    ASSERT_TRUE(h.complete);
    EXPECT_EQ(h.code, 503);  // transient by contract: retryable
    EXPECT_EQ(h.headers["X-QC-Status"],
              exec::QueryStatusName(exec::QueryStatusCode::kResourceFailure));
    EXPECT_EQ(h.headers["Retry-After"], "1");
  }
  EXPECT_GE(server.stats().failed_resource.load(), 1u);
  EXPECT_EQ(server.downshift_level(), 1);  // degraded, serving continues

  // Degraded-mode responses advertise the downshift; after recover_ok
  // consecutive successes the server steps back to full service.
  HttpResp d1 = HttpGet(server.port(), "/query?q=1&level=2");
  EXPECT_EQ(d1.code, 200);
  EXPECT_EQ(d1.headers["X-QC-Downshift"], "1");
  HttpResp d2 = HttpGet(server.port(), "/query?q=1&level=2");
  EXPECT_EQ(d2.code, 200);
  EXPECT_EQ(server.downshift_level(), 0);
  HttpResp d3 = HttpGet(server.port(), "/query?q=1&level=2");
  EXPECT_EQ(d3.headers["X-QC-Downshift"], "0");
  server.Stop();
}

TEST(ServerTest, DrainShedsNewRequestsAndCancelsStragglers) {
  ServerOptions opts = TestOptions();
  opts.workers = 1;
  opts.drain_deadline_ms = 100;
  Server server(Db(), opts);
  ASSERT_TRUE(server.Start());

  int c1 = ConnectTo(server.port());
  int c2 = ConnectTo(server.port());  // connect before the listener closes
  ASSERT_TRUE(SendAll(c1, "BLOCK 8000\n"));
  ASSERT_TRUE(WaitFor([&] { return server.stats().requests.load() >= 1; }));
  std::this_thread::sleep_for(std::chrono::milliseconds(200));

  server.BeginDrain();
  EXPECT_TRUE(server.draining());
  std::string resp = LineRequest(c2, "QUERY 1\n");
  EXPECT_EQ(resp.compare(0, 12, "ERR draining"), 0) << resp;
  EXPECT_GE(server.stats().shed_draining.load(), 1u);

  // The 8s block cannot finish inside the 100ms drain deadline: Drain must
  // cancel it through its control and report the unclean drain.
  EXPECT_FALSE(server.Drain());
  EXPECT_GE(server.stats().drain_kills.load(), 1u);
  std::string straggler = RecvUntil(c1, LineRespComplete, 5000);
  EXPECT_EQ(straggler.compare(0, 13, "ERR cancelled"), 0) << straggler;
  ::close(c1);
  ::close(c2);
  server.Stop();
}

TEST(ServerTest, DrainWithNoInflightWorkIsClean) {
  Server server(Db(), TestOptions());
  ASSERT_TRUE(server.Start());
  EXPECT_TRUE(server.Drain());
  EXPECT_EQ(server.stats().drain_kills.load(), 0u);
  server.Stop();
}

// --- telemetry endpoints ---------------------------------------------------

// Strips line framing: "OK ...\n<body>.\n" -> body.
std::string LineBody(const std::string& resp) {
  size_t nl = resp.find('\n');
  if (nl == std::string::npos || resp.size() < nl + 3) return "";
  return resp.substr(nl + 1, resp.size() - nl - 3);
}

// First sample value of `family` in Prometheus text ("family 123\n").
bool PromValue(const std::string& text, const std::string& family,
               long long* out) {
  size_t pos = 0;
  while (pos < text.size()) {
    size_t end = text.find('\n', pos);
    if (end == std::string::npos) end = text.size();
    if (text.compare(pos, family.size(), family) == 0 &&
        pos + family.size() < end && text[pos + family.size()] == ' ') {
      *out = std::strtoll(text.c_str() + pos + family.size() + 1, nullptr, 10);
      return true;
    }
    pos = end + 1;
  }
  return false;
}

bool JsonValue(const std::string& json, const std::string& key,
               long long* out) {
  std::string needle = "\"" + key + "\":";
  size_t pos = json.find(needle);
  if (pos == std::string::npos) return false;
  *out = std::strtoll(json.c_str() + pos + needle.size(), nullptr, 10);
  return true;
}

// /metrics and /stats must be two renderings of the same registry snapshot:
// after a scripted mix of outcomes (successes, a retry, a bad request),
// every /stats counter must equal its qc_server_* Prometheus family. Both
// are fetched over ONE line-protocol connection so no counter moves between
// the two reads (metadata requests are not admitted queries).
TEST(ServerTest, MetricsEndpointAgreesWithStats) {
  ServerOptions opts = TestOptions();
  opts.workers = 2;
  opts.max_retries = 2;
  opts.retry_base_ms = 1;
  opts.retry_max_ms = 4;
  Server server(Db(), opts);
  ASSERT_TRUE(server.Start());

  // Traffic mix: two successes, one retried transient failure, one
  // unroutable request.
  ASSERT_EQ(HttpGet(server.port(), "/query?q=1").code, 200);
  ASSERT_EQ(HttpGet(server.port(), "/query?q=3&level=2").code, 200);
  {
    ScopedFault fault("alloc_heap:1");
    EXPECT_EQ(HttpGet(server.port(), "/query?q=3&level=2").code, 200);
  }
  EXPECT_EQ(server.stats().retries.load(), 1u);
  EXPECT_EQ(HttpGet(server.port(), "/no_such_endpoint").code, 404);

  // The HTTP rendering carries the exposition-format content type and the
  // histogram family the JSON view cannot express.
  HttpResp prom = HttpGet(server.port(), "/metrics");
  ASSERT_EQ(prom.code, 200);
  EXPECT_EQ(prom.headers["Content-Type"], "text/plain; version=0.0.4");
  EXPECT_NE(prom.body.find("# TYPE qc_server_requests_total counter"),
            std::string::npos);
  EXPECT_NE(prom.body.find("qc_server_request_ms_bucket{le=\"+Inf\"}"),
            std::string::npos);
  EXPECT_NE(prom.body.find("qc_server_request_ms_count"), std::string::npos);
  // Engine-level globals ride along in the same exposition.
  EXPECT_NE(prom.body.find("qc_plan_cache_misses_total"), std::string::npos);

  int fd = ConnectTo(server.port());
  std::string metrics = LineBody(LineRequest(fd, "METRICS\n"));
  std::string stats = LineBody(LineRequest(fd, "STATS\n"));
  ::close(fd);
  ASSERT_FALSE(metrics.empty());
  ASSERT_FALSE(stats.empty());

  const char* kCounters[] = {
      "connections",      "requests",        "ok",
      "bad_requests",     "shed_queue_full", "shed_queue_deadline",
      "shed_draining",    "failed_deadline", "failed_cancelled",
      "failed_memory",    "failed_resource", "retries",
      "downshifts",       "disconnect_cancels",
      "drain_kills",      "jit_fallbacks",   "net_faults"};
  for (const char* key : kCounters) {
    SCOPED_TRACE(key);
    long long from_json = -1, from_prom = -1;
    ASSERT_TRUE(JsonValue(stats, key, &from_json));
    ASSERT_TRUE(
        PromValue(metrics, std::string("qc_server_") + key + "_total",
                  &from_prom));
    EXPECT_EQ(from_json, from_prom);
  }
  long long level_json = -1, level_prom = -1;
  ASSERT_TRUE(JsonValue(stats, "downshift_level", &level_json));
  ASSERT_TRUE(PromValue(metrics, "qc_server_downshift_level", &level_prom));
  EXPECT_EQ(level_json, level_prom);

  // Spot-check the mix actually landed in both views.
  long long oks = 0, retries = 0, bad = 0;
  ASSERT_TRUE(JsonValue(stats, "ok", &oks));
  ASSERT_TRUE(JsonValue(stats, "retries", &retries));
  ASSERT_TRUE(JsonValue(stats, "bad_requests", &bad));
  EXPECT_GE(oks, 3);
  EXPECT_EQ(retries, 1);
  EXPECT_GE(bad, 1);
  server.Stop();
}

// ?trace=1 records the request's execution as a Chrome trace, returns its
// id in-band (X-QC-Trace / trace= token), and serves the JSON at
// /debug/trace/<id>; untraced requests stay byte-identical and unknown ids
// 404.
TEST(ServerTest, PerRequestTraceRoundTrip) {
  ServerOptions opts = TestOptions();
  Server server(Db(), opts);
  ASSERT_TRUE(server.Start());

  // Untraced request: no trace header at all.
  HttpResp plain = HttpGet(server.port(), "/query?q=1");
  ASSERT_EQ(plain.code, 200);
  EXPECT_EQ(plain.headers.count("X-QC-Trace"), 0u);

  HttpResp traced = HttpGet(server.port(), "/query?q=1&trace=1");
  ASSERT_EQ(traced.code, 200);
  EXPECT_EQ(traced.body, RefRows(1, 5));  // tracing never changes the rows
  ASSERT_EQ(traced.headers.count("X-QC-Trace"), 1u);
  std::string id = traced.headers["X-QC-Trace"];
  ASSERT_FALSE(id.empty());

  HttpResp trace = HttpGet(server.port(), "/debug/trace/" + id);
  ASSERT_EQ(trace.code, 200);
  EXPECT_EQ(trace.headers["Content-Type"], "application/json");
  EXPECT_NE(trace.body.find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(trace.body.find("\"name\":\"exec\""), std::string::npos);
  EXPECT_NE(trace.body.find("\"ph\":\"X\""), std::string::npos);

  EXPECT_EQ(HttpGet(server.port(), "/debug/trace/999999999").code, 404);
  EXPECT_EQ(HttpGet(server.port(), "/debug/trace/bogus").code, 404);

  // Same round trip over the line protocol: OK header advertises the id,
  // TRACE <id> fetches the JSON.
  int fd = ConnectTo(server.port());
  std::string resp = LineRequest(fd, "QUERY 1 trace=1\n");
  ASSERT_EQ(resp.compare(0, 3, "OK "), 0) << resp;
  std::string header = resp.substr(0, resp.find('\n'));
  size_t tpos = header.find(" trace=");
  ASSERT_NE(tpos, std::string::npos) << header;
  std::string line_id = header.substr(tpos + 7);
  std::string trace_resp = LineRequest(fd, "TRACE " + line_id + "\n");
  ::close(fd);
  ASSERT_EQ(trace_resp.compare(0, 3, "OK "), 0) << trace_resp;
  EXPECT_NE(LineBody(trace_resp).find("\"traceEvents\":["),
            std::string::npos);
  server.Stop();
}

// Chaos sweep over the serving daemon's network fault sites (plus one
// compound network+execution spec): under every injected failure the
// server must neither crash nor hang, every affected client must observe
// either a structured error or a clean disconnect, and after disarming the
// server must serve perfectly again.
TEST(ServerChaosTest, NetworkFaultSitesFailCleanAndServerSurvives) {
  const char* kSpecs[] = {
      "srv_accept:1", "srv_read:1",  "srv_read:3",
      "srv_write:1",  "srv_write:3", "srv_queue:1",
      "srv_read:2,alloc_heap:1",
  };
  for (const char* spec : kSpecs) {
    SCOPED_TRACE(spec);
    ServerOptions opts = TestOptions();
    opts.workers = 2;
    Server server(Db(), opts);
    ASSERT_TRUE(server.Start());
    // Warm before arming so plan compilation is off the chaos path.
    ASSERT_EQ(HttpGet(server.port(), "/query?q=1").code, 200);
    {
      ScopedFault fault(spec);
      for (int i = 0; i < 4; ++i) {
        int fd = ConnectTo(server.port());
        std::string resp = LineRequest(fd, "QUERY 1\n", 5000);
        // Structured outcome or torn connection — both acceptable under
        // injected network failure; crashes and hangs are not.
        EXPECT_TRUE(resp.empty() || resp.compare(0, 3, "OK ") == 0 ||
                    resp.compare(0, 3, "ERR") == 0)
            << resp;
        ::close(fd);
      }
      EXPECT_GE(server.stats().net_faults.load(), 1u);
    }
    // Disarmed: full service, correct bytes.
    HttpResp clean = HttpGet(server.port(), "/query?q=1");
    EXPECT_EQ(clean.code, 200);
    EXPECT_EQ(clean.body, RefRows(1, 5));
    server.Stop();
  }
}

}  // namespace
}  // namespace qc::server
