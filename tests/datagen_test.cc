// Property tests for the synthetic TPC-H generator: determinism, scaling,
// referential integrity of every declared foreign key, the date-ordering
// correlations the queries rely on, and the presence of the value domains
// behind each query's predicates.
#include <gtest/gtest.h>

#include <set>
#include <string>

#include "common/date.h"
#include "common/str.h"
#include "tpch/datagen.h"

namespace qc {
namespace {

storage::Database* Db() {
  static storage::Database* db =
      new storage::Database(tpch::MakeTpchDatabase(0.005, 42));
  return db;
}

TEST(Datagen, DeterministicUnderSeed) {
  storage::Database a = tpch::MakeTpchDatabase(0.002, 9);
  storage::Database b = tpch::MakeTpchDatabase(0.002, 9);
  for (int t = 0; t < a.num_tables(); ++t) {
    ASSERT_EQ(a.table(t).rows(), b.table(t).rows());
    for (size_t c = 0; c < a.table(t).num_columns(); ++c) {
      const auto& ca = a.table(t).column(static_cast<int>(c));
      const auto& cb = b.table(t).column(static_cast<int>(c));
      for (int64_t r = 0; r < a.table(t).rows(); ++r) {
        if (ca.def.type == storage::ColType::kStr) {
          ASSERT_STREQ(ca.data[r].s, cb.data[r].s);
        } else {
          ASSERT_EQ(ca.data[r].i, cb.data[r].i);
        }
      }
    }
  }
}

TEST(Datagen, CardinalitiesScale) {
  storage::Database small = tpch::MakeTpchDatabase(0.002);
  storage::Database big = tpch::MakeTpchDatabase(0.01);
  EXPECT_EQ(small.table(small.TableId("nation")).rows(), 25);
  EXPECT_EQ(small.table(small.TableId("region")).rows(), 5);
  EXPECT_GT(big.table(big.TableId("lineitem")).rows(),
            small.table(small.TableId("lineitem")).rows() * 3);
  // partsupp is exactly 4 rows per part.
  EXPECT_EQ(big.table(big.TableId("partsupp")).rows(),
            big.table(big.TableId("part")).rows() * 4);
}

// Every declared foreign key refers to an existing primary key value.
TEST(Datagen, ReferentialIntegrity) {
  storage::Database& db = *Db();
  for (int t = 0; t < db.num_tables(); ++t) {
    const storage::TableDef& def = db.table(t).def();
    for (const storage::ForeignKey& fk : def.foreign_keys) {
      int ref = db.TableId(fk.ref_table);
      ASSERT_GE(ref, 0);
      std::set<int64_t> keys;
      const auto& ref_col = db.table(ref).column(fk.ref_column);
      for (const Slot& s : ref_col.data) keys.insert(s.i);
      const auto& col = db.table(t).column(fk.column);
      for (const Slot& s : col.data) {
        ASSERT_TRUE(keys.count(s.i) != 0)
            << def.name << "." << def.columns[fk.column].name << " -> "
            << fk.ref_table << " dangling key " << s.i;
      }
    }
  }
}

TEST(Datagen, LineitemDateCorrelations) {
  storage::Database& db = *Db();
  int li = db.TableId("lineitem");
  int ord = db.TableId("orders");
  const auto& t = db.table(li);
  // Map order key -> order date (dense keys).
  std::vector<int64_t> odate(db.table(ord).rows() + 1, 0);
  for (int64_t r = 0; r < db.table(ord).rows(); ++r) {
    odate[db.table(ord).column(0).data[r].i] =
        db.table(ord).column(4).data[r].i;
  }
  for (int64_t r = 0; r < t.rows(); ++r) {
    int64_t ok = t.column(0).data[r].i;
    Date ship = static_cast<Date>(t.column(10).data[r].i);
    Date receipt = static_cast<Date>(t.column(12).data[r].i);
    ASSERT_GT(ship, static_cast<Date>(odate[ok]));  // shipped after ordered
    ASSERT_GT(receipt, ship);                       // received after shipped
  }
}

TEST(Datagen, ReturnFlagAndStatusDomains) {
  storage::Database& db = *Db();
  const auto& t = db.table(db.TableId("lineitem"));
  std::set<std::string> flags, statuses;
  for (int64_t r = 0; r < t.rows(); ++r) {
    flags.insert(t.column(8).data[r].s);
    statuses.insert(t.column(9).data[r].s);
  }
  for (const auto& f : flags) {
    EXPECT_TRUE(f == "R" || f == "A" || f == "N") << f;
  }
  for (const auto& s : statuses) EXPECT_TRUE(s == "O" || s == "F") << s;
  EXPECT_GE(flags.size(), 2u);
}

// Each query's headline predicate must select a non-trivial subset.
TEST(Datagen, PredicateDomainsPopulated) {
  storage::Database& db = *Db();
  {
    // Q19/Q12/Q14 string domains.
    const auto& li = db.table(db.TableId("lineitem"));
    int air = 0, person = 0;
    for (int64_t r = 0; r < li.rows(); ++r) {
      air += std::string(li.column(14).data[r].s) == "AIR";
      person +=
          std::string(li.column(13).data[r].s) == "DELIVER IN PERSON";
    }
    EXPECT_GT(air, 0);
    EXPECT_GT(person, 0);
  }
  {
    // Q9 '%green%' and Q20 'forest%' part names.
    const auto& p = db.table(db.TableId("part"));
    int green = 0, forest = 0;
    for (int64_t r = 0; r < p.rows(); ++r) {
      green += StrContains(p.column(1).data[r].s, "green");
      forest += StrStartsWith(p.column(1).data[r].s, "forest");
    }
    EXPECT_GT(green, 0);
    EXPECT_GT(forest, 0);
  }
  {
    // Q13 comment marker and one-third customers without orders.
    const auto& o = db.table(db.TableId("orders"));
    int special = 0;
    std::set<int64_t> custs;
    for (int64_t r = 0; r < o.rows(); ++r) {
      special += StrLike(o.column(8).data[r].s, "%special%requests%");
      custs.insert(o.column(1).data[r].i);
    }
    EXPECT_GT(special, 0);
    for (int64_t c : custs) EXPECT_NE(c % 3, 0);
  }
  {
    // Q16 supplier complaints.
    const auto& s = db.table(db.TableId("supplier"));
    int complaints = 0;
    for (int64_t r = 0; r < s.rows(); ++r) {
      complaints += StrLike(s.column(6).data[r].s, "%Customer%Complaints%");
    }
    EXPECT_GT(complaints, 0);
  }
  {
    // Q22 phone country codes are two digits derived from the nation.
    const auto& c = db.table(db.TableId("customer"));
    for (int64_t r = 0; r < std::min<int64_t>(c.rows(), 50); ++r) {
      std::string phone = c.column(4).data[r].s;
      int code = std::stoi(phone.substr(0, 2));
      EXPECT_EQ(code, c.column(3).data[r].i + 10);
    }
  }
}

TEST(Datagen, PrimaryKeysAreDense) {
  storage::Database& db = *Db();
  for (const char* name : {"part", "supplier", "customer", "orders"}) {
    const auto& t = db.table(db.TableId(name));
    for (int64_t r = 0; r < t.rows(); ++r) {
      ASSERT_EQ(t.column(0).data[r].i, r + 1) << name;
    }
  }
}

}  // namespace
}  // namespace qc
