// Unit and property tests for the storage layer: order-preserving
// dictionaries, CSR partitioned indexes, PK indexes, statistics, and result
// comparison.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>

#include "common/rng.h"
#include "storage/database.h"
#include "storage/result.h"

namespace qc::storage {
namespace {

Database MakeDb(int rows, uint64_t seed) {
  Database db;
  TableDef t;
  t.name = "T";
  t.columns = {{"k", ColType::kI64}, {"s", ColType::kStr}};
  t.primary_key = -1;
  Table* tt = db.AddTable(t);
  Rng rng(seed);
  const char* words[] = {"kiwi", "apple", "fig", "banana", "date", "cherry"};
  for (int i = 0; i < rows; ++i) {
    tt->column(0).data.push_back(SlotI(rng.Uniform(0, 19)));
    tt->column(1).data.push_back(
        SlotS(tt->InternString(words[rng.Uniform(0, 5)])));
  }
  return db;
}

class DictionaryProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DictionaryProperty, OrderPreservingAndComplete) {
  Database db = MakeDb(200, GetParam());
  const StringDictionary& d = db.Dictionary(0, 1);
  // Codes are the ranks of the sorted distinct values.
  EXPECT_TRUE(
      std::is_sorted(d.sorted_values.begin(), d.sorted_values.end()));
  // Every row decodes back to its original string, and string order equals
  // code order (the §5.3 invariant).
  const Table& t = db.table(0);
  for (int64_t r = 0; r < t.rows(); ++r) {
    int32_t code = d.codes[r];
    ASSERT_GE(code, 0);
    EXPECT_EQ(d.sorted_values[code], t.column(1).data[r].s);
  }
  for (int64_t a = 0; a < t.rows(); ++a) {
    for (int64_t b = a + 1; b < std::min<int64_t>(t.rows(), a + 10); ++b) {
      int cmp = std::strcmp(t.column(1).data[a].s, t.column(1).data[b].s);
      int code_cmp = d.codes[a] < d.codes[b] ? -1
                     : d.codes[a] > d.codes[b] ? 1
                                               : 0;
      EXPECT_EQ(cmp < 0, code_cmp < 0);
      EXPECT_EQ(cmp == 0, code_cmp == 0);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DictionaryProperty,
                         ::testing::Values(1, 2, 3, 42, 99));

TEST(Dictionary, PrefixRange) {
  Database db = MakeDb(100, 5);
  const StringDictionary& d = db.Dictionary(0, 1);
  auto [lo, hi] = d.PrefixRange("ba");  // banana
  ASSERT_LE(lo, hi);
  for (int32_t c = lo; c <= hi; ++c) {
    EXPECT_EQ(d.sorted_values[c].rfind("ba", 0), 0u);
  }
  auto [lo2, hi2] = d.PrefixRange("zzz");
  EXPECT_GT(lo2, hi2);  // empty
  EXPECT_EQ(d.CodeOf("banana") >= 0, true);
  EXPECT_EQ(d.CodeOf("not-present"), -1);
}

class PartitionProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PartitionProperty, BucketsPartitionAllRows) {
  Database db = MakeDb(300, GetParam());
  const PartitionedIndex& idx = db.Partition(0, 0);
  const Table& t = db.table(0);
  // Every row appears in exactly the bucket of its key.
  int64_t total = 0;
  for (int64_t k = 0; k <= idx.max_key; ++k) {
    int64_t len = idx.BucketLen(k);
    total += len;
    for (int64_t j = 0; j < len; ++j) {
      int64_t row = idx.BucketRow(k, j);
      EXPECT_EQ(t.column(0).data[row].i, k);
    }
  }
  EXPECT_EQ(total, t.rows());
  // Out-of-range keys yield empty buckets, not UB.
  EXPECT_EQ(idx.BucketLen(-5), 0);
  EXPECT_EQ(idx.BucketLen(idx.max_key + 100), 0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PartitionProperty,
                         ::testing::Values(7, 8, 9, 1234));

TEST(PkIndex, DenseLookup) {
  Database db;
  TableDef t;
  t.name = "P";
  t.columns = {{"id", ColType::kI64}};
  t.primary_key = 0;
  Table* tt = db.AddTable(t);
  for (int i = 10; i < 20; ++i) tt->column(0).data.push_back(SlotI(i));
  const PkIndex& idx = db.PrimaryIndex(0, 0);
  for (int i = 10; i < 20; ++i) EXPECT_EQ(idx.RowOf(i), i - 10);
  EXPECT_EQ(idx.RowOf(5), -1);   // sparse hole
  EXPECT_EQ(idx.RowOf(-1), -1);  // below range
  EXPECT_EQ(idx.RowOf(25), -1);  // above range
}

TEST(Stats, MinMaxDistinct) {
  Database db = MakeDb(500, 3);
  const ColumnStats& st = db.Stats(0, 0);
  EXPECT_GE(st.min_i64, 0);
  EXPECT_LE(st.max_i64, 19);
  EXPECT_LE(st.distinct, 20);
  EXPECT_GT(st.distinct, 1);
  const ColumnStats& ss = db.Stats(0, 1);
  EXPECT_EQ(ss.distinct, 6);
}

TEST(Stats, LoadSideTimeIsCharged) {
  Database db = MakeDb(100, 3);
  double before = db.load_side_ms();
  db.Dictionary(0, 1);
  db.Partition(0, 0);
  EXPECT_GE(db.load_side_ms(), before);
}

TEST(ResultTable, CanonicalTextAndComparison) {
  ResultTable a({ColType::kI64, ColType::kF64, ColType::kStr, ColType::kDate});
  a.AddRow({SlotI(5), SlotD(3.14159), SlotS(a.InternString("hi")),
            SlotI(19980902)});
  EXPECT_EQ(a.RowToString(0), "5|3.14|hi|1998-09-02");

  ResultTable b({ColType::kI64, ColType::kF64, ColType::kStr, ColType::kDate});
  b.AddRow({SlotI(5), SlotD(3.141), SlotS(b.InternString("hi")),
            SlotI(19980902)});
  EXPECT_TRUE(a.SameRows(b));  // equal at 2 decimals

  ResultTable c({ColType::kI64});
  c.AddRow({SlotI(1)});
  c.AddRow({SlotI(2)});
  ResultTable d({ColType::kI64});
  d.AddRow({SlotI(2)});
  d.AddRow({SlotI(1)});
  EXPECT_TRUE(c.SameRows(d));  // multiset semantics
  ResultTable e({ColType::kI64});
  e.AddRow({SlotI(3)});
  std::string diff;
  EXPECT_FALSE(c.SameRows(e, &diff));
  EXPECT_FALSE(diff.empty());
}

TEST(ResultTable, InternedStringsSurviveGrowth) {
  ResultTable r({ColType::kStr});
  std::vector<const char*> ptrs;
  for (int i = 0; i < 100; ++i) {
    ptrs.push_back(r.InternString("s" + std::to_string(i)));
  }
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(std::string(ptrs[i]), "s" + std::to_string(i));
  }
}

}  // namespace
}  // namespace qc::storage
