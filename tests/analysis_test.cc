// Tests for the static verifier layer (src/analysis/): the bytecode
// abstract-interpretation verifier and the JIT template/patch auditor.
//
// Two halves, mirroring qc_verify:
//  - Acceptance: every bytecode program the stack actually produces — all
//    22 TPC-H queries at both stack levels (pipelined oracle lowering and
//    the full Level-5 compiler), compiled with morsel-parallelism info —
//    must verify with zero violations, and every stitched JIT image must
//    audit clean against its source program.
//  - Rejection: the shared mutation suite (src/analysis/mutations.h).
//    Each deliberately corrupted program / image must be rejected with the
//    *named* invariant, not just "some violation": a verifier that fires
//    the wrong check is not proving what it claims to prove.
#include <gtest/gtest.h>

#include <string>

#include "analysis/bc_verify.h"
#include "analysis/jit_audit.h"
#include "analysis/mutations.h"
#include "compiler/compiler.h"
#include "exec/bytecode.h"
#include "ir/parallel.h"
#include "jit/emitter.h"
#include "lower/pipeline.h"
#include "qplan/plan.h"
#include "storage/database.h"
#include "tpch/datagen.h"
#include "tpch/queries.h"

namespace qc {
namespace {

namespace jit = exec::jit;

using exec::BytecodeCompiler;
using exec::BytecodeProgram;
using exec::analysis::AuditStitch;
using exec::analysis::AuditTemplates;
using exec::analysis::BcMutations;
using exec::analysis::InvariantMatches;
using exec::analysis::JitMutations;
using exec::analysis::VerifyProgram;
using exec::analysis::VerifyResult;

// --------------------------------------------------------------------------
// Acceptance: all 22 queries x both stack levels x {verifier, auditor}.
// --------------------------------------------------------------------------

class AnalysisTpchTest : public ::testing::TestWithParam<int> {
 protected:
  static storage::Database* db() {
    static storage::Database* db =
        new storage::Database(tpch::MakeTpchDatabase(0.002, 7));
    return db;
  }

  // Compiles `fn` to bytecode (with the parallel fragments the morsel
  // runtime would use), verifies it, stitches it, audits the image.
  static void ExpectClean(const ir::Function& fn, const std::string& tag) {
    ir::ParallelInfo par = ir::AnalyzeParallelism(fn);
    BytecodeProgram prog = BytecodeCompiler(db()).Compile(fn, &par);
    VerifyResult vres = VerifyProgram(prog);
    EXPECT_TRUE(vres.ok()) << tag << " bytecode verifier:\n" << vres.Report();
    jit::StitchResult stitched = jit::StitchProgram(prog);
    if (stitched.num_native > 0) {
      VerifyResult ares = AuditStitch(prog, stitched);
      EXPECT_TRUE(ares.ok()) << tag << " jit audit:\n" << ares.Report();
    }
  }
};

TEST_P(AnalysisTpchTest, VerifierAndAuditorAcceptBothStackLevels) {
  int q = GetParam();
  qplan::PlanPtr plan = tpch::MakeQuery(q);
  qplan::ResolvePlan(plan.get(), *db());
  {
    ir::TypeFactory types;
    auto fn = lower::LowerPlanPipelined(*plan, *db(), &types,
                                        "q" + std::to_string(q));
    ExpectClean(*fn, "Q" + std::to_string(q) + " pipelined");
  }
  {
    ir::TypeFactory types;
    compiler::QueryCompiler qc(db(), &types);
    compiler::CompileResult res =
        qc.Compile(*plan, compiler::StackConfig::Level(5),
                   "q" + std::to_string(q) + "_l5");
    ExpectClean(*res.fn, "Q" + std::to_string(q) + " level5");
  }
}

INSTANTIATE_TEST_SUITE_P(AllQueries, AnalysisTpchTest, ::testing::Range(1, 23));

TEST(AnalysisTemplates, TemplateTableAuditsClean) {
  VerifyResult res = AuditTemplates();
  EXPECT_TRUE(res.ok()) << res.Report();
}

// --------------------------------------------------------------------------
// Rejection: the shared mutation suite against the canonical corpus
// program (Q1 at the full stack level, compiled with parallelism info).
// --------------------------------------------------------------------------

class AnalysisMutationTest : public ::testing::Test {
 protected:
  struct Corpus {
    storage::Database db;
    ir::TypeFactory types;
    compiler::CompileResult res;
    ir::ParallelInfo par;
    BytecodeProgram prog;
  };

  static Corpus* corpus() {
    static Corpus* c = [] {
      auto* cp = new Corpus{tpch::MakeTpchDatabase(0.002, 7), {}, {}, {}, {}};
      qplan::PlanPtr plan = tpch::MakeQuery(1);
      qplan::ResolvePlan(plan.get(), cp->db);
      compiler::QueryCompiler qc(&cp->db, &cp->types);
      cp->res = qc.Compile(*plan, compiler::StackConfig::Level(5),
                           "mutation_corpus_q1");
      cp->par = ir::AnalyzeParallelism(*cp->res.fn);
      cp->prog = BytecodeCompiler(&cp->db).Compile(*cp->res.fn, &cp->par);
      return cp;
    }();
    return c;
  }

  // The mutation must be rejected, and with the invariant it claims to
  // violate — a precise diagnostic, not an incidental one.
  static void ExpectRejected(const char* name, const char* invariant,
                             const VerifyResult& res) {
    ASSERT_FALSE(res.ok()) << name << ": corruption accepted";
    bool matched = false;
    for (const auto& v : res.violations) {
      if (InvariantMatches(invariant, v.invariant)) matched = true;
    }
    EXPECT_TRUE(matched) << name << ": expected invariant '" << invariant
                         << "', report:\n"
                         << res.Report();
  }
};

TEST_F(AnalysisMutationTest, CorpusProgramVerifiesClean) {
  VerifyResult res = VerifyProgram(corpus()->prog);
  EXPECT_TRUE(res.ok()) << res.Report();
}

TEST_F(AnalysisMutationTest, EveryBytecodeMutationRejectedByName) {
  for (const auto& m : BcMutations()) {
    BytecodeProgram mutant = corpus()->prog;
    ASSERT_TRUE(m.apply(&mutant))
        << m.name << ": not applicable to the corpus program";
    ExpectRejected(m.name, m.invariant, VerifyProgram(mutant));
  }
}

TEST_F(AnalysisMutationTest, SyntheticImpureParallelComparatorRejected) {
  ExpectRejected("impure-parallel-comparator", "comparator-purity",
                 VerifyProgram(exec::analysis::SyntheticImpureParallelSort()));
}

TEST_F(AnalysisMutationTest, SyntheticTypeConfusionRejected) {
  ExpectRejected("type-confusion", "type-mismatch",
                 VerifyProgram(exec::analysis::SyntheticTypeConfusion()));
}

TEST_F(AnalysisMutationTest, SyntheticCrossRegionJumpRejected) {
  ExpectRejected("cross-region-jump", "jump-region",
                 VerifyProgram(exec::analysis::SyntheticCrossRegionJump()));
}

TEST_F(AnalysisMutationTest, CorpusStitchAuditsClean) {
  jit::StitchResult stitched = jit::StitchProgram(corpus()->prog);
  if (stitched.num_native == 0) GTEST_SKIP() << "nothing stitched natively";
  VerifyResult res = AuditStitch(corpus()->prog, stitched);
  EXPECT_TRUE(res.ok()) << res.Report();
}

TEST_F(AnalysisMutationTest, EveryJitMutationRejectedByName) {
  jit::StitchResult probe = jit::StitchProgram(corpus()->prog);
  if (probe.num_native == 0) GTEST_SKIP() << "nothing stitched natively";
  for (const auto& m : JitMutations()) {
    jit::StitchResult mutant = jit::StitchProgram(corpus()->prog);
    if (!m.apply(corpus()->prog, &mutant)) continue;  // no applicable site
    ExpectRejected(m.name, m.invariant, AuditStitch(corpus()->prog, mutant));
  }
}

}  // namespace
}  // namespace qc
