// Scalar replacement (Appendix C): records whose only observers are field
// reads never need to exist — every kRecGet is replaced by the value the
// field was constructed with, and the allocation becomes dead. Removes a
// memory access (and an allocation) from the critical path.
#ifndef QC_OPT_SCALAR_REPL_H_
#define QC_OPT_SCALAR_REPL_H_

#include <memory>

#include "ir/stmt.h"

namespace qc::opt {

std::unique_ptr<ir::Function> ScalarReplacement(const ir::Function& fn);

}  // namespace qc::opt

#endif  // QC_OPT_SCALAR_REPL_H_
