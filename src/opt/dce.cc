#include "opt/dce.h"

#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace qc::opt {

using ir::Block;
using ir::Op;
using ir::Stmt;

namespace {

bool IsStore(Op op) {
  switch (op) {
    case Op::kVarAssign:
    case Op::kRecSet:
    case Op::kArrSet:
    case Op::kListAppend:
    case Op::kMMapAdd:
    case Op::kArrSortBy:
    case Op::kListSortBy:
    case Op::kMapGetOrElseUpdate:
    case Op::kFree:
      return true;
    default:
      return false;
  }
}

class DcePass {
 public:
  int Run(ir::Function* fn) {
    Index(fn->body(), nullptr);
    // Seed: emissions are always observable.
    for (Stmt* s : all_) {
      if (s->op == Op::kEmit) MarkLive(s);
    }
    while (!worklist_.empty()) {
      Stmt* s = worklist_.back();
      worklist_.pop_back();
      Process(s);
    }
    int removed = 0;
    Prune(fn->body(), &removed);
    return removed;
  }

 private:
  // Ops whose result is a reference *into* an existing object: a store
  // through such a derived reference mutates the base object, so liveness of
  // any node along the chain keeps the store alive.
  static bool IsDerivedRef(Op op) {
    switch (op) {
      case Op::kArrGet:
      case Op::kListGet:
      case Op::kRecGet:
      case Op::kVarRead:
      case Op::kMapGetOrElseUpdate:
      case Op::kMapGetOrNull:
      case Op::kMMapGetOrNull:
      case Op::kCast:
        return true;
      default:
        return false;
    }
  }

  void Index(Block* b, Stmt* parent) {
    for (Stmt* s : b->stmts) {
      all_.push_back(s);
      parent_[s] = parent;
      if (IsStore(s->op) && !s->args.empty()) {
        // Register the store against the whole derivation chain of its
        // target; a store whose chain escapes into a block parameter is
        // conservatively live.
        Stmt* t = s->args[0];
        while (true) {
          stores_on_[t].push_back(s);
          if (ir::IsParam(t)) {
            MarkLive(s);
            break;
          }
          if (!IsDerivedRef(t->op) || t->args.empty()) break;
          t = t->args[0];
        }
      }
      for (Block* nb : s->blocks) Index(nb, s);
    }
  }

  void MarkLive(Stmt* s) {
    if (s == nullptr || live_.count(s) != 0) return;
    live_.insert(s);
    worklist_.push_back(s);
  }

  void Process(Stmt* s) {
    for (Stmt* a : s->args) MarkLive(a);
    for (Block* nb : s->blocks) {
      if (nb->result != nullptr) MarkLive(nb->result);
    }
    auto pit = parent_.find(s);
    if (pit != parent_.end() && pit->second != nullptr) MarkLive(pit->second);
    auto sit = stores_on_.find(s);
    if (sit != stores_on_.end()) {
      for (Stmt* st : sit->second) MarkLive(st);
    }
  }

  void Prune(Block* b, int* removed) {
    std::vector<Stmt*> kept;
    kept.reserve(b->stmts.size());
    for (Stmt* s : b->stmts) {
      if (live_.count(s) == 0) {
        ++*removed;
        continue;
      }
      for (Block* nb : s->blocks) Prune(nb, removed);
      kept.push_back(s);
    }
    b->stmts = std::move(kept);
  }

  std::vector<Stmt*> all_;
  std::unordered_map<Stmt*, Stmt*> parent_;
  std::unordered_map<Stmt*, std::vector<Stmt*>> stores_on_;
  std::unordered_set<Stmt*> live_;
  std::vector<Stmt*> worklist_;
};

}  // namespace

int DeadCodeElimination(ir::Function* fn) { return DcePass().Run(fn); }

}  // namespace qc::opt
