#include "opt/mark_lib.h"

namespace qc::opt {

using ir::Block;
using ir::Op;
using ir::Stmt;

namespace {

bool IsCollectionOp(Op op) {
  switch (op) {
    case Op::kMapNew:
    case Op::kMapGetOrElseUpdate:
    case Op::kMapGetOrNull:
    case Op::kMapForeach:
    case Op::kMapSize:
    case Op::kMMapNew:
    case Op::kMMapAdd:
    case Op::kMMapGetOrNull:
    case Op::kListNew:
    case Op::kListAppend:
    case Op::kListForeach:
    case Op::kListSize:
    case Op::kListGet:
    case Op::kListSortBy:
      return true;
    default:
      return false;
  }
}

int MarkBlock(Block* b) {
  int n = 0;
  for (Stmt* s : b->stmts) {
    if (IsCollectionOp(s->op) && !s->lib_call) {
      s->lib_call = true;
      ++n;
    }
    for (Block* nb : s->blocks) n += MarkBlock(nb);
  }
  return n;
}

}  // namespace

int MarkLibraryCollections(ir::Function* fn) { return MarkBlock(fn->body()); }

}  // namespace qc::opt
