// Shared def-use indexing over the ANF IR (single-definition symbols make
// this a plain multimap). Used by the analysis-driven passes.
#ifndef QC_OPT_USERS_H_
#define QC_OPT_USERS_H_

#include <unordered_map>
#include <vector>

#include "ir/stmt.h"

namespace qc::opt {

struct UseIndex {
  // statement -> statements using it as an argument
  std::unordered_map<const ir::Stmt*, std::vector<const ir::Stmt*>> users;
  // statement -> the block-carrying statement whose block contains it
  std::unordered_map<const ir::Stmt*, const ir::Stmt*> parent;

  const std::vector<const ir::Stmt*>& UsersOf(const ir::Stmt* s) const {
    static const std::vector<const ir::Stmt*> kEmpty;
    auto it = users.find(s);
    return it == users.end() ? kEmpty : it->second;
  }
};

UseIndex BuildUseIndex(const ir::Function& fn);

}  // namespace qc::opt

#endif  // QC_OPT_USERS_H_
