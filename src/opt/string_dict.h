// String dictionaries (§5.3, Table 2): string operations against constants
// on dictionary-eligible columns become integer operations on
// order-preserving dictionary codes built at load time:
//
//     equals      strcmp(x,y)==0             ->  x == code
//     notEquals   strcmp(x,y)!=0             ->  x != code
//     lessThan    strcmp(x,y)<0              ->  x <  code   (ordered dict)
//     startsWith  strncmp(x,y,strlen(y))==0  ->  lo <= x && x <= hi
//
// Additionally, string components of hash *keys* (group-by key records) are
// replaced by their dictionary codes, which both removes strcmp/hashing from
// the per-row path and gives the keys a small known range — unlocking
// direct-addressed aggregation in the hash-specialization pass (the Q1
// partitioning effect). Output values (kEmit arguments, record fields used
// for output) are untouched, so results still carry real strings.
//
// Following §5.3's caveat, columns with too many distinct values (comments,
// names, addresses) are not eligible: the dictionary would be large and the
// load-time cost unjustified.
#ifndef QC_OPT_STRING_DICT_H_
#define QC_OPT_STRING_DICT_H_

#include <memory>

#include "ir/stmt.h"
#include "storage/database.h"

namespace qc::opt {

struct StringDictOptions {
  // Columns with more distinct values than this are left alone.
  int64_t max_distinct = 1024;
  // Also rewrite string components of hash keys to dictionary codes.
  bool rewrite_hash_keys = true;
};

std::unique_ptr<ir::Function> ApplyStringDictionaries(
    const ir::Function& fn, storage::Database* db,
    const StringDictOptions& options = {});

}  // namespace qc::opt

#endif  // QC_OPT_STRING_DICT_H_
