#include "opt/cond_flatten.h"

#include "ir/rewrite.h"

namespace qc::opt {

namespace {

class CondFlattener : public ir::Cloner {
 protected:
  ir::Stmt* Transform(const ir::Stmt* s) override {
    if (s->op != ir::Op::kAnd) return nullptr;
    return b().BitAnd(Lookup(s->args[0]), Lookup(s->args[1]));
  }
};

}  // namespace

std::unique_ptr<ir::Function> FlattenConditions(const ir::Function& fn) {
  return CondFlattener().Run(fn);
}

}  // namespace qc::opt
