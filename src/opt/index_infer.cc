#include "opt/index_infer.h"

#include <map>
#include <memory>
#include <set>
#include <vector>

#include "ir/rewrite.h"
#include "opt/users.h"

namespace qc::opt {

using ir::Block;
using ir::Op;
using ir::Stmt;

namespace {

struct InferredIndex {
  const Stmt* mmap_new = nullptr;
  const Stmt* build_loop = nullptr;   // the ForRange over the base table
  const Stmt* build_recnew = nullptr;
  const Stmt* build_add = nullptr;
  const Stmt* probe_get = nullptr;    // mmap_get_or_null
  const Stmt* probe_isnull = nullptr;
  const Stmt* probe_not = nullptr;
  const Stmt* probe_if = nullptr;
  const Stmt* probe_foreach = nullptr;
  int table = -1;
  int column = -1;
  bool is_pk = false;
};

// True if every statement inside the loop is pure computation, an If-filter,
// or the single rec_new/mmap_add pair (i.e. the build side is a scan of one
// base table with optional selections — Fig. 7's applicability condition).
bool ValidateBuildLoop(const Block* b, const Stmt* recnew, const Stmt* add) {
  for (const Stmt* s : b->stmts) {
    if (s == recnew || s == add) continue;
    if (s->op == Op::kIf) {
      if (s->blocks.size() > 1 && !s->blocks[1]->stmts.empty()) return false;
      if (!ValidateBuildLoop(s->blocks[0], recnew, add)) return false;
      continue;
    }
    if (s->HasEffect()) return false;
    if (!s->blocks.empty()) return false;
  }
  return true;
}

class IndexInferencePass : public ir::Cloner {
 public:
  explicit IndexInferencePass(storage::Database* db) : db_(db) {}

  void Analyze(const ir::Function& fn) {
    UseIndex idx = BuildUseIndex(fn);
    for (const auto& [s, p] : idx.parent) {
      (void)p;
      if (s->op == Op::kMMapNew) TryInfer(s, idx);
    }
  }

 protected:
  Stmt* Transform(const Stmt* s) override {
    // Field reads on a spliced foreach element resolve to the cloned
    // build-record argument (the record never materializes).
    if (s->op == Op::kRecGet && !splice_stack_.empty()) {
      for (auto it = splice_stack_.rbegin(); it != splice_stack_.rend();
           ++it) {
        if (s->args[0] == it->elem_param) return it->field_values[s->aux0];
      }
    }

    if (drop_.count(s) != 0) return Drop();

    auto it = probe_sites_.find(s);
    if (it != probe_sites_.end()) {
      EmitProbe(*it->second);
      return Drop();
    }

    auto add_it = spliced_adds_.find(s);
    if (add_it != spliced_adds_.end()) {
      SpliceForeachBody(*add_it->second);
      return Drop();
    }
    return nullptr;
  }

 private:
  void TryInfer(const Stmt* mm, const UseIndex& idx) {
    InferredIndex info;
    info.mmap_new = mm;

    for (const Stmt* u : idx.UsersOf(mm)) {
      if (u->op == Op::kMMapAdd) {
        if (info.build_add != nullptr) return;  // exactly one build site
        info.build_add = u;
      } else if (u->op == Op::kMMapGetOrNull) {
        if (info.probe_get != nullptr) return;  // exactly one probe site
        info.probe_get = u;
      } else {
        return;
      }
    }
    if (info.build_add == nullptr || info.probe_get == nullptr) return;

    // Build side: key must be a PK/FK column of the scanned table.
    const Stmt* key = info.build_add->args[1];
    if (key->op == Op::kCast) key = key->args[0];
    if (key->op != Op::kColGet) return;
    info.table = key->aux0;
    info.column = key->aux1;
    const storage::TableDef& def = db_->table(info.table).def();
    info.is_pk = def.primary_key == info.column;
    if (!info.is_pk && !def.IsForeignKey(info.column)) return;

    const Stmt* rec = info.build_add->args[2];
    if (rec->op != Op::kRecNew) return;
    info.build_recnew = rec;

    // Locate the enclosing ForRange over table_rows(T) with row = loop var.
    const Stmt* p = info.build_add;
    while (true) {
      auto pit = idx.parent.find(p);
      if (pit == idx.parent.end() || pit->second == nullptr) return;
      p = pit->second;
      if (p->op == Op::kForRange) break;
      if (p->op != Op::kIf) return;
    }
    if (p->args[1]->op != Op::kTableRows || p->args[1]->aux0 != info.table) {
      return;
    }
    if (p->args[0]->op != Op::kConst || p->args[0]->ival != 0) return;
    if (key->args[0] != p->blocks[0]->params[0]) return;
    if (!ValidateBuildLoop(p->blocks[0], info.build_recnew, info.build_add)) {
      return;
    }
    info.build_loop = p;

    // Probe side: lst -> is_null -> not -> if { foreach } (the exact shape
    // the pipelining lowering emits).
    const Stmt* lst = info.probe_get;
    const Stmt *isnull = nullptr, *foreach_s = nullptr;
    for (const Stmt* u : idx.UsersOf(lst)) {
      if (u->op == Op::kIsNull && isnull == nullptr) {
        isnull = u;
      } else if (u->op == Op::kListForeach && foreach_s == nullptr) {
        foreach_s = u;
      } else {
        return;
      }
    }
    if (isnull == nullptr || foreach_s == nullptr) return;
    const Stmt* not_s = nullptr;
    for (const Stmt* u : idx.UsersOf(isnull)) {
      if (u->op != Op::kNot || not_s != nullptr) return;
      not_s = u;
    }
    if (not_s == nullptr) return;
    const Stmt* if_s = nullptr;
    for (const Stmt* u : idx.UsersOf(not_s)) {
      if (u->op != Op::kIf || if_s != nullptr) return;
      if_s = u;
    }
    if (if_s == nullptr) return;
    // The then-branch must consist of exactly the foreach.
    if (if_s->blocks[0]->stmts.size() != 1 ||
        if_s->blocks[0]->stmts[0] != foreach_s) {
      return;
    }
    // All uses of the foreach element are field reads (no escape).
    const Stmt* elem = foreach_s->blocks[0]->params[0];
    for (const Stmt* u : idx.UsersOf(elem)) {
      if (u->op != Op::kRecGet) return;
    }

    info.probe_isnull = isnull;
    info.probe_not = not_s;
    info.probe_if = if_s;
    info.probe_foreach = foreach_s;

    inferred_.push_back(std::make_unique<InferredIndex>(info));
    InferredIndex* stored = inferred_.back().get();
    drop_.insert(mm);
    drop_.insert(info.build_loop);
    drop_.insert(info.probe_get);
    drop_.insert(info.probe_isnull);
    drop_.insert(info.probe_not);
    probe_sites_[info.probe_if] = stored;
    spliced_adds_[info.build_add] = stored;

    // Build the load-time index now: construction is charged to loading.
    if (info.is_pk) {
      db_->PrimaryIndex(info.table, info.column);
    } else {
      db_->Partition(info.table, info.column);
    }
  }

  // Replaces the probe If: iterate matching base-table rows through the
  // load-time index and inline the (filtered) build body per row.
  void EmitProbe(const InferredIndex& info) {
    Stmt* key = Lookup(info.probe_get->args[1]);
    if (info.is_pk) {
      Stmt* row = b().IdxPkRow(info.table, info.column, key);
      b().If(b().Ge(row, b().I64(0)), [&] { InlineBuildBody(info, row); });
    } else {
      Stmt* len = b().IdxBucketLen(info.table, info.column, key);
      b().ForRange(b().I64(0), len, [&](Stmt* j) {
        Stmt* row = b().IdxBucketRow(info.table, info.column, key, j);
        InlineBuildBody(info, row);
      });
    }
  }

  void InlineBuildBody(const InferredIndex& info, Stmt* row) {
    // Clone the build loop body with the loop variable bound to `row`; the
    // registered mmap_add inside it splices the probe's foreach body.
    Map(info.build_loop->blocks[0]->params[0], row);
    CloneBlockBody(info.build_loop->blocks[0]);
  }

  void SpliceForeachBody(const InferredIndex& info) {
    Splice sp;
    sp.elem_param = info.probe_foreach->blocks[0]->params[0];
    for (const Stmt* a : info.build_recnew->args) {
      sp.field_values.push_back(Lookup(a));
    }
    splice_stack_.push_back(std::move(sp));
    CloneBlockBody(info.probe_foreach->blocks[0]);
    splice_stack_.pop_back();
  }

  struct Splice {
    const Stmt* elem_param = nullptr;
    std::vector<Stmt*> field_values;
  };

  storage::Database* db_;
  std::vector<std::unique_ptr<InferredIndex>> inferred_;
  std::set<const Stmt*> drop_;
  std::map<const Stmt*, const InferredIndex*> probe_sites_;
  std::map<const Stmt*, const InferredIndex*> spliced_adds_;
  std::vector<Splice> splice_stack_;
};

}  // namespace

std::unique_ptr<ir::Function> InferIndexes(const ir::Function& fn,
                                           storage::Database* db) {
  IndexInferencePass pass(db);
  pass.Analyze(fn);
  return pass.Run(fn);
}

}  // namespace qc::opt
