#include "opt/pool_hoist.h"

#include <map>
#include <vector>

#include "ir/rewrite.h"

namespace qc::opt {

using ir::Block;
using ir::Op;
using ir::Stmt;
using ir::Type;

namespace {

void CollectRecordTypes(const Block* b, std::vector<const Type*>* out) {
  for (const Stmt* s : b->stmts) {
    if (s->op == Op::kRecNew) {
      bool seen = false;
      for (const Type* t : *out) seen |= (t == s->type);
      if (!seen) out->push_back(s->type);
    }
    for (const Block* nb : s->blocks) CollectRecordTypes(nb, out);
  }
}

class PoolHoister : public ir::Cloner {
 public:
  explicit PoolHoister(const storage::Database& db) : db_(&db) {}

 protected:
  void Prologue(const ir::Function& src) override {
    std::vector<const Type*> rec_types;
    CollectRecordTypes(src.body(), &rec_types);
    // Worst-case cardinality: no intermediate collection in our operator
    // repertoire exceeds the total number of base rows feeding the query
    // (joins are key--foreign-key), so the sum of base-table cardinalities
    // is the static upper bound the paper derives from load-time statistics.
    int64_t worst_case = 0;
    for (int t = 0; t < db_->num_tables(); ++t) {
      worst_case += db_->table(t).rows();
    }
    for (const Type* t : rec_types) {
      pools_[t] = b().PoolNew(t, b().I64(worst_case));
    }
  }

  Stmt* Transform(const Stmt* s) override {
    if (s->op != Op::kRecNew) return nullptr;
    std::vector<Stmt*> args;
    args.reserve(s->args.size() + 1);
    args.push_back(pools_.at(s->type));
    for (const Stmt* a : s->args) args.push_back(Lookup(a));
    return b().Emit(Op::kPoolRecNew, s->type, std::move(args));
  }

 private:
  const storage::Database* db_;
  std::map<const Type*, Stmt*> pools_;
};

}  // namespace

std::unique_ptr<ir::Function> HoistMemoryAllocations(
    const ir::Function& fn, const storage::Database& db) {
  return PoolHoister(db).Run(fn);
}

}  // namespace qc::opt
