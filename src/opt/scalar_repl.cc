#include "opt/scalar_repl.h"

#include <unordered_map>
#include <unordered_set>

#include "ir/rewrite.h"

namespace qc::opt {

using ir::Block;
using ir::Op;
using ir::Stmt;

namespace {

// Records eligible for replacement: every use is a kRecGet (no escape into
// collections, no kRecSet mutation, not a block result).
void FindReplaceable(const Block* b,
                     std::unordered_map<const Stmt*, bool>* eligible) {
  for (const Stmt* s : b->stmts) {
    if (s->op == Op::kRecNew) eligible->emplace(s, true);
    for (size_t i = 0; i < s->args.size(); ++i) {
      const Stmt* a = s->args[i];
      if (s->op == Op::kRecGet && i == 0) continue;  // reading is fine
      auto it = eligible->find(a);
      if (it != eligible->end()) it->second = false;
    }
    if (b->result != nullptr) {
      auto it = eligible->find(b->result);
      if (it != eligible->end()) it->second = false;
    }
    for (const Block* nb : s->blocks) FindReplaceable(nb, eligible);
  }
}

class ScalarReplacer : public ir::Cloner {
 public:
  void Analyze(const ir::Function& fn) {
    FindReplaceable(fn.body(), &eligible_);
  }

 protected:
  Stmt* Transform(const Stmt* s) override {
    if (s->op == Op::kRecGet) {
      auto it = eligible_.find(s->args[0]);
      if (it != eligible_.end() && it->second) {
        // Field value flows directly; the record is never materialized.
        return Lookup(s->args[0]->args[s->aux0]);
      }
    }
    return nullptr;
  }

 private:
  std::unordered_map<const Stmt*, bool> eligible_;
};

}  // namespace

std::unique_ptr<ir::Function> ScalarReplacement(const ir::Function& fn) {
  ScalarReplacer r;
  r.Analyze(fn);
  return r.Run(fn);
}

}  // namespace qc::opt
