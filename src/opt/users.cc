#include "opt/users.h"

namespace qc::opt {

namespace {

void Walk(const ir::Block* b, const ir::Stmt* parent, UseIndex* idx) {
  for (const ir::Stmt* s : b->stmts) {
    idx->parent[s] = parent;
    for (const ir::Stmt* a : s->args) idx->users[a].push_back(s);
    for (const ir::Block* nb : s->blocks) Walk(nb, s, idx);
  }
}

}  // namespace

UseIndex BuildUseIndex(const ir::Function& fn) {
  UseIndex idx;
  Walk(fn.body(), nullptr, &idx);
  return idx;
}

}  // namespace qc::opt
