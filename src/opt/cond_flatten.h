// Fine-grained optimization (Appendix E): rewrites `x && y` into the
// non-short-circuiting `x & y` when the second operand is side-effect free
// (always true for IR booleans, which are pure by construction). The C
// backend emits `&`, trading a branch for straight-line evaluation to help
// branch prediction.
#ifndef QC_OPT_COND_FLATTEN_H_
#define QC_OPT_COND_FLATTEN_H_

#include <memory>

#include "ir/stmt.h"

namespace qc::opt {

std::unique_ptr<ir::Function> FlattenConditions(const ir::Function& fn);

}  // namespace qc::opt

#endif  // QC_OPT_COND_FLATTEN_H_
