#include "opt/string_dict.h"

#include <algorithm>
#include <map>
#include <set>
#include <string>

#include "ir/rewrite.h"
#include "opt/users.h"

namespace qc::opt {

using ir::Op;
using ir::Stmt;
using ir::Type;
using ir::TypeKind;

namespace {

class DictPass : public ir::Cloner {
 public:
  DictPass(storage::Database* db, const StringDictOptions& options)
      : db_(db), options_(options) {}

  void Analyze(const ir::Function& fn) {
    if (!options_.rewrite_hash_keys) return;
    UseIndex idx = BuildUseIndex(fn);
    // Hash keys: record-key constructions reaching map/mmap operations where
    // every string component is a dictionary-eligible column read.
    std::map<const Stmt*, std::vector<const Stmt*>> map_keys;
    CollectKeyRecNews(fn.body(), &map_keys);
    for (const auto& [map_stmt, recnews] : map_keys) {
      bool ok = true;
      bool any_str = false;
      for (const Stmt* rn : recnews) {
        for (const Stmt* comp : rn->args) {
          if (comp->type->kind != TypeKind::kStr) continue;
          any_str = true;
          if (!Dictable(comp)) ok = false;
        }
      }
      if (!ok || !any_str) continue;
      // The foreach key parameter (if any) must be unused: its type changes.
      if (ForeachKeyUsed(map_stmt, idx)) continue;
      rewritten_maps_.insert(map_stmt);
      for (const Stmt* rn : recnews) rewritten_keys_.insert(rn);
    }
  }

 protected:
  Stmt* Transform(const Stmt* s) override {
    switch (s->op) {
      case Op::kStrEq:
      case Op::kStrNe: {
        auto [col, cst] = ColVsConst(s);
        if (col == nullptr) return nullptr;
        const storage::StringDictionary& d =
            db_->Dictionary(col->aux0, col->aux1);
        int32_t code = d.CodeOf(cst->sval);
        if (code < 0) {
          // The constant never occurs: the comparison is statically decided.
          return b().BoolC(s->op == Op::kStrNe);
        }
        Stmt* dc = DictRead(col);
        return s->op == Op::kStrEq ? b().Eq(dc, b().I32(code))
                                   : b().Ne(dc, b().I32(code));
      }
      case Op::kStrLt: {
        // Ordered dictionary: rank comparisons replace strcmp.
        const Stmt *a = s->args[0], *c = s->args[1];
        if (IsDictableCol(a) && c->op == Op::kConst) {
          const storage::StringDictionary& d = db_->Dictionary(a->aux0, a->aux1);
          auto lb = std::lower_bound(d.sorted_values.begin(),
                                     d.sorted_values.end(), c->sval);
          int32_t rank = static_cast<int32_t>(lb - d.sorted_values.begin());
          return b().Lt(DictRead(a), b().I32(rank));
        }
        if (a->op == Op::kConst && IsDictableCol(c)) {
          const storage::StringDictionary& d = db_->Dictionary(c->aux0, c->aux1);
          auto ub = std::upper_bound(d.sorted_values.begin(),
                                     d.sorted_values.end(), a->sval);
          int32_t rank = static_cast<int32_t>(ub - d.sorted_values.begin());
          return b().Ge(DictRead(c), b().I32(rank));
        }
        return nullptr;
      }
      case Op::kStrStartsWith: {
        const Stmt *a = s->args[0], *c = s->args[1];
        if (!IsDictableCol(a) || c->op != Op::kConst) return nullptr;
        const storage::StringDictionary& d = db_->Dictionary(a->aux0, a->aux1);
        auto [lo, hi] = d.PrefixRange(c->sval);
        if (lo > hi) return b().BoolC(false);
        Stmt* dc = DictRead(a);
        return b().And(b().Ge(dc, b().I32(lo)), b().Le(dc, b().I32(hi)));
      }
      case Op::kRecNew: {
        if (rewritten_keys_.count(s) == 0) return nullptr;
        const Type* nt = DictKeyType(s->type->record);
        std::vector<Stmt*> args;
        for (const Stmt* comp : s->args) {
          if (comp->type->kind == TypeKind::kStr) {
            args.push_back(DictRead(comp));
          } else {
            args.push_back(Lookup(comp));
          }
        }
        return b().RecNew(nt, std::move(args));
      }
      case Op::kMapNew: {
        if (rewritten_maps_.count(s) == 0) return nullptr;
        Stmt* m = b().MapNew(DictKeyType(s->type->key->record),
                             s->type->value);
        m->aux0 = s->aux0;
        m->aux1 = s->aux1;
        return m;
      }
      case Op::kMMapNew: {
        if (rewritten_maps_.count(s) == 0) return nullptr;
        Stmt* m = b().MMapNew(DictKeyType(s->type->key->record),
                              s->type->value);
        m->aux0 = s->aux0;
        return m;
      }
      default:
        return nullptr;
    }
  }

 private:
  bool IsDictableCol(const Stmt* s) const {
    return s->op == Op::kColGet && s->type->kind == TypeKind::kStr &&
           Dictable(s);
  }

  bool Dictable(const Stmt* col) const {
    if (col->op != Op::kColGet || col->type->kind != TypeKind::kStr) {
      return false;
    }
    return db_->Stats(col->aux0, col->aux1).distinct <= options_.max_distinct;
  }

  // Reads the dictionary code column in place of the string column.
  Stmt* DictRead(const Stmt* col) {
    return b().ColDict(col->aux0, col->aux1, Lookup(col->args[0]));
  }

  std::pair<const Stmt*, const Stmt*> ColVsConst(const Stmt* s) const {
    const Stmt *a = s->args[0], *c = s->args[1];
    if (IsDictableCol(a) && c->op == Op::kConst) return {a, c};
    if (IsDictableCol(c) && a->op == Op::kConst) return {c, a};
    return {nullptr, nullptr};
  }

  const Type* DictKeyType(const ir::RecordSchema* rec) {
    std::vector<ir::Field> fields;
    for (size_t i = 0; i < rec->fields.size(); ++i) {
      const Type* ft = rec->fields[i].type;
      if (ft->kind == TypeKind::kStr) {
        ft = b().types()->I32();
      }
      fields.push_back(ir::Field{rec->fields[i].name, ft});
    }
    return b().types()->Record(rec->name + "_dc", std::move(fields));
  }

  void CollectKeyRecNews(
      const ir::Block* blk,
      std::map<const Stmt*, std::vector<const Stmt*>>* out) {
    for (const Stmt* s : blk->stmts) {
      const Stmt* key = nullptr;
      const Stmt* map_stmt = nullptr;
      if (s->op == Op::kMapGetOrElseUpdate || s->op == Op::kMMapAdd ||
          s->op == Op::kMMapGetOrNull) {
        map_stmt = s->args[0];
        key = s->args[1];
      }
      if (key != nullptr && key->op == Op::kRecNew &&
          (map_stmt->op == Op::kMapNew || map_stmt->op == Op::kMMapNew)) {
        (*out)[map_stmt].push_back(key);
      }
      for (const ir::Block* nb : s->blocks) CollectKeyRecNews(nb, out);
    }
  }

  bool ForeachKeyUsed(const Stmt* map_stmt, const UseIndex& idx) const {
    for (const Stmt* u : idx.UsersOf(map_stmt)) {
      if (u->op != Op::kMapForeach) continue;
      const Stmt* key_param = u->blocks[0]->params[0];
      if (!idx.UsersOf(key_param).empty()) return true;
    }
    return false;
  }

  storage::Database* db_;
  StringDictOptions options_;
  std::set<const Stmt*> rewritten_maps_;
  std::set<const Stmt*> rewritten_keys_;
};

}  // namespace

std::unique_ptr<ir::Function> ApplyStringDictionaries(
    const ir::Function& fn, storage::Database* db,
    const StringDictOptions& options) {
  DictPass pass(db, options);
  pass.Analyze(fn);
  return pass.Run(fn);
}

}  // namespace qc::opt
