#include "opt/range.h"

#include <algorithm>

namespace qc::opt {

using ir::Block;
using ir::Op;
using ir::Stmt;
using ir::TypeKind;

RangeAnalysis::RangeAnalysis(const ir::Function& fn, storage::Database* db)
    : db_(db) {
  IndexRecordSources(fn.body());
}

void RangeAnalysis::IndexRecordSources(const Block* b) {
  for (const Stmt* s : b->stmts) {
    if (s->op == Op::kRecNew) {
      for (size_t i = 0; i < s->args.size(); ++i) {
        field_sources_[{s->type->record, static_cast<int>(i)}].push_back(
            s->args[i]);
      }
    } else if (s->op == Op::kRecSet) {
      const ir::RecordSchema* rec = s->args[0]->type->record;
      if (rec != nullptr) {
        field_sources_[{rec, s->aux0}].push_back(s->args[1]);
      }
    }
    for (const Block* nb : s->blocks) IndexRecordSources(nb);
  }
}

ValueRange RangeAnalysis::Of(const Stmt* s) {
  auto it = memo_.find(s);
  if (it != memo_.end()) return it->second;
  if (in_progress_[s]) return ValueRange{};  // cycle via var/field: unknown
  in_progress_[s] = true;
  ValueRange r = Compute(s);
  in_progress_[s] = false;
  return memo_[s] = r;
}

ValueRange RangeAnalysis::Compute(const Stmt* s) {
  if (s->type == nullptr || !s->type->IsIntegral()) return {};
  switch (s->op) {
    case Op::kConst:
      return ValueRange{true, s->ival, s->ival};
    case Op::kCast:
      return Of(s->args[0]);
    case Op::kColGet: {
      const storage::Column& col = db_->table(s->aux0).column(s->aux1);
      if (col.def.type == storage::ColType::kF64 ||
          col.def.type == storage::ColType::kStr) {
        return {};
      }
      const storage::ColumnStats& st = db_->Stats(s->aux0, s->aux1);
      return ValueRange{true, st.min_i64, st.max_i64};
    }
    case Op::kColDict: {
      const storage::StringDictionary& d = db_->Dictionary(s->aux0, s->aux1);
      return ValueRange{true, 0,
                        static_cast<int64_t>(d.sorted_values.size()) - 1};
    }
    case Op::kAdd: {
      ValueRange a = Of(s->args[0]), b = Of(s->args[1]);
      if (!a.known || !b.known) return {};
      return ValueRange{true, a.lo + b.lo, a.hi + b.hi};
    }
    case Op::kSub: {
      ValueRange a = Of(s->args[0]), b = Of(s->args[1]);
      if (!a.known || !b.known) return {};
      return ValueRange{true, a.lo - b.hi, a.hi - b.lo};
    }
    case Op::kMul: {
      ValueRange a = Of(s->args[0]), b = Of(s->args[1]);
      if (!a.known || !b.known) return {};
      int64_t c[4] = {a.lo * b.lo, a.lo * b.hi, a.hi * b.lo, a.hi * b.hi};
      return ValueRange{true, *std::min_element(c, c + 4),
                        *std::max_element(c, c + 4)};
    }
    case Op::kDiv: {
      // Only division by a positive constant (the YEAR() pattern d / 10000).
      ValueRange a = Of(s->args[0]), b = Of(s->args[1]);
      if (!a.known || !b.known || b.lo != b.hi || b.lo <= 0) return {};
      return ValueRange{true, a.lo / b.lo, a.hi / b.lo};
    }
    case Op::kRecGet: {
      const ir::RecordSchema* rec =
          s->args[0]->type->kind == TypeKind::kRecord
              ? s->args[0]->type->record
              : nullptr;
      if (rec == nullptr) return {};
      auto it = field_sources_.find({rec, s->aux0});
      if (it == field_sources_.end() || it->second.empty()) return {};
      ValueRange acc{true, INT64_MAX, INT64_MIN};
      for (const Stmt* src : it->second) {
        ValueRange r = Of(src);
        if (!r.known) return {};
        acc.lo = std::min(acc.lo, r.lo);
        acc.hi = std::max(acc.hi, r.hi);
      }
      return acc;
    }
    default:
      return {};
  }
}

}  // namespace qc::opt
