// Memory-allocation hoisting (Appendix D.1): part of the ScaLite -> C.Lite
// lowering. Every record allocation (kRecNew, which at C level means one
// malloc per record) is replaced by an allocation from a per-record-type
// memory pool created once at the top of the function. Pool capacities carry
// the worst-case cardinality estimate derived from base-table statistics.
#ifndef QC_OPT_POOL_HOIST_H_
#define QC_OPT_POOL_HOIST_H_

#include <memory>

#include "ir/stmt.h"
#include "storage/database.h"

namespace qc::opt {

std::unique_ptr<ir::Function> HoistMemoryAllocations(
    const ir::Function& fn, const storage::Database& db);

}  // namespace qc::opt

#endif  // QC_OPT_POOL_HOIST_H_
