#include "opt/hash_spec.h"

#include <map>
#include <set>
#include <vector>

#include "ir/rewrite.h"
#include "opt/range.h"
#include "opt/users.h"

namespace qc::opt {

using ir::Op;
using ir::Stmt;
using ir::Type;
using ir::TypeKind;

namespace {

struct MapSpec {
  bool linear = false;               // composite key, linearized
  int64_t lo = 0;                    // scalar key offset
  std::vector<int64_t> los;          // per-component offsets (linear)
  std::vector<int64_t> strides;      // per-component strides (linear)
  uint64_t size = 0;                 // slots in the direct-addressed array
};

struct MMapSpec {
  int64_t lo = 0;
  int64_t hi = 0;
  uint64_t size = 0;
  bool intrusive = false;
  const Type* rec = nullptr;      // original build-record type
  const Type* ext_rec = nullptr;  // with appended __next (intrusive mode)
  int next_field = -1;
};

class HashSpecPass : public ir::Cloner {
 public:
  HashSpecPass(storage::Database* db, const HashSpecOptions& options)
      : db_(db), options_(options) {}

  void Analyze(const ir::Function& fn, ir::TypeFactory* types) {
    RangeAnalysis ranges(fn, db_);
    UseIndex idx = BuildUseIndex(fn);

    std::set<const Stmt*> all;
    for (const auto& [s, p] : idx.parent) {
      all.insert(s);
      (void)p;
    }

    for (const Stmt* s : all) {
      if (s->op == Op::kMapNew) AnalyzeMap(s, idx, &ranges);
      if (s->op == Op::kMMapNew) AnalyzeMMap(s, idx, &ranges, types);
    }
  }

 protected:
  Stmt* Transform(const Stmt* s) override {
    switch (s->op) {
      case Op::kMapNew: {
        auto it = maps_.find(s);
        if (it == maps_.end()) return nullptr;
        return b().ArrNew(s->type->value,
                          b().I64(static_cast<int64_t>(it->second.size)));
      }
      case Op::kMapGetOrElseUpdate: {
        auto it = maps_.find(s->args[0]);
        if (it == maps_.end()) return nullptr;
        const MapSpec& spec = it->second;
        Stmt* arr = Lookup(s->args[0]);
        Stmt* index = KeyIndex(spec, s->args[1]);
        Stmt* cur = b().ArrGet(arr, index);
        const ir::Block* init = s->blocks[0];
        b().If(b().IsNull(cur), [&] {
          CloneBlockBody(init);
          b().ArrSet(arr, index, Lookup(init->result));
        });
        return b().ArrGet(arr, index);
      }
      case Op::kMapForeach: {
        auto it = maps_.find(s->args[0]);
        if (it == maps_.end()) return nullptr;
        const MapSpec& spec = it->second;
        Stmt* arr = Lookup(s->args[0]);
        const ir::Block* body = s->blocks[0];
        return b().ForRange(
            b().I64(0), b().I64(static_cast<int64_t>(spec.size)),
            [&](Stmt* i) {
              Stmt* v = b().ArrGet(arr, i);
              b().If(b().Not(b().IsNull(v)), [&] {
                // Scalar keys are reconstructible from the slot index;
                // linearized composite keys were checked to be unused.
                Map(body->params[0],
                    spec.linear ? v : b().Add(i, b().I64(spec.lo)));
                Map(body->params[1], v);
                CloneBlockBody(body);
              });
            });
      }

      case Op::kMMapNew: {
        auto it = mmaps_.find(s);
        if (it == mmaps_.end()) return nullptr;
        const MMapSpec& spec = it->second;
        const Type* bucket = spec.intrusive
                                 ? spec.ext_rec
                                 : b().types()->List(s->type->value);
        Stmt* arr = b().ArrNew(
            bucket, b().I64(static_cast<int64_t>(spec.size)));
        arr->sval = "bucket_array";
        return arr;
      }
      case Op::kMMapAdd: {
        auto it = mmaps_.find(s->args[0]);
        if (it == mmaps_.end()) return nullptr;
        const MMapSpec& spec = it->second;
        Stmt* arr = Lookup(s->args[0]);
        Stmt* index = b().Sub(Lookup(s->args[1]), b().I64(spec.lo));
        Stmt* val = Lookup(s->args[2]);
        if (spec.intrusive) {
          // Fig. 4f: thread the record through the bucket head.
          Stmt* head = b().ArrGet(arr, index);
          b().RecSet(val, spec.next_field, head);
          b().ArrSet(arr, index, val);
          return Drop();
        }
        Stmt* lst = b().ArrGet(arr, index);
        b().If(b().IsNull(lst), [&] {
          b().ArrSet(arr, index, b().ListNew(spec.rec));
        });
        Stmt* lst2 = b().ArrGet(arr, index);
        return b().ListAppend(lst2, val);
      }
      case Op::kMMapGetOrNull: {
        auto it = mmaps_.find(s->args[0]);
        if (it == mmaps_.end()) return nullptr;
        const MMapSpec& spec = it->second;
        Stmt* arr = Lookup(s->args[0]);
        Stmt* key = Lookup(s->args[1]);
        const Type* bucket = spec.intrusive
                                 ? spec.ext_rec
                                 : b().types()->List(spec.rec);
        // Probe keys come from the other relation and may fall outside the
        // build key range: guard the direct access.
        Stmt* res = b().VarNew(b().NullOf(bucket));
        Stmt* in_range = b().And(b().Ge(key, b().I64(spec.lo)),
                                 b().Le(key, b().I64(spec.hi)));
        b().If(in_range, [&] {
          b().VarAssign(res, b().ArrGet(arr, b().Sub(key, b().I64(spec.lo))));
        });
        return b().VarRead(res);
      }
      case Op::kListForeach: {
        // Intrusive bucket traversal (while-loop over __next, Fig. 4f).
        const Stmt* src = s->args[0];
        if (src->op != Op::kMMapGetOrNull) return nullptr;
        auto it = mmaps_.find(src->args[0]);
        if (it == mmaps_.end() || !it->second.intrusive) return nullptr;
        const MMapSpec& spec = it->second;
        const ir::Block* body = s->blocks[0];
        Stmt* cur = b().VarNew(Lookup(src));
        return b().While(
            [&]() -> Stmt* { return b().Not(b().IsNull(b().VarRead(cur))); },
            [&] {
              Stmt* r = b().VarRead(cur);
              Map(body->params[0], r);
              CloneBlockBody(body);
              b().VarAssign(cur, b().RecGet(r, spec.next_field));
            });
      }
      case Op::kRecNew: {
        auto it = extended_recnews_.find(s);
        if (it == extended_recnews_.end()) return nullptr;
        const MMapSpec& spec = *it->second;
        std::vector<Stmt*> args;
        for (const Stmt* a : s->args) args.push_back(Lookup(a));
        args.push_back(b().NullOf(
            spec.ext_rec->record->fields[spec.next_field].type));
        return b().RecNew(spec.ext_rec, std::move(args));
      }
      default:
        return nullptr;
    }
  }

 private:
  Stmt* KeyIndex(const MapSpec& spec, const Stmt* key_src) {
    if (!spec.linear) {
      return b().Sub(b().Cast(Lookup(key_src), b().types()->I64()),
                     b().I64(spec.lo));
    }
    // key_src is the key-record construction; index from its components
    // directly (the record itself becomes dead and is removed by DCE).
    Stmt* acc = nullptr;
    for (size_t i = 0; i < key_src->args.size(); ++i) {
      Stmt* c = b().Cast(Lookup(key_src->args[i]), b().types()->I64());
      Stmt* term = b().Mul(b().Sub(c, b().I64(spec.los[i])),
                           b().I64(spec.strides[i]));
      acc = acc == nullptr ? term : b().Add(acc, term);
    }
    return acc;
  }

  void AnalyzeMap(const Stmt* m, const UseIndex& idx, RangeAnalysis* ranges) {
    std::vector<const Stmt*> gous;
    for (const Stmt* u : idx.UsersOf(m)) {
      switch (u->op) {
        case Op::kMapGetOrElseUpdate:
          if (u->args[0] == m) gous.push_back(u);
          break;
        case Op::kMapForeach:
          break;
        default:
          if (u->args[0] == m) return;  // unexpected use: stay generic
      }
    }
    if (gous.empty()) return;

    MapSpec spec;
    if (m->type->key->IsIntegral()) {
      ValueRange r{};
      for (const Stmt* g : gous) {
        ValueRange kr = ranges->Of(g->args[1]);
        if (!kr.known) return;
        if (!r.known) {
          r = kr;
        } else {
          r.lo = std::min(r.lo, kr.lo);
          r.hi = std::max(r.hi, kr.hi);
        }
      }
      if (!r.known || r.Size() == 0 || r.Size() > options_.max_slots) return;
      spec.lo = r.lo;
      spec.size = r.Size();
    } else if (m->type->key->kind == TypeKind::kRecord) {
      // Composite key: every construction must be a RecNew with components
      // of known range; the slot index is the linearization.
      size_t ncomp = m->type->key->record->fields.size();
      std::vector<ValueRange> comp(ncomp);
      for (const Stmt* g : gous) {
        const Stmt* rn = g->args[1];
        if (rn->op != Op::kRecNew || rn->args.size() != ncomp) return;
        for (size_t i = 0; i < ncomp; ++i) {
          ValueRange r = ranges->Of(rn->args[i]);
          if (!r.known) return;
          if (!comp[i].known) {
            comp[i] = r;
          } else {
            comp[i].lo = std::min(comp[i].lo, r.lo);
            comp[i].hi = std::max(comp[i].hi, r.hi);
          }
        }
      }
      uint64_t total = 1;
      for (const ValueRange& r : comp) {
        if (!r.known || r.Size() == 0) return;
        if (total > options_.max_slots / r.Size()) return;  // overflow guard
        total *= r.Size();
      }
      if (total > options_.max_slots) return;
      // The foreach key parameter cannot be reconstructed from a linear
      // index; require it unused (true for aggregation loops).
      for (const Stmt* u : idx.UsersOf(m)) {
        if (u->op == Op::kMapForeach &&
            !idx.UsersOf(u->blocks[0]->params[0]).empty()) {
          return;
        }
      }
      spec.linear = true;
      spec.size = total;
      uint64_t stride = total;
      for (const ValueRange& r : comp) {
        stride /= r.Size();
        spec.los.push_back(r.lo);
        spec.strides.push_back(static_cast<int64_t>(stride));
      }
    } else {
      return;
    }
    maps_[m] = spec;
  }

  void AnalyzeMMap(const Stmt* mm, const UseIndex& idx, RangeAnalysis* ranges,
                   ir::TypeFactory* types) {
    if (!mm->type->key->IsIntegral()) return;
    std::vector<const Stmt*> adds;
    const Stmt* add_recnew = nullptr;
    for (const Stmt* u : idx.UsersOf(mm)) {
      if (u->args.empty() || u->args[0] != mm) continue;
      switch (u->op) {
        case Op::kMMapAdd:
          adds.push_back(u);
          if (u->args[2]->op == Op::kRecNew) add_recnew = u->args[2];
          break;
        case Op::kMMapGetOrNull:
          break;
        default:
          return;  // unexpected use
      }
    }
    if (adds.empty()) return;

    ValueRange r{};
    for (const Stmt* a : adds) {
      ValueRange kr = ranges->Of(a->args[1]);
      if (!kr.known) return;
      if (!r.known) {
        r = kr;
      } else {
        r.lo = std::min(r.lo, kr.lo);
        r.hi = std::max(r.hi, kr.hi);
      }
    }
    if (!r.known || r.Size() == 0 || r.Size() > options_.max_slots) return;

    MMapSpec spec;
    spec.lo = r.lo;
    spec.hi = r.hi;
    spec.size = r.Size();
    spec.rec = mm->type->value;
    if (options_.intrusive_lists && spec.rec->kind == TypeKind::kRecord &&
        adds.size() == 1 && add_recnew != nullptr) {
      spec.ext_rec = types->ExtendRecordWithSelfPtr(
          spec.rec, spec.rec->record->name + "_il", "__next");
      spec.next_field = static_cast<int>(spec.rec->record->fields.size());
      spec.intrusive = true;
    }
    mmaps_[mm] = spec;
    if (spec.intrusive) {
      extended_recnews_[add_recnew] = &mmaps_[mm];
    }
  }

  storage::Database* db_;
  HashSpecOptions options_;
  std::map<const Stmt*, MapSpec> maps_;
  std::map<const Stmt*, MMapSpec> mmaps_;
  std::map<const Stmt*, const MMapSpec*> extended_recnews_;
};

}  // namespace

std::unique_ptr<ir::Function> SpecializeHashStructures(
    const ir::Function& fn, storage::Database* db,
    const HashSpecOptions& options) {
  HashSpecPass pass(db, options);
  pass.Analyze(fn, fn.types());
  return pass.Run(fn);
}

}  // namespace qc::opt
