// Automatic index inference (Fig. 7, Appendix B.1). When a hash join builds
// its MultiMap by scanning a *base relation* keyed on an annotated
// primary-/foreign-key column, the whole build phase is removed: the probe
// side instead walks a partitioned index that the database constructs at
// *load* time (domain-specific code motion — query-time work traded for
// loading-time work). Build-side filter predicates move into the probe loop
// exactly as in Fig. 7c; primary-key columns use the dense 1-D row index of
// Fig. 7d, so the bucket iteration disappears entirely.
//
// Pattern recognized (the shape the pipelining lowering emits):
//
//   mm = mmap_new
//   for i in 0 .. table_rows(T):        [only pure stmts and If-filters]
//     if (pred(i)) { rec = rec_new(cols of T at i); mmap_add(mm, col, rec) }
//   ...
//   lst = mmap_get_or_null(mm, k); if (!is_null(lst)) foreach(lst) {...}
//
// becomes, for a foreign-key column,
//
//   for j in 0 .. idx_bucket_len(T.col, k):
//     row = idx_bucket_row(T.col, k, j)
//     if (pred(row)) { ...body with rec fields replaced by column reads... }
#ifndef QC_OPT_INDEX_INFER_H_
#define QC_OPT_INDEX_INFER_H_

#include <memory>

#include "ir/stmt.h"
#include "storage/database.h"

namespace qc::opt {

std::unique_ptr<ir::Function> InferIndexes(const ir::Function& fn,
                                           storage::Database* db);

}  // namespace qc::opt

#endif  // QC_OPT_INDEX_INFER_H_
