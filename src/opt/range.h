// Static value-range analysis over the ANF IR, driven by load-time catalog
// statistics (§3.3 annotations + Appendix B/D): column reads take their
// range from column min/max stats, dictionary reads from the dictionary
// size, arithmetic propagates interval bounds, and record fields union the
// ranges of every construction site of that record type. The data-structure
// specialization passes use these ranges to decide when a hash table can
// become a direct-addressed array.
#ifndef QC_OPT_RANGE_H_
#define QC_OPT_RANGE_H_

#include <cstdint>
#include <map>
#include <unordered_map>
#include <vector>

#include "ir/stmt.h"
#include "storage/database.h"

namespace qc::opt {

struct ValueRange {
  bool known = false;
  int64_t lo = 0;
  int64_t hi = 0;

  // Number of distinct slots a direct-addressed structure needs.
  uint64_t Size() const {
    return known && hi >= lo ? static_cast<uint64_t>(hi - lo + 1) : 0;
  }
};

class RangeAnalysis {
 public:
  RangeAnalysis(const ir::Function& fn, storage::Database* db);

  // Range of an integral statement; `known == false` when unbounded.
  ValueRange Of(const ir::Stmt* s);

 private:
  void IndexRecordSources(const ir::Block* b);
  ValueRange Compute(const ir::Stmt* s);

  storage::Database* db_;
  // (record schema, field) -> all values ever stored in that field.
  std::map<std::pair<const ir::RecordSchema*, int>,
           std::vector<const ir::Stmt*>>
      field_sources_;
  std::unordered_map<const ir::Stmt*, ValueRange> memo_;
  std::unordered_map<const ir::Stmt*, bool> in_progress_;
};

}  // namespace qc::opt

#endif  // QC_OPT_RANGE_H_
