// Final step of lowering to C.Lite: any HashMap / MultiMap / List construct
// that survived the specialization passes (composite or string keys,
// unbounded collections) is marked as an external-library call — the GLib
// linkage of the paper's generated C. The level verifier then accepts the
// program at Level::kCLite.
#ifndef QC_OPT_MARK_LIB_H_
#define QC_OPT_MARK_LIB_H_

#include "ir/stmt.h"

namespace qc::opt {

// In place; returns the number of statements marked.
int MarkLibraryCollections(ir::Function* fn);

}  // namespace qc::opt

#endif  // QC_OPT_MARK_LIB_H_
