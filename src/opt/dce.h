// Dead code elimination over the ANF IR.
//
// Liveness rules (fixpoint):
//   1. kEmit statements are live.
//   2. A live statement makes all of its arguments live, and the result
//      symbol of each of its nested blocks live.
//   3. A control statement (if / loops / foreach) is live iff some statement
//      inside one of its blocks is live.
//   4. A store (var_assign, rec_set, arr_set, list_append, mmap_add, sorts,
//      map_get_or_else_update, free) is live iff its target (args[0]) is
//      live.
// Everything else (allocations, reads, pure computation) is live iff used by
// a live statement. Statements that stay dead are pruned in place.
#ifndef QC_OPT_DCE_H_
#define QC_OPT_DCE_H_

#include "ir/stmt.h"

namespace qc::opt {

// Returns the number of statements removed.
int DeadCodeElimination(ir::Function* fn);

}  // namespace qc::opt

#endif  // QC_OPT_DCE_H_
