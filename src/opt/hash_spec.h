// Data-structure specialization (§5.2, Appendix B): the lowering out of
// ScaLite[Map, List].
//
// HashMaps (aggregation): when the grouping key has a statically known,
// small range (value-range analysis over catalog statistics — single
// integral keys, or key records whose integral/dictionary-coded components
// all have known ranges), the hash table becomes a direct-addressed array of
// aggregation records indexed by (key - lo), or by the linearized composite
// index sum_i (k_i - lo_i) * stride_i. No hashing, no collision chains, no
// per-entry nodes.
//
// MultiMaps (hash join): with a single integral build key of known range,
// the multimap becomes a bucket array indexed the same way. Buckets are
// either generic Lists (4-level stack) or — with `intrusive_lists`, the
// ScaLite[List] -> ScaLite list specialization of §4.4 — intrusive linked
// lists threaded through a `next` pointer appended to the build records,
// removing the separate bucket allocations entirely (Fig. 4f).
//
// Structures that do not qualify (string or unbounded keys) keep their
// generic implementation and are later marked as library calls.
#ifndef QC_OPT_HASH_SPEC_H_
#define QC_OPT_HASH_SPEC_H_

#include <memory>

#include "ir/stmt.h"
#include "storage/database.h"

namespace qc::opt {

struct HashSpecOptions {
  // Largest direct-addressed table (slots) we are willing to allocate; the
  // paper trades memory aggressively for speed (B.1), this is the cap.
  uint64_t max_slots = 1ull << 22;
  // Also specialize bucket Lists into intrusive linked lists (level 5).
  bool intrusive_lists = false;
};

std::unique_ptr<ir::Function> SpecializeHashStructures(
    const ir::Function& fn, storage::Database* db,
    const HashSpecOptions& options = {});

}  // namespace qc::opt

#endif  // QC_OPT_HASH_SPEC_H_
