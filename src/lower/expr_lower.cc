#include "lower/expr_lower.h"

#include <cassert>
#include <cstdlib>

namespace qc::lower {

using ir::Builder;
using ir::Stmt;
using ir::Type;
using qplan::ExprKind;
using qplan::ExprPtr;
using qplan::ValType;

const Type* LowerValType(ir::TypeFactory* types, ValType t) {
  switch (t) {
    case ValType::kI64: return types->I64();
    case ValType::kF64: return types->F64();
    case ValType::kStr: return types->Str();
    case ValType::kDate: return types->DateT();
    case ValType::kBool: return types->Bool();
  }
  return types->I64();
}

Stmt* DefaultValue(Builder& b, const Type* t) {
  switch (t->kind) {
    case ir::TypeKind::kF64: return b.F64(0.0);
    case ir::TypeKind::kStr: return b.StrC("");
    case ir::TypeKind::kBool: return b.BoolC(false);
    case ir::TypeKind::kDate: return b.DateC(0);
    case ir::TypeKind::kI32:
    case ir::TypeKind::kI64: return b.I64(0);
    default: return b.NullOf(t);
  }
}

namespace {

// String comparisons are expressed with the minimal primitive set
// {str_eq, str_ne, str_lt} so the string-dictionary pass has few shapes to
// rewrite (Table 2).
Stmt* LowerStrCmp(Builder& b, ExprKind kind, Stmt* x, Stmt* y) {
  switch (kind) {
    case ExprKind::kEq: return b.StrEq(x, y);
    case ExprKind::kNe: return b.StrNe(x, y);
    case ExprKind::kLt: return b.StrLt(x, y);
    case ExprKind::kGt: return b.StrLt(y, x);
    case ExprKind::kLe: return b.Not(b.StrLt(y, x));
    case ExprKind::kGe: return b.Not(b.StrLt(x, y));
    default: std::abort();
  }
}

}  // namespace

Stmt* LowerExpr(Builder& b, const ExprPtr& e, const std::vector<Stmt*>& row) {
  switch (e->kind) {
    case ExprKind::kCol:
      assert(e->col_idx >= 0 && static_cast<size_t>(e->col_idx) < row.size());
      return row[e->col_idx];
    case ExprKind::kIntLit: return b.I64(e->ival);
    case ExprKind::kFloatLit: return b.F64(e->fval);
    case ExprKind::kStrLit: return b.StrC(e->name);
    case ExprKind::kDateLit: return b.DateC(static_cast<int32_t>(e->ival));
    case ExprKind::kBoolLit: return b.BoolC(e->ival != 0);

    case ExprKind::kAdd:
      return b.Add(LowerExpr(b, e->kids[0], row), LowerExpr(b, e->kids[1], row));
    case ExprKind::kSub:
      return b.Sub(LowerExpr(b, e->kids[0], row), LowerExpr(b, e->kids[1], row));
    case ExprKind::kMul:
      return b.Mul(LowerExpr(b, e->kids[0], row), LowerExpr(b, e->kids[1], row));
    case ExprKind::kDiv:
      return b.Div(LowerExpr(b, e->kids[0], row), LowerExpr(b, e->kids[1], row));
    case ExprKind::kMod:
      return b.Mod(LowerExpr(b, e->kids[0], row), LowerExpr(b, e->kids[1], row));
    case ExprKind::kNeg:
      return b.Neg(LowerExpr(b, e->kids[0], row));

    case ExprKind::kEq:
    case ExprKind::kNe:
    case ExprKind::kLt:
    case ExprKind::kLe:
    case ExprKind::kGt:
    case ExprKind::kGe: {
      Stmt* x = LowerExpr(b, e->kids[0], row);
      Stmt* y = LowerExpr(b, e->kids[1], row);
      if (e->kids[0]->type == ValType::kStr) {
        return LowerStrCmp(b, e->kind, x, y);
      }
      switch (e->kind) {
        case ExprKind::kEq: return b.Eq(x, y);
        case ExprKind::kNe: return b.Ne(x, y);
        case ExprKind::kLt: return b.Lt(x, y);
        case ExprKind::kLe: return b.Le(x, y);
        case ExprKind::kGt: return b.Gt(x, y);
        case ExprKind::kGe: return b.Ge(x, y);
        default: std::abort();
      }
    }

    case ExprKind::kAnd:
      return b.And(LowerExpr(b, e->kids[0], row),
                   LowerExpr(b, e->kids[1], row));
    case ExprKind::kOr:
      return b.Or(LowerExpr(b, e->kids[0], row),
                  LowerExpr(b, e->kids[1], row));
    case ExprKind::kNot:
      return b.Not(LowerExpr(b, e->kids[0], row));

    case ExprKind::kLike:
      return b.StrLike(LowerExpr(b, e->kids[0], row), e->name);
    case ExprKind::kStartsWith:
      return b.StrStartsWith(LowerExpr(b, e->kids[0], row), b.StrC(e->name));
    case ExprKind::kEndsWith:
      return b.StrEndsWith(LowerExpr(b, e->kids[0], row), b.StrC(e->name));
    case ExprKind::kContains:
      return b.StrContains(LowerExpr(b, e->kids[0], row), b.StrC(e->name));

    case ExprKind::kCase: {
      // CASE lowers to a mutable variable assigned in both branches: kIf in
      // the IR is statement-only, conditional *values* go through vars.
      const Type* t = LowerValType(b.types(), e->type);
      Stmt* cond = LowerExpr(b, e->kids[0], row);
      Stmt* var = b.VarNew(DefaultValue(b, t));
      b.If(
          cond,
          [&] {
            Stmt* v = b.Cast(LowerExpr(b, e->kids[1], row), t);
            b.VarAssign(var, v);
          },
          [&] {
            Stmt* v = b.Cast(LowerExpr(b, e->kids[2], row), t);
            b.VarAssign(var, v);
          });
      return b.VarRead(var);
    }

    case ExprKind::kYearOf: {
      Stmt* d = LowerExpr(b, e->kids[0], row);
      return b.Div(b.Cast(d, b.types()->I64()), b.I64(10000));
    }
    case ExprKind::kSubstr:
      return b.StrSubstr(LowerExpr(b, e->kids[0], row), e->aux0, e->aux1);
  }
  std::abort();
}

}  // namespace qc::lower
