// Lowers QPlan scalar expressions to ANF IR, given the IR symbols of the
// current row. Shared by the pipelining lowering (lower/pipeline.cc) and the
// naive template expansion (lower/naive.cc).
#ifndef QC_LOWER_EXPR_LOWER_H_
#define QC_LOWER_EXPR_LOWER_H_

#include <vector>

#include "ir/builder.h"
#include "qplan/expr.h"

namespace qc::lower {

// Maps a QPlan value type to the IR type.
const ir::Type* LowerValType(ir::TypeFactory* types, qplan::ValType t);

// Emits IR computing `e` over `row` (one symbol per input-schema column,
// positions matching the schema the expression was resolved against).
ir::Stmt* LowerExpr(ir::Builder& b, const qplan::ExprPtr& e,
                    const std::vector<ir::Stmt*>& row);

// Zero/default value of a type (used for outer-join padding).
ir::Stmt* DefaultValue(ir::Builder& b, const ir::Type* t);

}  // namespace qc::lower

#endif  // QC_LOWER_EXPR_LOWER_H_
