// Pipelining: the lowering from QPlan to ScaLite[Map, List] (§5.1).
//
// The implementation is the push-engine / producer-consumer encoding (Fig. 6
// of the paper): each operator is a producer that invokes its consumer
// continuation once per row, so operator boundaries are fused away and no
// intermediate collections are materialized except where the algebra demands
// it (hash tables of joins and aggregations, sort buffers). This is the
// transformation the paper reports as "Pipelining in QPlan: 0 LoC" in Scala
// because the operator encoding *is* the transformation; here it is the
// plan-to-IR lowering itself.
//
// The emitted IR is at DSL level 3 (ScaLite[Map, List]): abstract HashMap /
// MultiMap / List constructs that later lowerings specialize.
#ifndef QC_LOWER_PIPELINE_H_
#define QC_LOWER_PIPELINE_H_

#include <memory>
#include <string>

#include "ir/stmt.h"
#include "qplan/plan.h"
#include "storage/database.h"

namespace qc::lower {

// `plan` must be resolved. The returned function verifies at
// Level::kMapList.
std::unique_ptr<ir::Function> LowerPlanPipelined(const qplan::Plan& plan,
                                                 storage::Database& db,
                                                 ir::TypeFactory* types,
                                                 const std::string& name);

// Annotation conventions produced by this lowering and consumed by the
// data-structure specialization passes:
//  * kMMapNew.aux0 — field index of the join key copied into each stored
//    build record (single integral keys only), or -1.
//  * kMapNew.aux0  — field index of the grouping key inside the aggregation
//    record (0 for single integral keys), or -1; kMapNew.aux1 — number of
//    grouping fields.

}  // namespace qc::lower

#endif  // QC_LOWER_PIPELINE_H_
