#include "lower/pipeline.h"

#include <cassert>
#include <functional>
#include <vector>

#include "ir/builder.h"
#include "lower/expr_lower.h"

namespace qc::lower {

using ir::Builder;
using ir::Stmt;
using ir::Type;
using qplan::AggFn;
using qplan::ExprPtr;
using qplan::JoinKind;
using qplan::Plan;
using qplan::PlanKind;
using qplan::ValType;

namespace {

using Row = std::vector<Stmt*>;
using Consumer = std::function<void(const Row&)>;

bool IsIntegralVal(ValType t) {
  return t == ValType::kI64 || t == ValType::kDate || t == ValType::kBool;
}

class PipelineLowering {
 public:
  PipelineLowering(storage::Database& db, ir::TypeFactory* types)
      : db_(db), types_(types) {}

  std::unique_ptr<ir::Function> Run(const Plan& plan,
                                    const std::string& name) {
    auto fn = std::make_unique<ir::Function>(name, types_);
    Builder builder(fn.get());
    b_ = &builder;
    Produce(plan, [&](const Row& row) { b_->EmitRow(row); });
    b_ = nullptr;
    return fn;
  }

 private:
  Builder& b() { return *b_; }

  const Type* LowerColType(storage::ColType t) {
    switch (t) {
      case storage::ColType::kI64: return types_->I64();
      case storage::ColType::kF64: return types_->F64();
      case storage::ColType::kStr: return types_->Str();
      case storage::ColType::kDate: return types_->DateT();
    }
    return types_->I64();
  }

  // Fresh record type for a schema (field names keep the column name for
  // debuggability; extras are appended, e.g. the embedded join key).
  const Type* TupleType(const qplan::Schema& schema, const std::string& base,
                        const std::vector<ir::Field>& extras = {}) {
    std::vector<ir::Field> fields;
    fields.reserve(schema.size() + extras.size());
    for (size_t i = 0; i < schema.size(); ++i) {
      fields.push_back(ir::Field{"f" + std::to_string(i) + "_" +
                                     schema[i].name,
                                 LowerValType(types_, schema[i].type)});
    }
    for (const ir::Field& f : extras) fields.push_back(f);
    return types_->Record(base + std::to_string(counter_++), std::move(fields));
  }

  Row RecFields(Stmt* rec, size_t n) {
    Row row;
    row.reserve(n);
    for (size_t i = 0; i < n; ++i) {
      row.push_back(b().RecGet(rec, static_cast<int>(i)));
    }
    return row;
  }

  // Hash-key shape, decidable statically: a single integral key is carried
  // as a plain i64 (the case the specialization passes can turn into array
  // partitioning); composite or string keys become a key record handled by
  // the generic type-directed hash — the GLib path.
  struct KeySpec {
    const Type* type = nullptr;
    bool single_integral = false;
  };

  KeySpec KeyTypeOf(const std::vector<ExprPtr>& keys) {
    KeySpec spec;
    if (keys.empty() || (keys.size() == 1 && IsIntegralVal(keys[0]->type))) {
      spec.type = types_->I64();
      spec.single_integral = true;
      return spec;
    }
    std::vector<ir::Field> fields;
    for (size_t i = 0; i < keys.size(); ++i) {
      fields.push_back(ir::Field{"k" + std::to_string(i),
                                 LowerValType(types_, keys[i]->type)});
    }
    spec.type =
        types_->Record("Key" + std::to_string(counter_++), std::move(fields));
    spec.single_integral = false;
    return spec;
  }

  Stmt* MakeKey(const KeySpec& spec, const std::vector<ExprPtr>& keys,
                const Row& row) {
    if (keys.empty()) return b().I64(0);
    std::vector<Stmt*> vals;
    vals.reserve(keys.size());
    for (const ExprPtr& k : keys) vals.push_back(LowerExpr(b(), k, row));
    if (spec.single_integral) return b().Cast(vals[0], types_->I64());
    return b().RecNew(spec.type, vals);
  }

  void Produce(const Plan& p, const Consumer& consume) {
    switch (p.kind) {
      case PlanKind::kScan: return ProduceScan(p, consume);
      case PlanKind::kSelect: return ProduceSelect(p, consume);
      case PlanKind::kProject: return ProduceProject(p, consume);
      case PlanKind::kJoin: return ProduceJoin(p, consume);
      case PlanKind::kAgg: return ProduceAgg(p, consume);
      case PlanKind::kSort: return ProduceSort(p, consume);
      case PlanKind::kLimit: return ProduceLimit(p, consume);
    }
  }

  void ProduceScan(const Plan& p, const Consumer& consume) {
    const storage::Table& t = db_.table(p.table_id);
    Stmt* n = b().TableRows(p.table_id);
    b().ForRange(b().I64(0), n, [&](Stmt* i) {
      Row row;
      row.reserve(t.num_columns());
      for (size_t c = 0; c < t.num_columns(); ++c) {
        row.push_back(b().ColGet(p.table_id, static_cast<int>(c), i,
                                 LowerColType(t.def().columns[c].type)));
      }
      consume(row);
    });
  }

  void ProduceSelect(const Plan& p, const Consumer& consume) {
    Produce(*p.children[0], [&](const Row& row) {
      Stmt* pred = LowerExpr(b(), p.predicate, row);
      b().If(pred, [&] { consume(row); });
    });
  }

  void ProduceProject(const Plan& p, const Consumer& consume) {
    Produce(*p.children[0], [&](const Row& row) {
      Row out;
      out.reserve(p.projections.size());
      for (const auto& ne : p.projections) {
        out.push_back(LowerExpr(b(), ne.expr, row));
      }
      consume(out);
    });
  }

  // Hash joins build a MultiMap over the *right* child and stream the left
  // child through it (first/second phase of Fig. 4d). Semi/anti joins check
  // match existence; outer joins track a `matched` flag and emit a padded
  // row for unmatched probes.
  void ProduceJoin(const Plan& p, const Consumer& consume) {
    const qplan::Schema& lschema = p.children[0]->schema;
    const qplan::Schema& rschema = p.children[1]->schema;
    KeySpec spec = KeyTypeOf(p.right_keys);

    std::vector<ir::Field> extras;
    if (spec.single_integral) {
      extras.push_back(ir::Field{"__key", types_->I64()});
    }
    const Type* tup = TupleType(rschema, "JoinTup", extras);

    Stmt* mm = b().MMapNew(spec.type, tup);
    mm->aux0 = spec.single_integral ? static_cast<int>(rschema.size()) : -1;

    // Phase 1: build.
    Produce(*p.children[1], [&](const Row& row) {
      Stmt* key = MakeKey(spec, p.right_keys, row);
      Row fields = row;
      if (spec.single_integral) fields.push_back(key);
      Stmt* rec = b().RecNew(tup, fields);
      b().MMapAdd(mm, key, rec);
    });

    // Phase 2: probe.
    Produce(*p.children[0], [&](const Row& lrow) {
      KeySpec lspec = spec;  // key representation must match the build side
      Stmt* key = MakeKey(lspec, p.left_keys, lrow);
      Stmt* lst = b().MMapGetOrNull(mm, key);

      auto foreach_match = [&](const std::function<void(const Row&)>& on_match) {
        b().If(b().Not(b().IsNull(lst)), [&] {
          b().ListForeach(lst, [&](Stmt* rec) {
            Row rrow = RecFields(rec, rschema.size());
            if (p.predicate != nullptr) {
              Row concat = lrow;
              concat.insert(concat.end(), rrow.begin(), rrow.end());
              Stmt* res = LowerExpr(b(), p.predicate, concat);
              b().If(res, [&] { on_match(rrow); });
            } else {
              on_match(rrow);
            }
          });
        });
      };

      switch (p.join_kind) {
        case JoinKind::kInner: {
          foreach_match([&](const Row& rrow) {
            Row out = lrow;
            out.insert(out.end(), rrow.begin(), rrow.end());
            consume(out);
          });
          break;
        }
        case JoinKind::kSemi:
        case JoinKind::kAnti: {
          Stmt* found = b().VarNew(b().BoolC(false));
          foreach_match([&](const Row&) {
            b().VarAssign(found, b().BoolC(true));
          });
          Stmt* flag = b().VarRead(found);
          if (p.join_kind == JoinKind::kAnti) flag = b().Not(flag);
          b().If(flag, [&] { consume(lrow); });
          break;
        }
        case JoinKind::kLeftOuter: {
          Stmt* matched = b().VarNew(b().BoolC(false));
          foreach_match([&](const Row& rrow) {
            b().VarAssign(matched, b().BoolC(true));
            Row out = lrow;
            out.insert(out.end(), rrow.begin(), rrow.end());
            out.push_back(b().BoolC(true));
            consume(out);
          });
          b().If(b().Not(b().VarRead(matched)), [&] {
            Row out = lrow;
            for (const auto& c : rschema) {
              out.push_back(DefaultValue(b(), LowerValType(types_, c.type)));
            }
            out.push_back(b().BoolC(false));
            consume(out);
          });
          break;
        }
      }
    });
    (void)lschema;
  }

  // Aggregation: grouped aggregation keeps one mutable record per group in a
  // HashMap (records hold group values, one accumulator per aggregate, and a
  // shared row count `n`); global aggregation uses plain mutable variables.
  void ProduceAgg(const Plan& p, const Consumer& consume) {
    if (p.group_by.empty()) return ProduceGlobalAgg(p, consume);

    KeySpec spec;
    {
      std::vector<ExprPtr> key_exprs;
      for (const auto& g : p.group_by) key_exprs.push_back(g.expr);
      spec = KeyTypeOf(key_exprs);
    }

    // Aggregation record: group fields, accumulators, shared count.
    std::vector<ir::Field> fields;
    for (size_t i = 0; i < p.group_by.size(); ++i) {
      fields.push_back(ir::Field{
          "g" + std::to_string(i),
          LowerValType(types_, p.group_by[i].expr->type)});
    }
    for (size_t a = 0; a < p.aggs.size(); ++a) {
      const Type* acc_t =
          p.aggs[a].fn == AggFn::kCount
              ? types_->I64()
              : (p.aggs[a].fn == AggFn::kAvg
                     ? types_->F64()
                     : LowerValType(types_, p.aggs[a].arg->type));
      fields.push_back(ir::Field{"a" + std::to_string(a), acc_t});
    }
    fields.push_back(ir::Field{"n", types_->I64()});
    const Type* agg_rec =
        types_->Record("AggRec" + std::to_string(counter_++), std::move(fields));
    size_t acc_base = p.group_by.size();
    int n_idx = static_cast<int>(agg_rec->record->fields.size()) - 1;

    Stmt* map = b().MapNew(spec.type, agg_rec);
    map->aux0 = spec.single_integral ? 0 : -1;
    map->aux1 = static_cast<int>(p.group_by.size());

    Produce(*p.children[0], [&](const Row& row) {
      Row gvals;
      for (const auto& g : p.group_by) {
        gvals.push_back(LowerExpr(b(), g.expr, row));
      }
      Stmt* key;
      if (spec.single_integral) {
        key = b().Cast(gvals[0], types_->I64());
      } else {
        key = b().RecNew(spec.type, gvals);
      }
      Stmt* rec = b().MapGetOrElseUpdate(map, key, [&]() -> Stmt* {
        Row init = gvals;
        for (size_t a = 0; a < p.aggs.size(); ++a) {
          init.push_back(DefaultValue(
              b(), agg_rec->record->fields[acc_base + a].type));
        }
        init.push_back(b().I64(0));
        return b().RecNew(agg_rec, init);
      });

      Stmt* n0 = b().RecGet(rec, n_idx);
      for (size_t a = 0; a < p.aggs.size(); ++a) {
        const qplan::AggSpec& sp = p.aggs[a];
        int fidx = static_cast<int>(acc_base + a);
        if (sp.fn == AggFn::kCount) continue;  // shared count handles it
        Stmt* v = LowerExpr(b(), sp.arg, row);
        const Type* acc_t = agg_rec->record->fields[fidx].type;
        v = b().Cast(v, acc_t);
        Stmt* cur = b().RecGet(rec, fidx);
        switch (sp.fn) {
          case AggFn::kSum:
          case AggFn::kAvg:
            b().RecSet(rec, fidx, b().Add(cur, v));
            break;
          case AggFn::kMin: {
            Stmt* take = b().Or(b().Eq(n0, b().I64(0)), b().Lt(v, cur));
            b().If(take, [&] { b().RecSet(rec, fidx, v); });
            break;
          }
          case AggFn::kMax: {
            Stmt* take = b().Or(b().Eq(n0, b().I64(0)), b().Gt(v, cur));
            b().If(take, [&] { b().RecSet(rec, fidx, v); });
            break;
          }
          case AggFn::kCount:
            break;
        }
      }
      b().RecSet(rec, n_idx, b().Add(n0, b().I64(1)));
    });

    b().MapForeach(map, [&](Stmt* /*key*/, Stmt* rec) {
      Row out;
      for (size_t i = 0; i < p.group_by.size(); ++i) {
        out.push_back(b().RecGet(rec, static_cast<int>(i)));
      }
      Stmt* n = b().RecGet(rec, n_idx);
      for (size_t a = 0; a < p.aggs.size(); ++a) {
        const qplan::AggSpec& sp = p.aggs[a];
        int fidx = static_cast<int>(acc_base + a);
        switch (sp.fn) {
          case AggFn::kCount:
            out.push_back(n);
            break;
          case AggFn::kAvg:
            out.push_back(
                b().Div(b().RecGet(rec, fidx), b().Cast(n, types_->F64())));
            break;
          default:
            out.push_back(b().RecGet(rec, fidx));
        }
      }
      consume(out);
    });
  }

  void ProduceGlobalAgg(const Plan& p, const Consumer& consume) {
    std::vector<Stmt*> accs(p.aggs.size(), nullptr);
    std::vector<const Type*> acc_types(p.aggs.size(), nullptr);
    for (size_t a = 0; a < p.aggs.size(); ++a) {
      const qplan::AggSpec& sp = p.aggs[a];
      acc_types[a] = sp.fn == AggFn::kCount
                         ? types_->I64()
                         : (sp.fn == AggFn::kAvg
                                ? types_->F64()
                                : LowerValType(types_, sp.arg->type));
      accs[a] = b().VarNew(DefaultValue(b(), acc_types[a]));
    }
    Stmt* n_var = b().VarNew(b().I64(0));

    Produce(*p.children[0], [&](const Row& row) {
      Stmt* n0 = b().VarRead(n_var);
      for (size_t a = 0; a < p.aggs.size(); ++a) {
        const qplan::AggSpec& sp = p.aggs[a];
        if (sp.fn == AggFn::kCount) continue;
        Stmt* v = b().Cast(LowerExpr(b(), sp.arg, row), acc_types[a]);
        Stmt* cur = b().VarRead(accs[a]);
        switch (sp.fn) {
          case AggFn::kSum:
          case AggFn::kAvg:
            b().VarAssign(accs[a], b().Add(cur, v));
            break;
          case AggFn::kMin: {
            Stmt* take = b().Or(b().Eq(n0, b().I64(0)), b().Lt(v, cur));
            b().If(take, [&] { b().VarAssign(accs[a], v); });
            break;
          }
          case AggFn::kMax: {
            Stmt* take = b().Or(b().Eq(n0, b().I64(0)), b().Gt(v, cur));
            b().If(take, [&] { b().VarAssign(accs[a], v); });
            break;
          }
          case AggFn::kCount:
            break;
        }
      }
      b().VarAssign(n_var, b().Add(n0, b().I64(1)));
    });

    Row out;
    Stmt* n = b().VarRead(n_var);
    for (size_t a = 0; a < p.aggs.size(); ++a) {
      const qplan::AggSpec& sp = p.aggs[a];
      switch (sp.fn) {
        case AggFn::kCount:
          out.push_back(n);
          break;
        case AggFn::kAvg: {
          // Guard the empty-input case: average of zero rows is 0.
          Stmt* res = b().VarNew(b().F64(0.0));
          b().If(b().Gt(n, b().I64(0)), [&] {
            b().VarAssign(res, b().Div(b().VarRead(accs[a]),
                                       b().Cast(n, types_->F64())));
          });
          out.push_back(b().VarRead(res));
          break;
        }
        default:
          out.push_back(b().VarRead(accs[a]));
      }
    }
    consume(out);
  }

  // Sort materializes child rows as records in a List, sorts it with a
  // lexicographic comparator over the sort keys, then streams it.
  void ProduceSort(const Plan& p, const Consumer& consume) {
    const qplan::Schema& schema = p.children[0]->schema;
    const Type* tup = TupleType(schema, "SortTup");
    Stmt* lst = b().ListNew(tup);

    Produce(*p.children[0], [&](const Row& row) {
      b().ListAppend(lst, b().RecNew(tup, row));
    });

    b().ListSortBy(lst, [&](Stmt* x, Stmt* y) -> Stmt* {
      Row rx = RecFields(x, schema.size());
      Row ry = RecFields(y, schema.size());
      // Lexicographic: less = k0<k0' || (k0==k0' && (k1<k1' || ...)).
      Stmt* less = b().BoolC(false);
      for (size_t i = p.sort_keys.size(); i-- > 0;) {
        const qplan::SortKey& k = p.sort_keys[i];
        Stmt* a = LowerExpr(b(), k.expr, rx);
        Stmt* c = LowerExpr(b(), k.expr, ry);
        if (k.desc) std::swap(a, c);
        Stmt *lt, *eq;
        if (k.expr->type == ValType::kStr) {
          lt = b().StrLt(a, c);
          eq = b().StrEq(a, c);
        } else {
          lt = b().Lt(a, c);
          eq = b().Eq(a, c);
        }
        less = b().Or(lt, b().And(eq, less));
      }
      return less;
    });

    b().ListForeach(lst, [&](Stmt* rec) {
      consume(RecFields(rec, schema.size()));
    });
  }

  void ProduceLimit(const Plan& p, const Consumer& consume) {
    Stmt* count = b().VarNew(b().I64(0));
    Produce(*p.children[0], [&](const Row& row) {
      Stmt* c = b().VarRead(count);
      b().If(b().Lt(c, b().I64(p.limit)), [&] {
        consume(row);
        b().VarAssign(count, b().Add(c, b().I64(1)));
      });
    });
  }

  storage::Database& db_;
  ir::TypeFactory* types_;
  Builder* b_ = nullptr;
  int counter_ = 0;
};

}  // namespace

std::unique_ptr<ir::Function> LowerPlanPipelined(const qplan::Plan& plan,
                                                 storage::Database& db,
                                                 ir::TypeFactory* types,
                                                 const std::string& name) {
  PipelineLowering lowering(db, types);
  return lowering.Run(plan, name);
}

}  // namespace qc::lower
