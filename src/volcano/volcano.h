// Operator-at-a-time evaluator of QPlan trees. This is (a) the correctness
// oracle every compiled configuration is property-tested against, and (b)
// the classical "query interpretation" baseline of the paper's System R
// framing — each operator materializes its full output before the parent
// consumes it, paying exactly the interpretation and materialization
// overheads the compiler stack removes.
#ifndef QC_VOLCANO_VOLCANO_H_
#define QC_VOLCANO_VOLCANO_H_

#include "qplan/plan.h"
#include "storage/database.h"
#include "storage/result.h"

namespace qc::volcano {

// Runs a resolved plan (ResolvePlan must have been called). Returns the
// materialized result with one column per schema entry.
storage::ResultTable Execute(const qplan::Plan& plan, storage::Database& db);

}  // namespace qc::volcano

#endif  // QC_VOLCANO_VOLCANO_H_
