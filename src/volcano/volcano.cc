#include "volcano/volcano.h"

#include <algorithm>
#include <cassert>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/str.h"

namespace qc::volcano {

using qplan::AggFn;
using qplan::Expr;
using qplan::ExprKind;
using qplan::ExprPtr;
using qplan::JoinKind;
using qplan::Plan;
using qplan::PlanKind;
using qplan::Schema;
using qplan::ValType;

namespace {

using Row = std::vector<Slot>;

struct Relation {
  const Schema* schema = nullptr;
  std::vector<Row> rows;
};

class Evaluator {
 public:
  explicit Evaluator(storage::Database& db) : db_(db) {}

  Relation Eval(const Plan& plan) {
    switch (plan.kind) {
      case PlanKind::kScan: return EvalScan(plan);
      case PlanKind::kSelect: return EvalSelect(plan);
      case PlanKind::kProject: return EvalProject(plan);
      case PlanKind::kJoin: return EvalJoin(plan);
      case PlanKind::kAgg: return EvalAgg(plan);
      case PlanKind::kSort: return EvalSort(plan);
      case PlanKind::kLimit: return EvalLimit(plan);
    }
    std::abort();
  }

  const char* Intern(const std::string& s) {
    strings_.push_back(s);
    return strings_.back().c_str();
  }

 private:
  // --- expression evaluation ------------------------------------------------

  double AsF64(const ExprPtr& e, const Slot& v) {
    return e->type == ValType::kF64 ? v.d : static_cast<double>(v.i);
  }

  Slot EvalExpr(const ExprPtr& e, const Row& row) {
    switch (e->kind) {
      case ExprKind::kCol: return row[e->col_idx];
      case ExprKind::kIntLit:
      case ExprKind::kDateLit:
      case ExprKind::kBoolLit: return SlotI(e->ival);
      case ExprKind::kFloatLit: return SlotD(e->fval);
      case ExprKind::kStrLit: return SlotS(e->name.c_str());
      case ExprKind::kAdd:
      case ExprKind::kSub:
      case ExprKind::kMul:
      case ExprKind::kDiv:
      case ExprKind::kMod: {
        Slot a = EvalExpr(e->kids[0], row);
        Slot b = EvalExpr(e->kids[1], row);
        if (e->type == ValType::kF64) {
          double x = AsF64(e->kids[0], a), y = AsF64(e->kids[1], b);
          switch (e->kind) {
            case ExprKind::kAdd: return SlotD(x + y);
            case ExprKind::kSub: return SlotD(x - y);
            case ExprKind::kMul: return SlotD(x * y);
            case ExprKind::kDiv: return SlotD(x / y);
            default: std::abort();
          }
        }
        switch (e->kind) {
          case ExprKind::kAdd: return SlotI(a.i + b.i);
          case ExprKind::kSub: return SlotI(a.i - b.i);
          case ExprKind::kMul: return SlotI(a.i * b.i);
          case ExprKind::kDiv: return SlotI(a.i / b.i);
          case ExprKind::kMod: return SlotI(a.i % b.i);
          default: std::abort();
        }
      }
      case ExprKind::kNeg: {
        Slot a = EvalExpr(e->kids[0], row);
        return e->type == ValType::kF64 ? SlotD(-a.d) : SlotI(-a.i);
      }
      case ExprKind::kEq:
      case ExprKind::kNe:
      case ExprKind::kLt:
      case ExprKind::kLe:
      case ExprKind::kGt:
      case ExprKind::kGe: {
        Slot a = EvalExpr(e->kids[0], row);
        Slot b = EvalExpr(e->kids[1], row);
        int cmp;
        if (e->kids[0]->type == ValType::kStr) {
          cmp = std::strcmp(a.s, b.s);
        } else if (e->kids[0]->type == ValType::kF64 ||
                   e->kids[1]->type == ValType::kF64) {
          double x = AsF64(e->kids[0], a), y = AsF64(e->kids[1], b);
          cmp = x < y ? -1 : (x > y ? 1 : 0);
        } else {
          cmp = a.i < b.i ? -1 : (a.i > b.i ? 1 : 0);
        }
        bool r = false;
        switch (e->kind) {
          case ExprKind::kEq: r = cmp == 0; break;
          case ExprKind::kNe: r = cmp != 0; break;
          case ExprKind::kLt: r = cmp < 0; break;
          case ExprKind::kLe: r = cmp <= 0; break;
          case ExprKind::kGt: r = cmp > 0; break;
          case ExprKind::kGe: r = cmp >= 0; break;
          default: break;
        }
        return SlotI(r ? 1 : 0);
      }
      case ExprKind::kAnd:
        return SlotI(EvalExpr(e->kids[0], row).i != 0 &&
                             EvalExpr(e->kids[1], row).i != 0
                         ? 1
                         : 0);
      case ExprKind::kOr:
        return SlotI(EvalExpr(e->kids[0], row).i != 0 ||
                             EvalExpr(e->kids[1], row).i != 0
                         ? 1
                         : 0);
      case ExprKind::kNot:
        return SlotI(EvalExpr(e->kids[0], row).i == 0 ? 1 : 0);
      case ExprKind::kLike:
        return SlotI(StrLike(EvalExpr(e->kids[0], row).s, e->name) ? 1 : 0);
      case ExprKind::kStartsWith:
        return SlotI(StrStartsWith(EvalExpr(e->kids[0], row).s, e->name) ? 1
                                                                         : 0);
      case ExprKind::kEndsWith:
        return SlotI(StrEndsWith(EvalExpr(e->kids[0], row).s, e->name) ? 1
                                                                       : 0);
      case ExprKind::kContains:
        return SlotI(StrContains(EvalExpr(e->kids[0], row).s, e->name) ? 1
                                                                       : 0);
      case ExprKind::kCase: {
        bool c = EvalExpr(e->kids[0], row).i != 0;
        const ExprPtr& branch = c ? e->kids[1] : e->kids[2];
        Slot v = EvalExpr(branch, row);
        if (e->type == ValType::kF64 && branch->type != ValType::kF64) {
          return SlotD(static_cast<double>(v.i));
        }
        return v;
      }
      case ExprKind::kYearOf:
        return SlotI(EvalExpr(e->kids[0], row).i / 10000);
      case ExprKind::kSubstr: {
        const char* s = EvalExpr(e->kids[0], row).s;
        size_t len = std::strlen(s);
        size_t start = std::min<size_t>(e->aux0, len);
        size_t n = std::min<size_t>(e->aux1, len - start);
        return SlotS(Intern(std::string(s + start, n)));
      }
    }
    std::abort();
  }

  // --- operators -------------------------------------------------------------

  Relation EvalScan(const Plan& plan) {
    Relation out;
    out.schema = &plan.schema;
    const storage::Table& t = db_.table(plan.table_id);
    out.rows.reserve(t.rows());
    for (int64_t r = 0; r < t.rows(); ++r) {
      Row row(t.num_columns());
      for (size_t c = 0; c < t.num_columns(); ++c) {
        row[c] = t.column(static_cast<int>(c)).data[r];
      }
      out.rows.push_back(std::move(row));
    }
    return out;
  }

  Relation EvalSelect(const Plan& plan) {
    Relation in = Eval(*plan.children[0]);
    Relation out;
    out.schema = &plan.schema;
    for (Row& r : in.rows) {
      if (EvalExpr(plan.predicate, r).i != 0) out.rows.push_back(std::move(r));
    }
    return out;
  }

  Relation EvalProject(const Plan& plan) {
    Relation in = Eval(*plan.children[0]);
    Relation out;
    out.schema = &plan.schema;
    out.rows.reserve(in.rows.size());
    for (const Row& r : in.rows) {
      Row nr;
      nr.reserve(plan.projections.size());
      for (const auto& ne : plan.projections) {
        nr.push_back(EvalExpr(ne.expr, r));
      }
      out.rows.push_back(std::move(nr));
    }
    return out;
  }

  std::string KeyOf(const std::vector<ExprPtr>& keys, const Row& row) {
    std::string k;
    for (const ExprPtr& e : keys) {
      Slot v = EvalExpr(e, row);
      if (e->type == ValType::kStr) {
        k.append(v.s);
        k.push_back('\0');
      } else {
        k.append(reinterpret_cast<const char*>(&v.i), sizeof(v.i));
      }
    }
    return k;
  }

  Relation EvalJoin(const Plan& plan) {
    Relation left = Eval(*plan.children[0]);
    Relation right = Eval(*plan.children[1]);
    Relation out;
    out.schema = &plan.schema;

    // Build on the right side, probe with the left (keeps semi/anti simple).
    std::unordered_map<std::string, std::vector<size_t>> table;
    for (size_t i = 0; i < right.rows.size(); ++i) {
      table[KeyOf(plan.right_keys, right.rows[i])].push_back(i);
    }

    size_t right_width = plan.children[1]->schema.size();
    for (const Row& lrow : left.rows) {
      auto it = table.find(KeyOf(plan.left_keys, lrow));
      bool any = false;
      if (it != table.end()) {
        for (size_t ri : it->second) {
          const Row& rrow = right.rows[ri];
          if (plan.predicate != nullptr) {
            Row concat = lrow;
            concat.insert(concat.end(), rrow.begin(), rrow.end());
            if (EvalExpr(plan.predicate, concat).i == 0) continue;
          }
          any = true;
          if (plan.join_kind == JoinKind::kInner ||
              plan.join_kind == JoinKind::kLeftOuter) {
            Row nr = lrow;
            nr.insert(nr.end(), rrow.begin(), rrow.end());
            if (plan.join_kind == JoinKind::kLeftOuter) nr.push_back(SlotI(1));
            out.rows.push_back(std::move(nr));
          } else if (plan.join_kind == JoinKind::kSemi) {
            break;  // one witness suffices
          }
        }
      }
      switch (plan.join_kind) {
        case JoinKind::kSemi:
          if (any) out.rows.push_back(lrow);
          break;
        case JoinKind::kAnti:
          if (!any) out.rows.push_back(lrow);
          break;
        case JoinKind::kLeftOuter:
          if (!any) {
            Row nr = lrow;
            for (size_t c = 0; c < right_width; ++c) {
              ValType t = plan.children[1]->schema[c].type;
              nr.push_back(t == ValType::kStr ? SlotS(Intern(""))
                                              : SlotI(0));
            }
            nr.push_back(SlotI(0));  // matched = false
            out.rows.push_back(std::move(nr));
          }
          break;
        case JoinKind::kInner:
          break;
      }
    }
    return out;
  }

  Relation EvalAgg(const Plan& plan) {
    Relation in = Eval(*plan.children[0]);
    Relation out;
    out.schema = &plan.schema;

    struct Group {
      Row key_values;
      std::vector<double> facc;  // sum / min / max as doubles
      std::vector<int64_t> iacc;
      std::vector<int64_t> count;
      bool seen = false;
    };

    std::unordered_map<std::string, Group> groups;
    std::vector<std::string> order;  // deterministic output order

    std::vector<ExprPtr> key_exprs;
    for (const auto& g : plan.group_by) key_exprs.push_back(g.expr);

    for (const Row& r : in.rows) {
      std::string key = KeyOf(key_exprs, r);
      auto [it, inserted] = groups.try_emplace(key);
      Group& g = it->second;
      if (inserted) {
        order.push_back(key);
        for (const auto& ge : plan.group_by) {
          Slot v = EvalExpr(ge.expr, r);
          if (ge.expr->type == ValType::kStr) v = SlotS(Intern(v.s));
          g.key_values.push_back(v);
        }
        g.facc.assign(plan.aggs.size(), 0.0);
        g.iacc.assign(plan.aggs.size(), 0);
        g.count.assign(plan.aggs.size(), 0);
      }
      for (size_t a = 0; a < plan.aggs.size(); ++a) {
        const qplan::AggSpec& spec = plan.aggs[a];
        if (spec.fn == AggFn::kCount) {
          ++g.count[a];
          continue;
        }
        Slot v = EvalExpr(spec.arg, r);
        bool is_f = spec.arg->type == ValType::kF64;
        double dv = is_f ? v.d : static_cast<double>(v.i);
        switch (spec.fn) {
          case AggFn::kSum:
          case AggFn::kAvg:
            g.facc[a] += dv;
            g.iacc[a] += v.i;
            break;
          case AggFn::kMin:
            if (g.count[a] == 0 || dv < g.facc[a]) {
              g.facc[a] = dv;
              g.iacc[a] = v.i;
            }
            break;
          case AggFn::kMax:
            if (g.count[a] == 0 || dv > g.facc[a]) {
              g.facc[a] = dv;
              g.iacc[a] = v.i;
            }
            break;
          case AggFn::kCount:
            break;
        }
        ++g.count[a];
      }
    }

    // Global aggregation produces a zero row even on empty input.
    if (plan.group_by.empty() && groups.empty()) {
      Group g;
      g.facc.assign(plan.aggs.size(), 0.0);
      g.iacc.assign(plan.aggs.size(), 0);
      g.count.assign(plan.aggs.size(), 0);
      groups[""] = g;
      order.push_back("");
    }

    for (const std::string& key : order) {
      Group& g = groups[key];
      Row r = g.key_values;
      for (size_t a = 0; a < plan.aggs.size(); ++a) {
        const qplan::AggSpec& spec = plan.aggs[a];
        ValType out_t = plan.schema[plan.group_by.size() + a].type;
        switch (spec.fn) {
          case AggFn::kCount:
            r.push_back(SlotI(g.count[a]));
            break;
          case AggFn::kAvg:
            r.push_back(
                SlotD(g.count[a] == 0 ? 0.0 : g.facc[a] / g.count[a]));
            break;
          default:
            if (out_t == ValType::kF64) {
              r.push_back(SlotD(g.facc[a]));
            } else {
              r.push_back(SlotI(g.iacc[a]));
            }
        }
      }
      out.rows.push_back(std::move(r));
    }
    return out;
  }

  Relation EvalSort(const Plan& plan) {
    Relation in = Eval(*plan.children[0]);
    Relation out;
    out.schema = &plan.schema;
    out.rows = std::move(in.rows);
    std::stable_sort(
        out.rows.begin(), out.rows.end(), [&](const Row& a, const Row& b) {
          for (const qplan::SortKey& k : plan.sort_keys) {
            Slot va = EvalExpr(k.expr, a);
            Slot vb = EvalExpr(k.expr, b);
            int cmp;
            if (k.expr->type == ValType::kStr) {
              cmp = std::strcmp(va.s, vb.s);
            } else if (k.expr->type == ValType::kF64) {
              cmp = va.d < vb.d ? -1 : (va.d > vb.d ? 1 : 0);
            } else {
              cmp = va.i < vb.i ? -1 : (va.i > vb.i ? 1 : 0);
            }
            if (cmp != 0) return k.desc ? cmp > 0 : cmp < 0;
          }
          return false;
        });
    return out;
  }

  Relation EvalLimit(const Plan& plan) {
    Relation in = Eval(*plan.children[0]);
    if (plan.limit >= 0 &&
        in.rows.size() > static_cast<size_t>(plan.limit)) {
      in.rows.resize(plan.limit);
    }
    in.schema = &plan.schema;
    return in;
  }

  storage::Database& db_;
  std::deque<std::string> strings_;
};

}  // namespace

storage::ResultTable Execute(const qplan::Plan& plan, storage::Database& db) {
  Evaluator ev(db);
  Relation rel = ev.Eval(plan);
  std::vector<storage::ColType> types;
  for (const auto& c : plan.schema) types.push_back(qplan::ToColType(c.type));
  storage::ResultTable out(types);
  for (const Row& r : rel.rows) {
    std::vector<Slot> row = r;
    for (size_t c = 0; c < row.size(); ++c) {
      if (plan.schema[c].type == ValType::kStr) {
        row[c] = SlotS(out.InternString(row[c].s));
      }
    }
    out.AddRow(std::move(row));
  }
  return out;
}

}  // namespace qc::volcano
