// Mutation self-tests for the static verifier layer (bc_verify.h,
// jit_audit.h): deliberately corrupted programs and stitched images that a
// sound checker MUST reject, each tagged with the invariant expected to
// fire. Shared by the qc_verify CLI (`--self-test`) and
// tests/analysis_test.cc so the two suites cannot drift.
//
// A mutation's `apply` works on a copy of a real compiled program (or its
// stitched image) and returns false when the program has no applicable
// site (e.g. no parallel fragment to corrupt) — drivers skip those, but
// should assert that the canonical corpus program (TPC-H Q1 at full stack
// level, compiled with parallelism info) applies every bytecode mutation.
#ifndef QC_ANALYSIS_MUTATIONS_H_
#define QC_ANALYSIS_MUTATIONS_H_

#include <vector>

#include "exec/bytecode.h"
#include "jit/emitter.h"

namespace qc::exec::analysis {

struct BcMutation {
  const char* name;       // short slug for reporting
  const char* invariant;  // expected invariant, '|'-separated alternatives
  bool (*apply)(BytecodeProgram* prog);
};

struct JitMutation {
  const char* name;
  const char* invariant;
  bool (*apply)(const BytecodeProgram& prog, jit::StitchResult* stitched);
};

// Mutations of real compiled programs.
const std::vector<BcMutation>& BcMutations();

// Mutations of real stitched images (x86-64 template set; drivers skip
// when nothing stitched natively).
const std::vector<JitMutation>& JitMutations();

// Hand-built invalid programs for invariants that are awkward to reach by
// mutating a correct program. Each returns a program whose verification
// must report the named invariant.
BytecodeProgram SyntheticImpureParallelSort();   // comparator-purity
BytecodeProgram SyntheticTypeConfusion();        // type-mismatch
BytecodeProgram SyntheticCrossRegionJump();      // jump-region

// True when `invariant` matches the '|'-separated `expected` spec.
bool InvariantMatches(const char* expected, const std::string& invariant);

}  // namespace qc::exec::analysis

#endif  // QC_ANALYSIS_MUTATIONS_H_
