#include "analysis/mutations.h"

#include <cstring>
#include <string>

#include "jit/templates.h"

namespace qc::exec::analysis {

namespace {

uint16_t Op(BcOp op) { return static_cast<uint16_t>(op); }

bool IsOp(const Insn& insn, BcOp op) { return insn.op == Op(op); }

Insn* FindOp(BytecodeProgram* prog, BcOp op) {
  for (Insn& insn : prog->code) {
    if (IsOp(insn, op)) return &insn;
  }
  return nullptr;
}

// ---- bytecode mutations ---------------------------------------------------

bool ClobberContextReg(BytecodeProgram* prog) {
  Insn* insn = FindOp(prog, BcOp::kLoadK);
  if (insn == nullptr) return false;
  insn->a = prog->gov_reg;
  return true;
}

bool BackEdgeWithoutSafepoint(BytecodeProgram* prog) {
  for (Insn& insn : prog->code) {
    if (IsOp(insn, BcOp::kForNext) && insn.d < 0) {
      // A plain conditional branch on the same slot: the loop keeps its
      // shape but the back edge no longer polls the governor.
      insn.op = Op(BcOp::kJnz);
      return true;
    }
  }
  return false;
}

bool JumpOutOfBounds(BytecodeProgram* prog) {
  for (Insn& insn : prog->code) {
    if (IsOp(insn, BcOp::kJmp) || IsOp(insn, BcOp::kJz) ||
        IsOp(insn, BcOp::kJnz) || IsOp(insn, BcOp::kForNext)) {
      insn.d = 1000000;
      return true;
    }
  }
  return false;
}

bool RegisterOutOfRange(BytecodeProgram* prog) {
  Insn* insn = FindOp(prog, BcOp::kLoadK);
  if (insn == nullptr) return false;
  insn->a = prog->num_regs + 7;
  return true;
}

bool ReadOfUndefinedReg(BytecodeProgram* prog) {
  // A brand-new register nothing ever writes.
  uint32_t fresh = prog->num_regs++;
  Insn* insn = FindOp(prog, BcOp::kMov);
  if (insn != nullptr) {
    insn->b = fresh;
    return true;
  }
  insn = FindOp(prog, BcOp::kJz);
  if (insn == nullptr) insn = FindOp(prog, BcOp::kJnz);
  if (insn == nullptr) return false;
  insn->a = fresh;
  return true;
}

bool GovCountdownNotAdjacent(BytecodeProgram* prog) {
  prog->gov_cnt_reg = prog->gov_reg;  // aliases + breaks adjacency
  return true;
}

bool EmitToWrongRegister(BytecodeProgram* prog) {
  Insn* insn = FindOp(prog, BcOp::kEmit);
  if (insn == nullptr) return false;
  insn->b = prog->stats_reg;
  return true;
}

bool LogRowToForeignRegister(BytecodeProgram* prog) {
  Insn* insn = FindOp(prog, BcOp::kLogRow);
  if (insn == nullptr) return false;
  insn->c = prog->out_reg;  // out_reg is never a bound addend log
  return true;
}

// ---- stitched-image mutations ---------------------------------------------

void Wr32(std::vector<uint8_t>* code, size_t at, uint32_t v) {
  (*code)[at] = static_cast<uint8_t>(v);
  (*code)[at + 1] = static_cast<uint8_t>(v >> 8);
  (*code)[at + 2] = static_cast<uint8_t>(v >> 16);
  (*code)[at + 3] = static_cast<uint8_t>(v >> 24);
}

uint32_t Rd32(const std::vector<uint8_t>& code, size_t at) {
  return uint32_t(code[at]) | uint32_t(code[at + 1]) << 8 |
         uint32_t(code[at + 2]) << 16 | uint32_t(code[at + 3]) << 24;
}

// Finds the first natively-stitched pc whose template carries a patch of
// `kind`; returns the blob offset of that patch field, or SIZE_MAX.
size_t FindPatchField(const BytecodeProgram& prog,
                      const jit::StitchResult& st, jit::PatchKind kind,
                      uint32_t* pc_out) {
  bool layout_ok = jit::RuntimeLayoutUsable();
  for (size_t pc = 0; pc < prog.code.size(); ++pc) {
    if (st.entry[pc] == jit::kNoEntry) continue;
    const jit::OpTemplate* t = jit::SelectTemplate(prog.code[pc], layout_ok);
    if (t == nullptr) continue;
    for (uint8_t i = 0; i < t->num_patches; ++i) {
      if (t->patches[i].kind != kind) continue;
      if (pc_out != nullptr) *pc_out = static_cast<uint32_t>(pc);
      return size_t(st.entry[pc]) + t->patches[i].offset;
    }
  }
  return SIZE_MAX;
}

bool TruncateBlob(const BytecodeProgram&, jit::StitchResult* st) {
  if (st->code.empty()) return false;
  st->code.pop_back();
  return true;
}

bool CorruptEntryOffset(const BytecodeProgram&, jit::StitchResult* st) {
  for (uint32_t& e : st->entry) {
    if (e != jit::kNoEntry) {
      e += 1;
      return true;
    }
  }
  return false;
}

bool CorruptNumNative(const BytecodeProgram&, jit::StitchResult* st) {
  if (st->num_native == 0) return false;
  st->num_native -= 1;
  return true;
}

bool CorruptBranchRel32(const BytecodeProgram& prog, jit::StitchResult* st) {
  size_t at = FindPatchField(prog, *st, jit::PatchKind::kJumpD, nullptr);
  if (at == SIZE_MAX || at + 4 > st->code.size()) return false;
  Wr32(&st->code, at, Rd32(st->code, at) + 4);
  return true;
}

bool CorruptSlotDisplacement(const BytecodeProgram& prog,
                             jit::StitchResult* st) {
  for (jit::PatchKind k : {jit::PatchKind::kSlotA, jit::PatchKind::kSlotB,
                           jit::PatchKind::kSlotC}) {
    size_t at = FindPatchField(prog, *st, k, nullptr);
    if (at == SIZE_MAX || at + 4 > st->code.size()) continue;
    Wr32(&st->code, at, Rd32(st->code, at) + 8);  // off-by-one register
    return true;
  }
  return false;
}

bool CorruptSortSiteEntry(const BytecodeProgram&, jit::StitchResult* st) {
  if (st->sort_sites.empty()) return false;
  st->sort_sites[0].cmp_entry += 1;
  return true;
}

}  // namespace

const std::vector<BcMutation>& BcMutations() {
  static const std::vector<BcMutation> muts = {
      {"clobbered-context-reg", "context-reg-clobber", ClobberContextReg},
      {"back-edge-without-safepoint", "backedge-safepoint",
       BackEdgeWithoutSafepoint},
      {"jump-out-of-bounds", "jump-bounds", JumpOutOfBounds},
      {"register-out-of-range", "operand-bounds", RegisterOutOfRange},
      {"read-of-undefined-reg", "def-before-use", ReadOfUndefinedReg},
      {"gov-countdown-not-adjacent", "context-reg-contract",
       GovCountdownNotAdjacent},
      {"emit-to-wrong-register", "context-reg-contract", EmitToWrongRegister},
      {"logrow-to-foreign-register", "fragment-isolation",
       LogRowToForeignRegister},
  };
  return muts;
}

const std::vector<JitMutation>& JitMutations() {
  static const std::vector<JitMutation> muts = {
      {"truncated-blob", "entry-layout", TruncateBlob},
      {"corrupted-entry-offset", "entry-layout", CorruptEntryOffset},
      {"corrupted-num-native", "entry-layout", CorruptNumNative},
      {"corrupted-branch-rel32", "jump-fixup|deopt-thunk",
       CorruptBranchRel32},
      {"corrupted-slot-displacement", "patch-value", CorruptSlotDisplacement},
      {"corrupted-sort-site", "sort-site", CorruptSortSiteEntry},
  };
  return muts;
}

namespace {

// Skeleton shared by the synthetic programs: 16 registers, context regs
// r10..r14, presets for r0/r1.
BytecodeProgram SyntheticBase() {
  BytecodeProgram p;
  p.num_regs = 16;
  p.out_reg = 10;
  p.stats_reg = 11;
  p.rec_reg = 12;
  p.gov_reg = 13;
  p.gov_cnt_reg = 14;
  Slot s{};
  p.presets.emplace_back(0, s);
  p.presets.emplace_back(1, s);
  return p;
}

Insn MakeInsn(BcOp op, uint32_t a = 0, uint32_t b = 0, uint32_t c = 0,
              int32_t d = 0, uint16_t n = 0) {
  Insn insn{};
  insn.op = Op(op);
  insn.a = a;
  insn.b = b;
  insn.c = c;
  insn.d = d;
  insn.n = n;
  return insn;
}

}  // namespace

BytecodeProgram SyntheticImpureParallelSort() {
  // [kJmp skip, comparator, kRet, sort, kRet] where the comparator
  // allocates from the record heap — impure — yet the sort instruction
  // claims a parallel-safe comparator (n = 1).
  BytecodeProgram p = SyntheticBase();
  p.extra = {5, 6, 7};  // {param0, param1, result}
  p.code.push_back(MakeInsn(BcOp::kJmp, 0, 0, 0, +2));
  p.code.push_back(MakeInsn(BcOp::kPoolAlloc, 7, 5, p.rec_reg));
  p.code.push_back(MakeInsn(BcOp::kRet));
  p.code.push_back(MakeInsn(BcOp::kArrSort, 0, 1, 1, 0, 1));
  p.code.push_back(MakeInsn(BcOp::kRet));
  return p;
}

BytecodeProgram SyntheticTypeConfusion() {
  // r2 provably holds an i64 (comparison result); kAddF then reads it as
  // an f64.
  BytecodeProgram p = SyntheticBase();
  p.code.push_back(MakeInsn(BcOp::kEqI, 2, 0, 1));
  p.code.push_back(MakeInsn(BcOp::kAddF, 3, 2, 2));
  p.code.push_back(MakeInsn(BcOp::kRet));
  return p;
}

BytecodeProgram SyntheticCrossRegionJump() {
  // A main-stream branch whose target lands inside a comparator
  // subroutine region.
  BytecodeProgram p = SyntheticBase();
  p.extra = {5, 6, 7};
  p.code.push_back(MakeInsn(BcOp::kJz, 0, 0, 0, +1));  // -> pc 2: foreign
  p.code.push_back(MakeInsn(BcOp::kJmp, 0, 0, 0, +2));
  p.code.push_back(MakeInsn(BcOp::kMov, 7, 5));        // comparator body
  p.code.push_back(MakeInsn(BcOp::kRet));
  p.code.push_back(MakeInsn(BcOp::kArrSort, 0, 1, 2, 0, 0));
  p.code.push_back(MakeInsn(BcOp::kRet));
  return p;
}

bool InvariantMatches(const char* expected, const std::string& invariant) {
  const char* s = expected;
  while (*s != '\0') {
    const char* bar = std::strchr(s, '|');
    size_t len = bar != nullptr ? size_t(bar - s) : std::strlen(s);
    if (invariant.size() == len && std::memcmp(invariant.data(), s, len) == 0) {
      return true;
    }
    if (bar == nullptr) break;
    s = bar + 1;
  }
  return false;
}

}  // namespace qc::exec::analysis
