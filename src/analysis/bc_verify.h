// Static verification of compiled bytecode programs (src/analysis/README.md).
//
// The IR level already has a machine-checked well-formedness story
// (ir/verify.h: ANF discipline + the expressibility principle). Below the
// IR, every invariant the engines rely on — slot def-before-use, safepoint
// coverage on loop back edges, the reserved-context-register contract,
// comparator purity for parallel sorts, morsel-fragment isolation — was
// previously enforced only by convention in the bytecode compiler and
// caught after the fact by sanitizers at runtime. This verifier extends
// the per-level checkability discipline down to the bytecode: an abstract
// interpretation over BytecodeProgram that proves, per instruction, that
// the program a compiler handed the VM/JIT cannot step outside the
// machine model the handlers and templates assume.
//
// Checked invariants (each violation names one):
//   operand-bounds       register/pool indices inside their pools
//   jump-bounds          every branch target is a real instruction index
//   jump-region          branches never cross region boundaries (main
//                        stream / comparator subroutines / morsel
//                        fragments are separate control-flow regions)
//   backedge-safepoint   every backward branch is a governor safepoint
//                        opcode (kForNext/kIncJmp/kJmpSp) — the governance
//                        liveness guarantee
//   context-reg-contract the five reserved registers (out/stats/rec/gov/
//                        gov_cnt) are in range, distinct, adjacent where
//                        the JIT requires it, and named by exactly the
//                        instructions that must carry them
//   context-reg-clobber  no instruction writes a reserved register
//   def-before-use       no register is read on a path where it was never
//                        written (presets and context bindings count as
//                        entry definitions)
//   type-mismatch        the per-slot type lattice (i64 / f64 / str / ptr
//                        / any) is respected: f64 arithmetic never reads a
//                        slot that only ever held an integer, string
//                        predicates never read a non-string, pointer
//                        dereferences never read plain scalars
//   comparator-purity    an independent re-proof (CFG-reachability based,
//                        not the compiler's linear scan) that every sort
//                        comparator flagged parallel-safe (insn.n == 1)
//                        only executes read-only whitelisted operations
//   comparator-result    every comparator exit path defined its result reg
//   subroutine-shape     comparator regions are well-formed ([entry,
//                        sort pc) terminated by kRet, entry before the
//                        sort instruction)
//   fragment-isolation   morsel fragments contain no nested kParLoop and
//                        no parallel sorts, log only to their bound addend
//                        logs, and only write through pointers established
//                        inside the fragment or rebound per morsel by the
//                        runtime (fragment-private state)
//
// Verification is compile-time-only: it runs where programs are created
// (Interpreter program cache, server plan cache, qc_verify CLI) and never
// on a per-row path. See VerifyEnabled() for the gating contract.
#ifndef QC_ANALYSIS_BC_VERIFY_H_
#define QC_ANALYSIS_BC_VERIFY_H_

#include <cstdint>
#include <string>
#include <vector>

#include "exec/bytecode.h"

namespace qc::exec::analysis {

// pc value for program-level violations not tied to one instruction.
constexpr uint32_t kNoPc = 0xFFFFFFFFu;

struct Violation {
  uint32_t pc = kNoPc;     // instruction index, or kNoPc
  std::string invariant;   // named invariant (see file comment)
  std::string detail;      // human-readable specifics
};

struct VerifyResult {
  std::vector<Violation> violations;
  bool ok() const { return violations.empty(); }
  // One line per violation: "pc N: <invariant>: <detail>".
  std::string Report() const;
};

// Full structural + dataflow verification of one compiled program.
// Deterministic, allocation-bounded, and independent of the Database the
// program was compiled against (only the program image is inspected).
VerifyResult VerifyProgram(const BytecodeProgram& prog);

// Gating shared by every verification hook (this verifier and the JIT
// auditor, src/analysis/jit_audit.h):
//   * QC_VERIFY=1 forces verification on, QC_VERIFY=0 forces it off;
//   * unset: on in Debug (!NDEBUG) and sanitizer builds (QC_ASAN/QC_TSAN
//     configure QC_SANITIZER_BUILD), off in plain Release.
// Release-with-QC_VERIFY=0 overhead is therefore exactly zero code run.
bool VerifyEnabled();

// Process-wide runtime override of the VerifyEnabled() gate: 0 forces
// verification off, 1 forces it on, -1 restores the QC_VERIFY/build-type
// default. For benches and tests that need both sides of the gate in one
// process (the env default is latched on first use); not for production
// paths.
void SetVerifyEnabledOverride(int v);

// Die loudly (report on stderr, abort) when `prog` fails verification.
// `what` names the program in the report (function or query name). Used on
// trusted in-process paths where a verifier hit means a compiler bug; the
// server's plan cache instead surfaces the report as a structured error.
void CheckProgram(const BytecodeProgram& prog, const std::string& what);

}  // namespace qc::exec::analysis

#endif  // QC_ANALYSIS_BC_VERIFY_H_
