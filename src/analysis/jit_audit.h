// Static audit of the copy-and-patch JIT layer (src/analysis/README.md).
//
// Complements the bytecode verifier (bc_verify.h) one level further down:
// the objects being checked are the pre-assembled per-opcode templates and
// the stitched program image that is about to be handed executable pages.
// The auditor re-derives the stitcher's layout from the public template
// selection API and checks the emitted bytes against it — a disagreement
// means StitchProgram and the templates have drifted, and the program must
// not be installed.
//
// Checked invariants (each violation names one):
//   template-shape   every template is self-consistent: non-empty code,
//                    patch count within the descriptor array, every patch
//                    field (4 bytes for disp32/rel32/imm32, 8 for imm64)
//                    inside the template, no two fields overlapping
//   entry-layout     per-pc entry offsets are exactly the stitcher's
//                    layout: prologue first, native segments in pc order,
//                    every entry + template size inside the blob,
//                    num_native consistent with the entry table
//   patch-value      every non-branch patch byte-compares to the value the
//                    descriptor demands (slot displacements in range of
//                    the register file, resolved pointers/constants/extra
//                    addresses, LIKE-pattern and sort-site descriptor
//                    addresses pointing into the result's own vectors)
//   jump-fixup       every rel32 branch lands on the native entry of its
//                    bytecode target when one exists
//   deopt-thunk      branches into non-native territory land on an exit
//                    stub returning exactly the target pc, and that pc is
//                    a real instruction index
//   abort-thunk      governance abort branches land on an exit stub
//                    returning the kAbortPc sentinel
//   sort-site        natively-stitched sorts have fully-native comparator
//                    regions and descriptors whose fields match the
//                    instruction (entry, param/result triple, register-
//                    file size, governance register)
//   wx-policy        installed code pages are readable/executable and not
//                    writable (W^X held after mprotect)
//
// Gating: same contract as the bytecode verifier (bc_verify.h
// VerifyEnabled()) — always on in Debug/sanitizer builds, QC_VERIFY=1
// elsewhere; all audits run at stitch/install time, never per row.
#ifndef QC_ANALYSIS_JIT_AUDIT_H_
#define QC_ANALYSIS_JIT_AUDIT_H_

#include <cstddef>

#include "analysis/bc_verify.h"
#include "jit/emitter.h"

namespace qc::exec::analysis {

// Validates every template reachable through jit::SelectTemplate (all
// opcodes, both map-key kinds, both layout-probe outcomes). Violations use
// pc = opcode value for attribution. Cheap enough to run once per process
// at first JIT compile.
VerifyResult AuditTemplates();

// Validates one stitched-but-not-yet-installed image against the program
// it was stitched from. Must be called before the code is made executable;
// a non-ok result means the image is corrupt and must be discarded.
VerifyResult AuditStitch(const BytecodeProgram& prog,
                         const jit::StitchResult& stitched);

// Post-install check that the page range holding [base, base + size) is
// mapped r-x and not writable (Linux: /proc/self/maps; elsewhere the check
// is vacuous and returns ok).
VerifyResult AuditWx(const void* base, size_t size);

}  // namespace qc::exec::analysis

#endif  // QC_ANALYSIS_JIT_AUDIT_H_
