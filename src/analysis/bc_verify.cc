#include "analysis/bc_verify.h"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <deque>
#include <unordered_map>
#include <utility>

namespace qc::exec::analysis {

namespace {

// -------------------------------------------------------------------------
// Per-slot abstract domain.
//
// Types: a tiny lattice over what a Slot's union fields can legally hold.
// kAny is the top element (column reads, constants, record/map payloads —
// anything whose static type the program image does not record). Integer
// reads (.i) also accept kPtr: the VM's null tests, pointer-identity
// compares and the fused while-exit kJz all legitimately read .i of a
// pointer slot.
// -------------------------------------------------------------------------
enum class Abs : uint8_t { kI64, kF64, kStr, kPtr, kAny };

const char* AbsName(Abs t) {
  switch (t) {
    case Abs::kI64: return "i64";
    case Abs::kF64: return "f64";
    case Abs::kStr: return "str";
    case Abs::kPtr: return "ptr";
    case Abs::kAny: return "any";
  }
  return "?";
}

bool Compat(Abs have, Abs need) {
  if (have == Abs::kAny || need == Abs::kAny) return true;
  if (need == Abs::kI64) return have == Abs::kI64 || have == Abs::kPtr;
  return have == need;
}

struct SlotState {
  uint8_t defined = 0;  // written on every path reaching this point
  uint8_t local = 0;    // written inside the current region (or rebound
                        // per-morsel by the parallel runtime) — the
                        // fragment-isolation provenance bit
  Abs type = Abs::kAny;

  bool operator==(const SlotState& o) const {
    return defined == o.defined && local == o.local && type == o.type;
  }
};

SlotState Join(const SlotState& a, const SlotState& b) {
  SlotState r;
  r.defined = a.defined && b.defined;
  r.local = a.local && b.local;
  r.type = a.type == b.type ? a.type : Abs::kAny;
  return r;
}

using State = std::vector<SlotState>;

bool JoinInto(State& into, const State& from) {
  bool changed = false;
  for (size_t i = 0; i < into.size(); ++i) {
    SlotState j = Join(into[i], from[i]);
    if (!(j == into[i])) {
      into[i] = j;
      changed = true;
    }
  }
  return changed;
}

// -------------------------------------------------------------------------
// Per-instruction effect model. Derived independently from the VM handler
// bodies (bytecode.cc ExecImpl) and the JIT template semantics — NOT from
// the compiler's emission code, so a compiler that starts emitting
// operands the handlers don't implement fails verification here.
// -------------------------------------------------------------------------
struct RegRead {
  uint32_t reg;
  Abs need;
};

struct Effects {
  RegRead reads[5];
  int nreads = 0;
  uint32_t writes[2];
  Abs wtype[2] = {Abs::kAny, Abs::kAny};
  int nwrites = 0;
  bool mov = false;           // kMov: dst copies src's abstract state
  bool reads_extra = false;   // reads the registers in extra[off, off+n)
  uint32_t extra_off = 0;
  uint16_t extra_n = 0;
  // Pointer registers this instruction *stores through* (shared-state
  // mutation candidates for the fragment-isolation check).
  uint32_t stores_thru[1];
  int nstores = 0;
};

struct JumpInfo {
  bool is_jump = false;
  bool unconditional = false;  // no fall-through
  bool safepoint = false;      // may be a loop back edge
};

JumpInfo JumpKind(BcOp op) {
  JumpInfo j;
  switch (op) {
    case BcOp::kJmp:
      j = {true, true, false};
      break;
    case BcOp::kIncJmp:
      j = {true, true, true};
      break;
    case BcOp::kJmpSp:
      j = {true, true, true};
      break;
    case BcOp::kForNext:
      j = {true, false, true};
      break;
    case BcOp::kJz: case BcOp::kJnz: case BcOp::kJgeI:
    case BcOp::kJnEqI: case BcOp::kJnNeI: case BcOp::kJnLtI:
    case BcOp::kJnLeI: case BcOp::kJnGtI: case BcOp::kJnGeI:
    case BcOp::kJnEqF: case BcOp::kJnNeF: case BcOp::kJnLtF:
    case BcOp::kJnLeF: case BcOp::kJnGtF: case BcOp::kJnGeF:
    case BcOp::kJnColEqI: case BcOp::kJnColNeI: case BcOp::kJnColLtI:
    case BcOp::kJnColLeI: case BcOp::kJnColGtI: case BcOp::kJnColGeI:
    case BcOp::kJnColEqF: case BcOp::kJnColNeF: case BcOp::kJnColLtF:
    case BcOp::kJnColLeF: case BcOp::kJnColGtF: case BcOp::kJnColGeF:
    case BcOp::kParLoop:
      j = {true, false, false};
      break;
    default:
      break;
  }
  return j;
}

// Read-only per the handler bodies: no allocation, no interning, no emit,
// no log append, no store through a pointer, no morsel dispatch. This is
// the independent re-derivation of what may run concurrently over private
// register files (the parallel-sort comparator contract); it deliberately
// does not share code with BytecodeCompiler::SubroutineParallelSafe.
bool PureForParallel(BcOp op) {
  switch (op) {
    case BcOp::kStrSubstr:   // interns into the context string arena
    case BcOp::kRecNew: case BcOp::kRecSet:
    case BcOp::kPoolAlloc: case BcOp::kPoolRecNew:
    case BcOp::kArrNew: case BcOp::kMallocArr: case BcOp::kArrSet:
    case BcOp::kArrSort:
    case BcOp::kListNew: case BcOp::kListAppend: case BcOp::kListSort:
    case BcOp::kMapNew: case BcOp::kMapInsert:
    case BcOp::kMMapNew: case BcOp::kMMapAdd:
    case BcOp::kRecAccAddI: case BcOp::kRecAccAddF:
    case BcOp::kArrAccAddI: case BcOp::kArrAccAddF:
    case BcOp::kEmit: case BcOp::kParLoop: case BcOp::kLogRow:
      return false;
    default:
      return true;
  }
}

Effects InsnEffects(const Insn& I) {
  Effects e;
  auto R = [&](uint32_t reg, Abs need) { e.reads[e.nreads++] = {reg, need}; };
  auto W = [&](uint32_t reg, Abs t) {
    e.wtype[e.nwrites] = t;
    e.writes[e.nwrites++] = reg;
  };
  auto S = [&](uint32_t reg) { e.stores_thru[e.nstores++] = reg; };
  uint32_t dreg = static_cast<uint32_t>(I.d);
  switch (static_cast<BcOp>(I.op)) {
    case BcOp::kRet:
    case BcOp::kJmp:
      break;
    case BcOp::kJz:
    case BcOp::kJnz:
      R(I.a, Abs::kAny);
      break;
    case BcOp::kJgeI:
      R(I.a, Abs::kI64);
      R(I.b, Abs::kI64);
      break;
    case BcOp::kForNext:
      R(I.a, Abs::kI64);
      R(I.b, Abs::kI64);
      W(I.a, Abs::kI64);
      break;
    case BcOp::kIncJmp:
      R(I.a, Abs::kI64);
      W(I.a, Abs::kI64);
      break;
    case BcOp::kJmpSp:
      break;
    case BcOp::kLoadK:
      W(I.a, Abs::kAny);
      break;
    case BcOp::kMov:
      R(I.b, Abs::kAny);
      W(I.a, Abs::kAny);
      e.mov = true;
      break;
    case BcOp::kAddI: case BcOp::kSubI: case BcOp::kMulI:
    case BcOp::kDivI: case BcOp::kModI: case BcOp::kBitAnd:
      R(I.b, Abs::kI64);
      R(I.c, Abs::kI64);
      W(I.a, Abs::kI64);
      break;
    case BcOp::kNegI:
      R(I.b, Abs::kI64);
      W(I.a, Abs::kI64);
      break;
    case BcOp::kAddF: case BcOp::kSubF: case BcOp::kMulF: case BcOp::kDivF:
      R(I.b, Abs::kF64);
      R(I.c, Abs::kF64);
      W(I.a, Abs::kF64);
      break;
    case BcOp::kNegF:
      R(I.b, Abs::kF64);
      W(I.a, Abs::kF64);
      break;
    case BcOp::kCastIF:
      R(I.b, Abs::kI64);
      W(I.a, Abs::kF64);
      break;
    case BcOp::kCastFI:
      R(I.b, Abs::kF64);
      W(I.a, Abs::kI64);
      break;
    case BcOp::kEqI: case BcOp::kNeI: case BcOp::kLtI:
    case BcOp::kLeI: case BcOp::kGtI: case BcOp::kGeI:
      R(I.b, Abs::kI64);
      R(I.c, Abs::kI64);
      W(I.a, Abs::kI64);
      break;
    case BcOp::kEqF: case BcOp::kNeF: case BcOp::kLtF:
    case BcOp::kLeF: case BcOp::kGtF: case BcOp::kGeF:
      R(I.b, Abs::kF64);
      R(I.c, Abs::kF64);
      W(I.a, Abs::kI64);
      break;
    case BcOp::kAnd: case BcOp::kOr:
      R(I.b, Abs::kAny);
      R(I.c, Abs::kAny);
      W(I.a, Abs::kI64);
      break;
    case BcOp::kNot:
      R(I.b, Abs::kAny);
      W(I.a, Abs::kI64);
      break;
    case BcOp::kStrEq: case BcOp::kStrNe: case BcOp::kStrLt:
    case BcOp::kStrStarts: case BcOp::kStrEnds: case BcOp::kStrContains:
      R(I.b, Abs::kStr);
      R(I.c, Abs::kStr);
      W(I.a, Abs::kI64);
      break;
    case BcOp::kStrLike:
      R(I.b, Abs::kStr);
      W(I.a, Abs::kI64);
      break;
    case BcOp::kStrLen:
      R(I.b, Abs::kStr);
      W(I.a, Abs::kI64);
      break;
    case BcOp::kStrSubstr:
      R(I.b, Abs::kStr);
      W(I.a, Abs::kStr);
      break;
    case BcOp::kRecNew:
      R(I.c, Abs::kPtr);
      W(I.a, Abs::kPtr);
      e.reads_extra = true;
      e.extra_off = I.b;
      e.extra_n = I.n;
      break;
    case BcOp::kRecGet:
      R(I.b, Abs::kPtr);
      W(I.a, Abs::kAny);
      break;
    case BcOp::kRecSet:
      R(I.a, Abs::kPtr);
      R(I.c, Abs::kAny);
      S(I.a);
      break;
    case BcOp::kPoolAlloc:
      R(I.b, Abs::kI64);
      R(I.c, Abs::kPtr);
      W(I.a, Abs::kPtr);
      break;
    case BcOp::kPoolRecNew:
      R(I.c, Abs::kPtr);
      W(I.a, Abs::kPtr);
      e.reads_extra = true;
      e.extra_off = I.b;
      e.extra_n = I.n;
      break;
    case BcOp::kArrNew:
    case BcOp::kMallocArr:
      R(I.b, Abs::kI64);
      W(I.a, Abs::kPtr);
      break;
    case BcOp::kArrGet:
      R(I.b, Abs::kPtr);
      R(I.c, Abs::kI64);
      W(I.a, Abs::kAny);
      break;
    case BcOp::kArrSet:
      R(I.a, Abs::kPtr);
      R(I.b, Abs::kI64);
      R(I.c, Abs::kAny);
      S(I.a);
      break;
    case BcOp::kArrLen:
      R(I.b, Abs::kPtr);
      W(I.a, Abs::kI64);
      break;
    case BcOp::kArrSort:
      R(I.a, Abs::kPtr);
      R(I.b, Abs::kI64);
      S(I.a);
      break;
    case BcOp::kListNew:
      W(I.a, Abs::kPtr);
      break;
    case BcOp::kListAppend:
      R(I.a, Abs::kPtr);
      R(I.b, Abs::kAny);
      R(I.c, Abs::kPtr);
      S(I.a);
      break;
    case BcOp::kListSize:
      R(I.b, Abs::kPtr);
      W(I.a, Abs::kI64);
      break;
    case BcOp::kListGet:
      R(I.b, Abs::kPtr);
      R(I.c, Abs::kI64);
      W(I.a, Abs::kAny);
      break;
    case BcOp::kListSort:
      R(I.a, Abs::kPtr);
      S(I.a);
      break;
    case BcOp::kMapNew:
      W(I.a, Abs::kPtr);
      break;
    case BcOp::kMapFind:
      R(I.b, Abs::kPtr);
      R(I.c, Abs::kAny);
      W(I.a, Abs::kPtr);
      break;
    case BcOp::kMapInsert:
      R(I.b, Abs::kPtr);
      R(I.c, Abs::kAny);
      R(dreg, Abs::kAny);
      W(I.a, Abs::kPtr);
      S(I.b);
      break;
    case BcOp::kMapNodeVal:
      R(I.b, Abs::kPtr);
      W(I.a, Abs::kAny);
      break;
    case BcOp::kMapGetOrNull:
      R(I.b, Abs::kPtr);
      R(I.c, Abs::kAny);
      W(I.a, Abs::kAny);
      break;
    case BcOp::kMapSize:
      R(I.b, Abs::kPtr);
      W(I.a, Abs::kI64);
      break;
    case BcOp::kMapEntryKV:
      R(I.c, Abs::kPtr);
      R(dreg, Abs::kI64);
      W(I.a, Abs::kAny);
      W(I.b, Abs::kAny);
      break;
    case BcOp::kMMapNew:
      W(I.a, Abs::kPtr);
      break;
    case BcOp::kMMapAdd:
      R(I.a, Abs::kPtr);
      R(I.b, Abs::kAny);
      R(I.c, Abs::kAny);
      S(I.a);
      break;
    case BcOp::kMMapGetOrNull:
      R(I.b, Abs::kPtr);
      R(I.c, Abs::kAny);
      W(I.a, Abs::kPtr);
      break;
    case BcOp::kIsNull:
      R(I.b, Abs::kAny);
      W(I.a, Abs::kI64);
      break;
    case BcOp::kColGet:
      R(I.c, Abs::kI64);
      W(I.a, Abs::kAny);
      break;
    case BcOp::kColDict:
    case BcOp::kIdxBucketLen:
    case BcOp::kIdxPkRow:
      R(I.c, Abs::kI64);
      W(I.a, Abs::kI64);
      break;
    case BcOp::kIdxBucketRow:
      R(I.c, Abs::kI64);
      R(dreg, Abs::kI64);
      W(I.a, Abs::kI64);
      break;
    case BcOp::kColGetEqI: case BcOp::kColGetNeI: case BcOp::kColGetLtI:
    case BcOp::kColGetLeI: case BcOp::kColGetGtI: case BcOp::kColGetGeI:
      R(I.c, Abs::kI64);
      R(dreg, Abs::kI64);
      W(I.a, Abs::kI64);
      break;
    case BcOp::kColGetEqF: case BcOp::kColGetNeF: case BcOp::kColGetLtF:
    case BcOp::kColGetLeF: case BcOp::kColGetGtF: case BcOp::kColGetGeF:
      R(I.c, Abs::kI64);
      R(dreg, Abs::kF64);
      W(I.a, Abs::kI64);
      break;
    case BcOp::kJnEqI: case BcOp::kJnNeI: case BcOp::kJnLtI:
    case BcOp::kJnLeI: case BcOp::kJnGtI: case BcOp::kJnGeI:
      R(I.a, Abs::kI64);
      R(I.b, Abs::kI64);
      break;
    case BcOp::kJnEqF: case BcOp::kJnNeF: case BcOp::kJnLtF:
    case BcOp::kJnLeF: case BcOp::kJnGtF: case BcOp::kJnGeF:
      R(I.a, Abs::kF64);
      R(I.b, Abs::kF64);
      break;
    case BcOp::kJnColEqI: case BcOp::kJnColNeI: case BcOp::kJnColLtI:
    case BcOp::kJnColLeI: case BcOp::kJnColGtI: case BcOp::kJnColGeI:
      R(I.a, Abs::kI64);
      R(I.c, Abs::kI64);
      break;
    case BcOp::kJnColEqF: case BcOp::kJnColNeF: case BcOp::kJnColLtF:
    case BcOp::kJnColLeF: case BcOp::kJnColGtF: case BcOp::kJnColGeF:
      R(I.a, Abs::kF64);
      R(I.c, Abs::kI64);
      break;
    case BcOp::kRecAccAddI:
      R(I.a, Abs::kPtr);
      R(I.c, Abs::kI64);
      S(I.a);
      break;
    case BcOp::kRecAccAddF:
      R(I.a, Abs::kPtr);
      R(I.c, Abs::kF64);
      S(I.a);
      break;
    case BcOp::kArrAccAddI:
      R(I.a, Abs::kPtr);
      R(I.b, Abs::kI64);
      R(I.c, Abs::kI64);
      S(I.a);
      break;
    case BcOp::kArrAccAddF:
      R(I.a, Abs::kPtr);
      R(I.b, Abs::kI64);
      R(I.c, Abs::kF64);
      S(I.a);
      break;
    case BcOp::kEmit:
      R(I.b, Abs::kPtr);
      e.reads_extra = true;
      e.extra_off = I.a;
      e.extra_n = I.n;
      break;
    case BcOp::kParLoop:
      break;
    case BcOp::kLogRow:
      R(I.c, Abs::kPtr);
      e.reads_extra = true;
      e.extra_off = I.b;
      e.extra_n = I.n;
      break;
    case BcOp::kNumOps:
      break;
  }
  return e;
}

// -------------------------------------------------------------------------
// The verifier proper.
// -------------------------------------------------------------------------
constexpr int kMainRegion = 0;

class Verifier {
 public:
  explicit Verifier(const BytecodeProgram& prog) : prog_(prog) {}

  VerifyResult Run() {
    if (!CheckProgramLevel()) return std::move(result_);
    BuildRegions();
    StructuralPass();
    // Dataflow trusts operand indices; a program with out-of-bounds
    // operands or branch targets already failed and is not analyzable.
    if (!bounds_clean_) return std::move(result_);
    DataflowAll();
    PurityPass();
    return std::move(result_);
  }

 private:
  void Add(uint32_t pc, const char* invariant, std::string detail) {
    result_.violations.push_back({pc, invariant, std::move(detail)});
  }

  bool InBoundsReg(uint32_t r) const { return r < prog_.num_regs; }

  bool IsCtxReg(uint32_t r) const {
    return r == prog_.out_reg || r == prog_.stats_reg ||
           r == prog_.rec_reg || r == prog_.gov_reg ||
           r == prog_.gov_cnt_reg;
  }

  // --- program-level contracts -------------------------------------------
  bool CheckProgramLevel() {
    const BytecodeProgram& p = prog_;
    if (p.code.empty()) {
      Add(kNoPc, "operand-bounds", "empty program (no kRet)");
      return false;
    }
    uint32_t ctx[5] = {p.out_reg, p.stats_reg, p.rec_reg, p.gov_reg,
                       p.gov_cnt_reg};
    const char* names[5] = {"out_reg", "stats_reg", "rec_reg", "gov_reg",
                            "gov_cnt_reg"};
    bool ok = true;
    for (int i = 0; i < 5; ++i) {
      if (!InBoundsReg(ctx[i])) {
        Add(kNoPc, "context-reg-contract",
            std::string(names[i]) + " = r" + std::to_string(ctx[i]) +
                " out of range (num_regs = " + std::to_string(p.num_regs) +
                ")");
        ok = false;
      }
      for (int j = 0; j < i; ++j) {
        if (ctx[i] == ctx[j]) {
          Add(kNoPc, "context-reg-contract",
              std::string(names[i]) + " aliases " + names[j] + " (r" +
                  std::to_string(ctx[i]) + ")");
          ok = false;
        }
      }
    }
    // The JIT safepoint slow path reaches the GovState* at
    // [countdown slot - 8]; only register adjacency makes that load valid.
    if (p.gov_cnt_reg != p.gov_reg + 1) {
      Add(kNoPc, "context-reg-contract",
          "gov_cnt_reg (r" + std::to_string(p.gov_cnt_reg) +
              ") != gov_reg + 1 (gov_reg = r" + std::to_string(p.gov_reg) +
              "); the JIT safepoint slow path requires adjacency");
      ok = false;
    }
    for (const auto& pr : p.presets) {
      if (!InBoundsReg(pr.first)) {
        Add(kNoPc, "operand-bounds",
            "preset targets r" + std::to_string(pr.first) +
                " out of range");
        ok = false;
      }
    }
    for (size_t i = 0; i < p.par_loops.size(); ++i) {
      const ParLoopCode& plc = p.par_loops[i];
      if (plc.entry >= p.code.size()) {
        Add(kNoPc, "fragment-isolation",
            "par_loops[" + std::to_string(i) + "] fragment entry pc " +
                std::to_string(plc.entry) + " out of range");
        ok = false;
        continue;
      }
      auto chk = [&](uint32_t r, const char* what) {
        if (!InBoundsReg(r)) {
          Add(kNoPc, "fragment-isolation",
              "par_loops[" + std::to_string(i) + "] " + what + " r" +
                  std::to_string(r) + " out of range");
          ok = false;
        }
      };
      chk(plc.src_lo_reg, "src_lo_reg");
      chk(plc.src_hi_reg, "src_hi_reg");
      chk(plc.lo_reg, "lo_reg");
      chk(plc.hi_reg, "hi_reg");
      for (uint32_t r : plc.red_regs) chk(r, "reduction reg");
      for (uint32_t r : plc.red_size_regs) chk(r, "reduction size reg");
      for (uint32_t r : plc.channel_var_regs) chk(r, "channel var reg");
      for (uint32_t r : plc.log_regs) chk(r, "log reg");
    }
    return ok;
  }

  // --- regions -----------------------------------------------------------
  // Region 0 is the main stream. Morsel fragments get ids 1..F (in entry
  // order); comparator subroutines get ids > F, inner subroutines
  // overriding outer ones so jumps are checked against the innermost
  // enclosing region.
  void BuildRegions() {
    size_t n = prog_.code.size();
    region_.assign(n, kMainRegion);
    // Fragments partition [first fragment entry, end of code).
    std::vector<std::pair<uint32_t, size_t>> frags;  // (entry, plc index)
    for (size_t i = 0; i < prog_.par_loops.size(); ++i) {
      frags.emplace_back(prog_.par_loops[i].entry, i);
    }
    std::sort(frags.begin(), frags.end());
    num_fragments_ = static_cast<int>(frags.size());
    for (size_t i = 0; i < frags.size(); ++i) {
      uint32_t lo = frags[i].first;
      uint32_t hi = i + 1 < frags.size() ? frags[i + 1].first
                                         : static_cast<uint32_t>(n);
      int rid = static_cast<int>(i) + 1;
      for (uint32_t pc = lo; pc < hi; ++pc) region_[pc] = rid;
      fragment_of_region_[rid] = frags[i].second;
      fragment_end_[rid] = hi;
    }
    // Comparator subroutines: [insn.c, sort pc). Walk sort instructions in
    // descending pc order so inner (later-marked) subroutines override the
    // outer region they are nested in.
    int next_id = num_fragments_ + 1;
    for (size_t pc = n; pc-- > 0;) {
      BcOp op = static_cast<BcOp>(prog_.code[pc].op);
      if (op != BcOp::kArrSort && op != BcOp::kListSort) continue;
      uint32_t entry = prog_.code[pc].c;
      sort_sites_.push_back({static_cast<uint32_t>(pc), entry});
      if (entry >= pc) {
        Add(static_cast<uint32_t>(pc), "subroutine-shape",
            "comparator entry pc " + std::to_string(entry) +
                " not before the sort instruction");
        bounds_clean_ = false;
        continue;
      }
      if (static_cast<BcOp>(prog_.code[pc - 1].op) != BcOp::kRet) {
        Add(static_cast<uint32_t>(pc), "subroutine-shape",
            "comparator region does not end in kRet before the sort "
            "instruction");
      }
      int rid = next_id++;
      for (uint32_t t = entry; t < pc; ++t) region_[t] = rid;
    }
    std::reverse(sort_sites_.begin(), sort_sites_.end());
  }

  // --- structural pass (every instruction, reachable or not) -------------
  void StructuralPass() {
    size_t n = prog_.code.size();
    for (size_t pc = 0; pc < n; ++pc) {
      const Insn& I = prog_.code[pc];
      uint32_t upc = static_cast<uint32_t>(pc);
      if (I.op >= static_cast<uint16_t>(BcOp::kNumOps)) {
        Add(upc, "operand-bounds", "bad opcode " + std::to_string(I.op));
        bounds_clean_ = false;
        continue;
      }
      BcOp op = static_cast<BcOp>(I.op);
      CheckPoolBounds(upc, I, op);
      CheckRegisterBounds(upc, I);
      CheckJump(upc, I, op);
      CheckContextRegs(upc, I, op);
      CheckFragmentStructure(upc, I, op);
    }
  }

  void CheckPoolBounds(uint32_t pc, const Insn& I, BcOp op) {
    auto bad = [&](const char* what, size_t idx, size_t size) {
      Add(pc, "operand-bounds",
          std::string(what) + " index " + std::to_string(idx) +
              " out of range (pool size " + std::to_string(size) + ")");
      bounds_clean_ = false;
    };
    switch (op) {
      case BcOp::kLoadK:
        if (I.b >= prog_.consts.size()) bad("consts", I.b,
                                            prog_.consts.size());
        break;
      case BcOp::kStrLike:
        if (I.c >= prog_.patterns.size()) bad("patterns", I.c,
                                              prog_.patterns.size());
        break;
      case BcOp::kMapNew:
      case BcOp::kMMapNew:
        if (I.b >= prog_.types.size()) bad("types", I.b,
                                           prog_.types.size());
        break;
      case BcOp::kColGet: case BcOp::kColDict:
      case BcOp::kIdxBucketLen: case BcOp::kIdxBucketRow:
      case BcOp::kIdxPkRow:
      case BcOp::kColGetEqI: case BcOp::kColGetNeI: case BcOp::kColGetLtI:
      case BcOp::kColGetLeI: case BcOp::kColGetGtI: case BcOp::kColGetGeI:
      case BcOp::kColGetEqF: case BcOp::kColGetNeF: case BcOp::kColGetLtF:
      case BcOp::kColGetLeF: case BcOp::kColGetGtF: case BcOp::kColGetGeF:
      case BcOp::kJnColEqI: case BcOp::kJnColNeI: case BcOp::kJnColLtI:
      case BcOp::kJnColLeI: case BcOp::kJnColGtI: case BcOp::kJnColGeI:
      case BcOp::kJnColEqF: case BcOp::kJnColNeF: case BcOp::kJnColLtF:
      case BcOp::kJnColLeF: case BcOp::kJnColGtF: case BcOp::kJnColGeF:
        if (I.b >= prog_.ptrs.size()) bad("ptrs", I.b, prog_.ptrs.size());
        break;
      case BcOp::kRecNew: case BcOp::kPoolRecNew:
        if (size_t(I.b) + I.n > prog_.extra.size())
          bad("extra", size_t(I.b) + I.n, prog_.extra.size());
        break;
      case BcOp::kEmit:
        if (size_t(I.a) + I.n > prog_.extra.size())
          bad("extra", size_t(I.a) + I.n, prog_.extra.size());
        break;
      case BcOp::kLogRow:
        if (size_t(I.b) + I.n > prog_.extra.size())
          bad("extra", size_t(I.b) + I.n, prog_.extra.size());
        break;
      case BcOp::kArrSort: case BcOp::kListSort:
        if (I.d < 0 || size_t(uint32_t(I.d)) + 3 > prog_.extra.size())
          bad("extra (comparator param/result triple)", size_t(int64_t(I.d)),
              prog_.extra.size());
        break;
      case BcOp::kParLoop:
        if (I.a >= prog_.par_loops.size())
          bad("par_loops", I.a, prog_.par_loops.size());
        break;
      case BcOp::kMapFind: case BcOp::kMapGetOrNull:
      case BcOp::kMMapGetOrNull:
        if (I.d != kMapKeyOther && I.d != kMapKeyI64) {
          Add(pc, "operand-bounds",
              "bad map key kind " + std::to_string(I.d));
          bounds_clean_ = false;
        }
        break;
      default:
        break;
    }
  }

  void CheckRegisterBounds(uint32_t pc, const Insn& I) {
    Effects e = InsnEffects(I);
    auto chk = [&](uint32_t r) {
      if (!InBoundsReg(r)) {
        Add(pc, "operand-bounds",
            "register r" + std::to_string(r) + " out of range (num_regs " +
                std::to_string(prog_.num_regs) + ")");
        bounds_clean_ = false;
      }
    };
    for (int i = 0; i < e.nreads; ++i) chk(e.reads[i].reg);
    for (int i = 0; i < e.nwrites; ++i) chk(e.writes[i]);
    if (e.reads_extra &&
        size_t(e.extra_off) + e.extra_n <= prog_.extra.size()) {
      for (uint16_t i = 0; i < e.extra_n; ++i) {
        chk(prog_.extra[e.extra_off + i]);
      }
    }
  }

  void CheckJump(uint32_t pc, const Insn& I, BcOp op) {
    JumpInfo j = JumpKind(op);
    size_t n = prog_.code.size();
    if (!j.is_jump) {
      // Execution must never fall off the end of the code array.
      if (pc + 1 == n && op != BcOp::kRet) {
        Add(pc, "jump-bounds", "last instruction is not a terminator");
        bounds_clean_ = false;
      }
      return;
    }
    if (!j.unconditional && pc + 1 == n) {
      Add(pc, "jump-bounds",
          std::string(BcOpName(op)) +
              " at end of code can fall through past the program");
      bounds_clean_ = false;
    }
    int64_t target = int64_t(pc) + 1 + I.d;
    if (target < 0 || target >= int64_t(n)) {
      Add(pc, "jump-bounds",
          std::string(BcOpName(op)) + " target " + std::to_string(target) +
              " outside [0, " + std::to_string(n) + ")");
      bounds_clean_ = false;
      return;
    }
    if (target <= int64_t(pc) && !j.safepoint) {
      Add(pc, "backedge-safepoint",
          std::string(BcOpName(op)) + " is a backward branch (target " +
              std::to_string(target) +
              ") but not a governor safepoint opcode");
    }
    if (region_[size_t(target)] != region_[pc]) {
      Add(pc, "jump-region",
          std::string(BcOpName(op)) + " target " + std::to_string(target) +
              " crosses from region " + std::to_string(region_[pc]) +
              " into region " + std::to_string(region_[size_t(target)]));
    }
  }

  void CheckContextRegs(uint32_t pc, const Insn& I, BcOp op) {
    Effects e = InsnEffects(I);
    for (int i = 0; i < e.nwrites; ++i) {
      if (IsCtxReg(e.writes[i])) {
        Add(pc, "context-reg-clobber",
            std::string(BcOpName(op)) + " writes reserved context register "
                "r" + std::to_string(e.writes[i]));
      }
    }
    // The instructions that carry a context register must carry exactly
    // the reserved one — a JIT template reaches per-run state through that
    // operand, so a stray register silently corrupts an unrelated slot.
    switch (op) {
      case BcOp::kRecNew: case BcOp::kPoolAlloc: case BcOp::kPoolRecNew:
        if (I.c != prog_.rec_reg) {
          Add(pc, "context-reg-contract",
              std::string(BcOpName(op)) + " heap operand r" +
                  std::to_string(I.c) + " is not rec_reg r" +
                  std::to_string(prog_.rec_reg));
        }
        break;
      case BcOp::kListAppend:
        if (I.c != prog_.stats_reg) {
          Add(pc, "context-reg-contract",
              "kListAppend stats operand r" + std::to_string(I.c) +
                  " is not stats_reg r" + std::to_string(prog_.stats_reg));
        }
        break;
      case BcOp::kEmit:
        if (I.b != prog_.out_reg) {
          Add(pc, "context-reg-contract",
              "kEmit output operand r" + std::to_string(I.b) +
                  " is not out_reg r" + std::to_string(prog_.out_reg));
        }
        break;
      default:
        break;
    }
  }

  void CheckFragmentStructure(uint32_t pc, const Insn& I, BcOp op) {
    int rid = region_[pc];
    bool in_fragment = rid >= 1 && rid <= num_fragments_;
    if (op == BcOp::kLogRow) {
      if (!in_fragment) {
        Add(pc, "fragment-isolation",
            "kLogRow outside any morsel fragment");
      } else {
        const ParLoopCode& plc = prog_.par_loops[fragment_of_region_[rid]];
        bool bound = false;
        for (uint32_t r : plc.log_regs) bound |= (r == I.c);
        if (!bound) {
          Add(pc, "fragment-isolation",
              "kLogRow log operand r" + std::to_string(I.c) +
                  " is not one of the fragment's bound addend logs");
        }
      }
    }
    if (!in_fragment) return;
    if (op == BcOp::kParLoop) {
      Add(pc, "fragment-isolation",
          "nested kParLoop inside a morsel fragment");
    }
    if ((op == BcOp::kArrSort || op == BcOp::kListSort) && I.n != 0) {
      Add(pc, "fragment-isolation",
          "sort inside a morsel fragment marked parallel-safe (the worker "
          "pool does not nest)");
    }
  }

  // --- dataflow ----------------------------------------------------------
  State EntryStateMain() const {
    State st(prog_.num_regs);
    for (const auto& pr : prog_.presets) {
      st[pr.first] = {1, 0, Abs::kAny};
    }
    // Context registers are bound by the VM at Run entry; `local` is set
    // because the parallel runtime rebinds them per morsel (they are never
    // shared-state handles from a fragment's point of view).
    st[prog_.out_reg] = {1, 1, Abs::kPtr};
    st[prog_.stats_reg] = {1, 1, Abs::kPtr};
    st[prog_.rec_reg] = {1, 1, Abs::kPtr};
    st[prog_.gov_reg] = {1, 1, Abs::kPtr};
    st[prog_.gov_cnt_reg] = {1, 1, Abs::kI64};
    return st;
  }

  void DataflowAll() {
    size_t n = prog_.code.size();
    in_state_.assign(n, State());
    visited_.assign(n, 0);
    checked_.assign(n, 0);
    // 1. Main stream from pc 0.
    Analyze(kMainRegion, 0, EntryStateMain());
    CheckRegion(kMainRegion);
    // 2. Morsel fragments, seeded from the state at their kParLoop header
    //    (the runtime copies the register file per morsel, then rebinds
    //    bounds, logs and context registers).
    for (size_t pc = 0; pc < n; ++pc) {
      if (static_cast<BcOp>(prog_.code[pc].op) != BcOp::kParLoop) continue;
      if (!visited_[pc]) continue;
      const ParLoopCode& plc = prog_.par_loops[prog_.code[pc].a];
      int rid = region_[plc.entry];
      if (rid < 1 || rid > num_fragments_) continue;  // shape issue, flagged
      State st = in_state_[pc];
      for (SlotState& s : st) s.local = 0;
      st[plc.lo_reg] = {1, 1, Abs::kI64};
      st[plc.hi_reg] = {1, 1, Abs::kI64};
      for (uint32_t r : plc.log_regs) st[r] = {1, 1, Abs::kPtr};
      // Reduction targets are rebound to morsel-private copies.
      for (uint32_t r : plc.red_regs) {
        st[r].defined = 1;
        st[r].local = 1;
      }
      st[prog_.out_reg] = {1, 1, Abs::kPtr};
      st[prog_.stats_reg] = {1, 1, Abs::kPtr};
      st[prog_.rec_reg] = {1, 1, Abs::kPtr};
      st[prog_.gov_reg] = {1, 1, Abs::kPtr};
      st[prog_.gov_cnt_reg] = {1, 1, Abs::kI64};
      Analyze(rid, plc.entry, std::move(st));
      CheckRegion(rid);
    }
    // 3. Comparator subroutines, seeded from the state at their sort
    //    instruction with the two parameter slots bound by the sort driver.
    //    Ascending entry order analyzes outer comparators before the
    //    comparators of sorts nested inside them, so the nested sort pc has
    //    a recorded state by the time we need it.
    std::sort(sort_sites_.begin(), sort_sites_.end(),
              [](const SortSite& a, const SortSite& b) {
                return a.entry < b.entry;
              });
    for (const SortSite& s : sort_sites_) {
      if (s.entry >= s.pc) continue;  // shape violation already reported
      if (!visited_[s.pc]) continue;  // sort unreachable: nothing to seed
      const Insn& I = prog_.code[s.pc];
      const uint32_t* ps = prog_.extra.data() + uint32_t(I.d);
      State st = in_state_[s.pc];
      st[ps[0]] = {1, 1, Abs::kAny};
      st[ps[1]] = {1, 1, Abs::kAny};
      int rid = region_[s.entry];
      Analyze(rid, s.entry, std::move(st));
      CheckRegion(rid);
      // Every exit path of the comparator must produce the result slot.
      for (uint32_t pc = s.entry; pc < s.pc; ++pc) {
        if (region_[pc] != rid || !visited_[pc]) continue;
        if (static_cast<BcOp>(prog_.code[pc].op) != BcOp::kRet) continue;
        if (!in_state_[pc][ps[2]].defined) {
          Add(pc, "comparator-result",
              "comparator can return without writing its result register "
              "r" + std::to_string(ps[2]));
        }
      }
    }
  }

  void Analyze(int rid, uint32_t entry, State entry_state) {
    size_t n = prog_.code.size();
    std::deque<uint32_t> work;
    auto propagate = [&](uint32_t from, uint32_t to, const State& st) {
      if (to >= n) return;
      if (region_[to] != rid) {
        // Jumps crossing regions are reported structurally; flowing off a
        // region's end (fall-through into foreign code) is only visible
        // here.
        if (to == from + 1) {
          Add(from, "jump-region",
              "control falls through from region " + std::to_string(rid) +
                  " into region " + std::to_string(region_[to]));
        }
        return;
      }
      if (!visited_[to]) {
        in_state_[to] = st;
        visited_[to] = 1;
        work.push_back(to);
      } else if (JoinInto(in_state_[to], st)) {
        work.push_back(to);
      }
    };
    if (entry >= n || region_[entry] != rid) return;
    if (!visited_[entry]) {
      in_state_[entry] = std::move(entry_state);
      visited_[entry] = 1;
      work.push_back(entry);
    } else if (JoinInto(in_state_[entry], entry_state)) {
      work.push_back(entry);
    }
    while (!work.empty()) {
      uint32_t pc = work.front();
      work.pop_front();
      const Insn& I = prog_.code[pc];
      BcOp op = static_cast<BcOp>(I.op);
      State st = in_state_[pc];
      // Transfer: apply writes (reads are checked post-fixpoint).
      Effects e = InsnEffects(I);
      if (e.mov) {
        SlotState src = st[I.b];
        src.defined = 1;
        src.local = 1;
        st[I.a] = src;
      } else {
        for (int i = 0; i < e.nwrites; ++i) {
          st[e.writes[i]] = {1, 1, e.wtype[i]};
        }
      }
      if (op == BcOp::kRet) continue;
      JumpInfo j = JumpKind(op);
      if (j.is_jump) {
        uint32_t target = uint32_t(int64_t(pc) + 1 + I.d);
        propagate(pc, target, st);
        if (!j.unconditional) propagate(pc, pc + 1, st);
      } else {
        propagate(pc, pc + 1, st);
      }
    }
  }

  void CheckRegion(int rid) {
    size_t n = prog_.code.size();
    bool in_fragment = rid >= 1 && rid <= num_fragments_;
    for (size_t pc = 0; pc < n; ++pc) {
      if (region_[pc] != rid || !visited_[pc] || checked_[pc]) continue;
      checked_[pc] = 1;
      const Insn& I = prog_.code[pc];
      const State& st = in_state_[pc];
      Effects e = InsnEffects(I);
      auto use = [&](uint32_t r, Abs need) {
        if (!st[r].defined) {
          Add(uint32_t(pc), "def-before-use",
              std::string(BcOpName(static_cast<BcOp>(I.op))) + " reads r" +
                  std::to_string(r) +
                  ", which is not written on every path reaching pc " +
                  std::to_string(pc));
          return;
        }
        if (!Compat(st[r].type, need)) {
          Add(uint32_t(pc), "type-mismatch",
              std::string(BcOpName(static_cast<BcOp>(I.op))) + " needs " +
                  AbsName(need) + " in r" + std::to_string(r) +
                  " but the slot holds " + AbsName(st[r].type));
        }
      };
      for (int i = 0; i < e.nreads; ++i) use(e.reads[i].reg, e.reads[i].need);
      if (e.reads_extra) {
        for (uint16_t i = 0; i < e.extra_n; ++i) {
          use(prog_.extra[e.extra_off + i], Abs::kAny);
        }
      }
      if (in_fragment) {
        // Stores through pointers that were not established inside the
        // fragment (or rebound per morsel) would mutate state shared with
        // other workers — exactly the class of race morsel isolation
        // forbids.
        for (int i = 0; i < e.nstores; ++i) {
          uint32_t r = e.stores_thru[i];
          if (st[r].defined && !st[r].local) {
            Add(uint32_t(pc), "fragment-isolation",
                std::string(BcOpName(static_cast<BcOp>(I.op))) +
                    " stores through r" + std::to_string(r) +
                    ", which references state shared across morsels");
          }
        }
      }
    }
  }

  // --- independent purity re-proof ---------------------------------------
  void PurityPass() {
    for (const SortSite& s : sort_sites_) {
      const Insn& I = prog_.code[s.pc];
      if (I.n == 0) continue;   // sequential sort: no concurrency claim
      if (s.entry >= s.pc) continue;  // shape violation already reported
      int rid = region_[s.entry];
      // CFG reachability from the comparator entry (deliberately a
      // different method than the compiler's linear scan over the emitted
      // range — drift in either direction is caught).
      std::vector<uint8_t> seen(prog_.code.size(), 0);
      std::deque<uint32_t> work{s.entry};
      seen[s.entry] = 1;
      while (!work.empty()) {
        uint32_t pc = work.front();
        work.pop_front();
        if (region_[pc] != rid) continue;
        const Insn& sub = prog_.code[pc];
        BcOp op = static_cast<BcOp>(sub.op);
        if (!PureForParallel(op)) {
          Add(pc, "comparator-purity",
              std::string(BcOpName(op)) +
                  " reachable in a comparator marked parallel-safe "
                  "(sort at pc " + std::to_string(s.pc) + ")");
        }
        if (op == BcOp::kRet) continue;
        JumpInfo j = JumpKind(op);
        auto push = [&](int64_t t) {
          if (t < 0 || t >= int64_t(prog_.code.size())) return;
          if (!seen[size_t(t)]) {
            seen[size_t(t)] = 1;
            work.push_back(uint32_t(t));
          }
        };
        if (j.is_jump) {
          push(int64_t(pc) + 1 + sub.d);
          if (!j.unconditional) push(int64_t(pc) + 1);
        } else {
          push(int64_t(pc) + 1);
        }
      }
    }
  }

  struct SortSite {
    uint32_t pc;
    uint32_t entry;
  };

  const BytecodeProgram& prog_;
  VerifyResult result_;
  bool bounds_clean_ = true;
  std::vector<int> region_;
  int num_fragments_ = 0;
  std::unordered_map<int, size_t> fragment_of_region_;
  std::unordered_map<int, uint32_t> fragment_end_;
  std::vector<SortSite> sort_sites_;
  std::vector<State> in_state_;
  std::vector<uint8_t> visited_;
  std::vector<uint8_t> checked_;
};

}  // namespace

std::string VerifyResult::Report() const {
  std::string out;
  for (const Violation& v : violations) {
    if (v.pc == kNoPc) {
      out += "program: ";
    } else {
      out += "pc " + std::to_string(v.pc) + ": ";
    }
    out += v.invariant;
    out += ": ";
    out += v.detail;
    out += '\n';
  }
  return out;
}

VerifyResult VerifyProgram(const BytecodeProgram& prog) {
  Verifier v(prog);
  return v.Run();
}

namespace {
// -1: no override (env/build default). Relaxed is enough: benches toggle
// it from one thread before measuring.
std::atomic<int> g_verify_override{-1};
}  // namespace

void SetVerifyEnabledOverride(int v) {
  g_verify_override.store(v < 0 ? -1 : (v != 0 ? 1 : 0),
                          std::memory_order_relaxed);
}

bool VerifyEnabled() {
  int ov = g_verify_override.load(std::memory_order_relaxed);
  if (ov >= 0) return ov != 0;
  static const bool on = [] {
    const char* v = std::getenv("QC_VERIFY");
    if (v != nullptr && v[0] != '\0') return v[0] != '0';
#if !defined(NDEBUG) || defined(QC_SANITIZER_BUILD)
    return true;
#else
    return false;
#endif
  }();
  return on;
}

void CheckProgram(const BytecodeProgram& prog, const std::string& what) {
  VerifyResult res = VerifyProgram(prog);
  if (res.ok()) return;
  std::fprintf(stderr,
               "bytecode verifier: %zu violation(s) in %s:\n%s",
               res.violations.size(), what.c_str(), res.Report().c_str());
  std::abort();
}

}  // namespace qc::exec::analysis
