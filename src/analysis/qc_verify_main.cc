// qc_verify: static verification driver for the whole lowering stack.
//
//   qc_verify              lower all 22 TPC-H queries at both stack levels
//                          (pipelined oracle lowering and the full Level-5
//                          compiler), verify every compiled bytecode
//                          program (src/analysis/bc_verify.h) and audit
//                          every stitched JIT image
//                          (src/analysis/jit_audit.h); print a violation
//                          report; exit non-zero on any violation.
//   qc_verify --self-test  run the mutation suite (src/analysis/
//                          mutations.h): deliberately corrupted programs
//                          and images must each be rejected with the
//                          expected named invariant; exit non-zero when
//                          any corruption slips through.
//
// Knobs: QC_VERIFY_SF scales the TPC-H data the queries are lowered
// against (default 0.002 — the program shapes, not the data, are what is
// verified, so small is fine).
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "analysis/bc_verify.h"
#include "analysis/jit_audit.h"
#include "analysis/mutations.h"
#include "compiler/compiler.h"
#include "exec/bytecode.h"
#include "ir/parallel.h"
#include "jit/emitter.h"
#include "lower/pipeline.h"
#include "qplan/plan.h"
#include "storage/database.h"
#include "tpch/datagen.h"
#include "tpch/queries.h"

namespace qc {
namespace {

namespace jit = exec::jit;

using exec::BytecodeProgram;
using exec::analysis::AuditStitch;
using exec::analysis::AuditTemplates;
using exec::analysis::VerifyProgram;
using exec::analysis::VerifyResult;

double ScaleFactor() {
  const char* v = std::getenv("QC_VERIFY_SF");
  if (v == nullptr || v[0] == '\0') return 0.002;
  double sf = std::atof(v);
  return sf > 0 ? sf : 0.002;
}

// One program at one stack level: compile its bytecode (with the morsel
// fragments the parallel runtime would use), verify it, stitch it, audit
// the image. Returns the number of violations (all printed).
size_t VerifyOne(storage::Database* db, const ir::Function& fn,
                 const std::string& tag, size_t* audited) {
  ir::ParallelInfo par = ir::AnalyzeParallelism(fn);
  BytecodeProgram prog = exec::BytecodeCompiler(db).Compile(fn, &par);
  size_t bad = 0;
  VerifyResult vres = VerifyProgram(prog);
  if (!vres.ok()) {
    std::printf("FAIL %s: bytecode verifier, %zu violation(s)\n%s",
                tag.c_str(), vres.violations.size(), vres.Report().c_str());
    bad += vres.violations.size();
  }
  jit::StitchResult stitched = jit::StitchProgram(prog);
  if (stitched.num_native > 0) {
    VerifyResult ares = AuditStitch(prog, stitched);
    if (!ares.ok()) {
      std::printf("FAIL %s: jit stitch audit, %zu violation(s)\n%s",
                  tag.c_str(), ares.violations.size(),
                  ares.Report().c_str());
      bad += ares.violations.size();
    }
    ++*audited;
  }
  if (bad == 0) {
    std::printf("ok   %s (%zu insns, %d native)\n", tag.c_str(),
                prog.code.size(), stitched.num_native);
  }
  return bad;
}

int RunVerifyAll() {
  storage::Database db = tpch::MakeTpchDatabase(ScaleFactor(), 7);
  size_t violations = 0;
  size_t programs = 0;
  size_t audited = 0;

  VerifyResult tres = AuditTemplates();
  if (!tres.ok()) {
    std::printf("FAIL template audit, %zu violation(s)\n%s",
                tres.violations.size(), tres.Report().c_str());
    violations += tres.violations.size();
  } else {
    std::printf("ok   template table\n");
  }

  for (int q = 1; q <= tpch::kNumQueries; ++q) {
    qplan::PlanPtr plan = tpch::MakeQuery(q);
    qplan::ResolvePlan(plan.get(), db);
    {
      ir::TypeFactory types;
      auto fn = lower::LowerPlanPipelined(*plan, db, &types,
                                          "q" + std::to_string(q));
      violations += VerifyOne(&db, *fn, "Q" + std::to_string(q) + " pipelined",
                              &audited);
      ++programs;
    }
    {
      ir::TypeFactory types;
      compiler::QueryCompiler qc(&db, &types);
      compiler::CompileResult res =
          qc.Compile(*plan, compiler::StackConfig::Level(5),
                     "q" + std::to_string(q) + "_l5");
      violations += VerifyOne(&db, *res.fn, "Q" + std::to_string(q) + " level5",
                              &audited);
      ++programs;
    }
  }
  std::printf(
      "qc_verify: %zu programs verified, %zu jit images audited, "
      "%zu violation(s)\n",
      programs, audited, violations);
  return violations == 0 ? 0 : 1;
}

// --------------------------------------------------------------------------
// Mutation self-test
// --------------------------------------------------------------------------

// The canonical corpus program: Q1 at the full stack level, compiled with
// parallelism info (so it has morsel fragments, f64 addend logs, governed
// loops, a comparator subroutine — every feature the mutations target).
BytecodeProgram CorpusProgram(storage::Database* db,
                              ir::TypeFactory* types,
                              compiler::CompileResult* keep_alive,
                              ir::ParallelInfo* par) {
  qplan::PlanPtr plan = tpch::MakeQuery(1);
  qplan::ResolvePlan(plan.get(), *db);
  compiler::QueryCompiler qc(db, types);
  *keep_alive =
      qc.Compile(*plan, compiler::StackConfig::Level(5), "selftest_q1");
  *par = ir::AnalyzeParallelism(*keep_alive->fn);
  return exec::BytecodeCompiler(db).Compile(*keep_alive->fn, par);
}

bool ExpectRejected(const char* name, const char* invariant,
                    const VerifyResult& res) {
  for (const auto& v : res.violations) {
    if (exec::analysis::InvariantMatches(invariant, v.invariant)) {
      std::printf("ok   %-32s rejected (%s)\n", name, v.invariant.c_str());
      return true;
    }
  }
  std::printf("FAIL %-32s expected invariant '%s', got %zu violation(s)\n%s",
              name, invariant, res.violations.size(), res.Report().c_str());
  return false;
}

int RunSelfTest() {
  storage::Database db = tpch::MakeTpchDatabase(ScaleFactor(), 7);
  ir::TypeFactory types;
  compiler::CompileResult keep_alive;
  ir::ParallelInfo par;
  BytecodeProgram base = CorpusProgram(&db, &types, &keep_alive, &par);
  {
    VerifyResult res = VerifyProgram(base);
    if (!res.ok()) {
      std::printf("FAIL corpus program does not verify clean:\n%s",
                  res.Report().c_str());
      return 1;
    }
  }
  int failures = 0;
  for (const auto& m : exec::analysis::BcMutations()) {
    BytecodeProgram mutant = base;
    if (!m.apply(&mutant)) {
      std::printf("FAIL %-32s not applicable to the corpus program\n",
                  m.name);
      ++failures;
      continue;
    }
    if (!ExpectRejected(m.name, m.invariant, VerifyProgram(mutant))) {
      ++failures;
    }
  }
  // Invalid-by-construction programs.
  struct {
    const char* name;
    const char* invariant;
    BytecodeProgram prog;
  } synthetic[] = {
      {"impure-parallel-comparator", "comparator-purity",
       exec::analysis::SyntheticImpureParallelSort()},
      {"type-confusion", "type-mismatch",
       exec::analysis::SyntheticTypeConfusion()},
      {"cross-region-jump", "jump-region",
       exec::analysis::SyntheticCrossRegionJump()},
  };
  for (const auto& s : synthetic) {
    if (!ExpectRejected(s.name, s.invariant, VerifyProgram(s.prog))) {
      ++failures;
    }
  }
  // Stitched-image mutations (need a native stitch — x86-64 templates).
  jit::StitchResult stitched = jit::StitchProgram(base);
  if (stitched.num_native > 0) {
    {
      VerifyResult res = AuditStitch(base, stitched);
      if (!res.ok()) {
        std::printf("FAIL corpus stitch does not audit clean:\n%s",
                    res.Report().c_str());
        return 1;
      }
    }
    for (const auto& m : exec::analysis::JitMutations()) {
      jit::StitchResult mutant = jit::StitchProgram(base);
      if (!m.apply(base, &mutant)) {
        std::printf("skip %-32s no applicable site\n", m.name);
        continue;
      }
      if (!ExpectRejected(m.name, m.invariant, AuditStitch(base, mutant))) {
        ++failures;
      }
    }
  } else {
    std::printf("skip jit image mutations (nothing stitched natively)\n");
  }
  std::printf("qc_verify --self-test: %d failure(s)\n", failures);
  return failures == 0 ? 0 : 1;
}

}  // namespace
}  // namespace qc

int main(int argc, char** argv) {
  bool self_test = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--self-test") == 0) self_test = true;
  }
  return self_test ? qc::RunSelfTest() : qc::RunVerifyAll();
}
