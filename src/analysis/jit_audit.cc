#include "analysis/jit_audit.h"

#include <algorithm>
#include <cstring>
#include <string>
#include <vector>

#if defined(__linux__)
#include <cinttypes>
#include <cstdio>
#endif

#include "jit/templates.h"

namespace qc::exec::analysis {

namespace {

using jit::kNoEntry;
using jit::OpTemplate;
using jit::PatchKind;

int PatchWidth(PatchKind k) {
  switch (k) {
    case PatchKind::kPtrB:
    case PatchKind::kConstB:
    case PatchKind::kExtraA:
    case PatchKind::kExtraB:
    case PatchKind::kPatternC:
    case PatchKind::kSortSite:
      return 8;  // imm64
    default:
      return 4;  // disp32 / rel32 / imm32
  }
}

const char* PatchKindName(PatchKind k) {
  switch (k) {
    case PatchKind::kSlotA: return "kSlotA";
    case PatchKind::kSlotB: return "kSlotB";
    case PatchKind::kSlotC: return "kSlotC";
    case PatchKind::kSlotD: return "kSlotD";
    case PatchKind::kFieldB: return "kFieldB";
    case PatchKind::kFieldC: return "kFieldC";
    case PatchKind::kPtrB: return "kPtrB";
    case PatchKind::kConstB: return "kConstB";
    case PatchKind::kJumpD: return "kJumpD";
    case PatchKind::kExtraA: return "kExtraA";
    case PatchKind::kExtraB: return "kExtraB";
    case PatchKind::kImmN: return "kImmN";
    case PatchKind::kImmN8: return "kImmN8";
    case PatchKind::kImmCMask: return "kImmCMask";
    case PatchKind::kPatternC: return "kPatternC";
    case PatchKind::kSortSite: return "kSortSite";
    case PatchKind::kGovCnt: return "kGovCnt";
    case PatchKind::kJumpAbort: return "kJumpAbort";
  }
  return "?";
}

uint32_t Rd32(const std::vector<uint8_t>& b, size_t at) {
  return uint32_t(b[at]) | uint32_t(b[at + 1]) << 8 |
         uint32_t(b[at + 2]) << 16 | uint32_t(b[at + 3]) << 24;
}

uint64_t Rd64(const std::vector<uint8_t>& b, size_t at) {
  return uint64_t(Rd32(b, at)) | uint64_t(Rd32(b, at + 4)) << 32;
}

// Reference prologue and exit stub, rebuilt through the public encoder —
// the same instruction sequence emitter.cc's file-local builders assemble,
// so the byte patterns cannot drift apart silently.
const std::vector<uint8_t>& PrologueRef() {
  static const std::vector<uint8_t> ref = [] {
    jit::Asm a;
    a.PushR12();
    a.MovRegReg(jit::R12, jit::RDI);
    a.JmpReg(jit::RSI);
    return a.bytes();
  }();
  return ref;
}

struct StubRef {
  std::vector<uint8_t> bytes;  // imm32 field zeroed
  size_t imm_off;
};

const StubRef& ExitStubRef() {
  static const StubRef ref = [] {
    jit::Asm a;
    a.MovImm32(jit::RAX, 0);
    size_t imm = a.size() - 4;  // the imm32 is the mov's trailing 4 bytes
    a.PopR12();
    a.Ret();
    return StubRef{a.bytes(), imm};
  }();
  return ref;
}

// Decodes an exit stub at `at`; returns false when the bytes there are not
// a stub. On success *imm receives the pc the stub returns.
bool DecodeStub(const std::vector<uint8_t>& code, size_t at, uint32_t* imm) {
  const StubRef& ref = ExitStubRef();
  if (at + ref.bytes.size() > code.size()) return false;
  for (size_t i = 0; i < ref.bytes.size(); ++i) {
    if (i >= ref.imm_off && i < ref.imm_off + 4) continue;
    if (code[at + i] != ref.bytes[i]) return false;
  }
  *imm = Rd32(code, at + ref.imm_off);
  return true;
}

size_t StubSize() { return ExitStubRef().bytes.size(); }

}  // namespace

VerifyResult AuditTemplates() {
  VerifyResult res;
  std::vector<const OpTemplate*> seen;
  for (uint16_t op = 0; op < static_cast<uint16_t>(BcOp::kNumOps); ++op) {
    // Enumerate every selectable variant: the probe opcodes key on the map
    // key kind (insn.d) and several templates are gated on the layout
    // probe, so all four combinations reach the whole table.
    for (int key = 0; key <= 1; ++key) {
      for (int layout = 0; layout <= 1; ++layout) {
        Insn insn{};
        insn.op = op;
        insn.d = key;
        const OpTemplate* t = jit::SelectTemplate(insn, layout != 0);
        if (t == nullptr) continue;
        if (std::find(seen.begin(), seen.end(), t) != seen.end()) continue;
        seen.push_back(t);
        std::string name = BcOpName(static_cast<BcOp>(op));
        if (key == 1) name += " (i64-key variant)";
        auto add = [&](std::string detail) {
          res.violations.push_back(
              {op, "template-shape", name + ": " + std::move(detail)});
        };
        if (t->code == nullptr || t->size == 0) {
          add("template has a null/empty code block");
          continue;
        }
        if (t->num_patches > 8) {
          add("num_patches " + std::to_string(t->num_patches) +
              " exceeds the descriptor array");
          continue;
        }
        std::vector<std::pair<uint32_t, uint32_t>> fields;
        for (uint8_t i = 0; i < t->num_patches; ++i) {
          uint32_t w = uint32_t(PatchWidth(t->patches[i].kind));
          uint32_t lo = t->patches[i].offset;
          if (lo + w > t->size) {
            add(std::string(PatchKindName(t->patches[i].kind)) +
                " patch at offset " + std::to_string(lo) + " (+" +
                std::to_string(w) + ") overruns the " +
                std::to_string(t->size) + "-byte template");
            continue;
          }
          fields.emplace_back(lo, lo + w);
        }
        std::sort(fields.begin(), fields.end());
        for (size_t i = 1; i < fields.size(); ++i) {
          if (fields[i].first < fields[i - 1].second) {
            add("patch fields overlap at offset " +
                std::to_string(fields[i].first));
          }
        }
      }
    }
  }
  return res;
}

VerifyResult AuditStitch(const BytecodeProgram& prog,
                         const jit::StitchResult& stitched) {
  VerifyResult res;
  auto add = [&](uint32_t pc, const char* inv, std::string detail) {
    res.violations.push_back({pc, inv, std::move(detail)});
  };
  const std::vector<uint8_t>& code = stitched.code;
  size_t n = prog.code.size();
  if (stitched.entry.size() != n) {
    add(kNoPc, "entry-layout",
        "entry table has " + std::to_string(stitched.entry.size()) +
            " pcs, program has " + std::to_string(n));
    return res;
  }

  // Re-derive the stitcher's template selection (deterministic per
  // instruction) including the sort gating: a sort is native only when its
  // whole comparator region is.
  bool layout_ok = jit::RuntimeLayoutUsable();
  std::vector<const OpTemplate*> sel(n, nullptr);
  for (size_t pc = 0; pc < n; ++pc) {
    sel[pc] = jit::SelectTemplate(prog.code[pc], layout_ok);
  }
  std::vector<uint32_t> site_of(n, kNoEntry);
  uint32_t num_sites = 0;
  for (size_t pc = 0; pc < n; ++pc) {
    BcOp op = static_cast<BcOp>(prog.code[pc].op);
    if (op != BcOp::kArrSort && op != BcOp::kListSort) continue;
    if (sel[pc] == nullptr) continue;
    size_t entry = prog.code[pc].c;
    bool ok = entry < pc;
    for (size_t t = entry; ok && t < pc; ++t) ok = sel[t] != nullptr;
    if (!ok) {
      sel[pc] = nullptr;
      continue;
    }
    site_of[pc] = num_sites++;
  }

  // Independent layout pass; the stitched entry table must match exactly.
  const std::vector<uint8_t>& prologue = PrologueRef();
  size_t off = prologue.size();
  int num_native = 0;
  std::vector<uint32_t> want_entry(n, kNoEntry);
  for (size_t pc = 0; pc < n; ++pc) {
    if (sel[pc] == nullptr) continue;
    want_entry[pc] = static_cast<uint32_t>(off);
    off += sel[pc]->size;
    ++num_native;
    bool segment_end = pc + 1 >= n || sel[pc + 1] == nullptr;
    if (segment_end && pc + 1 < n) off += StubSize();
  }
  for (size_t pc = 0; pc < n; ++pc) {
    if (stitched.entry[pc] != want_entry[pc]) {
      add(static_cast<uint32_t>(pc), "entry-layout",
          "entry offset " + std::to_string(stitched.entry[pc]) +
              " does not match the derived layout (" +
              std::to_string(want_entry[pc]) + ")");
    }
  }
  if (num_native != stitched.num_native) {
    add(kNoPc, "entry-layout",
        "num_native " + std::to_string(stitched.num_native) +
            " does not match the derived count " +
            std::to_string(num_native));
  }
  if (!res.ok()) return res;  // layout disagreement: bytes are meaningless
  if (num_native == 0) {
    if (!code.empty()) {
      add(kNoPc, "entry-layout", "nothing templated but code is non-empty");
    }
    return res;
  }

  // Thunk layout (ascending target order, then one abort thunk).
  std::vector<uint8_t> needs_thunk(n, 0);
  bool has_abort_patch = false;
  for (size_t pc = 0; pc < n; ++pc) {
    if (sel[pc] == nullptr) continue;
    const OpTemplate& t = *sel[pc];
    const Insn& insn = prog.code[pc];
    for (uint8_t i = 0; i < t.num_patches; ++i) {
      if (t.patches[i].kind == PatchKind::kJumpAbort) has_abort_patch = true;
      if (t.patches[i].kind != PatchKind::kJumpD) continue;
      int64_t target = int64_t(pc) + 1 + insn.d;
      if (target < 0 || target >= int64_t(n)) {
        add(static_cast<uint32_t>(pc), "jump-fixup",
            "branch target " + std::to_string(target) +
                " is not an instruction index");
        continue;
      }
      if (want_entry[size_t(target)] == kNoEntry) {
        needs_thunk[size_t(target)] = 1;
      }
    }
  }
  for (size_t t = 0; t < n; ++t) {
    if (needs_thunk[t]) off += StubSize();
  }
  if (has_abort_patch) off += StubSize();
  if (code.size() != off) {
    add(kNoPc, "entry-layout",
        "blob is " + std::to_string(code.size()) +
            " bytes, derived layout needs " + std::to_string(off));
    return res;
  }
  if (std::memcmp(code.data(), prologue.data(), prologue.size()) != 0) {
    add(kNoPc, "entry-layout", "prologue bytes do not match the encoder");
  }
  if (stitched.like_patterns.size() != prog.patterns.size()) {
    add(kNoPc, "patch-value",
        "like_patterns table has " +
            std::to_string(stitched.like_patterns.size()) +
            " entries, program has " + std::to_string(prog.patterns.size()) +
            " patterns");
  }
  if (stitched.sort_sites.size() != num_sites) {
    add(kNoPc, "sort-site",
        "sort_sites table has " + std::to_string(stitched.sort_sites.size()) +
            " entries, derived stitch has " + std::to_string(num_sites));
  }
  if (!res.ok()) return res;

  // Byte-level audit of every native instruction.
  for (size_t pc = 0; pc < n; ++pc) {
    if (sel[pc] == nullptr) continue;
    const OpTemplate& t = *sel[pc];
    const Insn& insn = prog.code[pc];
    BcOp op = static_cast<BcOp>(insn.op);
    size_t at0 = want_entry[pc];
    uint32_t upc = static_cast<uint32_t>(pc);

    // Unpatched template bytes must be byte-identical to the template.
    std::vector<uint8_t> is_field(t.size, 0);
    for (uint8_t i = 0; i < t.num_patches; ++i) {
      uint32_t w = uint32_t(PatchWidth(t.patches[i].kind));
      for (uint32_t b = 0; b < w && t.patches[i].offset + b < t.size; ++b) {
        is_field[t.patches[i].offset + b] = 1;
      }
    }
    for (uint16_t i = 0; i < t.size; ++i) {
      if (!is_field[i] && code[at0 + i] != t.code[i]) {
        add(upc, "patch-value",
            std::string(BcOpName(op)) + ": unpatched template byte at +" +
                std::to_string(i) + " differs from the template");
        break;
      }
    }

    auto want32 = [&](const jit::PatchPoint& p, uint32_t want,
                      const char* what) {
      uint32_t got = Rd32(code, at0 + p.offset);
      if (got != want) {
        add(upc, "patch-value",
            std::string(BcOpName(op)) + " " + PatchKindName(p.kind) + ": " +
                what + " patched as " + std::to_string(got) + ", want " +
                std::to_string(want));
      }
    };
    auto want64 = [&](const jit::PatchPoint& p, uint64_t want,
                      const char* what) {
      uint64_t got = Rd64(code, at0 + p.offset);
      if (got != want) {
        add(upc, "patch-value",
            std::string(BcOpName(op)) + " " + PatchKindName(p.kind) + ": " +
                what + " does not match the program's resolved value");
      }
    };
    auto slot = [&](const jit::PatchPoint& p, uint32_t reg) {
      if (reg >= prog.num_regs) {
        add(upc, "patch-value",
            std::string(BcOpName(op)) + " " + PatchKindName(p.kind) +
                ": register r" + std::to_string(reg) +
                " outside the register file (num_regs " +
                std::to_string(prog.num_regs) + ")");
        return;
      }
      want32(p, reg * 8u, "register-file displacement");
    };

    for (uint8_t i = 0; i < t.num_patches; ++i) {
      const jit::PatchPoint& p = t.patches[i];
      if (p.offset + uint32_t(PatchWidth(p.kind)) > t.size) continue;  // audited
      size_t at = at0 + p.offset;
      switch (p.kind) {
        case PatchKind::kSlotA: slot(p, insn.a); break;
        case PatchKind::kSlotB: slot(p, insn.b); break;
        case PatchKind::kSlotC: slot(p, insn.c); break;
        case PatchKind::kSlotD: slot(p, static_cast<uint32_t>(insn.d)); break;
        case PatchKind::kFieldB: want32(p, insn.b * 8u, "field offset"); break;
        case PatchKind::kFieldC: want32(p, insn.c * 8u, "field offset"); break;
        case PatchKind::kPtrB:
          if (insn.b >= prog.ptrs.size()) {
            add(upc, "patch-value", "kPtrB index outside the pointer pool");
          } else {
            want64(p, reinterpret_cast<uint64_t>(prog.ptrs[insn.b]),
                   "resolved pointer");
          }
          break;
        case PatchKind::kConstB:
          if (insn.b >= prog.consts.size()) {
            add(upc, "patch-value", "kConstB index outside the const pool");
          } else {
            want64(p, static_cast<uint64_t>(prog.consts[insn.b].i),
                   "constant bits");
          }
          break;
        case PatchKind::kExtraA:
          if (insn.a > prog.extra.size()) {
            add(upc, "patch-value", "kExtraA offset outside the extra pool");
          } else {
            want64(p, reinterpret_cast<uint64_t>(prog.extra.data() + insn.a),
                   "extra-pool address");
          }
          break;
        case PatchKind::kExtraB:
          if (insn.b > prog.extra.size()) {
            add(upc, "patch-value", "kExtraB offset outside the extra pool");
          } else {
            want64(p, reinterpret_cast<uint64_t>(prog.extra.data() + insn.b),
                   "extra-pool address");
          }
          break;
        case PatchKind::kImmN: want32(p, insn.n, "operand count"); break;
        case PatchKind::kImmN8:
          want32(p, uint32_t(insn.n) * 8u, "operand byte count");
          break;
        case PatchKind::kImmCMask: want32(p, insn.c, "intern mask"); break;
        case PatchKind::kGovCnt:
          want32(p, prog.gov_cnt_reg * 8u, "governance countdown slot");
          break;
        case PatchKind::kPatternC:
          if (insn.c >= stitched.like_patterns.size()) {
            add(upc, "patch-value",
                "kPatternC index outside the like_patterns table");
          } else {
            want64(p,
                   reinterpret_cast<uint64_t>(&stitched.like_patterns[insn.c]),
                   "pattern descriptor address");
          }
          break;
        case PatchKind::kSortSite: {
          if (site_of[pc] == kNoEntry ||
              site_of[pc] >= stitched.sort_sites.size()) {
            add(upc, "sort-site",
                "sort stitched natively without a derived descriptor");
            break;
          }
          const jit::JitSortSite& s = stitched.sort_sites[site_of[pc]];
          want64(p, reinterpret_cast<uint64_t>(&s), "sort-site address");
          auto site_bad = [&](std::string detail) {
            add(upc, "sort-site", std::move(detail));
          };
          if (s.cmp_entry != insn.c) {
            site_bad("descriptor comparator entry " +
                     std::to_string(s.cmp_entry) + " != insn operand " +
                     std::to_string(insn.c));
          }
          for (uint32_t cp = s.cmp_entry; cp < pc && cp < n; ++cp) {
            if (want_entry[cp] == kNoEntry) {
              site_bad("comparator pc " + std::to_string(cp) +
                       " is not native but the sort site claims a fully "
                       "native comparator");
              break;
            }
          }
          if (insn.d < 0 ||
              size_t(uint32_t(insn.d)) + 3 > prog.extra.size()) {
            site_bad("param/result triple outside the extra pool");
          } else if (s.ps != prog.extra.data() + uint32_t(insn.d)) {
            site_bad("descriptor param/result triple does not point at the "
                     "instruction's extra-pool entry");
          }
          if (s.obj_reg != insn.a || s.n_reg != insn.b) {
            site_bad("descriptor registers do not match the instruction");
          }
          if (s.is_list != (op == BcOp::kListSort)) {
            site_bad("descriptor kind does not match the opcode");
          }
          if (s.par_safe != (insn.n != 0)) {
            site_bad("descriptor purity flag does not match the "
                     "instruction's parallel-safe bit");
          }
          if (s.num_regs != prog.num_regs || s.gov_reg != prog.gov_reg) {
            site_bad("descriptor register-file/governance binding does not "
                     "match the program");
          }
          break;
        }
        case PatchKind::kJumpD: {
          int64_t t64 = int64_t(pc) + 1 + insn.d;
          if (t64 < 0 || t64 >= int64_t(n)) break;  // flagged above
          uint32_t target = static_cast<uint32_t>(t64);
          uint32_t rel = Rd32(code, at);
          size_t dest = size_t(uint32_t(at) + 4u + rel);  // wraps as emitted
          if (want_entry[target] != kNoEntry) {
            if (dest != want_entry[target]) {
              add(upc, "jump-fixup",
                  std::string(BcOpName(op)) + " branch to pc " +
                      std::to_string(target) + " resolves to blob offset " +
                      std::to_string(dest) + ", native entry is at " +
                      std::to_string(want_entry[target]));
            }
          } else {
            uint32_t imm = 0;
            if (!DecodeStub(code, dest, &imm)) {
              add(upc, "deopt-thunk",
                  std::string(BcOpName(op)) + " branch to non-native pc " +
                      std::to_string(target) +
                      " does not land on an exit stub");
            } else if (imm != target) {
              add(upc, "deopt-thunk",
                  "deopt thunk returns pc " + std::to_string(imm) +
                      ", branch target is pc " + std::to_string(target));
            }
          }
          break;
        }
        case PatchKind::kJumpAbort: {
          uint32_t rel = Rd32(code, at);
          size_t dest = size_t(uint32_t(at) + 4u + rel);
          uint32_t imm = 0;
          if (!DecodeStub(code, dest, &imm)) {
            add(upc, "abort-thunk",
                std::string(BcOpName(op)) +
                    " abort branch does not land on an exit stub");
          } else if (imm != 0xFFFFFFFEu) {  // jit::kAbortPc (engine.h)
            add(upc, "abort-thunk",
                "abort thunk returns pc " + std::to_string(imm) +
                    ", want the kAbortPc sentinel");
          }
          break;
        }
      }
    }

    // Fall-through exit at every segment end must return pc + 1.
    bool segment_end = pc + 1 >= n || sel[pc + 1] == nullptr;
    if (segment_end && pc + 1 < n) {
      uint32_t imm = 0;
      if (!DecodeStub(code, at0 + t.size, &imm)) {
        add(upc, "deopt-thunk",
            "segment end is not followed by a fall-through exit stub");
      } else if (imm != upc + 1) {
        add(upc, "deopt-thunk",
            "fall-through exit stub returns pc " + std::to_string(imm) +
                ", want " + std::to_string(upc + 1));
      }
    }
  }
  return res;
}

VerifyResult AuditWx(const void* base, size_t size) {
  VerifyResult res;
#if defined(__linux__)
  if (base == nullptr || size == 0) return res;
  std::FILE* f = std::fopen("/proc/self/maps", "r");
  if (f == nullptr) return res;  // unverifiable here; not a violation
  uintptr_t lo = reinterpret_cast<uintptr_t>(base);
  uintptr_t hi = lo + size;
  bool found = false;
  char line[512];
  while (std::fgets(line, sizeof line, f) != nullptr) {
    uintptr_t mlo = 0;
    uintptr_t mhi = 0;
    char perms[8] = {0};
    if (std::sscanf(line, "%" SCNxPTR "-%" SCNxPTR " %7s", &mlo, &mhi,
                    perms) != 3) {
      continue;
    }
    if (mlo >= hi || mhi <= lo) continue;
    found = true;
    bool writable = std::strchr(perms, 'w') != nullptr;
    bool executable = std::strchr(perms, 'x') != nullptr;
    bool readable = std::strchr(perms, 'r') != nullptr;
    if (writable || !executable || !readable) {
      res.violations.push_back(
          {kNoPc, "wx-policy",
           std::string("installed code mapping has permissions '") + perms +
               "', want r-x (never writable)"});
    }
  }
  std::fclose(f);
  if (!found) {
    res.violations.push_back(
        {kNoPc, "wx-policy",
         "installed code range not found in /proc/self/maps"});
  }
#else
  (void)base;
  (void)size;
#endif
  return res;
}

}  // namespace qc::exec::analysis
