#include "cgen/cc_driver.h"

#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iterator>

#include "common/fault.h"
#include "common/hash.h"
#include "common/timer.h"

namespace qc::cgen {

namespace {

// Runs a shell command, capturing stdout into `out` (stderr appended).
int RunCommand(const std::string& cmd, std::string* out) {
  std::string full = cmd + " 2>&1";
  FILE* pipe = popen(full.c_str(), "r");
  if (pipe == nullptr) return -1;
  char buf[4096];
  while (fgets(buf, sizeof(buf), pipe) != nullptr) {
    if (out != nullptr) out->append(buf);
  }
  return pclose(pipe);
}

bool FileExists(const std::string& path) {
  struct stat st;
  return ::stat(path.c_str(), &st) == 0 && S_ISREG(st.st_mode);
}

// Generated programs #include the runtime header from the source tree, so
// its contents must be part of the cache key — otherwise editing it would
// silently reuse stale binaries.
uint64_t RuntimeHeaderHash() {
  static const uint64_t h = [] {
#ifdef QC_SOURCE_DIR
    std::ifstream f(std::string(QC_SOURCE_DIR) + "/src/cgen/qc_runtime.h");
    std::string text((std::istreambuf_iterator<char>(f)),
                     std::istreambuf_iterator<char>());
    return HashString(text);
#else
    return uint64_t{0};
#endif
  }();
  return h;
}

}  // namespace

CcDriver::CcDriver(std::string work_dir) : work_dir_(std::move(work_dir)) {
  const char* override_dir = std::getenv("QC_CC_CACHE_DIR");
  if (override_dir != nullptr && override_dir[0] != '\0') {
    work_dir_ = override_dir;
    // mkdir -p equivalent via mkdir(2): no shell, no quoting hazards.
    for (size_t i = 1; i <= work_dir_.size(); ++i) {
      if (i != work_dir_.size() && work_dir_[i] != '/') continue;
      std::string prefix = work_dir_.substr(0, i);
      if (prefix.empty()) continue;
      if (::mkdir(prefix.c_str(), 0755) != 0 && errno != EEXIST) {
        std::fprintf(stderr, "cc_driver: cannot create QC_CC_CACHE_DIR %s\n",
                     prefix.c_str());
        break;
      }
    }
  }
}

std::string CcDriver::Compile(const std::string& name,
                              const std::string& source, double* compile_ms,
                              std::string* error) {
  // Generated code is C-style C++ (sort lambdas): compile with -x c++.
  const char* kFlags = "-O2 -x c++ -std=c++17";
  // Binaries are cached keyed by a hash of the generated source plus the
  // compiler flags: re-running a bench configuration that produces
  // identical code skips the external compiler entirely.
  uint64_t key = HashCombine(HashCombine(HashString(source),
                                         HashString(kFlags)),
                             RuntimeHeaderHash());
  char tag[32];
  std::snprintf(tag, sizeof(tag), "_%016llx",
                static_cast<unsigned long long>(key));
  std::string src_path = work_dir_ + "/" + name + ".c";
  std::string bin_path = work_dir_ + "/" + name + tag + ".bin";
  if (FileExists(bin_path)) {
    if (compile_ms != nullptr) *compile_ms = 0;  // cache hit: no cc run
    return bin_path;  // the matching .c is still there from the cache fill
  }
  // Write the source atomically too (temp + rename(2)): a crash or a
  // concurrent compile of the same name must never leave a truncated .c
  // behind for another process to feed to the compiler.
  {
    std::string src_tmp =
        src_path + ".tmp." + std::to_string(static_cast<long>(::getpid()));
    std::ofstream f(src_tmp);
    f << source;
    f.flush();
    bool write_failed = FaultPoint("cc_cache_write") || !f.good();
    f.close();
    if (write_failed ||
        std::rename(src_tmp.c_str(), src_path.c_str()) != 0) {
      std::remove(src_tmp.c_str());
      if (error != nullptr) *error = "cannot write " + src_path;
      return "";
    }
  }
  // Compile to a process-unique temp name and rename on success, so neither
  // an interrupted compiler nor a concurrent compile of the same source can
  // install a partial binary that later reads as a cache hit.
  std::string tmp_path =
      bin_path + ".tmp." + std::to_string(static_cast<long>(::getpid()));
  std::string cmd = std::string("c++ ") + kFlags + " -o " + tmp_path + " " +
                    src_path;
  Timer t;
  std::string log;
  int rc = RunCommand(cmd, &log);
  if (compile_ms != nullptr) *compile_ms = t.ElapsedMs();
  if (rc != 0) {
    if (error != nullptr) *error = log;
    return "";
  }
  if (std::rename(tmp_path.c_str(), bin_path.c_str()) != 0) {
    std::remove(tmp_path.c_str());
    if (error != nullptr) *error = "rename to " + bin_path + " failed";
    return "";
  }
  return bin_path;
}

RunOutput CcDriver::Run(const std::string& binary) {
  RunOutput out;
  std::string text;
  int rc = RunCommand(binary, &text);
  if (rc != 0) {
    out.error = "exit code " + std::to_string(rc) + "\n" + text;
    return out;
  }
  size_t pos = 0;
  while (pos < text.size()) {
    size_t eol = text.find('\n', pos);
    if (eol == std::string::npos) eol = text.size();
    std::string line = text.substr(pos, eol - pos);
    pos = eol + 1;
    long long rows;
    double ms;
    size_t mem;
    if (std::sscanf(line.c_str(), "ROWS=%lld TIME_MS=%lf MEM_BYTES=%zu",
                    &rows, &ms, &mem) == 3) {
      out.rows = rows;
      out.query_ms = ms;
      out.mem_bytes = mem;
      out.ok = true;
    } else if (line.rfind("ROW ", 0) == 0) {
      out.row_text.push_back(line.substr(4));
    }
  }
  if (!out.ok) out.error = "no ROWS= line in output:\n" + text;
  return out;
}

}  // namespace qc::cgen
