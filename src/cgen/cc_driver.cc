#include "cgen/cc_driver.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>

#include "common/timer.h"

namespace qc::cgen {

namespace {

// Runs a shell command, capturing stdout into `out` (stderr appended).
int RunCommand(const std::string& cmd, std::string* out) {
  std::string full = cmd + " 2>&1";
  FILE* pipe = popen(full.c_str(), "r");
  if (pipe == nullptr) return -1;
  char buf[4096];
  while (fgets(buf, sizeof(buf), pipe) != nullptr) {
    if (out != nullptr) out->append(buf);
  }
  return pclose(pipe);
}

}  // namespace

std::string CcDriver::Compile(const std::string& name,
                              const std::string& source, double* compile_ms,
                              std::string* error) {
  std::string src_path = work_dir_ + "/" + name + ".c";
  std::string bin_path = work_dir_ + "/" + name + ".bin";
  {
    std::ofstream f(src_path);
    f << source;
  }
  // Generated code is C-style C++ (sort lambdas): compile with -x c++.
  std::string cmd = "c++ -O2 -x c++ -std=c++17 -o " + bin_path + " " +
                    src_path;
  Timer t;
  std::string log;
  int rc = RunCommand(cmd, &log);
  if (compile_ms != nullptr) *compile_ms = t.ElapsedMs();
  if (rc != 0) {
    if (error != nullptr) *error = log;
    return "";
  }
  return bin_path;
}

RunOutput CcDriver::Run(const std::string& binary) {
  RunOutput out;
  std::string text;
  int rc = RunCommand(binary, &text);
  if (rc != 0) {
    out.error = "exit code " + std::to_string(rc) + "\n" + text;
    return out;
  }
  size_t pos = 0;
  while (pos < text.size()) {
    size_t eol = text.find('\n', pos);
    if (eol == std::string::npos) eol = text.size();
    std::string line = text.substr(pos, eol - pos);
    pos = eol + 1;
    long long rows;
    double ms;
    size_t mem;
    if (std::sscanf(line.c_str(), "ROWS=%lld TIME_MS=%lf MEM_BYTES=%zu",
                    &rows, &ms, &mem) == 3) {
      out.rows = rows;
      out.query_ms = ms;
      out.mem_bytes = mem;
      out.ok = true;
    } else if (line.rfind("ROW ", 0) == 0) {
      out.row_text.push_back(line.substr(4));
    }
  }
  if (!out.ok) out.error = "no ROWS= line in output:\n" + text;
  return out;
}

}  // namespace qc::cgen
