// C backend: unparses a C.Lite-level function into a standalone C-style
// translation unit (the paper's "stringification" step of C.Scala -> C).
// The generated program loads the binary column files exported by
// storage::Database::ExportBinary/ExportAux, runs the query with wall-clock
// timing around the query body only, and prints:
//
//     ROWS=<n> TIME_MS=<t> MEM_BYTES=<b>
//     ROW <col>|<col>|...        (one line per result row)
//
// Generic collections that survived specialization become calls into
// qc_runtime.h's chained hash table / vector (the GLib linkage); specialized
// structures are plain arrays, structs and loops. Sort comparators are the
// only C++ feature used (lambdas); everything else is C.
#ifndef QC_CGEN_EMIT_H_
#define QC_CGEN_EMIT_H_

#include <string>

#include "ir/stmt.h"
#include "storage/database.h"

namespace qc::cgen {

// Emits the full translation unit. `data_dir` is baked into the program as
// the location of the exported column files. Also ensures the auxiliary
// structures (dictionaries, partitioned indexes) the program needs exist in
// the database so a subsequent ExportAux writes them.
std::string EmitProgram(const ir::Function& fn, storage::Database& db,
                        const std::string& data_dir);

// Exports dictionary-code columns and partitioned indexes currently cached
// in `db` as binary files next to the base columns.
void ExportAux(const storage::Database& db, const std::string& dir);

}  // namespace qc::cgen

#endif  // QC_CGEN_EMIT_H_
