// Drives the system C compiler over generated translation units and runs
// the resulting binaries — the back half of the paper's pipeline (generated
// C compiled by CLang/GCC, Figure 9 splits the two phases) and the primary
// measurement path for Table 3.
#ifndef QC_CGEN_CC_DRIVER_H_
#define QC_CGEN_CC_DRIVER_H_

#include <string>
#include <vector>

namespace qc::cgen {

struct RunOutput {
  bool ok = false;
  int64_t rows = -1;
  double query_ms = 0;      // measured inside the generated program
  size_t mem_bytes = 0;     // allocation footprint of the generated program
  std::vector<std::string> row_text;  // canonical "a|b|c" row dump
  std::string error;
};

class CcDriver {
 public:
  // `work_dir` holds sources and cached binaries. QC_CC_CACHE_DIR, when
  // set, overrides it (created if missing) so CI jobs and sandboxed runs
  // sharing a machine don't collide on the default path; the data files a
  // generated program reads are unaffected (their directory is baked into
  // the generated source).
  explicit CcDriver(std::string work_dir);

  // Writes `source` to <name>.c and compiles it. Returns the binary path
  // (empty on failure). `compile_ms` receives the C-compiler wall time.
  // Binaries are cached in the work dir keyed by a hash of source + flags;
  // a cache hit skips the compiler and reports 0 ms.
  std::string Compile(const std::string& name, const std::string& source,
                      double* compile_ms, std::string* error = nullptr);

  // Runs a compiled query binary and parses its output protocol.
  RunOutput Run(const std::string& binary);

  const std::string& work_dir() const { return work_dir_; }

 private:
  std::string work_dir_;
};

}  // namespace qc::cgen

#endif  // QC_CGEN_CC_DRIVER_H_
