#include "cgen/emit.h"

#include <cassert>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <set>
#include <sstream>
#include <vector>

namespace qc::cgen {

using ir::Block;
using ir::Op;
using ir::Stmt;
using ir::Type;
using ir::TypeKind;

namespace {

std::string Sanitize(const std::string& s) {
  std::string out;
  for (char c : s) {
    out.push_back(std::isalnum(static_cast<unsigned char>(c)) ? c : '_');
  }
  return out;
}

std::string EscapeString(const std::string& s) {
  std::string out;
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

class CEmitter {
 public:
  CEmitter(const ir::Function& fn, storage::Database& db,
           const std::string& data_dir)
      : fn_(fn), db_(db), data_dir_(data_dir) {}

  std::string Run() {
    Scan(fn_.body());
    EmitHeader();
    EmitStructs();
    EmitKeyFunctions();
    EmitMain();
    return out_.str();
  }

 private:
  // --- analysis: what the program touches -----------------------------------

  void Scan(const Block* b) {
    for (const Stmt* s : b->stmts) {
      ScanType(s->type);
      switch (s->op) {
        case Op::kTableRows:
          tables_.insert(s->aux0);
          break;
        case Op::kColGet:
          tables_.insert(s->aux0);
          cols_.insert({s->aux0, s->aux1});
          break;
        case Op::kColDict:
          tables_.insert(s->aux0);
          dicts_.insert({s->aux0, s->aux1});
          db_.Dictionary(s->aux0, s->aux1);
          break;
        case Op::kIdxBucketLen:
        case Op::kIdxBucketRow:
          tables_.insert(s->aux0);
          parts_.insert({s->aux0, s->aux1});
          db_.Partition(s->aux0, s->aux1);
          break;
        case Op::kIdxPkRow:
          tables_.insert(s->aux0);
          pks_.insert({s->aux0, s->aux1});
          db_.PrimaryIndex(s->aux0, s->aux1);
          break;
        case Op::kMapNew:
        case Op::kMMapNew:
          if (s->type->key->kind == TypeKind::kRecord) {
            key_records_.insert(s->type->key);
          }
          break;
        case Op::kEmit:
          if (emit_types_.empty()) {
            for (const Stmt* a : s->args) emit_types_.push_back(a->type);
          }
          break;
        default:
          break;
      }
      for (const Block* nb : s->blocks) Scan(nb);
      for (const Stmt* p :
           b->params) {  // defensive: record types in params too
        ScanType(p->type);
      }
    }
  }

  void ScanType(const Type* t) {
    if (t == nullptr) return;
    switch (t->kind) {
      case TypeKind::kRecord:
        if (records_.insert(t).second) {
          for (const auto& f : t->record->fields) ScanType(f.type);
        }
        break;
      case TypeKind::kArray:
      case TypeKind::kList:
      case TypeKind::kPtr:
      case TypeKind::kPool:
        ScanType(t->elem);
        break;
      case TypeKind::kMap:
      case TypeKind::kMMap:
        ScanType(t->key);
        ScanType(t->value);
        break;
      default:
        break;
    }
  }

  // --- type mapping ----------------------------------------------------------

  std::string CType(const Type* t) {
    switch (t->kind) {
      case TypeKind::kBool:
      case TypeKind::kI64:
      case TypeKind::kDate:
        return "int64_t";
      case TypeKind::kI32:
        return "int32_t";
      case TypeKind::kF64:
        return "double";
      case TypeKind::kStr:
        return "const char*";
      case TypeKind::kRecord:
        return "struct " + Sanitize(t->record->name) + "*";
      case TypeKind::kArray:
        return CType(t->elem) + "*";
      case TypeKind::kList:
        return "qc_vec*";
      case TypeKind::kMap:
      case TypeKind::kMMap:
        return "qc_map*";
      case TypeKind::kPtr:
        return CType(t->elem);  // Ptr[record] == record*
      case TypeKind::kPool:
        return "qc_pool*";
      case TypeKind::kVoid:
        return "void";
    }
    return "int64_t";
  }

  // Slot conversion for values stored in generic collections.
  std::string ToSlot(const Stmt* v) {
    switch (v->type->kind) {
      case TypeKind::kF64: return "qc_sd(" + Ref(v) + ")";
      case TypeKind::kStr: return "qc_ss(" + Ref(v) + ")";
      case TypeKind::kRecord:
      case TypeKind::kArray:
      case TypeKind::kList:
      case TypeKind::kMap:
      case TypeKind::kMMap:
      case TypeKind::kPtr:
        return "qc_sp((void*)" + Ref(v) + ")";
      default:
        return "qc_si((int64_t)" + Ref(v) + ")";
    }
  }

  std::string FromSlot(const std::string& slot, const Type* t) {
    switch (t->kind) {
      case TypeKind::kF64: return slot + ".d";
      case TypeKind::kStr: return slot + ".s";
      case TypeKind::kRecord:
      case TypeKind::kArray:
      case TypeKind::kList:
      case TypeKind::kMap:
      case TypeKind::kMMap:
      case TypeKind::kPtr:
        return "(" + CType(t) + ")" + slot + ".p";
      case TypeKind::kI32:
        return "(int32_t)" + slot + ".i";
      default:
        return slot + ".i";
    }
  }

  std::string Ref(const Stmt* s) { return "x" + std::to_string(s->id); }

  std::string TableName(int t) { return db_.table(t).def().name; }
  std::string ColName(int t, int c) {
    return db_.table(t).def().columns[c].name;
  }
  std::string ColVar(int t, int c) {
    return "col_" + TableName(t) + "_" + ColName(t, c);
  }

  // --- header / structs / key functions --------------------------------------

  void EmitHeader() {
    out_ << "// Generated by qcstack cgen from function '" << fn_.name()
         << "'.\n";
    out_ << "#include \"" << QC_SOURCE_DIR << "/src/cgen/qc_runtime.h\"\n";
    out_ << "#include <time.h>\n\n";
  }

  void EmitStructs() {
    for (const Type* t : records_) {
      out_ << "struct " << Sanitize(t->record->name) << ";\n";
    }
    out_ << "\n";
    for (const Type* t : records_) {
      out_ << "struct " << Sanitize(t->record->name) << " {\n";
      for (const auto& f : t->record->fields) {
        out_ << "  " << CType(f.type) << " " << Sanitize(f.name) << ";\n";
      }
      out_ << "};\n";
    }
    out_ << "\n";
  }

  void EmitKeyFunctions() {
    for (const Type* t : key_records_) {
      std::string name = Sanitize(t->record->name);
      out_ << "static uint64_t qc_hash_" << name << "(qc_slot s) {\n";
      out_ << "  struct " << name << "* k = (struct " << name << "*)s.p;\n";
      out_ << "  uint64_t h = 0x42;\n";
      for (const auto& f : t->record->fields) {
        std::string fld = "k->" + Sanitize(f.name);
        if (f.type->kind == TypeKind::kStr) {
          out_ << "  h = qc_hash_combine(h, qc_hash_str(" << fld << "));\n";
        } else if (f.type->kind == TypeKind::kF64) {
          out_ << "  { uint64_t b; memcpy(&b, &" << fld
               << ", 8); h = qc_hash_combine(h, qc_hash_u64(b)); }\n";
        } else {
          out_ << "  h = qc_hash_combine(h, qc_hash_u64((uint64_t)" << fld
               << "));\n";
        }
      }
      out_ << "  return h;\n}\n";
      out_ << "static int qc_eq_" << name << "(qc_slot a, qc_slot b) {\n";
      out_ << "  struct " << name << "* x = (struct " << name << "*)a.p;\n";
      out_ << "  struct " << name << "* y = (struct " << name << "*)b.p;\n";
      out_ << "  return 1";
      for (const auto& f : t->record->fields) {
        std::string fx = "x->" + Sanitize(f.name);
        std::string fy = "y->" + Sanitize(f.name);
        if (f.type->kind == TypeKind::kStr) {
          out_ << " && strcmp(" << fx << ", " << fy << ") == 0";
        } else {
          out_ << " && " << fx << " == " << fy;
        }
      }
      out_ << ";\n}\n";
    }
    out_ << "\n";
  }

  // --- main -------------------------------------------------------------------

  void EmitMain() {
    out_ << "int main(void) {\n";
    indent_ = 1;
    Line("const char* dir = \"" + data_dir_ + "\";");
    // Loader: only what the query touches.
    for (int t : tables_) {
      Line("int64_t rows_" + TableName(t) + " = qc_load_rowcount(dir, \"" +
           TableName(t) + "\");");
    }
    for (auto [t, c] : cols_) {
      const storage::ColumnDef& def = db_.table(t).def().columns[c];
      std::string var = ColVar(t, c);
      switch (def.type) {
        case storage::ColType::kF64:
          Line("double* " + var + " = qc_load_f64(dir, \"" + TableName(t) +
               "\", \"" + ColName(t, c) + "\");");
          break;
        case storage::ColType::kStr:
          Line("const char** " + var + " = qc_load_str(dir, \"" +
               TableName(t) + "\", \"" + ColName(t, c) + "\", rows_" +
               TableName(t) + ");");
          break;
        default:
          Line("int64_t* " + var + " = qc_load_i64(dir, \"" + TableName(t) +
               "\", \"" + ColName(t, c) + "\");");
      }
    }
    for (auto [t, c] : dicts_) {
      Line("int32_t* dict_" + TableName(t) + "_" + ColName(t, c) +
           " = qc_load_i32(dir, \"" + TableName(t) + "\", \"" +
           ColName(t, c) + ".dict\");");
    }
    for (auto [t, c] : parts_) {
      std::string base = TableName(t) + "_" + ColName(t, c);
      Line("int64_t* idxoff_" + base + " = qc_load_i64(dir, \"" +
           TableName(t) + "\", \"" + ColName(t, c) + ".part.off\");");
      Line("int64_t* idxrows_" + base + " = qc_load_i64(dir, \"" +
           TableName(t) + "\", \"" + ColName(t, c) + ".part.rows\");");
    }
    for (auto [t, c] : pks_) {
      Line("int64_t* pk_" + TableName(t) + "_" + ColName(t, c) +
           " = qc_load_i64(dir, \"" + TableName(t) + "\", \"" +
           ColName(t, c) + ".pk\");");
    }
    Line("qc_pool* strpool = qc_pool_new(1 << 16);");
    Line("qc_result result; memset(&result, 0, sizeof(result));");
    Line("struct timespec t0, t1;");
    Line("clock_gettime(CLOCK_MONOTONIC, &t0);");
    out_ << "\n";

    EmitBlock(fn_.body());

    out_ << "\n";
    Line("clock_gettime(CLOCK_MONOTONIC, &t1);");
    Line("double ms = (t1.tv_sec - t0.tv_sec) * 1e3 + "
         "(t1.tv_nsec - t0.tv_nsec) / 1e6;");
    Line("printf(\"ROWS=%lld TIME_MS=%.3f MEM_BYTES=%zu\\n\", "
         "(long long)(result.ncols ? result.rows.len / result.ncols : 0), "
         "ms, qc_heap_bytes + qc_pool_bytes);");
    EmitRowPrinter();
    Line("return 0;");
    out_ << "}\n";
  }

  void EmitRowPrinter() {
    if (emit_types_.empty()) return;
    int n = static_cast<int>(emit_types_.size());
    Line("for (int64_t r = 0; r + " + std::to_string(n) +
         " <= result.rows.len; r += " + std::to_string(n) + ") {");
    ++indent_;
    Line("printf(\"ROW \");");
    for (int i = 0; i < n; ++i) {
      std::string slot = "result.rows.data[r + " + std::to_string(i) + "]";
      std::string sep = i + 1 < n ? "|" : "\\n";
      switch (emit_types_[i]->kind) {
        case TypeKind::kF64:
          Line("printf(\"%.2f" + sep + "\", " + slot + ".d + (" + slot +
               ".d >= 0 ? 1e-9 : -1e-9));");
          break;
        case TypeKind::kStr:
          Line("printf(\"%s" + sep + "\", " + slot + ".s);");
          break;
        case TypeKind::kDate:
          Line("printf(\"%04lld-%02lld-%02lld" + sep + "\", (long long)(" +
               slot + ".i / 10000), (long long)((" + slot +
               ".i / 100) % 100), (long long)(" + slot + ".i % 100));");
          break;
        default:
          Line("printf(\"%lld" + sep + "\", (long long)" + slot + ".i);");
      }
    }
    --indent_;
    Line("}");
  }

  // --- statement emission -----------------------------------------------------

  void Line(const std::string& s) {
    for (int i = 0; i < indent_; ++i) out_ << "  ";
    out_ << s << "\n";
  }

  void Decl(const Stmt* s, const std::string& expr) {
    Line(CType(s->type) + " " + Ref(s) + " = " + expr + ";");
  }

  void EmitBlock(const Block* b) {
    for (const Stmt* s : b->stmts) EmitStmt(s);
  }

  std::string Bin(const Stmt* s, const char* op) {
    return Ref(s->args[0]) + " " + op + " " + Ref(s->args[1]);
  }

  void EmitStmt(const Stmt* s) {
    switch (s->op) {
      case Op::kConst:
        if (s->type->kind == TypeKind::kStr) {
          Decl(s, "\"" + EscapeString(s->sval) + "\"");
        } else if (s->type->kind == TypeKind::kF64) {
          char buf[64];
          std::snprintf(buf, sizeof(buf), "%.17g", s->fval);
          Decl(s, buf);
        } else {
          Decl(s, std::to_string(s->ival) + "LL");
        }
        break;
      case Op::kNull:
        Decl(s, "(" + CType(s->type) + ")NULL");
        break;

      case Op::kAdd: Decl(s, Bin(s, "+")); break;
      case Op::kSub: Decl(s, Bin(s, "-")); break;
      case Op::kMul: Decl(s, Bin(s, "*")); break;
      case Op::kDiv: Decl(s, Bin(s, "/")); break;
      case Op::kMod: Decl(s, Bin(s, "%")); break;
      case Op::kNeg: Decl(s, "-" + Ref(s->args[0])); break;
      case Op::kCast:
        Decl(s, "(" + CType(s->type) + ")" + Ref(s->args[0]));
        break;

      case Op::kEq: Decl(s, Bin(s, "==")); break;
      case Op::kNe: Decl(s, Bin(s, "!=")); break;
      case Op::kLt: Decl(s, Bin(s, "<")); break;
      case Op::kLe: Decl(s, Bin(s, "<=")); break;
      case Op::kGt: Decl(s, Bin(s, ">")); break;
      case Op::kGe: Decl(s, Bin(s, ">=")); break;

      case Op::kAnd: Decl(s, Bin(s, "&&")); break;
      case Op::kOr: Decl(s, Bin(s, "||")); break;
      case Op::kNot: Decl(s, "!" + Ref(s->args[0])); break;
      case Op::kBitAnd: Decl(s, Bin(s, "&")); break;

      case Op::kStrEq:
        Decl(s, "strcmp(" + Ref(s->args[0]) + ", " + Ref(s->args[1]) +
                    ") == 0");
        break;
      case Op::kStrNe:
        Decl(s, "strcmp(" + Ref(s->args[0]) + ", " + Ref(s->args[1]) +
                    ") != 0");
        break;
      case Op::kStrLt:
        Decl(s, "strcmp(" + Ref(s->args[0]) + ", " + Ref(s->args[1]) +
                    ") < 0");
        break;
      case Op::kStrStartsWith:
        Decl(s, "qc_starts_with(" + Ref(s->args[0]) + ", " + Ref(s->args[1]) +
                    ")");
        break;
      case Op::kStrEndsWith:
        Decl(s, "qc_ends_with(" + Ref(s->args[0]) + ", " + Ref(s->args[1]) +
                    ")");
        break;
      case Op::kStrContains:
        Decl(s, "qc_contains(" + Ref(s->args[0]) + ", " + Ref(s->args[1]) +
                    ")");
        break;
      case Op::kStrLike:
        Decl(s, "qc_str_like(" + Ref(s->args[0]) + ", \"" +
                    EscapeString(s->sval) + "\")");
        break;
      case Op::kStrLen:
        Decl(s, "(int64_t)strlen(" + Ref(s->args[0]) + ")");
        break;
      case Op::kStrSubstr:
        Decl(s, "qc_substr(&strpool, " + Ref(s->args[0]) + ", " +
                    std::to_string(s->aux0) + ", " + std::to_string(s->aux1) +
                    ")");
        break;

      case Op::kVarNew:
        Decl(s, Ref(s->args[0]));
        break;
      case Op::kVarRead:
        Decl(s, Ref(s->args[0]));
        break;
      case Op::kVarAssign:
        Line(Ref(s->args[0]) + " = " + Ref(s->args[1]) + ";");
        break;

      case Op::kIf:
        Line("if (" + Ref(s->args[0]) + ") {");
        ++indent_;
        EmitBlock(s->blocks[0]);
        --indent_;
        if (s->blocks.size() > 1 && !s->blocks[1]->stmts.empty()) {
          Line("} else {");
          ++indent_;
          EmitBlock(s->blocks[1]);
          --indent_;
        }
        Line("}");
        break;
      case Op::kForRange: {
        const Stmt* i = s->blocks[0]->params[0];
        Line("for (int64_t " + Ref(i) + " = " + Ref(s->args[0]) + "; " +
             Ref(i) + " < " + Ref(s->args[1]) + "; ++" + Ref(i) + ") {");
        ++indent_;
        EmitBlock(s->blocks[0]);
        --indent_;
        Line("}");
        break;
      }
      case Op::kWhile:
        Line("while (1) {");
        ++indent_;
        EmitBlock(s->blocks[0]);
        Line("if (!" + Ref(s->blocks[0]->result) + ") break;");
        EmitBlock(s->blocks[1]);
        --indent_;
        Line("}");
        break;

      case Op::kRecNew: {
        std::string ty = "struct " + Sanitize(s->type->record->name);
        Decl(s, "(" + ty + "*)qc_malloc(sizeof(" + ty + "))");
        EmitFieldInit(s, s->args, 0);
        break;
      }
      case Op::kPoolRecNew: {
        std::string ty = "struct " + Sanitize(s->type->record->name);
        Decl(s, "(" + ty + "*)qc_pool_alloc(&" + Ref(s->args[0]) +
                    ", sizeof(" + ty + "))");
        EmitFieldInit(s, s->args, 1);
        break;
      }
      case Op::kRecGet:
        Decl(s, Ref(s->args[0]) + "->" +
                    Sanitize(FieldName(s->args[0], s->aux0)));
        break;
      case Op::kRecSet:
        Line(Ref(s->args[0]) + "->" + Sanitize(FieldName(s->args[0], s->aux0)) +
             " = " + Ref(s->args[1]) + ";");
        break;

      case Op::kArrNew:
        Decl(s, "(" + CType(s->type->elem) + "*)qc_calloc(" +
                    Ref(s->args[0]) + ", sizeof(" + CType(s->type->elem) +
                    "))");
        break;
      case Op::kMalloc:
        Decl(s, "(" + CType(s->type->elem) + "*)qc_malloc(" +
                    Ref(s->args[0]) + " * sizeof(" + CType(s->type->elem) +
                    "))");
        break;
      case Op::kArrGet:
        Decl(s, Ref(s->args[0]) + "[" + Ref(s->args[1]) + "]");
        break;
      case Op::kArrSet:
        Line(Ref(s->args[0]) + "[" + Ref(s->args[1]) + "] = " +
             Ref(s->args[2]) + ";");
        break;
      case Op::kArrSortBy:
        EmitSort(s, Ref(s->args[0]),
                 Ref(s->args[0]) + " + " + Ref(s->args[1]),
                 s->args[0]->type->elem);
        break;

      case Op::kListNew:
        Decl(s, "qc_vec_new()");
        break;
      case Op::kListAppend:
        Line("qc_vec_push(" + Ref(s->args[0]) + ", " + ToSlot(s->args[1]) +
             ");");
        break;
      case Op::kListForeach: {
        const Stmt* e = s->blocks[0]->params[0];
        std::string iv = "_i" + std::to_string(s->id);
        Line("for (int64_t " + iv + " = 0; " + iv + " < " + Ref(s->args[0]) +
             "->len; ++" + iv + ") {");
        ++indent_;
        Line(CType(e->type) + " " + Ref(e) + " = " +
             FromSlot(Ref(s->args[0]) + "->data[" + iv + "]", e->type) + ";");
        EmitBlock(s->blocks[0]);
        --indent_;
        Line("}");
        break;
      }
      case Op::kListSize:
        Decl(s, Ref(s->args[0]) + "->len");
        break;
      case Op::kListGet:
        Decl(s, FromSlot(Ref(s->args[0]) + "->data[" + Ref(s->args[1]) + "]",
                         s->type));
        break;
      case Op::kListSortBy:
        EmitSlotSort(s, Ref(s->args[0]));
        break;

      case Op::kMapNew:
      case Op::kMMapNew: {
        std::string h = "qc_hash_i64_slot", e = "qc_eq_i64_slot";
        if (s->type->key->kind == TypeKind::kRecord) {
          h = "qc_hash_" + Sanitize(s->type->key->record->name);
          e = "qc_eq_" + Sanitize(s->type->key->record->name);
        }
        Decl(s, "qc_map_new(" + h + ", " + e + ")");
        break;
      }
      case Op::kMapGetOrElseUpdate: {
        std::string node = "_n" + std::to_string(s->id);
        Line("qc_map_node* " + node + " = qc_map_find(" + Ref(s->args[0]) +
             ", " + ToSlot(s->args[1]) + ");");
        Line(CType(s->type) + " " + Ref(s) + ";");
        Line("if (" + node + ") {");
        ++indent_;
        Line(Ref(s) + " = " + FromSlot(node + "->val", s->type) + ";");
        --indent_;
        Line("} else {");
        ++indent_;
        EmitBlock(s->blocks[0]);
        Line(Ref(s) + " = " + Ref(s->blocks[0]->result) + ";");
        Line("qc_map_insert(" + Ref(s->args[0]) + ", " + ToSlot(s->args[1]) +
             ", " + ToSlot(s->blocks[0]->result) + ");");
        --indent_;
        Line("}");
        break;
      }
      case Op::kMapGetOrNull: {
        std::string node = "_n" + std::to_string(s->id);
        Line("qc_map_node* " + node + " = qc_map_find(" + Ref(s->args[0]) +
             ", " + ToSlot(s->args[1]) + ");");
        Decl(s, "(" + CType(s->type) + ")(" + node + " ? " + node +
                    "->val.p : NULL)");
        break;
      }
      case Op::kMapForeach: {
        const Stmt* k = s->blocks[0]->params[0];
        const Stmt* v = s->blocks[0]->params[1];
        std::string node = "_n" + std::to_string(s->id);
        Line("for (qc_map_node* " + node + " = " + Ref(s->args[0]) +
             "->head; " + node + "; " + node + " = " + node + "->order) {");
        ++indent_;
        Line(CType(k->type) + " " + Ref(k) + " = " +
             FromSlot(node + "->key", k->type) + ";");
        Line(CType(v->type) + " " + Ref(v) + " = " +
             FromSlot(node + "->val", v->type) + ";");
        EmitBlock(s->blocks[0]);
        --indent_;
        Line("}");
        break;
      }
      case Op::kMapSize:
        Decl(s, Ref(s->args[0]) + "->size");
        break;

      case Op::kMMapAdd:
        Line("qc_mmap_add(" + Ref(s->args[0]) + ", " + ToSlot(s->args[1]) +
             ", " + ToSlot(s->args[2]) + ");");
        break;
      case Op::kMMapGetOrNull:
        Decl(s, "qc_mmap_get(" + Ref(s->args[0]) + ", " + ToSlot(s->args[1]) +
                    ")");
        break;

      case Op::kIsNull:
        Decl(s, Ref(s->args[0]) + " == NULL");
        break;

      case Op::kFree:
        break;
      case Op::kPoolNew: {
        std::string ty = "struct " + Sanitize(s->type->elem->record->name);
        Decl(s, "qc_pool_new_est((size_t)" + Ref(s->args[0]) + " * sizeof(" +
                    ty + "))");
        break;
      }
      case Op::kPoolAlloc: {
        std::string ty = "struct " + Sanitize(s->type->record->name);
        Decl(s, "(" + ty + "*)qc_pool_alloc(&" + Ref(s->args[0]) +
                    ", sizeof(" + ty + "))");
        break;
      }

      case Op::kTableRows:
        Decl(s, "rows_" + TableName(s->aux0));
        break;
      case Op::kColGet:
        Decl(s, ColVar(s->aux0, s->aux1) + "[" + Ref(s->args[0]) + "]");
        break;
      case Op::kColDict:
        Decl(s, "dict_" + TableName(s->aux0) + "_" + ColName(s->aux0, s->aux1) +
                    "[" + Ref(s->args[0]) + "]");
        break;
      case Op::kIdxBucketLen: {
        int64_t maxk = db_.Partition(s->aux0, s->aux1).max_key;
        std::string base = TableName(s->aux0) + "_" + ColName(s->aux0, s->aux1);
        std::string k = Ref(s->args[0]);
        Decl(s, "(" + k + " >= 0 && " + k + " <= " + std::to_string(maxk) +
                    "LL) ? (idxoff_" + base + "[" + k + " + 1] - idxoff_" +
                    base + "[" + k + "]) : 0");
        break;
      }
      case Op::kIdxBucketRow: {
        std::string base = TableName(s->aux0) + "_" + ColName(s->aux0, s->aux1);
        Decl(s, "idxrows_" + base + "[idxoff_" + base + "[" +
                    Ref(s->args[0]) + "] + " + Ref(s->args[1]) + "]");
        break;
      }
      case Op::kIdxPkRow: {
        int64_t maxk = db_.PrimaryIndex(s->aux0, s->aux1).max_key;
        std::string base = TableName(s->aux0) + "_" + ColName(s->aux0, s->aux1);
        std::string k = Ref(s->args[0]);
        Decl(s, "(" + k + " >= 0 && " + k + " <= " + std::to_string(maxk) +
                    "LL) ? pk_" + base + "[" + k + "] : -1");
        break;
      }

      case Op::kEmit: {
        std::string row = "_row" + std::to_string(s->id);
        std::string init;
        for (size_t i = 0; i < s->args.size(); ++i) {
          if (i > 0) init += ", ";
          init += ToSlot(s->args[i]);
        }
        Line("{ qc_slot " + row + "[] = {" + init + "}; qc_emit(&result, " +
             row + ", " + std::to_string(s->args.size()) + "); }");
        break;
      }

      default:
        std::fprintf(stderr, "cgen: unhandled op %s\n", OpName(s->op));
        std::abort();
    }
  }

  const std::string& FieldName(const Stmt* rec, int field) {
    const ir::RecordSchema* schema = rec->type->kind == TypeKind::kPtr
                                         ? rec->type->elem->record
                                         : rec->type->record;
    return schema->fields[field].name;
  }

  void EmitFieldInit(const Stmt* s, const std::vector<Stmt*>& args,
                     size_t from) {
    const auto& fields = s->type->record->fields;
    for (size_t i = from; i < args.size(); ++i) {
      Line(Ref(s) + "->" + Sanitize(fields[i - from].name) + " = " +
           Ref(args[i]) + ";");
    }
  }

  // std::sort over typed arrays (comparator = C++ lambda capturing scope).
  void EmitSort(const Stmt* s, const std::string& begin,
                const std::string& end, const Type* elem) {
    const Block* cmp = s->blocks[0];
    Line("std::sort(" + begin + ", " + end + ", [&](" + CType(elem) +
         " _a, " + CType(elem) + " _b) {");
    ++indent_;
    Line(CType(elem) + " " + Ref(cmp->params[0]) + " = _a;");
    Line(CType(elem) + " " + Ref(cmp->params[1]) + " = _b;");
    EmitBlock(cmp);
    Line("return (bool)" + Ref(cmp->result) + ";");
    --indent_;
    Line("});");
  }

  void EmitSlotSort(const Stmt* s, const std::string& vec) {
    const Block* cmp = s->blocks[0];
    const Type* elem = cmp->params[0]->type;
    Line("std::stable_sort(" + vec + "->data, " + vec + "->data + " + vec +
         "->len, [&](qc_slot _a, qc_slot _b) {");
    ++indent_;
    Line(CType(elem) + " " + Ref(cmp->params[0]) + " = " +
         FromSlot("_a", elem) + ";");
    Line(CType(elem) + " " + Ref(cmp->params[1]) + " = " +
         FromSlot("_b", elem) + ";");
    EmitBlock(cmp);
    Line("return (bool)" + Ref(cmp->result) + ";");
    --indent_;
    Line("});");
  }

  const ir::Function& fn_;
  storage::Database& db_;
  std::string data_dir_;
  std::ostringstream out_;
  int indent_ = 0;

  std::set<int> tables_;
  std::set<std::pair<int, int>> cols_, dicts_, parts_, pks_;
  std::set<const Type*> records_, key_records_;
  std::vector<const Type*> emit_types_;
};

}  // namespace

std::string EmitProgram(const ir::Function& fn, storage::Database& db,
                        const std::string& data_dir) {
  return CEmitter(fn, db, data_dir).Run();
}

void ExportAux(const storage::Database& db, const std::string& dir) {
  db.ExportAux(dir);
}

}  // namespace qc::cgen
