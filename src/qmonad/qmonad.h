// QMonad: the collection-programming front-end (§4.5, Fig. 4c). A functional
// DSL of chained higher-order collection operators (map / filter / hashJoin
// / groupBy / fold / count / sortBy / take) over base tables, in the spirit
// of monad calculus and Spark-style APIs.
//
// Two lowerings to the shared IR exist, and their contrast is the paper's
// §5.1 story:
//
//  * LowerFused — the producer/consumer (build/foreach) encoding of Fig. 6:
//    inlining the operator definitions *is* shortcut fusion, every operator
//    chain becomes one loop nest, intermediate collections disappear, and
//    the result lands in ScaLite[Map, List] exactly like pipelined QPlan.
//    The encoding needs O(n) operator definitions.
//
//  * LowerUnfused — each operator materializes its full output into a List
//    before the next operator runs: the naive semantics a template expander
//    without fusion machinery produces. Used as the fusion ablation
//    (bench/fig1_explosion) and by tests as a second semantics reference.
//
// FusionRuleAccounting quantifies Fig. 1 / §5.1's O(n^2)-rewrite-rules
// argument from the operator registry itself.
#ifndef QC_QMONAD_QMONAD_H_
#define QC_QMONAD_QMONAD_H_

#include <memory>
#include <string>
#include <vector>

#include "ir/stmt.h"
#include "qplan/plan.h"
#include "storage/database.h"

namespace qc::qmonad {

enum class MKind {
  kSource,
  kMap,
  kFilter,
  kHashJoin,
  kGroupBy,
  kFold,   // global aggregation -> one row
  kCount,  // global count -> one row
  kSortBy,
  kTake,
};

constexpr int kNumConstructs = 9;

struct MonadOp;
using MonadPtr = std::shared_ptr<MonadOp>;

struct MonadOp {
  MKind kind;
  MonadPtr child;   // upstream collection
  MonadPtr other;   // hashJoin: right collection

  std::string table;                          // kSource
  int table_id = -1;
  qplan::ExprPtr pred;                        // kFilter
  std::vector<qplan::NamedExpr> projections;  // kMap
  qplan::ExprPtr left_key, right_key;         // kHashJoin (single keys)
  std::vector<qplan::NamedExpr> group_by;     // kGroupBy
  std::vector<qplan::AggSpec> aggs;           // kGroupBy / kFold
  std::vector<qplan::SortKey> sort_keys;      // kSortBy
  int64_t take_n = -1;                        // kTake

  qplan::Schema schema;  // filled by ResolveMonad
};

// --- fluent constructors -----------------------------------------------------

MonadPtr Source(const std::string& table);
MonadPtr Map(MonadPtr child, std::vector<qplan::NamedExpr> projections);
MonadPtr Filter(MonadPtr child, qplan::ExprPtr pred);
MonadPtr HashJoin(MonadPtr left, MonadPtr right, qplan::ExprPtr left_key,
                  qplan::ExprPtr right_key);
MonadPtr GroupBy(MonadPtr child, std::vector<qplan::NamedExpr> keys,
                 std::vector<qplan::AggSpec> aggs);
MonadPtr Fold(MonadPtr child, std::vector<qplan::AggSpec> aggs);
MonadPtr Count(MonadPtr child);
MonadPtr SortBy(MonadPtr child, std::vector<qplan::SortKey> keys);
MonadPtr Take(MonadPtr child, int64_t n);

// Resolves tables, column references and schemas bottom-up.
void ResolveMonad(MonadOp* op, const storage::Database& db);

// Shortcut-fusion lowering (Fig. 6): one pipelined loop nest, no
// intermediate collections. Output verifies at Level::kMapList.
std::unique_ptr<ir::Function> LowerFused(const MonadOp& op,
                                         storage::Database& db,
                                         ir::TypeFactory* types,
                                         const std::string& name);

// Materializing lowering: every operator produces a full List first.
std::unique_ptr<ir::Function> LowerUnfused(const MonadOp& op,
                                           storage::Database& db,
                                           ir::TypeFactory* types,
                                           const std::string& name);

// Fig. 1 accounting: pairwise fusion needs a rule per (producer, consumer)
// combination; the build/foreach encoding needs one definition per operator.
struct FusionRuleAccounting {
  int constructs = kNumConstructs;
  int pairwise_rules = kNumConstructs * kNumConstructs;
  int shortcut_rules = kNumConstructs;
};
FusionRuleAccounting CountFusionRules();

}  // namespace qc::qmonad

#endif  // QC_QMONAD_QMONAD_H_
