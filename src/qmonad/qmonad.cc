#include "qmonad/qmonad.h"

#include <cassert>
#include <cstdio>
#include <cstdlib>
#include <functional>

#include "ir/builder.h"
#include "lower/expr_lower.h"

namespace qc::qmonad {

using ir::Builder;
using ir::Stmt;
using ir::Type;
using lower::LowerExpr;
using lower::LowerValType;
using qplan::AggFn;
using qplan::ExprPtr;
using qplan::Schema;
using qplan::ValType;

namespace {

MonadPtr MakeOp(MKind k, MonadPtr child = nullptr) {
  auto op = std::make_shared<MonadOp>();
  op->kind = k;
  op->child = std::move(child);
  return op;
}

[[noreturn]] void Fail(const std::string& msg) {
  std::fprintf(stderr, "qmonad error: %s\n", msg.c_str());
  std::abort();
}

}  // namespace

MonadPtr Source(const std::string& table) {
  MonadPtr op = MakeOp(MKind::kSource);
  op->table = table;
  return op;
}

MonadPtr Map(MonadPtr child, std::vector<qplan::NamedExpr> projections) {
  MonadPtr op = MakeOp(MKind::kMap, std::move(child));
  op->projections = std::move(projections);
  return op;
}

MonadPtr Filter(MonadPtr child, ExprPtr pred) {
  MonadPtr op = MakeOp(MKind::kFilter, std::move(child));
  op->pred = std::move(pred);
  return op;
}

MonadPtr HashJoin(MonadPtr left, MonadPtr right, ExprPtr left_key,
                  ExprPtr right_key) {
  MonadPtr op = MakeOp(MKind::kHashJoin, std::move(left));
  op->other = std::move(right);
  op->left_key = std::move(left_key);
  op->right_key = std::move(right_key);
  return op;
}

MonadPtr GroupBy(MonadPtr child, std::vector<qplan::NamedExpr> keys,
                 std::vector<qplan::AggSpec> aggs) {
  MonadPtr op = MakeOp(MKind::kGroupBy, std::move(child));
  op->group_by = std::move(keys);
  op->aggs = std::move(aggs);
  return op;
}

MonadPtr Fold(MonadPtr child, std::vector<qplan::AggSpec> aggs) {
  MonadPtr op = MakeOp(MKind::kFold, std::move(child));
  op->aggs = std::move(aggs);
  return op;
}

MonadPtr Count(MonadPtr child) {
  MonadPtr op = MakeOp(MKind::kCount, std::move(child));
  op->aggs = {qplan::Count("count")};
  return op;
}

MonadPtr SortBy(MonadPtr child, std::vector<qplan::SortKey> keys) {
  MonadPtr op = MakeOp(MKind::kSortBy, std::move(child));
  op->sort_keys = std::move(keys);
  return op;
}

MonadPtr Take(MonadPtr child, int64_t n) {
  MonadPtr op = MakeOp(MKind::kTake, std::move(child));
  op->take_n = n;
  return op;
}

void ResolveMonad(MonadOp* op, const storage::Database& db) {
  if (op->child != nullptr) ResolveMonad(op->child.get(), db);
  if (op->other != nullptr) ResolveMonad(op->other.get(), db);
  switch (op->kind) {
    case MKind::kSource: {
      op->table_id = db.TableId(op->table);
      if (op->table_id < 0) Fail("unknown table '" + op->table + "'");
      const storage::TableDef& def = db.table(op->table_id).def();
      for (const auto& c : def.columns) {
        ValType t = ValType::kI64;
        switch (c.type) {
          case storage::ColType::kF64: t = ValType::kF64; break;
          case storage::ColType::kStr: t = ValType::kStr; break;
          case storage::ColType::kDate: t = ValType::kDate; break;
          default: break;
        }
        op->schema.push_back(qplan::OutCol{c.name, t});
      }
      break;
    }
    case MKind::kMap: {
      for (auto& ne : op->projections) {
        qplan::Resolve(ne.expr, op->child->schema);
        op->schema.push_back(qplan::OutCol{ne.name, ne.expr->type});
      }
      break;
    }
    case MKind::kFilter:
      qplan::Resolve(op->pred, op->child->schema);
      if (op->pred->type != ValType::kBool) Fail("filter is not boolean");
      op->schema = op->child->schema;
      break;
    case MKind::kHashJoin: {
      qplan::Resolve(op->left_key, op->child->schema);
      qplan::Resolve(op->right_key, op->other->schema);
      op->schema = op->child->schema;
      op->schema.insert(op->schema.end(), op->other->schema.begin(),
                        op->other->schema.end());
      break;
    }
    case MKind::kGroupBy:
    case MKind::kFold:
    case MKind::kCount: {
      for (auto& g : op->group_by) {
        qplan::Resolve(g.expr, op->child->schema);
        op->schema.push_back(qplan::OutCol{g.name, g.expr->type});
      }
      for (auto& a : op->aggs) {
        ValType t = ValType::kI64;
        if (a.fn != AggFn::kCount) {
          qplan::Resolve(a.arg, op->child->schema);
          t = a.fn == AggFn::kAvg ? ValType::kF64 : a.arg->type;
        }
        op->schema.push_back(qplan::OutCol{a.name, t});
      }
      break;
    }
    case MKind::kSortBy:
      op->schema = op->child->schema;
      for (auto& k : op->sort_keys) qplan::Resolve(k.expr, op->schema);
      break;
    case MKind::kTake:
      op->schema = op->child->schema;
      break;
  }
}

namespace {

// Translating the QMonad tree into the equivalent QPlan tree would discard
// the fusion story; instead both lowerings below work directly on the monad
// operators, sharing only the scalar-expression lowering.

using Row = std::vector<Stmt*>;
using Consumer = std::function<void(const Row&)>;

class MonadLowering {
 public:
  MonadLowering(storage::Database& db, ir::TypeFactory* types, bool fused)
      : db_(db), types_(types), fused_(fused) {}

  std::unique_ptr<ir::Function> Run(const MonadOp& op,
                                    const std::string& name) {
    auto fn = std::make_unique<ir::Function>(name, types_);
    Builder builder(fn.get());
    b_ = &builder;
    if (fused_) {
      Produce(op, [&](const Row& row) { b_->EmitRow(row); });
    } else {
      // Materializing semantics: the final list is traversed for emission.
      auto [lst, tup] = Materialize(op);
      b_->ListForeach(lst, [&](Stmt* rec) {
        b_->EmitRow(RecFields(rec, op.schema.size()));
      });
      (void)tup;
    }
    b_ = nullptr;
    return fn;
  }

 private:
  Builder& b() { return *b_; }

  const Type* TupleType(const Schema& schema) {
    std::vector<ir::Field> fields;
    for (size_t i = 0; i < schema.size(); ++i) {
      fields.push_back(ir::Field{"f" + std::to_string(i) + "_" +
                                     schema[i].name,
                                 LowerValType(types_, schema[i].type)});
    }
    return types_->Record("MTup" + std::to_string(counter_++),
                          std::move(fields));
  }

  Row RecFields(Stmt* rec, size_t n) {
    Row row;
    for (size_t i = 0; i < n; ++i) {
      row.push_back(b().RecGet(rec, static_cast<int>(i)));
    }
    return row;
  }

  // --- fused (build/foreach producer-consumer encoding, Fig. 6) -------------

  void Produce(const MonadOp& op, const Consumer& k) {
    switch (op.kind) {
      case MKind::kSource: {
        const storage::Table& t = db_.table(op.table_id);
        Stmt* n = b().TableRows(op.table_id);
        b().ForRange(b().I64(0), n, [&](Stmt* i) {
          Row row;
          for (size_t c = 0; c < t.num_columns(); ++c) {
            const Type* ct = LowerValType(
                types_, op.schema[c].type);
            row.push_back(b().ColGet(op.table_id, static_cast<int>(c), i, ct));
          }
          k(row);
        });
        break;
      }
      case MKind::kMap:
        Produce(*op.child, [&](const Row& row) {
          Row out;
          for (const auto& ne : op.projections) {
            out.push_back(LowerExpr(b(), ne.expr, row));
          }
          k(out);
        });
        break;
      case MKind::kFilter:
        Produce(*op.child, [&](const Row& row) {
          b().If(LowerExpr(b(), op.pred, row), [&] { k(row); });
        });
        break;
      case MKind::kHashJoin: {
        const Type* tup = TupleType(op.other->schema);
        Stmt* mm = b().MMapNew(types_->I64(), tup);
        Produce(*op.other, [&](const Row& row) {
          Stmt* key = b().Cast(LowerExpr(b(), op.right_key, row),
                               types_->I64());
          b().MMapAdd(mm, key, b().RecNew(tup, row));
        });
        Produce(*op.child, [&](const Row& lrow) {
          Stmt* key = b().Cast(LowerExpr(b(), op.left_key, lrow),
                               types_->I64());
          Stmt* lst = b().MMapGetOrNull(mm, key);
          b().If(b().Not(b().IsNull(lst)), [&] {
            b().ListForeach(lst, [&](Stmt* rec) {
              Row out = lrow;
              Row rrow = RecFields(rec, op.other->schema.size());
              out.insert(out.end(), rrow.begin(), rrow.end());
              k(out);
            });
          });
        });
        break;
      }
      case MKind::kGroupBy:
      case MKind::kFold:
      case MKind::kCount:
        ProduceAgg(op, k);
        break;
      case MKind::kSortBy: {
        const Type* tup = TupleType(op.child->schema);
        Stmt* lst = b().ListNew(tup);
        Produce(*op.child, [&](const Row& row) {
          b().ListAppend(lst, b().RecNew(tup, row));
        });
        SortList(op, lst);
        b().ListForeach(lst, [&](Stmt* rec) {
          k(RecFields(rec, op.child->schema.size()));
        });
        break;
      }
      case MKind::kTake: {
        Stmt* count = b().VarNew(b().I64(0));
        Produce(*op.child, [&](const Row& row) {
          Stmt* c = b().VarRead(count);
          b().If(b().Lt(c, b().I64(op.take_n)), [&] {
            k(row);
            b().VarAssign(count, b().Add(c, b().I64(1)));
          });
        });
        break;
      }
    }
  }

  // Child production for aggregation: the unfused path overrides it with a
  // traversal of the materialized list.
  void ProduceChild(const MonadOp& op, const Consumer& k) {
    if (produce_override_) {
      produce_override_(k);
      return;
    }
    Produce(*op.child, k);
  }

  void ProduceAgg(const MonadOp& op, const Consumer& k) {
    // Grouped: HashMap of mutable aggregation records (keys as a record when
    // composite). Global (fold/count): mutable variables.
    if (op.group_by.empty()) {
      Stmt* n_var = b().VarNew(b().I64(0));
      std::vector<Stmt*> accs;
      std::vector<const Type*> ts;
      for (const auto& a : op.aggs) {
        const Type* t =
            a.fn == AggFn::kCount
                ? types_->I64()
                : (a.fn == AggFn::kAvg ? types_->F64()
                                       : LowerValType(types_, a.arg->type));
        ts.push_back(t);
        accs.push_back(b().VarNew(lower::DefaultValue(b(), t)));
      }
      ProduceChild(op, [&](const Row& row) {
        Stmt* n0 = b().VarRead(n_var);
        for (size_t a = 0; a < op.aggs.size(); ++a) {
          const qplan::AggSpec& sp = op.aggs[a];
          if (sp.fn == AggFn::kCount) continue;
          Stmt* v = b().Cast(LowerExpr(b(), sp.arg, row), ts[a]);
          Stmt* cur = b().VarRead(accs[a]);
          switch (sp.fn) {
            case AggFn::kSum:
            case AggFn::kAvg:
              b().VarAssign(accs[a], b().Add(cur, v));
              break;
            case AggFn::kMin:
              b().If(b().Or(b().Eq(n0, b().I64(0)), b().Lt(v, cur)),
                     [&] { b().VarAssign(accs[a], v); });
              break;
            case AggFn::kMax:
              b().If(b().Or(b().Eq(n0, b().I64(0)), b().Gt(v, cur)),
                     [&] { b().VarAssign(accs[a], v); });
              break;
            default:
              break;
          }
        }
        b().VarAssign(n_var, b().Add(n0, b().I64(1)));
      });
      Row out;
      Stmt* n = b().VarRead(n_var);
      for (size_t a = 0; a < op.aggs.size(); ++a) {
        if (op.aggs[a].fn == AggFn::kCount) {
          out.push_back(n);
        } else if (op.aggs[a].fn == AggFn::kAvg) {
          Stmt* r = b().VarNew(b().F64(0.0));
          b().If(b().Gt(n, b().I64(0)), [&] {
            b().VarAssign(r, b().Div(b().VarRead(accs[a]),
                                     b().Cast(n, types_->F64())));
          });
          out.push_back(b().VarRead(r));
        } else {
          out.push_back(b().VarRead(accs[a]));
        }
      }
      k(out);
      return;
    }

    // Grouped aggregation.
    std::vector<ir::Field> fields;
    for (size_t i = 0; i < op.group_by.size(); ++i) {
      fields.push_back(ir::Field{
          "g" + std::to_string(i),
          LowerValType(types_, op.group_by[i].expr->type)});
    }
    for (size_t a = 0; a < op.aggs.size(); ++a) {
      const Type* t =
          op.aggs[a].fn == AggFn::kCount
              ? types_->I64()
              : (op.aggs[a].fn == AggFn::kAvg
                     ? types_->F64()
                     : LowerValType(types_, op.aggs[a].arg->type));
      fields.push_back(ir::Field{"a" + std::to_string(a), t});
    }
    fields.push_back(ir::Field{"n", types_->I64()});
    const Type* agg_rec = types_->Record(
        "MAggRec" + std::to_string(counter_++), std::move(fields));
    int n_idx = static_cast<int>(agg_rec->record->fields.size()) - 1;
    size_t acc_base = op.group_by.size();

    bool single_int = op.group_by.size() == 1 &&
                      op.group_by[0].expr->type != ValType::kStr &&
                      op.group_by[0].expr->type != ValType::kF64;
    const Type* key_type;
    if (single_int) {
      key_type = types_->I64();
    } else {
      std::vector<ir::Field> kf;
      for (size_t i = 0; i < op.group_by.size(); ++i) {
        kf.push_back(ir::Field{
            "k" + std::to_string(i),
            LowerValType(types_, op.group_by[i].expr->type)});
      }
      key_type = types_->Record("MKey" + std::to_string(counter_++),
                                std::move(kf));
    }
    Stmt* map = b().MapNew(key_type, agg_rec);
    map->aux0 = single_int ? 0 : -1;
    map->aux1 = static_cast<int>(op.group_by.size());

    ProduceChild(op, [&](const Row& row) {
      Row gvals;
      for (const auto& g : op.group_by) {
        gvals.push_back(LowerExpr(b(), g.expr, row));
      }
      Stmt* key = single_int ? b().Cast(gvals[0], types_->I64())
                             : b().RecNew(key_type, gvals);
      Stmt* rec = b().MapGetOrElseUpdate(map, key, [&]() -> Stmt* {
        Row init = gvals;
        for (size_t a = 0; a < op.aggs.size(); ++a) {
          init.push_back(lower::DefaultValue(
              b(), agg_rec->record->fields[acc_base + a].type));
        }
        init.push_back(b().I64(0));
        return b().RecNew(agg_rec, init);
      });
      Stmt* n0 = b().RecGet(rec, n_idx);
      for (size_t a = 0; a < op.aggs.size(); ++a) {
        const qplan::AggSpec& sp = op.aggs[a];
        if (sp.fn == AggFn::kCount) continue;
        int fidx = static_cast<int>(acc_base + a);
        Stmt* v = b().Cast(LowerExpr(b(), sp.arg, row),
                           agg_rec->record->fields[fidx].type);
        Stmt* cur = b().RecGet(rec, fidx);
        switch (sp.fn) {
          case AggFn::kSum:
          case AggFn::kAvg:
            b().RecSet(rec, fidx, b().Add(cur, v));
            break;
          case AggFn::kMin:
            b().If(b().Or(b().Eq(n0, b().I64(0)), b().Lt(v, cur)),
                   [&] { b().RecSet(rec, fidx, v); });
            break;
          case AggFn::kMax:
            b().If(b().Or(b().Eq(n0, b().I64(0)), b().Gt(v, cur)),
                   [&] { b().RecSet(rec, fidx, v); });
            break;
          default:
            break;
        }
      }
      b().RecSet(rec, n_idx, b().Add(n0, b().I64(1)));
    });

    b().MapForeach(map, [&](Stmt* /*key*/, Stmt* rec) {
      Row out;
      for (size_t i = 0; i < op.group_by.size(); ++i) {
        out.push_back(b().RecGet(rec, static_cast<int>(i)));
      }
      Stmt* n = b().RecGet(rec, n_idx);
      for (size_t a = 0; a < op.aggs.size(); ++a) {
        int fidx = static_cast<int>(acc_base + a);
        if (op.aggs[a].fn == AggFn::kCount) {
          out.push_back(n);
        } else if (op.aggs[a].fn == AggFn::kAvg) {
          out.push_back(
              b().Div(b().RecGet(rec, fidx), b().Cast(n, types_->F64())));
        } else {
          out.push_back(b().RecGet(rec, fidx));
        }
      }
      k(out);
    });
  }

  void SortList(const MonadOp& op, Stmt* lst) {
    b().ListSortBy(lst, [&](Stmt* x, Stmt* y) -> Stmt* {
      Row rx = RecFields(x, op.child->schema.size());
      Row ry = RecFields(y, op.child->schema.size());
      Stmt* less = b().BoolC(false);
      for (size_t i = op.sort_keys.size(); i-- > 0;) {
        const qplan::SortKey& sk = op.sort_keys[i];
        Stmt* a = LowerExpr(b(), sk.expr, rx);
        Stmt* c = LowerExpr(b(), sk.expr, ry);
        if (sk.desc) std::swap(a, c);
        Stmt *lt, *eq;
        if (sk.expr->type == ValType::kStr) {
          lt = b().StrLt(a, c);
          eq = b().StrEq(a, c);
        } else {
          lt = b().Lt(a, c);
          eq = b().Eq(a, c);
        }
        less = b().Or(lt, b().And(eq, less));
      }
      return less;
    });
  }

  // --- unfused (materialize every operator) ----------------------------------

  std::pair<Stmt*, const Type*> Materialize(const MonadOp& op) {
    const Type* tup = TupleType(op.schema);
    Stmt* out = b().ListNew(tup);
    auto append = [&](const Row& row) {
      b().ListAppend(out, b().RecNew(tup, row));
    };
    switch (op.kind) {
      case MKind::kSource: {
        const storage::Table& t = db_.table(op.table_id);
        Stmt* n = b().TableRows(op.table_id);
        b().ForRange(b().I64(0), n, [&](Stmt* i) {
          Row row;
          for (size_t c = 0; c < t.num_columns(); ++c) {
            row.push_back(b().ColGet(op.table_id, static_cast<int>(c), i,
                                     LowerValType(types_, op.schema[c].type)));
          }
          append(row);
        });
        break;
      }
      case MKind::kMap: {
        auto [in, tin] = Materialize(*op.child);
        (void)tin;
        b().ListForeach(in, [&](Stmt* rec) {
          Row row = RecFields(rec, op.child->schema.size());
          Row outr;
          for (const auto& ne : op.projections) {
            outr.push_back(LowerExpr(b(), ne.expr, row));
          }
          append(outr);
        });
        break;
      }
      case MKind::kFilter: {
        auto [in, tin] = Materialize(*op.child);
        (void)tin;
        b().ListForeach(in, [&](Stmt* rec) {
          Row row = RecFields(rec, op.child->schema.size());
          b().If(LowerExpr(b(), op.pred, row), [&] { append(row); });
        });
        break;
      }
      case MKind::kHashJoin: {
        auto [rin, rtup] = Materialize(*op.other);
        Stmt* mm = b().MMapNew(types_->I64(), rtup);
        b().ListForeach(rin, [&](Stmt* rec) {
          Row row = RecFields(rec, op.other->schema.size());
          Stmt* key =
              b().Cast(LowerExpr(b(), op.right_key, row), types_->I64());
          b().MMapAdd(mm, key, rec);
        });
        auto [lin, ltup] = Materialize(*op.child);
        (void)ltup;
        b().ListForeach(lin, [&](Stmt* lrec) {
          Row lrow = RecFields(lrec, op.child->schema.size());
          Stmt* key =
              b().Cast(LowerExpr(b(), op.left_key, lrow), types_->I64());
          Stmt* lst = b().MMapGetOrNull(mm, key);
          b().If(b().Not(b().IsNull(lst)), [&] {
            b().ListForeach(lst, [&](Stmt* rrec) {
              Row out2 = lrow;
              Row rrow = RecFields(rrec, op.other->schema.size());
              out2.insert(out2.end(), rrow.begin(), rrow.end());
              append(out2);
            });
          });
        });
        break;
      }
      case MKind::kGroupBy:
      case MKind::kFold:
      case MKind::kCount: {
        auto [in, tin] = Materialize(*op.child);
        (void)tin;
        // Reuse the fused aggregation driver over the materialized list.
        MonadOp shim = op;
        // Consume the list through a fake producer.
        ProduceAggOverList(op, in, append);
        (void)shim;
        break;
      }
      case MKind::kSortBy: {
        auto [in, tin] = Materialize(*op.child);
        (void)tin;
        SortList(op, in);
        return {in, tup};
      }
      case MKind::kTake: {
        auto [in, tin] = Materialize(*op.child);
        (void)tin;
        Stmt* count = b().VarNew(b().I64(0));
        b().ListForeach(in, [&](Stmt* rec) {
          Stmt* c = b().VarRead(count);
          b().If(b().Lt(c, b().I64(op.take_n)), [&] {
            append(RecFields(rec, op.child->schema.size()));
            b().VarAssign(count, b().Add(c, b().I64(1)));
          });
        });
        break;
      }
    }
    return {out, tup};
  }

  // Aggregation over an already-materialized list (unfused path). Builds a
  // temporary single-source producer so ProduceAgg's logic is shared.
  void ProduceAggOverList(const MonadOp& op, Stmt* in,
                          const std::function<void(const Row&)>& append) {
    // Clone of ProduceAgg with the child production replaced by a foreach.
    MonadLowering* self = this;
    struct ListProducer {
      MonadLowering* lowering;
      Stmt* list;
      size_t width;
    };
    ListProducer lp{self, in, op.child->schema.size()};
    // Temporarily hijack Produce(child) via a lambda-based shim.
    produce_override_ = [lp](const Consumer& k) {
      lp.lowering->b().ListForeach(lp.list, [&](Stmt* rec) {
        k(lp.lowering->RecFields(rec, lp.width));
      });
    };
    ProduceAgg(op, append);
    produce_override_ = nullptr;
  }

  storage::Database& db_;
  ir::TypeFactory* types_;
  bool fused_;
  Builder* b_ = nullptr;
  int counter_ = 0;
  std::function<void(const Consumer&)> produce_override_;
};

}  // namespace

std::unique_ptr<ir::Function> LowerFused(const MonadOp& op,
                                         storage::Database& db,
                                         ir::TypeFactory* types,
                                         const std::string& name) {
  return MonadLowering(db, types, true).Run(op, name);
}

std::unique_ptr<ir::Function> LowerUnfused(const MonadOp& op,
                                           storage::Database& db,
                                           ir::TypeFactory* types,
                                           const std::string& name) {
  return MonadLowering(db, types, false).Run(op, name);
}

FusionRuleAccounting CountFusionRules() { return FusionRuleAccounting{}; }

}  // namespace qc::qmonad
