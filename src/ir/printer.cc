#include "ir/printer.h"

#include <sstream>

namespace qc::ir {

namespace {

class Printer {
 public:
  std::string Run(const Function& fn) {
    out_ << "fun " << fn.name() << "() {\n";
    indent_ = 1;
    PrintBlock(fn.body());
    out_ << "}\n";
    return out_.str();
  }

  void PrintBlock(const Block* b) {
    for (const Stmt* s : b->stmts) PrintOne(s);
    if (b->result != nullptr) {
      Indent();
      out_ << "yield x" << b->result->id << "\n";
    }
  }

  void PrintOne(const Stmt* s) {
    Indent();
    if (s->type != nullptr && s->type->kind != TypeKind::kVoid) {
      out_ << "val x" << s->id << ": " << s->type->ToString() << " = ";
    }
    out_ << OpName(s->op);
    if (s->op == Op::kConst) {
      out_ << " ";
      if (s->type->kind == TypeKind::kStr) {
        out_ << '"' << s->sval << '"';
      } else if (s->type->kind == TypeKind::kF64) {
        out_ << s->fval;
      } else {
        out_ << s->ival;
      }
      out_ << "\n";
      return;
    }
    out_ << "(";
    bool first = true;
    for (const Stmt* a : s->args) {
      if (!first) out_ << ", ";
      first = false;
      out_ << "x" << a->id;
    }
    if (s->aux0 >= 0) out_ << (first ? "#" : ", #") << s->aux0;
    if (s->aux1 >= 0) out_ << "." << s->aux1;
    if (!s->sval.empty()) out_ << " \"" << s->sval << '"';
    out_ << ")";
    if (s->lib_call) out_ << " [lib]";
    if (s->blocks.empty()) {
      out_ << "\n";
      return;
    }
    out_ << " {\n";
    ++indent_;
    for (size_t i = 0; i < s->blocks.size(); ++i) {
      const Block* b = s->blocks[i];
      if (i > 0) {
        --indent_;
        Indent();
        out_ << "} else {\n";
        ++indent_;
      }
      if (!b->params.empty()) {
        Indent();
        out_ << "params";
        for (const Stmt* p : b->params) {
          out_ << " x" << p->id << ": " << p->type->ToString();
        }
        out_ << "\n";
      }
      PrintBlock(b);
    }
    --indent_;
    Indent();
    out_ << "}\n";
  }

 private:
  void Indent() {
    for (int i = 0; i < indent_; ++i) out_ << "  ";
  }

  std::ostringstream out_;
  int indent_ = 0;
};

}  // namespace

std::string PrintFunction(const Function& fn) { return Printer().Run(fn); }

std::string PrintStmt(const Stmt* s) {
  std::ostringstream out;
  out << "x" << s->id << " = " << OpName(s->op);
  return out.str();
}

}  // namespace qc::ir
