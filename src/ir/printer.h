// ANF text printer — the human-readable form used in golden tests and for
// debugging pass pipelines (mirrors the `val x1 = ...` listings in §3.3).
#ifndef QC_IR_PRINTER_H_
#define QC_IR_PRINTER_H_

#include <string>

#include "ir/stmt.h"

namespace qc::ir {

std::string PrintFunction(const Function& fn);
std::string PrintStmt(const Stmt* s);

}  // namespace qc::ir

#endif  // QC_IR_PRINTER_H_
