#include "ir/numbering.h"

namespace qc::ir {

namespace {

void CountBlock(const Block* b, std::vector<int>* counts) {
  for (const Stmt* s : b->stmts) {
    for (const Stmt* a : s->args) ++(*counts)[a->id];
    for (const Block* nb : s->blocks) CountBlock(nb, counts);
  }
  if (b->result != nullptr) ++(*counts)[b->result->id];
}

void RenumberBlock(Block* b, int* next) {
  for (Stmt* p : b->params) p->id = (*next)++;
  for (Stmt* s : b->stmts) {
    s->id = (*next)++;
    for (Block* nb : s->blocks) RenumberBlock(nb, next);
  }
}

}  // namespace

std::vector<int> ComputeUseCounts(const Function& fn) {
  std::vector<int> counts(fn.num_stmts(), 0);
  CountBlock(fn.body(), &counts);
  return counts;
}

void RenumberDense(Function* fn) {
  int next = 0;
  RenumberBlock(fn->body(), &next);
  fn->SetNumStmts(next);
}

}  // namespace qc::ir
