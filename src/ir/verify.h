// IR well-formedness and DSL-level verification.
//
// VerifyFunction enforces the ANF discipline (every argument is a symbol
// bound earlier in a dominating scope, every statement is bound exactly
// once). VerifyLevel additionally enforces the *expressibility principle*:
// a program claimed to be at DSL level L may only use constructs whose
// [min_level, max_level] range contains L — e.g. MultiMap operations must be
// gone below ScaLite[Map, List], and malloc/pool constructs may only appear
// in C.Lite. Statements marked lib_call (unspecializable generic collections
// kept as external-library calls, the GLib analogue) are exempt from the
// level check but not from ANF checks.
#ifndef QC_IR_VERIFY_H_
#define QC_IR_VERIFY_H_

#include <string>
#include <vector>

#include "ir/stmt.h"

namespace qc::ir {

// DSL levels of the stack, from bottom to top.
enum class Level : int {
  kCLite = 0,     // C.Scala: + malloc/pointers/pools
  kScaLite = 1,   // imperative core
  kList = 2,      // + List
  kMapList = 3,   // + HashMap/MultiMap
};

const char* LevelName(Level level);

// Returns a list of violations (empty = OK).
std::vector<std::string> VerifyFunction(const Function& fn);
std::vector<std::string> VerifyLevel(const Function& fn, Level level,
                                     bool allow_lib_calls = true);

// Convenience: die loudly (used in tests and the pass manager's debug mode).
void CheckFunction(const Function& fn);
void CheckLevel(const Function& fn, Level level, bool allow_lib_calls = true);

}  // namespace qc::ir

#endif  // QC_IR_VERIFY_H_
