// Rewriting infrastructure: every pass is implemented as a *rebuilding
// clone* of the input function. The Cloner walks the source in order,
// re-emitting each statement through a Builder into a fresh function; a pass
// overrides Transform() to intercept statements it wants to change and emits
// replacement code through the same Builder. Because emission goes through
// the Builder, the output is automatically in ANF with CSE applied, and the
// source function is never mutated (passes are pure Function -> Function).
#ifndef QC_IR_REWRITE_H_
#define QC_IR_REWRITE_H_

#include <memory>
#include <unordered_map>

#include "ir/builder.h"
#include "ir/stmt.h"

namespace qc::ir {

class Cloner {
 public:
  virtual ~Cloner() = default;

  // Clones `src` into a new function (same name, same TypeFactory).
  std::unique_ptr<Function> Run(const Function& src);

 protected:
  // Called once after the output function and builder are set up, before any
  // statement is cloned — passes use it to emit hoisted prologue code (e.g.
  // memory pools) at the top of the function body.
  virtual void Prologue(const Function& /*src*/) {}

  // Pass hook. Called for each source statement, after its arguments have
  // been cloned. Return the replacement statement (emit anything you need
  // through b()), or nullptr to clone the statement unchanged. To *drop* a
  // void statement, emit nothing and return a dummy via Drop().
  virtual Stmt* Transform(const Stmt* /*s*/) { return nullptr; }

  // Optional type translation hook (e.g. record layout changes).
  virtual const Type* MapType(const Type* t) { return t; }

  Builder& b() { return *builder_; }

  // The clone of a source symbol (valid once its statement was visited).
  Stmt* Lookup(const Stmt* s) const;
  // Registers a manual mapping old -> replacement.
  void Map(const Stmt* old_stmt, Stmt* replacement) {
    map_[old_stmt] = replacement;
  }

  // Sentinel meaning "statement intentionally removed".
  Stmt* Drop() { return kDropped; }

  // Default element-wise clone of `s` (copies payload, maps args, clones
  // nested blocks). Exposed so Transform overrides can fall back to it after
  // adjusting state.
  Stmt* CloneDefault(const Stmt* s);

  // Clones the contents of a source block into the current builder block.
  void CloneBlockBody(const Block* src);

  // Clones `src` as a fresh block (params recreated and mapped).
  Block* CloneBlock(const Block* src);

 private:
  void Visit(const Stmt* s);

  static Stmt* const kDropped;
  std::unique_ptr<Builder> builder_;
  std::unique_ptr<Function> out_;
  std::unordered_map<const Stmt*, Stmt*> map_;
};

}  // namespace qc::ir

#endif  // QC_IR_REWRITE_H_
