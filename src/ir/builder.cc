#include "ir/builder.h"

#include <cassert>
#include <cstring>

namespace qc::ir {

Builder::Builder(Function* fn) : fn_(fn) {
  scope_.push_back(fn->body());
  cse_.emplace_back();
}

void Builder::PushBlock(Block* b) {
  scope_.push_back(b);
  cse_.emplace_back();
}

void Builder::PopBlock() {
  assert(scope_.size() > 1 && "cannot pop the function body");
  scope_.pop_back();
  cse_.pop_back();
}

Block* Builder::InBlock(const std::function<void()>& body) {
  Block* b = fn_->NewBlock();
  PushBlock(b);
  body();
  PopBlock();
  return b;
}

Stmt* Builder::Emit(Op op, const Type* type, std::vector<Stmt*> args,
                    int64_t ival, double fval, std::string sval, int aux0,
                    int aux1) {
  if (OpIsCseable(op)) {
    std::vector<int> arg_ids;
    arg_ids.reserve(args.size());
    for (Stmt* a : args) arg_ids.push_back(a->id);
    uint64_t fbits;
    std::memcpy(&fbits, &fval, sizeof(fbits));
    CseKey key{static_cast<int>(op), type, std::move(arg_ids),
               ival,                 fbits, sval,
               aux0,                 aux1};
    for (auto it = cse_.rbegin(); it != cse_.rend(); ++it) {
      auto found = it->find(key);
      if (found != it->end()) return found->second;
    }
    Stmt* s = fn_->NewStmt(op, type);
    s->args = std::move(args);
    s->ival = ival;
    s->fval = fval;
    s->sval = sval;
    s->aux0 = aux0;
    s->aux1 = aux1;
    CurrentBlock()->stmts.push_back(s);
    cse_.back()[key] = s;
    return s;
  }
  Stmt* s = fn_->NewStmt(op, type);
  s->args = std::move(args);
  s->ival = ival;
  s->fval = fval;
  s->sval = std::move(sval);
  s->aux0 = aux0;
  s->aux1 = aux1;
  CurrentBlock()->stmts.push_back(s);
  return s;
}

// --- literals ---------------------------------------------------------------

Stmt* Builder::I32(int32_t v) { return Emit(Op::kConst, types()->I32(), {}, v); }
Stmt* Builder::I64(int64_t v) { return Emit(Op::kConst, types()->I64(), {}, v); }
Stmt* Builder::F64(double v) {
  return Emit(Op::kConst, types()->F64(), {}, 0, v);
}
Stmt* Builder::BoolC(bool v) {
  return Emit(Op::kConst, types()->Bool(), {}, v ? 1 : 0);
}
Stmt* Builder::StrC(const std::string& v) {
  return Emit(Op::kConst, types()->Str(), {}, 0, 0.0, v);
}
Stmt* Builder::DateC(int32_t yyyymmdd) {
  return Emit(Op::kConst, types()->DateT(), {}, yyyymmdd);
}
Stmt* Builder::NullOf(const Type* t) { return Emit(Op::kNull, t); }

// --- arithmetic -------------------------------------------------------------

const Type* Builder::Promote(Stmt** a, Stmt** b) {
  const Type* ta = (*a)->type;
  const Type* tb = (*b)->type;
  assert(ta->IsNumeric() && tb->IsNumeric() && "numeric operands required");
  if (ta == tb) return ta;
  const Type* f64 = types()->F64();
  const Type* i64 = types()->I64();
  if (ta->kind == TypeKind::kF64 || tb->kind == TypeKind::kF64) {
    if (ta->kind != TypeKind::kF64) *a = Cast(*a, f64);
    if (tb->kind != TypeKind::kF64) *b = Cast(*b, f64);
    return f64;
  }
  // Mixed integral widths (date counts as i32): widen to i64.
  if (ta->kind != TypeKind::kI64) *a = Cast(*a, i64);
  if (tb->kind != TypeKind::kI64) *b = Cast(*b, i64);
  return i64;
}

Stmt* Builder::Add(Stmt* a, Stmt* b) {
  const Type* t = Promote(&a, &b);
  return Emit(Op::kAdd, t, {a, b});
}
Stmt* Builder::Sub(Stmt* a, Stmt* b) {
  const Type* t = Promote(&a, &b);
  return Emit(Op::kSub, t, {a, b});
}
Stmt* Builder::Mul(Stmt* a, Stmt* b) {
  const Type* t = Promote(&a, &b);
  return Emit(Op::kMul, t, {a, b});
}
Stmt* Builder::Div(Stmt* a, Stmt* b) {
  const Type* t = Promote(&a, &b);
  return Emit(Op::kDiv, t, {a, b});
}
Stmt* Builder::Mod(Stmt* a, Stmt* b) {
  const Type* t = Promote(&a, &b);
  return Emit(Op::kMod, t, {a, b});
}
Stmt* Builder::Neg(Stmt* a) { return Emit(Op::kNeg, a->type, {a}); }

Stmt* Builder::Cast(Stmt* a, const Type* to) {
  if (a->type == to) return a;
  return Emit(Op::kCast, to, {a});
}

// --- comparisons ------------------------------------------------------------

Stmt* Builder::Cmp(Op op, Stmt* a, Stmt* b) {
  if (a->type != b->type) Promote(&a, &b);
  return Emit(op, types()->Bool(), {a, b});
}
Stmt* Builder::Eq(Stmt* a, Stmt* b) { return Cmp(Op::kEq, a, b); }
Stmt* Builder::Ne(Stmt* a, Stmt* b) { return Cmp(Op::kNe, a, b); }
Stmt* Builder::Lt(Stmt* a, Stmt* b) { return Cmp(Op::kLt, a, b); }
Stmt* Builder::Le(Stmt* a, Stmt* b) { return Cmp(Op::kLe, a, b); }
Stmt* Builder::Gt(Stmt* a, Stmt* b) { return Cmp(Op::kGt, a, b); }
Stmt* Builder::Ge(Stmt* a, Stmt* b) { return Cmp(Op::kGe, a, b); }

// --- booleans ---------------------------------------------------------------

Stmt* Builder::And(Stmt* a, Stmt* b) {
  return Emit(Op::kAnd, types()->Bool(), {a, b});
}
Stmt* Builder::Or(Stmt* a, Stmt* b) {
  return Emit(Op::kOr, types()->Bool(), {a, b});
}
Stmt* Builder::Not(Stmt* a) { return Emit(Op::kNot, types()->Bool(), {a}); }
Stmt* Builder::BitAnd(Stmt* a, Stmt* b) {
  return Emit(Op::kBitAnd, types()->Bool(), {a, b});
}

// --- strings ----------------------------------------------------------------

Stmt* Builder::StrEq(Stmt* a, Stmt* b) {
  return Emit(Op::kStrEq, types()->Bool(), {a, b});
}
Stmt* Builder::StrNe(Stmt* a, Stmt* b) {
  return Emit(Op::kStrNe, types()->Bool(), {a, b});
}
Stmt* Builder::StrLt(Stmt* a, Stmt* b) {
  return Emit(Op::kStrLt, types()->Bool(), {a, b});
}
Stmt* Builder::StrStartsWith(Stmt* a, Stmt* prefix) {
  return Emit(Op::kStrStartsWith, types()->Bool(), {a, prefix});
}
Stmt* Builder::StrEndsWith(Stmt* a, Stmt* suffix) {
  return Emit(Op::kStrEndsWith, types()->Bool(), {a, suffix});
}
Stmt* Builder::StrContains(Stmt* a, Stmt* infix) {
  return Emit(Op::kStrContains, types()->Bool(), {a, infix});
}
Stmt* Builder::StrLike(Stmt* a, const std::string& pattern) {
  return Emit(Op::kStrLike, types()->Bool(), {a}, 0, 0.0, pattern);
}
Stmt* Builder::StrLen(Stmt* a) {
  return Emit(Op::kStrLen, types()->I64(), {a});
}
Stmt* Builder::StrSubstr(Stmt* a, int start0, int len) {
  return Emit(Op::kStrSubstr, types()->Str(), {a}, 0, 0.0, "", start0, len);
}

// --- variables --------------------------------------------------------------

Stmt* Builder::VarNew(Stmt* init) {
  return Emit(Op::kVarNew, init->type, {init});
}
Stmt* Builder::VarRead(Stmt* var) {
  return Emit(Op::kVarRead, var->type, {var});
}
Stmt* Builder::VarAssign(Stmt* var, Stmt* v) {
  return Emit(Op::kVarAssign, types()->Void(), {var, v});
}

// --- control flow -----------------------------------------------------------

Stmt* Builder::If(Stmt* cond, const std::function<void()>& then_body,
                  const std::function<void()>& else_body) {
  Stmt* s = Emit(Op::kIf, types()->Void(), {cond});
  s->blocks.push_back(InBlock(then_body));
  if (else_body) {
    s->blocks.push_back(InBlock(else_body));
  } else {
    s->blocks.push_back(fn_->NewBlock());
  }
  return s;
}

Stmt* Builder::ForRange(Stmt* lo, Stmt* hi,
                        const std::function<void(Stmt* i)>& body) {
  Stmt* s = Emit(Op::kForRange, types()->Void(), {lo, hi});
  Block* b = fn_->NewBlock();
  Stmt* i = fn_->NewParam(types()->I64());
  b->params.push_back(i);
  PushBlock(b);
  body(i);
  PopBlock();
  s->blocks.push_back(b);
  return s;
}

Stmt* Builder::While(const std::function<Stmt*()>& cond,
                     const std::function<void()>& body) {
  Stmt* s = Emit(Op::kWhile, types()->Void());
  Block* cb = fn_->NewBlock();
  PushBlock(cb);
  cb->result = cond();
  PopBlock();
  s->blocks.push_back(cb);
  s->blocks.push_back(InBlock(body));
  return s;
}

// --- records ----------------------------------------------------------------

Stmt* Builder::RecNew(const Type* rec_type, std::vector<Stmt*> field_values) {
  assert(rec_type->kind == TypeKind::kRecord);
  assert(field_values.size() == rec_type->record->fields.size());
  return Emit(Op::kRecNew, rec_type, std::move(field_values));
}

Stmt* Builder::RecGet(Stmt* rec, int field) {
  const RecordSchema* schema = rec->type->kind == TypeKind::kPtr
                                   ? rec->type->elem->record
                                   : rec->type->record;
  return Emit(Op::kRecGet, schema->fields[field].type, {rec}, 0, 0.0, "",
              field);
}

Stmt* Builder::RecGet(Stmt* rec, const std::string& field) {
  const RecordSchema* schema = rec->type->kind == TypeKind::kPtr
                                   ? rec->type->elem->record
                                   : rec->type->record;
  int idx = schema->FieldIndex(field);
  assert(idx >= 0 && "unknown record field");
  return RecGet(rec, idx);
}

Stmt* Builder::RecSet(Stmt* rec, int field, Stmt* v) {
  return Emit(Op::kRecSet, types()->Void(), {rec, v}, 0, 0.0, "", field);
}

Stmt* Builder::RecSet(Stmt* rec, const std::string& field, Stmt* v) {
  const RecordSchema* schema = rec->type->kind == TypeKind::kPtr
                                   ? rec->type->elem->record
                                   : rec->type->record;
  int idx = schema->FieldIndex(field);
  assert(idx >= 0 && "unknown record field");
  return RecSet(rec, idx, v);
}

// --- arrays -----------------------------------------------------------------

Stmt* Builder::ArrNew(const Type* elem, Stmt* len) {
  return Emit(Op::kArrNew, types()->Array(elem), {len});
}
Stmt* Builder::ArrGet(Stmt* arr, Stmt* idx) {
  return Emit(Op::kArrGet, arr->type->elem, {arr, idx});
}
Stmt* Builder::ArrSet(Stmt* arr, Stmt* idx, Stmt* v) {
  return Emit(Op::kArrSet, types()->Void(), {arr, idx, v});
}
Stmt* Builder::ArrLen(Stmt* arr) {
  return Emit(Op::kArrLen, types()->I64(), {arr});
}

Stmt* Builder::ArrSortBy(Stmt* arr, Stmt* len,
                         const std::function<Stmt*(Stmt*, Stmt*)>& less) {
  Stmt* s = Emit(Op::kArrSortBy, types()->Void(), {arr, len});
  Block* b = fn_->NewBlock();
  Stmt* a = fn_->NewParam(arr->type->elem);
  Stmt* bb = fn_->NewParam(arr->type->elem);
  b->params = {a, bb};
  PushBlock(b);
  b->result = less(a, bb);
  PopBlock();
  s->blocks.push_back(b);
  return s;
}

// --- lists ------------------------------------------------------------------

Stmt* Builder::ListNew(const Type* elem) {
  return Emit(Op::kListNew, types()->List(elem));
}
Stmt* Builder::ListAppend(Stmt* list, Stmt* v) {
  return Emit(Op::kListAppend, types()->Void(), {list, v});
}
Stmt* Builder::ListForeach(Stmt* list,
                           const std::function<void(Stmt* e)>& body) {
  Stmt* s = Emit(Op::kListForeach, types()->Void(), {list});
  Block* b = fn_->NewBlock();
  Stmt* e = fn_->NewParam(list->type->elem);
  b->params.push_back(e);
  PushBlock(b);
  body(e);
  PopBlock();
  s->blocks.push_back(b);
  return s;
}
Stmt* Builder::ListSize(Stmt* list) {
  return Emit(Op::kListSize, types()->I64(), {list});
}
Stmt* Builder::ListGet(Stmt* list, Stmt* idx) {
  return Emit(Op::kListGet, list->type->elem, {list, idx});
}

Stmt* Builder::ListSortBy(Stmt* list,
                          const std::function<Stmt*(Stmt*, Stmt*)>& less) {
  Stmt* s = Emit(Op::kListSortBy, types()->Void(), {list});
  Block* b = fn_->NewBlock();
  Stmt* a = fn_->NewParam(list->type->elem);
  Stmt* bb = fn_->NewParam(list->type->elem);
  b->params = {a, bb};
  PushBlock(b);
  b->result = less(a, bb);
  PopBlock();
  s->blocks.push_back(b);
  return s;
}

// --- hash maps --------------------------------------------------------------

Stmt* Builder::MapNew(const Type* key, const Type* value) {
  return Emit(Op::kMapNew, types()->Map(key, value));
}

Stmt* Builder::MapGetOrElseUpdate(Stmt* map, Stmt* key,
                                  const std::function<Stmt*()>& init) {
  Stmt* s =
      Emit(Op::kMapGetOrElseUpdate, map->type->value, {map, key});
  Block* b = fn_->NewBlock();
  PushBlock(b);
  b->result = init();
  PopBlock();
  s->blocks.push_back(b);
  return s;
}

Stmt* Builder::MapGetOrNull(Stmt* map, Stmt* key) {
  return Emit(Op::kMapGetOrNull, map->type->value, {map, key});
}

Stmt* Builder::MapForeach(Stmt* map,
                          const std::function<void(Stmt*, Stmt*)>& body) {
  Stmt* s = Emit(Op::kMapForeach, types()->Void(), {map});
  Block* b = fn_->NewBlock();
  Stmt* k = fn_->NewParam(map->type->key);
  Stmt* v = fn_->NewParam(map->type->value);
  b->params = {k, v};
  PushBlock(b);
  body(k, v);
  PopBlock();
  s->blocks.push_back(b);
  return s;
}

Stmt* Builder::MapSize(Stmt* map) {
  return Emit(Op::kMapSize, types()->I64(), {map});
}

// --- multimaps --------------------------------------------------------------

Stmt* Builder::MMapNew(const Type* key, const Type* value) {
  return Emit(Op::kMMapNew, types()->MMap(key, value));
}
Stmt* Builder::MMapAdd(Stmt* map, Stmt* key, Stmt* v) {
  return Emit(Op::kMMapAdd, types()->Void(), {map, key, v});
}
Stmt* Builder::MMapGetOrNull(Stmt* map, Stmt* key) {
  return Emit(Op::kMMapGetOrNull, types()->List(map->type->value),
              {map, key});
}

Stmt* Builder::IsNull(Stmt* v) {
  return Emit(Op::kIsNull, types()->Bool(), {v});
}

// --- C.Lite memory ----------------------------------------------------------

Stmt* Builder::Malloc(const Type* elem, Stmt* count) {
  return Emit(Op::kMalloc, types()->Array(elem), {count});
}
Stmt* Builder::Free(Stmt* ptr) {
  return Emit(Op::kFree, types()->Void(), {ptr});
}
Stmt* Builder::PoolNew(const Type* elem, Stmt* capacity) {
  return Emit(Op::kPoolNew, types()->Pool(elem), {capacity});
}
Stmt* Builder::PoolAlloc(Stmt* pool) {
  return Emit(Op::kPoolAlloc, pool->type->elem, {pool});
}

// --- catalog access ---------------------------------------------------------

Stmt* Builder::TableRows(int table) {
  return Emit(Op::kTableRows, types()->I64(), {}, 0, 0.0, "", table);
}
Stmt* Builder::ColGet(int table, int column, Stmt* row, const Type* type) {
  return Emit(Op::kColGet, type, {row}, 0, 0.0, "", table, column);
}
Stmt* Builder::ColDict(int table, int column, Stmt* row) {
  return Emit(Op::kColDict, types()->I32(), {row}, 0, 0.0, "", table, column);
}
Stmt* Builder::IdxBucketLen(int table, int column, Stmt* key) {
  return Emit(Op::kIdxBucketLen, types()->I64(), {key}, 0, 0.0, "", table,
              column);
}
Stmt* Builder::IdxBucketRow(int table, int column, Stmt* key, Stmt* j) {
  return Emit(Op::kIdxBucketRow, types()->I64(), {key, j}, 0, 0.0, "", table,
              column);
}
Stmt* Builder::IdxPkRow(int table, int column, Stmt* key) {
  return Emit(Op::kIdxPkRow, types()->I64(), {key}, 0, 0.0, "", table,
              column);
}

// --- output -----------------------------------------------------------------

Stmt* Builder::EmitRow(std::vector<Stmt*> fields) {
  return Emit(Op::kEmit, types()->Void(), std::move(fields));
}

}  // namespace qc::ir
