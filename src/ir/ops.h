// Operation set of the ANF IR. Each DSL level of the stack (Section 4 of the
// paper) is a *subset* of these operations:
//
//   level 3  ScaLite[Map, List]  — everything except Ptr/Pool/Malloc
//   level 2  ScaLite[List]       — level 3 minus HashMap/MultiMap ops
//   level 1  ScaLite             — level 2 minus List ops
//   level 0  C.Lite ("C.Scala")  — level 1 plus Malloc/Pool/Ptr ops
//
// Every op carries [min_level, max_level]: the range of levels where the
// construct may appear. Lowerings eliminate ops whose min_level is above the
// target level (expressibility principle: going down never loses
// expressiveness; constructs only ever *disappear* downwards, except the
// C-only memory ops that appear at the very bottom).
//
// Ops also carry two independent properties used by the generic machinery:
//   effect — statement must be kept even if its value is unused (DCE), and
//            acts as an ordering barrier.
//   cse    — two statements with identical op/args/payload compute the same
//            value and may be shared (given dominance). Memory reads
//            (RecGet, ArrGet, VarRead...) are side-effect-free but NOT
//            CSE-able because interleaved writes may change their value.
#ifndef QC_IR_OPS_H_
#define QC_IR_OPS_H_

#include <cstdint>

namespace qc::ir {

// X(name, mnemonic, effect, cse, min_level, max_level)
#define QC_OP_LIST(X)                                          \
  /* literals */                                               \
  X(kConst, "const", false, true, 0, 3)                        \
  X(kNull, "null", false, true, 0, 3)                          \
  /* arithmetic (i32/i64/f64/date) */                          \
  X(kAdd, "add", false, true, 0, 3)                            \
  X(kSub, "sub", false, true, 0, 3)                            \
  X(kMul, "mul", false, true, 0, 3)                            \
  X(kDiv, "div", false, true, 0, 3)                            \
  X(kMod, "mod", false, true, 0, 3)                            \
  X(kNeg, "neg", false, true, 0, 3)                            \
  X(kCast, "cast", false, true, 0, 3)                          \
  /* comparisons -> bool */                                    \
  X(kEq, "eq", false, true, 0, 3)                              \
  X(kNe, "ne", false, true, 0, 3)                              \
  X(kLt, "lt", false, true, 0, 3)                              \
  X(kLe, "le", false, true, 0, 3)                              \
  X(kGt, "gt", false, true, 0, 3)                              \
  X(kGe, "ge", false, true, 0, 3)                              \
  /* booleans */                                               \
  X(kAnd, "and", false, true, 0, 3)                            \
  X(kOr, "or", false, true, 0, 3)                              \
  X(kNot, "not", false, true, 0, 3)                            \
  X(kBitAnd, "bitand", false, true, 0, 3)                      \
  /* strings */                                                \
  X(kStrEq, "str_eq", false, true, 0, 3)                       \
  X(kStrNe, "str_ne", false, true, 0, 3)                       \
  X(kStrLt, "str_lt", false, true, 0, 3)                       \
  X(kStrStartsWith, "str_starts_with", false, true, 0, 3)      \
  X(kStrEndsWith, "str_ends_with", false, true, 0, 3)          \
  X(kStrContains, "str_contains", false, true, 0, 3)           \
  X(kStrLike, "str_like", false, true, 0, 3)                   \
  X(kStrLen, "str_len", false, true, 0, 3)                     \
  X(kStrSubstr, "str_substr", false, true, 0, 3)               \
  /* mutable variables */                                      \
  X(kVarNew, "var", true, false, 0, 3)                         \
  X(kVarRead, "var_read", false, false, 0, 3)                  \
  X(kVarAssign, "var_assign", true, false, 0, 3)               \
  /* structured control flow */                                \
  X(kIf, "if", true, false, 0, 3)                              \
  X(kForRange, "for", true, false, 0, 3)                       \
  X(kWhile, "while", true, false, 0, 3)                        \
  /* records */                                                \
  X(kRecNew, "rec_new", true, false, 0, 3)                     \
  X(kRecGet, "rec_get", false, false, 0, 3)                    \
  X(kRecSet, "rec_set", true, false, 0, 3)                     \
  /* arrays */                                                 \
  X(kArrNew, "arr_new", true, false, 0, 3)                     \
  X(kArrGet, "arr_get", false, false, 0, 3)                    \
  X(kArrSet, "arr_set", true, false, 0, 3)                     \
  X(kArrLen, "arr_len", false, false, 0, 3)                    \
  X(kArrSortBy, "arr_sort_by", true, false, 0, 3)              \
  /* lists — ScaLite[List] and above */                        \
  X(kListNew, "list_new", true, false, 2, 3)                   \
  X(kListAppend, "list_append", true, false, 2, 3)             \
  X(kListForeach, "list_foreach", true, false, 2, 3)           \
  X(kListSize, "list_size", false, false, 2, 3)                \
  X(kListGet, "list_get", false, false, 2, 3)                  \
  X(kListSortBy, "list_sort_by", true, false, 2, 3)            \
  /* hash maps — ScaLite[Map, List] only */                    \
  X(kMapNew, "map_new", true, false, 3, 3)                     \
  X(kMapGetOrElseUpdate, "map_get_or_else_update", true, false, 3, 3) \
  X(kMapGetOrNull, "map_get_or_null", false, false, 3, 3)      \
  X(kMapForeach, "map_foreach", true, false, 3, 3)             \
  X(kMapSize, "map_size", false, false, 3, 3)                  \
  /* multimaps — ScaLite[Map, List] only */                    \
  X(kMMapNew, "mmap_new", true, false, 3, 3)                   \
  X(kMMapAdd, "mmap_add", true, false, 3, 3)                   \
  X(kMMapGetOrNull, "mmap_get_or_null", false, false, 3, 3)    \
  /* null tests */                                             \
  X(kIsNull, "is_null", false, false, 0, 3)                    \
  /* C.Lite memory management — bottom level only */           \
  X(kMalloc, "malloc", true, false, 0, 0)                      \
  X(kFree, "free", true, false, 0, 0)                          \
  X(kPoolNew, "pool_new", true, false, 0, 0)                   \
  X(kPoolAlloc, "pool_alloc", true, false, 0, 0)               \
  /* pool-allocate a record and initialize its fields (args: pool, fields) */ \
  X(kPoolRecNew, "pool_rec_new", true, false, 0, 0)            \
  /* base table access (catalog-resolved; aux0=table, aux1=column) */ \
  X(kTableRows, "table_rows", false, true, 0, 3)               \
  X(kColGet, "col_get", false, true, 0, 3)                     \
  X(kColDict, "col_dict", false, true, 0, 3)                   \
  /* load-time partitioned indexes (automatic index inference) */ \
  X(kIdxBucketLen, "idx_bucket_len", false, true, 0, 3)        \
  X(kIdxBucketRow, "idx_bucket_row", false, true, 0, 3)        \
  X(kIdxPkRow, "idx_pk_row", false, true, 0, 3)                \
  /* result emission */                                        \
  X(kEmit, "emit", true, false, 0, 3)

enum class Op : uint8_t {
#define QC_OP_ENUM(name, mnem, effect, cse, minl, maxl) name,
  QC_OP_LIST(QC_OP_ENUM)
#undef QC_OP_ENUM
      kNumOps
};

struct OpInfo {
  const char* mnemonic;
  bool effect;
  bool cse;
  int min_level;
  int max_level;
};

const OpInfo& GetOpInfo(Op op);
inline const char* OpName(Op op) { return GetOpInfo(op).mnemonic; }
inline bool OpHasEffect(Op op) { return GetOpInfo(op).effect; }
inline bool OpIsCseable(Op op) { return GetOpInfo(op).cse; }

}  // namespace qc::ir

#endif  // QC_IR_OPS_H_
