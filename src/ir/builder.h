// Scoped ANF builder. All IR construction — front-end lowering and every
// rewriting pass — goes through this class. Emitting a pure statement first
// consults the scope-stack of value-numbering maps, so common subexpressions
// are shared *by construction* (the "CSE for free" property of ANF, §3.3),
// and sharing is only ever with dominating scopes.
#ifndef QC_IR_BUILDER_H_
#define QC_IR_BUILDER_H_

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "ir/stmt.h"

namespace qc::ir {

class Builder {
 public:
  explicit Builder(Function* fn);

  Function* fn() const { return fn_; }
  TypeFactory* types() const { return fn_->types(); }

  // --- scope control -------------------------------------------------------
  void PushBlock(Block* b);
  void PopBlock();
  Block* CurrentBlock() const { return scope_.back(); }
  void SetResult(Stmt* s) { CurrentBlock()->result = s; }

  // Runs `body` inside a fresh block and returns it.
  Block* InBlock(const std::function<void()>& body);

  // --- raw emission --------------------------------------------------------
  // Creates (or CSE-reuses) a statement. Pure, CSE-able ops are value
  // numbered; everything else is appended unconditionally.
  Stmt* Emit(Op op, const Type* type, std::vector<Stmt*> args = {},
             int64_t ival = 0, double fval = 0.0, std::string sval = "",
             int aux0 = -1, int aux1 = -1);

  // --- literals ------------------------------------------------------------
  Stmt* I32(int32_t v);
  Stmt* I64(int64_t v);
  Stmt* F64(double v);
  Stmt* BoolC(bool v);
  Stmt* StrC(const std::string& v);
  Stmt* DateC(int32_t yyyymmdd);
  Stmt* NullOf(const Type* t);

  // --- arithmetic (numeric operands; implicit i->f promotion) --------------
  Stmt* Add(Stmt* a, Stmt* b);
  Stmt* Sub(Stmt* a, Stmt* b);
  Stmt* Mul(Stmt* a, Stmt* b);
  Stmt* Div(Stmt* a, Stmt* b);
  Stmt* Mod(Stmt* a, Stmt* b);
  Stmt* Neg(Stmt* a);
  Stmt* Cast(Stmt* a, const Type* to);

  // --- comparisons ---------------------------------------------------------
  Stmt* Eq(Stmt* a, Stmt* b);
  Stmt* Ne(Stmt* a, Stmt* b);
  Stmt* Lt(Stmt* a, Stmt* b);
  Stmt* Le(Stmt* a, Stmt* b);
  Stmt* Gt(Stmt* a, Stmt* b);
  Stmt* Ge(Stmt* a, Stmt* b);

  // --- booleans ------------------------------------------------------------
  Stmt* And(Stmt* a, Stmt* b);
  Stmt* Or(Stmt* a, Stmt* b);
  Stmt* Not(Stmt* a);
  Stmt* BitAnd(Stmt* a, Stmt* b);

  // --- strings -------------------------------------------------------------
  Stmt* StrEq(Stmt* a, Stmt* b);
  Stmt* StrNe(Stmt* a, Stmt* b);
  Stmt* StrLt(Stmt* a, Stmt* b);
  Stmt* StrStartsWith(Stmt* a, Stmt* prefix);
  Stmt* StrEndsWith(Stmt* a, Stmt* suffix);
  Stmt* StrContains(Stmt* a, Stmt* infix);
  Stmt* StrLike(Stmt* a, const std::string& pattern);
  Stmt* StrLen(Stmt* a);
  // substring(a, start0, len) — start/len are compile-time constants.
  Stmt* StrSubstr(Stmt* a, int start0, int len);

  // --- mutable variables ---------------------------------------------------
  Stmt* VarNew(Stmt* init);
  Stmt* VarRead(Stmt* var);
  Stmt* VarAssign(Stmt* var, Stmt* v);

  // --- control flow --------------------------------------------------------
  Stmt* If(Stmt* cond, const std::function<void()>& then_body,
           const std::function<void()>& else_body = nullptr);
  Stmt* ForRange(Stmt* lo, Stmt* hi,
                 const std::function<void(Stmt* i)>& body);
  Stmt* While(const std::function<Stmt*()>& cond,
              const std::function<void()>& body);

  // --- records -------------------------------------------------------------
  Stmt* RecNew(const Type* rec_type, std::vector<Stmt*> field_values);
  Stmt* RecGet(Stmt* rec, int field);
  Stmt* RecGet(Stmt* rec, const std::string& field);
  Stmt* RecSet(Stmt* rec, int field, Stmt* v);
  Stmt* RecSet(Stmt* rec, const std::string& field, Stmt* v);

  // --- arrays --------------------------------------------------------------
  Stmt* ArrNew(const Type* elem, Stmt* len);
  Stmt* ArrGet(Stmt* arr, Stmt* idx);
  Stmt* ArrSet(Stmt* arr, Stmt* idx, Stmt* v);
  Stmt* ArrLen(Stmt* arr);
  // Sorts arr[0..len) with `less(a, b)`.
  Stmt* ArrSortBy(Stmt* arr, Stmt* len,
                  const std::function<Stmt*(Stmt*, Stmt*)>& less);

  // --- lists ---------------------------------------------------------------
  Stmt* ListNew(const Type* elem);
  Stmt* ListAppend(Stmt* list, Stmt* v);
  Stmt* ListForeach(Stmt* list, const std::function<void(Stmt* e)>& body);
  Stmt* ListSize(Stmt* list);
  Stmt* ListGet(Stmt* list, Stmt* idx);
  Stmt* ListSortBy(Stmt* list,
                   const std::function<Stmt*(Stmt*, Stmt*)>& less);

  // --- hash maps -----------------------------------------------------------
  Stmt* MapNew(const Type* key, const Type* value);
  Stmt* MapGetOrElseUpdate(Stmt* map, Stmt* key,
                           const std::function<Stmt*()>& init);
  Stmt* MapGetOrNull(Stmt* map, Stmt* key);
  Stmt* MapForeach(Stmt* map,
                   const std::function<void(Stmt* k, Stmt* v)>& body);
  Stmt* MapSize(Stmt* map);

  // --- multimaps -----------------------------------------------------------
  Stmt* MMapNew(const Type* key, const Type* value);
  Stmt* MMapAdd(Stmt* map, Stmt* key, Stmt* v);
  Stmt* MMapGetOrNull(Stmt* map, Stmt* key);  // -> List[value] or null

  Stmt* IsNull(Stmt* v);

  // --- C.Lite memory -------------------------------------------------------
  Stmt* Malloc(const Type* elem, Stmt* count);
  Stmt* Free(Stmt* ptr);
  Stmt* PoolNew(const Type* elem, Stmt* capacity);
  Stmt* PoolAlloc(Stmt* pool);

  // --- catalog access ------------------------------------------------------
  Stmt* TableRows(int table);
  Stmt* ColGet(int table, int column, Stmt* row, const Type* type);
  Stmt* ColDict(int table, int column, Stmt* row);
  Stmt* IdxBucketLen(int table, int column, Stmt* key);
  Stmt* IdxBucketRow(int table, int column, Stmt* key, Stmt* j);
  Stmt* IdxPkRow(int table, int column, Stmt* key);

  // --- output --------------------------------------------------------------
  Stmt* EmitRow(std::vector<Stmt*> fields);

 private:
  const Type* Promote(Stmt** a, Stmt** b);
  Stmt* Cmp(Op op, Stmt* a, Stmt* b);

  Function* fn_;
  std::vector<Block*> scope_;

  // Value-numbering key for pure statements.
  using CseKey = std::tuple<int, const Type*, std::vector<int>, int64_t,
                            uint64_t, std::string, int, int>;
  std::vector<std::map<CseKey, Stmt*>> cse_;
};

}  // namespace qc::ir

#endif  // QC_IR_BUILDER_H_
