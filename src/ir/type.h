// Interned types for the ANF IR. Every DSL level in the stack shares this
// type system; levels differ only in which *operations* they may use (see
// ir/ops.h and ir/verify.h).
//
// Scalars occupy one 8-byte runtime slot (common/value.h). Records are
// fixed-shape tuples of slots; collections (Array/List/HashMap/MultiMap) are
// opaque handles whose element/key/value types are tracked here so the
// lowering passes can specialize them.
#ifndef QC_IR_TYPE_H_
#define QC_IR_TYPE_H_

#include <cstdint>
#include <deque>
#include <map>
#include <string>
#include <vector>

namespace qc::ir {

enum class TypeKind : uint8_t {
  kVoid,
  kBool,
  kI32,
  kI64,
  kF64,
  kStr,     // NUL-terminated char*, arena-owned
  kDate,    // int32 yyyymmdd (common/date.h)
  kRecord,  // fixed tuple of fields
  kArray,   // fixed-capacity array of elem
  kList,    // growable sequence of elem            (ScaLite[List] and above)
  kMap,     // HashMap key->value                   (ScaLite[Map,List] only)
  kMMap,    // MultiMap key->List[value]            (ScaLite[Map,List] only)
  kPtr,     // C-level pointer to elem              (C.Lite only)
  kPool,    // C-level memory pool of record elems  (C.Lite only)
};

const char* TypeKindName(TypeKind k);

struct Type;

// A named record field.
struct Field {
  std::string name;
  const Type* type;
};

// A record shape. Interned by name in the TypeFactory; lowering passes may
// derive new shapes (e.g. appending an intrusive `next` pointer field).
struct RecordSchema {
  std::string name;
  std::vector<Field> fields;

  int FieldIndex(const std::string& fname) const;
};

struct Type {
  TypeKind kind = TypeKind::kVoid;
  const Type* elem = nullptr;          // Array/List/Ptr/Pool element
  const Type* key = nullptr;           // Map/MMap key
  const Type* value = nullptr;         // Map/MMap value
  const RecordSchema* record = nullptr;  // Record shape

  bool IsNumeric() const {
    return kind == TypeKind::kI32 || kind == TypeKind::kI64 ||
           kind == TypeKind::kF64 || kind == TypeKind::kDate;
  }
  bool IsIntegral() const {
    return kind == TypeKind::kI32 || kind == TypeKind::kI64 ||
           kind == TypeKind::kDate;
  }
  bool IsPointerLike() const {
    return kind == TypeKind::kRecord || kind == TypeKind::kPtr ||
           kind == TypeKind::kList || kind == TypeKind::kArray;
  }

  std::string ToString() const;
};

// Interns types so pointer equality is type equality.
class TypeFactory {
 public:
  TypeFactory();

  const Type* Void() const { return void_; }
  const Type* Bool() const { return bool_; }
  const Type* I32() const { return i32_; }
  const Type* I64() const { return i64_; }
  const Type* F64() const { return f64_; }
  const Type* Str() const { return str_; }
  const Type* DateT() const { return date_; }

  const Type* Array(const Type* elem);
  const Type* List(const Type* elem);
  const Type* Map(const Type* key, const Type* value);
  const Type* MMap(const Type* key, const Type* value);
  const Type* Ptr(const Type* elem);
  const Type* Pool(const Type* elem);

  // Creates (or returns the previously created) record shape with this exact
  // name. Field lists must match on re-use; mismatches abort.
  const Type* Record(const std::string& name, std::vector<Field> fields);
  // Returns the existing record type with this name, or nullptr.
  const Type* FindRecord(const std::string& name) const;

  // Copy of `base` named `name` with an appended field `field_name` whose
  // type is a pointer to the new record itself (intrusive-list links).
  const Type* ExtendRecordWithSelfPtr(const Type* base,
                                      const std::string& name,
                                      const std::string& field_name);

 private:
  const Type* Make(TypeKind kind, const Type* a = nullptr,
                   const Type* b = nullptr);

  std::deque<Type> storage_;
  std::deque<RecordSchema> schemas_;
  std::map<std::tuple<int, const Type*, const Type*>, const Type*> derived_;
  std::map<std::string, const Type*> records_;
  const Type *void_, *bool_, *i32_, *i64_, *f64_, *str_, *date_;
};

}  // namespace qc::ir

#endif  // QC_IR_TYPE_H_
