#include "ir/rewrite.h"

#include <cassert>

namespace qc::ir {

namespace {
Stmt kDroppedStorage;
}  // namespace

Stmt* const Cloner::kDropped = &kDroppedStorage;

std::unique_ptr<Function> Cloner::Run(const Function& src) {
  out_ = std::make_unique<Function>(src.name(), src.types());
  builder_ = std::make_unique<Builder>(out_.get());
  map_.clear();
  Prologue(src);
  CloneBlockBody(src.body());
  return std::move(out_);
}

Stmt* Cloner::Lookup(const Stmt* s) const {
  auto it = map_.find(s);
  assert(it != map_.end() && "use of a symbol that was not cloned yet");
  assert(it->second != kDropped && "use of a dropped statement");
  return it->second;
}

Stmt* Cloner::CloneDefault(const Stmt* s) {
  std::vector<Stmt*> args;
  args.reserve(s->args.size());
  for (const Stmt* a : s->args) args.push_back(Lookup(a));
  Stmt* ns = b().Emit(s->op, MapType(s->type), std::move(args), s->ival,
                      s->fval, s->sval, s->aux0, s->aux1);
  ns->lib_call = s->lib_call;
  for (const Block* blk : s->blocks) ns->blocks.push_back(CloneBlock(blk));
  return ns;
}

void Cloner::CloneBlockBody(const Block* src) {
  for (const Stmt* s : src->stmts) Visit(s);
  if (src->result != nullptr) {
    b().SetResult(Lookup(src->result));
  }
}

Block* Cloner::CloneBlock(const Block* src) {
  Block* nb = b().fn()->NewBlock();
  for (const Stmt* p : src->params) {
    Stmt* np = b().fn()->NewParam(MapType(p->type));
    nb->params.push_back(np);
    map_[p] = np;
  }
  b().PushBlock(nb);
  CloneBlockBody(src);
  b().PopBlock();
  return nb;
}

void Cloner::Visit(const Stmt* s) {
  Stmt* r = Transform(s);
  if (r == nullptr) r = CloneDefault(s);
  map_[s] = r;
}

}  // namespace qc::ir
