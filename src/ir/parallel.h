// Parallelizability analysis over numbered ANF statements.
//
// A top-level kForRange scan loop can be executed morsel-parallel (HyPer
// style: the row range is split into morsels dispatched to a worker pool)
// when every effect its body has on pre-loop state is one of a small set of
// *reduction* shapes the merge phase knows how to recombine:
//
//   * scalar accumulator folds over a mutable variable
//     (sum / count, and min/max guarded by the shared count variable — the
//     shapes lower/pipeline.cc produces for global aggregation),
//   * grouped aggregation through a generic HashMap (kMapGetOrElseUpdate
//     + per-field accumulate clusters) or through a direct-addressed group
//     array (the hash_spec output: arr_get + is_null-create + accumulates),
//   * hash-join builds: kMMapAdd of an iteration-built record, or the
//     intrusive prepend into a bucket array (rec.next = bucket[k];
//     bucket[k] = rec),
//   * appends of iteration-built values to a pre-loop List, and
//   * result emission (kEmit).
//
// Everything else in the body must be pure, control flow, iteration-local
// state, or a read of pre-loop state that the loop never mutates. A loop
// that does not fit runs sequentially — the analysis is strictly
// conservative and never changes semantics.
//
// Determinism contract: the executors guarantee that a morsel-parallel run
// produces *bitwise identical* results to the sequential engine, for any
// thread count and morsel size. Exact integer folds and first-occurrence
// min/max merge cleanly per morsel; the one non-associative case — f64
// sums — is handled by logging the per-row addends (ParLogChannel) during
// the parallel phase and replaying the additions in global row order during
// the merge, so floating-point results keep the exact sequential rounding.
#ifndef QC_IR_PARALLEL_H_
#define QC_IR_PARALLEL_H_

#include <cstdint>
#include <vector>

#include "ir/stmt.h"

namespace qc::ir {

// Per-statement behavior when the surrounding loop body runs over a morsel.
enum class ParAction : uint8_t {
  kNormal = 0,  // execute as-is (against morsel-private state)
  kSkip,        // folded into a logged f64-sum cluster; do not execute
  kLog,         // append one entry to the designated addend log channel
};

// Merge rule for one field of a group record.
enum class ParFold : uint8_t {
  kKeepFirst,  // group key / init-only field: the first creator's value
  kSumI,       // exact integral sum: main += morsel partial
  kSumF,       // f64 sum: replayed from the addend log, field never stored
  kMin,        // first-occurrence min, guarded by the shared count field
  kMax,
};

// One ordered f64-addend log. During a morsel run, executing `append_at`
// appends [handle?, values...] to the channel instead of storing the sums;
// the merge replays `main[field] += value` in morsel (= row) order.
struct ParLogChannel {
  const Stmt* append_at = nullptr;  // kRecSet / kVarAssign that logs
  // Group identification, logged as the entry's first slot: for group
  // arrays the array index (array_red >= 0 names the reduction — replay is
  // a direct load, no hashing); for hash maps the morsel-local record
  // pointer (replay goes through the merge's pointer remap).
  const Stmt* handle = nullptr;     // null for scalar channels
  int array_red = -1;
  const Stmt* var = nullptr;        // accumulator variable (scalar channels)
  // Distinct addend statements logged per entry (a statement feeding two
  // sum fields is logged once), and per target field the index of its
  // addend in `values`.
  std::vector<const Stmt*> values;
  std::vector<int> fields;     // record fields, in store order (grouped)
  std::vector<int> value_idx;  // parallel to fields: index into values
  size_t Stride() const { return values.size() + (handle != nullptr ? 1 : 0); }
};

enum class ParRedKind : uint8_t {
  kVarSumI,      // integral sum variable (also the shared row count)
  kVarSumF,      // f64 sum variable — merged via a log channel
  kVarMin,       // min variable guarded by count_var
  kVarMax,
  kList,         // append-only list
  kMap,          // generic hash-map grouped aggregation
  kMMap,         // generic multimap join build
  kGroupArray,   // direct-addressed group array (hash_spec aggregation)
  kBucketArray,  // intrusive bucket array (hash_spec join build)
};

// One privatized pre-loop object and how worker-local copies merge back.
struct ParReduction {
  ParRedKind kind;
  const Stmt* target = nullptr;     // pre-loop definition being privatized

  // Scalar accumulators.
  const Stmt* count_var = nullptr;  // shared count read by min/max guards
  int log_channel = -1;             // kVarSumF: its addend channel
  bool is_f64 = false;              // kVarMin/kVarMax comparison width

  // Group records (kMap / kGroupArray).
  std::vector<ParFold> fields;      // one entry per record field
  std::vector<bool> field_is_f64;
  int n_field = -1;                 // count field read by min/max guards
  bool pool_rec = false;            // group records are pool allocations

  // Arrays (kGroupArray / kBucketArray).
  const Stmt* size = nullptr;       // kConst capacity of the array
  const Stmt* group_index = nullptr;  // kGroupArray: the slot-index stmt
  int next_field = -1;              // kBucketArray: intrusive link field
};

// Everything the executors need to run one top-level kForRange in parallel.
struct ParLoop {
  const Stmt* loop = nullptr;
  std::vector<ParReduction> reductions;
  std::vector<ParLogChannel> logs;
  bool has_emit = false;
  // Indexed by statement id (size = Function::num_stmts() at analysis time).
  std::vector<ParAction> actions;
  std::vector<int> action_channel;  // kLog -> channel index, else -1
};

struct ParallelInfo {
  std::vector<ParLoop> loops;

  const ParLoop* Find(const Stmt* loop) const {
    for (const ParLoop& pl : loops) {
      if (pl.loop == loop) return &pl;
    }
    return nullptr;
  }
};

// Analyzes every top-level kForRange of `fn`. Loops absent from the result
// must run sequentially. `fn` must be verified and densely numbered.
ParallelInfo AnalyzeParallelism(const Function& fn);

}  // namespace qc::ir

#endif  // QC_IR_PARALLEL_H_
