#include "ir/parallel.h"

#include <unordered_map>
#include <unordered_set>

#include "ir/numbering.h"

namespace qc::ir {

namespace {

bool IsRecAlloc(Op op) { return op == Op::kRecNew || op == Op::kPoolRecNew; }

bool IsZeroConst(const Stmt* s) {
  if (s == nullptr || s->op != Op::kConst || IsParam(s)) return false;
  if (s->type->kind == TypeKind::kF64) return s->fval == 0.0;
  return s->ival == 0;
}

// Pure value producers that may appear anywhere in a parallel body.
bool IsPureOp(Op op) {
  switch (op) {
    case Op::kConst: case Op::kNull:
    case Op::kAdd: case Op::kSub: case Op::kMul: case Op::kDiv: case Op::kMod:
    case Op::kNeg: case Op::kCast:
    case Op::kEq: case Op::kNe: case Op::kLt: case Op::kLe: case Op::kGt:
    case Op::kGe:
    case Op::kAnd: case Op::kOr: case Op::kNot: case Op::kBitAnd:
    case Op::kStrEq: case Op::kStrNe: case Op::kStrLt:
    case Op::kStrStartsWith: case Op::kStrEndsWith: case Op::kStrContains:
    case Op::kStrLike: case Op::kStrLen: case Op::kStrSubstr:
    case Op::kIsNull:
    case Op::kTableRows: case Op::kColGet: case Op::kColDict:
    case Op::kIdxBucketLen: case Op::kIdxBucketRow: case Op::kIdxPkRow:
    case Op::kRecGet: case Op::kArrGet: case Op::kArrLen:
    case Op::kListSize: case Op::kListGet:
    case Op::kMapGetOrNull: case Op::kMapSize: case Op::kMMapGetOrNull:
    case Op::kVarRead:
      return true;
    default:
      return false;
  }
}

// Analyzes one top-level kForRange. Builds the ParLoop incrementally and
// reports failure (-> sequential execution) on the first unrecognized
// effect.
class LoopAnalyzer {
 public:
  LoopAnalyzer(const Function& fn, const std::vector<int>& uses,
               const Stmt* loop)
      : fn_(fn), uses_(uses), loop_(loop) {}

  bool Run(ParLoop* out) {
    out_.loop = loop_;
    out_.actions.assign(fn_.num_stmts(), ParAction::kNormal);
    out_.action_channel.assign(fn_.num_stmts(), -1);
    MarkInLoop(loop_->blocks[0]);
    if (!Walk(loop_->blocks[0])) return false;
    if (!BuildChannels()) return false;
    if (!ValidateGuards()) return false;
    if (!ValidateInits()) return false;
    if (!ValidateReads(loop_->blocks[0])) return false;
    if (out_.reductions.empty() && !out_.has_emit) return false;
    *out = std::move(out_);
    return true;
  }

 private:
  struct F64Set {
    const Stmt* set;
    const Stmt* get;
    const Stmt* add;
    const Stmt* addend;
    const Stmt* handle;  // null for scalar vars
    const Stmt* var;     // null for group records
    int field = -1;
  };

  bool InLoop(const Stmt* s) const {
    return s->id >= 0 && s->id < static_cast<int>(in_loop_.size()) &&
           in_loop_[s->id] != 0;
  }
  bool Claimed(const Stmt* s) const { return claimed_.count(s) != 0; }
  void Claim(const Stmt* s) { claimed_.insert(s); }

  void MarkInLoop(const Block* b) {
    if (static_cast<int>(in_loop_.size()) < fn_.num_stmts()) {
      in_loop_.resize(fn_.num_stmts(), 0);
    }
    for (const Stmt* p : b->params) in_loop_[p->id] = 1;
    for (const Stmt* s : b->stmts) {
      in_loop_[s->id] = 1;
      for (const Block* nb : s->blocks) MarkInLoop(nb);
    }
  }

  int FindReduction(const Stmt* target) const {
    for (size_t i = 0; i < out_.reductions.size(); ++i) {
      if (out_.reductions[i].target == target) return static_cast<int>(i);
    }
    return -1;
  }

  ParReduction* Register(ParRedKind kind, const Stmt* target) {
    out_.reductions.push_back(ParReduction{});
    ParReduction& r = out_.reductions.back();
    r.kind = kind;
    r.target = target;
    return &r;
  }

  // --- recursive walk -------------------------------------------------------

  bool Walk(const Block* b) {
    for (const Stmt* s : b->stmts) {
      parent_[s] = b;
      if (!Visit(s)) return false;
      for (const Block* nb : s->blocks) {
        // Blocks of a matched group-create kIf were fully consumed by the
        // matcher; walking them again would reject the claimed kArrSet.
        if (consumed_blocks_.count(nb) != 0) continue;
        if (!Walk(nb)) return false;
      }
    }
    return true;
  }

  bool Visit(const Stmt* s) {
    switch (s->op) {
      case Op::kEmit:
        out_.has_emit = true;
        return true;

      case Op::kVarNew:
      case Op::kFree:
      case Op::kPoolNew:
      case Op::kPoolAlloc:
      case Op::kMalloc:
      case Op::kArrNew:
      case Op::kListNew:
      case Op::kMapNew:
      case Op::kMMapNew:
        return true;  // iteration-local allocation / no-op

      case Op::kRecNew:
      case Op::kPoolRecNew:
        return true;  // iteration-local record construction

      case Op::kVarAssign: {
        const Stmt* var = s->args[0];
        if (InLoop(var)) return true;  // private per-iteration variable
        if (Claimed(s)) return true;   // min/max cluster (matched at the kIf)
        return MatchVarSum(s, var);
      }

      case Op::kIf:
        // A min/max guard or a group-create; both are recognized here so
        // the contained store is claimed before the block walk reaches it.
        if (s->args[0]->op == Op::kOr) return MatchMinMax(s) || true;
        if (s->args[0]->op == Op::kIsNull) return MatchGroupCreate(s) || true;
        return true;

      case Op::kRecSet: {
        const Stmt* r = s->args[0];
        if (Claimed(s)) return true;
        auto h = handles_.find(r);
        if (h != handles_.end()) return MatchFieldSum(s, r, h->second);
        // Construction of an iteration-local record (join tuples, keys,
        // intrusive links). Group init records are excluded: merging
        // adopts them wholesale, so extra stores would go unreconciled.
        return InLoop(r) && IsRecAlloc(r->op) && init_recs_.count(r) == 0;
      }

      case Op::kArrSet: {
        const Stmt* arr = s->args[0];
        if (InLoop(arr)) return true;
        if (Claimed(s)) return true;  // group-create store
        return MatchBucketPrepend(s, arr);
      }

      case Op::kListAppend: {
        const Stmt* lst = s->args[0];
        if (InLoop(lst)) return true;
        int idx = FindReduction(lst);
        if (idx < 0) {
          Register(ParRedKind::kList, lst);
        } else if (out_.reductions[idx].kind != ParRedKind::kList) {
          return false;
        }
        Claim(s);
        return true;
      }

      case Op::kMMapAdd: {
        const Stmt* mm = s->args[0];
        if (InLoop(mm)) return true;
        int idx = FindReduction(mm);
        if (idx < 0) {
          Register(ParRedKind::kMMap, mm);
        } else if (out_.reductions[idx].kind != ParRedKind::kMMap) {
          return false;
        }
        Claim(s);
        return true;
      }

      case Op::kMapGetOrElseUpdate:
        return MatchMapGroup(s);

      case Op::kArrSortBy:
      case Op::kListSortBy:
        return InLoop(s->args[0]);  // sorting shared state: not mergeable

      case Op::kForRange:
      case Op::kWhile:
      case Op::kListForeach:
      case Op::kMapForeach:
        // Safe iff the iterated container passes read validation and the
        // nested statements pass this walk (handled by the caller).
        return true;

      default:
        return IsPureOp(s->op);
    }
  }

  // --- cluster matchers -----------------------------------------------------

  // var = var + w  (integral: merged as partial sums; f64: addends logged).
  bool MatchVarSum(const Stmt* assign, const Stmt* var) {
    const Stmt* val = assign->args[1];
    if (val->op != Op::kAdd || !InLoop(val)) return false;
    const Stmt* read = nullptr;
    const Stmt* addend = nullptr;
    for (int side = 0; side < 2; ++side) {
      const Stmt* a = val->args[side];
      const Stmt* b = val->args[1 - side];
      if (a->op == Op::kVarRead && a->args[0] == var && InLoop(a) && b != a) {
        read = a;
        addend = b;
        break;
      }
    }
    if (read == nullptr) return false;
    bool is_f = var->type->kind == TypeKind::kF64;
    int idx = FindReduction(var);
    if (is_f) {
      // The read and add are skipped during morsel runs, so they must have
      // no other consumers, and only one fold site may exist per variable
      // (two logs would lose the in-row interleaving of the additions).
      if (idx >= 0) return false;
      if (uses_[read->id] != 1 || uses_[val->id] != 1) return false;
      Register(ParRedKind::kVarSumF, var);
      f64_sets_.push_back(F64Set{assign, read, val, addend, nullptr, var, -1});
    } else {
      if (idx < 0) {
        Register(ParRedKind::kVarSumI, var);
      } else if (out_.reductions[idx].kind != ParRedKind::kVarSumI) {
        return false;
      }
    }
    Claim(read);
    Claim(val);
    Claim(assign);
    return true;
  }

  // if (n == 0 || w < cur) { acc = w }  — first-occurrence min (max: >).
  // `n` is the shared count (variable or record field), `cur` the current
  // accumulator value. Matched at the kIf; returns false only to signal
  // "not this pattern" (the caller treats the kIf as plain control flow).
  bool MatchMinMax(const Stmt* ifs) {
    if (ifs->blocks.empty() || ifs->blocks[0]->stmts.size() != 1) return false;
    if (ifs->blocks.size() > 1 && !ifs->blocks[1]->stmts.empty()) return false;
    const Stmt* store = ifs->blocks[0]->stmts[0];
    const Stmt* cond = ifs->args[0];
    if (cond->op != Op::kOr || !InLoop(cond) || uses_[cond->id] != 1) {
      return false;
    }
    // Guard statements run unmodified on private state, so sharing (CSE
    // reuses Eq(n0, 0) across several min/max guards) is fine — only the
    // shape matters, and ValidateReads still polices every read of a
    // reduction variable or group handle.
    const Stmt* eq = nullptr;
    const Stmt* cmp = nullptr;
    for (int side = 0; side < 2; ++side) {
      const Stmt* a = cond->args[side];
      if (a->op == Op::kEq) eq = a;
      if (a->op == Op::kLt || a->op == Op::kGt) cmp = a;
    }
    if (eq == nullptr || cmp == nullptr || eq == cmp) return false;
    if (!InLoop(eq) || !InLoop(cmp)) return false;
    const Stmt* n_read = nullptr;
    for (int side = 0; side < 2; ++side) {
      if (IsZeroConst(eq->args[1 - side])) n_read = eq->args[side];
    }
    if (n_read == nullptr || !InLoop(n_read)) return false;

    if (store->op == Op::kVarAssign) {
      const Stmt* var = store->args[0];
      const Stmt* w = store->args[1];
      if (InLoop(var)) return false;
      // cmp must be w <op> cur with cur = VarRead(var).
      const Stmt* cur = OtherCmpSide(cmp, w);
      if (cur == nullptr || cur->op != Op::kVarRead || cur->args[0] != var ||
          !InLoop(cur)) {
        return false;
      }
      if (n_read->op != Op::kVarRead || InLoop(n_read->args[0])) return false;
      bool is_min = CandidateIsLess(cmp, w);
      if (FindReduction(var) >= 0) return false;
      ParReduction* r =
          Register(is_min ? ParRedKind::kVarMin : ParRedKind::kVarMax, var);
      r->count_var = n_read->args[0];
      r->is_f64 = var->type->kind == TypeKind::kF64;
      minmax_guard_blocks_.emplace_back(out_.reductions.size() - 1,
                                        parent_.at(ifs));
      Claim(cond); Claim(eq); Claim(cmp); Claim(cur); Claim(n_read);
      Claim(store);
      return true;
    }

    if (store->op == Op::kRecSet) {
      const Stmt* h = store->args[0];
      const Stmt* w = store->args[1];
      int f = store->aux0;
      auto it = handles_.find(h);
      if (it == handles_.end()) return false;
      const Stmt* cur = OtherCmpSide(cmp, w);
      if (cur == nullptr || cur->op != Op::kRecGet || cur->args[0] != h ||
          cur->aux0 != f || !InLoop(cur)) {
        return false;
      }
      if (n_read->op != Op::kRecGet || n_read->args[0] != h) return false;
      ParReduction& red = out_.reductions[it->second];
      if (f < 0 || f >= static_cast<int>(red.fields.size())) return false;
      if (red.fields[f] != ParFold::kKeepFirst) return false;
      if (red.n_field >= 0 && red.n_field != n_read->aux0) return false;
      red.n_field = n_read->aux0;
      bool is_min = CandidateIsLess(cmp, w);
      red.fields[f] = is_min ? ParFold::kMin : ParFold::kMax;
      // The guard must sit right in the handle's block so min/max updates
      // and the count increment stay coupled per contributing row (the
      // increment itself is validated in ValidateGuards).
      if (parent_.at(ifs) != parent_.at(h)) return false;
      rec_minmax_handles_.push_back(h);
      Claim(cond); Claim(eq); Claim(cmp); Claim(cur); Claim(n_read);
      Claim(store); Claim(h);
      return true;
    }
    return false;
  }

  // For cmp(a, b) with one side == w, returns the other side (or null).
  static const Stmt* OtherCmpSide(const Stmt* cmp, const Stmt* w) {
    if (cmp->args[0] == w && cmp->args[1] != w) return cmp->args[1];
    if (cmp->args[1] == w && cmp->args[0] != w) return cmp->args[0];
    return nullptr;
  }
  // True when the comparison means "candidate value w is less than cur".
  static bool CandidateIsLess(const Stmt* cmp, const Stmt* w) {
    bool w_is_lhs = cmp->args[0] == w;
    return (cmp->op == Op::kLt) == w_is_lhs;
  }

  // rec[f] = rec[f] + w on a group-record handle.
  bool MatchFieldSum(const Stmt* set, const Stmt* h, int red_idx) {
    ParReduction& red = out_.reductions[red_idx];
    int f = set->aux0;
    if (f < 0 || f >= static_cast<int>(red.fields.size())) return false;
    if (red.fields[f] != ParFold::kKeepFirst) return false;
    const Stmt* val = set->args[1];
    if (val->op != Op::kAdd || !InLoop(val)) return false;
    const Stmt* get = nullptr;
    const Stmt* addend = nullptr;
    for (int side = 0; side < 2; ++side) {
      const Stmt* a = val->args[side];
      const Stmt* b = val->args[1 - side];
      if (a->op == Op::kRecGet && a->args[0] == h && a->aux0 == f &&
          InLoop(a) && b != a) {
        get = a;
        addend = b;
        break;
      }
    }
    if (get == nullptr) return false;
    bool is_f = red.field_is_f64[f];
    if (is_f) {
      if (uses_[get->id] != 1 || uses_[val->id] != 1) return false;
      f64_sets_.push_back(F64Set{set, get, val, addend, h, nullptr, f});
      red.fields[f] = ParFold::kSumF;
    } else {
      red.fields[f] = ParFold::kSumI;
      field_sum_sets_.emplace_back(h, f, parent_.at(set));
    }
    Claim(get);
    Claim(val);
    Claim(set);
    Claim(h);
    return true;
  }

  // if (is_null(arr[k])) { rec = alloc(...); arr[k] = rec } — the
  // direct-addressed group array's create path (hash_spec output).
  bool MatchGroupCreate(const Stmt* ifs) {
    if (ifs->blocks.empty()) return false;
    if (ifs->blocks.size() > 1 && !ifs->blocks[1]->stmts.empty()) return false;
    const Stmt* isnull = ifs->args[0];
    const Stmt* g0 = isnull->args[0];
    if (g0->op != Op::kArrGet || !InLoop(g0)) return false;
    const Stmt* arr = g0->args[0];
    const Stmt* idx = g0->args[1];
    if (InLoop(arr)) return false;
    // Then-block: constants, one record allocation, one store to arr[idx].
    const Stmt* rec = nullptr;
    const Stmt* store = nullptr;
    for (const Stmt* t : ifs->blocks[0]->stmts) {
      if (t->op == Op::kConst || t->op == Op::kNull) continue;
      if (IsRecAlloc(t->op) && rec == nullptr) {
        rec = t;
        continue;
      }
      if (t->op == Op::kArrSet && store == nullptr) {
        store = t;
        continue;
      }
      return false;
    }
    if (rec == nullptr || store == nullptr) return false;
    if (store->args[0] != arr || store->args[1] != idx ||
        store->args[2] != rec) {
      return false;
    }
    const Type* elem = arr->type->elem;
    if (elem == nullptr || elem->record == nullptr) return false;
    const Stmt* size = arr->op == Op::kArrNew ? arr->args[0] : nullptr;
    if (size == nullptr || size->op != Op::kConst || IsParam(size)) {
      return false;
    }
    if (FindReduction(arr) >= 0) return false;
    ParReduction* r = Register(ParRedKind::kGroupArray, arr);
    r->size = size;
    r->group_index = idx;
    r->pool_rec = rec->op == Op::kPoolRecNew;
    r->fields.assign(elem->record->fields.size(), ParFold::kKeepFirst);
    r->field_is_f64.resize(elem->record->fields.size());
    for (size_t i = 0; i < elem->record->fields.size(); ++i) {
      r->field_is_f64[i] =
          elem->record->fields[i].type->kind == TypeKind::kF64;
    }
    group_inits_[out_.reductions.size() - 1] = rec;
    init_recs_.insert(rec);
    // Every arr_get(arr, idx) in the iteration is a handle to the group
    // record; field clusters attach through MatchFieldSum / MatchMinMax.
    RegisterArrayHandles(loop_->blocks[0], arr, idx,
                         static_cast<int>(out_.reductions.size() - 1));
    Claim(isnull);
    Claim(g0);
    Claim(rec);
    Claim(store);
    consumed_blocks_.insert(ifs->blocks[0]);
    if (ifs->blocks.size() > 1) consumed_blocks_.insert(ifs->blocks[1]);
    // The then-block statements still need parents for later checks.
    for (const Stmt* t : ifs->blocks[0]->stmts) parent_[t] = ifs->blocks[0];
    return true;
  }

  void RegisterArrayHandles(const Block* b, const Stmt* arr, const Stmt* idx,
                            int red_idx) {
    for (const Stmt* s : b->stmts) {
      if (s->op == Op::kArrGet && s->args[0] == arr && s->args[1] == idx) {
        handles_[s] = red_idx;
      }
      for (const Block* nb : s->blocks) {
        RegisterArrayHandles(nb, arr, idx, red_idx);
      }
    }
  }

  // rec.next = bucket[k]; bucket[k] = rec — the intrusive hash-join build.
  bool MatchBucketPrepend(const Stmt* store, const Stmt* arr) {
    const Stmt* idx = store->args[1];
    const Stmt* rec = store->args[2];
    if (!InLoop(rec) || !IsRecAlloc(rec->op)) return false;
    // Find the link store in the same block: rec_set(rec, arr_get(arr, idx)).
    const Block* b = parent_.at(store);
    const Stmt* link = nullptr;
    const Stmt* old = nullptr;
    for (const Stmt* t : b->stmts) {
      if (t == store) break;
      if (t->op == Op::kRecSet && t->args[0] == rec &&
          t->args[1]->op == Op::kArrGet && t->args[1]->args[0] == arr &&
          t->args[1]->args[1] == idx) {
        link = t;
        old = t->args[1];
      }
    }
    if (link == nullptr) return false;
    const Stmt* size = arr->op == Op::kArrNew ? arr->args[0] : nullptr;
    if (size == nullptr || size->op != Op::kConst || IsParam(size)) {
      return false;
    }
    if (FindReduction(arr) >= 0) return false;
    ParReduction* r = Register(ParRedKind::kBucketArray, arr);
    r->size = size;
    r->next_field = link->aux0;
    Claim(store);
    Claim(link);
    Claim(old);
    return true;
  }

  // Grouped aggregation through the generic hash map.
  bool MatchMapGroup(const Stmt* goeu) {
    const Stmt* map = goeu->args[0];
    if (InLoop(map)) return true;  // iteration-local map: plain execution
    const Type* vt = map->type->value;
    if (vt == nullptr || vt->record == nullptr) return false;
    if (goeu->blocks.empty()) return false;
    const Block* init = goeu->blocks[0];
    const Stmt* rec = init->result;
    if (rec == nullptr || !IsRecAlloc(rec->op)) return false;
    for (const Stmt* t : init->stmts) {
      parent_[t] = init;
      if (t == rec) continue;
      if (t->op == Op::kConst || t->op == Op::kNull || IsPureOp(t->op)) {
        continue;
      }
      return false;
    }
    size_t arity = vt->record->fields.size();
    size_t nargs = rec->op == Op::kPoolRecNew ? rec->args.size() - 1
                                              : rec->args.size();
    if (nargs != arity) return false;
    if (FindReduction(map) >= 0) return false;
    ParReduction* r = Register(ParRedKind::kMap, map);
    r->pool_rec = rec->op == Op::kPoolRecNew;
    r->fields.assign(arity, ParFold::kKeepFirst);
    r->field_is_f64.resize(arity);
    for (size_t i = 0; i < arity; ++i) {
      r->field_is_f64[i] = vt->record->fields[i].type->kind == TypeKind::kF64;
    }
    group_inits_[out_.reductions.size() - 1] = rec;
    init_recs_.insert(rec);
    handles_[goeu] = static_cast<int>(out_.reductions.size() - 1);
    Claim(goeu);
    Claim(rec);
    return true;
  }

  // --- post passes ----------------------------------------------------------

  // Groups the collected f64-sum stores into per-handle log channels, picks
  // the last store of each channel as the appender, and skips the rest.
  bool BuildChannels() {
    // Scalar channels: one per kVarSumF cluster.
    for (const F64Set& fs : f64_sets_) {
      if (fs.var == nullptr) continue;
      ParLogChannel ch;
      ch.append_at = fs.set;
      ch.var = fs.var;
      ch.values.push_back(fs.addend);
      SetAction(fs.get, ParAction::kSkip);
      SetAction(fs.add, ParAction::kSkip);
      SetAction(fs.set, ParAction::kLog,
                static_cast<int>(out_.logs.size()));
      int red = FindReduction(fs.var);
      out_.reductions[red].log_channel = static_cast<int>(out_.logs.size());
      out_.logs.push_back(std::move(ch));
    }
    // Grouped channels: all f64 sums of one handle share one channel, in
    // store order, so the merge replays the exact sequential additions.
    std::vector<const Stmt*> handles;
    for (const F64Set& fs : f64_sets_) {
      if (fs.handle == nullptr) continue;
      bool seen = false;
      for (const Stmt* h : handles) seen |= (h == fs.handle);
      if (!seen) handles.push_back(fs.handle);
    }
    for (const Stmt* h : handles) {
      ParLogChannel ch;
      ch.handle = h;
      const Stmt* last = nullptr;
      const Block* block = nullptr;
      int red_idx = handles_.at(h);
      for (const F64Set& fs : f64_sets_) {
        if (fs.handle != h) continue;
        int vi = -1;
        for (size_t k = 0; k < ch.values.size(); ++k) {
          if (ch.values[k] == fs.addend) vi = static_cast<int>(k);
        }
        if (vi < 0) {
          vi = static_cast<int>(ch.values.size());
          ch.values.push_back(fs.addend);
        }
        ch.value_idx.push_back(vi);
        ch.fields.push_back(fs.field);
        // All stores must be unconditional in the handle's own block — the
        // log entry for a row is appended exactly once, at the last store.
        if (block == nullptr) block = parent_.at(fs.set);
        if (parent_.at(fs.set) != block || block != parent_.at(h)) {
          return false;
        }
        SetAction(fs.get, ParAction::kSkip);
        SetAction(fs.add, ParAction::kSkip);
        SetAction(fs.set, ParAction::kSkip);
        last = fs.set;
      }
      // Two handles of one reduction would interleave their additions
      // within a row; a single channel per reduction keeps replay exact.
      for (const Stmt* h2 : handles) {
        if (h2 != h && handles_.at(h2) == red_idx) return false;
      }
      // Group arrays log the slot index instead of the record pointer:
      // replay becomes a direct array load instead of a remap hash lookup.
      const ParReduction& red = out_.reductions[red_idx];
      if (red.kind == ParRedKind::kGroupArray) {
        ch.handle = red.group_index;
        ch.array_red = red_idx;
      }
      ch.append_at = last;
      SetAction(last, ParAction::kLog, static_cast<int>(out_.logs.size()));
      out_.logs.push_back(std::move(ch));
    }
    return true;
  }

  void SetAction(const Stmt* s, ParAction a, int channel = -1) {
    out_.actions[s->id] = a;
    out_.action_channel[s->id] = channel;
  }

  bool ValidateGuards() {
    for (size_t i = 0; i < out_.reductions.size(); ++i) {
      const ParReduction& r = out_.reductions[i];
      if (r.kind == ParRedKind::kVarMin || r.kind == ParRedKind::kVarMax) {
        int n = FindReduction(r.count_var);
        if (n < 0 || out_.reductions[n].kind != ParRedKind::kVarSumI) {
          return false;
        }
      }
      bool has_minmax = false;
      for (ParFold f : r.fields) {
        has_minmax |= (f == ParFold::kMin || f == ParFold::kMax);
      }
      if (has_minmax) {
        if (r.n_field < 0 || r.fields[r.n_field] != ParFold::kSumI) {
          return false;
        }
      }
    }
    // Each record min/max guard needs the count increment unconditionally
    // in its own handle's block — otherwise a morsel record could carry
    // min/max contributions its count does not witness, and the merge's
    // count-gated fold would drop them.
    for (const Stmt* h : rec_minmax_handles_) {
      const ParReduction& red = out_.reductions[handles_.at(h)];
      bool ok = false;
      for (const auto& [h2, f, block] : field_sum_sets_) {
        ok |= h2 == h && f == red.n_field && block == parent_.at(h);
      }
      if (!ok) return false;
    }
    // The shared count of a var min/max must be maintained alongside it:
    // same block as the guard, so n counts exactly the contributing rows.
    for (const auto& [red_idx, block] : minmax_guard_blocks_) {
      const Stmt* cv = out_.reductions[red_idx].count_var;
      bool ok = false;
      for (const Stmt* t : block->stmts) {
        if (t->op == Op::kVarAssign && t->args[0] == cv && Claimed(t)) {
          ok = true;
        }
      }
      if (!ok) return false;
    }
    return true;
  }

  // Integral sum fields merge as `main += morsel partial`, which is only
  // the sequential fold if every partial starts from zero.
  bool ValidateInits() {
    for (const auto& [red_idx, rec] : group_inits_) {
      const ParReduction& r = out_.reductions[red_idx];
      size_t base = rec->op == Op::kPoolRecNew ? 1 : 0;
      for (size_t f = 0; f < r.fields.size(); ++f) {
        if (r.fields[f] != ParFold::kSumI) continue;
        if (!IsZeroConst(rec->args[base + f])) return false;
      }
    }
    return true;
  }

  // No statement outside the recognized clusters may touch a privatized
  // target, a group-record handle, an init record, or a skipped statement.
  bool ValidateReads(const Block* b) {
    for (const Stmt* s : b->stmts) {
      bool s_claimed = Claimed(s);
      ParAction sa = out_.actions[s->id];
      for (const Stmt* a : s->args) {
        if (!s_claimed && FindReduction(a) >= 0) return false;
        if (!s_claimed && (handles_.count(a) != 0 ||
                           init_recs_.count(a) != 0)) {
          return false;
        }
        if (sa == ParAction::kNormal && !s_claimed && InLoop(a) &&
            out_.actions[a->id] == ParAction::kSkip) {
          return false;
        }
      }
      for (const Block* nb : s->blocks) {
        if (!ValidateReads(nb)) return false;
      }
    }
    return true;
  }

  const Function& fn_;
  const std::vector<int>& uses_;
  const Stmt* loop_;
  ParLoop out_;

  std::vector<char> in_loop_;
  std::unordered_set<const Stmt*> claimed_;
  std::unordered_set<const Stmt*> init_recs_;
  std::unordered_set<const Block*> consumed_blocks_;
  std::unordered_map<const Stmt*, const Block*> parent_;
  std::unordered_map<const Stmt*, int> handles_;   // handle stmt -> reduction
  std::unordered_map<int, const Stmt*> group_inits_;  // reduction -> rec
  std::vector<std::pair<int, const Block*>> minmax_guard_blocks_;
  std::vector<const Stmt*> rec_minmax_handles_;
  // (handle, field, block) of every integral-sum store on a group record.
  std::vector<std::tuple<const Stmt*, int, const Block*>> field_sum_sets_;
  std::vector<F64Set> f64_sets_;
};

}  // namespace

ParallelInfo AnalyzeParallelism(const Function& fn) {
  ParallelInfo info;
  std::vector<int> uses = ComputeUseCounts(fn);
  for (const Stmt* s : fn.body()->stmts) {
    if (s->op != Op::kForRange) continue;
    LoopAnalyzer analyzer(fn, uses, s);
    ParLoop pl;
    if (analyzer.Run(&pl)) info.loops.push_back(std::move(pl));
  }
  return info;
}

}  // namespace qc::ir
