// Id-space utilities for the ANF IR.
//
// Statement ids double as register indices in the executors (the tree-walk
// interpreter and the bytecode VM both hold one slot per id), so two
// properties matter downstream:
//   * use counts — a statement used exactly once by the instruction that
//     immediately follows it is a candidate for instruction fusion in the
//     bytecode compiler; and
//   * density — passes that rewrite functions leave holes in the id space,
//     and every hole is a dead register the executors still allocate and
//     zero. RenumberDense compacts ids to [0, num_stmts) in program order.
#ifndef QC_IR_NUMBERING_H_
#define QC_IR_NUMBERING_H_

#include <vector>

#include "ir/stmt.h"

namespace qc::ir {

// Number of times each statement id is referenced as an argument or as a
// block result. Indexed by id; size fn.num_stmts().
std::vector<int> ComputeUseCounts(const Function& fn);

// Reassigns ids of all statements reachable from fn->body() to a dense
// [0, N) range in program order (block params first, then statements) and
// updates fn's id counter so num_stmts() == N. Unreachable (dead) statements
// keep stale ids and must not be executed afterwards.
void RenumberDense(Function* fn);

}  // namespace qc::ir

#endif  // QC_IR_NUMBERING_H_
