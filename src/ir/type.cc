#include "ir/type.h"

#include <cassert>
#include <cstdlib>

namespace qc::ir {

const char* TypeKindName(TypeKind k) {
  switch (k) {
    case TypeKind::kVoid: return "void";
    case TypeKind::kBool: return "bool";
    case TypeKind::kI32: return "i32";
    case TypeKind::kI64: return "i64";
    case TypeKind::kF64: return "f64";
    case TypeKind::kStr: return "str";
    case TypeKind::kDate: return "date";
    case TypeKind::kRecord: return "record";
    case TypeKind::kArray: return "array";
    case TypeKind::kList: return "list";
    case TypeKind::kMap: return "map";
    case TypeKind::kMMap: return "mmap";
    case TypeKind::kPtr: return "ptr";
    case TypeKind::kPool: return "pool";
  }
  return "?";
}

int RecordSchema::FieldIndex(const std::string& fname) const {
  for (size_t i = 0; i < fields.size(); ++i) {
    if (fields[i].name == fname) return static_cast<int>(i);
  }
  return -1;
}

std::string Type::ToString() const {
  switch (kind) {
    case TypeKind::kRecord:
      return record->name;
    case TypeKind::kArray:
      return "Array[" + elem->ToString() + "]";
    case TypeKind::kList:
      return "List[" + elem->ToString() + "]";
    case TypeKind::kMap:
      return "HashMap[" + key->ToString() + "," + value->ToString() + "]";
    case TypeKind::kMMap:
      return "MultiMap[" + key->ToString() + "," + value->ToString() + "]";
    case TypeKind::kPtr:
      return "Ptr[" + elem->ToString() + "]";
    case TypeKind::kPool:
      return "Pool[" + elem->ToString() + "]";
    default:
      return TypeKindName(kind);
  }
}

TypeFactory::TypeFactory() {
  void_ = Make(TypeKind::kVoid);
  bool_ = Make(TypeKind::kBool);
  i32_ = Make(TypeKind::kI32);
  i64_ = Make(TypeKind::kI64);
  f64_ = Make(TypeKind::kF64);
  str_ = Make(TypeKind::kStr);
  date_ = Make(TypeKind::kDate);
}

const Type* TypeFactory::Make(TypeKind kind, const Type* a, const Type* b) {
  storage_.push_back(Type{});
  Type& t = storage_.back();
  t.kind = kind;
  switch (kind) {
    case TypeKind::kArray:
    case TypeKind::kList:
    case TypeKind::kPtr:
    case TypeKind::kPool:
      t.elem = a;
      break;
    case TypeKind::kMap:
    case TypeKind::kMMap:
      t.key = a;
      t.value = b;
      break;
    default:
      break;
  }
  return &t;
}

const Type* TypeFactory::Array(const Type* elem) {
  auto key = std::make_tuple(static_cast<int>(TypeKind::kArray), elem,
                             static_cast<const Type*>(nullptr));
  auto it = derived_.find(key);
  if (it != derived_.end()) return it->second;
  return derived_[key] = Make(TypeKind::kArray, elem);
}

const Type* TypeFactory::List(const Type* elem) {
  auto key = std::make_tuple(static_cast<int>(TypeKind::kList), elem,
                             static_cast<const Type*>(nullptr));
  auto it = derived_.find(key);
  if (it != derived_.end()) return it->second;
  return derived_[key] = Make(TypeKind::kList, elem);
}

const Type* TypeFactory::Map(const Type* key_t, const Type* value_t) {
  auto key = std::make_tuple(static_cast<int>(TypeKind::kMap), key_t, value_t);
  auto it = derived_.find(key);
  if (it != derived_.end()) return it->second;
  return derived_[key] = Make(TypeKind::kMap, key_t, value_t);
}

const Type* TypeFactory::MMap(const Type* key_t, const Type* value_t) {
  auto key =
      std::make_tuple(static_cast<int>(TypeKind::kMMap), key_t, value_t);
  auto it = derived_.find(key);
  if (it != derived_.end()) return it->second;
  return derived_[key] = Make(TypeKind::kMMap, key_t, value_t);
}

const Type* TypeFactory::Ptr(const Type* elem) {
  auto key = std::make_tuple(static_cast<int>(TypeKind::kPtr), elem,
                             static_cast<const Type*>(nullptr));
  auto it = derived_.find(key);
  if (it != derived_.end()) return it->second;
  return derived_[key] = Make(TypeKind::kPtr, elem);
}

const Type* TypeFactory::Pool(const Type* elem) {
  auto key = std::make_tuple(static_cast<int>(TypeKind::kPool), elem,
                             static_cast<const Type*>(nullptr));
  auto it = derived_.find(key);
  if (it != derived_.end()) return it->second;
  return derived_[key] = Make(TypeKind::kPool, elem);
}

const Type* TypeFactory::Record(const std::string& name,
                                std::vector<Field> fields) {
  auto it = records_.find(name);
  if (it != records_.end()) {
    assert(it->second->record->fields.size() == fields.size() &&
           "record redefined with different shape");
    return it->second;
  }
  schemas_.push_back(RecordSchema{name, std::move(fields)});
  storage_.push_back(Type{});
  Type& t = storage_.back();
  t.kind = TypeKind::kRecord;
  t.record = &schemas_.back();
  return records_[name] = &t;
}

const Type* TypeFactory::ExtendRecordWithSelfPtr(const Type* base,
                                                 const std::string& name,
                                                 const std::string& field_name) {
  auto it = records_.find(name);
  if (it != records_.end()) return it->second;
  const Type* t = Record(name, base->record->fields);
  // Patch in the self-referential link after the type exists.
  RecordSchema* schema = const_cast<RecordSchema*>(t->record);
  schema->fields.push_back(Field{field_name, Ptr(t)});
  return t;
}

const Type* TypeFactory::FindRecord(const std::string& name) const {
  auto it = records_.find(name);
  return it == records_.end() ? nullptr : it->second;
}

}  // namespace qc::ir
