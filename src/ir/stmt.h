// Statements, blocks, and functions of the ANF IR.
//
// The IR is structured (no CFG): control flow is expressed with nested
// blocks (kIf/kForRange/kWhile/foreach bodies). Every statement binds one
// immutable symbol (its id); arguments are always previously bound symbols
// — this is exactly the administrative normal form of Section 3.3 of the
// paper, and gives us single-definition data flow, cheap CSE and trivial
// dependency analysis.
#ifndef QC_IR_STMT_H_
#define QC_IR_STMT_H_

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "ir/ops.h"
#include "ir/type.h"

namespace qc::ir {

struct Block;

struct Stmt {
  int id = -1;  // symbol number: printed as x<id>
  Op op = Op::kConst;
  const Type* type = nullptr;

  std::vector<Stmt*> args;    // previously bound symbols
  std::vector<Block*> blocks;  // nested scopes (loop bodies, branches, ...)

  // Payload (interpretation depends on op).
  int64_t ival = 0;       // kConst integer/bool/date payload
  double fval = 0.0;      // kConst f64 payload
  std::string sval;       // kConst string payload / misc names
  int aux0 = -1;          // field index / table id
  int aux1 = -1;          // column id

  // Statement produced by lowering an unspecializable generic collection:
  // allowed at any level as an external-library call (the GLib analogue).
  bool lib_call = false;

  bool HasEffect() const { return OpHasEffect(op); }
};

// A lexical scope: an ordered list of statements plus optional parameters
// (bound by the surrounding statement, e.g. the loop index of kForRange or
// the element of kListForeach) and an optional result symbol (used by
// condition blocks, comparator blocks and kMapGetOrElseUpdate init blocks).
struct Block {
  std::vector<Stmt*> params;
  std::vector<Stmt*> stmts;
  Stmt* result = nullptr;
};

// Special op for block parameters: they are plain symbols with no
// computation. We reuse kConst storage but give them a distinct marker via
// aux0 == kParamMarker so printers/interpreters can recognize them.
constexpr int kParamMarker = -1000;

// A compiled query function. Owns all statements and blocks (deque storage:
// stable addresses, bulk free).
class Function {
 public:
  explicit Function(std::string name, TypeFactory* types)
      : name_(std::move(name)), types_(types) {
    body_ = NewBlock();
  }

  Function(const Function&) = delete;
  Function& operator=(const Function&) = delete;

  Stmt* NewStmt(Op op, const Type* type) {
    stmts_.push_back(Stmt{});
    Stmt& s = stmts_.back();
    s.id = next_id_++;
    s.op = op;
    s.type = type;
    return &s;
  }

  // A block parameter symbol (loop variable, foreach element, ...).
  Stmt* NewParam(const Type* type) {
    Stmt* s = NewStmt(Op::kConst, type);
    s->aux0 = kParamMarker;
    return s;
  }

  Block* NewBlock() {
    blocks_.push_back(Block{});
    return &blocks_.back();
  }

  const std::string& name() const { return name_; }
  Block* body() { return body_; }
  const Block* body() const { return body_; }
  TypeFactory* types() const { return types_; }
  int num_stmts() const { return next_id_; }

  // Used by ir::RenumberDense after compacting ids: `n` becomes both the
  // executor register-file size and the next id handed out by NewStmt.
  void SetNumStmts(int n) { next_id_ = n; }

 private:
  std::string name_;
  TypeFactory* types_;
  std::deque<Stmt> stmts_;
  std::deque<Block> blocks_;
  Block* body_ = nullptr;
  int next_id_ = 0;
};

inline bool IsParam(const Stmt* s) { return s->aux0 == kParamMarker; }

}  // namespace qc::ir

#endif  // QC_IR_STMT_H_
