#include "ir/ops.h"

namespace qc::ir {

namespace {
constexpr OpInfo kOpInfos[] = {
#define QC_OP_INFO(name, mnem, effect, cse, minl, maxl) \
  {mnem, effect, cse, minl, maxl},
    QC_OP_LIST(QC_OP_INFO)
#undef QC_OP_INFO
};
}  // namespace

const OpInfo& GetOpInfo(Op op) { return kOpInfos[static_cast<int>(op)]; }

}  // namespace qc::ir
