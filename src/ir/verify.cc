#include "ir/verify.h"

#include <cstdio>
#include <cstdlib>
#include <unordered_set>

#include "ir/printer.h"

namespace qc::ir {

const char* LevelName(Level level) {
  switch (level) {
    case Level::kCLite: return "C.Lite";
    case Level::kScaLite: return "ScaLite";
    case Level::kList: return "ScaLite[List]";
    case Level::kMapList: return "ScaLite[Map,List]";
  }
  return "?";
}

namespace {

class Checker {
 public:
  explicit Checker(std::vector<std::string>* errors) : errors_(errors) {}

  void CheckBlock(const Block* b) {
    size_t added = 0;
    for (const Stmt* p : b->params) {
      bound_.insert(p);
      ++added;
    }
    std::vector<const Stmt*> local;
    for (const Stmt* s : b->stmts) {
      if (seen_.count(s) != 0) {
        Error("statement x%d bound more than once", s->id);
      }
      seen_.insert(s);
      for (const Stmt* a : s->args) {
        if (bound_.count(a) == 0) {
          Error("x%d uses x%d before (or outside) its binding", s->id, a->id);
        }
      }
      for (const Block* nb : s->blocks) {
        CheckBlock(nb);
      }
      bound_.insert(s);
      local.push_back(s);
      ++added;
    }
    if (b->result != nullptr && bound_.count(b->result) == 0) {
      Error("block result x%d is not bound in scope", b->result->id);
    }
    // Leave scope: remove local bindings (params + stmts of this block).
    for (const Stmt* p : b->params) bound_.erase(p);
    for (const Stmt* s : local) bound_.erase(s);
    (void)added;
  }

 private:
  void Error(const char* fmt, int a = 0, int bb = 0) {
    char buf[256];
    std::snprintf(buf, sizeof(buf), fmt, a, bb);
    errors_->push_back(buf);
  }

  std::vector<std::string>* errors_;
  std::unordered_set<const Stmt*> bound_;
  std::unordered_set<const Stmt*> seen_;
};

void CollectLevelViolations(const Block* b, Level level, bool allow_lib,
                            std::vector<std::string>* errors) {
  for (const Stmt* s : b->stmts) {
    const OpInfo& info = GetOpInfo(s->op);
    int l = static_cast<int>(level);
    bool ok = info.min_level <= l && l <= info.max_level;
    if (!ok && allow_lib && s->lib_call) ok = true;
    if (!ok) {
      errors->push_back(std::string("op '") + info.mnemonic +
                        "' not expressible at level " + LevelName(level));
    }
    for (const Block* nb : s->blocks) {
      CollectLevelViolations(nb, level, allow_lib, errors);
    }
  }
}

}  // namespace

std::vector<std::string> VerifyFunction(const Function& fn) {
  std::vector<std::string> errors;
  Checker checker(&errors);
  checker.CheckBlock(fn.body());
  return errors;
}

std::vector<std::string> VerifyLevel(const Function& fn, Level level,
                                     bool allow_lib_calls) {
  std::vector<std::string> errors = VerifyFunction(fn);
  CollectLevelViolations(fn.body(), level, allow_lib_calls, &errors);
  return errors;
}

void CheckFunction(const Function& fn) {
  auto errors = VerifyFunction(fn);
  if (!errors.empty()) {
    std::fprintf(stderr, "IR verification failed for %s:\n", fn.name().c_str());
    for (const auto& e : errors) std::fprintf(stderr, "  %s\n", e.c_str());
    std::fprintf(stderr, "%s\n", PrintFunction(fn).c_str());
    std::abort();
  }
}

void CheckLevel(const Function& fn, Level level, bool allow_lib_calls) {
  auto errors = VerifyLevel(fn, level, allow_lib_calls);
  if (!errors.empty()) {
    std::fprintf(stderr, "Level verification (%s) failed for %s:\n",
                 LevelName(level), fn.name().c_str());
    for (const auto& e : errors) std::fprintf(stderr, "  %s\n", e.c_str());
    std::abort();
  }
}

}  // namespace qc::ir
