// Per-query tracing: span and slice events recorded into per-thread ring
// buffers, collected per session, and emitted as Chrome trace-event JSON
// (the `traceEvents` array format) loadable in Perfetto / chrome://tracing.
//
// Model: a *session* is one trace capture (one request, one bench rep, or
// the whole process under QC_TRACE=<path>). Threads record complete
// ("ph":"X") events tagged with the session id; ending the session drains
// every thread's ring, sorts, and renders JSON. Recording is opt-in at
// runtime: when no session is active the instrumentation cost is a single
// relaxed atomic load per span site, and no ring memory is allocated.
//
// Determinism: recording reads clocks and buffers events — it never
// changes morsel decomposition, merge order, or allocation accounting, so
// bit-exact results and AllocStats are identical traced or untraced.
//
// Knobs: QC_TRACE=<path> opens a process-wide session whose JSON is
// written to <path> at exit; QC_TRACE_BUF=<n> sets the per-thread ring
// capacity in events (default 8192, wrap drops oldest).
#ifndef QC_TELEMETRY_TRACE_H_
#define QC_TELEMETRY_TRACE_H_

#include <cstdint>
#include <string>

namespace qc {
namespace telemetry {

// Monotonic nanoseconds (same clock as exec::GovNowNs).
int64_t TraceNowNs();

// Opens a new session and returns its non-zero id.
uint64_t TraceBeginSession();

// Closes `session`, drains its events from every thread ring, and renders
// Chrome trace JSON. Safe to call once per id; unknown ids yield an empty
// trace.
std::string TraceEndSession(uint64_t session);

// The session this thread should record into: the thread-bound session if
// a TraceScope is live, else the process-wide QC_TRACE session, else 0.
// Fast path (no session anywhere): one relaxed load.
uint64_t CurrentTraceSession();

// Records one complete event. No-op when session == 0. `name`, `cat`, and
// arg keys must be string literals (stored by pointer).
void TraceRecord(uint64_t session, const char* name, const char* cat,
                 int64_t ts_ns, int64_t dur_ns, const char* arg0_key = nullptr,
                 int64_t arg0 = 0, const char* arg1_key = nullptr,
                 int64_t arg1 = 0);

// Binds `session` to the current thread for the scope (restores the
// previous binding on destruction). Worker threads do not inherit the
// binding — parallel code paths capture CurrentTraceSession() on the
// submitting thread and pass it into their task bodies.
class TraceScope {
 public:
  explicit TraceScope(uint64_t session);
  ~TraceScope();
  TraceScope(const TraceScope&) = delete;
  TraceScope& operator=(const TraceScope&) = delete;

 private:
  uint64_t prev_;
};

// RAII complete-event span around a code region; records on destruction
// when a session was active at construction.
class ScopedSpan {
 public:
  ScopedSpan(const char* name, const char* cat,
             const char* arg0_key = nullptr, int64_t arg0 = 0)
      : session_(CurrentTraceSession()),
        name_(name),
        cat_(cat),
        arg0_key_(arg0_key),
        arg0_(arg0),
        t0_(session_ != 0 ? TraceNowNs() : 0) {}
  ~ScopedSpan() {
    if (session_ != 0) {
      TraceRecord(session_, name_, cat_, t0_, TraceNowNs() - t0_, arg0_key_,
                  arg0_);
    }
  }
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  uint64_t session_;
  const char* name_;
  const char* cat_;
  const char* arg0_key_;
  int64_t arg0_;
  int64_t t0_;
};

}  // namespace telemetry
}  // namespace qc

#endif  // QC_TELEMETRY_TRACE_H_
