#include "telemetry/trace.h"

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <unordered_set>
#include <vector>

#include "common/env.h"
#include "telemetry/log.h"

namespace qc {
namespace telemetry {

namespace {

struct TraceEvent {
  uint64_t session = 0;  // 0 = empty slot / already collected
  const char* name = nullptr;
  const char* cat = nullptr;
  int64_t ts = 0;
  int64_t dur = 0;
  const char* a0_key = nullptr;
  int64_t a0 = 0;
  const char* a1_key = nullptr;
  int64_t a1 = 0;
};

// Per-thread ring. The mutex is only contended by a collector draining a
// finished session; the owning thread takes it uncontended per recorded
// event, and recording only happens while a session is active.
struct TraceRing {
  std::mutex mu;
  std::vector<TraceEvent> ev;
  size_t pos = 0;
  // Drain bounds (both under mu): a collector scans only the slots ever
  // written, and skips the ring outright when it never recorded a session
  // as new as the one being drained. Without these, every TraceEndSession
  // walks full capacity (640KB/ring) across every ring ever created —
  // enough cache traffic to perturb the very runs being traced.
  size_t filled = 0;
  uint64_t newest_session = 0;
  int tid = 0;
};

std::mutex g_rings_mu;
// Rings are intentionally leaked (owned by this registry, reachable until
// process exit) so a session can be collected after its worker threads
// have exited.
std::vector<TraceRing*>& Rings() {
  static std::vector<TraceRing*>* r = new std::vector<TraceRing*>();
  return *r;
}

std::atomic<int> g_active_sessions{0};
std::atomic<uint64_t> g_next_session{1};
std::mutex g_sessions_mu;
std::unordered_set<uint64_t>& OpenSessions() {
  static std::unordered_set<uint64_t>* s = new std::unordered_set<uint64_t>();
  return *s;
}

thread_local uint64_t t_session = 0;
thread_local TraceRing* t_ring = nullptr;

TraceRing* ThisThreadRing() {
  if (t_ring == nullptr) {
    auto* r = new TraceRing();
    size_t cap = static_cast<size_t>(
        EnvIntClamped("QC_TRACE_BUF", 8192, 64, 1 << 22));
    r->ev.resize(cap);
    std::lock_guard<std::mutex> lock(g_rings_mu);
    Rings().push_back(r);
    r->tid = static_cast<int>(Rings().size());
    t_ring = r;
  }
  return t_ring;
}

// --- QC_TRACE: one process-wide session written to a file at exit -------

std::atomic<uint64_t> g_process_session{0};
std::string* g_process_path = nullptr;  // set once under the init once_flag

void WriteProcessTraceAtExit() {
  uint64_t session = g_process_session.exchange(0, std::memory_order_relaxed);
  if (session == 0 || g_process_path == nullptr) return;
  std::string json = TraceEndSession(session);
  FILE* f = std::fopen(g_process_path->c_str(), "w");
  if (f == nullptr) {
    Log(LogLevel::kError, "trace_write_failed",
        {{"path", g_process_path->c_str()}});
    return;
  }
  std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
  Log(LogLevel::kInfo, "trace_written",
      {{"path", g_process_path->c_str()}, {"bytes", json.size()}});
}

void InitProcessTraceFromEnv() {
  const char* path = std::getenv("QC_TRACE");
  if (path == nullptr || path[0] == '\0') return;
  g_process_path = new std::string(path);
  g_process_session.store(TraceBeginSession(), std::memory_order_relaxed);
  std::atexit(WriteProcessTraceAtExit);
}

void AppendJsonString(std::string* out, const char* s) {
  *out += '"';
  for (; *s != '\0'; ++s) {
    char c = *s;
    if (c == '"' || c == '\\') {
      *out += '\\';
      *out += c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      snprintf(buf, sizeof(buf), "\\u%04x", c);
      *out += buf;
    } else {
      *out += c;
    }
  }
  *out += '"';
}

struct CollectedEvent {
  TraceEvent e;
  int tid;
};

}  // namespace

int64_t TraceNowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

uint64_t TraceBeginSession() {
  uint64_t id = g_next_session.fetch_add(1, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(g_sessions_mu);
    OpenSessions().insert(id);
  }
  g_active_sessions.fetch_add(1, std::memory_order_relaxed);
  return id;
}

uint64_t CurrentTraceSession() {
  static std::once_flag once;
  std::call_once(once, InitProcessTraceFromEnv);
  if (g_active_sessions.load(std::memory_order_relaxed) == 0) return 0;
  if (t_session != 0) return t_session;
  return g_process_session.load(std::memory_order_relaxed);
}

void TraceRecord(uint64_t session, const char* name, const char* cat,
                 int64_t ts_ns, int64_t dur_ns, const char* arg0_key,
                 int64_t arg0, const char* arg1_key, int64_t arg1) {
  if (session == 0) return;
  TraceRing* r = ThisThreadRing();
  std::lock_guard<std::mutex> lock(r->mu);
  TraceEvent& e = r->ev[r->pos];
  e.session = session;
  e.name = name;
  e.cat = cat;
  e.ts = ts_ns;
  e.dur = dur_ns;
  e.a0_key = arg0_key;
  e.a0 = arg0;
  e.a1_key = arg1_key;
  e.a1 = arg1;
  if (session > r->newest_session) r->newest_session = session;
  ++r->pos;
  if (r->pos > r->filled) r->filled = r->pos;
  if (r->pos == r->ev.size()) r->pos = 0;  // wrap: oldest events drop
}

TraceScope::TraceScope(uint64_t session) : prev_(t_session) {
  if (session != 0) t_session = session;
}

TraceScope::~TraceScope() { t_session = prev_; }

std::string TraceEndSession(uint64_t session) {
  {
    std::lock_guard<std::mutex> lock(g_sessions_mu);
    if (OpenSessions().erase(session) > 0) {
      g_active_sessions.fetch_sub(1, std::memory_order_relaxed);
    }
  }
  std::vector<CollectedEvent> out;
  {
    std::lock_guard<std::mutex> rlock(g_rings_mu);
    for (TraceRing* r : Rings()) {
      std::lock_guard<std::mutex> lock(r->mu);
      // Session ids are monotonic: a ring whose newest recording predates
      // this session cannot hold any of its events.
      if (r->newest_session < session) continue;
      for (size_t i = 0; i < r->filled; ++i) {
        TraceEvent& e = r->ev[i];
        if (e.session == session) {
          out.push_back({e, r->tid});
          e.session = 0;
        }
      }
    }
  }
  std::sort(out.begin(), out.end(),
            [](const CollectedEvent& a, const CollectedEvent& b) {
              if (a.e.ts != b.e.ts) return a.e.ts < b.e.ts;
              return a.tid < b.tid;
            });
  int64_t base = out.empty() ? 0 : out.front().e.ts;
  int pid = static_cast<int>(getpid());

  std::string json = "{\"traceEvents\":[";
  char buf[160];
  for (size_t i = 0; i < out.size(); ++i) {
    const TraceEvent& e = out[i].e;
    if (i > 0) json += ",";
    json += "{\"name\":";
    AppendJsonString(&json, e.name);
    json += ",\"cat\":";
    AppendJsonString(&json, e.cat);
    snprintf(buf, sizeof(buf),
             ",\"ph\":\"X\",\"pid\":%d,\"tid\":%d,\"ts\":%.3f,\"dur\":%.3f",
             pid, out[i].tid, static_cast<double>(e.ts - base) / 1000.0,
             static_cast<double>(e.dur) / 1000.0);
    json += buf;
    if (e.a0_key != nullptr) {
      json += ",\"args\":{";
      AppendJsonString(&json, e.a0_key);
      snprintf(buf, sizeof(buf), ":%" PRId64, e.a0);
      json += buf;
      if (e.a1_key != nullptr) {
        json += ",";
        AppendJsonString(&json, e.a1_key);
        snprintf(buf, sizeof(buf), ":%" PRId64, e.a1);
        json += buf;
      }
      json += "}";
    }
    json += "}";
  }
  json += "],\"displayTimeUnit\":\"ms\"}";
  return json;
}

}  // namespace telemetry
}  // namespace qc
