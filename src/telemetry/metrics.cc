#include "telemetry/metrics.h"

#include <cinttypes>
#include <cstdarg>
#include <cstdio>
#include <utility>

namespace qc {
namespace telemetry {

namespace {

// Escapes help text per the Prometheus exposition format: backslash and
// newline must be escaped in # HELP lines.
std::string EscapeHelp(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '\\') {
      out += "\\\\";
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out += c;
    }
  }
  return out;
}

void AppendF(std::string* out, const char* fmt, ...)
    __attribute__((format(printf, 2, 3)));

void AppendF(std::string* out, const char* fmt, ...) {
  char buf[256];
  va_list ap;
  va_start(ap, fmt);
  int n = vsnprintf(buf, sizeof(buf), fmt, ap);
  va_end(ap);
  if (n > 0) out->append(buf, static_cast<size_t>(n) < sizeof(buf)
                                  ? static_cast<size_t>(n)
                                  : sizeof(buf) - 1);
}

}  // namespace

unsigned Counter::ThisThreadShard() {
  static std::atomic<unsigned> next{0};
  thread_local unsigned mine =
      next.fetch_add(1, std::memory_order_relaxed) % kShards;
  return mine;
}

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)), buckets_(bounds_.size() + 1) {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
}

void Histogram::Observe(double v) {
  size_t i = 0;
  while (i < bounds_.size() && v > bounds_[i]) ++i;
  buckets_[i].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  double micro = v * 1e6;
  if (micro > 0) {
    sum_micro_.fetch_add(static_cast<uint64_t>(micro),
                         std::memory_order_relaxed);
  }
}

void Histogram::Read(std::vector<uint64_t>* buckets, uint64_t* count,
                     double* sum) const {
  buckets->resize(buckets_.size());
  for (size_t i = 0; i < buckets_.size(); ++i) {
    (*buckets)[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  *count = count_.load(std::memory_order_relaxed);
  *sum = static_cast<double>(sum_micro_.load(std::memory_order_relaxed)) / 1e6;
}

struct MetricsRegistry::Entry {
  std::string name;
  std::string help;
  std::string json_key;
  MetricKind kind;
  std::unique_ptr<Counter> counter;
  std::unique_ptr<Gauge> gauge;
  std::unique_ptr<Histogram> hist;
};

// Out of line so Entry is complete where the container members are
// instantiated (the header only forward-declares it).
MetricsRegistry::MetricsRegistry() = default;
MetricsRegistry::~MetricsRegistry() = default;

Counter* MetricsRegistry::AddCounter(const char* name, const char* help,
                                     const char* json_key) {
  std::lock_guard<std::mutex> lock(mu_);
  auto e = std::make_unique<Entry>();
  e->name = name;
  e->help = help;
  e->json_key = json_key;
  e->kind = MetricKind::kCounter;
  e->counter = std::make_unique<Counter>();
  Counter* out = e->counter.get();
  entries_.push_back(std::move(e));
  return out;
}

Gauge* MetricsRegistry::AddGauge(const char* name, const char* help,
                                 const char* json_key) {
  std::lock_guard<std::mutex> lock(mu_);
  auto e = std::make_unique<Entry>();
  e->name = name;
  e->help = help;
  e->json_key = json_key;
  e->kind = MetricKind::kGauge;
  e->gauge = std::make_unique<Gauge>();
  Gauge* out = e->gauge.get();
  entries_.push_back(std::move(e));
  return out;
}

Histogram* MetricsRegistry::AddHistogram(const char* name, const char* help,
                                         std::vector<double> bounds,
                                         const char* json_key) {
  std::lock_guard<std::mutex> lock(mu_);
  auto e = std::make_unique<Entry>();
  e->name = name;
  e->help = help;
  e->json_key = json_key;
  e->kind = MetricKind::kHistogram;
  e->hist = std::make_unique<Histogram>(std::move(bounds));
  Histogram* out = e->hist.get();
  entries_.push_back(std::move(e));
  return out;
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  MetricsSnapshot snap;
  std::lock_guard<std::mutex> lock(mu_);
  snap.samples.reserve(entries_.size());
  for (const auto& e : entries_) {
    MetricSample s;
    s.name = e->name;
    s.help = e->help;
    s.json_key = e->json_key;
    s.kind = e->kind;
    switch (e->kind) {
      case MetricKind::kCounter:
        s.counter = e->counter->load();
        break;
      case MetricKind::kGauge:
        s.gauge = e->gauge->load();
        break;
      case MetricKind::kHistogram:
        s.bounds = e->hist->bounds();
        e->hist->Read(&s.buckets, &s.count, &s.sum);
        break;
    }
    snap.samples.push_back(std::move(s));
  }
  return snap;
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* g = new MetricsRegistry();  // leaked: see header
  return *g;
}

std::string MetricsSnapshot::ToPrometheus() const {
  std::string out;
  for (const MetricSample& s : samples) {
    out += "# HELP " + s.name + " " + EscapeHelp(s.help) + "\n";
    switch (s.kind) {
      case MetricKind::kCounter:
        out += "# TYPE " + s.name + " counter\n";
        AppendF(&out, "%s %" PRIu64 "\n", s.name.c_str(), s.counter);
        break;
      case MetricKind::kGauge:
        out += "# TYPE " + s.name + " gauge\n";
        AppendF(&out, "%s %" PRId64 "\n", s.name.c_str(), s.gauge);
        break;
      case MetricKind::kHistogram: {
        out += "# TYPE " + s.name + " histogram\n";
        uint64_t cum = 0;
        for (size_t i = 0; i < s.bounds.size(); ++i) {
          cum += i < s.buckets.size() ? s.buckets[i] : 0;
          AppendF(&out, "%s_bucket{le=\"%g\"} %" PRIu64 "\n", s.name.c_str(),
                  s.bounds[i], cum);
        }
        AppendF(&out, "%s_bucket{le=\"+Inf\"} %" PRIu64 "\n", s.name.c_str(),
                s.count);
        AppendF(&out, "%s_sum %.6f\n", s.name.c_str(), s.sum);
        AppendF(&out, "%s_count %" PRIu64 "\n", s.name.c_str(), s.count);
        break;
      }
    }
  }
  return out;
}

std::string MetricsSnapshot::ToJson() const {
  std::string out = "{";
  bool first = true;
  for (const MetricSample& s : samples) {
    if (s.json_key.empty() || s.kind == MetricKind::kHistogram) continue;
    if (!first) out += ",";
    first = false;
    if (s.kind == MetricKind::kCounter) {
      AppendF(&out, "\"%s\":%" PRIu64, s.json_key.c_str(), s.counter);
    } else {
      AppendF(&out, "\"%s\":%" PRId64, s.json_key.c_str(), s.gauge);
    }
  }
  out += "}";
  return out;
}

namespace {
Counter& GlobalCounter(const char* name, const char* help) {
  return *MetricsRegistry::Global().AddCounter(name, help);
}
}  // namespace

Counter& JitCompiles() {
  static Counter& c = GlobalCounter(
      "qc_jit_compiles_total",
      "Query fragments successfully stitched to native code.");
  return c;
}

Counter& JitFallbacks() {
  static Counter& c = GlobalCounter(
      "qc_jit_fallbacks_total",
      "JIT compilation attempts that degraded to the bytecode VM.");
  return c;
}

Counter& JitDeoptEvents() {
  static Counter& c = GlobalCounter(
      "qc_jit_deopt_events_total",
      "Native-to-VM deopt transfers observed during JIT runs.");
  return c;
}

Counter& GovSafepointTrips() {
  static Counter& c = GlobalCounter(
      "qc_gov_safepoint_trips_total",
      "Governance aborts (cancel/deadline/memory/fault) raised at "
      "safepoints, one per tripped run.");
  return c;
}

Counter& PlanCacheHits() {
  static Counter& c = GlobalCounter(
      "qc_plan_cache_hits_total",
      "Plan-cache lookups served from an already-compiled entry.");
  return c;
}

Counter& PlanCacheMisses() {
  static Counter& c = GlobalCounter(
      "qc_plan_cache_misses_total",
      "Plan-cache lookups that compiled a new (query, level) entry.");
  return c;
}

}  // namespace telemetry
}  // namespace qc
