// Telemetry metrics registry: lock-free counters/gauges/histograms with
// named registration, snapshotted into Prometheus text exposition format
// and JSON from the same data so the two exports cannot drift.
//
// Design constraints (see src/telemetry/README.md):
//   - Update paths are wait-free: a counter bump is one relaxed fetch_add
//     on a cache-line-private shard; a histogram observe is two.
//   - Instrumentation reads timing, never influences execution: nothing
//     here allocates or takes a lock on the update path, so the engines'
//     bit-exact results and AllocStats accounting are untouched.
//   - Registration happens once at startup (registry construction takes a
//     mutex); Snapshot() is read-only and safe concurrent with updates.
#ifndef QC_TELEMETRY_METRICS_H_
#define QC_TELEMETRY_METRICS_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace qc {
namespace telemetry {

// Monotonic counter, sharded to keep concurrent bumpers off each other's
// cache lines. load() sums the shards (monotone but not a point-in-time
// linearization — fine for monitoring).
class Counter {
 public:
  Counter() = default;
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  void Inc() { Add(1); }
  void Add(uint64_t n) {
    shards_[ThisThreadShard()].v.fetch_add(n, std::memory_order_relaxed);
  }
  uint64_t load(std::memory_order order = std::memory_order_relaxed) const {
    uint64_t total = 0;
    for (const Shard& s : shards_) total += s.v.load(order);
    return total;
  }

 private:
  static constexpr int kShards = 8;
  struct alignas(64) Shard {
    std::atomic<uint64_t> v{0};
  };
  static unsigned ThisThreadShard();
  Shard shards_[kShards];
};

// Signed gauge. Exposes the std::atomic CAS surface so call sites that
// previously held a raw std::atomic<int> (the server's downshift ladder)
// keep their transition semantics unchanged.
class Gauge {
 public:
  Gauge() = default;
  Gauge(const Gauge&) = delete;
  Gauge& operator=(const Gauge&) = delete;

  int64_t load(std::memory_order order = std::memory_order_relaxed) const {
    return v_.load(order);
  }
  void store(int64_t v, std::memory_order order = std::memory_order_relaxed) {
    v_.store(v, order);
  }
  void Set(int64_t v) { store(v); }
  void Add(int64_t d) { v_.fetch_add(d, std::memory_order_relaxed); }
  bool compare_exchange_strong(
      int64_t& expected, int64_t desired,
      std::memory_order order = std::memory_order_relaxed) {
    return v_.compare_exchange_strong(expected, desired, order);
  }
  bool compare_exchange_weak(
      int64_t& expected, int64_t desired,
      std::memory_order order = std::memory_order_relaxed) {
    return v_.compare_exchange_weak(expected, desired, order);
  }

 private:
  std::atomic<int64_t> v_{0};
};

// Fixed-bucket latency histogram. `bounds` are ascending inclusive upper
// bounds; an implicit +Inf bucket catches the rest. The sum is kept in
// integer micro-units (value * 1e6) because C++17 has no atomic<double>
// fetch_add; at millisecond-scale observations that is nanosecond
// resolution with ~570 years to overflow.
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  void Observe(double v);

  const std::vector<double>& bounds() const { return bounds_; }
  // Reads per-bucket (non-cumulative) counts, total count, and sum.
  void Read(std::vector<uint64_t>* buckets, uint64_t* count,
            double* sum) const;

 private:
  std::vector<double> bounds_;
  std::vector<std::atomic<uint64_t>> buckets_;  // bounds_.size() + 1 (+Inf)
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_micro_{0};
};

enum class MetricKind { kCounter, kGauge, kHistogram };

// One metric's point-in-time value inside a snapshot.
struct MetricSample {
  std::string name;      // Prometheus family name
  std::string help;
  std::string json_key;  // "" = excluded from the JSON export
  MetricKind kind = MetricKind::kCounter;
  uint64_t counter = 0;
  int64_t gauge = 0;
  std::vector<double> bounds;     // histogram upper bounds
  std::vector<uint64_t> buckets;  // per-bucket counts (non-cumulative)
  uint64_t count = 0;             // histogram total observations
  double sum = 0;                 // histogram sum
};

// Registration-ordered snapshot; both renderers walk the same samples so
// /metrics and /stats cannot disagree.
struct MetricsSnapshot {
  std::vector<MetricSample> samples;

  // Prometheus text exposition format (# HELP / # TYPE, cumulative
  // le-buckets + _sum/_count for histograms, escaped help text).
  std::string ToPrometheus() const;
  // {"key":value,...} over samples with a non-empty json_key, in
  // registration order. Counters render unsigned, gauges signed;
  // histograms are Prometheus-only.
  std::string ToJson() const;
};

// Named registration in insertion order. The registry owns the metric
// objects; Add* returns stable pointers valid for the registry's lifetime.
class MetricsRegistry {
 public:
  MetricsRegistry();
  ~MetricsRegistry();
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter* AddCounter(const char* name, const char* help,
                      const char* json_key = "");
  Gauge* AddGauge(const char* name, const char* help,
                  const char* json_key = "");
  Histogram* AddHistogram(const char* name, const char* help,
                          std::vector<double> bounds,
                          const char* json_key = "");

  MetricsSnapshot Snapshot() const;

  // Process-wide registry for engine-layer metrics (JIT, governor, plan
  // cache). Intentionally leaked so counters stay valid through static
  // destruction.
  static MetricsRegistry& Global();

 private:
  struct Entry;
  mutable std::mutex mu_;
  std::vector<std::unique_ptr<Entry>> entries_;
};

// Process-wide engine-layer counters, registered in Global() on first use.
Counter& JitCompiles();        // qc_jit_compiles_total
Counter& JitFallbacks();       // qc_jit_fallbacks_total
Counter& JitDeoptEvents();     // qc_jit_deopt_events_total
Counter& GovSafepointTrips();  // qc_gov_safepoint_trips_total
Counter& PlanCacheHits();      // qc_plan_cache_hits_total
Counter& PlanCacheMisses();    // qc_plan_cache_misses_total

}  // namespace telemetry
}  // namespace qc

#endif  // QC_TELEMETRY_METRICS_H_
