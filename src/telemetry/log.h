// Structured logging: one-line `key=value` records on stderr, replacing
// the engines' and daemon's ad-hoc fprintf notices. Every record carries
// `ts=` (epoch milliseconds), `level=`, and `event=`; values that contain
// spaces, quotes, '=' or control characters are double-quoted with
// backslash escapes, so the lines stay machine-parseable.
//
//   qc ts=1754650000123 level=warn event=jit_fallback reason=mmap_denied
//
// The QC_LOG knob sets the threshold: error|warn|info|debug or 0..3
// (default info). It is re-read per record — log records are rare by
// design (state transitions, not per-row events), so there is no cached
// level to stale out.
#ifndef QC_TELEMETRY_LOG_H_
#define QC_TELEMETRY_LOG_H_

#include <string>
#include <vector>

namespace qc {
namespace telemetry {

enum class LogLevel : int { kError = 0, kWarn = 1, kInfo = 2, kDebug = 3 };

// One key=value pair. Keys must outlive the Log/LogFormat call (string
// literals at every call site).
struct LogKv {
  enum class Kind { kStr, kInt, kUint, kFloat };
  const char* key;
  Kind kind;
  std::string str;
  long long i = 0;
  unsigned long long u = 0;
  double f = 0;

  LogKv(const char* k, const char* v)
      : key(k), kind(Kind::kStr), str(v != nullptr ? v : "") {}
  LogKv(const char* k, std::string v)
      : key(k), kind(Kind::kStr), str(std::move(v)) {}
  LogKv(const char* k, int v) : key(k), kind(Kind::kInt), i(v) {}
  LogKv(const char* k, long v) : key(k), kind(Kind::kInt), i(v) {}
  LogKv(const char* k, long long v) : key(k), kind(Kind::kInt), i(v) {}
  LogKv(const char* k, unsigned v) : key(k), kind(Kind::kUint), u(v) {}
  LogKv(const char* k, unsigned long v) : key(k), kind(Kind::kUint), u(v) {}
  LogKv(const char* k, unsigned long long v)
      : key(k), kind(Kind::kUint), u(v) {}
  LogKv(const char* k, double v) : key(k), kind(Kind::kFloat), f(v) {}
};

// Current threshold from QC_LOG (0..3); records at a level <= threshold
// are emitted.
int LogThreshold();
bool LogEnabled(LogLevel level);

// Renders "level=<l> event=<e> k=v ..." without timestamp or newline —
// the pure, testable part of the pipeline.
std::string LogFormat(LogLevel level, const char* event,
                      const std::vector<LogKv>& kvs);

// Emits one record to stderr (single write) when `level` passes QC_LOG.
void Log(LogLevel level, const char* event, std::vector<LogKv> kvs = {});

}  // namespace telemetry
}  // namespace qc

#endif  // QC_TELEMETRY_LOG_H_
