#include "telemetry/log.h"

#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "common/env.h"

namespace qc {
namespace telemetry {

namespace {

const char* LevelName(LogLevel l) {
  switch (l) {
    case LogLevel::kError:
      return "error";
    case LogLevel::kWarn:
      return "warn";
    case LogLevel::kInfo:
      return "info";
    case LogLevel::kDebug:
      return "debug";
  }
  return "info";
}

bool NeedsQuoting(const std::string& v) {
  if (v.empty()) return true;
  for (char c : v) {
    if (c == ' ' || c == '"' || c == '\\' || c == '=' ||
        static_cast<unsigned char>(c) < 0x20) {
      return true;
    }
  }
  return false;
}

void AppendValue(std::string* out, const std::string& v) {
  if (!NeedsQuoting(v)) {
    *out += v;
    return;
  }
  *out += '"';
  for (char c : v) {
    if (c == '"' || c == '\\') {
      *out += '\\';
      *out += c;
    } else if (c == '\n') {
      *out += "\\n";
    } else if (static_cast<unsigned char>(c) < 0x20) {
      *out += ' ';  // other control bytes: keep the record one line
    } else {
      *out += c;
    }
  }
  *out += '"';
}

}  // namespace

int LogThreshold() {
  const char* v = std::getenv("QC_LOG");
  if (v == nullptr || v[0] == '\0') return 2;  // info
  if (std::strcmp(v, "error") == 0) return 0;
  if (std::strcmp(v, "warn") == 0) return 1;
  if (std::strcmp(v, "info") == 0) return 2;
  if (std::strcmp(v, "debug") == 0) return 3;
  long long parsed = 0;
  if (!EnvParseInt(v, &parsed)) return 2;
  if (parsed < 0) return 0;
  if (parsed > 3) return 3;
  return static_cast<int>(parsed);
}

bool LogEnabled(LogLevel level) {
  return static_cast<int>(level) <= LogThreshold();
}

std::string LogFormat(LogLevel level, const char* event,
                      const std::vector<LogKv>& kvs) {
  std::string out = "level=";
  out += LevelName(level);
  out += " event=";
  out += event;
  char buf[64];
  for (const LogKv& kv : kvs) {
    out += ' ';
    out += kv.key;
    out += '=';
    switch (kv.kind) {
      case LogKv::Kind::kStr:
        AppendValue(&out, kv.str);
        break;
      case LogKv::Kind::kInt:
        snprintf(buf, sizeof(buf), "%lld", kv.i);
        out += buf;
        break;
      case LogKv::Kind::kUint:
        snprintf(buf, sizeof(buf), "%llu", kv.u);
        out += buf;
        break;
      case LogKv::Kind::kFloat:
        snprintf(buf, sizeof(buf), "%g", kv.f);
        out += buf;
        break;
    }
  }
  return out;
}

void Log(LogLevel level, const char* event, std::vector<LogKv> kvs) {
  if (!LogEnabled(level)) return;
  int64_t ts_ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                      std::chrono::system_clock::now().time_since_epoch())
                      .count();
  char head[48];
  snprintf(head, sizeof(head), "qc ts=%" PRId64 " ", ts_ms);
  std::string line = head;
  line += LogFormat(level, event, kvs);
  line += '\n';
  std::fwrite(line.data(), 1, line.size(), stderr);
}

}  // namespace telemetry
}  // namespace qc
