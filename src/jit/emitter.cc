#include "jit/emitter.h"

#include <cassert>
#include <cstring>

#include "common/fault.h"
#include "common/str.h"

#if defined(__unix__) || defined(__APPLE__)
#include <sys/mman.h>
#include <unistd.h>
#define QC_JIT_HAVE_MMAP 1
#else
#define QC_JIT_HAVE_MMAP 0
#endif

#include "jit/templates.h"

namespace qc::exec::jit {

// ---------------------------------------------------------------------------
// Asm
// ---------------------------------------------------------------------------

void Asm::U32(uint32_t v) {
  buf_.push_back(static_cast<uint8_t>(v));
  buf_.push_back(static_cast<uint8_t>(v >> 8));
  buf_.push_back(static_cast<uint8_t>(v >> 16));
  buf_.push_back(static_cast<uint8_t>(v >> 24));
}

void Asm::U64(uint64_t v) {
  U32(static_cast<uint32_t>(v));
  U32(static_cast<uint32_t>(v >> 32));
}

void Asm::Rex(bool w, uint8_t reg, uint8_t index, uint8_t base) {
  uint8_t rex = 0x40 | (w ? 8 : 0) | ((reg >= 8) ? 4 : 0) |
                ((index >= 8) ? 2 : 0) | ((base >= 8) ? 1 : 0);
  if (rex != 0x40 || w) buf_.push_back(rex);
}

void Asm::Mem(uint8_t reg, Reg base, int32_t disp, bool force_disp32) {
  // rsp/r12 as base require a SIB byte; rbp/r13 require an explicit disp.
  bool need_sib = (base & 7) == 4;
  bool disp0_ok = (base & 7) != 5;
  uint8_t mod;
  if (force_disp32) {
    mod = 2;
  } else if (disp == 0 && disp0_ok) {
    mod = 0;
  } else if (disp >= -128 && disp <= 127) {
    mod = 1;
  } else {
    mod = 2;
  }
  buf_.push_back(static_cast<uint8_t>((mod << 6) | ((reg & 7) << 3) |
                                      (need_sib ? 4 : (base & 7))));
  if (need_sib) buf_.push_back(0x24);  // scale=1, no index, base = base&7
  if (mod == 1) {
    buf_.push_back(static_cast<uint8_t>(disp));
  } else if (mod == 2) {
    last_field_ = buf_.size();
    U32(static_cast<uint32_t>(disp));
  }
}

void Asm::MemIdx(uint8_t reg, Reg base, Reg index, uint8_t scale,
                 int32_t disp) {
  assert((index & 7) != 4 && "rsp cannot be an index register");
  bool disp0_ok = (base & 7) != 5;
  uint8_t mod;
  if (disp == 0 && disp0_ok) {
    mod = 0;
  } else if (disp >= -128 && disp <= 127) {
    mod = 1;
  } else {
    mod = 2;
  }
  buf_.push_back(static_cast<uint8_t>((mod << 6) | ((reg & 7) << 3) | 4));
  buf_.push_back(static_cast<uint8_t>((scale << 6) | ((index & 7) << 3) |
                                      (base & 7)));
  if (mod == 1) {
    buf_.push_back(static_cast<uint8_t>(disp));
  } else if (mod == 2) {
    last_field_ = buf_.size();
    U32(static_cast<uint32_t>(disp));
  }
}

void Asm::MovRegMem(Reg dst, Reg base, int32_t disp, bool force_disp32) {
  Rex(true, dst, 0, base);
  buf_.push_back(0x8B);
  Mem(dst, base, disp, force_disp32);
}

void Asm::Mov32RegMem(Reg dst, Reg base, int32_t disp) {
  Rex(false, dst, 0, base);
  buf_.push_back(0x8B);
  Mem(dst, base, disp, false);
}

void Asm::MovMemReg(Reg base, int32_t disp, Reg src, bool force_disp32) {
  Rex(true, src, 0, base);
  buf_.push_back(0x89);
  Mem(src, base, disp, force_disp32);
}

void Asm::MovRegMemIdx(Reg dst, Reg base, Reg index, uint8_t scale,
                       int32_t disp) {
  Rex(true, dst, index, base);
  buf_.push_back(0x8B);
  MemIdx(dst, base, index, scale, disp);
}

void Asm::MovMemIdxReg(Reg base, Reg index, uint8_t scale, int32_t disp,
                       Reg src) {
  Rex(true, src, index, base);
  buf_.push_back(0x89);
  MemIdx(src, base, index, scale, disp);
}

void Asm::MovsxdRegMemIdx(Reg dst, Reg base, Reg index) {
  Rex(true, dst, index, base);
  buf_.push_back(0x63);
  MemIdx(dst, base, index, 2, 0);
}

void Asm::MovImm64(Reg dst, uint64_t imm) {
  Rex(true, 0, 0, dst);
  buf_.push_back(static_cast<uint8_t>(0xB8 | (dst & 7)));
  last_field_ = buf_.size();
  U64(imm);
}

void Asm::MovImm32(Reg dst, uint32_t imm) {
  Rex(false, 0, 0, dst);
  buf_.push_back(static_cast<uint8_t>(0xB8 | (dst & 7)));
  last_field_ = buf_.size();
  U32(imm);
}

void Asm::MovImmSext32(Reg dst, int32_t imm) {
  Rex(true, 0, 0, dst);
  buf_.push_back(0xC7);
  buf_.push_back(static_cast<uint8_t>(0xC0 | (dst & 7)));
  last_field_ = buf_.size();
  U32(static_cast<uint32_t>(imm));
}

void Asm::AddRegMem(Reg dst, Reg base, int32_t disp, bool force_disp32) {
  Rex(true, dst, 0, base);
  buf_.push_back(0x03);
  Mem(dst, base, disp, force_disp32);
}

void Asm::SubRegMem(Reg dst, Reg base, int32_t disp, bool force_disp32) {
  Rex(true, dst, 0, base);
  buf_.push_back(0x2B);
  Mem(dst, base, disp, force_disp32);
}

void Asm::ImulRegMem(Reg dst, Reg base, int32_t disp, bool force_disp32) {
  Rex(true, dst, 0, base);
  buf_.push_back(0x0F);
  buf_.push_back(0xAF);
  Mem(dst, base, disp, force_disp32);
}

void Asm::CmpRegMem(Reg dst, Reg base, int32_t disp, bool force_disp32) {
  Rex(true, dst, 0, base);
  buf_.push_back(0x3B);
  Mem(dst, base, disp, force_disp32);
}

void Asm::AndRegMem(Reg dst, Reg base, int32_t disp, bool force_disp32) {
  Rex(true, dst, 0, base);
  buf_.push_back(0x23);
  Mem(dst, base, disp, force_disp32);
}

void Asm::SubRegMemIdx(Reg dst, Reg base, Reg index, uint8_t scale) {
  Rex(true, dst, index, base);
  buf_.push_back(0x2B);
  MemIdx(dst, base, index, scale, 0);
}

void Asm::AddMemReg(Reg base, int32_t disp, Reg src, bool force_disp32) {
  Rex(true, src, 0, base);
  buf_.push_back(0x01);
  Mem(src, base, disp, force_disp32);
}

void Asm::AddMemIdxReg(Reg base, Reg index, uint8_t scale, int32_t disp,
                       Reg src) {
  Rex(true, src, index, base);
  buf_.push_back(0x01);
  MemIdx(src, base, index, scale, disp);
}

void Asm::CmpRegReg(Reg a, Reg b) {
  Rex(true, b, 0, a);
  buf_.push_back(0x39);  // cmp r/m64, r64: a compared with b
  buf_.push_back(static_cast<uint8_t>(0xC0 | ((b & 7) << 3) | (a & 7)));
}

void Asm::TestRegReg(Reg a, Reg b) {
  Rex(true, b, 0, a);
  buf_.push_back(0x85);
  buf_.push_back(static_cast<uint8_t>(0xC0 | ((b & 7) << 3) | (a & 7)));
}

void Asm::XorRegReg(Reg dst, Reg src) {
  Rex(true, src, 0, dst);
  buf_.push_back(0x31);
  buf_.push_back(static_cast<uint8_t>(0xC0 | ((src & 7) << 3) | (dst & 7)));
}

void Asm::XorReg32(Reg r) {
  Rex(false, r, 0, r);
  buf_.push_back(0x31);
  buf_.push_back(static_cast<uint8_t>(0xC0 | ((r & 7) << 3) | (r & 7)));
}

void Asm::AndImm8(Reg r, uint8_t imm) {
  Rex(false, 0, 0, r);
  buf_.push_back(0x83);
  buf_.push_back(static_cast<uint8_t>(0xE0 | (r & 7)));
  buf_.push_back(imm);
}

void Asm::AddImm8(Reg r, int8_t imm) {
  Rex(true, 0, 0, r);
  buf_.push_back(0x83);
  buf_.push_back(static_cast<uint8_t>(0xC0 | (r & 7)));
  buf_.push_back(static_cast<uint8_t>(imm));
}

void Asm::AddRegReg(Reg dst, Reg src) {
  Rex(true, src, 0, dst);
  buf_.push_back(0x01);
  buf_.push_back(static_cast<uint8_t>(0xC0 | ((src & 7) << 3) | (dst & 7)));
}

void Asm::SubRegReg(Reg dst, Reg src) {
  Rex(true, src, 0, dst);
  buf_.push_back(0x29);
  buf_.push_back(static_cast<uint8_t>(0xC0 | ((src & 7) << 3) | (dst & 7)));
}

void Asm::AndRegReg(Reg dst, Reg src) {
  Rex(true, src, 0, dst);
  buf_.push_back(0x21);
  buf_.push_back(static_cast<uint8_t>(0xC0 | ((src & 7) << 3) | (dst & 7)));
}

void Asm::ImulRegReg(Reg dst, Reg src) {
  Rex(true, dst, 0, src);
  buf_.push_back(0x0F);
  buf_.push_back(0xAF);
  buf_.push_back(static_cast<uint8_t>(0xC0 | ((dst & 7) << 3) | (src & 7)));
}

void Asm::IncReg(Reg r) {
  Rex(true, 0, 0, r);
  buf_.push_back(0xFF);
  buf_.push_back(static_cast<uint8_t>(0xC0 | (r & 7)));
}

void Asm::DecReg(Reg r) {
  Rex(true, 0, 0, r);
  buf_.push_back(0xFF);
  buf_.push_back(static_cast<uint8_t>(0xC8 | (r & 7)));
}

void Asm::DecMem(Reg base, int32_t disp, bool force_disp32) {
  Rex(true, 1, 0, base);
  buf_.push_back(0xFF);  // FF /1: dec r/m64
  Mem(1, base, disp, force_disp32);
}

void Asm::LeaRegMem(Reg dst, Reg base, int32_t disp, bool force_disp32) {
  Rex(true, dst, 0, base);
  buf_.push_back(0x8D);
  Mem(dst, base, disp, force_disp32);
}

void Asm::NegReg(Reg r) {
  Rex(true, 0, 0, r);
  buf_.push_back(0xF7);
  buf_.push_back(static_cast<uint8_t>(0xD8 | (r & 7)));
}

void Asm::SarImm8(Reg r, uint8_t imm) {
  Rex(true, 0, 0, r);
  buf_.push_back(0xC1);
  buf_.push_back(static_cast<uint8_t>(0xF8 | (r & 7)));
  buf_.push_back(imm);
}

void Asm::ShrImm8(Reg r, uint8_t imm) {
  Rex(true, 0, 0, r);
  buf_.push_back(0xC1);
  buf_.push_back(static_cast<uint8_t>(0xE8 | (r & 7)));
  buf_.push_back(imm);
}

void Asm::Cqo() {
  buf_.push_back(0x48);
  buf_.push_back(0x99);
}

void Asm::IdivReg(Reg r) {
  Rex(true, 0, 0, r);
  buf_.push_back(0xF7);
  buf_.push_back(static_cast<uint8_t>(0xF8 | (r & 7)));
}

void Asm::MovRegReg(Reg dst, Reg src) {
  Rex(true, src, 0, dst);
  buf_.push_back(0x89);
  buf_.push_back(static_cast<uint8_t>(0xC0 | ((src & 7) << 3) | (dst & 7)));
}

void Asm::Setcc(Cond cc, Reg r8) {
  assert(r8 <= RBX && "setcc helper limited to legacy low-byte registers");
  buf_.push_back(0x0F);
  buf_.push_back(static_cast<uint8_t>(0x90 | cc));
  buf_.push_back(static_cast<uint8_t>(0xC0 | (r8 & 7)));
}

void Asm::MovzxRegReg8(Reg dst, Reg src8) {
  Rex(true, dst, 0, src8);
  buf_.push_back(0x0F);
  buf_.push_back(0xB6);
  buf_.push_back(static_cast<uint8_t>(0xC0 | ((dst & 7) << 3) | (src8 & 7)));
}

void Asm::AndReg8(Reg dst8, Reg src8) {
  buf_.push_back(0x20);
  buf_.push_back(static_cast<uint8_t>(0xC0 | ((src8 & 7) << 3) | (dst8 & 7)));
}

void Asm::OrReg8(Reg dst8, Reg src8) {
  buf_.push_back(0x08);
  buf_.push_back(static_cast<uint8_t>(0xC0 | ((src8 & 7) << 3) | (dst8 & 7)));
}

// --- SSE2 ------------------------------------------------------------------
// F2-prefixed instructions: the mandatory prefix precedes REX.

void Asm::MovsdXmmMem(Xmm dst, Reg base, int32_t disp, bool force_disp32) {
  buf_.push_back(0xF2);
  Rex(false, dst, 0, base);
  buf_.push_back(0x0F);
  buf_.push_back(0x10);
  Mem(dst, base, disp, force_disp32);
}

void Asm::MovsdMemXmm(Reg base, int32_t disp, Xmm src, bool force_disp32) {
  buf_.push_back(0xF2);
  Rex(false, src, 0, base);
  buf_.push_back(0x0F);
  buf_.push_back(0x11);
  Mem(src, base, disp, force_disp32);
}

void Asm::MovsdXmmMemIdx(Xmm dst, Reg base, Reg index, uint8_t scale) {
  buf_.push_back(0xF2);
  Rex(false, dst, index, base);
  buf_.push_back(0x0F);
  buf_.push_back(0x10);
  MemIdx(dst, base, index, scale, 0);
}

void Asm::MovsdMemIdxXmm(Reg base, Reg index, uint8_t scale, Xmm src) {
  buf_.push_back(0xF2);
  Rex(false, src, index, base);
  buf_.push_back(0x0F);
  buf_.push_back(0x11);
  MemIdx(src, base, index, scale, 0);
}

void Asm::ArithsdXmmMem(uint8_t opcode, Xmm dst, Reg base, int32_t disp,
                        bool force_disp32) {
  buf_.push_back(0xF2);
  Rex(false, dst, 0, base);
  buf_.push_back(0x0F);
  buf_.push_back(opcode);
  Mem(dst, base, disp, force_disp32);
}

void Asm::ArithsdXmmMemIdx(uint8_t opcode, Xmm dst, Reg base, Reg index,
                           uint8_t scale) {
  buf_.push_back(0xF2);
  Rex(false, dst, index, base);
  buf_.push_back(0x0F);
  buf_.push_back(opcode);
  MemIdx(dst, base, index, scale, 0);
}

void Asm::CmpsdXmmMem(Xmm dst, Reg base, int32_t disp, FCmp pred,
                      bool force_disp32) {
  buf_.push_back(0xF2);
  Rex(false, dst, 0, base);
  buf_.push_back(0x0F);
  buf_.push_back(0xC2);
  Mem(dst, base, disp, force_disp32);
  buf_.push_back(pred);
}

void Asm::CmpsdXmmMemIdx(Xmm dst, Reg base, Reg index, uint8_t scale,
                         FCmp pred) {
  buf_.push_back(0xF2);
  Rex(false, dst, index, base);
  buf_.push_back(0x0F);
  buf_.push_back(0xC2);
  MemIdx(dst, base, index, scale, 0);
  buf_.push_back(pred);
}

void Asm::MovqRegXmm(Reg dst, Xmm src) {
  buf_.push_back(0x66);
  Rex(true, src, 0, dst);
  buf_.push_back(0x0F);
  buf_.push_back(0x7E);
  buf_.push_back(static_cast<uint8_t>(0xC0 | ((src & 7) << 3) | (dst & 7)));
}

void Asm::Cvtsi2sdXmmMem(Xmm dst, Reg base, int32_t disp, bool force_disp32) {
  buf_.push_back(0xF2);
  Rex(true, dst, 0, base);
  buf_.push_back(0x0F);
  buf_.push_back(0x2A);
  Mem(dst, base, disp, force_disp32);
}

void Asm::Cvttsd2siRegMem(Reg dst, Reg base, int32_t disp,
                          bool force_disp32) {
  buf_.push_back(0xF2);
  Rex(true, dst, 0, base);
  buf_.push_back(0x0F);
  buf_.push_back(0x2C);
  Mem(dst, base, disp, force_disp32);
}

size_t Asm::JccRel32(Cond cc) {
  buf_.push_back(0x0F);
  buf_.push_back(static_cast<uint8_t>(0x80 | cc));
  last_field_ = buf_.size();
  U32(0);
  return last_field_;
}

size_t Asm::JmpRel32() {
  buf_.push_back(0xE9);
  last_field_ = buf_.size();
  U32(0);
  return last_field_;
}

size_t Asm::Jcc8(Cond cc) {
  buf_.push_back(static_cast<uint8_t>(0x70 | cc));
  buf_.push_back(0);
  return buf_.size() - 1;
}

size_t Asm::Jmp8() {
  buf_.push_back(0xEB);
  buf_.push_back(0);
  return buf_.size() - 1;
}

void Asm::PatchRel8(size_t at) {
  ptrdiff_t rel = static_cast<ptrdiff_t>(buf_.size()) -
                  static_cast<ptrdiff_t>(at) - 1;
  assert(rel >= -128 && rel <= 127);
  buf_[at] = static_cast<uint8_t>(rel);
}

void Asm::Jmp8Back(size_t target) {
  ptrdiff_t rel = static_cast<ptrdiff_t>(target) -
                  static_cast<ptrdiff_t>(buf_.size()) - 2;
  assert(rel >= -128 && rel < 0);
  buf_.push_back(0xEB);
  buf_.push_back(static_cast<uint8_t>(rel));
}

void Asm::Jcc8Back(Cond cc, size_t target) {
  ptrdiff_t rel = static_cast<ptrdiff_t>(target) -
                  static_cast<ptrdiff_t>(buf_.size()) - 2;
  assert(rel >= -128 && rel < 0);
  buf_.push_back(static_cast<uint8_t>(0x70 | cc));
  buf_.push_back(static_cast<uint8_t>(rel));
}

void Asm::PushR12() {
  buf_.push_back(0x41);
  buf_.push_back(0x54);
}

void Asm::PopR12() {
  buf_.push_back(0x41);
  buf_.push_back(0x5C);
}

void Asm::Ret() { buf_.push_back(0xC3); }

void Asm::JmpReg(Reg r) {
  Rex(false, 4, 0, r);
  buf_.push_back(0xFF);
  buf_.push_back(static_cast<uint8_t>(0xE0 | (r & 7)));
}

void Asm::CallReg(Reg r) {
  Rex(false, 2, 0, r);
  buf_.push_back(0xFF);
  buf_.push_back(static_cast<uint8_t>(0xD0 | (r & 7)));
}

// ---------------------------------------------------------------------------
// CodeBuffer
// ---------------------------------------------------------------------------

CodeBuffer::~CodeBuffer() {
#if QC_JIT_HAVE_MMAP
  if (base_ != nullptr) ::munmap(base_, map_size_);
#endif
}

CodeBuffer::CodeBuffer(CodeBuffer&& o) noexcept
    : base_(o.base_), map_size_(o.map_size_), size_(o.size_) {
  o.base_ = nullptr;
  o.map_size_ = 0;
  o.size_ = 0;
}

CodeBuffer& CodeBuffer::operator=(CodeBuffer&& o) noexcept {
  if (this != &o) {
#if QC_JIT_HAVE_MMAP
    if (base_ != nullptr) ::munmap(base_, map_size_);
#endif
    base_ = o.base_;
    map_size_ = o.map_size_;
    size_ = o.size_;
    o.base_ = nullptr;
    o.map_size_ = 0;
    o.size_ = 0;
  }
  return *this;
}

bool CodeBuffer::Install(const std::vector<uint8_t>& code) {
#if QC_JIT_HAVE_MMAP
  if (code.empty()) return false;
  long page = ::sysconf(_SC_PAGESIZE);
  if (page <= 0) page = 4096;
  size_t map_size = (code.size() + page - 1) & ~static_cast<size_t>(page - 1);
  void* mem = FaultPoint("jit_mmap")
                  ? MAP_FAILED
                  : ::mmap(nullptr, map_size, PROT_READ | PROT_WRITE,
                           MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
  if (mem == MAP_FAILED) return false;
  std::memcpy(mem, code.data(), code.size());
  if (FaultPoint("jit_mprotect") ||
      ::mprotect(mem, map_size, PROT_READ | PROT_EXEC) != 0) {
    ::munmap(mem, map_size);
    return false;  // W^X denied (e.g. noexec sandbox): degrade
  }
  base_ = static_cast<uint8_t*>(mem);
  map_size_ = map_size;
  size_ = code.size();
  return true;
#else
  (void)code;
  return false;
#endif
}

// ---------------------------------------------------------------------------
// Stitching
// ---------------------------------------------------------------------------

namespace {

// Exit thunk: mov eax, <pc>; pop r12; ret. Built with the encoder so the
// layout pass (which only needs the size) and the emit pass can never
// disagree about the byte count.
std::vector<uint8_t> BuildExitStub(uint32_t pc) {
  Asm a;
  a.MovImm32(RAX, pc);
  a.PopR12();
  a.Ret();
  return a.bytes();
}

// Prologue (the trampoline target): uint32_t fn(Slot* regs /*rdi*/,
// const void* target /*rsi*/) — save r12, bind the register file, tail
// into the requested entry point. Exit stubs undo it.
std::vector<uint8_t> BuildPrologue() {
  Asm a;
  a.PushR12();
  a.MovRegReg(R12, RDI);
  a.JmpReg(RSI);
  return a.bytes();
}

size_t ExitStubSize() {
  static const size_t size = BuildExitStub(0).size();
  return size;
}

void EmitExitStub(std::vector<uint8_t>& out, uint32_t pc) {
  std::vector<uint8_t> stub = BuildExitStub(pc);
  out.insert(out.end(), stub.begin(), stub.end());
}

void Patch32(std::vector<uint8_t>& out, size_t at, uint32_t v) {
  out[at] = static_cast<uint8_t>(v);
  out[at + 1] = static_cast<uint8_t>(v >> 8);
  out[at + 2] = static_cast<uint8_t>(v >> 16);
  out[at + 3] = static_cast<uint8_t>(v >> 24);
}

void Patch64(std::vector<uint8_t>& out, size_t at, uint64_t v) {
  Patch32(out, at, static_cast<uint32_t>(v));
  Patch32(out, at + 4, static_cast<uint32_t>(v >> 32));
}

}  // namespace

StitchResult StitchProgram(const BytecodeProgram& prog) {
  StitchResult res;
  bool layout_ok = RuntimeLayoutUsable();
  size_t n = prog.code.size();
  res.entry.assign(n, kNoEntry);

  // Template selection is per instruction, not just per opcode: probe
  // instructions pick the inline-i64 or generic-call variant on their key
  // kind (templates.h SelectTemplate). Null means deopt.
  std::vector<const OpTemplate*> sel(n, nullptr);
  for (size_t pc = 0; pc < n; ++pc) {
    sel[pc] = SelectTemplate(prog.code[pc], layout_ok);
  }

  // Sort instructions stay native only when every pc of the comparator
  // subroutine stitched natively — the sort helper drives the comparator
  // segment through JitProgram::Run and has no way to continue a deopt.
  // The compiler emits [kJmp-skip, comparator..., kRet, sort], so the
  // region [insn.c, sort pc) is exactly the subroutine, nested
  // subroutines included.
  // Sites are fully materialized here, before any patching — like
  // like_patterns, the vector never grows once an address has been baked
  // into code, so there is no cross-loop size invariant to get wrong.
  std::vector<uint32_t> site_of(n, kNoEntry);
  for (size_t pc = 0; pc < n; ++pc) {
    const Insn& insn = prog.code[pc];
    BcOp op = static_cast<BcOp>(insn.op);
    if (op != BcOp::kArrSort && op != BcOp::kListSort) continue;
    if (sel[pc] == nullptr) continue;
    size_t entry = insn.c;
    bool ok = entry < pc;
    for (size_t t = entry; ok && t < pc; ++t) ok = sel[t] != nullptr;
    if (!ok) {
      sel[pc] = nullptr;  // comparator would deopt: the sort deopts whole
      continue;
    }
    JitSortSite site;
    site.obj_reg = insn.a;
    site.n_reg = insn.b;
    site.is_list = op == BcOp::kListSort;
    site.par_safe = insn.n != 0;
    site.cmp_entry = static_cast<uint32_t>(entry);
    site.ps = prog.extra.data() + static_cast<uint32_t>(insn.d);
    site.num_regs = prog.num_regs;
    site.gov_reg = prog.gov_reg;
    site_of[pc] = static_cast<uint32_t>(res.sort_sites.size());
    res.sort_sites.push_back(site);
  }

  // Layout pass: assign per-pc blob offsets (template sizes are fixed), a
  // fall-through exit stub at every segment end, then one deopt thunk per
  // distinct non-native branch target.
  const std::vector<uint8_t> prologue = BuildPrologue();
  size_t off = prologue.size();
  for (size_t pc = 0; pc < n; ++pc) {
    if (sel[pc] == nullptr) continue;
    res.entry[pc] = static_cast<uint32_t>(off);
    off += sel[pc]->size;
    ++res.num_native;
    bool segment_end = pc + 1 >= n || sel[pc + 1] == nullptr;
    if (segment_end && pc + 1 < n) off += ExitStubSize();
  }
  if (res.num_native == 0) return res;

  // Branch targets that need a deopt thunk (target pc has no native code).
  // Offsets are assigned — and the thunks later emitted — in ascending
  // target order.
  std::vector<uint8_t> needs_thunk(n, 0);
  for (size_t pc = 0; pc < n; ++pc) {
    if (sel[pc] == nullptr) continue;
    const OpTemplate& t = *sel[pc];
    const Insn& insn = prog.code[pc];
    for (uint8_t i = 0; i < t.num_patches; ++i) {
      if (t.patches[i].kind != PatchKind::kJumpD) continue;
      uint32_t target = static_cast<uint32_t>(pc + 1 + insn.d);
      if (res.entry[target] == kNoEntry) needs_thunk[target] = 1;
    }
  }
  std::vector<uint32_t> thunk_of(n, kNoEntry);
  for (size_t t = 0; t < n; ++t) {
    if (!needs_thunk[t]) continue;
    thunk_of[t] = static_cast<uint32_t>(off);
    off += ExitStubSize();
  }

  // Governance abort thunk: back-edge safepoint templates branch here when
  // qc_gov_safepoint reports a trip; the thunk returns the kAbortPc
  // sentinel. Their slow path reaches the GovState* through
  // [countdown slot - 8], which is only valid under the reserved-register
  // adjacency the bytecode compiler guarantees.
  assert(prog.gov_cnt_reg == prog.gov_reg + 1 &&
         "governed templates assume gov_cnt_reg == gov_reg + 1");
  uint32_t abort_thunk = kNoEntry;
  for (size_t pc = 0; pc < n && abort_thunk == kNoEntry; ++pc) {
    if (sel[pc] == nullptr) continue;
    const OpTemplate& t = *sel[pc];
    for (uint8_t i = 0; i < t.num_patches; ++i) {
      if (t.patches[i].kind == PatchKind::kJumpAbort) {
        abort_thunk = static_cast<uint32_t>(off);
        off += ExitStubSize();
        break;
      }
    }
  }

  // Precompile LIKE patterns (kPatternC patches point at these).
  res.like_patterns.reserve(prog.patterns.size());
  for (const std::string& p : prog.patterns) {
    res.like_patterns.push_back({SplitLikePattern(p)});
  }

  // Emit pass.
  std::vector<uint8_t>& out = res.code;
  out.reserve(off);
  out.insert(out.end(), prologue.begin(), prologue.end());

  for (size_t pc = 0; pc < n; ++pc) {
    if (sel[pc] == nullptr) continue;
    const OpTemplate& t = *sel[pc];
    const Insn& insn = prog.code[pc];
    size_t start = out.size();
    assert(start == res.entry[pc]);
    out.insert(out.end(), t.code, t.code + t.size);
    for (uint8_t i = 0; i < t.num_patches; ++i) {
      size_t at = start + t.patches[i].offset;
      switch (t.patches[i].kind) {
        case PatchKind::kSlotA:
          Patch32(out, at, insn.a * 8u);
          break;
        case PatchKind::kSlotB:
          Patch32(out, at, insn.b * 8u);
          break;
        case PatchKind::kSlotC:
          Patch32(out, at, insn.c * 8u);
          break;
        case PatchKind::kSlotD:
          Patch32(out, at, static_cast<uint32_t>(insn.d) * 8u);
          break;
        case PatchKind::kFieldB:
          Patch32(out, at, insn.b * 8u);
          break;
        case PatchKind::kFieldC:
          Patch32(out, at, insn.c * 8u);
          break;
        case PatchKind::kPtrB:
          Patch64(out, at,
                  reinterpret_cast<uint64_t>(prog.ptrs[insn.b]));
          break;
        case PatchKind::kConstB:
          Patch64(out, at,
                  static_cast<uint64_t>(prog.consts[insn.b].i));
          break;
        case PatchKind::kExtraA:
          Patch64(out, at,
                  reinterpret_cast<uint64_t>(prog.extra.data() + insn.a));
          break;
        case PatchKind::kExtraB:
          Patch64(out, at,
                  reinterpret_cast<uint64_t>(prog.extra.data() + insn.b));
          break;
        case PatchKind::kImmN:
          Patch32(out, at, insn.n);
          break;
        case PatchKind::kImmN8:
          Patch32(out, at, static_cast<uint32_t>(insn.n) * 8u);
          break;
        case PatchKind::kImmCMask:
          Patch32(out, at, insn.c);
          break;
        case PatchKind::kPatternC:
          Patch64(out, at,
                  reinterpret_cast<uint64_t>(&res.like_patterns[insn.c]));
          break;
        case PatchKind::kSortSite:
          assert(site_of[pc] != kNoEntry);
          Patch64(out, at,
                  reinterpret_cast<uint64_t>(&res.sort_sites[site_of[pc]]));
          break;
        case PatchKind::kGovCnt:
          Patch32(out, at, prog.gov_cnt_reg * 8u);
          break;
        case PatchKind::kJumpAbort:
          assert(abort_thunk != kNoEntry);
          Patch32(out, at, abort_thunk - static_cast<uint32_t>(at) - 4);
          break;
        case PatchKind::kJumpD: {
          uint32_t target = static_cast<uint32_t>(pc + 1 + insn.d);
          uint32_t dest = res.entry[target] != kNoEntry ? res.entry[target]
                                                        : thunk_of[target];
          Patch32(out, at,
                  dest - static_cast<uint32_t>(at) - 4);
          break;
        }
      }
    }
    bool segment_end = pc + 1 >= n || sel[pc + 1] == nullptr;
    if (segment_end && pc + 1 < n) {
      EmitExitStub(out, static_cast<uint32_t>(pc + 1));
    }
  }
  for (size_t t = 0; t < n; ++t) {
    if (thunk_of[t] == kNoEntry) continue;
    assert(out.size() == thunk_of[t]);
    EmitExitStub(out, static_cast<uint32_t>(t));
  }
  if (abort_thunk != kNoEntry) {
    assert(out.size() == abort_thunk);
    EmitExitStub(out, 0xFFFFFFFEu);  // jit::kAbortPc (engine.h)
  }
  assert(out.size() == off);
  return res;
}

}  // namespace qc::exec::jit
