#include "jit/engine.h"

#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <string>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/mman.h>
#endif

#include "analysis/jit_audit.h"
#include "common/env.h"
#include "jit/templates.h"
#include "telemetry/log.h"

// The backend emits x86-64 SysV machine code and enters it through a
// plain function-pointer call; both are gated here. Everything else in
// src/jit/ is portable C++ (it only fills byte vectors).
#if defined(__x86_64__) && (defined(__unix__) || defined(__APPLE__))
#define QC_JIT_SUPPORTED 1
#else
#define QC_JIT_SUPPORTED 0
#endif

namespace qc::exec::jit {

namespace {

#if QC_JIT_SUPPORTED
// Can this process map and then execute a page? Sandboxes and hardened
// kernels may refuse PROT_EXEC; probe once instead of failing later.
bool ExecPagesGrantable() {
  static const bool ok = [] {
    void* p = ::mmap(nullptr, 4096, PROT_READ | PROT_WRITE,
                     MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
    if (p == MAP_FAILED) return false;
    bool exec_ok = ::mprotect(p, 4096, PROT_READ | PROT_EXEC) == 0;
    ::munmap(p, 4096);
    return exec_ok;
  }();
  return ok;
}
#endif

}  // namespace

bool JitAvailable() {
#if QC_JIT_SUPPORTED
  if (EnvFlagSet("QC_JIT_DISABLE")) return false;
  return ExecPagesGrantable();
#else
  return false;
#endif
}

const char* JitFallbackName(JitFallback f) {
  switch (f) {
    case JitFallback::kNone: return "none";
    case JitFallback::kDisabledByEnv: return "disabled_by_env";
    case JitFallback::kPlatformUnsupported: return "platform_unsupported";
    case JitFallback::kExecPagesDenied: return "exec_pages_denied";
    case JitFallback::kNothingTemplated: return "nothing_templated";
    case JitFallback::kInstallFailed: return "install_failed";
    case JitFallback::kAuditFailed: return "audit_failed";
  }
  return "unknown";
}

JitFallback JitUnavailableReason() {
#if QC_JIT_SUPPORTED
  if (EnvFlagSet("QC_JIT_DISABLE")) return JitFallback::kDisabledByEnv;
  return ExecPagesGrantable() ? JitFallback::kNone
                              : JitFallback::kExecPagesDenied;
#else
  return JitFallback::kPlatformUnsupported;
#endif
}

std::unique_ptr<JitProgram> JitProgram::Compile(const BytecodeProgram& prog,
                                                JitFallback* why) {
  JitFallback local = JitFallback::kNone;
  JitFallback& reason = why != nullptr ? *why : local;
  reason = JitFallback::kNone;
  if (!JitAvailable() || prog.code.empty()) {
    reason = JitAvailable() ? JitFallback::kNothingTemplated
                            : JitUnavailableReason();
    return nullptr;
  }
  StitchResult stitched = StitchProgram(prog);
  if (stitched.num_native == 0) {
    reason = JitFallback::kNothingTemplated;
    return nullptr;
  }
  if (analysis::VerifyEnabled()) {
    // Template-table shape is process-wide; audit it once, loudly — a bad
    // template poisons every program it is ever stitched into.
    static std::once_flag template_audit_once;
    std::call_once(template_audit_once, [] {
      analysis::VerifyResult tres = analysis::AuditTemplates();
      if (!tres.ok()) {
        std::fprintf(stderr, "jit template audit: %zu violation(s):\n%s",
                     tres.violations.size(), tres.Report().c_str());
        std::abort();
      }
    });
    // Per-program image audit, before any byte becomes executable.
    analysis::VerifyResult ares = analysis::AuditStitch(prog, stitched);
    if (!ares.ok()) {
      std::fprintf(stderr, "jit stitch audit: %zu violation(s):\n%s",
                   ares.violations.size(), ares.Report().c_str());
      reason = JitFallback::kAuditFailed;
      return nullptr;
    }
  }
  if (EnvLevel("QC_JIT_STATS") >= 2) {
    // Deopt-site histogram: which opcodes lack native code in this program.
    int counts[static_cast<int>(BcOp::kNumOps)] = {};
    for (size_t pc = 0; pc < prog.code.size(); ++pc) {
      if (stitched.entry[pc] == kNoEntry) ++counts[prog.code[pc].op];
    }
    std::string pcs;
    for (int op = 0; op < static_cast<int>(BcOp::kNumOps); ++op) {
      if (counts[op] > 0) {
        if (!pcs.empty()) pcs += ' ';
        pcs += BcOpName(static_cast<BcOp>(op));
        pcs += '=';
        pcs += std::to_string(counts[op]);
      }
    }
    telemetry::Log(telemetry::LogLevel::kInfo, "jit_deopt_pcs",
                   {{"pcs", std::move(pcs)}});
  }
  std::unique_ptr<JitProgram> jp(new JitProgram());
  if (!jp->buf_.Install(stitched.code)) {  // W^X refused
    reason = JitFallback::kInstallFailed;
    return nullptr;
  }
  if (analysis::VerifyEnabled()) {
    analysis::VerifyResult wres =
        analysis::AuditWx(jp->buf_.base(), jp->buf_.size());
    if (!wres.ok()) {
      std::fprintf(stderr, "jit w^x audit:\n%s", wres.Report().c_str());
      reason = JitFallback::kAuditFailed;
      return nullptr;
    }
  }
  jp->enter_ = reinterpret_cast<EnterFn>(
      reinterpret_cast<uintptr_t>(jp->buf_.base()));
  jp->entry_ = std::move(stitched.entry);
  // Element addresses survive the vector moves, so the imm64 patches the
  // installed code carries stay valid.
  jp->like_patterns_ = std::move(stitched.like_patterns);
  jp->sort_sites_ = std::move(stitched.sort_sites);
  for (JitSortSite& s : jp->sort_sites_) s.jp = jp.get();
  jp->num_native_ = stitched.num_native;
  return jp;
}

}  // namespace qc::exec::jit
