// Machine-code emission for the copy-and-patch JIT (src/jit/README.md).
//
// Three pieces live here:
//
//   Asm          a deliberately minimal x86-64 instruction encoder over a
//                growable byte buffer — just the addressing modes and
//                opcodes the per-opcode templates (templates.cc) need. It
//                records the buffer offset of the last emitted disp32 /
//                imm64 / rel32 field so the template builder can turn that
//                field into a patch point.
//
//   StitchProgram  copies the pre-built per-opcode templates into one
//                contiguous code blob in bytecode order, fills every patch
//                point from the instruction operands (register-file
//                displacements, pre-resolved pointers, constants), and
//                resolves branch fixups: a branch whose target has native
//                code becomes a direct rel32 jump, a branch into
//                non-templated territory lands on a synthesized exit thunk
//                that returns the target pc to the interpreter (the deopt
//                protocol, see engine.h).
//
//   CodeBuffer   W^X executable memory: the blob is written into a
//                PROT_READ|PROT_WRITE anonymous mapping which is then
//                flipped to PROT_READ|PROT_EXEC — the pages are never
//                writable and executable at the same time. Platforms where
//                the mapping or the flip fails simply report failure and
//                the engine degrades to the bytecode VM.
#ifndef QC_JIT_EMITTER_H_
#define QC_JIT_EMITTER_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "exec/bytecode.h"

namespace qc::exec::jit {

// x86-64 general-purpose registers (SysV numbering).
enum Reg : uint8_t {
  RAX = 0, RCX = 1, RDX = 2, RBX = 3, RSP = 4, RBP = 5, RSI = 6, RDI = 7,
  R8 = 8, R9 = 9, R10 = 10, R11 = 11, R12 = 12, R13 = 13, R14 = 14, R15 = 15,
};

// Register conventions inside JIT'd code:
//   r12  base of the VM register file (Slot*) for the whole activation
//   every other caller-saved register (rax, rcx, rdx, rsi, rdi, r8-r11,
//   xmm0) is scratch; rbx/rbp/r13-r15 are never touched
// Templates may call C++ helpers (strings, log/emit staging): r12 is
// callee-saved so the register file survives, the scratch set is exactly
// the SysV caller-saved set, and rsp is 16-byte aligned inside templates
// (the prologue's push r12 realigns after the entry call), so a bare
// `call` is ABI-clean. Helper addresses are materialized as imm64 + call
// through a register — the mmap'd blob can land anywhere in the address
// space, so rel32 calls into the C++ text segment may not reach.
constexpr Reg kSlotBase = R12;

enum Xmm : uint8_t { XMM0 = 0, XMM1 = 1 };

// x86 condition-code nibbles (used in setcc / jcc encodings).
enum Cond : uint8_t {
  kCondB = 0x2,   // unsigned <
  kCondAE = 0x3,  // unsigned >=
  kCondE = 0x4,
  kCondNE = 0x5,
  kCondBE = 0x6,  // unsigned <=
  kCondA = 0x7,   // unsigned >
  kCondL = 0xC,
  kCondGE = 0xD,
  kCondLE = 0xE,
  kCondG = 0xF,
};

// SSE2 cmpsd predicates (ordered/unordered semantics match C++ scalar
// comparisons: EQ/LT/LE are false on NaN, NEQ is true on NaN).
enum FCmp : uint8_t { kFEq = 0, kFLt = 1, kFLe = 2, kFNeq = 4 };

class Asm {
 public:
  const std::vector<uint8_t>& bytes() const { return buf_; }
  size_t size() const { return buf_.size(); }

  // Offset of the last emitted disp32/imm64/rel32 field (patch-point hook).
  size_t last_field() const { return last_field_; }

  // --- moves -------------------------------------------------------------
  // mov r64, [base + disp]. force_disp32 keeps the displacement patchable.
  void MovRegMem(Reg dst, Reg base, int32_t disp, bool force_disp32 = false);
  // mov r32, [base + disp] (zero-extends into the full register)
  void Mov32RegMem(Reg dst, Reg base, int32_t disp);
  // mov [base + disp], r64
  void MovMemReg(Reg base, int32_t disp, Reg src, bool force_disp32 = false);
  // mov r64, [base + index*2^scale + disp]
  void MovRegMemIdx(Reg dst, Reg base, Reg index, uint8_t scale,
                    int32_t disp = 0);
  // mov [base + index*2^scale + disp], r64
  void MovMemIdxReg(Reg base, Reg index, uint8_t scale, int32_t disp, Reg src);
  // movsxd r64, dword [base + index*4]
  void MovsxdRegMemIdx(Reg dst, Reg base, Reg index);
  // movabs r64, imm64 (imm recorded as patchable field)
  void MovImm64(Reg dst, uint64_t imm);
  // mov r32, imm32 (zero-extends)
  void MovImm32(Reg dst, uint32_t imm);
  // mov r64, sign-extended imm32
  void MovImmSext32(Reg dst, int32_t imm);

  // --- integer ALU -------------------------------------------------------
  void AddRegMem(Reg dst, Reg base, int32_t disp, bool force_disp32 = false);
  void SubRegMem(Reg dst, Reg base, int32_t disp, bool force_disp32 = false);
  void ImulRegMem(Reg dst, Reg base, int32_t disp, bool force_disp32 = false);
  void CmpRegMem(Reg dst, Reg base, int32_t disp, bool force_disp32 = false);
  void AndRegMem(Reg dst, Reg base, int32_t disp, bool force_disp32 = false);
  void SubRegMemIdx(Reg dst, Reg base, Reg index, uint8_t scale);
  void AddMemReg(Reg base, int32_t disp, Reg src, bool force_disp32 = false);
  void AddMemIdxReg(Reg base, Reg index, uint8_t scale, int32_t disp, Reg src);
  void CmpRegReg(Reg a, Reg b);
  void TestRegReg(Reg a, Reg b);
  void XorRegReg(Reg dst, Reg src);  // xor r64, r64
  void XorReg32(Reg r);        // xor r32, r32 (zero)
  void AndImm8(Reg r, uint8_t imm);  // and r32, imm8
  void AddImm8(Reg r, int8_t imm);   // add r64, sign-extended imm8
  void AddRegReg(Reg dst, Reg src);  // add r64, r64
  void SubRegReg(Reg dst, Reg src);
  void AndRegReg(Reg dst, Reg src);
  void ImulRegReg(Reg dst, Reg src);
  void IncReg(Reg r);
  void DecReg(Reg r);
  // dec qword [base + disp] (sets flags; the governance countdown check)
  void DecMem(Reg base, int32_t disp, bool force_disp32 = false);
  // lea r64, [base + disp]
  void LeaRegMem(Reg dst, Reg base, int32_t disp, bool force_disp32 = false);
  void NegReg(Reg r);
  void SarImm8(Reg r, uint8_t imm);
  void ShrImm8(Reg r, uint8_t imm);
  void Cqo();
  void IdivReg(Reg r);
  void MovRegReg(Reg dst, Reg src);
  void Setcc(Cond cc, Reg r8);       // setcc r8 (low byte, r8 must be a..d)
  void MovzxRegReg8(Reg dst, Reg src8);
  void AndReg8(Reg dst8, Reg src8);  // and dst8, src8
  void OrReg8(Reg dst8, Reg src8);

  // --- SSE2 --------------------------------------------------------------
  void MovsdXmmMem(Xmm dst, Reg base, int32_t disp, bool force_disp32 = false);
  void MovsdMemXmm(Reg base, int32_t disp, Xmm src, bool force_disp32 = false);
  void MovsdXmmMemIdx(Xmm dst, Reg base, Reg index, uint8_t scale);
  void MovsdMemIdxXmm(Reg base, Reg index, uint8_t scale, Xmm src);
  // F2 0F 58/5C/59/5E: addsd/subsd/mulsd/divsd xmm, [base+disp]
  void ArithsdXmmMem(uint8_t opcode, Xmm dst, Reg base, int32_t disp,
                     bool force_disp32 = false);
  void ArithsdXmmMemIdx(uint8_t opcode, Xmm dst, Reg base, Reg index,
                        uint8_t scale);
  void CmpsdXmmMem(Xmm dst, Reg base, int32_t disp, FCmp pred,
                   bool force_disp32 = false);
  void CmpsdXmmMemIdx(Xmm dst, Reg base, Reg index, uint8_t scale, FCmp pred);
  void MovqRegXmm(Reg dst, Xmm src);
  void Cvtsi2sdXmmMem(Xmm dst, Reg base, int32_t disp,
                      bool force_disp32 = false);
  void Cvttsd2siRegMem(Reg dst, Reg base, int32_t disp,
                       bool force_disp32 = false);

  // --- control -----------------------------------------------------------
  // jcc rel32 / jmp rel32 with a zero displacement; returns the rel32
  // field offset (also recorded as last_field()).
  size_t JccRel32(Cond cc);
  size_t JmpRel32();
  // Short intra-template branches, patched via here()/PatchRel8.
  size_t Jcc8(Cond cc);
  size_t Jmp8();
  void PatchRel8(size_t at);  // retarget the rel8 at `at` to the current end
  // Backward short branches to an already-emitted offset (template-local
  // loops, e.g. the hash-chain walk and the log-append copy loop).
  size_t here() const { return buf_.size(); }
  void Jmp8Back(size_t target);
  void Jcc8Back(Cond cc, size_t target);
  void PushR12();
  void PopR12();
  void Ret();
  void JmpReg(Reg r);
  void CallReg(Reg r);

  void Byte(uint8_t b) { buf_.push_back(b); }
  void U32(uint32_t v);
  void U64(uint64_t v);

 private:
  void Rex(bool w, uint8_t reg, uint8_t index, uint8_t base);
  // modrm(+sib+disp) for [base + disp] with /reg field `reg`.
  void Mem(uint8_t reg, Reg base, int32_t disp, bool force_disp32);
  // modrm+sib(+disp) for [base + index*2^scale + disp].
  void MemIdx(uint8_t reg, Reg base, Reg index, uint8_t scale, int32_t disp);

  std::vector<uint8_t> buf_;
  size_t last_field_ = 0;
};

// Executable memory holding one stitched program. Movable, not copyable.
class CodeBuffer {
 public:
  CodeBuffer() = default;
  ~CodeBuffer();
  CodeBuffer(CodeBuffer&& o) noexcept;
  CodeBuffer& operator=(CodeBuffer&& o) noexcept;
  CodeBuffer(const CodeBuffer&) = delete;
  CodeBuffer& operator=(const CodeBuffer&) = delete;

  // Maps RW memory, copies `code`, then remaps RX (W^X: never RWX).
  // Returns false — leaving the buffer empty — when the platform refuses.
  bool Install(const std::vector<uint8_t>& code);

  const uint8_t* base() const { return base_; }
  size_t size() const { return size_; }

 private:
  uint8_t* base_ = nullptr;
  size_t map_size_ = 0;
  size_t size_ = 0;
};

// Native offset table entry for "pc has no native code".
constexpr uint32_t kNoEntry = 0xFFFFFFFFu;

// A LIKE pattern pre-split into its '%'-delimited literal segments at
// stitch time. The kStrLike template passes one of these to its helper, so
// the per-row SplitLikePattern allocation the VM pays disappears from
// JIT'd code — the JIT "compiles" the pattern.
struct LikePattern {
  std::vector<std::string> segs;
};

class JitProgram;  // engine.h

// One kArrSort/kListSort instruction's resolved descriptor (kSortSite
// patches point at these). Created at stitch time — only when the whole
// comparator subroutine [cmp_entry, its kRet] stitched natively — and
// completed after installation: `jp` is backpatched once the code buffer
// exists, `par` is bound by the owning Interpreter when it has a worker
// pool. The sort helper (templates.cc) drives the comparator segment
// through jp->Run, so a JIT'd sort executes with zero deopts.
struct JitSortSite {
  uint32_t obj_reg = 0;    // register holding the RtArray* / RtList*
  uint32_t n_reg = 0;      // kArrSort: register holding the element count
  bool is_list = false;    // kListSort sorts the list's full extent
  bool par_safe = false;   // compiler-proven pure comparator (insn.n)
  uint32_t cmp_entry = 0;  // comparator subroutine entry pc
  const uint32_t* ps = nullptr;  // {param0, param1, result} registers
  uint32_t num_regs = 0;         // register-file size (parallel ctx copies)
  uint32_t gov_reg = 0;    // reserved register holding the GovState* (the
                           // sort helper wraps comparators in GovernedCmp)
  const JitProgram* jp = nullptr;      // backpatched after Install
  parallel::Engine* par = nullptr;     // null: sorts stay sequential
};

// A stitched (but not yet installed) program image.
struct StitchResult {
  std::vector<uint8_t> code;    // prologue + instruction code + exit thunks
  std::vector<uint32_t> entry;  // per-pc blob offset, kNoEntry when deopt
  int num_native = 0;           // instructions that got native code
  // One entry per prog.patterns element; kPatternC patches point into this
  // vector, so its owner (JitProgram) must keep it alive with the code.
  std::vector<LikePattern> like_patterns;
  // One entry per natively-stitched sort instruction, in pc order;
  // kSortSite patches point into this vector (same ownership rule as
  // like_patterns — reserved up front so element addresses never move).
  std::vector<JitSortSite> sort_sites;
};

// Stitches every templated instruction of `prog` into one blob. Offsets in
// `entry` are valid entry points for any templated pc (re-entry after a
// deopt). Returns num_native == 0 when nothing was templated.
StitchResult StitchProgram(const BytecodeProgram& prog);

}  // namespace qc::exec::jit

#endif  // QC_JIT_EMITTER_H_
