// In-process copy-and-patch JIT backend for the bytecode VM.
//
// A JitProgram is the native companion of one BytecodeProgram: every
// instruction with a template (templates.h) gets stitched machine code and
// a per-pc entry offset; everything else deopts. Execution is a hybrid
// loop driven by BytecodeVM::Exec:
//
//   pc = 0
//   while pc != kRetPc:
//     if jit has native code at pc:   pc = jit.Run(regs, pc)    // native
//     else:                          pc = vm.interpret from pc  // until the
//                                    // next native entry (or kRet)
//
// The deopt protocol is symmetric and state-free: all VM state lives in
// the Slot register file (plus the shared runtime heaps), native code
// reads and writes exactly the same slots the interpreter does, so
// crossing the boundary in either direction — mid-loop, mid-expression,
// per instruction — needs no spilling or reconstruction beyond the pc.
// Exit stubs return the interpreter pc to resume at; kRetPc means the
// program (or subroutine/morsel fragment) executed its kRet.
//
// Morsel parallelism composes for free: worker threads run the same
// hybrid loop against their private MorselState register files — the
// native code is immutable and position-independent with respect to the
// register file (its base is the runtime argument).
#ifndef QC_JIT_ENGINE_H_
#define QC_JIT_ENGINE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "exec/bytecode.h"
#include "jit/emitter.h"

namespace qc::exec::jit {

// Sentinel "pc" meaning the program/fragment returned (executed kRet).
constexpr uint32_t kRetPc = 0xFFFFFFFFu;

// Sentinel "pc" meaning a governance safepoint tripped (cancellation,
// deadline, memory budget — exec/governor.h): the query must unwind. Both
// the VM's fused back-edge checks and the JIT's abort thunk return it; the
// hybrid driver treats it like kRetPc and the engine surfaces the
// structured QueryStatus.
constexpr uint32_t kAbortPc = 0xFFFFFFFEu;

// True when JIT'd code can run here: x86-64 SysV build, executable pages
// grantable at runtime, and QC_JIT_DISABLE not set. The platform probe is
// cached; the environment knob is re-read so tests can flip it.
bool JitAvailable();

// Why a Compile() returned null — the silent-degradation paths, made
// visible (telemetry + one-time notice). Keep in sync with
// JitFallbackName().
enum class JitFallback : int {
  kNone = 0,                // it didn't: the program is JIT'd
  kDisabledByEnv = 1,       // QC_JIT_DISABLE set
  kPlatformUnsupported = 2, // not an x86-64 SysV build
  kExecPagesDenied = 3,     // mmap/mprotect refused executable pages
  kNothingTemplated = 4,    // no instruction of the program has a template
  kInstallFailed = 5,       // W^X install of the stitched code failed
  kAuditFailed = 6,         // stitch/W^X audit rejected the image
                            // (src/analysis/jit_audit.h; QC_VERIFY gating)
};

const char* JitFallbackName(JitFallback f);

// The reason JitAvailable() is currently false (kNone when it is true).
JitFallback JitUnavailableReason();

class JitProgram {
 public:
  // Stitches and installs native code for `prog`. Returns null — callers
  // degrade to the plain bytecode VM — when JIT is unavailable, nothing
  // was templated, or executable memory was refused. The program holds
  // raw pointers resolved from `prog` (columns, constants), so it is
  // valid exactly as long as `prog` and its database are. `why` (optional)
  // receives the structured fallback reason on null return.
  static std::unique_ptr<JitProgram> Compile(const BytecodeProgram& prog,
                                             JitFallback* why = nullptr);

  bool HasEntry(uint32_t pc) const { return entry_[pc] != kNoEntry; }

  // Enters native code at `pc` (which must have an entry) with the given
  // register file; returns the next interpreter pc, or kRetPc. Thread-safe:
  // all mutable state is behind `regs`.
  uint32_t Run(Slot* regs, uint32_t pc) const {
    return enter_(regs, buf_.base() + entry_[pc]);
  }

  // Introspection (tests, bench reporting).
  int num_native() const { return num_native_; }
  int total_pcs() const { return static_cast<int>(entry_.size()); }
  size_t code_bytes() const { return buf_.size(); }

  // QC_JIT_STATS telemetry: each interpreted run of the hybrid driver —
  // every transition out of native code other than kRet — counts as one
  // deopt. Thread-safe (morsel workers share the program), monotone across
  // Run()s; callers snapshot-and-diff per execution.
  void CountDeopt() const { deopts_.fetch_add(1, std::memory_order_relaxed); }
  uint64_t deopts() const { return deopts_.load(std::memory_order_relaxed); }

  // Binds the morsel worker pool to the native sort sites so big JIT'd
  // sorts run morsel-parallel (null keeps them sequential). Called once by
  // the owning Interpreter right after Compile, before any Run — the sites
  // are shared by every execution of this program.
  void BindParallel(parallel::Engine* eng) {
    for (JitSortSite& s : sort_sites_) s.par = eng;
  }

  // Natively-stitched sort instructions (introspection/tests).
  size_t num_sort_sites() const { return sort_sites_.size(); }

 private:
  JitProgram() = default;

  using EnterFn = uint32_t (*)(Slot* regs, const void* target);

  CodeBuffer buf_;
  EnterFn enter_ = nullptr;
  std::vector<uint32_t> entry_;
  // Pre-split LIKE patterns the stitched code points into (kPatternC).
  std::vector<LikePattern> like_patterns_;
  // Sort-site descriptors the stitched code points into (kSortSite);
  // their jp backlinks are patched in Compile once `this` exists.
  std::vector<JitSortSite> sort_sites_;
  int num_native_ = 0;
  mutable std::atomic<uint64_t> deopts_{0};
};

}  // namespace qc::exec::jit

#endif  // QC_JIT_ENGINE_H_
