// Per-opcode native code templates for the copy-and-patch JIT.
//
// Each supported BcOp has one pre-assembled x86-64 machine-code sequence
// with *holes* — operand-dependent fields left as placeholders — plus a
// patch-point descriptor per hole saying how to fill it from a concrete
// Insn (register-file displacement, pre-resolved pointer, constant bits,
// or a relative branch target). The emitter stitches a program by
// memcpy'ing templates in bytecode order and applying the patches; no
// instruction selection happens at JIT time, which is what makes
// translation effectively free (the copy-and-patch idea).
//
// Templates are built once per process, at first use, by running the
// mini-assembler (emitter.h) with zero placeholders and recording where
// each patchable field landed. Invariants every template obeys:
//   * r12 holds the VM register-file base (Slot*); VM register k lives at
//     [r12 + k*8], always addressed with a patchable disp32.
//   * every caller-saved register is scratch; nothing is preserved across
//     templates except the register file itself (state lives in memory,
//     exactly like the bytecode VM's Slot array — which is what makes
//     mid-program deopt re-entry trivial).
//   * Templates may call C++ helpers through an imm64 address baked in at
//     template build time (string predicates, log/emit staging, the sort
//     driver): r12 is callee-saved and rsp stays 16-byte aligned, so the
//     calls are ABI-clean and cost no deopt. Operations that genuinely
//     need VM state the register file cannot reach (container
//     construction into the engine's deques, morsel dispatch) still have
//     no template and deopt to the VM (engine.h).
//   * Fall-through is the next stitched instruction; taken branches are
//     rel32 fields patched by the emitter's branch-fixup pass.
#ifndef QC_JIT_TEMPLATES_H_
#define QC_JIT_TEMPLATES_H_

#include <cstdint>

#include "exec/bytecode.h"

namespace qc::exec::jit {

// How one hole in a template is filled at stitch time.
enum class PatchKind : uint8_t {
  kSlotA,   // disp32 <- insn.a * 8 (register-file slot)
  kSlotB,   // disp32 <- insn.b * 8
  kSlotC,   // disp32 <- insn.c * 8
  kSlotD,   // disp32 <- uint32(insn.d) * 8 (d carrying a 4th register)
  kFieldB,  // disp32 <- insn.b * 8 (record-field offset)
  kFieldC,  // disp32 <- insn.c * 8
  kPtrB,    // imm64 <- prog.ptrs[insn.b] (pre-resolved column/index ptr)
  kConstB,  // imm64 <- prog.consts[insn.b] raw slot bits
  kJumpD,   // rel32 <- native code of pc + 1 + insn.d (branch fixup)
  kExtraA,  // imm64 <- &prog.extra[insn.a] (variable-length operand list)
  kExtraB,  // imm64 <- &prog.extra[insn.b]
  kImmN,    // imm32 <- insn.n (operand count)
  kImmN8,   // imm32 <- insn.n * 8 (operand count in slot bytes)
  kImmCMask,   // imm32 <- insn.c (kEmit string-interning mask)
  kPatternC,   // imm64 <- &like_patterns[insn.c], the pattern pre-split at
               //          stitch time (kStrLike; see emitter.h LikePattern)
  kSortSite,   // imm64 <- &sort_sites[i] for this sort instruction's
               //          descriptor (kArrSort/kListSort; emitter.h
               //          JitSortSite — only stitched when the comparator
               //          subroutine is fully native)
  kGovCnt,     // disp32 <- prog.gov_cnt_reg * 8 (the governance countdown
               //          slot; the safepoint slow path finds the GovState*
               //          at [countdown slot - 8] — gov_cnt_reg==gov_reg+1)
  kJumpAbort,  // rel32 <- the program's abort thunk (returns kAbortPc)
};

struct PatchPoint {
  uint16_t offset;  // byte offset of the field inside the template
  PatchKind kind;
};

// One opcode's template. code == nullptr means "no template": the
// instruction deopts to the bytecode VM.
struct OpTemplate {
  const uint8_t* code = nullptr;
  uint16_t size = 0;
  uint8_t num_patches = 0;
  PatchPoint patches[8];  // governed kForNext carries 8 patch points
  // Template dereferences std::vector / index-struct internals and is only
  // stitched when RuntimeLayoutUsable() confirmed the layout probe.
  bool needs_layout_probe = false;
};

// Template selection for one concrete instruction — the only lookup into
// the table (built on first call, thread-safe function-local static):
// the main entry, or a variant keyed on instruction metadata — the
// hash-probe opcodes (kMapFind/kMapGetOrNull/kMMapGetOrNull) use the
// inline i64 probe for kMapKeyI64 instructions and a generic helper-call
// probe (typed SlotHasher in C++, no deopt) for string/record keys; the
// generic variant also serves i64 keys when the layout probe failed, so
// probe loops stay native even there. Returns nullptr when the
// instruction must deopt (no template, or probe-gated with no variant).
const OpTemplate* SelectTemplate(const Insn& insn, bool layout_ok);

// One-time probe of the standard-library memory layout the container
// templates compile against (vector = {begin, end, cap} pointers; RtArray/
// RtList payload at offset 0; PartitionedIndex/PkIndex field offsets).
// When the probe fails those templates are skipped — their opcodes deopt —
// and everything still runs correctly.
bool RuntimeLayoutUsable();

}  // namespace qc::exec::jit

#endif  // QC_JIT_TEMPLATES_H_
