#include "jit/templates.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <vector>

#include "jit/emitter.h"
#include "storage/database.h"

namespace qc::exec::jit {

namespace {

constexpr int kNumOps = static_cast<int>(BcOp::kNumOps);

// Builder for one template: the mini-assembler plus patch-point recording.
// Every Slot access goes through the *Slot helpers so the displacement is
// forced to disp32 (patchable) even though the placeholder is 0.
struct TB {
  Asm a;
  std::vector<PatchPoint> patches;

  void Mark(PatchKind k) {
    patches.push_back({static_cast<uint16_t>(a.last_field()), k});
  }
  void LoadSlot(Reg r, PatchKind k) {
    a.MovRegMem(r, kSlotBase, 0, /*force_disp32=*/true);
    Mark(k);
  }
  void StoreSlot(Reg r, PatchKind k) {
    a.MovMemReg(kSlotBase, 0, r, true);
    Mark(k);
  }
  void LoadSlotSd(Xmm x, PatchKind k) {
    a.MovsdXmmMem(x, kSlotBase, 0, true);
    Mark(k);
  }
  void StoreSlotSd(Xmm x, PatchKind k) {
    a.MovsdMemXmm(kSlotBase, 0, x, true);
    Mark(k);
  }
  void LoadPtr(Reg r) {
    a.MovImm64(r, 0);
    Mark(PatchKind::kPtrB);
  }
  void Jump(Cond cc) {
    a.JccRel32(cc);
    Mark(PatchKind::kJumpD);
  }
  void JumpAlways() {
    a.JmpRel32();
    Mark(PatchKind::kJumpD);
  }
  // setcc + zero-extend + store to slot A: the boolean materialization tail
  // shared by every value-producing comparison.
  void StoreBool(Cond cc) {
    a.Setcc(cc, RAX);
    a.MovzxRegReg8(RAX, RAX);
    StoreSlot(RAX, PatchKind::kSlotA);
  }
  // movq mask -> rax; low bit -> 0/1; store to slot A (cmpsd tail).
  void StoreFBool() {
    a.MovqRegXmm(RAX, XMM0);
    a.AndImm8(RAX, 1);
    StoreSlot(RAX, PatchKind::kSlotA);
  }
};

struct Built {
  std::vector<uint8_t> bytes;
  std::vector<PatchPoint> patches;
  bool needs_probe = false;
};

struct Store {
  OpTemplate table[kNumOps];
  std::vector<uint8_t> bytes;
};

// Comparison condition for the value-producing (setcc) direction.
Cond ValCond(int i) {  // order: Eq Ne Lt Le Gt Ge
  static const Cond k[] = {kCondE, kCondNE, kCondL, kCondLE, kCondG, kCondGE};
  return k[i];
}
// Condition for branch-if-FALSE (the kJn* family).
Cond NegCond(int i) {
  static const Cond k[] = {kCondNE, kCondE, kCondGE, kCondG, kCondLE, kCondL};
  return k[i];
}
// SSE cmpsd predicate per comparison; Gt/Ge are encoded by swapping the
// operand loads and using Lt/Le (matches C++ NaN semantics exactly).
FCmp FPred(int i) {
  static const FCmp k[] = {kFEq, kFNeq, kFLt, kFLe, kFLt, kFLe};
  return k[i];
}
bool FSwapped(int i) { return i >= 4; }  // Gt, Ge

Store* BuildTemplates() {
  Store* s = new Store();
  std::vector<Built> built(kNumOps);
  auto def = [&](BcOp op, bool needs_probe,
                 const std::function<void(TB&)>& fn) {
    TB t;
    fn(t);
    Built& b = built[static_cast<int>(op)];
    b.bytes = t.a.bytes();
    b.patches = t.patches;
    b.needs_probe = needs_probe;
  };

  // --- control flow --------------------------------------------------------
  // kRet is itself the deopt exit shape with the "returned" sentinel.
  def(BcOp::kRet, false, [](TB& t) {
    t.a.MovImm32(RAX, 0xFFFFFFFFu);  // jit::kRetPc
    t.a.PopR12();
    t.a.Ret();
  });
  def(BcOp::kJmp, false, [](TB& t) { t.JumpAlways(); });
  def(BcOp::kJz, false, [](TB& t) {
    t.LoadSlot(RAX, PatchKind::kSlotA);
    t.a.TestRegReg(RAX, RAX);
    t.Jump(kCondE);
  });
  def(BcOp::kJnz, false, [](TB& t) {
    t.LoadSlot(RAX, PatchKind::kSlotA);
    t.a.TestRegReg(RAX, RAX);
    t.Jump(kCondNE);
  });
  def(BcOp::kJgeI, false, [](TB& t) {
    t.LoadSlot(RAX, PatchKind::kSlotA);
    t.a.CmpRegMem(RAX, kSlotBase, 0, true);
    t.Mark(PatchKind::kSlotB);
    t.Jump(kCondGE);
  });
  def(BcOp::kForNext, false, [](TB& t) {
    t.LoadSlot(RAX, PatchKind::kSlotA);
    t.a.IncReg(RAX);
    t.StoreSlot(RAX, PatchKind::kSlotA);
    t.a.CmpRegMem(RAX, kSlotBase, 0, true);
    t.Mark(PatchKind::kSlotB);
    t.Jump(kCondL);
  });
  def(BcOp::kIncJmp, false, [](TB& t) {
    t.LoadSlot(RAX, PatchKind::kSlotA);
    t.a.IncReg(RAX);
    t.StoreSlot(RAX, PatchKind::kSlotA);
    t.JumpAlways();
  });

  // --- moves ---------------------------------------------------------------
  def(BcOp::kLoadK, false, [](TB& t) {
    t.a.MovImm64(RAX, 0);
    t.Mark(PatchKind::kConstB);
    t.StoreSlot(RAX, PatchKind::kSlotA);
  });
  def(BcOp::kMov, false, [](TB& t) {
    t.LoadSlot(RAX, PatchKind::kSlotB);
    t.StoreSlot(RAX, PatchKind::kSlotA);
  });

  // --- i64 arithmetic ------------------------------------------------------
  auto alu_i = [&](BcOp op, void (Asm::*alu)(Reg, Reg, int32_t, bool)) {
    def(op, false, [alu](TB& t) {
      t.LoadSlot(RAX, PatchKind::kSlotB);
      (t.a.*alu)(RAX, kSlotBase, 0, true);
      t.Mark(PatchKind::kSlotC);
      t.StoreSlot(RAX, PatchKind::kSlotA);
    });
  };
  alu_i(BcOp::kAddI, &Asm::AddRegMem);
  alu_i(BcOp::kSubI, &Asm::SubRegMem);
  alu_i(BcOp::kMulI, &Asm::ImulRegMem);
  alu_i(BcOp::kBitAnd, &Asm::AndRegMem);
  auto div_i = [&](BcOp op, bool want_rem) {
    def(op, false, [want_rem](TB& t) {
      t.LoadSlot(RAX, PatchKind::kSlotB);
      t.LoadSlot(RCX, PatchKind::kSlotC);
      t.a.TestRegReg(RCX, RCX);
      size_t jz = t.a.Jcc8(kCondE);
      t.a.Cqo();
      t.a.IdivReg(RCX);
      if (want_rem) t.a.MovRegReg(RAX, RDX);
      size_t jend = t.a.Jmp8();
      t.a.PatchRel8(jz);
      t.a.XorReg32(RAX);  // divisor 0 -> result 0 (the VM's semantics)
      t.a.PatchRel8(jend);
      t.StoreSlot(RAX, PatchKind::kSlotA);
    });
  };
  div_i(BcOp::kDivI, false);
  div_i(BcOp::kModI, true);
  def(BcOp::kNegI, false, [](TB& t) {
    t.LoadSlot(RAX, PatchKind::kSlotB);
    t.a.NegReg(RAX);
    t.StoreSlot(RAX, PatchKind::kSlotA);
  });

  // --- f64 arithmetic ------------------------------------------------------
  auto alu_f = [&](BcOp op, uint8_t sse_opcode) {
    def(op, false, [sse_opcode](TB& t) {
      t.LoadSlotSd(XMM0, PatchKind::kSlotB);
      t.a.ArithsdXmmMem(sse_opcode, XMM0, kSlotBase, 0, true);
      t.Mark(PatchKind::kSlotC);
      t.StoreSlotSd(XMM0, PatchKind::kSlotA);
    });
  };
  alu_f(BcOp::kAddF, 0x58);
  alu_f(BcOp::kSubF, 0x5C);
  alu_f(BcOp::kMulF, 0x59);
  alu_f(BcOp::kDivF, 0x5E);
  def(BcOp::kNegF, false, [](TB& t) {
    // IEEE negation is a sign-bit flip — identical to what -x compiles to.
    t.LoadSlot(RAX, PatchKind::kSlotB);
    t.a.MovImm64(RCX, 0x8000000000000000ull);
    t.a.XorRegReg(RAX, RCX);
    t.StoreSlot(RAX, PatchKind::kSlotA);
  });
  def(BcOp::kCastIF, false, [](TB& t) {
    t.a.Cvtsi2sdXmmMem(XMM0, kSlotBase, 0, true);
    t.Mark(PatchKind::kSlotB);
    t.StoreSlotSd(XMM0, PatchKind::kSlotA);
  });
  def(BcOp::kCastFI, false, [](TB& t) {
    t.a.Cvttsd2siRegMem(RAX, kSlotBase, 0, true);
    t.Mark(PatchKind::kSlotB);
    t.StoreSlot(RAX, PatchKind::kSlotA);
  });

  // --- comparisons (value-producing) --------------------------------------
  const BcOp cmp_i[] = {BcOp::kEqI, BcOp::kNeI, BcOp::kLtI,
                        BcOp::kLeI, BcOp::kGtI, BcOp::kGeI};
  const BcOp cmp_f[] = {BcOp::kEqF, BcOp::kNeF, BcOp::kLtF,
                        BcOp::kLeF, BcOp::kGtF, BcOp::kGeF};
  for (int i = 0; i < 6; ++i) {
    def(cmp_i[i], false, [i](TB& t) {
      t.LoadSlot(RAX, PatchKind::kSlotB);
      t.a.CmpRegMem(RAX, kSlotBase, 0, true);
      t.Mark(PatchKind::kSlotC);
      t.StoreBool(ValCond(i));
    });
    def(cmp_f[i], false, [i](TB& t) {
      PatchKind lhs = FSwapped(i) ? PatchKind::kSlotC : PatchKind::kSlotB;
      PatchKind rhs = FSwapped(i) ? PatchKind::kSlotB : PatchKind::kSlotC;
      t.LoadSlotSd(XMM0, lhs);
      t.a.CmpsdXmmMem(XMM0, kSlotBase, 0, FPred(i), true);
      t.Mark(rhs);
      t.StoreFBool();
    });
  }

  // --- booleans ------------------------------------------------------------
  auto bool_ab = [&](BcOp op, bool is_or) {
    def(op, false, [is_or](TB& t) {
      t.LoadSlot(RAX, PatchKind::kSlotB);
      t.a.TestRegReg(RAX, RAX);
      t.a.Setcc(kCondNE, RAX);
      t.LoadSlot(RCX, PatchKind::kSlotC);
      t.a.TestRegReg(RCX, RCX);
      t.a.Setcc(kCondNE, RCX);
      if (is_or) {
        t.a.OrReg8(RAX, RCX);
      } else {
        t.a.AndReg8(RAX, RCX);
      }
      t.a.MovzxRegReg8(RAX, RAX);
      t.StoreSlot(RAX, PatchKind::kSlotA);
    });
  };
  bool_ab(BcOp::kAnd, false);
  bool_ab(BcOp::kOr, true);
  auto is_zero = [&](BcOp op) {
    def(op, false, [](TB& t) {
      t.LoadSlot(RAX, PatchKind::kSlotB);
      t.a.TestRegReg(RAX, RAX);
      t.StoreBool(kCondE);
    });
  };
  is_zero(BcOp::kNot);
  is_zero(BcOp::kIsNull);  // null == 0: same shape

  // --- records -------------------------------------------------------------
  def(BcOp::kRecGet, false, [](TB& t) {
    t.LoadSlot(RAX, PatchKind::kSlotB);
    t.a.MovRegMem(RAX, RAX, 0, true);
    t.Mark(PatchKind::kFieldC);
    t.StoreSlot(RAX, PatchKind::kSlotA);
  });
  def(BcOp::kRecSet, false, [](TB& t) {
    t.LoadSlot(RAX, PatchKind::kSlotA);
    t.LoadSlot(RCX, PatchKind::kSlotC);
    t.a.MovMemReg(RAX, 0, RCX, true);
    t.Mark(PatchKind::kFieldB);
  });
  def(BcOp::kRecAccAddI, false, [](TB& t) {
    t.LoadSlot(RAX, PatchKind::kSlotA);
    t.LoadSlot(RCX, PatchKind::kSlotC);
    t.a.AddMemReg(RAX, 0, RCX, true);
    t.Mark(PatchKind::kFieldB);
  });
  def(BcOp::kRecAccAddF, false, [](TB& t) {
    t.LoadSlot(RAX, PatchKind::kSlotA);
    t.a.MovsdXmmMem(XMM0, RAX, 0, true);
    t.Mark(PatchKind::kFieldB);
    t.a.ArithsdXmmMem(0x58, XMM0, kSlotBase, 0, true);
    t.Mark(PatchKind::kSlotC);
    t.a.MovsdMemXmm(RAX, 0, XMM0, true);
    t.Mark(PatchKind::kFieldB);
  });

  // --- arrays / lists (std::vector layout — behind the probe) -------------
  // RtArray/RtList hold their std::vector at offset 0; begin pointer at
  // vector offset 0, end pointer at offset 8 (RuntimeLayoutUsable checks).
  def(BcOp::kArrGet, true, [](TB& t) {
    t.LoadSlot(RAX, PatchKind::kSlotB);
    t.a.MovRegMem(RAX, RAX, 0);  // data.begin
    t.LoadSlot(RCX, PatchKind::kSlotC);
    t.a.MovRegMemIdx(RAX, RAX, RCX, 3);
    t.StoreSlot(RAX, PatchKind::kSlotA);
  });
  def(BcOp::kListGet, true, [](TB& t) {
    t.LoadSlot(RAX, PatchKind::kSlotB);
    t.a.MovRegMem(RAX, RAX, 0);
    t.LoadSlot(RCX, PatchKind::kSlotC);
    t.a.MovRegMemIdx(RAX, RAX, RCX, 3);
    t.StoreSlot(RAX, PatchKind::kSlotA);
  });
  def(BcOp::kArrSet, true, [](TB& t) {
    t.LoadSlot(RAX, PatchKind::kSlotA);
    t.a.MovRegMem(RAX, RAX, 0);
    t.LoadSlot(RCX, PatchKind::kSlotB);
    t.LoadSlot(RDX, PatchKind::kSlotC);
    t.a.MovMemIdxReg(RAX, RCX, 3, 0, RDX);
  });
  auto vec_len = [&](BcOp op) {
    def(op, true, [](TB& t) {
      t.LoadSlot(RAX, PatchKind::kSlotB);
      t.a.MovRegMem(RCX, RAX, 8);  // end
      t.a.SubRegMem(RCX, RAX, 0);  // - begin
      t.a.SarImm8(RCX, 3);         // / sizeof(Slot)
      t.StoreSlot(RCX, PatchKind::kSlotA);
    });
  };
  vec_len(BcOp::kArrLen);
  vec_len(BcOp::kListSize);
  def(BcOp::kArrAccAddI, true, [](TB& t) {
    t.LoadSlot(RAX, PatchKind::kSlotA);
    t.a.MovRegMem(RAX, RAX, 0);
    t.LoadSlot(RCX, PatchKind::kSlotB);
    t.LoadSlot(RDX, PatchKind::kSlotC);
    t.a.AddMemIdxReg(RAX, RCX, 3, 0, RDX);
  });
  def(BcOp::kArrAccAddF, true, [](TB& t) {
    t.LoadSlot(RAX, PatchKind::kSlotA);
    t.a.MovRegMem(RAX, RAX, 0);
    t.LoadSlot(RCX, PatchKind::kSlotB);
    t.a.MovsdXmmMemIdx(XMM0, RAX, RCX, 3);
    t.a.ArithsdXmmMem(0x58, XMM0, kSlotBase, 0, true);
    t.Mark(PatchKind::kSlotC);
    t.a.MovsdMemIdxXmm(RAX, RCX, 3, XMM0);
  });

  // --- base-table access ---------------------------------------------------
  def(BcOp::kColGet, false, [](TB& t) {
    t.LoadPtr(R11);
    t.LoadSlot(RAX, PatchKind::kSlotC);
    t.a.MovRegMemIdx(RAX, R11, RAX, 3);
    t.StoreSlot(RAX, PatchKind::kSlotA);
  });
  def(BcOp::kColDict, false, [](TB& t) {
    t.LoadPtr(R11);
    t.LoadSlot(RAX, PatchKind::kSlotC);
    t.a.MovsxdRegMemIdx(RAX, R11, RAX);  // int32 codes, sign-extended
    t.StoreSlot(RAX, PatchKind::kSlotA);
  });
  // Load-time indexes (struct offsets behind the probe). The unsigned
  // compare folds the key < 0 and key > max_key range checks into one.
  def(BcOp::kIdxBucketLen, true, [](TB& t) {
    t.LoadPtr(R11);
    t.LoadSlot(RAX, PatchKind::kSlotC);
    t.a.XorReg32(RCX);
    t.a.CmpRegMem(RAX, R11, 0);  // max_key
    size_t out = t.a.Jcc8(kCondA);
    t.a.MovRegMem(RDX, R11, 8);  // offsets.begin
    t.a.MovRegMemIdx(RCX, RDX, RAX, 3, 8);  // offsets[key + 1]
    t.a.SubRegMemIdx(RCX, RDX, RAX, 3);     // - offsets[key]
    t.a.PatchRel8(out);
    t.StoreSlot(RCX, PatchKind::kSlotA);
  });
  def(BcOp::kIdxBucketRow, true, [](TB& t) {
    t.LoadPtr(R11);
    t.LoadSlot(RAX, PatchKind::kSlotC);  // key
    t.a.MovRegMem(RDX, R11, 8);          // offsets.begin
    t.a.MovRegMemIdx(RAX, RDX, RAX, 3);  // offsets[key]
    t.a.AddRegMem(RAX, kSlotBase, 0, true);  // + j
    t.Mark(PatchKind::kSlotD);
    t.a.MovRegMem(RDX, R11, 32);         // rows.begin
    t.a.MovRegMemIdx(RAX, RDX, RAX, 3);
    t.StoreSlot(RAX, PatchKind::kSlotA);
  });
  def(BcOp::kIdxPkRow, true, [](TB& t) {
    t.LoadPtr(R11);
    t.LoadSlot(RAX, PatchKind::kSlotC);
    t.a.MovImmSext32(RCX, -1);
    t.a.CmpRegMem(RAX, R11, 0);  // max_key
    size_t out = t.a.Jcc8(kCondA);
    t.a.MovRegMem(RDX, R11, 8);  // row_of.begin
    t.a.MovRegMemIdx(RCX, RDX, RAX, 3);
    t.a.PatchRel8(out);
    t.StoreSlot(RCX, PatchKind::kSlotA);
  });

  // --- fused super-instructions -------------------------------------------
  const BcOp colcmp_i[] = {BcOp::kColGetEqI, BcOp::kColGetNeI,
                           BcOp::kColGetLtI, BcOp::kColGetLeI,
                           BcOp::kColGetGtI, BcOp::kColGetGeI};
  const BcOp colcmp_f[] = {BcOp::kColGetEqF, BcOp::kColGetNeF,
                           BcOp::kColGetLtF, BcOp::kColGetLeF,
                           BcOp::kColGetGtF, BcOp::kColGetGeF};
  const BcOp jn_i[] = {BcOp::kJnEqI, BcOp::kJnNeI, BcOp::kJnLtI,
                       BcOp::kJnLeI, BcOp::kJnGtI, BcOp::kJnGeI};
  const BcOp jn_f[] = {BcOp::kJnEqF, BcOp::kJnNeF, BcOp::kJnLtF,
                       BcOp::kJnLeF, BcOp::kJnGtF, BcOp::kJnGeF};
  const BcOp jncol_i[] = {BcOp::kJnColEqI, BcOp::kJnColNeI, BcOp::kJnColLtI,
                          BcOp::kJnColLeI, BcOp::kJnColGtI, BcOp::kJnColGeI};
  const BcOp jncol_f[] = {BcOp::kJnColEqF, BcOp::kJnColNeF, BcOp::kJnColLtF,
                          BcOp::kJnColLeF, BcOp::kJnColGtF, BcOp::kJnColGeF};
  for (int i = 0; i < 6; ++i) {
    // R[a] = col[R[c]] CMP R[d]
    def(colcmp_i[i], false, [i](TB& t) {
      t.LoadPtr(R11);
      t.LoadSlot(RAX, PatchKind::kSlotC);
      t.a.MovRegMemIdx(RAX, R11, RAX, 3);
      t.a.CmpRegMem(RAX, kSlotBase, 0, true);
      t.Mark(PatchKind::kSlotD);
      t.StoreBool(ValCond(i));
    });
    def(colcmp_f[i], false, [i](TB& t) {
      t.LoadPtr(R11);
      t.LoadSlot(RAX, PatchKind::kSlotC);
      if (FSwapped(i)) {
        t.LoadSlotSd(XMM0, PatchKind::kSlotD);
        t.a.CmpsdXmmMemIdx(XMM0, R11, RAX, 3, FPred(i));
      } else {
        t.a.MovsdXmmMemIdx(XMM0, R11, RAX, 3);
        t.a.CmpsdXmmMem(XMM0, kSlotBase, 0, FPred(i), true);
        t.Mark(PatchKind::kSlotD);
      }
      t.StoreFBool();
    });
    // if (!(R[a] CMP R[b])) jump
    def(jn_i[i], false, [i](TB& t) {
      t.LoadSlot(RAX, PatchKind::kSlotA);
      t.a.CmpRegMem(RAX, kSlotBase, 0, true);
      t.Mark(PatchKind::kSlotB);
      t.Jump(NegCond(i));
    });
    def(jn_f[i], false, [i](TB& t) {
      PatchKind lhs = FSwapped(i) ? PatchKind::kSlotB : PatchKind::kSlotA;
      PatchKind rhs = FSwapped(i) ? PatchKind::kSlotA : PatchKind::kSlotB;
      t.LoadSlotSd(XMM0, lhs);
      t.a.CmpsdXmmMem(XMM0, kSlotBase, 0, FPred(i), true);
      t.Mark(rhs);
      t.a.MovqRegXmm(RAX, XMM0);
      t.a.TestRegReg(RAX, RAX);
      t.Jump(kCondE);  // comparison false -> take the branch
    });
    // if (!(col[R[c]] CMP R[a])) jump
    def(jncol_i[i], false, [i](TB& t) {
      t.LoadPtr(R11);
      t.LoadSlot(RAX, PatchKind::kSlotC);
      t.a.MovRegMemIdx(RAX, R11, RAX, 3);
      t.a.CmpRegMem(RAX, kSlotBase, 0, true);
      t.Mark(PatchKind::kSlotA);
      t.Jump(NegCond(i));
    });
    def(jncol_f[i], false, [i](TB& t) {
      t.LoadPtr(R11);
      t.LoadSlot(RAX, PatchKind::kSlotC);
      if (FSwapped(i)) {
        t.LoadSlotSd(XMM0, PatchKind::kSlotA);
        t.a.CmpsdXmmMemIdx(XMM0, R11, RAX, 3, FPred(i));
      } else {
        t.a.MovsdXmmMemIdx(XMM0, R11, RAX, 3);
        t.a.CmpsdXmmMem(XMM0, kSlotBase, 0, FPred(i), true);
        t.Mark(PatchKind::kSlotA);
      }
      t.a.MovqRegXmm(RAX, XMM0);
      t.a.TestRegReg(RAX, RAX);
      t.Jump(kCondE);
    });
  }

  // Everything else (allocation, hashing, sorting, strings, emission,
  // morsel dispatch) deopts: code stays nullptr.

  // Flatten into stable storage: concatenate all template bytes, then
  // resolve the code pointers against the final buffer.
  for (int op = 0; op < kNumOps; ++op) {
    Built& b = built[op];
    if (b.bytes.empty()) continue;
    OpTemplate& t = s->table[op];
    if (b.patches.size() > sizeof(t.patches) / sizeof(t.patches[0])) {
      std::fprintf(stderr,
                   "jit: template for %s has %zu patch points (max %zu)\n",
                   BcOpName(static_cast<BcOp>(op)), b.patches.size(),
                   sizeof(t.patches) / sizeof(t.patches[0]));
      std::abort();  // a template bug, not a runtime condition
    }
    t.size = static_cast<uint16_t>(b.bytes.size());
    t.num_patches = static_cast<uint8_t>(b.patches.size());
    for (size_t i = 0; i < b.patches.size(); ++i) t.patches[i] = b.patches[i];
    t.needs_layout_probe = b.needs_probe;
    s->bytes.insert(s->bytes.end(), b.bytes.begin(), b.bytes.end());
  }
  size_t off = 0;
  for (int op = 0; op < kNumOps; ++op) {
    if (built[op].bytes.empty()) continue;
    s->table[op].code = s->bytes.data() + off;
    off += built[op].bytes.size();
  }
  return s;
}

}  // namespace

const OpTemplate* TemplateTable() {
  static const Store* store = BuildTemplates();
  return store->table;
}

bool RuntimeLayoutUsable() {
  static const bool ok = [] {
    if (sizeof(void*) != 8 || sizeof(std::vector<Slot>) != 24) return false;
    std::vector<Slot> v(3);
    unsigned char* raw = reinterpret_cast<unsigned char*>(&v);
    Slot* b = nullptr;
    Slot* e = nullptr;
    std::memcpy(&b, raw, 8);
    std::memcpy(&e, raw + 8, 8);
    if (b != v.data() || e != v.data() + 3) return false;
    RtArray arr;
    if (reinterpret_cast<unsigned char*>(&arr.data) !=
        reinterpret_cast<unsigned char*>(&arr)) {
      return false;
    }
    RtList list;
    if (reinterpret_cast<unsigned char*>(&list.items) !=
        reinterpret_cast<unsigned char*>(&list)) {
      return false;
    }
    storage::PartitionedIndex pi;
    unsigned char* pr = reinterpret_cast<unsigned char*>(&pi);
    if (reinterpret_cast<unsigned char*>(&pi.max_key) != pr ||
        reinterpret_cast<unsigned char*>(&pi.offsets) != pr + 8 ||
        reinterpret_cast<unsigned char*>(&pi.rows) != pr + 32) {
      return false;
    }
    storage::PkIndex pk;
    unsigned char* kr = reinterpret_cast<unsigned char*>(&pk);
    if (reinterpret_cast<unsigned char*>(&pk.max_key) != kr ||
        reinterpret_cast<unsigned char*>(&pk.row_of) != kr + 8) {
      return false;
    }
    return true;
  }();
  return ok;
}

}  // namespace qc::exec::jit
