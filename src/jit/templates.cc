#include "jit/templates.h"

#include <cstddef>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <vector>

#include "common/hash.h"
#include "common/str.h"
#include "exec/governor.h"
#include "jit/emitter.h"
#include "jit/engine.h"
#include "storage/database.h"
#include "storage/result.h"

namespace qc::exec::jit {

namespace {

constexpr int kNumOps = static_cast<int>(BcOp::kNumOps);

// ---------------------------------------------------------------------------
// C++ helpers callable from templates (imm64 address + call-through-reg).
// Each mirrors one VM handler exactly — same comparison, same interning,
// same append order — so JIT results stay bit-identical.
// ---------------------------------------------------------------------------

int64_t HelpStrEq(const char* a, const char* b) {
  return std::strcmp(a, b) == 0 ? 1 : 0;
}
int64_t HelpStrNe(const char* a, const char* b) {
  return std::strcmp(a, b) != 0 ? 1 : 0;
}
int64_t HelpStrLt(const char* a, const char* b) {
  return std::strcmp(a, b) < 0 ? 1 : 0;
}
int64_t HelpStrStarts(const char* s, const char* p) {
  return StrStartsWith(s, p) ? 1 : 0;
}
int64_t HelpStrEnds(const char* s, const char* p) {
  return StrEndsWith(s, p) ? 1 : 0;
}
int64_t HelpStrContains(const char* s, const char* p) {
  return StrContains(s, p) ? 1 : 0;
}
// LIKE over a pattern pre-split at stitch time (LikePattern, emitter.h):
// the matching core is shared with StrLike, so only the per-row
// SplitLikePattern allocation disappears — the semantics cannot diverge.
int64_t HelpStrLikePre(const char* str, const LikePattern* p) {
  return StrLikeSegs(str, p->segs) ? 1 : 0;
}

// kLogRow grow path: the inline pointer-bump found end + nbytes > capacity
// (only possible when a log channel appends more than once per row — inner
// loops — since the runtime reserves one entry per morsel row up front).
void HelpLogGrow(std::vector<Slot>* lg, const Slot* regs,
                 const uint32_t* argv, uint64_t nbytes) {
  uint64_t n = nbytes >> 3;
  for (uint64_t i = 0; i < n; ++i) lg->push_back(regs[argv[i]]);
}

// Allocating opcodes: every piece of per-run mutable state these need is
// reachable from an object the register file holds — the map/multimap
// itself (which carries its AllocStats*), or the reserved context
// registers (RecordHeap*, AllocStats*) the runtime writes at entry. Slot
// payloads travel as int64_t bit patterns to keep the SysV classification
// unambiguous.
// Generic hash probes for string/record keys (the kMapKeyOther variants):
// the typed SlotHasher runs in C++, but the probe is still a plain call
// from native code — the surrounding loop never re-enters the interpreter.
void* HelpMapFindGeneric(RtHashMap* m, int64_t key_bits) {
  Slot k;
  k.i = key_bits;
  return m->Find(k);
}
int64_t HelpMapGetOrNullGeneric(RtHashMap* m, int64_t key_bits) {
  Slot k;
  k.i = key_bits;
  RtHashMap::Node* n = m->Find(k);
  return n == nullptr ? 0 : n->value.i;
}
int64_t HelpMMapGetOrNullGeneric(RtMultiMap* mm, int64_t key_bits) {
  Slot k;
  k.i = key_bits;
  return reinterpret_cast<int64_t>(mm->GetOrNull(k));
}

void* HelpMapInsert(RtHashMap* m, int64_t key_bits, int64_t val_bits) {
  Slot k, v;
  k.i = key_bits;
  v.i = val_bits;
  return m->Insert(k, v);
}
void HelpMMapAdd(RtMultiMap* mm, int64_t key_bits, int64_t val_bits) {
  Slot k, v;
  k.i = key_bits;
  v.i = val_bits;
  mm->Add(k, v);
}
void HelpListAppend(RtList* l, AllocStats* stats, int64_t val_bits) {
  Slot v;
  v.i = val_bits;
  size_t before = l->items.capacity();
  l->items.push_back(v);
  stats->vector_bytes += (l->items.capacity() - before) * sizeof(Slot);
}
void* HelpRecNew(RecordHeap* h, const Slot* regs, const uint32_t* argv,
                 uint64_t n) {
  Slot* rec = h->AllocHeap(n);
  for (uint64_t i = 0; i < n; ++i) rec[i] = regs[argv[i]];
  return rec;
}
void* HelpPoolRecNew(RecordHeap* h, const Slot* regs, const uint32_t* argv,
                     uint64_t n) {
  Slot* rec = h->AllocPool(n);
  for (uint64_t i = 0; i < n; ++i) rec[i] = regs[argv[i]];
  return rec;
}
void* HelpPoolAlloc(RecordHeap* h, int64_t fields) {
  return h->AllocPool(static_cast<size_t>(fields));
}

// kArrSort/kListSort: the native sort driver. Stitched only when the whole
// comparator subroutine is native (StitchProgram checks the region), so
// every comparison is one trampoline call into the stitched comparator
// segment — the sort never re-enters the VM dispatch loop and costs zero
// deopt events. The ordering core (StableSortSlots / ParallelStableSort)
// is the same code the VM and the tree walker run, so results stay
// bit-exact across engines and thread counts.
struct JitNativeCmp : SlotCmp {
  const JitSortSite* site;
  Slot* regs;
  bool Less(Slot a, Slot b) override {
    regs[site->ps[0]] = a;
    regs[site->ps[1]] = b;
    // The comparator region is fully native: Run executes from the entry
    // through the subroutine's kRet and returns the kRetPc sentinel, so no
    // interpreter continuation can be needed here.
    site->jp->Run(regs, site->cmp_entry);
    return regs[site->ps[2]].i != 0;
  }
};

void HelpSort(Slot* regs, const JitSortSite* site) {
  // The context's GovState travels in the reserved gov register, exactly as
  // it does for the VM's sort path: comparators get the same abort checks,
  // so a tripped query drains a JIT'd sort in linear time too.
  GovState* gov = static_cast<GovState*>(regs[site->gov_reg].p);
  Slot* data;
  int64_t n;
  if (site->is_list) {
    RtList* l = static_cast<RtList*>(regs[site->obj_reg].p);
    data = l->items.data();
    n = static_cast<int64_t>(l->items.size());
  } else {
    RtArray* a = static_cast<RtArray*>(regs[site->obj_reg].p);
    data = a->data.data();
    n = regs[site->n_reg].i;
  }
  if (site->par != nullptr && site->par_safe) {
    // Private register-file copy per parallel task; the live file is never
    // written during the sort (same contract as the VM's parallel path).
    struct ParCmp : JitNativeCmp {
      std::vector<Slot> own;
    };
    auto make_cmp = [&]() -> std::unique_ptr<SlotCmp> {
      auto cmp = std::make_unique<ParCmp>();
      cmp->site = site;
      cmp->own.assign(regs, regs + site->num_regs);
      cmp->regs = cmp->own.data();
      return std::make_unique<GovernedCmpOwned>(std::move(cmp), gov);
    };
    if (parallel::ParallelStableSort(*site->par, data, n, make_cmp)) return;
  }
  JitNativeCmp cmp;
  cmp.site = site;
  cmp.regs = regs;
  GovernedCmp gcmp(cmp, gov);
  StableSortSlots(data, n, gcmp);
}

// kEmit row staging: gather the argument slots, intern strings into the
// destination table, append the row. `out` arrives through the program's
// reserved out-register (BytecodeProgram::out_reg), so the helper works for
// the main result table and for morsel-private tables alike.
void HelpEmit(storage::ResultTable* out, const Slot* regs,
              const uint32_t* argv, uint64_t n, uint64_t mask) {
  std::vector<Slot> row;
  row.reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    Slot v = regs[argv[i]];
    if (mask & (1ull << i)) v = SlotS(out->InternString(v.s));
    row.push_back(v);
  }
  out->AddRow(std::move(row));
}

// The hash-probe template hard-codes the splitmix64 finalizer in machine
// code; hold it against the C++ implementation the VM hashes with.
constexpr uint64_t kMix1 = 0x9e3779b97f4a7c15ull;
constexpr uint64_t kMix2 = 0xbf58476d1ce4e5b9ull;
constexpr uint64_t kMix3 = 0x94d049bb133111ebull;
constexpr uint64_t JitHashMixRef(uint64_t x) {
  x += kMix1;
  x = (x ^ (x >> 30)) * kMix2;
  x = (x ^ (x >> 27)) * kMix3;
  return x ^ (x >> 31);
}
static_assert(JitHashMixRef(0xDEADBEEFCAFEull) == HashMix(0xDEADBEEFCAFEull) &&
                  JitHashMixRef(0) == HashMix(0),
              "HashMix changed: update the inline hash in the kMapFind/"
              "kMapGetOrNull templates to match");

// Builder for one template: the mini-assembler plus patch-point recording.
// Every Slot access goes through the *Slot helpers so the displacement is
// forced to disp32 (patchable) even though the placeholder is 0.
struct TB {
  Asm a;
  std::vector<PatchPoint> patches;

  void Mark(PatchKind k) {
    patches.push_back({static_cast<uint16_t>(a.last_field()), k});
  }
  void LoadSlot(Reg r, PatchKind k) {
    a.MovRegMem(r, kSlotBase, 0, /*force_disp32=*/true);
    Mark(k);
  }
  void StoreSlot(Reg r, PatchKind k) {
    a.MovMemReg(kSlotBase, 0, r, true);
    Mark(k);
  }
  void LoadSlotSd(Xmm x, PatchKind k) {
    a.MovsdXmmMem(x, kSlotBase, 0, true);
    Mark(k);
  }
  void StoreSlotSd(Xmm x, PatchKind k) {
    a.MovsdMemXmm(kSlotBase, 0, x, true);
    Mark(k);
  }
  void LoadPtr(Reg r) {
    a.MovImm64(r, 0);
    Mark(PatchKind::kPtrB);
  }
  void Jump(Cond cc) {
    a.JccRel32(cc);
    Mark(PatchKind::kJumpD);
  }
  void JumpAlways() {
    a.JmpRel32();
    Mark(PatchKind::kJumpD);
  }
  // setcc + zero-extend + store to slot A: the boolean materialization tail
  // shared by every value-producing comparison.
  void StoreBool(Cond cc) {
    a.Setcc(cc, RAX);
    a.MovzxRegReg8(RAX, RAX);
    StoreSlot(RAX, PatchKind::kSlotA);
  }
  // movq mask -> rax; low bit -> 0/1; store to slot A (cmpsd tail).
  void StoreFBool() {
    a.MovqRegXmm(RAX, XMM0);
    a.AndImm8(RAX, 1);
    StoreSlot(RAX, PatchKind::kSlotA);
  }
  // Call a C++ helper whose address is known at template build time.
  // Arguments follow SysV (rdi, rsi, rdx, rcx, r8); the result is in rax.
  void CallHelper(const void* fn) {
    a.MovImm64(RAX, reinterpret_cast<uint64_t>(fn));
    a.CallReg(RAX);
  }
};

struct Built {
  std::vector<uint8_t> bytes;
  std::vector<PatchPoint> patches;
  bool needs_probe = false;
};

struct Store {
  OpTemplate table[kNumOps];
  // Variant templates selected per instruction (SelectTemplate): the
  // generic helper-call hash probes for non-i64 map keys.
  OpTemplate alt[kNumOps];
  std::vector<uint8_t> bytes;
};

// Comparison condition for the value-producing (setcc) direction.
Cond ValCond(int i) {  // order: Eq Ne Lt Le Gt Ge
  static const Cond k[] = {kCondE, kCondNE, kCondL, kCondLE, kCondG, kCondGE};
  return k[i];
}
// Condition for branch-if-FALSE (the kJn* family).
Cond NegCond(int i) {
  static const Cond k[] = {kCondNE, kCondE, kCondGE, kCondG, kCondLE, kCondL};
  return k[i];
}
// SSE cmpsd predicate per comparison; Gt/Ge are encoded by swapping the
// operand loads and using Lt/Le (matches C++ NaN semantics exactly).
FCmp FPred(int i) {
  static const FCmp k[] = {kFEq, kFNeq, kFLt, kFLe, kFLt, kFLe};
  return k[i];
}
bool FSwapped(int i) { return i >= 4; }  // Gt, Ge

Store* BuildTemplates() {
  Store* s = new Store();
  std::vector<Built> built(kNumOps);
  std::vector<Built> built_alt(kNumOps);
  auto build_into = [](std::vector<Built>& dst, BcOp op, bool needs_probe,
                       const std::function<void(TB&)>& fn) {
    TB t;
    fn(t);
    Built& b = dst[static_cast<int>(op)];
    b.bytes = t.a.bytes();
    b.patches = t.patches;
    b.needs_probe = needs_probe;
  };
  auto def = [&](BcOp op, bool needs_probe,
                 const std::function<void(TB&)>& fn) {
    build_into(built, op, needs_probe, fn);
  };
  auto defalt = [&](BcOp op, bool needs_probe,
                    const std::function<void(TB&)>& fn) {
    build_into(built_alt, op, needs_probe, fn);
  };

  // --- control flow --------------------------------------------------------
  // kRet is itself the deopt exit shape with the "returned" sentinel.
  def(BcOp::kRet, false, [](TB& t) {
    t.a.MovImm32(RAX, 0xFFFFFFFFu);  // jit::kRetPc
    t.a.PopR12();
    t.a.Ret();
  });
  def(BcOp::kJmp, false, [](TB& t) { t.JumpAlways(); });
  def(BcOp::kJz, false, [](TB& t) {
    t.LoadSlot(RAX, PatchKind::kSlotA);
    t.a.TestRegReg(RAX, RAX);
    t.Jump(kCondE);
  });
  def(BcOp::kJnz, false, [](TB& t) {
    t.LoadSlot(RAX, PatchKind::kSlotA);
    t.a.TestRegReg(RAX, RAX);
    t.Jump(kCondNE);
  });
  def(BcOp::kJgeI, false, [](TB& t) {
    t.LoadSlot(RAX, PatchKind::kSlotA);
    t.a.CmpRegMem(RAX, kSlotBase, 0, true);
    t.Mark(PatchKind::kSlotB);
    t.Jump(kCondGE);
  });
  // Back-edge safepoint tail (governance, exec/governor.h): decrement the
  // reserved countdown slot; while it stays positive the cost is one dec +
  // a never-taken branch (ungoverned runs preset it to INT64_MAX). At zero
  // the slow path calls qc_gov_safepoint — which polls the control and
  // refills the countdown through the pointer — and branches to the
  // program's abort thunk (returns kAbortPc) on a trip. The GovState* is
  // read from the slot below the countdown: the compiler reserves
  // gov_cnt_reg == gov_reg + 1 (bytecode.h), which saves a patch kind.
  auto safepoint = [](TB& t) {
    t.a.DecMem(kSlotBase, 0, true);
    t.Mark(PatchKind::kGovCnt);
    size_t fast = t.a.Jcc8(kCondG);
    t.a.LeaRegMem(RSI, kSlotBase, 0, true);  // rsi = &countdown slot
    t.Mark(PatchKind::kGovCnt);
    t.a.MovRegMem(RDI, RSI, -8);             // rdi = GovState* (gov_reg)
    t.CallHelper(reinterpret_cast<const void*>(&qc_gov_safepoint));
    t.a.TestRegReg(RAX, RAX);
    t.a.JccRel32(kCondNE);
    t.Mark(PatchKind::kJumpAbort);
    t.a.PatchRel8(fast);
  };
  def(BcOp::kForNext, false, [&](TB& t) {
    t.LoadSlot(RAX, PatchKind::kSlotA);
    t.a.IncReg(RAX);
    t.StoreSlot(RAX, PatchKind::kSlotA);
    t.a.CmpRegMem(RAX, kSlotBase, 0, true);
    t.Mark(PatchKind::kSlotB);
    size_t done = t.a.Jcc8(kCondGE);  // loop exhausted: fall through
    safepoint(t);                     // taken back edges only
    t.JumpAlways();
    t.a.PatchRel8(done);
  });
  def(BcOp::kIncJmp, false, [&](TB& t) {
    t.LoadSlot(RAX, PatchKind::kSlotA);
    t.a.IncReg(RAX);
    t.StoreSlot(RAX, PatchKind::kSlotA);
    safepoint(t);
    t.JumpAlways();
  });
  // While-loop back edge: an unconditional jump that carries the safepoint
  // (the compiler lowers while back edges to kJmpSp, bytecode.cc).
  def(BcOp::kJmpSp, false, [&](TB& t) {
    safepoint(t);
    t.JumpAlways();
  });

  // --- moves ---------------------------------------------------------------
  def(BcOp::kLoadK, false, [](TB& t) {
    t.a.MovImm64(RAX, 0);
    t.Mark(PatchKind::kConstB);
    t.StoreSlot(RAX, PatchKind::kSlotA);
  });
  def(BcOp::kMov, false, [](TB& t) {
    t.LoadSlot(RAX, PatchKind::kSlotB);
    t.StoreSlot(RAX, PatchKind::kSlotA);
  });

  // --- i64 arithmetic ------------------------------------------------------
  auto alu_i = [&](BcOp op, void (Asm::*alu)(Reg, Reg, int32_t, bool)) {
    def(op, false, [alu](TB& t) {
      t.LoadSlot(RAX, PatchKind::kSlotB);
      (t.a.*alu)(RAX, kSlotBase, 0, true);
      t.Mark(PatchKind::kSlotC);
      t.StoreSlot(RAX, PatchKind::kSlotA);
    });
  };
  alu_i(BcOp::kAddI, &Asm::AddRegMem);
  alu_i(BcOp::kSubI, &Asm::SubRegMem);
  alu_i(BcOp::kMulI, &Asm::ImulRegMem);
  alu_i(BcOp::kBitAnd, &Asm::AndRegMem);
  auto div_i = [&](BcOp op, bool want_rem) {
    def(op, false, [want_rem](TB& t) {
      t.LoadSlot(RAX, PatchKind::kSlotB);
      t.LoadSlot(RCX, PatchKind::kSlotC);
      t.a.TestRegReg(RCX, RCX);
      size_t jz = t.a.Jcc8(kCondE);
      t.a.Cqo();
      t.a.IdivReg(RCX);
      if (want_rem) t.a.MovRegReg(RAX, RDX);
      size_t jend = t.a.Jmp8();
      t.a.PatchRel8(jz);
      t.a.XorReg32(RAX);  // divisor 0 -> result 0 (the VM's semantics)
      t.a.PatchRel8(jend);
      t.StoreSlot(RAX, PatchKind::kSlotA);
    });
  };
  div_i(BcOp::kDivI, false);
  div_i(BcOp::kModI, true);
  def(BcOp::kNegI, false, [](TB& t) {
    t.LoadSlot(RAX, PatchKind::kSlotB);
    t.a.NegReg(RAX);
    t.StoreSlot(RAX, PatchKind::kSlotA);
  });

  // --- f64 arithmetic ------------------------------------------------------
  auto alu_f = [&](BcOp op, uint8_t sse_opcode) {
    def(op, false, [sse_opcode](TB& t) {
      t.LoadSlotSd(XMM0, PatchKind::kSlotB);
      t.a.ArithsdXmmMem(sse_opcode, XMM0, kSlotBase, 0, true);
      t.Mark(PatchKind::kSlotC);
      t.StoreSlotSd(XMM0, PatchKind::kSlotA);
    });
  };
  alu_f(BcOp::kAddF, 0x58);
  alu_f(BcOp::kSubF, 0x5C);
  alu_f(BcOp::kMulF, 0x59);
  alu_f(BcOp::kDivF, 0x5E);
  def(BcOp::kNegF, false, [](TB& t) {
    // IEEE negation is a sign-bit flip — identical to what -x compiles to.
    t.LoadSlot(RAX, PatchKind::kSlotB);
    t.a.MovImm64(RCX, 0x8000000000000000ull);
    t.a.XorRegReg(RAX, RCX);
    t.StoreSlot(RAX, PatchKind::kSlotA);
  });
  def(BcOp::kCastIF, false, [](TB& t) {
    t.a.Cvtsi2sdXmmMem(XMM0, kSlotBase, 0, true);
    t.Mark(PatchKind::kSlotB);
    t.StoreSlotSd(XMM0, PatchKind::kSlotA);
  });
  def(BcOp::kCastFI, false, [](TB& t) {
    t.a.Cvttsd2siRegMem(RAX, kSlotBase, 0, true);
    t.Mark(PatchKind::kSlotB);
    t.StoreSlot(RAX, PatchKind::kSlotA);
  });

  // --- comparisons (value-producing) --------------------------------------
  const BcOp cmp_i[] = {BcOp::kEqI, BcOp::kNeI, BcOp::kLtI,
                        BcOp::kLeI, BcOp::kGtI, BcOp::kGeI};
  const BcOp cmp_f[] = {BcOp::kEqF, BcOp::kNeF, BcOp::kLtF,
                        BcOp::kLeF, BcOp::kGtF, BcOp::kGeF};
  for (int i = 0; i < 6; ++i) {
    def(cmp_i[i], false, [i](TB& t) {
      t.LoadSlot(RAX, PatchKind::kSlotB);
      t.a.CmpRegMem(RAX, kSlotBase, 0, true);
      t.Mark(PatchKind::kSlotC);
      t.StoreBool(ValCond(i));
    });
    def(cmp_f[i], false, [i](TB& t) {
      PatchKind lhs = FSwapped(i) ? PatchKind::kSlotC : PatchKind::kSlotB;
      PatchKind rhs = FSwapped(i) ? PatchKind::kSlotB : PatchKind::kSlotC;
      t.LoadSlotSd(XMM0, lhs);
      t.a.CmpsdXmmMem(XMM0, kSlotBase, 0, FPred(i), true);
      t.Mark(rhs);
      t.StoreFBool();
    });
  }

  // --- booleans ------------------------------------------------------------
  auto bool_ab = [&](BcOp op, bool is_or) {
    def(op, false, [is_or](TB& t) {
      t.LoadSlot(RAX, PatchKind::kSlotB);
      t.a.TestRegReg(RAX, RAX);
      t.a.Setcc(kCondNE, RAX);
      t.LoadSlot(RCX, PatchKind::kSlotC);
      t.a.TestRegReg(RCX, RCX);
      t.a.Setcc(kCondNE, RCX);
      if (is_or) {
        t.a.OrReg8(RAX, RCX);
      } else {
        t.a.AndReg8(RAX, RCX);
      }
      t.a.MovzxRegReg8(RAX, RAX);
      t.StoreSlot(RAX, PatchKind::kSlotA);
    });
  };
  bool_ab(BcOp::kAnd, false);
  bool_ab(BcOp::kOr, true);
  auto is_zero = [&](BcOp op) {
    def(op, false, [](TB& t) {
      t.LoadSlot(RAX, PatchKind::kSlotB);
      t.a.TestRegReg(RAX, RAX);
      t.StoreBool(kCondE);
    });
  };
  is_zero(BcOp::kNot);
  is_zero(BcOp::kIsNull);  // null == 0: same shape

  // --- records -------------------------------------------------------------
  def(BcOp::kRecGet, false, [](TB& t) {
    t.LoadSlot(RAX, PatchKind::kSlotB);
    t.a.MovRegMem(RAX, RAX, 0, true);
    t.Mark(PatchKind::kFieldC);
    t.StoreSlot(RAX, PatchKind::kSlotA);
  });
  def(BcOp::kRecSet, false, [](TB& t) {
    t.LoadSlot(RAX, PatchKind::kSlotA);
    t.LoadSlot(RCX, PatchKind::kSlotC);
    t.a.MovMemReg(RAX, 0, RCX, true);
    t.Mark(PatchKind::kFieldB);
  });
  def(BcOp::kRecAccAddI, false, [](TB& t) {
    t.LoadSlot(RAX, PatchKind::kSlotA);
    t.LoadSlot(RCX, PatchKind::kSlotC);
    t.a.AddMemReg(RAX, 0, RCX, true);
    t.Mark(PatchKind::kFieldB);
  });
  def(BcOp::kRecAccAddF, false, [](TB& t) {
    t.LoadSlot(RAX, PatchKind::kSlotA);
    t.a.MovsdXmmMem(XMM0, RAX, 0, true);
    t.Mark(PatchKind::kFieldB);
    t.a.ArithsdXmmMem(0x58, XMM0, kSlotBase, 0, true);
    t.Mark(PatchKind::kSlotC);
    t.a.MovsdMemXmm(RAX, 0, XMM0, true);
    t.Mark(PatchKind::kFieldB);
  });

  // --- arrays / lists (std::vector layout — behind the probe) -------------
  // RtArray/RtList hold their std::vector at offset 0; begin pointer at
  // vector offset 0, end pointer at offset 8 (RuntimeLayoutUsable checks).
  def(BcOp::kArrGet, true, [](TB& t) {
    t.LoadSlot(RAX, PatchKind::kSlotB);
    t.a.MovRegMem(RAX, RAX, 0);  // data.begin
    t.LoadSlot(RCX, PatchKind::kSlotC);
    t.a.MovRegMemIdx(RAX, RAX, RCX, 3);
    t.StoreSlot(RAX, PatchKind::kSlotA);
  });
  def(BcOp::kListGet, true, [](TB& t) {
    t.LoadSlot(RAX, PatchKind::kSlotB);
    t.a.MovRegMem(RAX, RAX, 0);
    t.LoadSlot(RCX, PatchKind::kSlotC);
    t.a.MovRegMemIdx(RAX, RAX, RCX, 3);
    t.StoreSlot(RAX, PatchKind::kSlotA);
  });
  def(BcOp::kArrSet, true, [](TB& t) {
    t.LoadSlot(RAX, PatchKind::kSlotA);
    t.a.MovRegMem(RAX, RAX, 0);
    t.LoadSlot(RCX, PatchKind::kSlotB);
    t.LoadSlot(RDX, PatchKind::kSlotC);
    t.a.MovMemIdxReg(RAX, RCX, 3, 0, RDX);
  });
  auto vec_len = [&](BcOp op) {
    def(op, true, [](TB& t) {
      t.LoadSlot(RAX, PatchKind::kSlotB);
      t.a.MovRegMem(RCX, RAX, 8);  // end
      t.a.SubRegMem(RCX, RAX, 0);  // - begin
      t.a.SarImm8(RCX, 3);         // / sizeof(Slot)
      t.StoreSlot(RCX, PatchKind::kSlotA);
    });
  };
  vec_len(BcOp::kArrLen);
  vec_len(BcOp::kListSize);
  def(BcOp::kArrAccAddI, true, [](TB& t) {
    t.LoadSlot(RAX, PatchKind::kSlotA);
    t.a.MovRegMem(RAX, RAX, 0);
    t.LoadSlot(RCX, PatchKind::kSlotB);
    t.LoadSlot(RDX, PatchKind::kSlotC);
    t.a.AddMemIdxReg(RAX, RCX, 3, 0, RDX);
  });
  def(BcOp::kArrAccAddF, true, [](TB& t) {
    t.LoadSlot(RAX, PatchKind::kSlotA);
    t.a.MovRegMem(RAX, RAX, 0);
    t.LoadSlot(RCX, PatchKind::kSlotB);
    t.a.MovsdXmmMemIdx(XMM0, RAX, RCX, 3);
    t.a.ArithsdXmmMem(0x58, XMM0, kSlotBase, 0, true);
    t.Mark(PatchKind::kSlotC);
    t.a.MovsdMemIdxXmm(RAX, RCX, 3, XMM0);
  });

  // --- base-table access ---------------------------------------------------
  def(BcOp::kColGet, false, [](TB& t) {
    t.LoadPtr(R11);
    t.LoadSlot(RAX, PatchKind::kSlotC);
    t.a.MovRegMemIdx(RAX, R11, RAX, 3);
    t.StoreSlot(RAX, PatchKind::kSlotA);
  });
  def(BcOp::kColDict, false, [](TB& t) {
    t.LoadPtr(R11);
    t.LoadSlot(RAX, PatchKind::kSlotC);
    t.a.MovsxdRegMemIdx(RAX, R11, RAX);  // int32 codes, sign-extended
    t.StoreSlot(RAX, PatchKind::kSlotA);
  });
  // Load-time indexes (struct offsets behind the probe). The unsigned
  // compare folds the key < 0 and key > max_key range checks into one.
  def(BcOp::kIdxBucketLen, true, [](TB& t) {
    t.LoadPtr(R11);
    t.LoadSlot(RAX, PatchKind::kSlotC);
    t.a.XorReg32(RCX);
    t.a.CmpRegMem(RAX, R11, 0);  // max_key
    size_t out = t.a.Jcc8(kCondA);
    t.a.MovRegMem(RDX, R11, 8);  // offsets.begin
    t.a.MovRegMemIdx(RCX, RDX, RAX, 3, 8);  // offsets[key + 1]
    t.a.SubRegMemIdx(RCX, RDX, RAX, 3);     // - offsets[key]
    t.a.PatchRel8(out);
    t.StoreSlot(RCX, PatchKind::kSlotA);
  });
  def(BcOp::kIdxBucketRow, true, [](TB& t) {
    t.LoadPtr(R11);
    t.LoadSlot(RAX, PatchKind::kSlotC);  // key
    t.a.MovRegMem(RDX, R11, 8);          // offsets.begin
    t.a.MovRegMemIdx(RAX, RDX, RAX, 3);  // offsets[key]
    t.a.AddRegMem(RAX, kSlotBase, 0, true);  // + j
    t.Mark(PatchKind::kSlotD);
    t.a.MovRegMem(RDX, R11, 32);         // rows.begin
    t.a.MovRegMemIdx(RAX, RDX, RAX, 3);
    t.StoreSlot(RAX, PatchKind::kSlotA);
  });
  def(BcOp::kIdxPkRow, true, [](TB& t) {
    t.LoadPtr(R11);
    t.LoadSlot(RAX, PatchKind::kSlotC);
    t.a.MovImmSext32(RCX, -1);
    t.a.CmpRegMem(RAX, R11, 0);  // max_key
    size_t out = t.a.Jcc8(kCondA);
    t.a.MovRegMem(RDX, R11, 8);  // row_of.begin
    t.a.MovRegMemIdx(RCX, RDX, RAX, 3);
    t.a.PatchRel8(out);
    t.StoreSlot(RCX, PatchKind::kSlotA);
  });

  // --- fused super-instructions -------------------------------------------
  const BcOp colcmp_i[] = {BcOp::kColGetEqI, BcOp::kColGetNeI,
                           BcOp::kColGetLtI, BcOp::kColGetLeI,
                           BcOp::kColGetGtI, BcOp::kColGetGeI};
  const BcOp colcmp_f[] = {BcOp::kColGetEqF, BcOp::kColGetNeF,
                           BcOp::kColGetLtF, BcOp::kColGetLeF,
                           BcOp::kColGetGtF, BcOp::kColGetGeF};
  const BcOp jn_i[] = {BcOp::kJnEqI, BcOp::kJnNeI, BcOp::kJnLtI,
                       BcOp::kJnLeI, BcOp::kJnGtI, BcOp::kJnGeI};
  const BcOp jn_f[] = {BcOp::kJnEqF, BcOp::kJnNeF, BcOp::kJnLtF,
                       BcOp::kJnLeF, BcOp::kJnGtF, BcOp::kJnGeF};
  const BcOp jncol_i[] = {BcOp::kJnColEqI, BcOp::kJnColNeI, BcOp::kJnColLtI,
                          BcOp::kJnColLeI, BcOp::kJnColGtI, BcOp::kJnColGeI};
  const BcOp jncol_f[] = {BcOp::kJnColEqF, BcOp::kJnColNeF, BcOp::kJnColLtF,
                          BcOp::kJnColLeF, BcOp::kJnColGtF, BcOp::kJnColGeF};
  for (int i = 0; i < 6; ++i) {
    // R[a] = col[R[c]] CMP R[d]
    def(colcmp_i[i], false, [i](TB& t) {
      t.LoadPtr(R11);
      t.LoadSlot(RAX, PatchKind::kSlotC);
      t.a.MovRegMemIdx(RAX, R11, RAX, 3);
      t.a.CmpRegMem(RAX, kSlotBase, 0, true);
      t.Mark(PatchKind::kSlotD);
      t.StoreBool(ValCond(i));
    });
    def(colcmp_f[i], false, [i](TB& t) {
      t.LoadPtr(R11);
      t.LoadSlot(RAX, PatchKind::kSlotC);
      if (FSwapped(i)) {
        t.LoadSlotSd(XMM0, PatchKind::kSlotD);
        t.a.CmpsdXmmMemIdx(XMM0, R11, RAX, 3, FPred(i));
      } else {
        t.a.MovsdXmmMemIdx(XMM0, R11, RAX, 3);
        t.a.CmpsdXmmMem(XMM0, kSlotBase, 0, FPred(i), true);
        t.Mark(PatchKind::kSlotD);
      }
      t.StoreFBool();
    });
    // if (!(R[a] CMP R[b])) jump
    def(jn_i[i], false, [i](TB& t) {
      t.LoadSlot(RAX, PatchKind::kSlotA);
      t.a.CmpRegMem(RAX, kSlotBase, 0, true);
      t.Mark(PatchKind::kSlotB);
      t.Jump(NegCond(i));
    });
    def(jn_f[i], false, [i](TB& t) {
      PatchKind lhs = FSwapped(i) ? PatchKind::kSlotB : PatchKind::kSlotA;
      PatchKind rhs = FSwapped(i) ? PatchKind::kSlotA : PatchKind::kSlotB;
      t.LoadSlotSd(XMM0, lhs);
      t.a.CmpsdXmmMem(XMM0, kSlotBase, 0, FPred(i), true);
      t.Mark(rhs);
      t.a.MovqRegXmm(RAX, XMM0);
      t.a.TestRegReg(RAX, RAX);
      t.Jump(kCondE);  // comparison false -> take the branch
    });
    // if (!(col[R[c]] CMP R[a])) jump
    def(jncol_i[i], false, [i](TB& t) {
      t.LoadPtr(R11);
      t.LoadSlot(RAX, PatchKind::kSlotC);
      t.a.MovRegMemIdx(RAX, R11, RAX, 3);
      t.a.CmpRegMem(RAX, kSlotBase, 0, true);
      t.Mark(PatchKind::kSlotA);
      t.Jump(NegCond(i));
    });
    def(jncol_f[i], false, [i](TB& t) {
      t.LoadPtr(R11);
      t.LoadSlot(RAX, PatchKind::kSlotC);
      if (FSwapped(i)) {
        t.LoadSlotSd(XMM0, PatchKind::kSlotA);
        t.a.CmpsdXmmMemIdx(XMM0, R11, RAX, 3, FPred(i));
      } else {
        t.a.MovsdXmmMemIdx(XMM0, R11, RAX, 3);
        t.a.CmpsdXmmMem(XMM0, kSlotBase, 0, FPred(i), true);
        t.Mark(PatchKind::kSlotA);
      }
      t.a.MovqRegXmm(RAX, XMM0);
      t.a.TestRegReg(RAX, RAX);
      t.Jump(kCondE);
    });
  }

  // --- generic hash-map probes (i64 keys) ----------------------------------
  // The compiler tags kMapFind/kMapGetOrNull/kMMapGetOrNull with the map's
  // key kind (insn.d); the stitcher only uses these templates for
  // kMapKeyI64 instructions (integral hash + integral equality — exactly
  // SlotHasher's default branch). The probe is self-contained: the bucket
  // array pointer and mask are loaded from the live map object on every
  // execution, so rehashing between (or during) loops needs no code
  // invalidation, and only the insert/create path ever deopts.
  size_t map_boff = RtHashMap::BucketsOffsetForJit();
  size_t mmap_moff = RtMultiMap::MapOffsetForJit();
  // rax = key, r11 = RtHashMap*; leaves r11 = matching node or null.
  // Clobbers rcx/rdx. Node layout {key, value, next} checked by the probe.
  auto emit_probe = [map_boff](TB& t) {
    int32_t bo = static_cast<int32_t>(map_boff);
    t.a.MovRegReg(RCX, RAX);  // h = HashMix(key): splitmix64 finalizer
    t.a.MovImm64(RDX, kMix1);
    t.a.AddRegReg(RCX, RDX);
    t.a.MovRegReg(RDX, RCX);
    t.a.ShrImm8(RDX, 30);
    t.a.XorRegReg(RCX, RDX);
    t.a.MovImm64(RDX, kMix2);
    t.a.ImulRegReg(RCX, RDX);
    t.a.MovRegReg(RDX, RCX);
    t.a.ShrImm8(RDX, 27);
    t.a.XorRegReg(RCX, RDX);
    t.a.MovImm64(RDX, kMix3);
    t.a.ImulRegReg(RCX, RDX);
    t.a.MovRegReg(RDX, RCX);
    t.a.ShrImm8(RDX, 31);
    t.a.XorRegReg(RCX, RDX);
    t.a.MovRegMem(RDX, R11, bo + 8);  // buckets.end
    t.a.SubRegMem(RDX, R11, bo);      // - begin = bytes
    t.a.SarImm8(RDX, 3);              // bucket count (a power of two)
    t.a.DecReg(RDX);                  // mask
    t.a.AndRegReg(RCX, RDX);          // bucket index
    t.a.MovRegMem(R11, R11, bo);      // buckets.begin
    t.a.MovRegMemIdx(R11, R11, RCX, 3);  // chain head
    size_t loop = t.a.here();
    t.a.TestRegReg(R11, R11);
    size_t miss = t.a.Jcc8(kCondE);
    t.a.CmpRegMem(RAX, R11, 0);  // key == node->key.i ?
    size_t hit = t.a.Jcc8(kCondE);
    t.a.MovRegMem(R11, R11, 16);  // node->next
    t.a.Jmp8Back(loop);
    t.a.PatchRel8(miss);
    t.a.PatchRel8(hit);
  };
  def(BcOp::kMapFind, true, [&emit_probe](TB& t) {
    t.LoadSlot(RAX, PatchKind::kSlotC);
    t.LoadSlot(R11, PatchKind::kSlotB);
    emit_probe(t);
    t.StoreSlot(R11, PatchKind::kSlotA);
  });
  // Shared value-load tail: R[a] = node ? node->value : null (null stays 0
  // in r11, so the store needs no second branch arm).
  auto node_value = [](TB& t) {
    t.a.TestRegReg(R11, R11);
    size_t nul = t.a.Jcc8(kCondE);
    t.a.MovRegMem(R11, R11, 8);  // node->value
    t.a.PatchRel8(nul);
    t.StoreSlot(R11, PatchKind::kSlotA);
  };
  def(BcOp::kMapGetOrNull, true, [&emit_probe, &node_value](TB& t) {
    t.LoadSlot(RAX, PatchKind::kSlotC);
    t.LoadSlot(R11, PatchKind::kSlotB);
    emit_probe(t);
    node_value(t);
  });
  def(BcOp::kMMapGetOrNull, true,
      [&emit_probe, &node_value, mmap_moff](TB& t) {
        t.LoadSlot(RAX, PatchKind::kSlotC);
        t.LoadSlot(R11, PatchKind::kSlotB);
        if (mmap_moff != 0) {  // the embedded key map
          t.a.AddImm8(R11, static_cast<int8_t>(mmap_moff));
        }
        emit_probe(t);
        node_value(t);  // node->value is the bucket RtList*
      });
  // Generic variants for string/record keys (SelectTemplate picks them
  // when insn.d != kMapKeyI64): one helper call running the typed probe.
  auto generic_probe = [&](BcOp op, const void* helper) {
    defalt(op, false, [helper](TB& t) {
      t.LoadSlot(RDI, PatchKind::kSlotB);  // map / multimap
      t.LoadSlot(RSI, PatchKind::kSlotC);  // key bits
      t.CallHelper(helper);
      t.StoreSlot(RAX, PatchKind::kSlotA);
    });
  };
  generic_probe(BcOp::kMapFind,
                reinterpret_cast<const void*>(&HelpMapFindGeneric));
  generic_probe(BcOp::kMapGetOrNull,
                reinterpret_cast<const void*>(&HelpMapGetOrNullGeneric));
  generic_probe(BcOp::kMMapGetOrNull,
                reinterpret_cast<const void*>(&HelpMMapGetOrNullGeneric));
  def(BcOp::kMapNodeVal, true, [](TB& t) {
    t.LoadSlot(RAX, PatchKind::kSlotB);
    t.a.MovRegMem(RAX, RAX, 8);  // node->value
    t.StoreSlot(RAX, PatchKind::kSlotA);
  });
  // Entry iteration (kMapForeach lowering) and size: pure loads through the
  // insertion-order vector.
  size_t map_eoff = RtHashMap::EntriesOffsetForJit();
  def(BcOp::kMapEntryKV, true, [map_eoff](TB& t) {
    int32_t eo = static_cast<int32_t>(map_eoff);
    t.LoadSlot(R11, PatchKind::kSlotC);  // map
    t.LoadSlot(RAX, PatchKind::kSlotD);  // entry index
    t.a.MovRegMem(R11, R11, eo);         // entries.begin
    t.a.MovRegMemIdx(R11, R11, RAX, 3);  // Node*
    t.a.MovRegMem(RAX, R11, 0);          // key
    t.StoreSlot(RAX, PatchKind::kSlotA);
    t.a.MovRegMem(RCX, R11, 8);          // value
    t.StoreSlot(RCX, PatchKind::kSlotB);
  });
  def(BcOp::kMapSize, true, [map_eoff](TB& t) {
    int32_t eo = static_cast<int32_t>(map_eoff);
    t.LoadSlot(RAX, PatchKind::kSlotB);
    t.a.MovRegMem(RCX, RAX, eo + 8);  // entries.end
    t.a.SubRegMem(RCX, RAX, eo);      // - begin
    t.a.SarImm8(RCX, 3);
    t.StoreSlot(RCX, PatchKind::kSlotA);
  });
  // Inserts and per-row allocation: helper calls — the state they mutate
  // is reachable from the object or from the reserved context registers,
  // so the hot loop never re-enters the interpreter for them.
  def(BcOp::kMapInsert, false, [](TB& t) {
    t.LoadSlot(RDI, PatchKind::kSlotB);  // map
    t.LoadSlot(RSI, PatchKind::kSlotC);  // key bits
    t.LoadSlot(RDX, PatchKind::kSlotD);  // value bits
    t.CallHelper(reinterpret_cast<const void*>(&HelpMapInsert));
    t.StoreSlot(RAX, PatchKind::kSlotA);  // the new node
  });
  def(BcOp::kMMapAdd, false, [](TB& t) {
    t.LoadSlot(RDI, PatchKind::kSlotA);  // multimap
    t.LoadSlot(RSI, PatchKind::kSlotB);  // key bits
    t.LoadSlot(RDX, PatchKind::kSlotC);  // value bits
    t.CallHelper(reinterpret_cast<const void*>(&HelpMMapAdd));
  });
  def(BcOp::kListAppend, false, [](TB& t) {
    t.LoadSlot(RDI, PatchKind::kSlotA);  // list
    t.LoadSlot(RSI, PatchKind::kSlotC);  // AllocStats* (stats_reg)
    t.LoadSlot(RDX, PatchKind::kSlotB);  // value bits
    t.CallHelper(reinterpret_cast<const void*>(&HelpListAppend));
  });
  auto rec_new = [&](BcOp op, const void* helper) {
    def(op, false, [helper](TB& t) {
      t.LoadSlot(RDI, PatchKind::kSlotC);  // RecordHeap* (rec_reg)
      t.a.MovRegReg(RSI, kSlotBase);
      t.a.MovImm64(RDX, 0);
      t.Mark(PatchKind::kExtraB);  // field operand list
      t.a.MovImm32(RCX, 0);
      t.Mark(PatchKind::kImmN);
      t.CallHelper(helper);
      t.StoreSlot(RAX, PatchKind::kSlotA);
    });
  };
  rec_new(BcOp::kRecNew, reinterpret_cast<const void*>(&HelpRecNew));
  rec_new(BcOp::kPoolRecNew, reinterpret_cast<const void*>(&HelpPoolRecNew));
  def(BcOp::kPoolAlloc, false, [](TB& t) {
    t.LoadSlot(RDI, PatchKind::kSlotC);  // RecordHeap* (rec_reg)
    t.LoadSlot(RSI, PatchKind::kSlotB);  // field count
    t.CallHelper(reinterpret_cast<const void*>(&HelpPoolAlloc));
    t.StoreSlot(RAX, PatchKind::kSlotA);
  });

  // --- string comparisons (helper calls) -----------------------------------
  // An interned/constant operand makes pointer equality a common case for
  // kStrEq/kStrNe (dictionary-coded columns compare their pooled strings
  // against a preset constant), so those short-circuit before the strcmp
  // call; every template falls back to a C++ helper mirroring the VM.
  // eq_result: value stored when both operands are the same pointer.
  auto str2 = [&](BcOp op, const void* helper, int eq_result) {
    def(op, false, [helper, eq_result](TB& t) {
      t.LoadSlot(RDI, PatchKind::kSlotB);
      t.LoadSlot(RSI, PatchKind::kSlotC);
      t.a.CmpRegReg(RDI, RSI);
      size_t same = t.a.Jcc8(kCondE);
      t.CallHelper(helper);
      size_t end = t.a.Jmp8();
      t.a.PatchRel8(same);
      t.a.MovImm32(RAX, static_cast<uint32_t>(eq_result));
      t.a.PatchRel8(end);
      t.StoreSlot(RAX, PatchKind::kSlotA);
    });
  };
  str2(BcOp::kStrEq, reinterpret_cast<const void*>(&HelpStrEq), 1);
  str2(BcOp::kStrNe, reinterpret_cast<const void*>(&HelpStrNe), 0);
  str2(BcOp::kStrLt, reinterpret_cast<const void*>(&HelpStrLt), 0);
  str2(BcOp::kStrStarts, reinterpret_cast<const void*>(&HelpStrStarts), 1);
  str2(BcOp::kStrEnds, reinterpret_cast<const void*>(&HelpStrEnds), 1);
  str2(BcOp::kStrContains,
       reinterpret_cast<const void*>(&HelpStrContains), 1);
  def(BcOp::kStrLike, false, [](TB& t) {
    t.LoadSlot(RDI, PatchKind::kSlotB);
    t.a.MovImm64(RSI, 0);
    t.Mark(PatchKind::kPatternC);
    t.CallHelper(reinterpret_cast<const void*>(&HelpStrLikePre));
    t.StoreSlot(RAX, PatchKind::kSlotA);
  });

  // --- morsel addend logs --------------------------------------------------
  // kLogRow appends R[extra[b..b+n)] to the channel's vector<Slot> (reached
  // through the log register, insn.c). Fast path is a pure pointer bump —
  // the runtime reserves one entry per morsel row, so growth only happens
  // for channels appending from inner loops — and the grow path is a helper
  // call, not a deopt: the scan loop stays native either way.
  def(BcOp::kLogRow, true, [](TB& t) {
    t.LoadSlot(R11, PatchKind::kSlotC);  // the log: std::vector<Slot>*
    t.a.MovImm64(RDX, 0);
    t.Mark(PatchKind::kExtraB);  // operand list
    t.a.MovRegMem(RAX, R11, 8);  // end
    t.a.MovImm32(RCX, 0);
    t.Mark(PatchKind::kImmN8);  // n * sizeof(Slot)
    t.a.AddRegReg(RCX, RAX);    // proposed new end
    t.a.CmpRegMem(RCX, R11, 16);  // vs capacity end
    size_t slow = t.a.Jcc8(kCondA);
    size_t copy = t.a.here();  // n >= 1 always (channels log >= 1 value)
    t.a.Mov32RegMem(RSI, RDX, 0);             // operand register index
    t.a.MovRegMemIdx(R10, kSlotBase, RSI, 3); // its slot
    t.a.MovMemReg(RAX, 0, R10);
    t.a.AddImm8(RAX, 8);
    t.a.AddImm8(RDX, 4);
    t.a.CmpRegReg(RAX, RCX);
    t.a.Jcc8Back(kCondNE, copy);
    t.a.MovMemReg(R11, 8, RCX);  // commit the new end
    size_t end = t.a.Jmp8();
    t.a.PatchRel8(slow);
    t.a.MovRegReg(RDI, R11);
    t.a.MovRegReg(RSI, kSlotBase);
    t.a.SubRegReg(RCX, RAX);  // byte count (rdx still holds argv)
    t.CallHelper(reinterpret_cast<const void*>(&HelpLogGrow));
    t.a.PatchRel8(end);
  });

  // --- sorts ---------------------------------------------------------------
  // One helper call: regs + the instruction's JitSortSite descriptor. The
  // helper reads the container/count through the register file, drives the
  // native comparator segment per comparison, and shares the stable merge
  // core (and the morsel-parallel run/merge tree) with the VM. The stitcher
  // only uses this template when the comparator region is fully native
  // (emitter.cc); otherwise the sort deopts as before.
  auto sort_op = [&](BcOp op) {
    def(op, false, [](TB& t) {
      t.a.MovRegReg(RDI, kSlotBase);
      t.a.MovImm64(RSI, 0);
      t.Mark(PatchKind::kSortSite);
      t.CallHelper(reinterpret_cast<const void*>(&HelpSort));
    });
  };
  sort_op(BcOp::kArrSort);
  sort_op(BcOp::kListSort);

  // --- result emission -----------------------------------------------------
  // One helper call staging the row straight into the ResultTable the
  // out-register points at — works for any emit schema (the string mask
  // routes interning), and for main and morsel-private tables alike.
  def(BcOp::kEmit, false, [](TB& t) {
    t.LoadSlot(RDI, PatchKind::kSlotB);  // ResultTable* (prog.out_reg)
    t.a.MovRegReg(RSI, kSlotBase);       // the register file
    t.a.MovImm64(RDX, 0);
    t.Mark(PatchKind::kExtraA);  // operand list
    t.a.MovImm32(RCX, 0);
    t.Mark(PatchKind::kImmN);
    t.a.MovImm32(R8, 0);
    t.Mark(PatchKind::kImmCMask);
    t.CallHelper(reinterpret_cast<const void*>(&HelpEmit));
  });

  // Everything else (container construction into the engine's deques,
  // kStrSubstr interning, morsel dispatch) deopts: code stays nullptr.

  // Flatten into stable storage: concatenate all template bytes (main
  // table first, then variants), then resolve the code pointers against
  // the final buffer.
  auto flatten = [&](std::vector<Built>& src, OpTemplate* table) {
    for (int op = 0; op < kNumOps; ++op) {
      Built& b = src[op];
      if (b.bytes.empty()) continue;
      OpTemplate& t = table[op];
      if (b.patches.size() > sizeof(t.patches) / sizeof(t.patches[0])) {
        std::fprintf(stderr,
                     "jit: template for %s has %zu patch points (max %zu)\n",
                     BcOpName(static_cast<BcOp>(op)), b.patches.size(),
                     sizeof(t.patches) / sizeof(t.patches[0]));
        std::abort();  // a template bug, not a runtime condition
      }
      t.size = static_cast<uint16_t>(b.bytes.size());
      t.num_patches = static_cast<uint8_t>(b.patches.size());
      for (size_t i = 0; i < b.patches.size(); ++i) t.patches[i] = b.patches[i];
      t.needs_layout_probe = b.needs_probe;
      s->bytes.insert(s->bytes.end(), b.bytes.begin(), b.bytes.end());
    }
  };
  flatten(built, s->table);
  flatten(built_alt, s->alt);
  size_t off = 0;
  auto resolve = [&](std::vector<Built>& src, OpTemplate* table) {
    for (int op = 0; op < kNumOps; ++op) {
      if (src[op].bytes.empty()) continue;
      table[op].code = s->bytes.data() + off;
      off += src[op].bytes.size();
    }
  };
  resolve(built, s->table);
  resolve(built_alt, s->alt);
  return s;
}

const Store* GetStore() {
  static const Store* store = BuildTemplates();
  return store;
}

}  // namespace

const OpTemplate* SelectTemplate(const Insn& insn, bool layout_ok) {
  const Store* s = GetStore();
  const OpTemplate* t = &s->table[insn.op];
  switch (static_cast<BcOp>(insn.op)) {
    case BcOp::kMapFind:
    case BcOp::kMapGetOrNull:
    case BcOp::kMMapGetOrNull:
      // Non-i64 keys take the generic helper-call probe; so do i64 keys
      // when the layout probe failed — the helper runs the typed C++
      // probe and needs no raw layout, keeping probe loops native.
      if (insn.d != kMapKeyI64 || !layout_ok) t = &s->alt[insn.op];
      break;
    default:
      break;
  }
  if (t->code == nullptr) return nullptr;
  if (t->needs_layout_probe && !layout_ok) return nullptr;
  return t;
}

bool RuntimeLayoutUsable() {
  static const bool ok = [] {
    if (sizeof(void*) != 8 || sizeof(std::vector<Slot>) != 24) return false;
    std::vector<Slot> v(3);
    unsigned char* raw = reinterpret_cast<unsigned char*>(&v);
    Slot* b = nullptr;
    Slot* e = nullptr;
    std::memcpy(&b, raw, 8);
    std::memcpy(&e, raw + 8, 8);
    if (b != v.data() || e != v.data() + 3) return false;
    {
      // Capacity pointer in the third word — the kLogRow bump checks it.
      std::vector<Slot> c;
      c.reserve(7);
      unsigned char* craw = reinterpret_cast<unsigned char*>(&c);
      Slot* cap = nullptr;
      std::memcpy(&cap, craw + 16, 8);
      if (cap != c.data() + 7) return false;
    }
    // Hash-map probe templates: node field offsets, the bucket vector of a
    // live map (16 null chain heads after construction), and the embedded
    // member offsets small enough for the template's addressing.
    if (offsetof(RtHashMap::Node, key) != 0 ||
        offsetof(RtHashMap::Node, value) != 8 ||
        offsetof(RtHashMap::Node, next) != 16) {
      return false;
    }
    {
      size_t boff = RtHashMap::BucketsOffsetForJit();
      size_t eoff = RtHashMap::EntriesOffsetForJit();
      if (boff > 96 || eoff > 96 || RtMultiMap::MapOffsetForJit() > 96) {
        return false;
      }
      // End-to-end: insert through the C++ map, then re-find every key the
      // way the stitched probe does — raw member offsets, the inline
      // splitmix64 hash, bucket mask from the vector span, intrusive chain
      // walk — across a rehash (40 inserts grow 16 -> 64 buckets). The
      // insertion-order vector feeds the kMapEntryKV/kMapSize templates.
      ir::Type i64t;
      i64t.kind = ir::TypeKind::kI64;
      AllocStats stats;
      RtHashMap m(&i64t, &stats);
      for (int64_t k = 0; k < 40; ++k) m.Insert(SlotI(k * 7), SlotI(k));
      unsigned char* mraw = reinterpret_cast<unsigned char*>(&m);
      RtHashMap::Node** bb = nullptr;
      RtHashMap::Node** be = nullptr;
      std::memcpy(&bb, mraw + boff, 8);
      std::memcpy(&be, mraw + boff + 8, 8);
      size_t nb = static_cast<size_t>(be - bb);
      if (nb < 40 || (nb & (nb - 1)) != 0) return false;
      for (int64_t k = 0; k < 40; ++k) {
        RtHashMap::Node* n =
            bb[HashMix(static_cast<uint64_t>(k * 7)) & (nb - 1)];
        while (n != nullptr && n->key.i != k * 7) n = n->next;
        if (n == nullptr || n->value.i != k) return false;
      }
      RtHashMap::Node** eb = nullptr;
      RtHashMap::Node** ee = nullptr;
      std::memcpy(&eb, mraw + eoff, 8);
      std::memcpy(&ee, mraw + eoff + 8, 8);
      if (ee - eb != 40) return false;
      for (int64_t k = 0; k < 40; ++k) {
        if (eb[k]->key.i != k * 7) return false;
      }
    }
    RtArray arr;
    if (reinterpret_cast<unsigned char*>(&arr.data) !=
        reinterpret_cast<unsigned char*>(&arr)) {
      return false;
    }
    RtList list;
    if (reinterpret_cast<unsigned char*>(&list.items) !=
        reinterpret_cast<unsigned char*>(&list)) {
      return false;
    }
    storage::PartitionedIndex pi;
    unsigned char* pr = reinterpret_cast<unsigned char*>(&pi);
    if (reinterpret_cast<unsigned char*>(&pi.max_key) != pr ||
        reinterpret_cast<unsigned char*>(&pi.offsets) != pr + 8 ||
        reinterpret_cast<unsigned char*>(&pi.rows) != pr + 32) {
      return false;
    }
    storage::PkIndex pk;
    unsigned char* kr = reinterpret_cast<unsigned char*>(&pk);
    if (reinterpret_cast<unsigned char*>(&pk.max_key) != kr ||
        reinterpret_cast<unsigned char*>(&pk.row_of) != kr + 8) {
      return false;
    }
    return true;
  }();
  return ok;
}

}  // namespace qc::exec::jit
