#include "tpch/schema.h"

namespace qc::tpch {

using storage::ColType;
using storage::ForeignKey;
using storage::TableDef;

namespace {

TableDef Region() {
  TableDef t;
  t.name = "region";
  t.columns = {{"r_regionkey", ColType::kI64},
               {"r_name", ColType::kStr},
               {"r_comment", ColType::kStr}};
  t.primary_key = 0;
  return t;
}

TableDef Nation() {
  TableDef t;
  t.name = "nation";
  t.columns = {{"n_nationkey", ColType::kI64},
               {"n_name", ColType::kStr},
               {"n_regionkey", ColType::kI64},
               {"n_comment", ColType::kStr}};
  t.primary_key = 0;
  t.foreign_keys = {ForeignKey{2, "region", 0}};
  return t;
}

TableDef Supplier() {
  TableDef t;
  t.name = "supplier";
  t.columns = {{"s_suppkey", ColType::kI64},   {"s_name", ColType::kStr},
               {"s_address", ColType::kStr},   {"s_nationkey", ColType::kI64},
               {"s_phone", ColType::kStr},     {"s_acctbal", ColType::kF64},
               {"s_comment", ColType::kStr}};
  t.primary_key = 0;
  t.foreign_keys = {ForeignKey{3, "nation", 0}};
  return t;
}

TableDef Customer() {
  TableDef t;
  t.name = "customer";
  t.columns = {{"c_custkey", ColType::kI64},    {"c_name", ColType::kStr},
               {"c_address", ColType::kStr},    {"c_nationkey", ColType::kI64},
               {"c_phone", ColType::kStr},      {"c_acctbal", ColType::kF64},
               {"c_mktsegment", ColType::kStr}, {"c_comment", ColType::kStr}};
  t.primary_key = 0;
  t.foreign_keys = {ForeignKey{3, "nation", 0}};
  return t;
}

TableDef Part() {
  TableDef t;
  t.name = "part";
  t.columns = {{"p_partkey", ColType::kI64},
               {"p_name", ColType::kStr},
               {"p_mfgr", ColType::kStr},
               {"p_brand", ColType::kStr},
               {"p_type", ColType::kStr},
               {"p_size", ColType::kI64},
               {"p_container", ColType::kStr},
               {"p_retailprice", ColType::kF64},
               {"p_comment", ColType::kStr}};
  t.primary_key = 0;
  return t;
}

TableDef PartSupp() {
  TableDef t;
  t.name = "partsupp";
  t.columns = {{"ps_partkey", ColType::kI64},
               {"ps_suppkey", ColType::kI64},
               {"ps_availqty", ColType::kI64},
               {"ps_supplycost", ColType::kF64},
               {"ps_comment", ColType::kStr}};
  t.foreign_keys = {ForeignKey{0, "part", 0}, ForeignKey{1, "supplier", 0}};
  return t;
}

TableDef Orders() {
  TableDef t;
  t.name = "orders";
  t.columns = {{"o_orderkey", ColType::kI64},
               {"o_custkey", ColType::kI64},
               {"o_orderstatus", ColType::kStr},
               {"o_totalprice", ColType::kF64},
               {"o_orderdate", ColType::kDate},
               {"o_orderpriority", ColType::kStr},
               {"o_clerk", ColType::kStr},
               {"o_shippriority", ColType::kI64},
               {"o_comment", ColType::kStr}};
  t.primary_key = 0;
  t.foreign_keys = {ForeignKey{1, "customer", 0}};
  return t;
}

TableDef Lineitem() {
  TableDef t;
  t.name = "lineitem";
  t.columns = {{"l_orderkey", ColType::kI64},
               {"l_partkey", ColType::kI64},
               {"l_suppkey", ColType::kI64},
               {"l_linenumber", ColType::kI64},
               {"l_quantity", ColType::kF64},
               {"l_extendedprice", ColType::kF64},
               {"l_discount", ColType::kF64},
               {"l_tax", ColType::kF64},
               {"l_returnflag", ColType::kStr},
               {"l_linestatus", ColType::kStr},
               {"l_shipdate", ColType::kDate},
               {"l_commitdate", ColType::kDate},
               {"l_receiptdate", ColType::kDate},
               {"l_shipinstruct", ColType::kStr},
               {"l_shipmode", ColType::kStr},
               {"l_comment", ColType::kStr}};
  t.foreign_keys = {ForeignKey{0, "orders", 0}, ForeignKey{1, "part", 0},
                    ForeignKey{2, "supplier", 0}};
  return t;
}

}  // namespace

void AddTpchSchema(storage::Database* db) {
  db->AddTable(Region());
  db->AddTable(Nation());
  db->AddTable(Supplier());
  db->AddTable(Customer());
  db->AddTable(Part());
  db->AddTable(PartSupp());
  db->AddTable(Orders());
  db->AddTable(Lineitem());
}

}  // namespace qc::tpch
