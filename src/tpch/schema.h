// TPC-H logical schema (all eight relations) with primary-/foreign-key
// annotations — the schema-definition-time annotations the paper's automatic
// index inference and partitioning depend on (Appendix B.1).
#ifndef QC_TPCH_SCHEMA_H_
#define QC_TPCH_SCHEMA_H_

#include "storage/database.h"

namespace qc::tpch {

// Adds the eight empty TPC-H tables to `db` (region, nation, supplier,
// customer, part, partsupp, orders, lineitem).
void AddTpchSchema(storage::Database* db);

}  // namespace qc::tpch

#endif  // QC_TPCH_SCHEMA_H_
