#include "tpch/queries.h"

#include <cstdio>
#include <cstdlib>

#include "common/date.h"

namespace qc::tpch {

using namespace qc::qplan;  // NOLINT — plan-builder DSL

namespace {

// --- small helpers -----------------------------------------------------------

ExprPtr Revenue() {
  return Mul(Col("l_extendedprice"), Sub(F(1.0), Col("l_discount")));
}

NamedExpr NE(const std::string& name, ExprPtr e) {
  return NamedExpr{name, std::move(e)};
}

NamedExpr Keep(const std::string& name) { return NamedExpr{name, Col(name)}; }

// nation joined with a region filtered by name (nation probes, region builds).
PlanPtr NationOfRegion(const std::string& region_name) {
  return JoinOp(JoinKind::kInner, ScanOp("nation"),
                SelectOp(ScanOp("region"), Eq(Col("r_name"), S(region_name))),
                {Col("n_regionkey")}, {Col("r_regionkey")});
}

// nation projected to renamed columns (for self-join disambiguation).
PlanPtr NationAs(const std::string& prefix) {
  return ProjectOp(ScanOp("nation"),
                   {NE(prefix + "_nationkey", Col("n_nationkey")),
                    NE(prefix + "_name", Col("n_name"))});
}

// --- Q1: pricing summary report ---------------------------------------------

PlanPtr Q1() {
  PlanPtr li = SelectOp(ScanOp("lineitem"),
                        Le(Col("l_shipdate"), D(MakeDate(1998, 9, 2))));
  ExprPtr disc_price = Revenue();
  ExprPtr charge = Mul(Revenue(), Add(F(1.0), Col("l_tax")));
  PlanPtr agg = AggOp(
      std::move(li),
      {Keep("l_returnflag"), Keep("l_linestatus")},
      {Sum(Col("l_quantity"), "sum_qty"),
       Sum(Col("l_extendedprice"), "sum_base_price"),
       Sum(disc_price, "sum_disc_price"), Sum(charge, "sum_charge"),
       Avg(Col("l_quantity"), "avg_qty"),
       Avg(Col("l_extendedprice"), "avg_price"),
       Avg(Col("l_discount"), "avg_disc"), Count("count_order")});
  return SortOp(std::move(agg),
                {Asc(Col("l_returnflag")), Asc(Col("l_linestatus"))});
}

// --- Q2: minimum cost supplier ------------------------------------------------

PlanPtr Q2PartsuppEurope() {
  PlanPtr s_n = JoinOp(JoinKind::kInner, ScanOp("supplier"),
                       NationOfRegion("EUROPE"), {Col("s_nationkey")},
                       {Col("n_nationkey")});
  return JoinOp(JoinKind::kInner, ScanOp("partsupp"), std::move(s_n),
                {Col("ps_suppkey")}, {Col("s_suppkey")});
}

PlanPtr Q2() {
  PlanPtr parts = SelectOp(
      ScanOp("part"),
      And(Eq(Col("p_size"), I(15)), EndsWith(Col("p_type"), "BRASS")));
  PlanPtr main = JoinOp(JoinKind::kInner, Q2PartsuppEurope(),
                        std::move(parts), {Col("ps_partkey")},
                        {Col("p_partkey")});
  PlanPtr mincost =
      AggOp(Q2PartsuppEurope(), {NE("mc_partkey", Col("ps_partkey"))},
            {Min(Col("ps_supplycost"), "min_cost")});
  PlanPtr filtered =
      JoinOp(JoinKind::kInner, std::move(main), std::move(mincost),
             {Col("ps_partkey")}, {Col("mc_partkey")},
             Eq(Col("ps_supplycost"), Col("min_cost")));
  PlanPtr proj = ProjectOp(
      std::move(filtered),
      {Keep("s_acctbal"), Keep("s_name"), Keep("n_name"), Keep("p_partkey"),
       Keep("p_mfgr"), Keep("s_address"), Keep("s_phone"),
       Keep("s_comment")});
  return LimitOp(SortOp(std::move(proj),
                        {Desc(Col("s_acctbal")), Asc(Col("n_name")),
                         Asc(Col("s_name")), Asc(Col("p_partkey"))}),
                 100);
}

// --- Q3: shipping priority -----------------------------------------------------

PlanPtr Q3() {
  PlanPtr cust = SelectOp(ScanOp("customer"),
                          Eq(Col("c_mktsegment"), S("BUILDING")));
  PlanPtr ord = SelectOp(ScanOp("orders"),
                         Lt(Col("o_orderdate"), D(MakeDate(1995, 3, 15))));
  PlanPtr oc = JoinOp(JoinKind::kInner, std::move(ord), std::move(cust),
                      {Col("o_custkey")}, {Col("c_custkey")});
  PlanPtr li = SelectOp(ScanOp("lineitem"),
                        Gt(Col("l_shipdate"), D(MakeDate(1995, 3, 15))));
  PlanPtr main = JoinOp(JoinKind::kInner, std::move(li), std::move(oc),
                        {Col("l_orderkey")}, {Col("o_orderkey")});
  PlanPtr agg = AggOp(std::move(main),
                      {Keep("l_orderkey"), Keep("o_orderdate"),
                       Keep("o_shippriority")},
                      {Sum(Revenue(), "revenue")});
  return LimitOp(
      SortOp(std::move(agg), {Desc(Col("revenue")), Asc(Col("o_orderdate"))}),
      10);
}

// --- Q4: order priority checking ----------------------------------------------

PlanPtr Q4() {
  PlanPtr ord = SelectOp(
      ScanOp("orders"),
      Between(Col("o_orderdate"), D(MakeDate(1993, 7, 1)),
              D(MakeDate(1993, 10, 1))));
  PlanPtr li = SelectOp(ScanOp("lineitem"),
                        Lt(Col("l_commitdate"), Col("l_receiptdate")));
  PlanPtr semi = JoinOp(JoinKind::kSemi, std::move(ord), std::move(li),
                        {Col("o_orderkey")}, {Col("l_orderkey")});
  PlanPtr agg =
      AggOp(std::move(semi), {Keep("o_orderpriority")}, {Count("order_count")});
  return SortOp(std::move(agg), {Asc(Col("o_orderpriority"))});
}

// --- Q5: local supplier volume --------------------------------------------------

PlanPtr Q5() {
  PlanPtr c_n = JoinOp(JoinKind::kInner, ScanOp("customer"),
                       NationOfRegion("ASIA"), {Col("c_nationkey")},
                       {Col("n_nationkey")});
  PlanPtr ord = SelectOp(
      ScanOp("orders"),
      Between(Col("o_orderdate"), D(MakeDate(1994, 1, 1)),
              D(MakeDate(1995, 1, 1))));
  PlanPtr oc = JoinOp(JoinKind::kInner, std::move(ord), std::move(c_n),
                      {Col("o_custkey")}, {Col("c_custkey")});
  PlanPtr lo = JoinOp(JoinKind::kInner, ScanOp("lineitem"), std::move(oc),
                      {Col("l_orderkey")}, {Col("o_orderkey")});
  PlanPtr ls = JoinOp(JoinKind::kInner, std::move(lo), ScanOp("supplier"),
                      {Col("l_suppkey")}, {Col("s_suppkey")},
                      Eq(Col("c_nationkey"), Col("s_nationkey")));
  PlanPtr agg =
      AggOp(std::move(ls), {Keep("n_name")}, {Sum(Revenue(), "revenue")});
  return SortOp(std::move(agg), {Desc(Col("revenue"))});
}

// --- Q6: forecasting revenue change ---------------------------------------------

PlanPtr Q6() {
  ExprPtr pred = AllOf(
      {Ge(Col("l_shipdate"), D(MakeDate(1994, 1, 1))),
       Lt(Col("l_shipdate"), D(MakeDate(1995, 1, 1))),
       Ge(Col("l_discount"), F(0.05)), Le(Col("l_discount"), F(0.07)),
       Lt(Col("l_quantity"), F(24.0))});
  return AggOp(SelectOp(ScanOp("lineitem"), pred), {},
               {Sum(Mul(Col("l_extendedprice"), Col("l_discount")),
                    "revenue")});
}

// --- Q7: volume shipping ---------------------------------------------------------

PlanPtr Q7() {
  PlanPtr s_n1 = JoinOp(JoinKind::kInner, ScanOp("supplier"), NationAs("n1"),
                        {Col("s_nationkey")}, {Col("n1_nationkey")});
  PlanPtr c_n2 = JoinOp(JoinKind::kInner, ScanOp("customer"), NationAs("n2"),
                        {Col("c_nationkey")}, {Col("n2_nationkey")});
  PlanPtr o_c = JoinOp(JoinKind::kInner, ScanOp("orders"), std::move(c_n2),
                       {Col("o_custkey")}, {Col("c_custkey")});
  PlanPtr li = SelectOp(
      ScanOp("lineitem"),
      And(Ge(Col("l_shipdate"), D(MakeDate(1995, 1, 1))),
          Le(Col("l_shipdate"), D(MakeDate(1996, 12, 31)))));
  PlanPtr ls = JoinOp(JoinKind::kInner, std::move(li), std::move(s_n1),
                      {Col("l_suppkey")}, {Col("s_suppkey")});
  ExprPtr nations =
      Or(And(Eq(Col("n1_name"), S("FRANCE")), Eq(Col("n2_name"), S("GERMANY"))),
         And(Eq(Col("n1_name"), S("GERMANY")), Eq(Col("n2_name"), S("FRANCE"))));
  PlanPtr main = JoinOp(JoinKind::kInner, std::move(ls), std::move(o_c),
                        {Col("l_orderkey")}, {Col("o_orderkey")}, nations);
  PlanPtr proj = ProjectOp(
      std::move(main),
      {NE("supp_nation", Col("n1_name")), NE("cust_nation", Col("n2_name")),
       NE("l_year", YearOf(Col("l_shipdate"))), NE("volume", Revenue())});
  PlanPtr agg = AggOp(std::move(proj),
                      {Keep("supp_nation"), Keep("cust_nation"),
                       Keep("l_year")},
                      {Sum(Col("volume"), "revenue")});
  return SortOp(std::move(agg),
                {Asc(Col("supp_nation")), Asc(Col("cust_nation")),
                 Asc(Col("l_year"))});
}

// --- Q8: national market share ----------------------------------------------------

PlanPtr Q8() {
  PlanPtr part = SelectOp(ScanOp("part"),
                          Eq(Col("p_type"), S("ECONOMY ANODIZED STEEL")));
  PlanPtr lp = JoinOp(JoinKind::kInner, ScanOp("lineitem"), std::move(part),
                      {Col("l_partkey")}, {Col("p_partkey")});
  PlanPtr ord = SelectOp(
      ScanOp("orders"),
      And(Ge(Col("o_orderdate"), D(MakeDate(1995, 1, 1))),
          Le(Col("o_orderdate"), D(MakeDate(1996, 12, 31)))));
  PlanPtr lo = JoinOp(JoinKind::kInner, std::move(lp), std::move(ord),
                      {Col("l_orderkey")}, {Col("o_orderkey")});
  PlanPtr c_r = JoinOp(JoinKind::kInner, ScanOp("customer"),
                       NationOfRegion("AMERICA"), {Col("c_nationkey")},
                       {Col("n_nationkey")});
  PlanPtr loc = JoinOp(JoinKind::kInner, std::move(lo), std::move(c_r),
                       {Col("o_custkey")}, {Col("c_custkey")});
  PlanPtr s_n2 = JoinOp(JoinKind::kInner, ScanOp("supplier"), NationAs("n2"),
                        {Col("s_nationkey")}, {Col("n2_nationkey")});
  PlanPtr all = JoinOp(JoinKind::kInner, std::move(loc), std::move(s_n2),
                       {Col("l_suppkey")}, {Col("s_suppkey")});
  PlanPtr proj = ProjectOp(
      std::move(all),
      {NE("o_year", YearOf(Col("o_orderdate"))), NE("volume", Revenue()),
       NE("nation", Col("n2_name"))});
  PlanPtr agg = AggOp(
      std::move(proj), {Keep("o_year")},
      {Sum(Case(Eq(Col("nation"), S("BRAZIL")), Col("volume"), F(0.0)),
           "brazil_volume"),
       Sum(Col("volume"), "total_volume")});
  PlanPtr share = ProjectOp(
      std::move(agg),
      {Keep("o_year"),
       NE("mkt_share", DivE(Col("brazil_volume"), Col("total_volume")))});
  return SortOp(std::move(share), {Asc(Col("o_year"))});
}

// --- Q9: product type profit measure ------------------------------------------------

PlanPtr Q9() {
  PlanPtr part =
      SelectOp(ScanOp("part"), Contains(Col("p_name"), "green"));
  PlanPtr lp = JoinOp(JoinKind::kInner, ScanOp("lineitem"), std::move(part),
                      {Col("l_partkey")}, {Col("p_partkey")});
  PlanPtr lps = JoinOp(JoinKind::kInner, std::move(lp), ScanOp("partsupp"),
                       {Col("l_suppkey"), Col("l_partkey")},
                       {Col("ps_suppkey"), Col("ps_partkey")});
  PlanPtr ls = JoinOp(JoinKind::kInner, std::move(lps), ScanOp("supplier"),
                      {Col("l_suppkey")}, {Col("s_suppkey")});
  PlanPtr lo = JoinOp(JoinKind::kInner, std::move(ls), ScanOp("orders"),
                      {Col("l_orderkey")}, {Col("o_orderkey")});
  PlanPtr ln = JoinOp(JoinKind::kInner, std::move(lo), ScanOp("nation"),
                      {Col("s_nationkey")}, {Col("n_nationkey")});
  ExprPtr amount = Sub(Revenue(), Mul(Col("ps_supplycost"),
                                      Col("l_quantity")));
  PlanPtr proj = ProjectOp(std::move(ln),
                           {NE("nation", Col("n_name")),
                            NE("o_year", YearOf(Col("o_orderdate"))),
                            NE("amount", amount)});
  PlanPtr agg = AggOp(std::move(proj), {Keep("nation"), Keep("o_year")},
                      {Sum(Col("amount"), "sum_profit")});
  return SortOp(std::move(agg), {Asc(Col("nation")), Desc(Col("o_year"))});
}

// --- Q10: returned item reporting ---------------------------------------------------

PlanPtr Q10() {
  PlanPtr ord = SelectOp(
      ScanOp("orders"),
      Between(Col("o_orderdate"), D(MakeDate(1993, 10, 1)),
              D(MakeDate(1994, 1, 1))));
  PlanPtr oc = JoinOp(JoinKind::kInner, std::move(ord), ScanOp("customer"),
                      {Col("o_custkey")}, {Col("c_custkey")});
  PlanPtr li =
      SelectOp(ScanOp("lineitem"), Eq(Col("l_returnflag"), S("R")));
  PlanPtr main = JoinOp(JoinKind::kInner, std::move(li), std::move(oc),
                        {Col("l_orderkey")}, {Col("o_orderkey")});
  PlanPtr mn = JoinOp(JoinKind::kInner, std::move(main), ScanOp("nation"),
                      {Col("c_nationkey")}, {Col("n_nationkey")});
  PlanPtr agg = AggOp(
      std::move(mn),
      {Keep("c_custkey"), Keep("c_name"), Keep("c_acctbal"), Keep("c_phone"),
       Keep("n_name"), Keep("c_address"), Keep("c_comment")},
      {Sum(Revenue(), "revenue")});
  return LimitOp(SortOp(std::move(agg), {Desc(Col("revenue"))}), 20);
}

// --- Q11: important stock identification --------------------------------------------

PlanPtr Q11Partsupp() {
  PlanPtr s_n = JoinOp(
      JoinKind::kInner, ScanOp("supplier"),
      SelectOp(ScanOp("nation"), Eq(Col("n_name"), S("GERMANY"))),
      {Col("s_nationkey")}, {Col("n_nationkey")});
  return JoinOp(JoinKind::kInner, ScanOp("partsupp"), std::move(s_n),
                {Col("ps_suppkey")}, {Col("s_suppkey")});
}

PlanPtr Q11() {
  ExprPtr value = Mul(Col("ps_supplycost"), Col("ps_availqty"));
  PlanPtr v = AggOp(Q11Partsupp(), {Keep("ps_partkey")},
                    {Sum(value, "value")});
  ExprPtr value2 = Mul(Col("ps_supplycost"), Col("ps_availqty"));
  PlanPtr t = ProjectOp(
      AggOp(Q11Partsupp(), {}, {Sum(value2, "total")}),
      {NE("threshold", Mul(Col("total"), F(0.0001)))});
  PlanPtr joined = JoinOp(JoinKind::kInner, std::move(v), std::move(t), {},
                          {}, Gt(Col("value"), Col("threshold")));
  PlanPtr proj =
      ProjectOp(std::move(joined), {Keep("ps_partkey"), Keep("value")});
  return SortOp(std::move(proj), {Desc(Col("value"))});
}

// --- Q12: shipping modes and order priority ------------------------------------------

PlanPtr Q12() {
  ExprPtr pred = AllOf(
      {InStr(Col("l_shipmode"), {"MAIL", "SHIP"}),
       Lt(Col("l_commitdate"), Col("l_receiptdate")),
       Lt(Col("l_shipdate"), Col("l_commitdate")),
       Ge(Col("l_receiptdate"), D(MakeDate(1994, 1, 1))),
       Lt(Col("l_receiptdate"), D(MakeDate(1995, 1, 1)))});
  PlanPtr li = SelectOp(ScanOp("lineitem"), pred);
  PlanPtr main = JoinOp(JoinKind::kInner, ScanOp("orders"), std::move(li),
                        {Col("o_orderkey")}, {Col("l_orderkey")});
  ExprPtr high = Case(
      InStr(Col("o_orderpriority"), {"1-URGENT", "2-HIGH"}), I(1), I(0));
  ExprPtr low = Case(
      InStr(Col("o_orderpriority"), {"1-URGENT", "2-HIGH"}), I(0), I(1));
  PlanPtr agg = AggOp(std::move(main), {Keep("l_shipmode")},
                      {Sum(high, "high_line_count"),
                       Sum(low, "low_line_count")});
  return SortOp(std::move(agg), {Asc(Col("l_shipmode"))});
}

// --- Q13: customer distribution --------------------------------------------------------

PlanPtr Q13() {
  PlanPtr ord = SelectOp(
      ScanOp("orders"),
      Not(Like(Col("o_comment"), "%special%requests%")));
  PlanPtr oj = JoinOp(JoinKind::kLeftOuter, ScanOp("customer"),
                      std::move(ord), {Col("c_custkey")}, {Col("o_custkey")});
  PlanPtr counts =
      AggOp(std::move(oj), {Keep("c_custkey")},
            {Sum(Case(Col("matched"), I(1), I(0)), "c_count")});
  PlanPtr dist =
      AggOp(std::move(counts), {Keep("c_count")}, {Count("custdist")});
  return SortOp(std::move(dist),
                {Desc(Col("custdist")), Desc(Col("c_count"))});
}

// --- Q14: promotion effect ---------------------------------------------------------------

PlanPtr Q14() {
  PlanPtr li = SelectOp(
      ScanOp("lineitem"),
      Between(Col("l_shipdate"), D(MakeDate(1995, 9, 1)),
              D(MakeDate(1995, 10, 1))));
  PlanPtr main = JoinOp(JoinKind::kInner, std::move(li), ScanOp("part"),
                        {Col("l_partkey")}, {Col("p_partkey")});
  PlanPtr agg = AggOp(
      std::move(main), {},
      {Sum(Case(StartsWith(Col("p_type"), "PROMO"), Revenue(), F(0.0)),
           "promo"),
       Sum(Revenue(), "total")});
  return ProjectOp(std::move(agg),
                   {NE("promo_revenue",
                       DivE(Mul(F(100.0), Col("promo")), Col("total")))});
}

// --- Q15: top supplier --------------------------------------------------------------------

PlanPtr Q15Revenue() {
  PlanPtr li = SelectOp(
      ScanOp("lineitem"),
      Between(Col("l_shipdate"), D(MakeDate(1996, 1, 1)),
              D(MakeDate(1996, 4, 1))));
  return AggOp(std::move(li), {NE("supplier_no", Col("l_suppkey"))},
               {Sum(Revenue(), "total_revenue")});
}

PlanPtr Q15() {
  PlanPtr max_rev = AggOp(Q15Revenue(), {},
                          {Max(Col("total_revenue"), "max_revenue")});
  PlanPtr sr = JoinOp(JoinKind::kInner, ScanOp("supplier"), Q15Revenue(),
                      {Col("s_suppkey")}, {Col("supplier_no")});
  PlanPtr top = JoinOp(JoinKind::kInner, std::move(sr), std::move(max_rev),
                       {}, {}, Eq(Col("total_revenue"), Col("max_revenue")));
  PlanPtr proj = ProjectOp(std::move(top),
                           {Keep("s_suppkey"), Keep("s_name"),
                            Keep("s_address"), Keep("s_phone"),
                            Keep("total_revenue")});
  return SortOp(std::move(proj), {Asc(Col("s_suppkey"))});
}

// --- Q16: parts/supplier relationship ---------------------------------------------------

PlanPtr Q16() {
  ExprPtr size_in = AnyOf({Eq(Col("p_size"), I(49)), Eq(Col("p_size"), I(14)),
                           Eq(Col("p_size"), I(23)), Eq(Col("p_size"), I(45)),
                           Eq(Col("p_size"), I(19)), Eq(Col("p_size"), I(3)),
                           Eq(Col("p_size"), I(36)), Eq(Col("p_size"), I(9))});
  PlanPtr part = SelectOp(
      ScanOp("part"),
      AllOf({Ne(Col("p_brand"), S("Brand#45")),
             Not(StartsWith(Col("p_type"), "MEDIUM POLISHED")), size_in}));
  PlanPtr ps = JoinOp(JoinKind::kInner, ScanOp("partsupp"), std::move(part),
                      {Col("ps_partkey")}, {Col("p_partkey")});
  PlanPtr bad_supp = SelectOp(
      ScanOp("supplier"), Like(Col("s_comment"), "%Customer%Complaints%"));
  PlanPtr filtered = JoinOp(JoinKind::kAnti, std::move(ps),
                            std::move(bad_supp), {Col("ps_suppkey")},
                            {Col("s_suppkey")});
  // count(distinct ps_suppkey): dedupe then count.
  PlanPtr dedup = AggOp(std::move(filtered),
                        {Keep("p_brand"), Keep("p_type"), Keep("p_size"),
                         Keep("ps_suppkey")},
                        {Count("dummy")});
  PlanPtr agg = AggOp(std::move(dedup),
                      {Keep("p_brand"), Keep("p_type"), Keep("p_size")},
                      {Count("supplier_cnt")});
  return SortOp(std::move(agg),
                {Desc(Col("supplier_cnt")), Asc(Col("p_brand")),
                 Asc(Col("p_type")), Asc(Col("p_size"))});
}

// --- Q17: small-quantity-order revenue ----------------------------------------------------

PlanPtr Q17() {
  PlanPtr part = SelectOp(ScanOp("part"),
                          And(Eq(Col("p_brand"), S("Brand#23")),
                              Eq(Col("p_container"), S("MED BOX"))));
  PlanPtr lp = JoinOp(JoinKind::kInner, ScanOp("lineitem"), std::move(part),
                      {Col("l_partkey")}, {Col("p_partkey")});
  PlanPtr avg_qty = AggOp(ScanOp("lineitem"),
                          {NE("a_partkey", Col("l_partkey"))},
                          {Avg(Col("l_quantity"), "avg_quantity")});
  PlanPtr main =
      JoinOp(JoinKind::kInner, std::move(lp), std::move(avg_qty),
             {Col("l_partkey")}, {Col("a_partkey")},
             Lt(Col("l_quantity"), Mul(F(0.2), Col("avg_quantity"))));
  PlanPtr agg = AggOp(std::move(main), {},
                      {Sum(Col("l_extendedprice"), "total")});
  return ProjectOp(std::move(agg),
                   {NE("avg_yearly", DivE(Col("total"), F(7.0)))});
}

// --- Q18: large volume customers -----------------------------------------------------------

PlanPtr Q18() {
  PlanPtr big = SelectOp(
      AggOp(ScanOp("lineitem"), {NE("t_orderkey", Col("l_orderkey"))},
            {Sum(Col("l_quantity"), "t_sum_qty")}),
      Gt(Col("t_sum_qty"), F(300.0)));
  PlanPtr ot = JoinOp(JoinKind::kSemi, ScanOp("orders"), std::move(big),
                      {Col("o_orderkey")}, {Col("t_orderkey")});
  PlanPtr oc = JoinOp(JoinKind::kInner, std::move(ot), ScanOp("customer"),
                      {Col("o_custkey")}, {Col("c_custkey")});
  PlanPtr main = JoinOp(JoinKind::kInner, ScanOp("lineitem"), std::move(oc),
                        {Col("l_orderkey")}, {Col("o_orderkey")});
  PlanPtr agg = AggOp(
      std::move(main),
      {Keep("c_name"), Keep("c_custkey"), Keep("o_orderkey"),
       Keep("o_orderdate"), Keep("o_totalprice")},
      {Sum(Col("l_quantity"), "sum_qty")});
  return LimitOp(SortOp(std::move(agg), {Desc(Col("o_totalprice")),
                                         Asc(Col("o_orderdate"))}),
                 100);
}

// --- Q19: discounted revenue ----------------------------------------------------------------

PlanPtr Q19() {
  ExprPtr common =
      And(InStr(Col("l_shipmode"), {"AIR", "AIR REG"}),
          Eq(Col("l_shipinstruct"), S("DELIVER IN PERSON")));
  ExprPtr b1 = AllOf(
      {Eq(Col("p_brand"), S("Brand#12")),
       InStr(Col("p_container"), {"SM CASE", "SM BOX", "SM PACK", "SM PKG"}),
       Ge(Col("l_quantity"), F(1.0)), Le(Col("l_quantity"), F(11.0)),
       Ge(Col("p_size"), I(1)), Le(Col("p_size"), I(5))});
  ExprPtr b2 = AllOf(
      {Eq(Col("p_brand"), S("Brand#23")),
       InStr(Col("p_container"), {"MED BAG", "MED BOX", "MED PKG", "MED PACK"}),
       Ge(Col("l_quantity"), F(10.0)), Le(Col("l_quantity"), F(20.0)),
       Ge(Col("p_size"), I(1)), Le(Col("p_size"), I(10))});
  ExprPtr b3 = AllOf(
      {Eq(Col("p_brand"), S("Brand#34")),
       InStr(Col("p_container"), {"LG CASE", "LG BOX", "LG PACK", "LG PKG"}),
       Ge(Col("l_quantity"), F(20.0)), Le(Col("l_quantity"), F(30.0)),
       Ge(Col("p_size"), I(1)), Le(Col("p_size"), I(15))});
  PlanPtr main = JoinOp(JoinKind::kInner, ScanOp("lineitem"), ScanOp("part"),
                        {Col("l_partkey")}, {Col("p_partkey")},
                        And(common, AnyOf({b1, b2, b3})));
  return AggOp(std::move(main), {}, {Sum(Revenue(), "revenue")});
}

// --- Q20: potential part promotion ------------------------------------------------------------

PlanPtr Q20() {
  PlanPtr forest_parts =
      SelectOp(ScanOp("part"), StartsWith(Col("p_name"), "forest"));
  PlanPtr ps = JoinOp(JoinKind::kSemi, ScanOp("partsupp"),
                      std::move(forest_parts), {Col("ps_partkey")},
                      {Col("p_partkey")});
  PlanPtr li94 = SelectOp(
      ScanOp("lineitem"),
      Between(Col("l_shipdate"), D(MakeDate(1994, 1, 1)),
              D(MakeDate(1995, 1, 1))));
  PlanPtr qty = AggOp(std::move(li94),
                      {NE("q_partkey", Col("l_partkey")),
                       NE("q_suppkey", Col("l_suppkey"))},
                      {Sum(Col("l_quantity"), "sum_qty")});
  PlanPtr psq =
      JoinOp(JoinKind::kInner, std::move(ps), std::move(qty),
             {Col("ps_partkey"), Col("ps_suppkey")},
             {Col("q_partkey"), Col("q_suppkey")},
             Gt(Col("ps_availqty"), Mul(F(0.5), Col("sum_qty"))));
  PlanPtr supp = JoinOp(JoinKind::kSemi, ScanOp("supplier"), std::move(psq),
                        {Col("s_suppkey")}, {Col("ps_suppkey")});
  PlanPtr sn = JoinOp(JoinKind::kInner, std::move(supp),
                      SelectOp(ScanOp("nation"),
                               Eq(Col("n_name"), S("CANADA"))),
                      {Col("s_nationkey")}, {Col("n_nationkey")});
  PlanPtr proj = ProjectOp(std::move(sn), {Keep("s_name"), Keep("s_address")});
  return SortOp(std::move(proj), {Asc(Col("s_name"))});
}

// --- Q21: suppliers who kept orders waiting ----------------------------------------------------

PlanPtr Q21() {
  PlanPtr supp = JoinOp(JoinKind::kInner, ScanOp("supplier"),
                        SelectOp(ScanOp("nation"),
                                 Eq(Col("n_name"), S("SAUDI ARABIA"))),
                        {Col("s_nationkey")}, {Col("n_nationkey")});
  PlanPtr l1 = SelectOp(ScanOp("lineitem"),
                        Gt(Col("l_receiptdate"), Col("l_commitdate")));
  PlanPtr l1s = JoinOp(JoinKind::kInner, std::move(l1), std::move(supp),
                       {Col("l_suppkey")}, {Col("s_suppkey")});
  PlanPtr ordF =
      SelectOp(ScanOp("orders"), Eq(Col("o_orderstatus"), S("F")));
  PlanPtr l1so = JoinOp(JoinKind::kInner, std::move(l1s), std::move(ordF),
                        {Col("l_orderkey")}, {Col("o_orderkey")});
  PlanPtr l2 = ProjectOp(ScanOp("lineitem"),
                         {NE("l2_orderkey", Col("l_orderkey")),
                          NE("l2_suppkey", Col("l_suppkey"))});
  PlanPtr sj = JoinOp(JoinKind::kSemi, std::move(l1so), std::move(l2),
                      {Col("l_orderkey")}, {Col("l2_orderkey")},
                      Ne(Col("l2_suppkey"), Col("l_suppkey")));
  PlanPtr l3 = ProjectOp(
      SelectOp(ScanOp("lineitem"),
               Gt(Col("l_receiptdate"), Col("l_commitdate"))),
      {NE("l3_orderkey", Col("l_orderkey")),
       NE("l3_suppkey", Col("l_suppkey"))});
  PlanPtr aj = JoinOp(JoinKind::kAnti, std::move(sj), std::move(l3),
                      {Col("l_orderkey")}, {Col("l3_orderkey")},
                      Ne(Col("l3_suppkey"), Col("l_suppkey")));
  PlanPtr agg = AggOp(std::move(aj), {Keep("s_name")}, {Count("numwait")});
  return LimitOp(
      SortOp(std::move(agg), {Desc(Col("numwait")), Asc(Col("s_name"))}),
      100);
}

// --- Q22: global sales opportunity --------------------------------------------------------------

ExprPtr Q22CodePred() {
  std::vector<ExprPtr> codes;
  for (const char* code : {"13", "31", "23", "29", "30", "18", "17"}) {
    codes.push_back(StartsWith(Col("c_phone"), code));
  }
  return AnyOf(std::move(codes));
}

PlanPtr Q22() {
  PlanPtr c1 = SelectOp(ScanOp("customer"), Q22CodePred());
  PlanPtr avg_bal = AggOp(
      SelectOp(SelectOp(ScanOp("customer"), Q22CodePred()),
               Gt(Col("c_acctbal"), F(0.0))),
      {}, {Avg(Col("c_acctbal"), "avg_bal")});
  PlanPtr cj = JoinOp(JoinKind::kInner, std::move(c1), std::move(avg_bal),
                      {}, {}, Gt(Col("c_acctbal"), Col("avg_bal")));
  PlanPtr co = JoinOp(JoinKind::kAnti, std::move(cj), ScanOp("orders"),
                      {Col("c_custkey")}, {Col("o_custkey")});
  PlanPtr proj = ProjectOp(std::move(co),
                           {NE("cntrycode", Substr(Col("c_phone"), 0, 2)),
                            Keep("c_acctbal")});
  PlanPtr agg = AggOp(std::move(proj), {Keep("cntrycode")},
                      {Count("numcust"), Sum(Col("c_acctbal"), "totacctbal")});
  return SortOp(std::move(agg), {Asc(Col("cntrycode"))});
}

}  // namespace

qplan::PlanPtr MakeQuery(int q) {
  switch (q) {
    case 1: return Q1();
    case 2: return Q2();
    case 3: return Q3();
    case 4: return Q4();
    case 5: return Q5();
    case 6: return Q6();
    case 7: return Q7();
    case 8: return Q8();
    case 9: return Q9();
    case 10: return Q10();
    case 11: return Q11();
    case 12: return Q12();
    case 13: return Q13();
    case 14: return Q14();
    case 15: return Q15();
    case 16: return Q16();
    case 17: return Q17();
    case 18: return Q18();
    case 19: return Q19();
    case 20: return Q20();
    case 21: return Q21();
    case 22: return Q22();
    default:
      std::fprintf(stderr, "unknown TPC-H query %d\n", q);
      std::abort();
  }
}

}  // namespace qc::tpch
