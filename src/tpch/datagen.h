// Synthetic TPC-H data generator (the dbgen substitute; see DESIGN.md).
// Reproduces the schema, key structure, value domains and correlations the
// 22 queries depend on (ship/commit/receipt date ordering, returnflag /
// linestatus derivation, phone country codes, dbgen's word pools for the
// LIKE predicates, Brand#MN / type / container vocabularies), deterministic
// under a seed. Differences from dbgen are documented in DESIGN.md — chiefly
// dense order keys and uniform (instead of comment-grammar) text.
#ifndef QC_TPCH_DATAGEN_H_
#define QC_TPCH_DATAGEN_H_

#include <cstdint>

#include "storage/database.h"

namespace qc::tpch {

struct GenConfig {
  double scale_factor = 0.01;
  uint64_t seed = 42;
};

// Populates a database that already carries the TPC-H schema.
void Generate(storage::Database* db, const GenConfig& config);

// Convenience: schema + data.
storage::Database MakeTpchDatabase(double scale_factor, uint64_t seed = 42);

}  // namespace qc::tpch

#endif  // QC_TPCH_DATAGEN_H_
