// The 22 TPC-H queries expressed as QPlan physical plans (validation
// parameter values from the TPC-H specification). Each call builds a fresh
// plan tree; resolve it against a database before use.
//
// Conventions: our hash join builds its hash table over the *right* child
// and streams the left child, so plans put the smaller/filtered input on the
// right. Correlated subqueries are expressed relationally (aggregate +
// re-join), scalar subqueries as key-less joins with a residual predicate,
// EXISTS/NOT EXISTS as semi/anti joins, and Q13's outer join aggregates over
// the generated `matched` flag.
#ifndef QC_TPCH_QUERIES_H_
#define QC_TPCH_QUERIES_H_

#include "qplan/plan.h"

namespace qc::tpch {

// q in [1, 22]. Aborts on out-of-range.
qplan::PlanPtr MakeQuery(int q);

constexpr int kNumQueries = 22;

}  // namespace qc::tpch

#endif  // QC_TPCH_QUERIES_H_
