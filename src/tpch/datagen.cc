#include "tpch/datagen.h"

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "common/date.h"
#include "common/rng.h"
#include "tpch/schema.h"

namespace qc::tpch {

namespace {

// --- dbgen vocabularies -------------------------------------------------------

const char* kRegions[] = {"AFRICA", "AMERICA", "ASIA", "EUROPE",
                          "MIDDLE EAST"};

struct NationDef {
  const char* name;
  int region;
};
// The 25 nations with dbgen's nation->region mapping.
const NationDef kNations[] = {
    {"ALGERIA", 0},     {"ARGENTINA", 1}, {"BRAZIL", 1},
    {"CANADA", 1},      {"EGYPT", 4},     {"ETHIOPIA", 0},
    {"FRANCE", 3},      {"GERMANY", 3},   {"INDIA", 2},
    {"INDONESIA", 2},   {"IRAN", 4},      {"IRAQ", 4},
    {"JAPAN", 2},       {"JORDAN", 4},    {"KENYA", 0},
    {"MOROCCO", 0},     {"MOZAMBIQUE", 0},{"PERU", 1},
    {"CHINA", 2},       {"ROMANIA", 3},   {"SAUDI ARABIA", 4},
    {"VIETNAM", 2},     {"RUSSIA", 3},    {"UNITED KINGDOM", 3},
    {"UNITED STATES", 1}};

// dbgen's P_NAME color words (Q9 '%green%', Q20 'forest%').
const char* kColors[] = {
    "almond",    "antique",   "aquamarine", "azure",     "beige",
    "bisque",    "black",     "blanched",   "blue",      "blush",
    "brown",     "burlywood", "burnished",  "chartreuse","chiffon",
    "chocolate", "coral",     "cornflower", "cornsilk",  "cream",
    "cyan",      "dark",      "deep",       "dim",       "dodger",
    "drab",      "firebrick", "floral",     "forest",    "frosted",
    "gainsboro", "ghost",     "goldenrod",  "green",     "grey",
    "honeydew",  "hot",       "indian",     "ivory",     "khaki",
    "lace",      "lavender",  "lawn",       "lemon",     "light",
    "lime",      "linen",     "magenta",    "maroon",    "medium"};

const char* kTypeSyllable1[] = {"STANDARD", "SMALL", "MEDIUM",
                                "LARGE",    "ECONOMY", "PROMO"};
const char* kTypeSyllable2[] = {"ANODIZED", "BURNISHED", "PLATED",
                                "POLISHED", "BRUSHED"};
const char* kTypeSyllable3[] = {"TIN", "NICKEL", "BRASS", "STEEL", "COPPER"};

const char* kContainerSyllable1[] = {"SM", "LG", "MED", "JUMBO", "WRAP"};
const char* kContainerSyllable2[] = {"CASE", "BOX", "BAG", "JAR",
                                     "PKG", "PACK", "CAN", "DRUM"};

const char* kSegments[] = {"AUTOMOBILE", "BUILDING", "FURNITURE", "MACHINERY",
                           "HOUSEHOLD"};
const char* kPriorities[] = {"1-URGENT", "2-HIGH", "3-MEDIUM",
                             "4-NOT SPECIFIED", "5-LOW"};
const char* kShipModes[] = {"REG AIR", "AIR", "RAIL", "SHIP",
                            "TRUCK", "MAIL", "FOB"};
const char* kShipInstructs[] = {"DELIVER IN PERSON", "COLLECT COD", "NONE",
                                "TAKE BACK RETURN"};

const char* kWords[] = {
    "carefully", "quickly", "furiously", "slyly",     "blithely", "ironic",
    "final",     "regular", "express",   "bold",      "pending",  "even",
    "silent",    "unusual", "daring",    "deposits",  "packages", "accounts",
    "requests",  "ideas",   "platelets", "theodolites", "instructions",
    "dependencies", "foxes", "pinto",    "beans",     "sleep",    "nag",
    "haggle",    "wake",    "among",     "about",     "above"};

constexpr Date kStartDate = MakeDate(1992, 1, 1);
constexpr Date kEndDate = MakeDate(1998, 8, 2);
constexpr Date kCurrentDate = MakeDate(1995, 6, 17);

class Generator {
 public:
  Generator(storage::Database* db, const GenConfig& cfg)
      : db_(db), rng_(cfg.seed), sf_(cfg.scale_factor) {}

  void Run() {
    GenRegion();
    GenNation();
    GenSupplier();
    GenCustomer();
    GenPart();
    GenPartSupp();
    GenOrdersAndLineitem();
  }

 private:
  storage::Table& T(const char* name) {
    return db_->table(db_->TableId(name));
  }

  const char* Str(storage::Table& t, const std::string& s) {
    return t.InternString(s);
  }

  std::string RandomText(int words) {
    std::string s;
    for (int i = 0; i < words; ++i) {
      if (i > 0) s.push_back(' ');
      s += kWords[rng_.Uniform(0, std::size(kWords) - 1)];
    }
    return s;
  }

  double Money(double lo, double hi) {
    return rng_.Uniform(static_cast<int64_t>(lo * 100),
                        static_cast<int64_t>(hi * 100)) /
           100.0;
  }

  Date RandomDate(Date lo, Date hi) {
    return OrdinalToDate(
        static_cast<int>(rng_.Uniform(DateToOrdinal(lo), DateToOrdinal(hi))));
  }

  std::string Phone(int64_t nationkey) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%02d-%03d-%03d-%04d",
                  static_cast<int>(nationkey) + 10,
                  static_cast<int>(rng_.Uniform(100, 999)),
                  static_cast<int>(rng_.Uniform(100, 999)),
                  static_cast<int>(rng_.Uniform(1000, 9999)));
    return buf;
  }

  void GenRegion() {
    storage::Table& t = T("region");
    for (int i = 0; i < 5; ++i) {
      t.column(0).data.push_back(SlotI(i));
      t.column(1).data.push_back(SlotS(Str(t, kRegions[i])));
      t.column(2).data.push_back(SlotS(Str(t, RandomText(5))));
    }
  }

  void GenNation() {
    storage::Table& t = T("nation");
    for (int i = 0; i < 25; ++i) {
      t.column(0).data.push_back(SlotI(i));
      t.column(1).data.push_back(SlotS(Str(t, kNations[i].name)));
      t.column(2).data.push_back(SlotI(kNations[i].region));
      t.column(3).data.push_back(SlotS(Str(t, RandomText(6))));
    }
  }

  void GenSupplier() {
    storage::Table& t = T("supplier");
    int64_t n = std::max<int64_t>(10, static_cast<int64_t>(10000 * sf_));
    num_suppliers_ = n;
    for (int64_t i = 1; i <= n; ++i) {
      char name[32];
      std::snprintf(name, sizeof(name), "Supplier#%09lld",
                    static_cast<long long>(i));
      int64_t nation = rng_.Uniform(0, 24);
      t.column(0).data.push_back(SlotI(i));
      t.column(1).data.push_back(SlotS(Str(t, name)));
      t.column(2).data.push_back(SlotS(Str(t, RandomText(3))));
      t.column(3).data.push_back(SlotI(nation));
      t.column(4).data.push_back(SlotS(Str(t, Phone(nation))));
      t.column(5).data.push_back(SlotD(Money(-999.99, 9999.99)));
      // A deterministic ~3% of suppliers carry the Q16 complaint marker
      // (deterministic so the predicate is populated at every scale).
      std::string comment = RandomText(6);
      if (i % 37 == 5) {
        comment += " Customer unhappy Complaints";
      }
      t.column(6).data.push_back(SlotS(Str(t, comment)));
    }
  }

  void GenCustomer() {
    storage::Table& t = T("customer");
    int64_t n = std::max<int64_t>(50, static_cast<int64_t>(150000 * sf_));
    num_customers_ = n;
    for (int64_t i = 1; i <= n; ++i) {
      char name[32];
      std::snprintf(name, sizeof(name), "Customer#%09lld",
                    static_cast<long long>(i));
      int64_t nation = rng_.Uniform(0, 24);
      t.column(0).data.push_back(SlotI(i));
      t.column(1).data.push_back(SlotS(Str(t, name)));
      t.column(2).data.push_back(SlotS(Str(t, RandomText(3))));
      t.column(3).data.push_back(SlotI(nation));
      t.column(4).data.push_back(SlotS(Str(t, Phone(nation))));
      t.column(5).data.push_back(SlotD(Money(-999.99, 9999.99)));
      t.column(6).data.push_back(
          SlotS(Str(t, kSegments[rng_.Uniform(0, 4)])));
      t.column(7).data.push_back(SlotS(Str(t, RandomText(8))));
    }
  }

  void GenPart() {
    storage::Table& t = T("part");
    int64_t n = std::max<int64_t>(40, static_cast<int64_t>(200000 * sf_));
    num_parts_ = n;
    for (int64_t i = 1; i <= n; ++i) {
      // p_name: five color words, matching dbgen.
      std::string pname;
      for (int w = 0; w < 5; ++w) {
        if (w > 0) pname.push_back(' ');
        pname += kColors[rng_.Uniform(0, std::size(kColors) - 1)];
      }
      int m = static_cast<int>(rng_.Uniform(1, 5));
      int nbr = static_cast<int>(rng_.Uniform(1, 5));
      char mfgr[32], brand[32];
      std::snprintf(mfgr, sizeof(mfgr), "Manufacturer#%d", m);
      std::snprintf(brand, sizeof(brand), "Brand#%d%d", m, nbr);
      std::string type = std::string(kTypeSyllable1[rng_.Uniform(0, 5)]) +
                         " " + kTypeSyllable2[rng_.Uniform(0, 4)] + " " +
                         kTypeSyllable3[rng_.Uniform(0, 4)];
      std::string container =
          std::string(kContainerSyllable1[rng_.Uniform(0, 4)]) + " " +
          kContainerSyllable2[rng_.Uniform(0, 7)];
      t.column(0).data.push_back(SlotI(i));
      t.column(1).data.push_back(SlotS(Str(t, pname)));
      t.column(2).data.push_back(SlotS(Str(t, mfgr)));
      t.column(3).data.push_back(SlotS(Str(t, brand)));
      t.column(4).data.push_back(SlotS(Str(t, type)));
      t.column(5).data.push_back(SlotI(rng_.Uniform(1, 50)));
      t.column(6).data.push_back(SlotS(Str(t, container)));
      // dbgen: retailprice derived from the key.
      double price = 90000 + ((i / 10) % 20001) + 100 * (i % 1000);
      t.column(7).data.push_back(SlotD(price / 100.0));
      t.column(8).data.push_back(SlotS(Str(t, RandomText(4))));
    }
  }

  void GenPartSupp() {
    storage::Table& t = T("partsupp");
    for (int64_t p = 1; p <= num_parts_; ++p) {
      for (int j = 0; j < 4; ++j) {
        // dbgen's supplier spread for a part.
        int64_t s = 1 + (p + j * (num_suppliers_ / 4 +
                                  (p - 1) / num_suppliers_)) %
                            num_suppliers_;
        t.column(0).data.push_back(SlotI(p));
        t.column(1).data.push_back(SlotI(s));
        t.column(2).data.push_back(SlotI(rng_.Uniform(1, 9999)));
        t.column(3).data.push_back(SlotD(Money(1.00, 1000.00)));
        t.column(4).data.push_back(SlotS(Str(t, RandomText(10))));
      }
    }
  }

  void GenOrdersAndLineitem() {
    storage::Table& o = T("orders");
    storage::Table& l = T("lineitem");
    int64_t n = std::max<int64_t>(150, static_cast<int64_t>(1500000 * sf_));
    for (int64_t i = 1; i <= n; ++i) {
      // dbgen never assigns orders to customers with custkey % 3 == 0, which
      // keeps Q13's zero-order bucket and Q22's anti-join non-trivial.
      int64_t cust = rng_.Uniform(1, num_customers_);
      while (cust % 3 == 0) cust = rng_.Uniform(1, num_customers_);
      Date odate = RandomDate(kStartDate, DateAddDays(kEndDate, -151));
      int nlines = static_cast<int>(rng_.Uniform(1, 7));

      double total = 0;
      int fcount = 0;
      for (int ln = 1; ln <= nlines; ++ln) {
        int64_t part = rng_.Uniform(1, num_parts_);
        // Supplier from the part's partsupp entries so joins through
        // partsupp (Q9/Q20) find matches.
        int j = static_cast<int>(rng_.Uniform(0, 3));
        int64_t supp = 1 + (part + j * (num_suppliers_ / 4 +
                                        (part - 1) / num_suppliers_)) %
                               num_suppliers_;
        double qty = static_cast<double>(rng_.Uniform(1, 50));
        double retail =
            (90000 + ((part / 10) % 20001) + 100 * (part % 1000)) / 100.0;
        double extprice = qty * retail / 10.0;
        double discount = rng_.Uniform(0, 10) / 100.0;
        double tax = rng_.Uniform(0, 8) / 100.0;
        Date shipdate = DateAddDays(odate, static_cast<int>(rng_.Uniform(1, 121)));
        Date commitdate =
            DateAddDays(odate, static_cast<int>(rng_.Uniform(30, 90)));
        Date receiptdate =
            DateAddDays(shipdate, static_cast<int>(rng_.Uniform(1, 30)));
        const char* returnflag =
            receiptdate <= kCurrentDate
                ? (rng_.Uniform(0, 1) == 0 ? "R" : "A")
                : "N";
        const char* linestatus = shipdate > kCurrentDate ? "O" : "F";
        if (linestatus[0] == 'F') ++fcount;
        total += extprice * (1 + tax) * (1 - discount);

        l.column(0).data.push_back(SlotI(i));
        l.column(1).data.push_back(SlotI(part));
        l.column(2).data.push_back(SlotI(supp));
        l.column(3).data.push_back(SlotI(ln));
        l.column(4).data.push_back(SlotD(qty));
        l.column(5).data.push_back(SlotD(extprice));
        l.column(6).data.push_back(SlotD(discount));
        l.column(7).data.push_back(SlotD(tax));
        l.column(8).data.push_back(SlotS(Str(l, returnflag)));
        l.column(9).data.push_back(SlotS(Str(l, linestatus)));
        l.column(10).data.push_back(SlotI(shipdate));
        l.column(11).data.push_back(SlotI(commitdate));
        l.column(12).data.push_back(SlotI(receiptdate));
        l.column(13).data.push_back(
            SlotS(Str(l, kShipInstructs[rng_.Uniform(0, 3)])));
        l.column(14).data.push_back(
            SlotS(Str(l, kShipModes[rng_.Uniform(0, 6)])));
        l.column(15).data.push_back(SlotS(Str(l, RandomText(4))));
      }

      const char* status =
          fcount == nlines ? "F" : (fcount == 0 ? "O" : "P");
      char clerk[32];
      std::snprintf(clerk, sizeof(clerk), "Clerk#%09d",
                    static_cast<int>(rng_.Uniform(1, 1000)));
      // ~2% of order comments carry the Q13 'special ... requests' marker.
      std::string comment = RandomText(6);
      if (rng_.Uniform(0, 49) == 0) {
        comment += " special packages requests";
      }
      o.column(0).data.push_back(SlotI(i));
      o.column(1).data.push_back(SlotI(cust));
      o.column(2).data.push_back(SlotS(Str(o, status)));
      o.column(3).data.push_back(SlotD(total));
      o.column(4).data.push_back(SlotI(odate));
      o.column(5).data.push_back(SlotS(Str(o, kPriorities[rng_.Uniform(0, 4)])));
      o.column(6).data.push_back(SlotS(Str(o, clerk)));
      o.column(7).data.push_back(SlotI(0));
      o.column(8).data.push_back(SlotS(Str(o, comment)));
    }
  }

  storage::Database* db_;
  Rng rng_;
  double sf_;
  int64_t num_suppliers_ = 0;
  int64_t num_customers_ = 0;
  int64_t num_parts_ = 0;
};

}  // namespace

void Generate(storage::Database* db, const GenConfig& config) {
  Generator(db, config).Run();
}

storage::Database MakeTpchDatabase(double scale_factor, uint64_t seed) {
  storage::Database db;
  AddTpchSchema(&db);
  GenConfig cfg;
  cfg.scale_factor = scale_factor;
  cfg.seed = seed;
  Generate(&db, cfg);
  return db;
}

}  // namespace qc::tpch
