#include "compiler/compiler.h"

#include "common/timer.h"
#include "ir/numbering.h"
#include "lower/pipeline.h"
#include "opt/cond_flatten.h"
#include "opt/dce.h"
#include "opt/hash_spec.h"
#include "opt/index_infer.h"
#include "opt/mark_lib.h"
#include "opt/pool_hoist.h"
#include "opt/scalar_repl.h"
#include "opt/string_dict.h"

namespace qc::compiler {

StackConfig StackConfig::Level(int levels) {
  StackConfig c;
  c.name = "dblab-lb-" + std::to_string(levels);
  c.levels = levels;
  // 2-level stack: pipelining template expansion straight to C, generic
  // library collections, one malloc per record.
  c.string_dict = false;
  c.index_inference = false;
  c.hash_spec = false;
  c.intrusive_lists = false;
  c.pool_hoist = false;
  c.scalar_repl = false;
  c.cond_flatten = false;
  if (levels >= 3) {
    // + ScaLite: memory management and fine-grained scalar optimizations.
    c.pool_hoist = true;
    c.scalar_repl = true;
    c.cond_flatten = true;
  }
  if (levels >= 4) {
    // + ScaLite[Map, List]: data-structure-aware optimizations.
    c.string_dict = true;
    c.index_inference = true;
    c.hash_spec = true;
  }
  if (levels >= 5) {
    // + ScaLite[List]: list specialization.
    c.intrusive_lists = true;
  }
  return c;
}

StackConfig StackConfig::Compliant() {
  StackConfig c = Level(5);
  c.name = "tpch-compliant";
  c.string_dict = false;
  c.index_inference = false;
  c.hash_spec = false;  // data-structure partitioning is not compliant
  c.intrusive_lists = false;
  return c;
}

StackConfig StackConfig::LegoBase() {
  StackConfig c = Level(5);
  c.name = "legobase";
  c.index_inference = false;  // not expressible in the monolithic expander
  return c;
}

CompileResult QueryCompiler::Compile(const qplan::Plan& plan,
                                     const StackConfig& config,
                                     const std::string& name) {
  CompileResult result;
  Timer total;

  auto phase = [&](const char* pname, auto&& body) {
    Timer t;
    body();
    result.phase_ms.emplace_back(pname, t.ElapsedMs());
  };

  std::unique_ptr<ir::Function> fn;

  phase("pipelining", [&] {
    fn = lower::LowerPlanPipelined(plan, *db_, types_, name);
    opt::DeadCodeElimination(fn.get());
  });
  if (config.verify) ir::CheckLevel(*fn, ir::Level::kMapList);

  if (config.string_dict) {
    phase("string-dict", [&] {
      fn = opt::ApplyStringDictionaries(*fn, db_);
      opt::DeadCodeElimination(fn.get());
    });
    if (config.verify) ir::CheckLevel(*fn, ir::Level::kMapList);
  }

  if (config.index_inference) {
    phase("index-inference", [&] {
      fn = opt::InferIndexes(*fn, db_);
      opt::DeadCodeElimination(fn.get());
    });
    if (config.verify) ir::CheckLevel(*fn, ir::Level::kMapList);
  }

  if (config.hash_spec) {
    phase("hash-specialization", [&] {
      opt::HashSpecOptions opts;
      opts.intrusive_lists = config.intrusive_lists;
      fn = opt::SpecializeHashStructures(*fn, db_, opts);
      opt::DeadCodeElimination(fn.get());
    });
  }

  if (config.pool_hoist) {
    phase("pool-hoisting", [&] {
      fn = opt::HoistMemoryAllocations(*fn, *db_);
      opt::DeadCodeElimination(fn.get());
    });
  }

  if (config.scalar_repl) {
    phase("scalar-replacement", [&] {
      // Optimizations at one level run to a fixed point (§2.2): scalar
      // replacement can expose further replaceable records.
      for (int i = 0; i < 5; ++i) {
        fn = opt::ScalarReplacement(*fn);
        if (opt::DeadCodeElimination(fn.get()) == 0) break;
      }
    });
  }

  if (config.cond_flatten) {
    phase("condition-flattening", [&] {
      fn = opt::FlattenConditions(*fn);
      opt::DeadCodeElimination(fn.get());
    });
  }

  phase("finalize", [&] {
    opt::MarkLibraryCollections(fn.get());
    opt::DeadCodeElimination(fn.get());
    // Passes leave holes in the id space; ids double as executor register
    // indices, so compact them to shrink the register file.
    ir::RenumberDense(fn.get());
  });
  if (config.verify) ir::CheckLevel(*fn, ir::Level::kCLite, true);

  result.fn = std::move(fn);
  result.total_ms = total.ElapsedMs();
  return result;
}

}  // namespace qc::compiler
