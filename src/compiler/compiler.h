// The DSL-stack pass manager. A StackConfig selects how many levels of the
// stack are active (Table 3's DBLAB/LB 2..5 configurations), which
// optimizations run at each level, and encodes the single lowering path
// demanded by the transformation cohesion principle:
//
//   QPlan --pipelining--> ScaLite[Map,List]
//         --string dictionaries, index inference--        (level-3 opts)
//         --hash specialization--> ScaLite[List]          (4-level stack)
//         --list specialization--> ScaLite                (5-level stack)
//         --pools, scalar replacement, &&-flattening--> C.Lite
//
// With fewer levels enabled, the corresponding transformations simply cannot
// be expressed and are skipped — reproducing the degenerate configurations
// of the evaluation. Every phase is timed (Figure 9) and the output of every
// stage is verified against its DSL level.
#ifndef QC_COMPILER_COMPILER_H_
#define QC_COMPILER_COMPILER_H_

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "ir/stmt.h"
#include "ir/verify.h"
#include "qplan/plan.h"
#include "storage/database.h"

namespace qc::compiler {

struct StackConfig {
  std::string name = "dblab-lb-5";
  int levels = 5;  // informational: 2..5

  bool string_dict = true;       // §5.3
  bool index_inference = true;   // Appendix B.1
  bool hash_spec = true;         // §5.2 (direct-addressed structures)
  bool intrusive_lists = true;   // §4.4 list specialization
  bool pool_hoist = true;        // Appendix D.1
  bool scalar_repl = true;       // Appendix C
  bool cond_flatten = true;      // Appendix E
  bool verify = true;            // check levels after each phase

  // Table 3 presets.
  static StackConfig Level(int levels);
  // TPC-H compliant set: dictionaries, partitioning and index inference off.
  static StackConfig Compliant();
  // The monolithic LegoBase baseline: one-step expansion with LegoBase's
  // optimization set (no automatic index inference).
  static StackConfig LegoBase();
};

struct CompileResult {
  std::unique_ptr<ir::Function> fn;
  double total_ms = 0;
  std::vector<std::pair<std::string, double>> phase_ms;
};

class QueryCompiler {
 public:
  // The database is consulted at compile time for statistics, dictionaries
  // and indexes (their construction is charged to loading, Appendix D).
  QueryCompiler(storage::Database* db, ir::TypeFactory* types)
      : db_(db), types_(types) {}

  // `plan` must be resolved against `db`.
  CompileResult Compile(const qplan::Plan& plan, const StackConfig& config,
                        const std::string& name);

 private:
  storage::Database* db_;
  ir::TypeFactory* types_;
};

}  // namespace qc::compiler

#endif  // QC_COMPILER_COMPILER_H_
