// Per-connection and per-request state of the serving daemon.
//
// Ownership is split along the thread boundary:
//   * Session — one accepted connection. The socket fd and the inbound
//     parse buffer belong to the event-loop thread exclusively; the
//     outbound buffer, the closed flag, and the in-flight request pointer
//     are shared with worker threads under `mu`.
//   * Request — one admitted query. Reference-counted: the session, the
//     admission queue, and the executing worker all hold shared_ptrs, so a
//     disconnect can tear down the Session while the worker still runs the
//     query against the Request's ExecControl — the PR 6 contract then
//     unwinds it within one safepoint interval.
#ifndef QC_SERVER_SESSION_H_
#define QC_SERVER_SESSION_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>

#include "exec/governor.h"

namespace qc::server {

class Session;

// What an admitted request asks for, with every limit already clamped by
// the server-wide caps (deadlines/budgets by default: a request that names
// no limit gets the cap, never "unlimited").
struct Request {
  // kQuery runs a compiled TPC-H plan; kBlock is the debug occupancy
  // endpoint (a governed cancellable wait, only when debug endpoints are
  // enabled) used by robustness tests to hold a worker deterministically.
  enum class Kind { kQuery, kBlock };
  Kind kind = Kind::kQuery;

  uint64_t id = 0;
  int query = 1;        // TPC-H query number, 1..22
  int level = 5;        // stack level for the plan cache key
  bool want_jit = true; // engine request; degradation may override
  int64_t block_ms = 0; // kBlock: how long to hold the worker

  // Client identity for fair admission: sanitized X-QC-Client header /
  // client= token, "" = anonymous (all id-less traffic shares one bucket).
  std::string client;

  // Set (under the admission queue's mutex) when a worker popped this
  // request. Finalization must only release a per-client inflight slot for
  // requests that actually took one — a cancel-by-id of a still-queued
  // request finalizes without ever being popped.
  bool popped = false;

  // Absolute monotonic deadlines (exec::GovNowNs scale). The run deadline
  // covers queue wait + every retry attempt; the queue deadline sheds the
  // request if no worker picked it up in time.
  int64_t deadline_abs_ns = 0;
  int64_t queue_deadline_ns = 0;
  int64_t admitted_ns = 0;
  int64_t mem_budget_bytes = 0;

  bool http = true;   // response framing (HTTP vs line protocol)
  bool trace = false;  // record a per-request trace, report its id

  std::shared_ptr<Session> session;
  exec::ExecControl control;

  // Set by disconnect or the drain straggler kill. Distinct from
  // control.cancel because each retry attempt re-polls the control from a
  // clean per-run state; `aborted` is the request-lifetime kill switch the
  // retry loop must also honor between attempts.
  std::atomic<bool> aborted{false};

  void Kill() {
    aborted.store(true, std::memory_order_relaxed);
    control.RequestCancel();
  }
};

using RequestPtr = std::shared_ptr<Request>;

class Session {
 public:
  // --- event-loop-thread-only state --------------------------------------
  int fd = -1;
  std::string in;  // unparsed inbound bytes

  // Timestamps (exec::GovNowNs scale) driving the poll()-loop timeout
  // sweep. `in_start_ns` is the age anchor of the *oldest unparsed byte*:
  // set when bytes land in an empty `in`, cleared when `in` drains — a
  // slow-loris client dribbling one byte per interval keeps `last_in_ns`
  // fresh but never moves `in_start_ns`, which is what evicts it.
  int64_t last_in_ns = 0;   // last byte received (0 = accept time pending)
  int64_t last_out_ns = 0;  // last byte successfully written
  int64_t in_start_ns = 0;  // oldest unparsed byte arrived (0 = in empty)
  int64_t accepted_ns = 0;  // connection accept time
  bool was_http = false;    // framing seen on this connection (for sweeps)

  // --- shared with workers, under mu -------------------------------------
  std::mutex mu;
  std::string out;        // rendered response bytes awaiting the socket
  bool closed = false;    // event loop closed the fd; drop responses
  RequestPtr inflight;    // the one queued-or-executing request (at most 1)
};

using SessionPtr = std::shared_ptr<Session>;

}  // namespace qc::server

#endif  // QC_SERVER_SESSION_H_
