// Cross-session compiled-plan cache: each (query, stack level) pair is
// lowered once per process and every worker's Interpreter then reuses the
// same ir::Function (the per-worker engines additionally cache bytecode and
// JIT code keyed by the Function's address, which this cache keeps stable
// for the server's lifetime).
//
// The schema is part of the key implicitly: one PlanCache serves exactly
// one immutable Database, and the compiler consults that database's
// statistics, dictionaries and indexes at lowering time. A server over a
// different schema/scale gets its own cache.
//
// Compilation is serialized under one mutex — lowering also lazily builds
// shared dictionary/index structures inside the Database, which are not
// safe to build concurrently. Executions never take the lock after the
// entry exists (shared_mutex read path).
#ifndef QC_SERVER_PLAN_CACHE_H_
#define QC_SERVER_PLAN_CACHE_H_

#include <map>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <utility>

#include "compiler/compiler.h"
#include "ir/stmt.h"
#include "storage/database.h"

namespace qc::server {

class PlanCache {
 public:
  explicit PlanCache(storage::Database* db) : db_(db) {}

  // Returns the compiled function for TPC-H query `query` at stack level
  // `level`, compiling on first use. nullptr (with *error set) when
  // compilation fails — a structured per-request failure, never fatal to
  // the server.
  const ir::Function* Get(int query, int level, std::string* error);

  // Pre-compiles every query at `level` (startup warm-up, so the first
  // client request never pays lowering latency).
  void Warm(int level);

 private:
  struct Entry {
    ir::TypeFactory types;  // must outlive res.fn
    compiler::CompileResult res;
  };

  storage::Database* db_;
  std::shared_mutex map_mu_;   // guards entries_ lookup/insert
  std::mutex compile_mu_;      // serializes lowering (shared db internals)
  std::map<std::pair<int, int>, std::unique_ptr<Entry>> entries_;
};

}  // namespace qc::server

#endif  // QC_SERVER_PLAN_CACHE_H_
