// Retry policy for transient kResourceFailure trips (injected or real
// allocation/mmap faults). Safe to apply blindly because storage is
// immutable and a tripped query returns an empty table: re-running is
// idempotent by construction.
//
// Bounded twice: by attempt count and by the request's remaining run
// deadline — a retry whose backoff delay would not leave any execution
// time is not attempted (the caller reports the last failure instead).
#ifndef QC_SERVER_RETRY_H_
#define QC_SERVER_RETRY_H_

#include <cstdint>

#include "common/backoff.h"
#include "exec/governor.h"

namespace qc::server {

class RetryPolicy {
 public:
  // `seed` should mix a server seed with the request id so concurrent
  // requests decorrelate while chaos runs stay reproducible.
  RetryPolicy(uint64_t seed, int max_retries, int64_t base_ms, int64_t max_ms)
      : backoff_(seed, base_ms, max_ms),
        max_retries_(max_retries < 0 ? 0 : max_retries) {}

  int attempts() const { return attempts_; }

  // Decides whether the failed attempt should be retried; on true, returns
  // the jittered delay to sleep (clamped so delay + 1ms of execution still
  // fits before `deadline_abs_ns`; 0 = retry immediately).
  bool ShouldRetry(int64_t deadline_abs_ns, int64_t* delay_ms) {
    if (attempts_ >= max_retries_) return false;
    int64_t delay = backoff_.NextDelayMs(attempts_);
    if (deadline_abs_ns != 0) {
      int64_t remaining_ms =
          (deadline_abs_ns - exec::GovNowNs()) / 1000000 - 1;
      if (remaining_ms <= 0) return false;  // no time left to run anything
      if (delay > remaining_ms) delay = remaining_ms;
    }
    ++attempts_;
    *delay_ms = delay;
    return true;
  }

 private:
  Backoff backoff_;
  const int max_retries_;
  int attempts_ = 0;
};

}  // namespace qc::server

#endif  // QC_SERVER_RETRY_H_
