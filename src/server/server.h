// qc_serve: a long-lived query-serving daemon over shared immutable TPC-H
// storage — ROADMAP item 2, built robustness-first on the PR 6 governance
// layer. One poll()-based event-loop thread multiplexes every client
// connection (HTTP/1.1 GET + line protocol, auto-detected); N worker
// threads execute admitted queries, each with its own exec::Interpreter
// (and WorkerPool when per-query threads > 1) against the shared database
// and the cross-session compiled-plan cache.
//
// The robustness envelope, end to end:
//   * admission control  — bounded queue; full => immediate 503
//     "overloaded"; a request whose queue deadline expires before a worker
//     picks it up is shed with "queue_deadline" (server/admission.h);
//   * deadlines/budgets by default — every request's ExecControl gets a
//     deadline and memory budget clamped by QC_SERVE_MAX_DEADLINE_MS /
//     QC_SERVE_MAX_MEM_MB; unspecified means the cap, never unlimited;
//   * kill-on-disconnect — EOF/error on the client socket cancels the
//     session's in-flight control; the query unwinds within one safepoint
//     interval and the worker is free again;
//   * retry with jittered exponential backoff — transient kResourceFailure
//     trips re-run (immutable storage makes this idempotent), bounded by
//     QC_SERVE_MAX_RETRIES and the request's remaining deadline
//     (server/retry.h);
//   * graceful degradation — exhausted resource retries and JIT fallbacks
//     raise a server-wide downshift level (1: new admissions run the VM
//     engine instead of the JIT; 2: also single-threaded); sustained
//     successes step it back down. Reported per response (X-QC-Downshift)
//     and in /stats;
//   * graceful drain — BeginDrain() (SIGTERM in the binary) stops
//     admissions, Drain() waits for in-flight work up to
//     QC_SERVE_DRAIN_MS, then cancels stragglers through their controls;
//     the process exits 0;
//   * multi-tenant fairness — requests carry an optional client id
//     (X-QC-Client / client=) into a weighted-fair admission queue with
//     per-client token-bucket quotas, queue bounds, and inflight caps
//     (server/admission.h); quota sheds answer 429 "quota", distinct from
//     the 503 overload path;
//   * cancel-by-id — every admitted request's id is returned to the client
//     (X-QC-Request-Id / id=); POST /cancel/<id> or CANCEL <id> trips that
//     request's ExecControl: queued work sheds immediately, running work
//     unwinds within one safepoint interval, and finalization stays
//     exactly-once through the outstanding-request registry;
//   * connection hardening — per-connection read/write stall and idle
//     timeouts swept from the poll() loop (slow-loris eviction), bounded
//     request-line/header/body buffers (414/431/413), a per-connection
//     pipelining cap, and a global connection ceiling with LIFO eviction
//     of idle keep-alive sockets.
//
// Faults: the srv_accept / srv_read / srv_write / srv_queue / srv_timeout /
// srv_cancel QC_FAULT sites make every network edge chaos-testable
// alongside the execution-side sites (common/fault.h).
#ifndef QC_SERVER_SERVER_H_
#define QC_SERVER_SERVER_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "exec/interp.h"
#include "server/admission.h"
#include "server/plan_cache.h"
#include "server/session.h"
#include "storage/database.h"
#include "telemetry/metrics.h"

namespace qc::server {

struct ServerOptions {
  int port = 0;                    // 0 = ephemeral (read back via port())
  int workers = 2;                 // executing worker threads
  int query_threads = 1;           // morsel threads per query (downshiftable)
  int queue_capacity = 64;         // admission queue bound
  int64_t max_deadline_ms = 10000; // cap AND default run deadline
  int64_t queue_deadline_ms = 1000;  // cap AND default queue-wait deadline
  int64_t max_mem_mb = 256;        // cap AND default per-query memory budget
  int max_retries = 2;             // resource-failure retry attempts
  int64_t retry_base_ms = 1;
  int64_t retry_max_ms = 100;
  int64_t drain_deadline_ms = 2000;
  int recover_ok = 32;             // ok runs per downshift-level step-down
  int level = 5;                   // default stack level
  bool default_jit = true;         // engine when the request names none
  bool debug_endpoints = false;    // /debug/block (tests, chaos CI)
  uint64_t seed = 42;              // retry-jitter seed

  // Multi-tenant fairness (0 = unlimited; quotas are per client id).
  double client_qps = 0;       // token-bucket admissions/sec per client
  int client_inflight = 0;     // popped-but-unfinished cap per client
  int client_queue = 0;        // queued-request bound per client

  // Connection hardening.
  int64_t idle_ms = 60000;     // evict keep-alive sockets idle this long
  int64_t io_idle_ms = 10000;  // stalled read (slow loris) / write eviction
  int pipeline_cap = 16;       // buffered pipelined requests per connection
  int max_conns = 1024;        // global connection ceiling

  static ServerOptions FromEnv();  // QC_SERVE_* knobs, hardened parses
};

// Monotonic counters, all relaxed: exactness across threads matters less
// than never synchronizing on the hot path. Every counter lives in the
// server's own telemetry registry; /stats (JSON) and /metrics (Prometheus)
// are both rendered from one registry snapshot, so they can never diverge.
// The reference members keep `stats().ok.load()`-style call sites working.
struct ServerStats {
  telemetry::MetricsRegistry registry;  // must precede the references

  telemetry::Counter& connections;
  telemetry::Counter& requests;
  telemetry::Counter& ok;
  telemetry::Counter& bad_requests;
  telemetry::Counter& shed_queue_full;
  telemetry::Counter& shed_queue_deadline;
  telemetry::Counter& shed_draining;
  telemetry::Counter& failed_deadline;
  telemetry::Counter& failed_cancelled;
  telemetry::Counter& failed_memory;
  telemetry::Counter& failed_resource;
  telemetry::Counter& retries;
  telemetry::Counter& downshifts;
  telemetry::Gauge& downshift_level;  // 0..2 degradation ladder
  telemetry::Counter& disconnect_cancels;
  telemetry::Counter& drain_kills;
  telemetry::Counter& jit_fallbacks;
  telemetry::Counter& net_faults;  // injected srv_* fault firings
  telemetry::Histogram& request_ms;  // end-to-end worker latency (no json)

  // PR 9 families, registered after the originals so the legacy /stats
  // keys keep their positions and the new ones append.
  telemetry::Counter& shed_quota;        // token-bucket 429 sheds
  telemetry::Counter& shed_client_queue; // per-client queue-bound 429 sheds
  telemetry::Counter& cancels_by_id;     // POST /cancel + CANCEL accepted
  telemetry::Counter& evicted_idle;      // idle keep-alive sockets closed
  telemetry::Counter& evicted_stalled;   // slow-loris / stalled-write closes
  telemetry::Counter& pipeline_limited;  // connections over the pipeline cap
  telemetry::Counter& conn_evicted;      // LIFO evictions at the ceiling
  telemetry::Counter& conn_refused;      // accepts refused at the ceiling

  ServerStats();

  // One snapshot feeds both renderings (and the shutdown summary).
  telemetry::MetricsSnapshot Snapshot() const { return registry.Snapshot(); }
  std::string ToJson() const;        // byte-compatible with the old /stats
  std::string ToPrometheus() const;  // server + process-global families
};

class Server {
 public:
  // `db` must outlive the server and is treated as immutable shared
  // storage (lazy dictionary/index builds are serialized by the plan
  // cache's compile lock).
  Server(storage::Database* db, ServerOptions opts);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  // Binds + listens + spawns the event loop and workers. False (with
  // stderr detail) when the socket setup fails.
  bool Start();

  // The bound port (valid after Start; useful with port = 0).
  int port() const { return port_; }

  // Stops admissions: listening socket closes, queued-but-unstarted and
  // newly parsed requests answer 503 "draining". Idempotent, non-blocking.
  void BeginDrain();

  // BeginDrain + wait for in-flight work up to drain_deadline_ms, then
  // cancel stragglers via their ExecControls and wait for the unwind.
  // Returns true when everything finished before the deadline (no
  // stragglers had to be killed).
  bool Drain();

  // Full shutdown: Drain(), then stop and join workers and the event
  // loop, closing every session. Safe to call twice.
  void Stop();

  // Pre-compiles every query at the default level (the binary calls this
  // after Start so the port is health-checkable during warm-up; requests
  // arriving mid-warm just wait on the compile lock).
  void WarmPlans() { plans_.Warm(opts_.level); }

  const ServerStats& stats() const { return stats_; }
  bool draining() const { return draining_.load(std::memory_order_relaxed); }
  int downshift_level() const {
    return static_cast<int>(
        stats_.downshift_level.load(std::memory_order_relaxed));
  }

 private:
  struct Worker {
    std::thread thread;
    // Interpreters are created on first use (each multi-thread one owns a
    // WorkerPool): [0] jit @ query_threads, [1] vm @ query_threads,
    // [2] vm @ 1 — the degradation ladder.
    std::unique_ptr<exec::Interpreter> interp[3];
  };

  void EventLoop();
  void WorkerMain(Worker* w);

  // --- event-loop internals (loop thread only) ---------------------------
  void AcceptNew();
  void HandleReadable(const SessionPtr& s);
  void ParseBuffered(const SessionPtr& s);
  void FlushWrites(const SessionPtr& s);
  void CloseSession(const SessionPtr& s, bool cancel_inflight);
  void RespondInline(const SessionPtr& s, std::string wire);
  void AdmitQuery(const SessionPtr& s, const struct ParsedRequest& p);
  void HandleCancel(const SessionPtr& s, const struct ParsedRequest& p);
  // Evicts stalled writers, slow-loris readers, and idle keep-alive
  // sockets; runs every poll() wakeup.
  void SweepTimeouts();
  // Connection-ceiling enforcement: true when the new fd may be kept
  // (possibly after LIFO-evicting an idle session), false = refuse.
  bool MakeRoomForConnection();

  // Renders /stats JSON (registry snapshot + per-client object) and the
  // /metrics exposition (adds hand-labeled qc_server_client_* families —
  // the registry itself is label-free).
  std::string RenderStatsJson();
  std::string RenderMetricsText();

  // --- worker internals ---------------------------------------------------
  void Execute(Worker* w, const RequestPtr& req);
  void ExecuteBlock(const RequestPtr& req);
  void Respond(const RequestPtr& req, std::string wire);
  // Exactly-once finalization: erases the request from the outstanding
  // registry (false when already finalized), releases its admission-queue
  // inflight slot, and decrements active_.
  bool TryFinalize(const RequestPtr& req);
  exec::Interpreter* PickInterpreter(Worker* w, const RequestPtr& req,
                                     int* downshift, const char** engine);
  void NoteOutcome(exec::QueryStatusCode code, bool retried_out);

  // Bounded store of per-request trace JSON (?trace=1): the newest
  // kMaxStoredTraces live at /debug/trace/<id>, older ones are evicted.
  void StoreTrace(uint64_t id, std::string json);
  bool GetTrace(uint64_t id, std::string* out);

  void Wake();

  storage::Database* db_;
  ServerOptions opts_;
  ServerStats stats_;
  PlanCache plans_;
  FairAdmissionQueue queue_;

  int listen_fd_ = -1;
  int wake_rd_ = -1;
  int wake_wr_ = -1;
  int port_ = 0;

  std::atomic<bool> draining_{false};
  std::atomic<bool> stop_{false};
  std::atomic<int> active_{0};        // requests currently on a worker
  std::atomic<int> ok_streak_{0};     // consecutive ok runs (recovery)
  std::atomic<uint64_t> next_id_{1};

  std::thread loop_;
  std::vector<std::unique_ptr<Worker>> workers_;
  std::map<int, SessionPtr> sessions_;  // loop thread only
  // Every admitted-but-unfinished request, so the drain straggler kill can
  // cancel queued AND executing work through one registry.
  std::mutex reg_mu_;
  std::map<uint64_t, RequestPtr> outstanding_;
  static constexpr size_t kMaxStoredTraces = 16;
  std::mutex trace_mu_;
  std::map<uint64_t, std::string> traces_;
  std::deque<uint64_t> trace_order_;  // eviction order (FIFO)
  bool started_ = false;
  bool stopped_ = false;
};

}  // namespace qc::server

#endif  // QC_SERVER_SERVER_H_
