#include "server/plan_cache.h"

#include "analysis/bc_verify.h"
#include "exec/bytecode.h"
#include "ir/parallel.h"
#include "qplan/plan.h"
#include "telemetry/metrics.h"
#include "telemetry/trace.h"
#include "tpch/queries.h"

namespace qc::server {

const ir::Function* PlanCache::Get(int query, int level, std::string* error) {
  if (query < 1 || query > tpch::kNumQueries || level < 2 || level > 5) {
    if (error != nullptr) *error = "bad plan key";
    return nullptr;
  }
  std::pair<int, int> key(query, level);
  {
    std::shared_lock<std::shared_mutex> lock(map_mu_);
    auto it = entries_.find(key);
    if (it != entries_.end()) {
      telemetry::PlanCacheHits().Inc();
      return it->second->res.fn.get();
    }
  }
  // Serialize lowering: the compiler lazily builds dictionaries/indexes
  // inside the shared Database. Double-check under the compile lock so two
  // racing misses compile once.
  std::lock_guard<std::mutex> compile_lock(compile_mu_);
  {
    std::shared_lock<std::shared_mutex> lock(map_mu_);
    auto it = entries_.find(key);
    if (it != entries_.end()) {
      telemetry::PlanCacheHits().Inc();
      return it->second->res.fn.get();
    }
  }
  telemetry::PlanCacheMisses().Inc();
  auto entry = std::make_unique<Entry>();
  qplan::PlanPtr plan;
  {
    telemetry::ScopedSpan span("parse", "compile", "query", query);
    plan = tpch::MakeQuery(query);
    qplan::ResolvePlan(plan.get(), *db_);
  }
  compiler::QueryCompiler qc(db_, &entry->types);
  {
    telemetry::ScopedSpan span("lower", "compile", "query", query);
    entry->res = qc.Compile(*plan, compiler::StackConfig::Level(level),
                            "srv_q" + std::to_string(query));
  }
  if (entry->res.fn == nullptr) {
    if (error != nullptr) *error = "compilation produced no function";
    return nullptr;
  }
  if (exec::analysis::VerifyEnabled()) {
    // Prove the plan's bytecode (including its morsel fragments) before it
    // can be served to any worker. Unlike the in-process Interpreter hook,
    // a violation here is surfaced as a structured error — the daemon
    // refuses the plan and stays up (crash-free contract of Get()).
    telemetry::ScopedSpan span("verify", "compile", "query", query);
    ir::ParallelInfo par = ir::AnalyzeParallelism(*entry->res.fn);
    exec::BytecodeProgram prog =
        exec::BytecodeCompiler(db_).Compile(*entry->res.fn, &par);
    exec::analysis::VerifyResult vres = exec::analysis::VerifyProgram(prog);
    if (!vres.ok()) {
      if (error != nullptr) {
        *error = "plan failed bytecode verification: " + vres.Report();
      }
      return nullptr;
    }
  }
  const ir::Function* fn = entry->res.fn.get();
  std::unique_lock<std::shared_mutex> lock(map_mu_);
  entries_.emplace(key, std::move(entry));
  return fn;
}

void PlanCache::Warm(int level) {
  std::string err;
  for (int q = 1; q <= tpch::kNumQueries; ++q) Get(q, level, &err);
}

}  // namespace qc::server
