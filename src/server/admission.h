// Bounded admission queue: the server's load-shedding point.
//
// Admission control is deliberately *pushback at the edge* rather than
// unbounded buffering: when the queue is full the event loop answers
// `503 overloaded` immediately (TryPush fails, nothing blocks), so overload
// costs each shed request one parse + one small write instead of memory and
// a growing tail latency. Per-request queue deadlines catch the other
// overload shape — requests that were admitted but waited too long to be
// worth running (the worker pops them and sheds with `queue_deadline`).
#ifndef QC_SERVER_ADMISSION_H_
#define QC_SERVER_ADMISSION_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <vector>

#include "server/session.h"

namespace qc::server {

class AdmissionQueue {
 public:
  explicit AdmissionQueue(size_t capacity)
      : capacity_(capacity < 1 ? 1 : capacity) {}

  // Non-blocking: false when the queue is at capacity or closed — the
  // caller sheds the request.
  bool TryPush(RequestPtr r) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (closed_ || q_.size() >= capacity_) return false;
      q_.push_back(std::move(r));
    }
    cv_.notify_one();
    return true;
  }

  // Blocks for the next request; nullptr once the queue is closed and
  // drained (worker shutdown signal).
  RequestPtr Pop() {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [&] { return closed_ || !q_.empty(); });
    if (q_.empty()) return nullptr;
    RequestPtr r = std::move(q_.front());
    q_.pop_front();
    return r;
  }

  // Removes everything still queued (the drain-deadline straggler flush).
  std::vector<RequestPtr> TakeAll() {
    std::lock_guard<std::mutex> lock(mu_);
    std::vector<RequestPtr> out(q_.begin(), q_.end());
    q_.clear();
    return out;
  }

  void Close() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      closed_ = true;
    }
    cv_.notify_all();
  }

  size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return q_.size();
  }

 private:
  const size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<RequestPtr> q_;
  bool closed_ = false;
};

}  // namespace qc::server

#endif  // QC_SERVER_ADMISSION_H_
