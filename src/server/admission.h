// Fair admission queue: the server's load-shedding point, now per-tenant.
//
// Admission control is deliberately *pushback at the edge* rather than
// unbounded buffering: when a bound trips the event loop answers the client
// immediately (TryPush never blocks), so overload costs each shed request
// one parse + one small write instead of memory and a growing tail latency.
// PR 9 replaces the single FIFO with per-client sub-queues so no tenant can
// starve another:
//
//   * every request carries a client id ("" = anonymous) and lands in that
//     client's own deque;
//   * workers Pop() round-robin across clients with queued work — a client
//     with 50 queued requests and a client with 1 alternate, so the light
//     client's queue wait is bounded by the number of *clients* ahead of
//     it, not the number of *requests*;
//   * three bounds shed at push time, each with a distinct structured
//     status: the global capacity (503 "overloaded", unchanged), a
//     per-client queue bound (429 "quota"), and a per-client token-bucket
//     rate (429 "quota");
//   * a per-client max-inflight cap *defers* rather than sheds: Pop() skips
//     clients at their cap and returns their work once OnFinished() frees a
//     slot.
//
// Per-request queue deadlines still catch the other overload shape —
// requests that were admitted but waited too long to be worth running (the
// worker pops them and sheds with `queue_deadline`).
#ifndef QC_SERVER_ADMISSION_H_
#define QC_SERVER_ADMISSION_H_

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "server/session.h"

namespace qc::server {

class FairAdmissionQueue {
 public:
  struct Limits {
    size_t capacity = 64;      // global bound (503 "overloaded")
    size_t client_queue = 0;   // per-client queued bound, 0 = unlimited
    double client_qps = 0;     // per-client token-bucket rate, 0 = unlimited
    int client_inflight = 0;   // per-client popped-but-unfinished cap, 0 = ∞
  };

  enum class Admit {
    kAdmitted,
    kQueueFull,        // global capacity: 503 "overloaded"
    kQuotaShed,        // token bucket empty: 429 "quota"
    kClientQueueFull,  // per-client queue bound: 429 "quota"
  };

  // One client's counters + instantaneous state, for /stats and /metrics.
  struct ClientSample {
    std::string name;  // "" rendered as "anon" by the caller
    uint64_t admitted = 0;
    uint64_t done = 0;        // finalized (any outcome) after admission
    uint64_t shed_quota = 0;  // token-bucket + per-client-queue sheds
    uint64_t shed_queue = 0;  // global-capacity sheds charged to this client
    int inflight = 0;
    size_t queued = 0;
  };

  explicit FairAdmissionQueue(Limits limits);

  // Non-blocking; on anything but kAdmitted the caller sheds the request.
  // May rewrite r->client (distinct-client overflow folds into anonymous).
  Admit TryPush(RequestPtr r);

  // Blocks for the next runnable request, round-robin across clients and
  // skipping clients at their inflight cap (once closed the cap is ignored
  // so shutdown can never strand queued work); nullptr once the queue is
  // closed and drained (worker shutdown signal). Marks the result popped
  // and charges the client's inflight slot.
  RequestPtr Pop();

  // Extracts a still-queued request by id (cancel-by-id of queued work);
  // nullptr when the id is not queued here (already popped or unknown).
  RequestPtr Remove(uint64_t id);

  // Releases the per-client inflight slot (if the request was popped) and
  // counts the finalization. Must be called exactly once per admitted
  // request — the server routes this through its exactly-once registry.
  void OnFinished(const RequestPtr& r);

  // Removes everything still queued (the drain-deadline straggler flush).
  std::vector<RequestPtr> TakeAll();

  void Close();

  size_t size() const;

  std::vector<ClientSample> SnapshotClients() const;

 private:
  struct ClientState {
    std::deque<RequestPtr> q;
    double tokens = 0;
    int64_t last_refill_ns = 0;
    int inflight = 0;
    uint64_t admitted = 0;
    uint64_t done = 0;
    uint64_t shed_quota = 0;
    uint64_t shed_queue = 0;
  };

  // Most clients the queue keys separately; beyond this, new names fold
  // into the anonymous bucket so a client-id flood cannot grow the map.
  static constexpr size_t kMaxClients = 256;

  ClientState& StateFor(RequestPtr& r);  // may fold r->client; mu_ held
  bool PoppableLocked() const;

  const Limits limits_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::map<std::string, ClientState> clients_;
  std::string rr_last_;  // round-robin cursor: scan starts after this name
  size_t total_ = 0;     // queued across all clients
  bool closed_ = false;
};

}  // namespace qc::server

#endif  // QC_SERVER_ADMISSION_H_
