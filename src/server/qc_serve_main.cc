// qc_serve: the serving-daemon binary. Loads (generates) TPC-H storage at
// QC_SERVE_SF, starts the server with QC_SERVE_* options, and runs until
// SIGTERM/SIGINT — on which it drains gracefully and exits 0.
//
// Signal handling uses the classic self-pipe pattern: the handler only
// writes one byte to a non-blocking pipe; all real shutdown work happens on
// the main thread, so no async-signal-unsafe call ever runs in handler
// context.
#include <poll.h>
#include <signal.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>

#include "common/env.h"
#include "server/server.h"
#include "tpch/datagen.h"

namespace {

int g_sig_pipe[2] = {-1, -1};

void OnSignal(int) {
  char b = 's';
  ssize_t ignored = ::write(g_sig_pipe[1], &b, 1);
  (void)ignored;
}

}  // namespace

int main() {
  if (::pipe(g_sig_pipe) != 0) {
    std::perror("qc_serve: pipe");
    return 1;
  }
  struct sigaction sa;
  sa.sa_handler = OnSignal;
  sigemptyset(&sa.sa_mask);
  sa.sa_flags = SA_RESTART;
  ::sigaction(SIGTERM, &sa, nullptr);
  ::sigaction(SIGINT, &sa, nullptr);
  ::signal(SIGPIPE, SIG_IGN);

  double sf = 0.01;
  if (const char* v = std::getenv("QC_SERVE_SF")) {
    char* end = nullptr;
    double parsed = std::strtod(v, &end);
    if (end != v && parsed > 0 && parsed <= 1.0) sf = parsed;
  }
  std::fprintf(stderr, "qc_serve: generating TPC-H storage, sf=%g\n", sf);
  qc::storage::Database db = qc::tpch::MakeTpchDatabase(sf);

  qc::server::ServerOptions opts = qc::server::ServerOptions::FromEnv();
  qc::server::Server server(&db, opts);
  if (!server.Start()) return 1;
  // Pre-compile every query so the first client request never pays
  // lowering latency (requests for other levels still compile lazily).
  std::fprintf(stderr, "qc_serve: warming plan cache, level=%d\n", opts.level);
  if (!qc::EnvFlagSet("QC_SERVE_NO_WARM")) server.WarmPlans();
  std::fprintf(stderr, "qc_serve: listening on port %d\n", server.port());
  std::fflush(stderr);

  // Block until a termination signal arrives.
  pollfd pfd{g_sig_pipe[0], POLLIN, 0};
  for (;;) {
    int rc = ::poll(&pfd, 1, -1);
    if (rc > 0 && (pfd.revents & POLLIN)) break;
  }
  std::fprintf(stderr, "qc_serve: signal received, draining\n");
  bool clean = server.Drain();
  server.Stop();
  std::fprintf(stderr, "qc_serve: drained %s, stats=%s\n",
               clean ? "clean" : "with stragglers cancelled",
               server.stats().ToJson().c_str());
  return 0;
}
