// qc_serve: the serving-daemon binary. Loads (generates) TPC-H storage at
// QC_SERVE_SF, starts the server with QC_SERVE_* options, and runs until
// SIGTERM/SIGINT — on which it drains gracefully and exits 0.
//
// Signal handling uses the classic self-pipe pattern: the handler only
// writes one byte to a non-blocking pipe; all real shutdown work happens on
// the main thread, so no async-signal-unsafe call ever runs in handler
// context.
#include <poll.h>
#include <signal.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <utility>
#include <vector>

#include "common/env.h"
#include "server/server.h"
#include "telemetry/log.h"
#include "telemetry/metrics.h"
#include "tpch/datagen.h"

namespace {

int g_sig_pipe[2] = {-1, -1};

void OnSignal(int) {
  char b = 's';
  ssize_t ignored = ::write(g_sig_pipe[1], &b, 1);
  (void)ignored;
}

}  // namespace

int main() {
  if (::pipe(g_sig_pipe) != 0) {
    std::perror("qc_serve: pipe");
    return 1;
  }
  struct sigaction sa;
  sa.sa_handler = OnSignal;
  sigemptyset(&sa.sa_mask);
  sa.sa_flags = SA_RESTART;
  ::sigaction(SIGTERM, &sa, nullptr);
  ::sigaction(SIGINT, &sa, nullptr);
  ::signal(SIGPIPE, SIG_IGN);

  double sf = 0.01;
  if (const char* v = std::getenv("QC_SERVE_SF")) {
    char* end = nullptr;
    double parsed = std::strtod(v, &end);
    if (end != v && parsed > 0 && parsed <= 1.0) sf = parsed;
  }
  using qc::telemetry::Log;
  using qc::telemetry::LogKv;
  using qc::telemetry::LogLevel;

  Log(LogLevel::kInfo, "boot", {{"sf", sf}});
  qc::storage::Database db = qc::tpch::MakeTpchDatabase(sf);

  qc::server::ServerOptions opts = qc::server::ServerOptions::FromEnv();
  qc::server::Server server(&db, opts);
  if (!server.Start()) return 1;
  // Pre-compile every query so the first client request never pays
  // lowering latency (requests for other levels still compile lazily).
  Log(LogLevel::kInfo, "warm", {{"level", opts.level}});
  if (!qc::EnvFlagSet("QC_SERVE_NO_WARM")) server.WarmPlans();
  Log(LogLevel::kInfo, "listening", {{"port", server.port()}});
  std::fflush(stderr);

  // Block until a termination signal arrives.
  pollfd pfd{g_sig_pipe[0], POLLIN, 0};
  for (;;) {
    int rc = ::poll(&pfd, 1, -1);
    if (rc > 0 && (pfd.revents & POLLIN)) break;
  }
  Log(LogLevel::kInfo, "draining", {});
  bool clean = server.Drain();
  server.Stop();
  // Shutdown summary straight from the registry snapshot: the same data
  // /stats and /metrics served, as one key=value log record.
  qc::telemetry::MetricsSnapshot snap = server.stats().Snapshot();
  std::vector<LogKv> kvs;
  kvs.emplace_back("status", clean ? "clean" : "stragglers_cancelled");
  for (const qc::telemetry::MetricSample& s : snap.samples) {
    if (s.json_key.empty()) continue;
    if (s.kind == qc::telemetry::MetricKind::kCounter) {
      kvs.emplace_back(s.json_key.c_str(),
                       static_cast<unsigned long long>(s.counter));
    } else if (s.kind == qc::telemetry::MetricKind::kGauge) {
      kvs.emplace_back(s.json_key.c_str(), static_cast<long long>(s.gauge));
    }
  }
  Log(LogLevel::kInfo, "shutdown", std::move(kvs));
  return 0;
}
