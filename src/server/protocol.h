// Wire protocol of the serving daemon: a minimal HTTP/1.1 front end and
// a one-line text protocol over the same port, auto-detected per connection
// from the first request line. Both parse into the same ParsedRequest and
// render through the same response helpers, so every robustness property
// (shed statuses, structured failures, drain refusals) is identical on both.
//
// HTTP surface:
//   GET /query?q=<1..22>[&deadline_ms=N][&mem_mb=N][&engine=jit|vm][&level=L]
//             [&trace=1][&client=ID]        (X-QC-Client header also sets ID)
//   POST /cancel/<request-id>               (the only POST route)
//   GET /stats          GET /healthz          GET /metrics (Prometheus text)
//   GET /debug/block?ms=N (gated)   GET /debug/trace/<id> (Chrome trace JSON)
// Line surface (one request per line):
//   QUERY <q> [deadline_ms=N] [mem_mb=N] [engine=jit|vm] [level=L] [trace=1]
//             [client=ID] [ack=1]
//   PING | STATS | METRICS | HEALTH | BLOCK <ms> | TRACE <id> | CANCEL <id>
//
// Status→wire mapping (MapStatus): the structured exec::QueryStatusCode of
// a finished run becomes an HTTP status + canonical token, and the same
// token travels in the X-QC-Status header / ERR line so line-protocol
// clients see exactly the structured failure HTTP clients do.
//
// Input bounds (ProtoLimits): the request line, the header block, a POST
// body, and the whole unparsed buffer are each bounded; exceeding one
// yields a structured 414/431/413 (tokens "uri_too_long",
// "headers_too_large", "body_too_large", "request_too_large") with
// `must_close` set — nothing after an over-limit prefix can be framed, so
// the connection must go.
#ifndef QC_SERVER_PROTOCOL_H_
#define QC_SERVER_PROTOCOL_H_

#include <cstddef>
#include <cstdint>
#include <string>

#include "exec/governor.h"
#include "storage/result.h"

namespace qc::server {

// Parser bounds. Defaults match the server's knobs; tests shrink them.
struct ProtoLimits {
  size_t max_buffer = 64 * 1024;  // whole unparsed buffer (last resort)
  size_t max_line = 4096;         // HTTP request line / line-proto line
  size_t max_headers = 16 * 1024; // HTTP header block incl. request line
  size_t max_body = 4096;         // POST body (Content-Length)
};

struct ParsedRequest {
  enum class Kind {
    kNeedMore,  // incomplete request: keep buffering
    kBad,       // malformed / unknown: answer `error` + close-independent
    kQuery,
    kBlock,
    kCancel,    // cancel-by-id: trip an outstanding request's control
    kStats,
    kMetrics,  // Prometheus text exposition of the same snapshot as kStats
    kTrace,    // fetch a stored per-request trace by id
    kHealth,
    kPing,
  };
  Kind kind = Kind::kNeedMore;
  bool http = true;
  size_t consumed = 0;  // bytes to erase from the inbound buffer

  int query = 0;
  int64_t deadline_ms = -1;  // -1 = not specified (server default applies)
  int64_t mem_mb = -1;
  int64_t block_ms = 0;
  int level = -1;
  int engine = -1;  // -1 unspecified, 0 vm, 1 jit
  bool trace = false;     // trace=1: record this request, return a trace id
  uint64_t trace_id = 0;  // kTrace: which stored trace to fetch
  uint64_t cancel_id = 0; // kCancel: which outstanding request to cancel

  // Sanitized client identity ([A-Za-z0-9_.-], ≤32 bytes; anything else is
  // dropped): X-QC-Client header (wins) or client= parameter; "" anonymous.
  std::string client;
  bool ack = false;  // line proto ack=1: emit "ID <id>" before the result

  int http_code = 400;       // for kBad
  std::string error;         // for kBad: canonical token ("bad_request", ...)
  bool must_close = false;   // for kBad: framing is unrecoverable, close
};

// Parses the next request out of `buf` (which may hold pipelined bytes).
// Never consumes a partial request; never exceeds the ProtoLimits bounds
// without turning the overrun into a structured kBad.
ParsedRequest ParseRequest(const std::string& buf, const ProtoLimits& limits);

// ---------------------------------------------------------------------------
// Responses. Every helper renders the complete wire bytes for one framing.
// ---------------------------------------------------------------------------

struct ResponseMeta {
  const char* status = "ok";  // canonical token (X-QC-Status / OK-ERR line)
  int http_code = 200;
  int64_t rows = -1;
  int retries = 0;
  int downshift = 0;      // downshift level the request ran under
  const char* engine = "";  // "jit", "vm" ("" = not applicable)
  uint64_t request_id = 0;  // nonzero: emit X-QC-Request-Id / " id=<n>"
  uint64_t trace_id = 0;  // nonzero: emit X-QC-Trace / " trace=<id>" token
  const char* content_type = "text/plain";  // HTTP framing only
};

// Maps a finished run's structured status to wire status + token.
ResponseMeta MapStatus(exec::QueryStatusCode code);

// Canonical text rendering of a result (one RowToString line per row) —
// the byte-exactness oracle of the server tests compares this directly.
std::string RenderRows(const storage::ResultTable& t);

// `http` selects the framing. Success carries the rendered rows as body;
// failures carry the token as body (HTTP) or an ERR line (line protocol).
std::string RenderResponse(bool http, const ResponseMeta& meta,
                           const std::string& body);

// Shorthand for control-plane refusals (shed, drain, bad request).
// `request_id` (when nonzero) rides along so a shed/cancelled response
// still names the request it finalizes.
std::string RenderError(bool http, int http_code, const char* status,
                        uint64_t request_id = 0);

}  // namespace qc::server

#endif  // QC_SERVER_PROTOCOL_H_
