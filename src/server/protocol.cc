#include "server/protocol.h"

#include <cstdio>
#include <cstring>

namespace qc::server {

namespace {

// Strict bounded integer parse over [p, end); returns false on any
// non-digit (no sign: the protocol has no negative parameters).
bool ParseU64(const char* p, const char* end, int64_t* out) {
  if (p == end) return false;
  int64_t v = 0;
  for (; p != end; ++p) {
    if (*p < '0' || *p > '9') return false;
    if (v > (INT64_MAX - 9) / 10) return false;
    v = v * 10 + (*p - '0');
  }
  *out = v;
  return true;
}

// Applies one key=value parameter (shared by the query string and the line
// protocol). Unknown keys are ignored — forward compatibility beats
// strictness for optional tuning parameters; the load-bearing `q` is
// validated by the caller.
void ApplyParam(ParsedRequest* r, const char* k, const char* kend,
                const char* v, const char* vend) {
  size_t klen = static_cast<size_t>(kend - k);
  auto is = [&](const char* name) {
    return klen == std::strlen(name) && std::memcmp(k, name, klen) == 0;
  };
  int64_t num = 0;
  if (is("q") || is("query")) {
    if (ParseU64(v, vend, &num) && num >= 1 && num <= 22) {
      r->query = static_cast<int>(num);
    } else {
      r->query = -1;  // named but invalid: must reject, not default
    }
  } else if (is("deadline_ms")) {
    if (ParseU64(v, vend, &num)) r->deadline_ms = num;
  } else if (is("mem_mb")) {
    if (ParseU64(v, vend, &num)) r->mem_mb = num;
  } else if (is("ms")) {
    if (ParseU64(v, vend, &num)) r->block_ms = num;
  } else if (is("level")) {
    if (ParseU64(v, vend, &num) && num >= 2 && num <= 5) {
      r->level = static_cast<int>(num);
    }
  } else if (is("engine")) {
    size_t vlen = static_cast<size_t>(vend - v);
    if (vlen == 3 && std::memcmp(v, "jit", 3) == 0) r->engine = 1;
    if (vlen == 2 && std::memcmp(v, "vm", 2) == 0) r->engine = 0;
  } else if (is("trace")) {
    if (ParseU64(v, vend, &num)) r->trace = num != 0;
  }
}

void ParseParams(ParsedRequest* r, const char* p, const char* end, char sep) {
  while (p < end) {
    const char* item_end = static_cast<const char*>(
        std::memchr(p, sep, static_cast<size_t>(end - p)));
    if (item_end == nullptr) item_end = end;
    const char* eq = static_cast<const char*>(
        std::memchr(p, '=', static_cast<size_t>(item_end - p)));
    if (eq != nullptr && eq > p) ApplyParam(r, p, eq, eq + 1, item_end);
    p = item_end < end ? item_end + 1 : end;
  }
}

ParsedRequest Bad(bool http, size_t consumed, int code, const char* token) {
  ParsedRequest r;
  r.kind = ParsedRequest::Kind::kBad;
  r.http = http;
  r.consumed = consumed;
  r.http_code = code;
  r.error = token;
  return r;
}

// Routes an HTTP path (already split from the query string) to a request
// kind; `args` is the raw query string ("" when absent).
ParsedRequest RouteHttp(const std::string& path, const char* args,
                        const char* args_end, size_t consumed) {
  ParsedRequest r;
  r.http = true;
  r.consumed = consumed;
  if (path == "/query") {
    r.kind = ParsedRequest::Kind::kQuery;
    ParseParams(&r, args, args_end, '&');
    if (r.query < 1 || r.query > 22) {
      return Bad(true, consumed, 400, "bad_request");
    }
    return r;
  }
  if (path == "/stats") {
    r.kind = ParsedRequest::Kind::kStats;
    return r;
  }
  if (path == "/metrics") {
    r.kind = ParsedRequest::Kind::kMetrics;
    return r;
  }
  if (path == "/healthz") {
    r.kind = ParsedRequest::Kind::kHealth;
    return r;
  }
  if (path.compare(0, 13, "/debug/trace/") == 0) {
    const char* id = path.c_str() + 13;
    int64_t num = 0;
    if (!ParseU64(id, id + (path.size() - 13), &num) || num <= 0) {
      return Bad(true, consumed, 404, "not_found");
    }
    r.kind = ParsedRequest::Kind::kTrace;
    r.trace_id = static_cast<uint64_t>(num);
    return r;
  }
  if (path == "/debug/block") {
    r.kind = ParsedRequest::Kind::kBlock;
    ParseParams(&r, args, args_end, '&');
    return r;
  }
  return Bad(true, consumed, 404, "not_found");
}

}  // namespace

ParsedRequest ParseRequest(const std::string& buf, size_t max_buffer) {
  size_t eol = buf.find('\n');
  if (eol == std::string::npos) {
    if (buf.size() > max_buffer) {
      return Bad(true, buf.size(), 431, "request_too_large");
    }
    return ParsedRequest();  // kNeedMore
  }
  // First line decides the framing: an HTTP method token means HTTP.
  bool is_http = buf.compare(0, 4, "GET ") == 0 ||
                 buf.compare(0, 5, "POST ") == 0 ||
                 buf.compare(0, 5, "HEAD ") == 0 ||
                 buf.compare(0, 4, "PUT ") == 0;
  if (is_http) {
    // A complete HTTP request is request-line + headers + blank line.
    size_t hdr_end = buf.find("\r\n\r\n");
    size_t consumed;
    if (hdr_end != std::string::npos) {
      consumed = hdr_end + 4;
    } else {
      size_t lf_end = buf.find("\n\n");  // tolerate bare-LF clients
      if (lf_end == std::string::npos) {
        if (buf.size() > max_buffer) {
          return Bad(true, buf.size(), 431, "request_too_large");
        }
        return ParsedRequest();
      }
      consumed = lf_end + 2;
    }
    if (buf.compare(0, 4, "GET ") != 0) {
      return Bad(true, consumed, 405, "method_not_allowed");
    }
    // Target = bytes between "GET " and the next space.
    size_t tgt_begin = 4;
    size_t tgt_end = buf.find(' ', tgt_begin);
    if (tgt_end == std::string::npos || tgt_end > eol) {
      return Bad(true, consumed, 400, "bad_request");
    }
    std::string target = buf.substr(tgt_begin, tgt_end - tgt_begin);
    size_t qmark = target.find('?');
    std::string path = target.substr(0, qmark);
    const char* args = "";
    const char* args_end = args;
    std::string argstr;
    if (qmark != std::string::npos) {
      argstr = target.substr(qmark + 1);
      args = argstr.c_str();
      args_end = args + argstr.size();
    }
    return RouteHttp(path, args, args_end, consumed);
  }

  // Line protocol: exactly one request per line.
  size_t consumed = eol + 1;
  size_t len = eol;
  while (len > 0 && (buf[len - 1] == '\r' || buf[len - 1] == ' ')) --len;
  const char* line = buf.data();
  const char* end = line + len;
  auto starts = [&](const char* word) {
    size_t n = std::strlen(word);
    return len >= n && std::memcmp(line, word, n) == 0 &&
           (len == n || line[n] == ' ');
  };
  ParsedRequest r;
  r.http = false;
  r.consumed = consumed;
  if (len == 0) {
    r.kind = ParsedRequest::Kind::kNeedMore;  // stray blank line: skip it
    return r;
  }
  if (starts("PING")) {
    r.kind = ParsedRequest::Kind::kPing;
    return r;
  }
  if (starts("STATS")) {
    r.kind = ParsedRequest::Kind::kStats;
    return r;
  }
  if (starts("METRICS")) {
    r.kind = ParsedRequest::Kind::kMetrics;
    return r;
  }
  if (starts("TRACE")) {
    const char* p = line + 5;
    while (p < end && *p == ' ') ++p;
    const char* sp = static_cast<const char*>(
        std::memchr(p, ' ', static_cast<size_t>(end - p)));
    if (sp == nullptr) sp = end;
    int64_t id = 0;
    if (!ParseU64(p, sp, &id) || id <= 0) {
      return Bad(false, consumed, 404, "not_found");
    }
    r.kind = ParsedRequest::Kind::kTrace;
    r.trace_id = static_cast<uint64_t>(id);
    return r;
  }
  if (starts("HEALTH")) {
    r.kind = ParsedRequest::Kind::kHealth;
    return r;
  }
  if (starts("BLOCK")) {
    r.kind = ParsedRequest::Kind::kBlock;
    const char* p = line + 5;
    while (p < end && *p == ' ') ++p;
    const char* sp = static_cast<const char*>(
        std::memchr(p, ' ', static_cast<size_t>(end - p)));
    if (sp == nullptr) sp = end;
    ParseU64(p, sp, &r.block_ms);
    return r;
  }
  if (starts("QUERY")) {
    r.kind = ParsedRequest::Kind::kQuery;
    const char* p = line + 5;
    while (p < end && *p == ' ') ++p;
    const char* sp = static_cast<const char*>(
        std::memchr(p, ' ', static_cast<size_t>(end - p)));
    if (sp == nullptr) sp = end;
    int64_t q = 0;
    if (ParseU64(p, sp, &q) && q >= 1 && q <= 22) {
      r.query = static_cast<int>(q);
    }
    if (sp < end) ParseParams(&r, sp + 1, end, ' ');
    if (r.query < 1 || r.query > 22) {
      return Bad(false, consumed, 400, "bad_request");
    }
    return r;
  }
  return Bad(false, consumed, 400, "bad_request");
}

ResponseMeta MapStatus(exec::QueryStatusCode code) {
  ResponseMeta m;
  m.status = exec::QueryStatusName(code);
  switch (code) {
    case exec::QueryStatusCode::kOk:
      m.http_code = 200;
      break;
    case exec::QueryStatusCode::kDeadlineExceeded:
      m.http_code = 504;
      break;
    case exec::QueryStatusCode::kMemoryBudget:
      m.http_code = 507;  // the per-query budget, not the transport
      break;
    case exec::QueryStatusCode::kResourceFailure:
      m.http_code = 503;  // transient by contract: clients may retry
      break;
    case exec::QueryStatusCode::kCancelled:
      m.http_code = 499;  // nginx's client-closed-request convention
      break;
  }
  return m;
}

std::string RenderRows(const storage::ResultTable& t) {
  std::string out;
  for (size_t i = 0; i < t.size(); ++i) {
    out += t.RowToString(i);
    out += '\n';
  }
  return out;
}

namespace {

const char* HttpReason(int code) {
  switch (code) {
    case 200: return "OK";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 431: return "Request Header Fields Too Large";
    case 499: return "Client Closed Request";
    case 503: return "Service Unavailable";
    case 504: return "Gateway Timeout";
    case 507: return "Insufficient Storage";
    default:  return "Error";
  }
}

}  // namespace

std::string RenderResponse(bool http, const ResponseMeta& meta,
                           const std::string& body) {
  char hdr[640];
  // Trace ids are opt-in, so the extra header/token appears only on traced
  // requests and existing clients see byte-identical responses.
  char trace[64];
  trace[0] = '\0';
  if (http) {
    if (meta.trace_id != 0) {
      std::snprintf(trace, sizeof(trace), "X-QC-Trace: %llu\r\n",
                    static_cast<unsigned long long>(meta.trace_id));
    }
    int n = std::snprintf(
        hdr, sizeof(hdr),
        "HTTP/1.1 %d %s\r\n"
        "Content-Type: %s\r\n"
        "Content-Length: %zu\r\n"
        "X-QC-Status: %s\r\n"
        "X-QC-Rows: %lld\r\n"
        "X-QC-Retries: %d\r\n"
        "X-QC-Downshift: %d\r\n"
        "X-QC-Engine: %s\r\n"
        "%s%s"
        "Connection: keep-alive\r\n"
        "\r\n",
        meta.http_code, HttpReason(meta.http_code), meta.content_type,
        body.size(), meta.status, static_cast<long long>(meta.rows),
        meta.retries, meta.downshift, meta.engine, trace,
        meta.http_code == 503 ? "Retry-After: 1\r\n" : "");
    return std::string(hdr, static_cast<size_t>(n)) + body;
  }
  // Line framing: "OK <rows> retries=<n> downshift=<n> engine=<e>" +
  // body + ".\n" terminator, or a single ERR line.
  std::string out;
  if (meta.http_code == 200) {
    if (meta.trace_id != 0) {
      std::snprintf(trace, sizeof(trace), " trace=%llu",
                    static_cast<unsigned long long>(meta.trace_id));
    }
    int n = std::snprintf(hdr, sizeof(hdr),
                          "OK %lld retries=%d downshift=%d engine=%s%s\n",
                          static_cast<long long>(meta.rows), meta.retries,
                          meta.downshift, meta.engine, trace);
    out.assign(hdr, static_cast<size_t>(n));
    out += body;
    out += ".\n";
  } else {
    int n = std::snprintf(hdr, sizeof(hdr), "ERR %s retries=%d\n",
                          meta.status, meta.retries);
    out.assign(hdr, static_cast<size_t>(n));
  }
  return out;
}

std::string RenderError(bool http, int http_code, const char* status) {
  ResponseMeta m;
  m.status = status;
  m.http_code = http_code;
  m.rows = 0;
  return RenderResponse(http, m, http ? std::string(status) + "\n" : "");
}

}  // namespace qc::server
