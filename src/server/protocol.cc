#include "server/protocol.h"

#include <cstdio>
#include <cstring>

namespace qc::server {

namespace {

// Strict bounded integer parse over [p, end); returns false on any
// non-digit (no sign: the protocol has no negative parameters).
bool ParseU64(const char* p, const char* end, int64_t* out) {
  if (p == end) return false;
  int64_t v = 0;
  for (; p != end; ++p) {
    if (*p < '0' || *p > '9') return false;
    if (v > (INT64_MAX - 9) / 10) return false;
    v = v * 10 + (*p - '0');
  }
  *out = v;
  return true;
}

// Client ids reach per-client metrics labels and log records, so the
// accepted alphabet is strict: [A-Za-z0-9_.-], at most 32 bytes. Anything
// else is dropped wholesale (the request proceeds anonymous) — a malformed
// id must not become a distinct tenant or a label-injection vector.
void SetClient(ParsedRequest* r, const char* v, const char* vend) {
  size_t len = static_cast<size_t>(vend - v);
  if (len == 0 || len > 32) return;
  for (const char* p = v; p != vend; ++p) {
    char c = *p;
    bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
              (c >= '0' && c <= '9') || c == '_' || c == '.' || c == '-';
    if (!ok) return;
  }
  r->client.assign(v, len);
}

// Applies one key=value parameter (shared by the query string and the line
// protocol). Unknown keys are ignored — forward compatibility beats
// strictness for optional tuning parameters; the load-bearing `q` is
// validated by the caller.
void ApplyParam(ParsedRequest* r, const char* k, const char* kend,
                const char* v, const char* vend) {
  size_t klen = static_cast<size_t>(kend - k);
  auto is = [&](const char* name) {
    return klen == std::strlen(name) && std::memcmp(k, name, klen) == 0;
  };
  int64_t num = 0;
  if (is("q") || is("query")) {
    if (ParseU64(v, vend, &num) && num >= 1 && num <= 22) {
      r->query = static_cast<int>(num);
    } else {
      r->query = -1;  // named but invalid: must reject, not default
    }
  } else if (is("deadline_ms")) {
    if (ParseU64(v, vend, &num)) r->deadline_ms = num;
  } else if (is("mem_mb")) {
    if (ParseU64(v, vend, &num)) r->mem_mb = num;
  } else if (is("ms")) {
    if (ParseU64(v, vend, &num)) r->block_ms = num;
  } else if (is("level")) {
    if (ParseU64(v, vend, &num) && num >= 2 && num <= 5) {
      r->level = static_cast<int>(num);
    }
  } else if (is("engine")) {
    size_t vlen = static_cast<size_t>(vend - v);
    if (vlen == 3 && std::memcmp(v, "jit", 3) == 0) r->engine = 1;
    if (vlen == 2 && std::memcmp(v, "vm", 2) == 0) r->engine = 0;
  } else if (is("trace")) {
    if (ParseU64(v, vend, &num)) r->trace = num != 0;
  } else if (is("client")) {
    SetClient(r, v, vend);
  } else if (is("ack")) {
    if (ParseU64(v, vend, &num)) r->ack = num != 0;
  }
}

void ParseParams(ParsedRequest* r, const char* p, const char* end, char sep) {
  while (p < end) {
    const char* item_end = static_cast<const char*>(
        std::memchr(p, sep, static_cast<size_t>(end - p)));
    if (item_end == nullptr) item_end = end;
    const char* eq = static_cast<const char*>(
        std::memchr(p, '=', static_cast<size_t>(item_end - p)));
    if (eq != nullptr && eq > p) ApplyParam(r, p, eq, eq + 1, item_end);
    p = item_end < end ? item_end + 1 : end;
  }
}

ParsedRequest Bad(bool http, size_t consumed, int code, const char* token,
                  bool must_close = false) {
  ParsedRequest r;
  r.kind = ParsedRequest::Kind::kBad;
  r.http = http;
  r.consumed = consumed;
  r.http_code = code;
  r.error = token;
  r.must_close = must_close;
  return r;
}

// Case-insensitive scan of an HTTP header block [hdrs, hdrs_end) for
// `name` (which must include the trailing ':'); returns the trimmed value
// range via out params, false when absent.
bool FindHeader(const char* hdrs, const char* hdrs_end, const char* name,
                const char** v, const char** vend) {
  size_t nlen = std::strlen(name);
  const char* p = hdrs;
  while (p < hdrs_end) {
    const char* eol = static_cast<const char*>(
        std::memchr(p, '\n', static_cast<size_t>(hdrs_end - p)));
    if (eol == nullptr) eol = hdrs_end;
    if (static_cast<size_t>(eol - p) >= nlen) {
      bool match = true;
      for (size_t i = 0; i < nlen; ++i) {
        char a = p[i];
        char b = name[i];
        if (a >= 'A' && a <= 'Z') a = static_cast<char>(a - 'A' + 'a');
        if (b >= 'A' && b <= 'Z') b = static_cast<char>(b - 'A' + 'a');
        if (a != b) {
          match = false;
          break;
        }
      }
      if (match) {
        const char* val = p + nlen;
        const char* val_end = eol;
        while (val < val_end && (*val == ' ' || *val == '\t')) ++val;
        while (val_end > val &&
               (val_end[-1] == '\r' || val_end[-1] == ' ' ||
                val_end[-1] == '\t')) {
          --val_end;
        }
        *v = val;
        *vend = val_end;
        return true;
      }
    }
    p = eol + 1;
  }
  return false;
}

// Routes an HTTP path (already split from the query string) to a request
// kind; `args` is the raw query string ("" when absent).
ParsedRequest RouteHttp(const std::string& path, const char* args,
                        const char* args_end, size_t consumed) {
  ParsedRequest r;
  r.http = true;
  r.consumed = consumed;
  if (path == "/query") {
    r.kind = ParsedRequest::Kind::kQuery;
    ParseParams(&r, args, args_end, '&');
    if (r.query < 1 || r.query > 22) {
      return Bad(true, consumed, 400, "bad_request");
    }
    return r;
  }
  if (path == "/stats") {
    r.kind = ParsedRequest::Kind::kStats;
    return r;
  }
  if (path == "/metrics") {
    r.kind = ParsedRequest::Kind::kMetrics;
    return r;
  }
  if (path == "/healthz") {
    r.kind = ParsedRequest::Kind::kHealth;
    return r;
  }
  if (path.compare(0, 13, "/debug/trace/") == 0) {
    const char* id = path.c_str() + 13;
    int64_t num = 0;
    if (!ParseU64(id, id + (path.size() - 13), &num) || num <= 0) {
      return Bad(true, consumed, 404, "not_found");
    }
    r.kind = ParsedRequest::Kind::kTrace;
    r.trace_id = static_cast<uint64_t>(num);
    return r;
  }
  if (path == "/debug/block") {
    r.kind = ParsedRequest::Kind::kBlock;
    ParseParams(&r, args, args_end, '&');
    return r;
  }
  if (path.compare(0, 8, "/cancel/") == 0) {
    // Cancel is state-changing, so it is POST-only; the GET router
    // answering 405 here tells a confused client which verb to use.
    return Bad(true, consumed, 405, "method_not_allowed");
  }
  return Bad(true, consumed, 404, "not_found");
}

ParsedRequest ParseHttp(const std::string& buf, const ProtoLimits& limits,
                        size_t eol) {
  // Request line bound (414): the first line must fit max_line whether or
  // not the rest of the headers have arrived.
  if (eol > limits.max_line) {
    return Bad(true, buf.size(), 414, "uri_too_long", /*must_close=*/true);
  }
  // A complete HTTP request is request-line + headers + blank line.
  size_t hdr_end = buf.find("\r\n\r\n");
  size_t body_at;
  if (hdr_end != std::string::npos) {
    body_at = hdr_end + 4;
  } else {
    size_t lf_end = buf.find("\n\n");  // tolerate bare-LF clients
    if (lf_end == std::string::npos) {
      if (buf.size() > limits.max_headers) {
        return Bad(true, buf.size(), 431, "headers_too_large",
                   /*must_close=*/true);
      }
      return ParsedRequest();
    }
    hdr_end = lf_end;
    body_at = lf_end + 2;
  }
  if (body_at > limits.max_headers) {
    return Bad(true, body_at, 431, "headers_too_large", /*must_close=*/true);
  }
  const bool is_post = buf.compare(0, 5, "POST ") == 0;
  if (!is_post && buf.compare(0, 4, "GET ") != 0) {
    return Bad(true, body_at, 405, "method_not_allowed");
  }
  // Target = bytes between the method token and the next space.
  size_t tgt_begin = is_post ? 5 : 4;
  size_t tgt_end = buf.find(' ', tgt_begin);
  if (tgt_end == std::string::npos || tgt_end > eol) {
    return Bad(true, body_at, 400, "bad_request");
  }
  std::string target = buf.substr(tgt_begin, tgt_end - tgt_begin);
  size_t qmark = target.find('?');
  std::string path = target.substr(0, qmark);
  const char* hdrs = buf.data() + eol + 1;
  const char* hdrs_end = buf.data() + hdr_end;
  if (hdrs > hdrs_end) hdrs = hdrs_end;

  if (is_post) {
    // POST is the cancel control plane and nothing else. The body (if any)
    // is read fully — bounded by max_body — and discarded, so keep-alive
    // framing stays intact.
    int64_t content_len = 0;
    const char* v;
    const char* vend;
    if (FindHeader(hdrs, hdrs_end, "content-length:", &v, &vend)) {
      if (!ParseU64(v, vend, &content_len) || content_len < 0) {
        return Bad(true, body_at, 400, "bad_request", /*must_close=*/true);
      }
    }
    if (static_cast<size_t>(content_len) > limits.max_body) {
      return Bad(true, buf.size(), 413, "body_too_large",
                 /*must_close=*/true);
    }
    size_t consumed = body_at + static_cast<size_t>(content_len);
    if (buf.size() < consumed) return ParsedRequest();  // body in flight
    if (path.compare(0, 8, "/cancel/") == 0) {
      int64_t id = 0;
      const char* idp = path.c_str() + 8;
      if (!ParseU64(idp, idp + (path.size() - 8), &id) || id <= 0) {
        return Bad(true, consumed, 404, "not_found");
      }
      ParsedRequest r;
      r.http = true;
      r.consumed = consumed;
      r.kind = ParsedRequest::Kind::kCancel;
      r.cancel_id = static_cast<uint64_t>(id);
      return r;
    }
    return Bad(true, consumed, path == "/cancel" ? 404 : 405,
               path == "/cancel" ? "not_found" : "method_not_allowed");
  }

  const char* args = "";
  const char* args_end = args;
  std::string argstr;
  if (qmark != std::string::npos) {
    argstr = target.substr(qmark + 1);
    args = argstr.c_str();
    args_end = args + argstr.size();
  }
  ParsedRequest r = RouteHttp(path, args, args_end, body_at);
  // The identity header outranks the query parameter: a fronting proxy
  // that stamps X-QC-Client must not be overridden by request smuggling
  // through the URL.
  const char* v;
  const char* vend;
  if (FindHeader(hdrs, hdrs_end, "x-qc-client:", &v, &vend)) {
    SetClient(&r, v, vend);
  }
  return r;
}

}  // namespace

ParsedRequest ParseRequest(const std::string& buf,
                           const ProtoLimits& limits) {
  size_t eol = buf.find('\n');
  // First line decides the framing: an HTTP method token means HTTP.
  bool is_http = buf.compare(0, 4, "GET ") == 0 ||
                 buf.compare(0, 5, "POST ") == 0 ||
                 buf.compare(0, 5, "HEAD ") == 0 ||
                 buf.compare(0, 4, "PUT ") == 0;
  if (eol == std::string::npos) {
    // No complete line yet: the only thing to enforce is that the line
    // under construction stays bounded.
    if (buf.size() > limits.max_line) {
      if (is_http) {
        return Bad(true, buf.size(), 414, "uri_too_long",
                   /*must_close=*/true);
      }
      return Bad(false, buf.size(), 431, "request_too_large",
                 /*must_close=*/true);
    }
    if (buf.size() > limits.max_buffer) {
      return Bad(true, buf.size(), 431, "request_too_large",
                 /*must_close=*/true);
    }
    return ParsedRequest();  // kNeedMore
  }
  if (is_http) return ParseHttp(buf, limits, eol);

  // Line protocol: exactly one request per line.
  size_t consumed = eol + 1;
  if (eol > limits.max_line) {
    return Bad(false, consumed, 431, "request_too_large",
               /*must_close=*/true);
  }
  size_t len = eol;
  while (len > 0 && (buf[len - 1] == '\r' || buf[len - 1] == ' ')) --len;
  const char* line = buf.data();
  const char* end = line + len;
  auto starts = [&](const char* word) {
    size_t n = std::strlen(word);
    return len >= n && std::memcmp(line, word, n) == 0 &&
           (len == n || line[n] == ' ');
  };
  ParsedRequest r;
  r.http = false;
  r.consumed = consumed;
  if (len == 0) {
    r.kind = ParsedRequest::Kind::kNeedMore;  // stray blank line: skip it
    return r;
  }
  if (starts("PING")) {
    r.kind = ParsedRequest::Kind::kPing;
    return r;
  }
  if (starts("STATS")) {
    r.kind = ParsedRequest::Kind::kStats;
    return r;
  }
  if (starts("METRICS")) {
    r.kind = ParsedRequest::Kind::kMetrics;
    return r;
  }
  if (starts("TRACE")) {
    const char* p = line + 5;
    while (p < end && *p == ' ') ++p;
    const char* sp = static_cast<const char*>(
        std::memchr(p, ' ', static_cast<size_t>(end - p)));
    if (sp == nullptr) sp = end;
    int64_t id = 0;
    if (!ParseU64(p, sp, &id) || id <= 0) {
      return Bad(false, consumed, 404, "not_found");
    }
    r.kind = ParsedRequest::Kind::kTrace;
    r.trace_id = static_cast<uint64_t>(id);
    return r;
  }
  if (starts("CANCEL")) {
    const char* p = line + 6;
    while (p < end && *p == ' ') ++p;
    const char* sp = static_cast<const char*>(
        std::memchr(p, ' ', static_cast<size_t>(end - p)));
    if (sp == nullptr) sp = end;
    int64_t id = 0;
    if (!ParseU64(p, sp, &id) || id <= 0) {
      return Bad(false, consumed, 404, "not_found");
    }
    r.kind = ParsedRequest::Kind::kCancel;
    r.cancel_id = static_cast<uint64_t>(id);
    return r;
  }
  if (starts("HEALTH")) {
    r.kind = ParsedRequest::Kind::kHealth;
    return r;
  }
  if (starts("BLOCK")) {
    r.kind = ParsedRequest::Kind::kBlock;
    const char* p = line + 5;
    while (p < end && *p == ' ') ++p;
    const char* sp = static_cast<const char*>(
        std::memchr(p, ' ', static_cast<size_t>(end - p)));
    if (sp == nullptr) sp = end;
    ParseU64(p, sp, &r.block_ms);
    if (sp < end) ParseParams(&r, sp + 1, end, ' ');
    return r;
  }
  if (starts("QUERY")) {
    r.kind = ParsedRequest::Kind::kQuery;
    const char* p = line + 5;
    while (p < end && *p == ' ') ++p;
    const char* sp = static_cast<const char*>(
        std::memchr(p, ' ', static_cast<size_t>(end - p)));
    if (sp == nullptr) sp = end;
    int64_t q = 0;
    if (ParseU64(p, sp, &q) && q >= 1 && q <= 22) {
      r.query = static_cast<int>(q);
    }
    if (sp < end) ParseParams(&r, sp + 1, end, ' ');
    if (r.query < 1 || r.query > 22) {
      return Bad(false, consumed, 400, "bad_request");
    }
    return r;
  }
  return Bad(false, consumed, 400, "bad_request");
}

ResponseMeta MapStatus(exec::QueryStatusCode code) {
  ResponseMeta m;
  m.status = exec::QueryStatusName(code);
  switch (code) {
    case exec::QueryStatusCode::kOk:
      m.http_code = 200;
      break;
    case exec::QueryStatusCode::kDeadlineExceeded:
      m.http_code = 504;
      break;
    case exec::QueryStatusCode::kMemoryBudget:
      m.http_code = 507;  // the per-query budget, not the transport
      break;
    case exec::QueryStatusCode::kResourceFailure:
      m.http_code = 503;  // transient by contract: clients may retry
      break;
    case exec::QueryStatusCode::kCancelled:
      m.http_code = 499;  // nginx's client-closed-request convention
      break;
  }
  return m;
}

std::string RenderRows(const storage::ResultTable& t) {
  std::string out;
  for (size_t i = 0; i < t.size(); ++i) {
    out += t.RowToString(i);
    out += '\n';
  }
  return out;
}

namespace {

const char* HttpReason(int code) {
  switch (code) {
    case 200: return "OK";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 408: return "Request Timeout";
    case 413: return "Content Too Large";
    case 414: return "URI Too Long";
    case 429: return "Too Many Requests";
    case 431: return "Request Header Fields Too Large";
    case 499: return "Client Closed Request";
    case 503: return "Service Unavailable";
    case 504: return "Gateway Timeout";
    case 507: return "Insufficient Storage";
    default:  return "Error";
  }
}

}  // namespace

std::string RenderResponse(bool http, const ResponseMeta& meta,
                           const std::string& body) {
  char hdr[704];
  // Trace and request ids are opt-in, so the extra header/token appears
  // only where the server stamps them and existing clients see
  // byte-identical responses.
  char trace[64];
  trace[0] = '\0';
  char reqid[64];
  reqid[0] = '\0';
  if (http) {
    if (meta.trace_id != 0) {
      std::snprintf(trace, sizeof(trace), "X-QC-Trace: %llu\r\n",
                    static_cast<unsigned long long>(meta.trace_id));
    }
    if (meta.request_id != 0) {
      std::snprintf(reqid, sizeof(reqid), "X-QC-Request-Id: %llu\r\n",
                    static_cast<unsigned long long>(meta.request_id));
    }
    int n = std::snprintf(
        hdr, sizeof(hdr),
        "HTTP/1.1 %d %s\r\n"
        "Content-Type: %s\r\n"
        "Content-Length: %zu\r\n"
        "X-QC-Status: %s\r\n"
        "X-QC-Rows: %lld\r\n"
        "X-QC-Retries: %d\r\n"
        "X-QC-Downshift: %d\r\n"
        "X-QC-Engine: %s\r\n"
        "%s%s%s"
        "Connection: keep-alive\r\n"
        "\r\n",
        meta.http_code, HttpReason(meta.http_code), meta.content_type,
        body.size(), meta.status, static_cast<long long>(meta.rows),
        meta.retries, meta.downshift, meta.engine, reqid, trace,
        meta.http_code == 503 ? "Retry-After: 1\r\n" : "");
    return std::string(hdr, static_cast<size_t>(n)) + body;
  }
  // Line framing: "OK <rows> retries=<n> downshift=<n> engine=<e>[ id=<n>]
  // [ trace=<t>]" + body + ".\n" terminator, or a single ERR line. The
  // trace token stays last: clients parse it as "rest of line after
  // ' trace='".
  std::string out;
  if (meta.request_id != 0) {
    std::snprintf(reqid, sizeof(reqid), " id=%llu",
                  static_cast<unsigned long long>(meta.request_id));
  }
  if (meta.http_code == 200) {
    if (meta.trace_id != 0) {
      std::snprintf(trace, sizeof(trace), " trace=%llu",
                    static_cast<unsigned long long>(meta.trace_id));
    }
    int n = std::snprintf(hdr, sizeof(hdr),
                          "OK %lld retries=%d downshift=%d engine=%s%s%s\n",
                          static_cast<long long>(meta.rows), meta.retries,
                          meta.downshift, meta.engine, reqid, trace);
    out.assign(hdr, static_cast<size_t>(n));
    out += body;
    out += ".\n";
  } else {
    int n = std::snprintf(hdr, sizeof(hdr), "ERR %s retries=%d%s\n",
                          meta.status, meta.retries, reqid);
    out.assign(hdr, static_cast<size_t>(n));
  }
  return out;
}

std::string RenderError(bool http, int http_code, const char* status,
                        uint64_t request_id) {
  ResponseMeta m;
  m.status = status;
  m.http_code = http_code;
  m.rows = 0;
  m.request_id = request_id;
  return RenderResponse(http, m, http ? std::string(status) + "\n" : "");
}

}  // namespace qc::server
