#include "server/server.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <utility>

#include "common/env.h"
#include "common/fault.h"
#include "server/protocol.h"
#include "server/retry.h"
#include "telemetry/log.h"
#include "telemetry/trace.h"

namespace qc::server {

namespace {

// Hard per-connection inbound bound: while a request is in flight the
// parser is not consulted, so this is what stops a client from streaming
// unbounded bytes into the buffer (the parser's own ProtoLimits bounds,
// all smaller, govern the parse path).
constexpr size_t kMaxRequestBytes = 64 * 1024;
constexpr int kPollMs = 100;
constexpr ProtoLimits kProtoLimits{};

void SleepMs(int64_t ms) {
  std::this_thread::sleep_for(std::chrono::milliseconds(ms));
}

}  // namespace

ServerOptions ServerOptions::FromEnv() {
  ServerOptions o;
  o.port = static_cast<int>(EnvIntClamped("QC_SERVE_PORT", 7117, 0, 65535));
  o.workers = static_cast<int>(EnvIntClamped("QC_SERVE_WORKERS", 2, 1, 256));
  o.query_threads =
      static_cast<int>(EnvIntClamped("QC_SERVE_THREADS", 1, 1, 256));
  o.queue_capacity =
      static_cast<int>(EnvIntClamped("QC_SERVE_QUEUE_CAP", 64, 1, 1 << 20));
  o.max_deadline_ms =
      EnvIntClamped("QC_SERVE_MAX_DEADLINE_MS", 10000, 1, 86400000);
  o.queue_deadline_ms =
      EnvIntClamped("QC_SERVE_QUEUE_MS", 1000, 1, 86400000);
  o.max_mem_mb = EnvIntClamped("QC_SERVE_MAX_MEM_MB", 256, 1, 1 << 20);
  o.max_retries =
      static_cast<int>(EnvIntClamped("QC_SERVE_MAX_RETRIES", 2, 0, 100));
  o.retry_base_ms = EnvIntClamped("QC_SERVE_RETRY_BASE_MS", 1, 1, 60000);
  o.retry_max_ms = EnvIntClamped("QC_SERVE_RETRY_MAX_MS", 100, 1, 600000);
  o.drain_deadline_ms = EnvIntClamped("QC_SERVE_DRAIN_MS", 2000, 1, 600000);
  o.recover_ok =
      static_cast<int>(EnvIntClamped("QC_SERVE_RECOVER_OK", 32, 1, 1 << 20));
  o.level = static_cast<int>(EnvIntClamped("QC_SERVE_LEVEL", 5, 2, 5));
  o.default_jit = !EnvFlagSet("QC_SERVE_NO_JIT");
  o.debug_endpoints = EnvFlagSet("QC_SERVE_DEBUG");
  o.seed = static_cast<uint64_t>(EnvIntClamped("QC_SERVE_SEED", 42, 0,
                                               INT64_MAX));
  o.client_qps = static_cast<double>(
      EnvIntClamped("QC_SERVE_CLIENT_QPS", 0, 0, 1000000));
  o.client_inflight = static_cast<int>(
      EnvIntClamped("QC_SERVE_CLIENT_INFLIGHT", 0, 0, 1 << 20));
  o.client_queue = static_cast<int>(
      EnvIntClamped("QC_SERVE_CLIENT_QUEUE", 0, 0, 1 << 20));
  o.idle_ms = EnvIntClamped("QC_SERVE_IDLE_MS", 60000, 0, 86400000);
  o.io_idle_ms = EnvIntClamped("QC_SERVE_IO_MS", 10000, 0, 86400000);
  o.pipeline_cap =
      static_cast<int>(EnvIntClamped("QC_SERVE_PIPELINE", 16, 1, 1 << 20));
  o.max_conns =
      static_cast<int>(EnvIntClamped("QC_SERVE_MAX_CONNS", 1024, 1, 1 << 20));
  return o;
}

// Registration order IS the legacy /stats key order: both exports render
// from one registration-ordered snapshot, so the JSON stays byte-compatible
// with the hand-rendered version it replaces.
ServerStats::ServerStats()
    : connections(*registry.AddCounter(
          "qc_server_connections_total", "Accepted client connections.",
          "connections")),
      requests(*registry.AddCounter(
          "qc_server_requests_total", "Admission attempts (query + block).",
          "requests")),
      ok(*registry.AddCounter("qc_server_ok_total",
                              "Requests that finished with status ok.",
                              "ok")),
      bad_requests(*registry.AddCounter(
          "qc_server_bad_requests_total",
          "Malformed, unroutable, or uncompilable requests.", "bad_requests")),
      shed_queue_full(*registry.AddCounter(
          "qc_server_shed_queue_full_total",
          "Requests shed because the admission queue was full.",
          "shed_queue_full")),
      shed_queue_deadline(*registry.AddCounter(
          "qc_server_shed_queue_deadline_total",
          "Requests shed after waiting out their queue deadline.",
          "shed_queue_deadline")),
      shed_draining(*registry.AddCounter(
          "qc_server_shed_draining_total",
          "Requests refused because the server was draining.",
          "shed_draining")),
      failed_deadline(*registry.AddCounter(
          "qc_server_failed_deadline_total",
          "Runs tripped by their execution deadline.", "failed_deadline")),
      failed_cancelled(*registry.AddCounter(
          "qc_server_failed_cancelled_total",
          "Runs cancelled (disconnect, drain kill).", "failed_cancelled")),
      failed_memory(*registry.AddCounter(
          "qc_server_failed_memory_total",
          "Runs tripped by their memory budget.", "failed_memory")),
      failed_resource(*registry.AddCounter(
          "qc_server_failed_resource_total",
          "Runs that exhausted retries on resource failures.",
          "failed_resource")),
      retries(*registry.AddCounter("qc_server_retries_total",
                                   "Resource-failure retry attempts.",
                                   "retries")),
      downshifts(*registry.AddCounter(
          "qc_server_downshifts_total",
          "Degradation-ladder step-ups (jit->vm->single-thread).",
          "downshifts")),
      downshift_level(*registry.AddGauge(
          "qc_server_downshift_level",
          "Current degradation level (0 full service .. 2 single-thread VM).",
          "downshift_level")),
      disconnect_cancels(*registry.AddCounter(
          "qc_server_disconnect_cancels_total",
          "In-flight queries killed by client disconnect.",
          "disconnect_cancels")),
      drain_kills(*registry.AddCounter(
          "qc_server_drain_kills_total",
          "Stragglers cancelled at the drain deadline.", "drain_kills")),
      jit_fallbacks(*registry.AddCounter(
          "qc_server_jit_fallbacks_total",
          "Requests whose JIT degraded to the VM mid-serve.",
          "jit_fallbacks")),
      net_faults(*registry.AddCounter("qc_server_net_faults_total",
                                      "Injected srv_* fault firings.",
                                      "net_faults")),
      request_ms(*registry.AddHistogram(
          "qc_server_request_ms",
          "End-to-end worker latency per executed request (milliseconds).",
          {0.25, 0.5, 1, 2.5, 5, 10, 25, 50, 100, 250, 500, 1000, 2500,
           5000, 10000})),
      shed_quota(*registry.AddCounter(
          "qc_server_shed_quota_total",
          "Requests shed by a per-client token-bucket quota.", "shed_quota")),
      shed_client_queue(*registry.AddCounter(
          "qc_server_shed_client_queue_total",
          "Requests shed by a per-client queue bound.", "shed_client_queue")),
      cancels_by_id(*registry.AddCounter(
          "qc_server_cancels_by_id_total",
          "Accepted cancel-by-id requests (POST /cancel, CANCEL).",
          "cancels_by_id")),
      evicted_idle(*registry.AddCounter(
          "qc_server_evicted_idle_total",
          "Idle keep-alive connections evicted by the timeout sweep.",
          "evicted_idle")),
      evicted_stalled(*registry.AddCounter(
          "qc_server_evicted_stalled_total",
          "Connections evicted for a stalled read (slow loris) or write.",
          "evicted_stalled")),
      pipeline_limited(*registry.AddCounter(
          "qc_server_pipeline_limited_total",
          "Connections closed for exceeding the pipelining cap.",
          "pipeline_limited")),
      conn_evicted(*registry.AddCounter(
          "qc_server_conn_evicted_total",
          "Idle connections LIFO-evicted at the connection ceiling.",
          "conn_evicted")),
      conn_refused(*registry.AddCounter(
          "qc_server_conn_refused_total",
          "Connections refused at the ceiling with no evictable socket.",
          "conn_refused")) {}

std::string ServerStats::ToJson() const { return Snapshot().ToJson(); }

std::string ServerStats::ToPrometheus() const {
  // One page serves the server families and the process-global engine
  // families (JIT, governor, plan cache) — one scrape sees everything.
  return Snapshot().ToPrometheus() +
         telemetry::MetricsRegistry::Global().Snapshot().ToPrometheus();
}

namespace {

FairAdmissionQueue::Limits QueueLimits(const ServerOptions& o) {
  FairAdmissionQueue::Limits l;
  l.capacity = static_cast<size_t>(o.queue_capacity < 1 ? 1
                                                        : o.queue_capacity);
  l.client_queue =
      o.client_queue > 0 ? static_cast<size_t>(o.client_queue) : 0;
  l.client_qps = o.client_qps > 0 ? o.client_qps : 0;
  l.client_inflight = o.client_inflight > 0 ? o.client_inflight : 0;
  return l;
}

}  // namespace

Server::Server(storage::Database* db, ServerOptions opts)
    : db_(db),
      opts_(std::move(opts)),
      plans_(db),
      queue_(QueueLimits(opts_)) {}

Server::~Server() { Stop(); }

bool Server::Start() {
  if (started_) return true;
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC,
                        0);
  if (listen_fd_ < 0) {
    std::perror("qc_serve: socket");
    return false;
  }
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(opts_.port));
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
          0 ||
      ::listen(listen_fd_, 128) < 0) {
    std::perror("qc_serve: bind/listen");
    ::close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }
  socklen_t alen = sizeof(addr);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &alen);
  port_ = ntohs(addr.sin_port);

  int pipefd[2];
  if (::pipe2(pipefd, O_NONBLOCK | O_CLOEXEC) < 0) {
    std::perror("qc_serve: pipe2");
    ::close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }
  wake_rd_ = pipefd[0];
  wake_wr_ = pipefd[1];

  for (int i = 0; i < opts_.workers; ++i) {
    workers_.push_back(std::make_unique<Worker>());
    Worker* w = workers_.back().get();
    w->thread = std::thread([this, w] { WorkerMain(w); });
  }
  loop_ = std::thread([this] { EventLoop(); });
  started_ = true;
  return true;
}

void Server::Wake() {
  if (wake_wr_ >= 0) {
    char b = 'w';
    // Best-effort: a full pipe already guarantees a pending wake.
    ssize_t ignored = ::write(wake_wr_, &b, 1);
    (void)ignored;
  }
}

void Server::BeginDrain() {
  if (!draining_.exchange(true, std::memory_order_relaxed)) Wake();
}

bool Server::Drain() {
  BeginDrain();
  const int64_t deadline =
      exec::GovNowNs() + opts_.drain_deadline_ms * 1000000;
  auto idle = [&] {
    return active_.load(std::memory_order_relaxed) == 0 && queue_.size() == 0;
  };
  while (exec::GovNowNs() < deadline) {
    if (idle()) return true;
    SleepMs(1);
  }
  // Drain deadline passed: cancel every outstanding request through its
  // control (executing queries unwind within one safepoint interval;
  // queued ones are popped, observed aborted, and answered "cancelled").
  bool clean = idle();
  if (!clean) {
    std::vector<RequestPtr> out;
    {
      std::lock_guard<std::mutex> lock(reg_mu_);
      for (auto& kv : outstanding_) out.push_back(kv.second);
    }
    stats_.drain_kills.Add(out.size());
    telemetry::Log(telemetry::LogLevel::kWarn, "drain_kill",
                   {{"stragglers", static_cast<unsigned long long>(
                                       out.size())}});
    for (auto& r : out) r->Kill();
    // The unwind itself is bounded by the safepoint contract, but give it a
    // generous hard stop so Drain() can never hang the caller.
    const int64_t hard = exec::GovNowNs() + 10ll * 1000 * 1000 * 1000;
    while (!idle() && exec::GovNowNs() < hard) SleepMs(1);
  }
  return clean;
}

void Server::Stop() {
  if (!started_ || stopped_) return;
  stopped_ = true;
  Drain();
  queue_.Close();
  for (auto& w : workers_) {
    if (w->thread.joinable()) w->thread.join();
  }
  stop_.store(true, std::memory_order_relaxed);
  Wake();
  if (loop_.joinable()) loop_.join();
  // The loop has exited: session/listen/wake fds are now exclusively ours.
  for (auto& kv : sessions_) {
    if (kv.second->fd >= 0) ::close(kv.second->fd);
  }
  sessions_.clear();
  if (listen_fd_ >= 0) ::close(listen_fd_);
  listen_fd_ = -1;
  if (wake_rd_ >= 0) ::close(wake_rd_);
  if (wake_wr_ >= 0) ::close(wake_wr_);
  wake_rd_ = wake_wr_ = -1;
}

// ---------------------------------------------------------------------------
// Event loop (single thread).
// ---------------------------------------------------------------------------

void Server::EventLoop() {
  std::vector<pollfd> fds;
  std::vector<SessionPtr> polled;
  while (!stop_.load(std::memory_order_relaxed)) {
    if (draining_.load(std::memory_order_relaxed) && listen_fd_ >= 0) {
      ::close(listen_fd_);  // stop accepting the moment drain begins
      listen_fd_ = -1;
    }
    fds.clear();
    polled.clear();
    fds.push_back({wake_rd_, POLLIN, 0});
    if (listen_fd_ >= 0) fds.push_back({listen_fd_, POLLIN, 0});
    for (auto& kv : sessions_) {
      short events = POLLIN;
      {
        std::lock_guard<std::mutex> lock(kv.second->mu);
        if (!kv.second->out.empty()) events |= POLLOUT;
      }
      fds.push_back({kv.first, events, 0});
      polled.push_back(kv.second);
    }
    int rc = ::poll(fds.data(), fds.size(), kPollMs);
    if (rc < 0 && errno != EINTR) SleepMs(1);

    size_t idx = 0;
    if (fds[idx].revents & POLLIN) {
      char buf[256];
      while (::read(wake_rd_, buf, sizeof(buf)) > 0) {
      }
    }
    ++idx;
    if (listen_fd_ >= 0) {
      if (fds[idx].revents & (POLLIN | POLLERR)) AcceptNew();
      ++idx;
    }
    for (size_t i = 0; i < polled.size(); ++i, ++idx) {
      const SessionPtr& s = polled[i];
      if (s->fd < 0) continue;  // closed earlier this iteration
      short re = fds[idx].revents;
      if (re & (POLLERR | POLLNVAL)) {
        CloseSession(s, /*cancel_inflight=*/true);
        continue;
      }
      if (re & POLLIN) HandleReadable(s);
      // POLLHUP with readable data still pending is handled by the read
      // path (recv returns 0 at EOF); a bare HUP closes here.
      if (s->fd >= 0 && (re & POLLHUP) && !(re & POLLIN)) {
        CloseSession(s, /*cancel_inflight=*/true);
        continue;
      }
      if (s->fd >= 0 && (re & POLLOUT)) FlushWrites(s);
    }
    // Worker completions appended response bytes and cleared inflight
    // slots: flush pending writes and resume parsing pipelined requests.
    polled.clear();
    for (auto& kv : sessions_) polled.push_back(kv.second);
    for (const SessionPtr& s : polled) {
      if (s->fd < 0) continue;
      FlushWrites(s);
      if (s->fd >= 0) ParseBuffered(s);
    }
    SweepTimeouts();
  }
}

void Server::SweepTimeouts() {
  if (sessions_.empty()) return;
  if (FaultPoint("srv_timeout")) {
    // Injected timeout: the sweep evicts one live connection as if it had
    // stalled — clients must treat it like any mid-flight disconnect.
    stats_.net_faults.Inc();
    stats_.evicted_stalled.Inc();
    CloseSession(sessions_.begin()->second, /*cancel_inflight=*/true);
    if (sessions_.empty()) return;
  }
  const int64_t now = exec::GovNowNs();
  const int64_t io_ns = opts_.io_idle_ms * 1000000;
  const int64_t idle_ns = opts_.idle_ms * 1000000;
  std::vector<SessionPtr> all;
  all.reserve(sessions_.size());
  for (auto& kv : sessions_) all.push_back(kv.second);
  for (const SessionPtr& s : all) {
    if (s->fd < 0) continue;
    bool has_out;
    bool has_inflight;
    {
      std::lock_guard<std::mutex> lock(s->mu);
      has_out = !s->out.empty();
      has_inflight = s->inflight != nullptr;
    }
    if (opts_.io_idle_ms > 0 && has_out && s->last_out_ns > 0 &&
        now - s->last_out_ns > io_ns) {
      // Rendered bytes the client will not read: a stalled writer holds
      // buffer memory for as long as we let it.
      stats_.evicted_stalled.Inc();
      CloseSession(s, /*cancel_inflight=*/true);
      continue;
    }
    if (opts_.io_idle_ms > 0 && !has_inflight && s->in_start_ns > 0 &&
        now - s->in_start_ns > io_ns) {
      // Slow loris: the *oldest unparsed byte* has aged out. A client
      // dribbling one byte per interval keeps last_in_ns fresh forever but
      // can never move in_start_ns without completing a request.
      stats_.evicted_stalled.Inc();
      CloseSession(s, /*cancel_inflight=*/true);
      continue;
    }
    if (opts_.idle_ms > 0 && !has_inflight && !has_out &&
        s->in_start_ns == 0) {
      int64_t last = s->accepted_ns;
      if (s->last_in_ns > last) last = s->last_in_ns;
      if (s->last_out_ns > last) last = s->last_out_ns;
      if (last > 0 && now - last > idle_ns) {
        stats_.evicted_idle.Inc();
        CloseSession(s, /*cancel_inflight=*/false);
      }
    }
  }
}

bool Server::MakeRoomForConnection() {
  if (sessions_.size() < static_cast<size_t>(opts_.max_conns)) return true;
  // At the ceiling: evict an idle keep-alive socket, LIFO by accept time —
  // the newest idle connection goes first, so long-established clients
  // keep their sockets while churny reconnectors recycle their own slots.
  SessionPtr victim;
  for (auto& kv : sessions_) {
    const SessionPtr& s = kv.second;
    bool busy;
    {
      std::lock_guard<std::mutex> lock(s->mu);
      busy = s->inflight != nullptr || !s->out.empty();
    }
    if (busy || !s->in.empty()) continue;
    if (victim == nullptr || s->accepted_ns > victim->accepted_ns) {
      victim = s;
    }
  }
  if (victim == nullptr) return false;
  stats_.conn_evicted.Inc();
  CloseSession(victim, /*cancel_inflight=*/false);
  return true;
}

void Server::AcceptNew() {
  for (;;) {
    int fd = ::accept4(listen_fd_, nullptr, nullptr,
                       SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // EAGAIN or a transient accept failure: back to poll
    }
    if (FaultPoint("srv_accept")) {
      // Injected accept-path failure: the connection is dropped cleanly,
      // the listener survives.
      stats_.net_faults.Inc();
      ::close(fd);
      continue;
    }
    if (!MakeRoomForConnection()) {
      // Ceiling reached and every socket is mid-request: refusing the new
      // connection sheds load at the cheapest possible point.
      stats_.conn_refused.Inc();
      ::close(fd);
      continue;
    }
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    auto s = std::make_shared<Session>();
    s->fd = fd;
    s->accepted_ns = exec::GovNowNs();
    // Arm the stalled-writer clock from accept: a client whose very first
    // response write makes zero progress still ages out.
    s->last_out_ns = s->accepted_ns;
    sessions_[fd] = std::move(s);
    stats_.connections.Inc();
  }
}

void Server::HandleReadable(const SessionPtr& s) {
  if (FaultPoint("srv_read")) {
    // Injected socket-read failure == the peer vanished: tear the session
    // down, which cancels any in-flight query (kill-on-disconnect).
    stats_.net_faults.Inc();
    CloseSession(s, /*cancel_inflight=*/true);
    return;
  }
  char buf[16384];
  for (;;) {
    ssize_t n = ::recv(s->fd, buf, sizeof(buf), 0);
    if (n > 0) {
      int64_t now = exec::GovNowNs();
      if (s->in.empty()) s->in_start_ns = now;
      s->last_in_ns = now;
      s->in.append(buf, static_cast<size_t>(n));
      // Hard inbound bound: past this point nothing in the buffer can be a
      // single legitimate request (every parser bound is smaller), so stop
      // reading — the flood check below closes the connection instead of
      // letting the buffer chase the sender.
      if (s->in.size() > kMaxRequestBytes) break;
      if (static_cast<size_t>(n) < sizeof(buf)) break;
      continue;
    }
    if (n == 0) {  // EOF: client went away
      CloseSession(s, /*cancel_inflight=*/true);
      return;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    if (errno == EINTR) continue;
    CloseSession(s, /*cancel_inflight=*/true);
    return;
  }
  if (s->in.size() > kMaxRequestBytes) {
    stats_.bad_requests.Inc();
    RespondInline(s, RenderError(s->was_http, 431, "request_too_large"));
    CloseSession(s, /*cancel_inflight=*/true);
    return;
  }
  ParseBuffered(s);
}

void Server::ParseBuffered(const SessionPtr& s) {
  for (;;) {
    bool over_cap = false;
    {
      std::lock_guard<std::mutex> lock(s->mu);
      if (s->inflight != nullptr) {
        // One request executes at a time; pipelined bytes wait — but only
        // up to the cap. Counting newlines bounds the number of buffered
        // requests from below on both framings (every request contains at
        // least one), so a client can't park an unbounded backlog.
        size_t lines = 0;
        for (char c : s->in) lines += c == '\n';
        if (lines > static_cast<size_t>(opts_.pipeline_cap)) {
          stats_.pipeline_limited.Inc();
          s->out += RenderError(s->was_http, 429, "pipeline_limit");
          over_cap = true;
        } else {
          return;
        }
      }
    }
    if (over_cap) {
      FlushWrites(s);
      CloseSession(s, /*cancel_inflight=*/true);
      return;
    }
    ParsedRequest p = ParseRequest(s->in, kProtoLimits);
    if (p.kind == ParsedRequest::Kind::kNeedMore) {
      if (p.consumed == 0) return;
      s->in.erase(0, p.consumed);  // stray blank line
      if (s->in.empty()) s->in_start_ns = 0;
      continue;
    }
    s->in.erase(0, p.consumed);
    if (s->in.empty()) {
      s->in_start_ns = 0;
    } else {
      // Remaining pipelined bytes restart the slow-loris age clock.
      s->in_start_ns = exec::GovNowNs();
    }
    s->was_http = p.http;
    switch (p.kind) {
      case ParsedRequest::Kind::kBad: {
        stats_.bad_requests.Inc();
        RespondInline(s, RenderError(p.http, p.http_code, p.error.c_str()));
        if (p.must_close) {
          // The buffer holds an unframeable prefix (over-limit line,
          // header block, or body): nothing after it can be trusted, so
          // the connection must go.
          CloseSession(s, /*cancel_inflight=*/false);
          return;
        }
        break;
      }
      case ParsedRequest::Kind::kPing:
        RespondInline(s, "PONG\n");
        break;
      case ParsedRequest::Kind::kHealth: {
        ResponseMeta m;
        m.rows = 0;
        RespondInline(s, RenderResponse(p.http, m, "ok\n"));
        break;
      }
      case ParsedRequest::Kind::kStats: {
        ResponseMeta m;
        m.rows = 0;
        RespondInline(s, RenderResponse(p.http, m, RenderStatsJson() + "\n"));
        break;
      }
      case ParsedRequest::Kind::kMetrics: {
        ResponseMeta m;
        m.rows = 0;
        m.content_type = "text/plain; version=0.0.4";
        RespondInline(s, RenderResponse(p.http, m, RenderMetricsText()));
        break;
      }
      case ParsedRequest::Kind::kCancel:
        HandleCancel(s, p);
        break;
      case ParsedRequest::Kind::kTrace: {
        std::string json;
        if (!GetTrace(p.trace_id, &json)) {
          RespondInline(s, RenderError(p.http, 404, "not_found"));
          break;
        }
        ResponseMeta m;
        m.rows = 0;
        m.content_type = "application/json";
        RespondInline(s, RenderResponse(p.http, m, json + "\n"));
        break;
      }
      case ParsedRequest::Kind::kBlock:
        if (!opts_.debug_endpoints) {
          stats_.bad_requests.Inc();
          RespondInline(s, RenderError(p.http, 404, "not_found"));
          break;
        }
        AdmitQuery(s, p);
        break;
      case ParsedRequest::Kind::kQuery:
        AdmitQuery(s, p);
        break;
      case ParsedRequest::Kind::kNeedMore:
        return;  // unreachable
    }
    if (s->fd < 0) return;  // closed while responding
  }
}

void Server::AdmitQuery(const SessionPtr& s, const ParsedRequest& p) {
  stats_.requests.Inc();
  if (draining_.load(std::memory_order_relaxed)) {
    stats_.shed_draining.Inc();
    RespondInline(s, RenderError(p.http, 503, "draining"));
    return;
  }
  if (FaultPoint("srv_queue")) {
    // Injected admission failure: handled exactly like a full queue.
    stats_.net_faults.Inc();
    stats_.shed_queue_full.Inc();
    RespondInline(s, RenderError(p.http, 503, "overloaded"));
    return;
  }

  auto req = std::make_shared<Request>();
  req->kind = p.kind == ParsedRequest::Kind::kBlock ? Request::Kind::kBlock
                                                    : Request::Kind::kQuery;
  req->id = next_id_.fetch_add(1, std::memory_order_relaxed);
  req->query = p.query;
  req->level = p.level > 0 ? p.level : opts_.level;
  req->want_jit = p.engine == -1 ? opts_.default_jit : (p.engine == 1);
  req->block_ms = p.block_ms < 0 ? 0 : p.block_ms;
  req->http = p.http;
  req->trace = p.trace;
  req->client = p.client;
  req->session = s;

  // Deadlines and budgets by default: an absent or out-of-cap parameter
  // becomes the server-wide cap, so no admitted request can ever run or
  // allocate unboundedly.
  int64_t now = exec::GovNowNs();
  int64_t dl_ms = p.deadline_ms;
  if (dl_ms <= 0 || dl_ms > opts_.max_deadline_ms) dl_ms = opts_.max_deadline_ms;
  req->deadline_abs_ns = now + dl_ms * 1000000;
  int64_t q_ms = opts_.queue_deadline_ms < dl_ms ? opts_.queue_deadline_ms
                                                 : dl_ms;
  req->queue_deadline_ns = now + q_ms * 1000000;
  req->admitted_ns = now;
  int64_t mem_mb = p.mem_mb;
  if (mem_mb <= 0 || mem_mb > opts_.max_mem_mb) mem_mb = opts_.max_mem_mb;
  req->mem_budget_bytes = mem_mb << 20;

  {
    std::lock_guard<std::mutex> lock(s->mu);
    s->inflight = req;
  }
  // Register BEFORE pushing: the moment TryPush succeeds a worker may pop,
  // finish, and TryFinalize — which must find the registry entry or the
  // exactly-once accounting (and the client's inflight slot) leaks.
  active_.fetch_add(1, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(reg_mu_);
    outstanding_[req->id] = req;
  }
  if (!p.http && p.ack) {
    // Line-protocol early acknowledgement: the id goes into the outbound
    // buffer BEFORE the queue push so it always precedes the response a
    // fast worker might render — the client can CANCEL a request it is
    // still waiting on. (A shed lands right after the ID line.)
    char line[32];
    int n = std::snprintf(line, sizeof(line), "ID %llu\n",
                          static_cast<unsigned long long>(req->id));
    std::lock_guard<std::mutex> lock(s->mu);
    if (!s->closed) s->out.append(line, static_cast<size_t>(n));
  }
  FairAdmissionQueue::Admit verdict = queue_.TryPush(req);
  if (verdict != FairAdmissionQueue::Admit::kAdmitted) {
    {
      std::lock_guard<std::mutex> lock(reg_mu_);
      outstanding_.erase(req->id);
    }
    active_.fetch_sub(1, std::memory_order_relaxed);
    {
      std::lock_guard<std::mutex> lock(s->mu);
      s->inflight = nullptr;
    }
    // Quota sheds are the client's own doing and answer 429 "quota";
    // global overload keeps the historical 503 "overloaded".
    switch (verdict) {
      case FairAdmissionQueue::Admit::kQuotaShed:
        stats_.shed_quota.Inc();
        RespondInline(s, RenderError(p.http, 429, "quota"));
        break;
      case FairAdmissionQueue::Admit::kClientQueueFull:
        stats_.shed_client_queue.Inc();
        RespondInline(s, RenderError(p.http, 429, "quota"));
        break;
      default:
        stats_.shed_queue_full.Inc();
        RespondInline(s, RenderError(p.http, 503, "overloaded"));
        break;
    }
    return;
  }
  if (!p.http && p.ack) FlushWrites(s);
}

void Server::HandleCancel(const SessionPtr& s, const ParsedRequest& p) {
  if (FaultPoint("srv_cancel")) {
    // Injected cancel-path failure: the control plane refuses, the target
    // request keeps running — cancel must be safe to retry.
    stats_.net_faults.Inc();
    RespondInline(s, RenderError(p.http, 503, "cancel_failed"));
    return;
  }
  RequestPtr target;
  {
    std::lock_guard<std::mutex> lock(reg_mu_);
    auto it = outstanding_.find(p.cancel_id);
    if (it != outstanding_.end()) target = it->second;
  }
  if (target == nullptr) {
    // Unknown, already finished, or never admitted: idempotent 404.
    RespondInline(s, RenderError(p.http, 404, "not_found"));
    return;
  }
  stats_.cancels_by_id.Inc();
  target->Kill();
  if (RequestPtr queued = queue_.Remove(p.cancel_id)) {
    // Still queued: shed immediately instead of waiting for a worker to
    // pop it. Respond() routes through TryFinalize, so a worker that
    // raced us into popping wins and this path becomes a no-op.
    stats_.failed_cancelled.Inc();
    Respond(queued, RenderError(queued->http, 499, "cancelled", queued->id));
  }
  ResponseMeta m;
  m.rows = 0;
  m.request_id = p.cancel_id;
  RespondInline(s, RenderResponse(p.http, m, "cancelled\n"));
}

std::string Server::RenderStatsJson() {
  std::string json = stats_.ToJson();
  auto clients = queue_.SnapshotClients();
  if (clients.empty() || json.empty() || json.back() != '}') return json;
  // The per-client object nests inside the flat legacy JSON; with no
  // client traffic yet the output stays byte-identical to the old /stats.
  std::string extra = ",\"clients\":{";
  bool first = true;
  char buf[256];
  for (const auto& c : clients) {
    if (!first) extra += ',';
    first = false;
    std::snprintf(
        buf, sizeof(buf),
        "\"%s\":{\"admitted\":%llu,\"done\":%llu,\"shed_quota\":%llu,"
        "\"shed_queue\":%llu,\"inflight\":%d,\"queued\":%zu}",
        c.name.empty() ? "anon" : c.name.c_str(),
        static_cast<unsigned long long>(c.admitted),
        static_cast<unsigned long long>(c.done),
        static_cast<unsigned long long>(c.shed_quota),
        static_cast<unsigned long long>(c.shed_queue), c.inflight, c.queued);
    extra += buf;
  }
  extra += '}';
  json.insert(json.size() - 1, extra);
  return json;
}

std::string Server::RenderMetricsText() {
  std::string out = stats_.ToPrometheus();
  auto clients = queue_.SnapshotClients();
  if (clients.empty()) return out;
  // The registry is label-free by design; the per-client families are the
  // one labeled surface and are rendered here from the same queue snapshot
  // that feeds /stats, so the two endpoints cannot diverge.
  auto emit = [&](const char* name, const char* help, const char* type,
                  auto field) {
    out += "# HELP ";
    out += name;
    out += ' ';
    out += help;
    out += "\n# TYPE ";
    out += name;
    out += ' ';
    out += type;
    out += '\n';
    char line[256];
    for (const auto& c : clients) {
      std::snprintf(line, sizeof(line), "%s{client=\"%s\"} %lld\n", name,
                    c.name.empty() ? "anon" : c.name.c_str(),
                    static_cast<long long>(field(c)));
      out += line;
    }
  };
  using CS = FairAdmissionQueue::ClientSample;
  emit("qc_server_client_admitted_total", "Admitted requests per client.",
       "counter", [](const CS& c) { return static_cast<int64_t>(c.admitted); });
  emit("qc_server_client_done_total",
       "Finalized requests per client (any outcome).", "counter",
       [](const CS& c) { return static_cast<int64_t>(c.done); });
  emit("qc_server_client_shed_quota_total",
       "Quota sheds (token bucket + per-client queue bound) per client.",
       "counter",
       [](const CS& c) { return static_cast<int64_t>(c.shed_quota); });
  emit("qc_server_client_shed_queue_total",
       "Global-capacity sheds charged per client.", "counter",
       [](const CS& c) { return static_cast<int64_t>(c.shed_queue); });
  emit("qc_server_client_inflight", "Requests currently popped per client.",
       "gauge", [](const CS& c) { return static_cast<int64_t>(c.inflight); });
  emit("qc_server_client_queued", "Requests currently queued per client.",
       "gauge", [](const CS& c) { return static_cast<int64_t>(c.queued); });
  return out;
}

void Server::RespondInline(const SessionPtr& s, std::string wire) {
  {
    std::lock_guard<std::mutex> lock(s->mu);
    if (s->closed) return;
    s->out += wire;
  }
  FlushWrites(s);
}

void Server::FlushWrites(const SessionPtr& s) {
  std::string pending;
  {
    std::lock_guard<std::mutex> lock(s->mu);
    if (s->out.empty()) return;
    pending.swap(s->out);
  }
  if (FaultPoint("srv_write")) {
    stats_.net_faults.Inc();
    CloseSession(s, /*cancel_inflight=*/true);
    return;
  }
  const char* p = pending.data();
  size_t left = pending.size();
  while (left > 0) {
    ssize_t n = ::send(s->fd, p, left, MSG_NOSIGNAL);
    if (n > 0) {
      p += n;
      left -= static_cast<size_t>(n);
      // Any forward progress resets the stalled-writer clock; only a
      // client accepting zero bytes for io_idle_ms gets evicted.
      s->last_out_ns = exec::GovNowNs();
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      // Slow client: requeue the remainder IN FRONT of anything a worker
      // appended meanwhile, poll for POLLOUT.
      std::lock_guard<std::mutex> lock(s->mu);
      s->out.insert(0, p, left);
      return;
    }
    if (n < 0 && errno == EINTR) continue;
    CloseSession(s, /*cancel_inflight=*/true);
    return;
  }
}

void Server::CloseSession(const SessionPtr& s, bool cancel_inflight) {
  RequestPtr inflight;
  {
    std::lock_guard<std::mutex> lock(s->mu);
    if (s->closed) return;
    s->closed = true;
    inflight = std::move(s->inflight);
    s->inflight = nullptr;
    s->out.clear();
  }
  if (inflight != nullptr && cancel_inflight) {
    // Kill-on-disconnect: the client is gone, stop paying for its query.
    inflight->Kill();
    stats_.disconnect_cancels.Inc();
  }
  if (s->fd >= 0) {
    sessions_.erase(s->fd);
    ::close(s->fd);
    s->fd = -1;
  }
}

// ---------------------------------------------------------------------------
// Workers.
// ---------------------------------------------------------------------------

void Server::WorkerMain(Worker* w) {
  while (RequestPtr req = queue_.Pop()) {
    int64_t now = exec::GovNowNs();
    if (req->aborted.load(std::memory_order_relaxed)) {
      // Killed while queued (disconnect, drain, or cancel-by-id): answer
      // cancelled — TryFinalize drops this quietly if a cancel-by-id
      // already finalized the request.
      stats_.failed_cancelled.Inc();
      Respond(req, RenderError(req->http, 499, "cancelled", req->id));
      continue;
    }
    if (now > req->queue_deadline_ns) {
      // Admitted but waited too long: shedding now is cheaper than running
      // a query whose client has likely timed out.
      stats_.shed_queue_deadline.Inc();
      Respond(req, RenderError(req->http, 503, "queue_deadline", req->id));
      continue;
    }
    if (req->kind == Request::Kind::kBlock) {
      ExecuteBlock(req);
    } else {
      Execute(w, req);
    }
  }
}

exec::Interpreter* Server::PickInterpreter(Worker* w, const RequestPtr& req,
                                           int* downshift,
                                           const char** engine) {
  int level = static_cast<int>(
      stats_.downshift_level.load(std::memory_order_relaxed));
  bool jit = req->want_jit && level < 1;
  int idx = jit ? 0 : (level >= 2 ? 2 : 1);
  int threads = idx == 2 ? 1 : opts_.query_threads;
  if (w->interp[idx] == nullptr) {
    exec::InterpOptions o;
    o.engine = jit ? exec::InterpOptions::Engine::kJit
                   : exec::InterpOptions::Engine::kBytecode;
    o.num_threads = threads;
    w->interp[idx] = std::make_unique<exec::Interpreter>(db_, o);
  }
  *downshift = level;
  *engine = jit ? "jit" : "vm";
  return w->interp[idx].get();
}

void Server::Execute(Worker* w, const RequestPtr& req) {
  const int64_t t0 = exec::GovNowNs();
  // ?trace=1: a per-request capture session wraps the plan lookup (so a
  // cold plan records parse/lower spans) and every execution attempt; the
  // rendered Chrome trace is stored under the request id for
  // /debug/trace/<id>.
  uint64_t trace_session = req->trace ? telemetry::TraceBeginSession() : 0;

  std::string err;
  const ir::Function* fn;
  {
    telemetry::TraceScope ts(trace_session);
    fn = plans_.Get(req->query, req->level, &err);
  }
  if (fn == nullptr) {
    if (trace_session != 0) telemetry::TraceEndSession(trace_session);
    stats_.bad_requests.Inc();
    Respond(req, RenderError(req->http, 500, "compile_failed", req->id));
    return;
  }
  int downshift = 0;
  const char* engine = "vm";
  exec::Interpreter* interp = PickInterpreter(w, req, &downshift, &engine);

  RetryPolicy retry(opts_.seed ^ (req->id * 0x9e3779b97f4a7c15ULL),
                    opts_.max_retries, opts_.retry_base_ms,
                    opts_.retry_max_ms);
  storage::ResultTable result;
  exec::QueryStatus st;
  for (;;) {
    req->control.deadline_ns.store(req->deadline_abs_ns,
                                   std::memory_order_relaxed);
    req->control.memory_budget_bytes = req->mem_budget_bytes;
    interp->SetControl(&req->control);
    {
      telemetry::TraceScope ts(trace_session);
      result = interp->Run(*fn);
    }
    st = interp->last_status();
    interp->SetControl(nullptr);
    if (interp->last_jit_stats().fallback_reason != 0 &&
        std::strcmp(engine, "jit") == 0) {
      // The JIT degraded under us (denied code pages, fault injection):
      // results are still exact on the VM, but new admissions stop asking
      // for native code until the server recovers.
      stats_.jit_fallbacks.Inc();
      int64_t cur = 0;
      if (stats_.downshift_level.compare_exchange_strong(
              cur, 1, std::memory_order_relaxed)) {
        telemetry::Log(telemetry::LogLevel::kWarn, "downshift",
                       {{"level", 1}, {"reason", "jit_fallback"},
                        {"request", static_cast<unsigned long long>(
                                        req->id)}});
      }
    }
    if (st.ok() || st.code != exec::QueryStatusCode::kResourceFailure) break;
    int64_t delay_ms = 0;
    if (req->aborted.load(std::memory_order_relaxed) ||
        !retry.ShouldRetry(req->deadline_abs_ns, &delay_ms)) {
      break;
    }
    stats_.retries.Inc();
    telemetry::Log(telemetry::LogLevel::kInfo, "retry",
                   {{"request", static_cast<unsigned long long>(req->id)},
                    {"attempt", retry.attempts()},
                    {"delay_ms", static_cast<long long>(delay_ms)}});
    // Jittered backoff, interruptible by disconnect/drain kills.
    int64_t until = exec::GovNowNs() + delay_ms * 1000000;
    while (exec::GovNowNs() < until &&
           !req->aborted.load(std::memory_order_relaxed)) {
      SleepMs(1);
    }
  }
  NoteOutcome(st.code, retry.attempts() > 0);
  stats_.request_ms.Observe(
      static_cast<double>(exec::GovNowNs() - t0) / 1e6);

  ResponseMeta meta = MapStatus(st.code);
  meta.retries = retry.attempts();
  meta.downshift = downshift;
  meta.engine = engine;
  meta.request_id = req->id;
  if (trace_session != 0) {
    StoreTrace(req->id, telemetry::TraceEndSession(trace_session));
    meta.trace_id = req->id;
  }
  std::string body;
  if (st.ok()) {
    meta.rows = static_cast<int64_t>(result.size());
    body = RenderRows(result);
  } else {
    meta.rows = 0;
    body = std::string(meta.status) + "\n";
  }
  Respond(req, RenderResponse(req->http, meta, body));
}

void Server::ExecuteBlock(const RequestPtr& req) {
  // Deterministic worker occupancy for tests: a governed cancellable wait
  // that honors exactly the contract queries do — deadline and cancel trip
  // within ~1ms instead of one safepoint interval.
  exec::ExecControl& ctl = req->control;
  ctl.BeginRun();
  const int64_t end = exec::GovNowNs() + req->block_ms * 1000000;
  for (;;) {
    if (ctl.cancel.load(std::memory_order_relaxed)) {
      ctl.Trip(exec::QueryStatusCode::kCancelled);
      break;
    }
    if (req->deadline_abs_ns != 0 && exec::GovNowNs() >= req->deadline_abs_ns) {
      ctl.Trip(exec::QueryStatusCode::kDeadlineExceeded);
      break;
    }
    if (exec::GovNowNs() >= end) break;
    std::this_thread::sleep_for(std::chrono::microseconds(500));
  }
  exec::QueryStatus st = ctl.status();
  NoteOutcome(st.code, false);
  ResponseMeta meta = MapStatus(st.code);
  meta.rows = 0;
  meta.request_id = req->id;
  std::string body = st.ok() ? "blocked\n" : std::string(meta.status) + "\n";
  Respond(req, RenderResponse(req->http, meta, body));
}

void Server::NoteOutcome(exec::QueryStatusCode code, bool retried_out) {
  (void)retried_out;
  switch (code) {
    case exec::QueryStatusCode::kOk: {
      stats_.ok.Inc();
      // Recovery: enough consecutive healthy runs step the downshift
      // ladder back toward full service.
      int streak = ok_streak_.fetch_add(1, std::memory_order_relaxed) + 1;
      if (streak >= opts_.recover_ok) {
        int64_t cur = stats_.downshift_level.load(std::memory_order_relaxed);
        if (cur > 0 && stats_.downshift_level.compare_exchange_strong(
                           cur, cur - 1, std::memory_order_relaxed)) {
          ok_streak_.store(0, std::memory_order_relaxed);
          telemetry::Log(telemetry::LogLevel::kInfo, "recover",
                         {{"level", static_cast<long long>(cur - 1)},
                          {"ok_streak", streak}});
        }
      }
      return;
    }
    case exec::QueryStatusCode::kDeadlineExceeded:
      stats_.failed_deadline.Inc();
      return;
    case exec::QueryStatusCode::kCancelled:
      stats_.failed_cancelled.Inc();
      return;
    case exec::QueryStatusCode::kMemoryBudget:
      stats_.failed_memory.Inc();
      return;
    case exec::QueryStatusCode::kResourceFailure: {
      stats_.failed_resource.Inc();
      // Retries exhausted on a resource fault: downshift new admissions
      // (graceful degradation) and restart the recovery streak.
      ok_streak_.store(0, std::memory_order_relaxed);
      int64_t cur = stats_.downshift_level.load(std::memory_order_relaxed);
      while (cur < 2 && !stats_.downshift_level.compare_exchange_weak(
                            cur, cur + 1, std::memory_order_relaxed)) {
      }
      if (cur < 2) {
        stats_.downshifts.Inc();
        telemetry::Log(telemetry::LogLevel::kWarn, "downshift",
                       {{"level", static_cast<long long>(cur + 1)},
                        {"reason", "resource_failure"}});
      }
      return;
    }
  }
}

void Server::StoreTrace(uint64_t id, std::string json) {
  std::lock_guard<std::mutex> lock(trace_mu_);
  if (traces_.count(id) == 0) trace_order_.push_back(id);
  traces_[id] = std::move(json);
  while (trace_order_.size() > kMaxStoredTraces) {
    traces_.erase(trace_order_.front());
    trace_order_.pop_front();
  }
}

bool Server::GetTrace(uint64_t id, std::string* out) {
  std::lock_guard<std::mutex> lock(trace_mu_);
  auto it = traces_.find(id);
  if (it == traces_.end()) return false;
  *out = it->second;
  return true;
}

bool Server::TryFinalize(const RequestPtr& req) {
  {
    std::lock_guard<std::mutex> lock(reg_mu_);
    if (outstanding_.erase(req->id) == 0) return false;
  }
  queue_.OnFinished(req);
  active_.fetch_sub(1, std::memory_order_relaxed);
  return true;
}

void Server::Respond(const RequestPtr& req, std::string wire) {
  // Exactly-once: a request can reach here from its worker AND from a
  // cancel-by-id that shed it while queued; whoever erases the registry
  // entry first owns the response, the loser drops out silently.
  if (!TryFinalize(req)) return;
  SessionPtr s = req->session;
  if (s != nullptr) {
    std::lock_guard<std::mutex> lock(s->mu);
    if (s->inflight == req) s->inflight = nullptr;
    if (!s->closed) s->out += wire;
  }
  Wake();
}

}  // namespace qc::server
