#include "server/admission.h"

#include <algorithm>

#include "exec/governor.h"

namespace qc::server {

FairAdmissionQueue::FairAdmissionQueue(Limits limits) : limits_(limits) {}

FairAdmissionQueue::ClientState& FairAdmissionQueue::StateFor(RequestPtr& r) {
  auto it = clients_.find(r->client);
  if (it != clients_.end()) return it->second;
  if (clients_.size() >= kMaxClients) {
    // Distinct-client overflow: fold into the anonymous bucket rather than
    // letting a client-id flood grow the map without bound.
    r->client.clear();
    return clients_[""];
  }
  ClientState& st = clients_[r->client];
  st.last_refill_ns = exec::GovNowNs();
  st.tokens = std::max(1.0, limits_.client_qps);  // full burst on first use
  return st;
}

FairAdmissionQueue::Admit FairAdmissionQueue::TryPush(RequestPtr r) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (closed_) return Admit::kQueueFull;
    ClientState& st = StateFor(r);
    if (total_ >= limits_.capacity) {
      ++st.shed_queue;
      return Admit::kQueueFull;
    }
    if (limits_.client_qps > 0) {
      // Token bucket, refilled lazily at push time; burst = one second of
      // rate (min 1 so qps < 1 still ever admits).
      int64_t now = exec::GovNowNs();
      double burst = std::max(1.0, limits_.client_qps);
      st.tokens = std::min(
          burst, st.tokens + static_cast<double>(now - st.last_refill_ns) /
                                 1e9 * limits_.client_qps);
      st.last_refill_ns = now;
      if (st.tokens < 1.0) {
        ++st.shed_quota;
        return Admit::kQuotaShed;
      }
      st.tokens -= 1.0;
    }
    if (limits_.client_queue > 0 && st.q.size() >= limits_.client_queue) {
      ++st.shed_quota;
      return Admit::kClientQueueFull;
    }
    ++st.admitted;
    ++total_;
    st.q.push_back(std::move(r));
  }
  cv_.notify_one();
  return Admit::kAdmitted;
}

bool FairAdmissionQueue::PoppableLocked() const {
  for (const auto& kv : clients_) {
    if (kv.second.q.empty()) continue;
    if (closed_ || limits_.client_inflight <= 0 ||
        kv.second.inflight < limits_.client_inflight) {
      return true;
    }
  }
  return false;
}

RequestPtr FairAdmissionQueue::Pop() {
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [&] { return closed_ ? true : PoppableLocked(); });
  // Round-robin over clients with runnable work, starting after the client
  // served last — a heavy tenant's deep queue advances one request per
  // turn, so a light tenant waits behind at most one request per tenant.
  // Once closed the inflight cap is ignored: shutdown must drain everything
  // (workers shed aborted/expired work instead of running it).
  auto runnable = [&](const ClientState& st) {
    return !st.q.empty() && (closed_ || limits_.client_inflight <= 0 ||
                             st.inflight < limits_.client_inflight);
  };
  auto take = [&](decltype(clients_)::iterator it) {
    ClientState& st = it->second;
    RequestPtr r = std::move(st.q.front());
    st.q.pop_front();
    --total_;
    r->popped = true;
    ++st.inflight;
    rr_last_ = it->first;
    return r;
  };
  for (auto it = clients_.upper_bound(rr_last_); it != clients_.end(); ++it) {
    if (runnable(it->second)) return take(it);
  }
  for (auto it = clients_.begin(); it != clients_.end(); ++it) {
    if (runnable(it->second)) return take(it);
  }
  return nullptr;  // closed and drained
}

RequestPtr FairAdmissionQueue::Remove(uint64_t id) {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& kv : clients_) {
    auto& q = kv.second.q;
    for (auto it = q.begin(); it != q.end(); ++it) {
      if ((*it)->id == id) {
        RequestPtr r = std::move(*it);
        q.erase(it);
        --total_;
        return r;
      }
    }
  }
  return nullptr;
}

void FairAdmissionQueue::OnFinished(const RequestPtr& r) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = clients_.find(r->client);
    if (it == clients_.end()) return;  // never admitted here
    ++it->second.done;
    if (r->popped && it->second.inflight > 0) --it->second.inflight;
  }
  // A freed inflight slot may unblock a capped client's queued work.
  cv_.notify_all();
}

std::vector<RequestPtr> FairAdmissionQueue::TakeAll() {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<RequestPtr> out;
  for (auto& kv : clients_) {
    for (auto& r : kv.second.q) out.push_back(std::move(r));
    kv.second.q.clear();
  }
  total_ = 0;
  return out;
}

void FairAdmissionQueue::Close() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    closed_ = true;
  }
  cv_.notify_all();
}

size_t FairAdmissionQueue::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return total_;
}

std::vector<FairAdmissionQueue::ClientSample>
FairAdmissionQueue::SnapshotClients() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<ClientSample> out;
  out.reserve(clients_.size());
  for (const auto& kv : clients_) {
    ClientSample s;
    s.name = kv.first;
    s.admitted = kv.second.admitted;
    s.done = kv.second.done;
    s.shed_quota = kv.second.shed_quota;
    s.shed_queue = kv.second.shed_queue;
    s.inflight = kv.second.inflight;
    s.queued = kv.second.q.size();
    out.push_back(std::move(s));
  }
  return out;
}

}  // namespace qc::server
