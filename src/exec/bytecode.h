// Register-bytecode execution engine for the ANF IR.
//
// The tree-walking interpreter (exec/interp.cc) re-resolves operand pointers
// and re-dispatches on Stmt::op for every node of every loop iteration —
// exactly the megamorphic-dispatch/pointer-chasing overhead the paper's
// lowering story is about (§B.2). This layer removes it in one flattening
// step, mirroring in miniature what the DSL stack does to queries:
//
//   BytecodeCompiler  flattens a verified ir::Function into a dense
//                     std::vector<Insn> of fixed-width register
//                     instructions. Operands are pre-resolved register
//                     indices (statement ids), constants are materialized
//                     once into a preset image, base-table columns and
//                     load-time indexes become raw pre-resolved pointers,
//                     and the structured block tree (kIf/kForRange/kWhile/
//                     foreach) is lowered to relative jumps.
//
//   BytecodeVM        executes the flat code with computed-goto
//                     direct-threaded dispatch (portable switch fallback
//                     behind QC_BC_NO_COMPUTED_GOTO), type-specialized
//                     arithmetic opcodes (separate i64/f64 add/mul/cmp so
//                     the per-op type->kind branch disappears) and fused
//                     super-instructions for the hot scan idiom: column
//                     read + compare, and loop-index increment + bound
//                     check + back edge.
//
// The VM shares the runtime data structures (exec/runtime.h) and the
// AllocStats accounting with the tree walker, so results — including the
// Figure 8 memory numbers — are bit-identical across the engines. The
// copy-and-patch JIT (src/jit/) goes one step further down the same road:
// it stitches these programs into native code and uses this VM as its
// deopt target (BytecodeVM::SetJit).
#ifndef QC_EXEC_BYTECODE_H_
#define QC_EXEC_BYTECODE_H_

#include <cstdint>
#include <deque>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "exec/parallel.h"
#include "exec/runtime.h"
#include "ir/parallel.h"
#include "ir/stmt.h"
#include "storage/database.h"
#include "storage/result.h"

namespace qc::exec {

namespace jit {
class JitProgram;  // src/jit/engine.h
}

// X(name) — opcode list. Order defines the encoding and the direct-threaded
// label table, so the enum and the VM handlers are generated from the same
// macro.
#define QC_BC_OP_LIST(X)                                                     \
  /* control flow (d = relative offset from the following insn) */          \
  X(kRet)     /* return from the current Exec activation */                 \
  X(kJmp)     /* pc += d */                                                 \
  X(kJz)      /* if R[a].i == 0: pc += d */                                 \
  X(kJnz)     /* if R[a].i != 0: pc += d */                                 \
  X(kJgeI)    /* if R[a].i >= R[b].i: pc += d (loop-head guard) */          \
  X(kForNext) /* ++R[a].i; if R[a].i < R[b].i: pc += d (fused back edge) */ \
  X(kIncJmp)  /* ++R[a].i; pc += d (back edge with re-checked bound) */     \
  X(kJmpSp)   /* pc += d; while-loop back edge (safepoint checked) */       \
  /* moves */                                                               \
  X(kLoadK)   /* R[a] = consts[b] */                                        \
  X(kMov)     /* R[a] = R[b] */                                             \
  /* i64 arithmetic (also i32/bool/date: all integral slots) */             \
  X(kAddI) X(kSubI) X(kMulI) X(kDivI) X(kModI) X(kNegI)                     \
  /* f64 arithmetic */                                                      \
  X(kAddF) X(kSubF) X(kMulF) X(kDivF) X(kNegF)                              \
  X(kCastIF)  /* R[a].d = (double)R[b].i */                                 \
  X(kCastFI)  /* R[a].i = (int64)R[b].d */                                  \
  /* comparisons -> 0/1 */                                                  \
  X(kEqI) X(kNeI) X(kLtI) X(kLeI) X(kGtI) X(kGeI)                           \
  X(kEqF) X(kNeF) X(kLtF) X(kLeF) X(kGtF) X(kGeF)                           \
  /* booleans */                                                            \
  X(kAnd) X(kOr) X(kNot) X(kBitAnd)                                         \
  /* strings */                                                             \
  X(kStrEq) X(kStrNe) X(kStrLt)                                             \
  X(kStrStarts) X(kStrEnds) X(kStrContains)                                 \
  X(kStrLike)   /* b = source reg, c = pattern-pool index */                \
  X(kStrLen)                                                                \
  X(kStrSubstr) /* b = source reg, c = start, d = length */                 \
  /* records and pools (c on the allocating ops = register holding the     \
     RecordHeap*, prog.rec_reg — lets JIT'd code allocate via helper) */    \
  X(kRecNew)    /* a = dst, b = extra offset, c = heap reg, n = fields */   \
  X(kRecGet)    /* a = dst, b = record reg, c = field index */              \
  X(kRecSet)    /* a = record reg, b = field index, c = src reg */          \
  X(kPoolAlloc) /* a = dst, b = pool-handle reg (fields), c = heap reg */   \
  X(kPoolRecNew) /* a = dst, b = extra offset, c = heap reg, n = fields */  \
  /* arrays */                                                              \
  X(kArrNew) X(kMallocArr) /* a = dst, b = length reg */                    \
  X(kArrGet)  /* a = dst, b = array reg, c = index reg */                   \
  X(kArrSet)  /* a = array reg, b = index reg, c = src reg */               \
  X(kArrLen)                                                                \
  X(kArrSort) /* a = array, b = n reg, c = cmp entry pc, d = extra off,    \
                 n = 1 when the comparator subroutine is pure (reads only) \
                 and the sort may therefore run morsel-parallel */          \
  /* lists (kListAppend: a = list, b = value, c = register holding the     \
     AllocStats*, prog.stats_reg — the append accounts vector growth) */    \
  X(kListNew) X(kListAppend) X(kListSize) X(kListGet)                       \
  X(kListSort) /* a = list, c = cmp entry pc, d = extra off, n = pure-     \
                  comparator flag (see kArrSort) */                         \
  /* generic hash maps. Probe instructions carry the map's key kind in d   \
     (kMapKeyOther / kMapKeyI64) — the "map layout id" the JIT stitcher    \
     keys its i64 hash-probe specialization on; the VM ignores it. */       \
  X(kMapNew)       /* a = dst, b = key-type pool index */                   \
  X(kMapFind)      /* a = node dst, b = map reg, c = key reg, d = key kind */\
  X(kMapInsert)    /* a = node dst, b = map, c = key, d = value reg */      \
  X(kMapNodeVal)   /* a = dst, b = node reg */                              \
  X(kMapGetOrNull) /* a = dst, b = map, c = key, d = key kind */            \
  X(kMapSize)                                                               \
  X(kMapEntryKV)   /* a = key dst, b = value dst, c = map, d = index reg */ \
  /* multimaps (kMMapGetOrNull: d = key kind, like the map probes) */       \
  X(kMMapNew) X(kMMapAdd) X(kMMapGetOrNull)                                 \
  X(kIsNull)                                                                \
  /* base-table access through pre-resolved pointers */                     \
  X(kColGet)  /* a = dst, b = ptr-pool index, c = row reg */                \
  X(kColDict)                                                               \
  X(kIdxBucketLen) /* a = dst, b = ptr index, c = key reg */                \
  X(kIdxBucketRow) /* a = dst, b = ptr index, c = key reg, d = j reg */     \
  X(kIdxPkRow)                                                              \
  /* fused scan super-instructions: column read + compare */                \
  X(kColGetEqI) X(kColGetNeI) X(kColGetLtI)                                 \
  X(kColGetLeI) X(kColGetGtI) X(kColGetGeI)                                 \
  X(kColGetEqF) X(kColGetNeF) X(kColGetLtF)                                 \
  X(kColGetLeF) X(kColGetGtF) X(kColGetGeF)                                 \
  /* fused filter branches: jump (d) when the comparison is FALSE.         \
     kJn*: a = lhs reg, b = rhs reg. */                                     \
  X(kJnEqI) X(kJnNeI) X(kJnLtI) X(kJnLeI) X(kJnGtI) X(kJnGeI)               \
  X(kJnEqF) X(kJnNeF) X(kJnLtF) X(kJnLeF) X(kJnGtF) X(kJnGeF)               \
  /* fused scan filters: column read + compare + branch-if-false.          \
     a = rhs reg, b = ptr-pool index, c = row reg. */                       \
  X(kJnColEqI) X(kJnColNeI) X(kJnColLtI)                                    \
  X(kJnColLeI) X(kJnColGtI) X(kJnColGeI)                                    \
  X(kJnColEqF) X(kJnColNeF) X(kJnColLtF)                                    \
  X(kJnColLeF) X(kJnColGtF) X(kJnColGeF)                                    \
  /* fused aggregate updates: load + add + store back.                     \
     rec: a = record reg, b = field, c = addend reg.                       \
     arr: a = array reg, b = index reg, c = addend reg. */                  \
  X(kRecAccAddI) X(kRecAccAddF) X(kArrAccAddI) X(kArrAccAddF)               \
  /* result emission: n = arg count, a = extra offset, c = string mask,    \
     b = register holding the ResultTable* (prog.out_reg) */                \
  X(kEmit)                                                                  \
  /* morsel-parallel scan loops (see exec/parallel.h) */                    \
  X(kParLoop) /* a = par_loops index; on parallel run: pc += d (skips the  \
                 sequential loop body that follows as the fallback) */      \
  X(kLogRow)  /* a = log channel, b = extra offset, n = operand count,     \
                 c = register holding the channel's addend log             \
                 (std::vector<Slot>*, written per morsel by the runtime):  \
                 append R[extra[b..b+n)] to that log */

enum class BcOp : uint16_t {
#define QC_BC_OP_ENUM(name) name,
  QC_BC_OP_LIST(QC_BC_OP_ENUM)
#undef QC_BC_OP_ENUM
      kNumOps
};

// Key-kind metadata on the hash-probe instructions (field d): the JIT only
// stitches its native i64 probe when the map's key hashes as a plain
// integral slot (HashMix over .i, equality on .i) — strings and records
// keep deopting into the typed SlotHasher.
constexpr int32_t kMapKeyOther = 0;
constexpr int32_t kMapKeyI64 = 1;

const char* BcOpName(BcOp op);

// One fixed-width instruction. Operands a/b/c are register indices or pool
// indices depending on the opcode (see QC_BC_OP_LIST); d is a relative jump
// offset (from the instruction *after* this one) or a fourth operand.
struct Insn {
  uint16_t op = 0;
  uint16_t n = 0;
  uint32_t a = 0;
  uint32_t b = 0;
  uint32_t c = 0;
  int32_t d = 0;
};
static_assert(sizeof(Insn) == 20, "Insn must stay fixed-width and dense");

// Compiled form of one morsel-parallelizable scan loop: the register
// bindings the parallel runtime needs, plus the entry pc of the morsel
// body fragment (compiled after the main stream's kRet, with the f64-sum
// clusters replaced by kLogRow and terminated by kRet).
struct ParLoopCode {
  const ir::ParLoop* plan = nullptr;  // owned by the Interpreter's cache
  uint32_t entry = 0;                 // morsel body fragment pc
  uint32_t src_lo_reg = 0;            // loop bounds of the sequential loop
  uint32_t src_hi_reg = 0;
  uint32_t lo_reg = 0;  // fragment bounds, written per morsel by the runtime
  uint32_t hi_reg = 0;
  std::vector<uint32_t> red_regs;           // per reduction: target register
  std::vector<uint32_t> red_size_regs;      // per reduction: array capacity
  std::vector<uint32_t> channel_var_regs;   // per log channel: scalar target
  // Per log channel: the register the runtime points at the morsel's addend
  // log (std::vector<Slot>*) before entering the fragment — the kLogRow
  // operand that lets both the VM handler and the JIT's native append reach
  // the log without going through MorselState.
  std::vector<uint32_t> log_regs;
};

// A compiled program. Owns every payload the instructions reference, so a
// program outlives the Function it was compiled from — but NOT the Database:
// column/index pointers are pre-resolved into `ptrs`.
struct BytecodeProgram {
  std::vector<Insn> code;
  // Registers preloaded before execution: constants, table row counts and
  // pool handles never change, so they cost zero instructions at runtime.
  std::vector<std::pair<uint32_t, Slot>> presets;
  std::vector<Slot> consts;              // kLoadK pool (loop-counter seeds)
  std::vector<uint32_t> extra;           // variable-length operand lists
  std::vector<const void*> ptrs;         // pre-resolved column/index data
  std::vector<const ir::Type*> types;    // map/mmap key types
  std::vector<std::string> patterns;     // kStrLike patterns
  std::deque<std::string> strings;       // owned string constants (stable)
  std::vector<storage::ColType> emit_types;
  std::vector<ParLoopCode> par_loops;  // morsel-parallelizable scan loops
  uint32_t num_regs = 0;
  // Reserved context registers, written by the VM at Run entry (and by the
  // parallel runtime per morsel): the destination ResultTable* for kEmit,
  // the AllocStats* for accounting appends, and the RecordHeap* for record
  // allocation. They let JIT'd code reach all per-run mutable state through
  // the register file alone — the same state-free property the deopt
  // protocol relies on.
  uint32_t out_reg = 0;
  uint32_t stats_reg = 0;
  uint32_t rec_reg = 0;
  // Governance context: gov_reg holds the context's GovState*, gov_cnt_reg
  // its safepoint countdown (int64). Allocated consecutively — the JIT's
  // safepoint slow path relies on gov_cnt_reg == gov_reg + 1 to reach the
  // GovState* from the countdown slot's address with one unpatched load.
  // Ungoverned runs preset the countdown to INT64_MAX, making the slow
  // path unreachable (back edges cost one dec + predictable branch).
  uint32_t gov_reg = 0;
  uint32_t gov_cnt_reg = 0;
  int fused = 0;  // number of super-instructions formed (introspection)
};

// Human-readable listing of a compiled program (one instruction per line,
// "pc: op a b c d [-> target]"). Debugging and test aid.
std::string Disassemble(const BytecodeProgram& prog);

// Emit-row column types of a function (the schema of its kEmit statements).
// Shared by both engines; walking the tree once per compile replaces the
// tree walker's per-Run rediscovery.
std::vector<storage::ColType> EmitRowTypes(const ir::Function& fn);

// Flattens one verified function. The database is consulted at compile time
// to pre-resolve column arrays, dictionaries and load-time indexes; the
// resulting program is only valid against that database.
class BytecodeCompiler {
 public:
  explicit BytecodeCompiler(storage::Database* db) : db_(db) {}

  // When `par` is non-null, every loop it lists compiles to a kParLoop
  // header (taken on parallel runs) followed by the plain sequential loop
  // (the fallback), plus a morsel body fragment after the main stream.
  // `par` must outlive the program.
  BytecodeProgram Compile(const ir::Function& fn,
                          const ir::ParallelInfo* par = nullptr);

 private:
  uint32_t Reg(const ir::Stmt* s) const;
  uint32_t NewTemp() { return num_regs_++; }

  size_t Emit(BcOp op, uint32_t a = 0, uint32_t b = 0, uint32_t c = 0,
              int32_t d = 0, uint16_t n = 0);
  // Patches the jump at `at` to land on the next emitted instruction.
  void PatchToHere(size_t at);
  int32_t OffsetTo(size_t target) const;

  uint32_t PtrIdx(const void* p);
  uint32_t TypeIdx(const ir::Type* t);
  uint32_t KonstI(int64_t v);
  uint32_t ExtraList(const std::vector<uint32_t>& regs);

  void Preset(const ir::Stmt* s, Slot v);
  void CompileBlock(const ir::Block* b);
  void CompileStmt(const ir::Stmt* s);
  // Emits Mov dst <- src, or — when src was produced by the immediately
  // preceding instruction and has no other use — retargets that
  // instruction's destination instead (write-back elimination).
  void EmitMovOrRetarget(uint32_t dst, const ir::Stmt* src);
  bool TryFuseColScan(const ir::Stmt* s, const ir::Stmt* next);
  // Filter fusion over the preset-filtered statement view: recognizes a run
  // of pure condition statements (column reads, comparisons, BitAnd chains,
  // null tests) feeding a kIf — the shape cond_flatten produces — and
  // compiles it as a cascade of branch-if-false super-instructions with no
  // materialized booleans. Returns statements consumed (0 = no fusion); the
  // kIf's blocks are compiled as part of the fusion.
  size_t TryFuseBranch(const std::vector<const ir::Stmt*>& stmts, size_t i,
                       const ir::Stmt* block_result);
  // Fuses [x = load(container, k)] -> [y = add(x, v)] -> [store(container,
  // k, y)] into one accumulate instruction. Returns statements consumed.
  size_t TryFuseAccumulate(const std::vector<const ir::Stmt*>& stmts,
                           size_t i);
  // Emits the branch-if-false instruction for one conjunct of a fused
  // filter; `folded` collects statements whose computation disappeared.
  size_t EmitLeafBranch(const ir::Stmt* leaf,
                        const std::vector<const ir::Stmt*>& window,
                        std::vector<const ir::Stmt*>* folded);
  // Compiles kIf's then/else blocks given already-emitted branch-if-false
  // instructions, all patched to the else/end target.
  void CompileIfBody(const ir::Stmt* ifstmt,
                     const std::vector<size_t>& branches);
  // True when `s` is only used by `user`, as a direct argument.
  bool SoleUseBy(const ir::Stmt* s, const ir::Stmt* user) const;
  // Compiles a comparator block as a skipped-over subroutine; returns its
  // entry pc.
  uint32_t CompileSubroutine(const ir::Block* b);
  // True when the subroutine at [entry, its kRet] only reads shared state
  // (registers are private per execution context): such a comparator can
  // run concurrently over private register files, which is what gates the
  // morsel-parallel sort (the pure-comparator flag on kArrSort/kListSort).
  bool SubroutineParallelSafe(uint32_t entry) const;
  // While-condition branch fusion: emits the loop-exit branch for the
  // condition block without materializing its boolean result when the
  // result is a fusible tail (Not(IsNull(p)), IsNull, Not, or a numeric
  // comparison). Returns the branch's pc (to be patched to the loop exit).
  size_t EmitWhileExit(const ir::Block* cond);
  // Appends one addend-log entry for a morsel fragment (ir::ParAction::kLog).
  void EmitLogRow(const ir::Stmt* s);

  storage::Database* db_;
  BytecodeProgram prog_;
  std::vector<int> uses_;
  uint32_t num_regs_ = 0;
  // Parallel compilation state: the analysis for the whole function, the
  // plan of the morsel fragment currently being compiled (null in the main
  // stream), and the loops whose fragments are emitted after the main kRet.
  const ir::ParallelInfo* par_info_ = nullptr;
  const ir::ParLoop* par_ = nullptr;
  const std::vector<uint32_t>* frag_log_regs_ = nullptr;  // current fragment
  std::vector<std::pair<const ir::Stmt*, size_t>> pending_par_;
  // Statements folded into a fused while-exit branch (skipped when the
  // condition block is compiled).
  std::vector<const ir::Stmt*> fuse_skip_;
  // Copy propagation: statement id -> register it aliases (kVarRead
  // forwarding), and retargeting state for write-back elimination.
  std::unordered_map<int, uint32_t> alias_;
  const ir::Stmt* last_value_stmt_ = nullptr;  // stmt whose insn is
                                               // code.back() with dst in `a`
};

// Executes compiled programs. Owns the runtime heap (lists, arrays, maps,
// records) exactly like the tree walker does, and threads the same
// AllocStats so Figure 8 memory accounting is engine-independent.
//
// All per-run mutable state is reached through a parallel::ExecState, so
// the same Exec() runs the main program on the VM's own state and morsel
// body fragments on worker-private MorselStates, concurrently.
class BytecodeVM {
 public:
  explicit BytecodeVM(AllocStats* stats) : stats_(stats), records_(stats) {}

  storage::ResultTable Run(const BytecodeProgram& prog);

  // Enables kParLoop dispatch onto the given pool (owned by the caller);
  // null keeps every loop on the sequential fallback path.
  void SetParallel(parallel::Engine* eng) { par_eng_ = eng; }

  // Attaches the governance control for subsequent Run() calls (owned by
  // the caller; null = ungoverned). The VM binds it to a per-run GovState
  // reachable through the register file (prog.gov_reg), so JIT'd code and
  // morsel fragments poll the same control.
  void SetControl(ExecControl* ctl) { ctl_ = ctl; }

  // Attaches JIT'd native code for the program about to Run (owned by the
  // caller, compiled from the same BytecodeProgram). Non-null switches
  // Exec to the hybrid native/interpreter driver: templated instruction
  // runs execute natively, everything else deopts back here per
  // instruction (src/jit/engine.h). Null (default) is the pure VM.
  void SetJit(const jit::JitProgram* jp) { jit_ = jp; }

 private:
  void Exec(parallel::ExecState& st, uint32_t pc);
  // The dispatch loop. kHybrid adds a per-instruction "native code exists
  // for this pc" check and returns that pc (or jit::kRetPc after kRet) so
  // the hybrid driver can re-enter native code; the kHybrid = false
  // instantiation is byte-for-byte the pre-JIT interpreter loop.
  template <bool kHybrid>
  uint32_t ExecImpl(parallel::ExecState& st, uint32_t pc);
  // Runs one parallelizable loop on the worker pool; false = run the
  // sequential fallback instead.
  bool TryParallelLoop(parallel::ExecState& st, const ParLoopCode& plc);
  // kArrSort/kListSort: sorts data[0, n) through the shared stable merge
  // core (exec/runtime.h), morsel-parallel when a pool is attached, the
  // compiler proved the comparator pure (insn.n), and the input is large
  // enough — sequential otherwise. Bitwise-identical output either way.
  void SortSlots(parallel::ExecState& st, Slot* data, int64_t n,
                 const Insn& insn);

  static const char* Intern(parallel::ExecState& st, std::string s) {
    st.strings->push_back(std::move(s));
    return st.strings->back().c_str();
  }

  const BytecodeProgram* prog_ = nullptr;
  AllocStats* stats_;
  RecordHeap records_;
  ExecControl* ctl_ = nullptr;
  GovState gov_;  // main-context governance state, rebound per Run
  parallel::Engine* par_eng_ = nullptr;
  const jit::JitProgram* jit_ = nullptr;
  std::vector<Slot> regs_;
  std::deque<RtList> lists_;
  std::deque<RtArray> arrays_;
  std::deque<RtHashMap> maps_;
  std::deque<RtMultiMap> mmaps_;
  std::deque<std::string> strings_;
  storage::ResultTable out_;
};

}  // namespace qc::exec

#endif  // QC_EXEC_BYTECODE_H_
