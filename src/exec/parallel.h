// Morsel-driven parallel execution (HyPer style) for both IR engines.
//
// A qualifying top-level scan loop (ir/parallel.h decides which qualify) is
// split into fixed-size row-range morsels pulled work-stealing-style off a
// shared counter by a persistent worker pool. Each morsel runs the
// unmodified loop body against *private* state: a private register file,
// RecordHeap, AllocStats, and private instances of every reduction object
// (hash maps, group arrays, lists, accumulators). A sequential merge phase
// then folds the per-morsel states back into the main engine state in
// morsel order.
//
// Determinism contract: the merged result is bitwise identical to the
// sequential engine for any thread count and morsel size —
//   * list appends, multimap inserts, emits, and intrusive bucket chains
//     recombine in morsel order, reproducing the exact sequential
//     append/insert order;
//   * integral sums are exact and associative, min/max merges keep the
//     sequential first-occurrence semantics via the shared count; and
//   * f64 sums — the one non-associative fold — are not merged from
//     partials at all: the parallel phase logs the per-row addends
//     (ir::ParLogChannel) and the merge replays the additions in global
//     row order, keeping the sequential floating-point rounding.
//
// AllocStats accounting: each morsel's stats are folded in with MergeFrom,
// then the merge credits back storage that a sequential run never
// allocates (duplicate per-morsel group records, per-morsel hash nodes and
// list buffers), so Figure 8 numbers are engine- and thread-count-
// independent.
//
// The engines share everything here; they differ only in the
// `LoopRun::body` callback that executes one morsel (the JIT engine reuses
// the bytecode VM's callback — its hybrid driver runs per worker).
#ifndef QC_EXEC_PARALLEL_H_
#define QC_EXEC_PARALLEL_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "exec/governor.h"
#include "exec/runtime.h"
#include "ir/parallel.h"
#include "storage/result.h"
#include "storage/schema.h"

namespace qc::exec::parallel {

struct MorselState;

// Execution context threaded through both engines: the register file plus
// every piece of per-run mutable state. The main run points at the
// engine's own storage; a morsel run points into a MorselState.
struct ExecState {
  Slot* regs = nullptr;
  AllocStats* stats = nullptr;
  RecordHeap* records = nullptr;
  std::deque<RtList>* lists = nullptr;
  std::deque<RtArray>* arrays = nullptr;
  std::deque<RtHashMap>* maps = nullptr;
  std::deque<RtMultiMap>* mmaps = nullptr;
  std::deque<std::string>* strings = nullptr;
  storage::ResultTable* out = nullptr;
  MorselState* morsel = nullptr;       // log sink during a morsel run
  const ir::ParLoop* par = nullptr;    // tree walker: morsel action table
  GovState* gov = nullptr;             // governance state (may be unattached)
};

// All worker-local state of one morsel. Records and interned strings
// survive the merge (group records and join tuples are adopted by the main
// structures); everything else is released right after merging.
struct MorselState {
  AllocStats stats;
  RecordHeap records{&stats};
  std::deque<RtList> lists;
  std::deque<RtArray> arrays;
  std::deque<RtHashMap> maps;
  std::deque<RtMultiMap> mmaps;
  std::deque<std::string> strings;
  storage::ResultTable out;
  std::vector<Slot> regs;
  std::vector<std::vector<Slot>> logs;  // one addend log per ParLogChannel
  std::vector<Slot> priv;               // privatized object per reduction
  // Per-morsel governance state over this morsel's private stats (attached
  // by the engine's body callback when the run is governed).
  GovState gov;

  ExecState MakeState() {
    ExecState st;
    st.regs = regs.data();
    st.stats = &stats;
    st.records = &records;
    st.lists = &lists;
    st.arrays = &arrays;
    st.maps = &maps;
    st.mmaps = &mmaps;
    st.strings = &strings;
    st.out = &out;
    st.morsel = this;
    st.gov = &gov;
    return st;
  }

  // Frees everything the merged result does not reference.
  void ReleaseTransients() {
    lists.clear();
    arrays.clear();
    maps.clear();
    mmaps.clear();
    out = storage::ResultTable();
    regs = std::vector<Slot>();
    logs = std::vector<std::vector<Slot>>();
    priv = std::vector<Slot>();
  }
};

// Persistent worker threads. Task indices are distributed through an
// atomic counter (workers that finish early steal the remaining morsels);
// the calling thread participates, so `threads` is the total parallelism.
//
// Begin/TrySteal/Wait let the caller interleave its own work (the ordered
// merge) with stealing: publish the task set, pull indices while waiting,
// then synchronize.
class WorkerPool {
 public:
  explicit WorkerPool(int threads);
  ~WorkerPool();

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  int threads() const { return static_cast<int>(workers_.size()) + 1; }

  // Publishes `count` tasks to the workers and returns immediately.
  // `task` must stay alive until Wait() returns.
  void Begin(int count, const std::function<void(int)>& task);
  // Claims the next unclaimed task index, or -1 when all are claimed.
  int TrySteal();
  // Blocks until every worker has finished its claimed tasks.
  void Wait();

 private:
  void WorkerMain();

  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable cv_start_;
  std::condition_variable cv_done_;
  const std::function<void(int)>* task_ = nullptr;
  int count_ = 0;
  std::atomic<int> next_{0};
  int pending_ = 0;
  uint64_t generation_ = 0;
  bool stop_ = false;
};

// Owned by an Interpreter with num_threads > 1: the pool plus the
// keep-alive store for morsel heaps whose records were adopted into the
// current result.
class Engine {
 public:
  Engine(int threads, int64_t morsel_rows)
      : pool_(threads), morsel_rows_(morsel_rows < 1 ? 1 : morsel_rows) {}

  WorkerPool& pool() { return pool_; }
  int64_t morsel_rows() const { return morsel_rows_; }

  void Keep(std::unique_ptr<MorselState> ms) {
    keepalive_.push_back(std::move(ms));
  }
  // Called at the start of each Run(): the previous result has been handed
  // off (results own their strings), so adopted records can go.
  void ReleaseRun() { keepalive_.clear(); }

 private:
  WorkerPool pool_;
  int64_t morsel_rows_;
  std::vector<std::unique_ptr<MorselState>> keepalive_;
};

// One parallel loop execution request, fully resolved against the engine's
// register file.
struct LoopRun {
  const ir::ParLoop* plan = nullptr;
  int64_t lo = 0;
  int64_t hi = 0;
  Slot* main_regs = nullptr;
  // Parallel to plan->reductions: register of each target, and of the
  // capacity constant for array reductions (0 when unused).
  const std::vector<uint32_t>* red_regs = nullptr;
  const std::vector<uint32_t>* red_size_regs = nullptr;
  // Parallel to plan->logs: register of the scalar accumulator (var
  // channels; 0 when the channel targets group records).
  const std::vector<uint32_t>* channel_var_regs = nullptr;
  AllocStats* stats = nullptr;
  storage::ResultTable* out = nullptr;
  const std::vector<storage::ColType>* emit_types = nullptr;
  // Governance control, or nullptr for an ungoverned run. Once it trips,
  // still-unstarted morsels are skipped entirely (their empty states merge
  // as no-ops, keeping the orchestration and Wait() protocol intact).
  ExecControl* ctl = nullptr;
  // Executes the loop body over [mlo, mhi) against `ms` (regs must be set
  // up by the engine: copy of the main file + privatized overrides).
  std::function<void(int64_t mlo, int64_t mhi, MorselState& ms)> body;
};

// Splits [lo, hi) into morsels, runs them on the pool, and merges in
// morsel order. Returns false (without executing anything) when the loop
// should just run sequentially: too few rows for two morsels, or the
// private-array budget would be exceeded.
bool RunForRange(Engine& eng, const LoopRun& run);

// Minimum rows per sorted run before a post-aggregation sort goes parallel
// (QC_PAR_SORT_MIN, clamped to >= 2; smaller sorts stay sequential — the
// run/merge bookkeeping would cost more than it saves).
int64_t ParallelSortMinChunk();

// Creates one comparator instance for one parallel-sort task. Invoked on
// whichever thread executes the task, possibly concurrently with other
// invocations, so it must be thread-safe; each returned comparator is
// driven by exactly one task and typically owns a private register-file
// copy for the engine executing the comparator code.
using SortCmpFactory = std::function<std::unique_ptr<SlotCmp>()>;

// Morsel-parallel stable sort of data[0, n): contiguous chunks are
// insertion/merge-sorted per worker (StableSortSlots), then folded by a
// tree of ordered merges (MergeSortedRuns) on the same pool, caller thread
// stealing throughout. Stability of both phases makes the result the
// unique stable ordering — bitwise identical to the sequential engines for
// any thread count and chunk decomposition. Returns false (nothing
// executed) when the input is too small for two chunks or the pool has no
// workers; the caller then runs the shared sequential core itself.
bool ParallelStableSort(Engine& eng, Slot* data, int64_t n,
                        const SortCmpFactory& make_cmp);

}  // namespace qc::exec::parallel

#endif  // QC_EXEC_PARALLEL_H_
